// Command figures regenerates the paper's tables and figures on the
// simulated machine and prints them as text tables (or CSV).
//
// Usage:
//
//	figures                  # every figure at quick scale
//	figures -scale full      # the EXPERIMENTS.md record scale
//	figures -fig fig01,fig12 # a subset
//	figures -csv             # CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"natle/internal/harness"
)

func main() {
	var (
		scale = flag.String("scale", "quick", "sweep scale: quick | full")
		figs  = flag.String("fig", "", "comma-separated figure ids (default: all)")
		csv   = flag.Bool("csv", false, "emit CSV instead of text tables")
		list  = flag.Bool("list", false, "list available figure ids and exit")
	)
	flag.Parse()

	sc := harness.QuickScale()
	if *scale == "full" {
		sc = harness.FullScale()
	}

	type gen struct {
		id    string
		build func() *harness.Figure
	}
	gens := []gen{
		{"fig01", func() *harness.Figure { return harness.Fig01(sc) }},
		{"fig02a", func() *harness.Figure { return harness.Fig02a(sc) }},
		{"fig02b", func() *harness.Figure { return harness.Fig02b(sc) }},
		{"fig03", func() *harness.Figure { return harness.Fig03(sc) }},
		{"fig04", func() *harness.Figure { return harness.Fig04(sc) }},
		{"fig05", func() *harness.Figure { return harness.Fig05(sc) }},
		{"fig06", func() *harness.Figure { return harness.Fig06(sc) }},
		{"fig07", func() *harness.Figure { return harness.Fig07(sc) }},
		{"llc", func() *harness.Figure { return harness.LLCTable(1<<17, sc.Seed) }},
		{"fig12", func() *harness.Figure { return harness.Fig12(sc) }},
		{"fig13", func() *harness.Figure { return harness.Fig13(sc) }},
		{"fig14", func() *harness.Figure { return harness.Fig14(sc) }},
		{"fig15", func() *harness.Figure { return harness.Fig15(sc) }},
		{"fig16", func() *harness.Figure { return harness.Fig16(sc) }},
		{"fig17", func() *harness.Figure { return harness.Fig17(sc, nil) }},
		{"fig18a", func() *harness.Figure { return harness.Fig18(sc, true) }},
		{"fig18b", func() *harness.Figure { return harness.Fig18b(sc) }},
		{"fig18c", func() *harness.Figure { return harness.Fig18(sc, false) }},
		{"fig19a", func() *harness.Figure { return harness.Fig19(sc, true) }},
		{"fig19b", func() *harness.Figure { return harness.Fig19(sc, false) }},
		{"delegation", func() *harness.Figure { return harness.DelegationTable(sc, []int{1, 4}) }},
		{"locks", func() *harness.Figure { return harness.LocksTable(sc) }},
		{"telemetry", func() *harness.Figure { return harness.TelemetryTable(sc) }},
		{"ablation-remote-latency", func() *harness.Figure { return harness.AblationRemoteLatency(sc) }},
		{"ablation-profiling-len", func() *harness.Figure { return harness.AblationProfilingLen(sc) }},
		{"ablation-warmup-threshold", func() *harness.Figure { return harness.AblationWarmupThreshold(sc) }},
		{"ablation-quanta", func() *harness.Figure { return harness.AblationQuanta(sc) }},
		{"ablation-adaptive-profiling", func() *harness.Figure { return harness.AblationAdaptiveProfiling(sc) }},
	}

	if *list {
		for _, g := range gens {
			fmt.Println(g.id)
		}
		return
	}

	want := map[string]bool{}
	if *figs != "" {
		for _, id := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, g := range gens {
		if len(want) > 0 && !want[g.id] {
			continue
		}
		start := wallNow()
		f := g.build()
		if *csv {
			fmt.Printf("# %s\n%s\n", f.ID, f.CSV())
		} else {
			fmt.Println(f.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", g.id, wallNow().Sub(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no figures matched %q (use -list)\n", *figs)
		os.Exit(2)
	}
}

// wallNow is the one sanctioned wall-clock read in the tree: it times
// figure generation for the human watching stderr. Simulated results
// are pure functions of (profile, seed) and never flow through it;
// natlevet's determinism analyzer keeps everything else honest.
func wallNow() time.Time {
	return time.Now() //natlevet:allow determinism(stderr progress timing for humans; no simulated result depends on it)
}
