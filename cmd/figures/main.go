// Command figures regenerates the paper's tables and figures on the
// simulated machine and prints them as text tables (or CSV).
//
// Each figure is a declarative experiment plan (internal/expt): a grid
// of self-contained deterministic trials that a bounded worker pool
// runs across host cores. Results are assembled in plan order, so the
// output is byte-identical at any -j.
//
// Usage:
//
//	figures                  # every figure at quick scale
//	figures -scale full      # the EXPERIMENTS.md record scale
//	figures -fig fig01,fig12 # a subset
//	figures -csv             # CSV output
//	figures -j 8             # eight host workers (default GOMAXPROCS)
//	figures -progress        # per-trial progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"natle/internal/expt"
	"natle/internal/harness"
)

func main() {
	var (
		scale    = flag.String("scale", "quick", "sweep scale: quick | full")
		figs     = flag.String("fig", "", "comma-separated figure ids (default: all)")
		csv      = flag.Bool("csv", false, "emit CSV instead of text tables")
		list     = flag.Bool("list", false, "list available figure ids and exit")
		jobs     = flag.Int("j", 0, "host worker pool size per figure (<= 0: GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report per-trial completion on stderr")
	)
	flag.Parse()

	sc := harness.QuickScale()
	if *scale == "full" {
		sc = harness.FullScale()
	}

	plans := harness.Plans()

	if *list {
		for _, e := range plans {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	if *figs != "" {
		for _, id := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, e := range plans {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := wallNow()
		p := e.Build(sc)
		opt := expt.Options{Workers: *jobs}
		if *progress {
			opt.Progress = func(done, total int, key string) {
				fmt.Fprintf(os.Stderr, "[%s %d/%d %s]\n", p.ID, done, total, key)
			}
		}
		f := harness.Exec(p, opt)
		if *csv {
			fmt.Printf("# %s\n%s\n", f.ID, f.CSV())
		} else {
			fmt.Println(f.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v, %d trials, j=%d]\n",
			e.ID, wallNow().Sub(start).Round(time.Millisecond), len(p.Specs), expt.Workers(*jobs))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no figures matched %q (use -list)\n", *figs)
		os.Exit(2)
	}
}

// wallNow is the one sanctioned wall-clock read in the tree: it times
// figure generation for the human watching stderr. Simulated results
// are pure functions of (profile, seed) and never flow through it;
// natlevet's determinism analyzer keeps everything else honest.
func wallNow() time.Time {
	return time.Now() //natlevet:allow determinism(stderr progress timing for humans; no simulated result depends on it)
}
