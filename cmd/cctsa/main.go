// Command cctsa runs the synthetic ccTSA sequence-assembly workload on
// the simulated machine (paper Section 5.3).
//
// Example:
//
//	cctsa -threads 72 -lock natle -timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"natle/internal/backend"
	"natle/internal/cctsa"
	"natle/internal/machine"
	"natle/internal/scheme"
)

func main() {
	var (
		threads  = flag.Int("threads", 1, "worker threads")
		lockK    = flag.String("lock", "tle", "lock: "+scheme.FlagHelpFor(backend.Sim))
		genome   = flag.Int("genome", 1<<15, "genome length in bases")
		coverage = flag.Int("coverage", 6, "read coverage")
		pin      = flag.Bool("pin", true, "pin threads (fill-socket-first)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		timeline = flag.Bool("timeline", false, "print per-cycle socket-0 share (Fig 18b)")
	)
	flag.Parse()
	if _, err := scheme.LookupFor(backend.Sim, *lockK); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := cctsa.DefaultConfig()
	cfg.GenomeLen = *genome
	cfg.Coverage = *coverage
	cfg.Threads = *threads
	cfg.Seed = *seed
	cfg.Lock = *lockK
	if !*pin {
		cfg.Pin = machine.Unpinned{}
	}
	r := cctsa.Run(cfg)
	fmt.Printf("threads=%d lock=%s runtime=%v contigs=%d assembled=%d kmers=%d aborts=%d\n",
		r.Threads, *lockK, r.Runtime, r.Contigs, r.Assembled, r.KmersSeen, r.HTM.TotalAborts())
	if *timeline {
		for _, m := range r.Sync.Timeline {
			fmt.Printf("cycle %3d: socket0-share=%.2f fastest-mode=%d\n",
				m.Cycle, m.Socket0Share, m.FastestMode)
		}
	}
}
