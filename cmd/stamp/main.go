// Command stamp runs one STAMP benchmark on the simulated machine and
// prints its total runtime and transaction statistics.
//
// Example:
//
//	stamp -bench vacation-high -threads 36 -lock natle
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"natle/internal/backend"
	"natle/internal/scheme"
	"natle/internal/stamp"
	"natle/internal/vtime"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name (or 'all'); see -list")
		threads = flag.Int("threads", 1, "worker threads")
		lockK   = flag.String("lock", "tle", "lock: "+scheme.FlagHelpFor(backend.Sim))
		seed    = flag.Int64("seed", 1, "simulation seed")
		list    = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()
	if _, err := scheme.LookupFor(backend.Sim, *lockK); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		fmt.Println(strings.Join(stamp.Names(), "\n"))
		return
	}
	names := []string{*bench}
	if *bench == "all" {
		names = stamp.Names()
	} else if *bench == "" {
		fmt.Fprintln(os.Stderr, "missing -bench (use -list)")
		os.Exit(2)
	}
	fmt.Printf("%-14s %8s %12s %10s %10s %10s\n",
		"benchmark", "threads", "runtime", "commits", "aborts", "fallbacks")
	for _, name := range names {
		b, err := stamp.New(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		r := stamp.Run(b, stamp.Config{Threads: *threads, Seed: *seed, Lock: *lockK})
		fmt.Printf("%-14s %8d %12v %10d %10d %10d\n",
			name, *threads, vtime.Duration(r.Runtime),
			r.HTM.Commits, r.HTM.TotalAborts(), r.Sync.TLE.Fallbacks)
	}
}
