// Command paraheapk runs the synthetic paraheap-k clustering workload
// on the simulated machine (paper Section 5.4).
//
// Example:
//
//	paraheapk -threads 72 -lock natle -pin=false
package main

import (
	"flag"
	"fmt"
	"os"

	"natle/internal/backend"
	"natle/internal/machine"
	"natle/internal/paraheap"
	"natle/internal/scheme"
)

func main() {
	var (
		threads = flag.Int("threads", 1, "worker threads per phase")
		lockK   = flag.String("lock", "tle", "lock: "+scheme.FlagHelpFor(backend.Sim))
		points  = flag.Int("points", 6144, "data points")
		k       = flag.Int("k", 8, "clusters")
		pin     = flag.Bool("pin", true, "pin threads (fill-socket-first)")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if _, err := scheme.LookupFor(backend.Sim, *lockK); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := paraheap.DefaultConfig()
	cfg.Points = *points
	cfg.K = *k
	cfg.Threads = *threads
	cfg.Seed = *seed
	cfg.Lock = *lockK
	if !*pin {
		cfg.Pin = machine.Unpinned{}
	}
	r := paraheap.Run(cfg)
	fmt.Printf("threads=%d lock=%s pin=%v runtime=%v iterations=%d aborts=%d\n",
		r.Threads, *lockK, *pin, r.Runtime, r.Iterations, r.HTM.TotalAborts())
}
