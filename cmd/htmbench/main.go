// Command htmbench is an ad-hoc microbenchmark driver: it sweeps
// thread counts for one workload and prints throughput, speedup over
// one thread, and abort statistics.
//
// Example (the paper's Figure 1 workload, on the simulated machine):
//
//	htmbench -set avl -keys 2048 -updates 100 -lock tle
//
// -backend=native runs the backend-agnostic workloads on real
// goroutines over real memory with wall-clock timing instead
// (host-dependent numbers; see README "Native backend"):
//
//	htmbench -backend=native -lock=native-tle -workload counter
//
// The -lock help and validation are generated per backend: a native
// run never advertises sim-only schemes such as htm-raw, and vice
// versa.
//
// Fault injection: -fault <schedule> runs the sweep with a named fault
// schedule injected (on either backend); -faults runs the chaos matrix
// (every fault schedule against every robust scheme, on the simulator
// and then on the native backend) and exits nonzero if any cell
// violates its invariants. -backend=native -faults runs the native
// matrix alone.
//
// Service overload control (-service): -deadline arms per-request
// deadlines with queue-wait shedding, -brownout arms the p99-driven
// brownout ladder, -retrybudget arms the per-shard abort budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"natle/internal/backend"
	"natle/internal/expt"
	"natle/internal/fault"
	"natle/internal/harness"
	"natle/internal/machine"
	"natle/internal/scheme"
	"natle/internal/service"
	"natle/internal/sets"
	"natle/internal/telemetry"
	"natle/internal/tle"
	"natle/internal/vtime"
	"natle/internal/workload"
)

func main() {
	// The registry view (and so the -lock default, help, and
	// validation) depends on -backend, which must be known before the
	// flags are defined; pre-scan the command line for it.
	bk := backendArg(os.Args[1:])
	if !backend.Valid(bk) {
		fmt.Fprintf(os.Stderr, "unknown backend %q (sim | native)\n", bk)
		os.Exit(2)
	}
	lockDefault, lockHelp := "tle", "lock: "+scheme.FlagHelpFor(backend.Sim)+
		" (batch-capable: "+scheme.BatchHelp()+")"
	if bk == backend.Native {
		lockDefault, lockHelp = "native-tle", "lock: "+scheme.FlagHelpFor(backend.Native)
	}

	var (
		backendF  = flag.String("backend", "sim", "execution backend: sim | native")
		prof      = flag.String("machine", "large", "machine profile: large | small")
		pin       = flag.String("pin", "fill", "pinning: fill | alt | none | socket0")
		setKind   = flag.String("set", "avl", "set: avl | leafbst | bst | skiplist")
		keys      = flag.Int64("keys", 2048, "key range [0, keys)")
		updates   = flag.Int("updates", 100, "update percentage")
		extWork   = flag.Int("work", 0, "external work max iterations")
		lockKind  = flag.String("lock", lockDefault, lockHelp)
		attempts  = flag.Int("attempts", 20, "TLE transactional attempts")
		honorHint = flag.Bool("hint", false, "fall back immediately when the hint bit is clear")
		countLock = flag.Bool("countlock", false, "count lock-held attempts (disables anti-lemming)")
		searchRep = flag.Bool("searchreplace", false, "use the Fig 4 search-and-replace operation")
		durMs     = flag.Float64("ms", 2.0, "measured virtual milliseconds per trial")
		delayUs   = flag.Float64("delay", 0, "pre-commit delay in microseconds (Fig 6)")
		threads   = flag.String("threads", "", "comma-separated thread counts (default: profile sweep)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON of the last trial to this file")
		traceCap  = flag.Int("tracecap", 1<<16, "trace ring capacity in events (oldest dropped)")
		metrics   = flag.String("metrics", "", "write one telemetry summary CSV row per trial to this file")
		telem     = flag.Bool("telemetry", false, "print the per-trial telemetry summary")
		faultName = flag.String("fault", "", "inject the named fault schedule into every trial: "+strings.Join(fault.ScheduleNames(), " | "))
		chaos     = flag.Bool("faults", false, "run the chaos matrix (fault schedules x robust schemes) instead of a sweep; exits 1 on any invariant violation")
		breaker   = flag.Bool("breaker", false, "arm the TLE circuit breaker: degrade to the plain mutex under pathological abort rates, probe for recovery")
		jobs      = flag.Int("j", 0, "host worker pool size for the sweep / chaos matrix (<= 0: GOMAXPROCS)")
		progress  = flag.Bool("progress", false, "report per-trial completion on stderr")

		svc     = flag.Bool("service", false, "run the open-loop KV service workload instead of the closed-loop set sweep")
		arrival = flag.String("arrival", "poisson", "service arrival process: "+strings.Join(service.ArrivalNames(), " | "))
		rates   = flag.String("rates", "", "service offered loads in req/s, comma-separated (default: quick-scale sweep)")
		shards  = flag.Int("shards", 0, "service KV shards (0: default)")
		servers = flag.Int("servers", 0, "service server threads per shard (0: default)")
		batch   = flag.Int("batch", 0, "service max requests per critical section (0: default; clamped to 1 for schemes without the batch capability)")
		qcap    = flag.Int("qcap", 0, "service per-shard admission-queue bound (0: default)")
		sloUs   = flag.Float64("slo", 0, "service SLO search: target p99 in microseconds, searched over every batch-capable scheme (0: rate sweep of -lock instead)")
		sloJSON = flag.String("slojson", "", "write the service SLO search results as JSON to this file")

		deadlineUs  = flag.Float64("deadline", 0, "service per-request deadline in microseconds (0: none); servers shed queued requests that cannot finish in time")
		brownoutUs  = flag.Float64("brownout", 0, "service brownout p99 target in microseconds (0: off); breaching shards shrink batches, then degrade to the mutex, and probe for recovery")
		retryBudget = flag.Int("retrybudget", 0, "service per-shard abort budget per brownout window (0: off); exhaustion degrades the window to the mutex")

		nativeOps = flag.Int("ops", 1<<14, "native backend: per-thread operation count")
		nativeWl  = flag.String("workload", workload.BackendCounter, nativeWorkloadHelp())
		benchJSON = flag.String("benchjson", "", "native backend: write the BENCH_native.json snapshot (every native scheme x workload) to this file")
	)
	flag.Parse()
	if backend.Kind(*backendF) != bk {
		// Only reachable when -backend hides in a place the pre-scan
		// cannot see (after a terminating "--"); keep the two in sync.
		fmt.Fprintln(os.Stderr, "-backend must precede any -- terminator")
		os.Exit(2)
	}

	var faultProf *fault.Profile
	if *faultName != "" {
		sched, err := fault.LookupSchedule(*faultName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		faultProf = &sched.Profile
	}

	if bk == backend.Native {
		if *chaos {
			if !runNativeChaos(*seed, *faultName) {
				os.Exit(1)
			}
			return
		}
		if _, err := scheme.LookupFor(backend.Native, *lockKind); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *svc {
			// The KV service on real goroutines. The sim-only machinery
			// (brownout, retry budgets, fault injection, SLO search) is
			// refused here rather than silently ignored.
			if *brownoutUs > 0 || *retryBudget > 0 || faultProf != nil || *sloUs > 0 {
				fmt.Fprintln(os.Stderr, "-brownout, -retrybudget, -fault, and -slo are sim-only; the native service supports -deadline")
				os.Exit(2)
			}
			runNativeService(nativeServiceArgs{
				scheme:   *lockKind,
				arrival:  *arrival,
				rates:    *rates,
				shards:   *shards,
				servers:  *servers,
				batch:    *batch,
				qcap:     *qcap,
				window:   vtime.Duration(*durMs * float64(vtime.Millisecond)),
				seed:     *seed,
				deadline: vtime.Duration(*deadlineUs * float64(vtime.Microsecond)),
			})
			return
		}
		// TLE knobs pass through only when set explicitly, so native
		// schemes keep their own defaults (e.g. 8 attempts, not the
		// sim default 20).
		var pol tle.Policy
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "attempts" {
				pol.Attempts = *attempts
			}
		})
		runNative(nativeArgs{
			lock:       *lockKind,
			workload:   *nativeWl,
			set:        sets.Kind(*setKind),
			threadsCSV: *threads,
			ops:        *nativeOps,
			seed:       *seed,
			keys:       int(*keys),
			work:       *extWork,
			pol:        pol,
			fault:      faultProf,
			faultName:  *faultName,
			benchJSON:  *benchJSON,
		})
		return
	}

	if *chaos {
		// Cross-backend chaos: the simulated matrix first, then the
		// same schedules against the native schemes on real goroutines.
		// Both must hold their invariants for a zero exit.
		cfg := harness.ChaosConfig{Seed: *seed, Parallel: *jobs}
		if *faultName != "" {
			cfg.Schedules = []string{*faultName}
		}
		cells, err := harness.RunChaos(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		report, ok := harness.ChaosReport(cells)
		fmt.Println("# chaos matrix, backend=sim")
		fmt.Print(report)
		fmt.Println("# chaos matrix, backend=native")
		if !runNativeChaos(*seed, *faultName) || !ok {
			fmt.Fprintln(os.Stderr, "chaos: invariant violations detected")
			os.Exit(1)
		}
		return
	}

	if _, err := scheme.LookupFor(backend.Sim, *lockKind); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	p := machine.LargeX52()
	if *prof == "small" {
		p = machine.SmallI7()
	}

	if *svc {
		runService(serviceArgs{
			prof:        p,
			scheme:      *lockKind,
			arrival:     *arrival,
			rates:       *rates,
			shards:      *shards,
			servers:     *servers,
			batch:       *batch,
			qcap:        *qcap,
			window:      vtime.Duration(*durMs * float64(vtime.Millisecond)),
			seed:        *seed,
			fault:       faultProf,
			deadline:    vtime.Duration(*deadlineUs * float64(vtime.Microsecond)),
			brownoutSLO: vtime.Duration(*brownoutUs * float64(vtime.Microsecond)),
			retryBudget: *retryBudget,
			sloUs:       *sloUs,
			sloJSON:     *sloJSON,
			jobs:        *jobs,
		})
		return
	}
	var policy machine.PinPolicy
	switch *pin {
	case "fill":
		policy = machine.FillSocketFirst{}
	case "alt":
		policy = machine.Alternating{}
	case "none":
		policy = machine.Unpinned{}
	case "socket0":
		policy = machine.SingleSocket{}
	default:
		fmt.Fprintf(os.Stderr, "unknown pin policy %q\n", *pin)
		os.Exit(2)
	}

	counts := defaultSweep(p)
	if *threads != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad thread count %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
	}

	recording := *traceOut != "" || *metrics != "" || *telem
	var metricsFile *os.File
	if *metrics != "" {
		var err error
		metricsFile, err = os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer metricsFile.Close()
		if err := telemetry.WriteCSVHeader(metricsFile, "threads"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	pol := tle.Policy{
		Attempts:      *attempts,
		HonorHint:     *honorHint,
		CountLockHeld: *countLock,
	}
	if *breaker {
		br := tle.DefaultBreakerConfig()
		pol.Breaker = &br
	}

	fmt.Printf("# %s, %s, set=%s keys=%d upd=%d%% work=%d lock=%s\n",
		p.Name, policy.Name(), *setKind, *keys, *updates, *extWork, *lockKind)
	if faultProf != nil {
		fmt.Printf("# fault schedule: %s\n", *faultName)
	}
	fmt.Printf("%7s %14s %9s %8s %9s %9s %9s %9s\n",
		"threads", "ops/s", "speedup", "abort%", "conflict", "capacity", "lockheld", "fallback")

	// The sweep runs on a bounded host worker pool: each trial is a
	// self-contained simulation (its own engine, memory, and recorder),
	// and rows are rendered in sweep order after the pool drains, so
	// stdout is byte-identical at any -j.
	type trial struct {
		r   *workload.Result
		col *telemetry.Collector
	}
	var finished int32
	trials := expt.Map(*jobs, len(counts), func(i int) trial {
		n := counts[i]
		var col *telemetry.Collector
		var rec telemetry.Recorder // nil keeps the no-op recorder
		if recording {
			ringCap := 0
			if *traceOut != "" {
				ringCap = *traceCap
			}
			col = telemetry.NewCollector(telemetry.Config{TraceCap: ringCap})
			rec = col
		}
		r := workload.Run(workload.Config{
			Prof:          p,
			Pin:           policy,
			Threads:       n,
			Seed:          *seed,
			SetKind:       sets.Kind(*setKind),
			KeyRange:      *keys,
			UpdatePct:     *updates,
			SearchReplace: *searchRep,
			ExternalWork:  *extWork,
			Lock:          workload.LockKind(*lockKind),
			TLE:           pol,
			Fault:         faultProf,
			Duration:      vtime.Duration(*durMs * float64(vtime.Millisecond)),
			CommitDelay:   vtime.Duration(*delayUs * float64(vtime.Microsecond)),
			Recorder:      rec,
		})
		if *progress {
			fmt.Fprintf(os.Stderr, "[%d/%d threads=%d]\n",
				atomic.AddInt32(&finished, 1), len(counts), n)
		}
		return trial{r: r, col: col}
	})

	var base float64
	var lastCol *telemetry.Collector
	for i, tr := range trials {
		n, r := counts[i], tr.r
		if base == 0 {
			base = r.Throughput()
		}
		fmt.Printf("%7d %14.0f %9.2f %7.1f%% %9d %9d %9d %9d\n",
			n, r.Throughput(), r.Throughput()/base,
			100*r.HTM.AbortRate(),
			r.HTM.Aborts[1], r.HTM.Aborts[2], r.HTM.Aborts[4],
			r.Sync.TLE.Fallbacks)
		if faultProf != nil {
			fmt.Println(indent(r.Fault.String(), "    "))
		}
		if tr.col == nil {
			continue
		}
		lastCol = tr.col
		sum := tr.col.Summary()
		if *telem {
			fmt.Println(indent(sum.String(), "    "))
		}
		if metricsFile != nil {
			if err := sum.WriteCSV(metricsFile, strconv.Itoa(n)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	if *traceOut != "" && lastCol != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := lastCol.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace of the last trial to %s (%d events, %d dropped)\n",
			*traceOut, lastCol.Summary().TraceEvents, lastCol.TraceDropped())
	}
}

// backendArg pre-scans the raw arguments for -backend, which decides
// the registry view the -lock flag is defined against (default,
// help, validation) before flag.Parse can run.
func backendArg(args []string) backend.Kind {
	k := backend.Sim
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			break
		}
		switch {
		case a == "-backend" || a == "--backend":
			if i+1 < len(args) {
				k = backend.Kind(args[i+1])
				i++
			}
		case strings.HasPrefix(a, "-backend="):
			k = backend.Kind(strings.TrimPrefix(a, "-backend="))
		case strings.HasPrefix(a, "--backend="):
			k = backend.Kind(strings.TrimPrefix(a, "--backend="))
		}
	}
	return k
}

// indent prefixes every line of s (for nesting summaries under the
// sweep table rows).
func indent(s, prefix string) string {
	return prefix + strings.ReplaceAll(s, "\n", "\n"+prefix)
}

func defaultSweep(p *machine.Profile) []int {
	if p.Sockets == 1 {
		return []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	return []int{1, 2, 4, 8, 12, 18, 24, 30, 36, 37, 40, 44, 48, 54, 60, 66, 72}
}
