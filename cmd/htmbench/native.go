package main

// The -backend=native side of htmbench: thread sweeps of the
// backend-agnostic workloads on real goroutines over real memory,
// timed by the wall clock. Numbers are host- and load-dependent and
// never feed the deterministic figure pipeline; the committed
// BENCH_native.json snapshot (written via -benchjson) is structurally
// stable with a host fingerprint explaining its values.

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"natle/internal/harness"
	"natle/internal/tle"
	"natle/internal/workload"
)

type nativeArgs struct {
	lock       string
	workload   string
	threadsCSV string
	ops        int
	seed       int64
	keys       int
	work       int
	pol        tle.Policy
	benchJSON  string
}

func runNative(a nativeArgs) {
	known := false
	for _, wl := range workload.BackendWorkloads() {
		known = known || wl == a.workload
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown workload %q (have %s)\n",
			a.workload, strings.Join(workload.BackendWorkloads(), " | "))
		os.Exit(2)
	}
	var counts []int
	if a.threadsCSV != "" {
		for _, f := range strings.Split(a.threadsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad thread count %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
	}
	cfg := harness.NativeSweepConfig{
		Lock:         a.lock,
		Workload:     a.workload,
		Threads:      counts,
		Ops:          a.ops,
		Seed:         a.seed,
		KeyRange:     a.keys,
		ExternalWork: a.work,
		TLE:          a.pol,
	}
	host := harness.Fingerprint()
	fmt.Printf("# backend=native lock=%s workload=%s ops/thread=%d seed=%d\n",
		a.lock, a.workload, a.ops, a.seed)
	fmt.Printf("# wall-clock timing on %s/%s, %d CPUs, %s — host-dependent, not comparable to sim figures\n",
		host.GOOS, host.GOARCH, host.CPUs, host.GoVersion)
	fmt.Printf("%8s %14s %8s %12s %12s %12s\n",
		"threads", "ops/sec", "speedup", "commits", "aborts", "fallbacks")
	var base float64
	for _, r := range harness.NativeSweep(cfg) {
		var commits, aborts, fallbacks uint64
		for _, s := range r.Sync {
			commits += s.TLE.Commits
			aborts += s.TLE.TotalAborts()
			fallbacks += s.TLE.Fallbacks
		}
		tput := r.Throughput()
		if base == 0 {
			base = tput
		}
		fmt.Printf("%8d %14.0f %8.2f %12d %12d %12d\n",
			r.Threads, tput, tput/base, commits, aborts, fallbacks)
	}
	if a.benchJSON != "" {
		snap := harness.NativeBenchSnapshot(cfg)
		buf, err := harness.MarshalNativeBench(snap)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(a.benchJSON, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d schemes x %d workloads)\n", a.benchJSON,
			len(snap.Workloads[0].Schemes), len(snap.Workloads))
	}
}
