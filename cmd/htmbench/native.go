package main

// The -backend=native side of htmbench: thread sweeps of the
// backend-agnostic workloads on real goroutines over real memory,
// timed by the wall clock. Numbers are host- and load-dependent and
// never feed the deterministic figure pipeline; the committed
// BENCH_native.json snapshot (written via -benchjson) is structurally
// stable with a host fingerprint explaining its values.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"natle/internal/fault"
	"natle/internal/harness"
	"natle/internal/native"
	"natle/internal/service"
	"natle/internal/sets"
	"natle/internal/tle"
	"natle/internal/vtime"
	"natle/internal/workload"
)

type nativeArgs struct {
	lock       string
	workload   string
	set        sets.Kind
	threadsCSV string
	ops        int
	seed       int64
	keys       int
	work       int
	pol        tle.Policy
	fault      *fault.Profile
	faultName  string
	benchJSON  string
}

// nativeWorkloadHelp is the -workload flag help on the native backend;
// it is generated from the one workload registry, and a test holds the
// two in agreement (see TestNativeWorkloadFlagMatchesRegistry).
func nativeWorkloadHelp() string {
	return "native backend: workload: " + strings.Join(workload.BackendWorkloads(), " | ")
}

func runNative(a nativeArgs) {
	if !workload.IsBackendWorkload(a.workload) {
		fmt.Fprintf(os.Stderr, "unknown workload %q (have %s)\n",
			a.workload, strings.Join(workload.BackendWorkloads(), " | "))
		os.Exit(2)
	}
	if a.workload == workload.BackendSets && sets.InsertWords(a.set) == 0 {
		fmt.Fprintf(os.Stderr, "unknown set kind %q\n", a.set)
		os.Exit(2)
	}
	var counts []int
	if a.threadsCSV != "" {
		for _, f := range strings.Split(a.threadsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad thread count %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
	}
	cfg := harness.NativeSweepConfig{
		Lock:         a.lock,
		Workload:     a.workload,
		Threads:      counts,
		Ops:          a.ops,
		Seed:         a.seed,
		KeyRange:     a.keys,
		Set:          a.set,
		ExternalWork: a.work,
		TLE:          a.pol,
		Fault:        a.fault,
	}
	host := harness.Fingerprint()
	wlDesc := a.workload
	if a.workload == workload.BackendSets {
		wlDesc += " set=" + string(a.set)
	}
	fmt.Printf("# backend=native lock=%s workload=%s ops/thread=%d seed=%d\n",
		a.lock, wlDesc, a.ops, a.seed)
	if a.fault != nil {
		fmt.Printf("# fault schedule: %s\n", a.faultName)
	}
	fmt.Printf("# wall-clock timing on %s/%s, %d CPUs, %s — host-dependent, not comparable to sim figures\n",
		host.GOOS, host.GOARCH, host.CPUs, host.GoVersion)
	fmt.Printf("%8s %14s %8s %12s %12s %12s\n",
		"threads", "ops/sec", "speedup", "commits", "aborts", "fallbacks")
	var base float64
	for _, r := range harness.NativeSweep(cfg) {
		var commits, aborts, fallbacks uint64
		for _, s := range r.Sync {
			commits += s.TLE.Commits
			aborts += s.TLE.TotalAborts()
			fallbacks += s.TLE.Fallbacks
		}
		tput := r.Throughput()
		if base == 0 {
			base = tput
		}
		fmt.Printf("%8d %14.0f %8.2f %12d %12d %12d\n",
			r.Threads, tput, tput/base, commits, aborts, fallbacks)
		if a.fault != nil {
			fmt.Println("    " + r.Fault.String())
		}
	}
	if a.benchJSON != "" {
		snap := harness.NativeBenchSnapshot(cfg)
		f, err := os.Create(a.benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := writeNativeBench(f, snap)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d schemes x %d workloads)\n", a.benchJSON,
			len(snap.Workloads[0].Schemes), len(snap.Workloads))
	}
}

// writeNativeBench streams the marshaled snapshot to w, propagating
// both marshal and write failures (a full disk must not exit zero
// with a truncated BENCH_native.json behind it).
func writeNativeBench(w io.Writer, snap *harness.NativeBench) error {
	buf, err := harness.MarshalNativeBench(snap)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write native bench: %w", err)
	}
	return nil
}

// defaultNativeServiceRates is the native rate sweep: lower than the
// simulated sweep, since the dispatcher replays the schedule against
// the wall clock of whatever host this is.
var defaultNativeServiceRates = []float64{2e5, 1e6, 4e6}

type nativeServiceArgs struct {
	scheme   string
	arrival  string
	rates    string
	shards   int
	servers  int
	batch    int
	qcap     int
	window   vtime.Duration
	seed     int64
	deadline vtime.Duration
}

// runNativeService runs the open-loop KV service on the native
// backend: the same schedule generator and pipeline shape as the
// simulated -service mode, on real goroutines (see service.RunNative).
// Trials run sequentially — wall-clock measurements must not contend
// with each other for the host.
func runNativeService(a nativeServiceArgs) {
	kind, err := service.LookupArrival(a.arrival)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sweep := defaultNativeServiceRates
	if a.rates != "" {
		sweep = sweep[:0]
		for _, f := range strings.Split(a.rates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				fmt.Fprintf(os.Stderr, "bad rate %q\n", f)
				os.Exit(2)
			}
			sweep = append(sweep, r)
		}
	}
	cfg := service.Config{
		Seed:     a.seed,
		Scheme:   a.scheme,
		Arrival:  kind,
		Window:   a.window,
		Shards:   a.shards,
		Servers:  a.servers,
		Batch:    a.batch,
		QueueCap: a.qcap,
		Deadline: a.deadline,
	}
	host := harness.Fingerprint()
	fmt.Printf("# backend=native, service: scheme=%s arrival=%s window=%v seed=%d\n",
		a.scheme, a.arrival, a.window, a.seed)
	fmt.Printf("# wall-clock timing on %s/%s, %d CPUs, %s — host-dependent, not comparable to sim figures\n",
		host.GOOS, host.GOARCH, host.CPUs, host.GoVersion)
	if a.deadline > 0 {
		fmt.Printf("# overload control: deadline=%v\n", a.deadline)
	}
	fmt.Printf("%12s %8s %7s %7s %7s %12s %12s %12s %9s %9s\n",
		"rate(r/s)", "reqs", "shed%", "dshed%", "miss%", "p50", "p99", "p999", "avgbatch", "fallback")
	for _, rate := range sweep {
		c := cfg
		c.Rate = rate
		w := native.NewWorld(native.Config{Seed: c.Seed, Words: c.NativeMemWords()})
		r := service.RunNative(w, c)
		avgBatch := 0.0
		if r.Batches > 0 {
			avgBatch = float64(r.Completed) / float64(r.Batches)
		}
		fmt.Printf("%12.4g %8d %6.2f%% %6.2f%% %6.2f%% %12v %12v %12v %9.2f %9d\n",
			rate, r.Requests, 100*r.ShedFraction(),
			100*r.DeadlineShedFraction(), 100*r.DeadlineMissFraction(),
			r.E2E.Quantile(0.50), r.E2E.Quantile(0.99), r.E2E.Quantile(0.999),
			avgBatch, r.Sync.TLE.Fallbacks)
		if r.BatchClamped {
			fmt.Printf("             # batch clamped to 1: scheme %q lacks the batch capability\n", a.scheme)
		}
	}
}

// runNativeChaos runs the native half of the chaos matrix: every
// requested fault schedule against the robust native schemes over the
// backend-agnostic workloads, invariants checked per cell. Reports to
// stdout and returns whether every cell held.
func runNativeChaos(seed int64, only string) bool {
	cfg := harness.NativeChaosConfig{Seed: seed}
	if only != "" {
		cfg.Schedules = []string{only}
	}
	cells, err := harness.RunNativeChaos(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	report, ok := harness.NativeChaosReport(cells)
	fmt.Print(report)
	if !ok {
		fmt.Fprintln(os.Stderr, "chaos(native): invariant violations detected")
	}
	return ok
}
