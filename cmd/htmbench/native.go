package main

// The -backend=native side of htmbench: thread sweeps of the
// backend-agnostic workloads on real goroutines over real memory,
// timed by the wall clock. Numbers are host- and load-dependent and
// never feed the deterministic figure pipeline; the committed
// BENCH_native.json snapshot (written via -benchjson) is structurally
// stable with a host fingerprint explaining its values.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"natle/internal/fault"
	"natle/internal/harness"
	"natle/internal/tle"
	"natle/internal/workload"
)

type nativeArgs struct {
	lock       string
	workload   string
	threadsCSV string
	ops        int
	seed       int64
	keys       int
	work       int
	pol        tle.Policy
	fault      *fault.Profile
	faultName  string
	benchJSON  string
}

func runNative(a nativeArgs) {
	known := false
	for _, wl := range workload.BackendWorkloads() {
		known = known || wl == a.workload
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown workload %q (have %s)\n",
			a.workload, strings.Join(workload.BackendWorkloads(), " | "))
		os.Exit(2)
	}
	var counts []int
	if a.threadsCSV != "" {
		for _, f := range strings.Split(a.threadsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad thread count %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
	}
	cfg := harness.NativeSweepConfig{
		Lock:         a.lock,
		Workload:     a.workload,
		Threads:      counts,
		Ops:          a.ops,
		Seed:         a.seed,
		KeyRange:     a.keys,
		ExternalWork: a.work,
		TLE:          a.pol,
		Fault:        a.fault,
	}
	host := harness.Fingerprint()
	fmt.Printf("# backend=native lock=%s workload=%s ops/thread=%d seed=%d\n",
		a.lock, a.workload, a.ops, a.seed)
	if a.fault != nil {
		fmt.Printf("# fault schedule: %s\n", a.faultName)
	}
	fmt.Printf("# wall-clock timing on %s/%s, %d CPUs, %s — host-dependent, not comparable to sim figures\n",
		host.GOOS, host.GOARCH, host.CPUs, host.GoVersion)
	fmt.Printf("%8s %14s %8s %12s %12s %12s\n",
		"threads", "ops/sec", "speedup", "commits", "aborts", "fallbacks")
	var base float64
	for _, r := range harness.NativeSweep(cfg) {
		var commits, aborts, fallbacks uint64
		for _, s := range r.Sync {
			commits += s.TLE.Commits
			aborts += s.TLE.TotalAborts()
			fallbacks += s.TLE.Fallbacks
		}
		tput := r.Throughput()
		if base == 0 {
			base = tput
		}
		fmt.Printf("%8d %14.0f %8.2f %12d %12d %12d\n",
			r.Threads, tput, tput/base, commits, aborts, fallbacks)
		if a.fault != nil {
			fmt.Println("    " + r.Fault.String())
		}
	}
	if a.benchJSON != "" {
		snap := harness.NativeBenchSnapshot(cfg)
		f, err := os.Create(a.benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := writeNativeBench(f, snap)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d schemes x %d workloads)\n", a.benchJSON,
			len(snap.Workloads[0].Schemes), len(snap.Workloads))
	}
}

// writeNativeBench streams the marshaled snapshot to w, propagating
// both marshal and write failures (a full disk must not exit zero
// with a truncated BENCH_native.json behind it).
func writeNativeBench(w io.Writer, snap *harness.NativeBench) error {
	buf, err := harness.MarshalNativeBench(snap)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write native bench: %w", err)
	}
	return nil
}

// runNativeChaos runs the native half of the chaos matrix: every
// requested fault schedule against the robust native schemes over the
// backend-agnostic workloads, invariants checked per cell. Reports to
// stdout and returns whether every cell held.
func runNativeChaos(seed int64, only string) bool {
	cfg := harness.NativeChaosConfig{Seed: seed}
	if only != "" {
		cfg.Schedules = []string{only}
	}
	cells, err := harness.RunNativeChaos(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	report, ok := harness.NativeChaosReport(cells)
	fmt.Print(report)
	if !ok {
		fmt.Fprintln(os.Stderr, "chaos(native): invariant violations detected")
	}
	return ok
}
