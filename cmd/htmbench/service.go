package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"natle/internal/expt"
	"natle/internal/fault"
	"natle/internal/machine"
	"natle/internal/scheme"
	"natle/internal/service"
	"natle/internal/vtime"
)

// The -service mode: the open-loop KV service instead of the
// closed-loop set sweep. Two sub-modes:
//
//   - rate sweep (default): the -lock scheme absorbs each offered
//     load in -rates, one table row per rate (latency percentiles,
//     shed share, batching);
//   - SLO search (-slo <p99 target in us>): every batch-capable
//     scheme is binary-searched for its maximum sustainable load
//     under the target; -slojson writes the result as deterministic
//     JSON (the committed BENCH_service.json snapshot).

type serviceArgs struct {
	prof        *machine.Profile
	scheme      string
	arrival     string
	rates       string
	shards      int
	servers     int
	batch       int
	qcap        int
	window      vtime.Duration
	seed        int64
	fault       *fault.Profile
	deadline    vtime.Duration // per-request deadline (0: none)
	brownoutSLO vtime.Duration // brownout p99 target (0: off)
	retryBudget int            // per-shard abort budget per window (0: off)
	sloUs       float64
	sloJSON     string
	jobs        int
}

// defaultServiceRates is the quick-scale offered-load sweep.
var defaultServiceRates = []float64{2e6, 8e6, 16e6, 24e6, 32e6}

func (a serviceArgs) base() service.Config {
	kind, err := service.LookupArrival(a.arrival)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := service.Config{
		Prof:        a.prof,
		Seed:        a.seed,
		Scheme:      a.scheme,
		Arrival:     kind,
		Window:      a.window,
		Shards:      a.shards,
		Servers:     a.servers,
		Batch:       a.batch,
		QueueCap:    a.qcap,
		Fault:       a.fault,
		Deadline:    a.deadline,
		RetryBudget: a.retryBudget,
	}
	if a.brownoutSLO > 0 {
		cfg.Brownout = &service.BrownoutConfig{SLO: a.brownoutSLO}
	}
	return cfg
}

func runService(a serviceArgs) {
	if a.sloUs > 0 {
		runServiceSLO(a)
		return
	}

	sweep := defaultServiceRates
	if a.rates != "" {
		sweep = sweep[:0]
		for _, f := range strings.Split(a.rates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				fmt.Fprintf(os.Stderr, "bad rate %q\n", f)
				os.Exit(2)
			}
			sweep = append(sweep, r)
		}
	}

	cfg := a.base()
	fmt.Printf("# %s, service: scheme=%s arrival=%s window=%v\n",
		a.prof.Name, a.scheme, a.arrival, a.window)
	if a.fault != nil {
		fmt.Printf("# fault schedule injected\n")
	}
	if a.deadline > 0 || a.brownoutSLO > 0 || a.retryBudget > 0 {
		fmt.Printf("# overload control: deadline=%v brownout=%v retrybudget=%d\n",
			a.deadline, a.brownoutSLO, a.retryBudget)
	}
	fmt.Printf("%12s %8s %7s %7s %7s %12s %12s %12s %9s %9s %4s\n",
		"rate(r/s)", "reqs", "shed%", "dshed%", "miss%", "p50", "p99", "p999", "avgbatch", "fallback", "bo")

	results := expt.Map(a.jobs, len(sweep), func(i int) *service.Result {
		c := cfg
		c.Rate = sweep[i]
		return service.Run(c)
	})
	for i, r := range results {
		avgBatch := 0.0
		if r.Batches > 0 {
			avgBatch = float64(r.Completed) / float64(r.Batches)
		}
		fmt.Printf("%12.4g %8d %6.2f%% %6.2f%% %6.2f%% %12v %12v %12v %9.2f %9d %4d\n",
			sweep[i], r.Requests, 100*r.ShedFraction(),
			100*r.DeadlineShedFraction(), 100*r.DeadlineMissFraction(),
			r.E2E.Quantile(0.50), r.E2E.Quantile(0.99), r.E2E.Quantile(0.999),
			avgBatch, r.Sync.TLE.Fallbacks, r.BrownoutPeak)
		if r.BatchClamped {
			fmt.Printf("             # batch clamped to 1: scheme %q lacks the batch capability\n", a.scheme)
		}
	}
}

// benchEntry is one scheme's SLO search result in the JSON snapshot.
// Field order is the marshaled order; nothing here depends on host
// time or parallelism, so the file is byte-stable run over run.
type benchEntry struct {
	Scheme    string  `json:"scheme"`
	Sustained float64 `json:"sustained_req_per_s"`
	LatencyUs float64 `json:"latency_us_at_sustained"`
	Probes    int     `json:"probes"`
}

type benchFile struct {
	Workload  string       `json:"workload"`
	Machine   string       `json:"machine"`
	Arrival   string       `json:"arrival"`
	WindowUs  float64      `json:"window_us"`
	TargetUs  float64      `json:"target_p99_us"`
	Quantile  float64      `json:"quantile"`
	BracketLo float64      `json:"bracket_lo_req_per_s"`
	BracketHi float64      `json:"bracket_hi_req_per_s"`
	Iters     int          `json:"bisection_iters"`
	Seed      int64        `json:"seed"`
	Schemes   []benchEntry `json:"schemes"`
}

func runServiceSLO(a serviceArgs) {
	target := vtime.Duration(a.sloUs * float64(vtime.Microsecond))
	slo := service.SLO{Target: target}
	names := scheme.BatchNames()

	fmt.Printf("# %s, service SLO search: arrival=%s window=%v target p99 <= %v\n",
		a.prof.Name, a.arrival, a.window, target)
	results := expt.Map(a.jobs, len(names), func(i int) service.SLOResult {
		cfg := a.base()
		cfg.Scheme = names[i]
		return service.SearchSLO(cfg, slo)
	})
	for _, r := range results {
		fmt.Println(r)
	}

	if a.sloJSON == "" {
		return
	}
	norm := results[0].SLO // post-defaults copy (same for every scheme)
	out := benchFile{
		Workload:  "open-loop KV service",
		Machine:   a.prof.Name,
		Arrival:   a.arrival,
		WindowUs:  a.window.Seconds() * 1e6,
		TargetUs:  norm.Target.Seconds() * 1e6,
		Quantile:  norm.Quantile,
		BracketLo: norm.Lo,
		BracketHi: norm.Hi,
		Iters:     norm.Iters,
		Seed:      a.seed,
	}
	for i, r := range results {
		out.Schemes = append(out.Schemes, benchEntry{
			Scheme:    names[i],
			Sustained: r.Sustained,
			LatencyUs: r.LatencyAt.Seconds() * 1e6,
			Probes:    len(r.Probes),
		})
	}
	f, err := os.Create(a.sloJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	werr := writeServiceBench(f, out)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", a.sloJSON)
}

// writeServiceBench streams the marshaled SLO snapshot to w,
// propagating both marshal and write failures (a full disk must not
// exit zero with a truncated BENCH_service.json behind it).
func writeServiceBench(w io.Writer, out benchFile) error {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal service bench: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write service bench: %w", err)
	}
	return nil
}
