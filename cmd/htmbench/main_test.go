package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"natle/internal/harness"
	"natle/internal/scheme"
	"natle/internal/workload"
)

// errAfter is an io.Writer that accepts n bytes and then fails — the
// shape of a disk filling up mid-snapshot.
type errAfter struct{ n int }

var errSinkFull = errors.New("sink full")

func (w *errAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSinkFull
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errSinkFull
	}
	w.n -= len(p)
	return len(p), nil
}

// sampleServiceBench is a minimal but fully-populated SLO snapshot.
func sampleServiceBench() benchFile {
	return benchFile{
		Workload: "open-loop KV service",
		Machine:  "test",
		Arrival:  "poisson",
		Seed:     1,
		Schemes:  []benchEntry{{Scheme: "tle", Sustained: 1e6, LatencyUs: 2, Probes: 3}},
	}
}

// sampleNativeBench is a minimal native snapshot.
func sampleNativeBench() *harness.NativeBench {
	return &harness.NativeBench{
		Backend:      "native",
		OpsPerThread: 8,
		Seed:         1,
		Sockets:      2,
		Threads:      []int{1},
		Host:         harness.Fingerprint(),
		Workloads: []harness.NativeBenchWorkload{{
			Workload: "counter",
			Schemes: []harness.NativeBenchScheme{{
				Scheme: "native-tle",
				Points: []harness.NativeBenchPoint{{Threads: 1, Ops: 8, OpsPerSec: 1}},
			}},
		}},
	}
}

// TestWriteServiceBenchPropagatesWriteErrors: a writer that fails —
// immediately or mid-stream — must surface the error; a healthy writer
// must receive valid, newline-terminated JSON.
func TestWriteServiceBenchPropagatesWriteErrors(t *testing.T) {
	out := sampleServiceBench()
	if err := writeServiceBench(&errAfter{n: 0}, out); !errors.Is(err, errSinkFull) {
		t.Errorf("immediate failure not propagated: %v", err)
	}
	if err := writeServiceBench(&errAfter{n: 10}, out); !errors.Is(err, errSinkFull) {
		t.Errorf("mid-stream failure not propagated: %v", err)
	}
	var buf bytes.Buffer
	if err := writeServiceBench(&buf, out); err != nil {
		t.Fatalf("healthy writer failed: %v", err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("snapshot missing trailing newline")
	}
	var back benchFile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(back, out) {
		t.Errorf("round trip diverged:\n%+v\n%+v", back, out)
	}
}

// TestWriteNativeBenchPropagatesWriteErrors mirrors the service test
// for the native snapshot path.
func TestWriteNativeBenchPropagatesWriteErrors(t *testing.T) {
	snap := sampleNativeBench()
	if err := writeNativeBench(&errAfter{n: 0}, snap); !errors.Is(err, errSinkFull) {
		t.Errorf("immediate failure not propagated: %v", err)
	}
	if err := writeNativeBench(&errAfter{n: 25}, snap); !errors.Is(err, errSinkFull) {
		t.Errorf("mid-stream failure not propagated: %v", err)
	}
	var buf bytes.Buffer
	if err := writeNativeBench(&buf, snap); err != nil {
		t.Fatalf("healthy writer failed: %v", err)
	}
	var back harness.NativeBench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
}

// TestNativeWorkloadFlagMatchesRegistry holds the -workload flag help
// and the backend-workload registry in agreement: every registered
// workload is named in the help text, and the help text names only
// registered workloads — so adding a workload without updating either
// side fails fast.
func TestNativeWorkloadFlagMatchesRegistry(t *testing.T) {
	help := nativeWorkloadHelp()
	reg := workload.BackendWorkloads()
	if len(reg) == 0 {
		t.Fatal("workload.BackendWorkloads() is empty")
	}
	const prefix = "native backend: workload: "
	if !strings.HasPrefix(help, prefix) {
		t.Fatalf("flag help %q lacks prefix %q", help, prefix)
	}
	named := strings.Split(strings.TrimPrefix(help, prefix), " | ")
	if !reflect.DeepEqual(named, reg) {
		t.Fatalf("flag help names %v, registry has %v", named, reg)
	}
	for _, wl := range named {
		if !workload.IsBackendWorkload(wl) {
			t.Errorf("flag help names %q but IsBackendWorkload rejects it", wl)
		}
	}
	if workload.IsBackendWorkload("no-such-workload") {
		t.Error("IsBackendWorkload accepts an unregistered name")
	}
}

// TestCommittedServiceBenchShape is the bench-check structural gate on
// the committed BENCH_service.json: it must parse into benchFile with
// no unknown fields, and its scheme grid must be exactly the
// batch-capable registry schemes in registry order — so a registry
// change without `make bench-snapshot` fails fast.
func TestCommittedServiceBenchShape(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_service.json")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	var b benchFile
	if err := dec.Decode(&b); err != nil {
		t.Fatalf("BENCH_service.json does not match the benchFile shape: %v", err)
	}
	want := scheme.BatchNames()
	var got []string
	for _, e := range b.Schemes {
		got = append(got, e.Scheme)
		if e.Sustained < 0 || e.Probes <= 0 {
			t.Errorf("scheme %s: implausible entry %+v", e.Scheme, e)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot scheme grid %v != batch-capable registry %v (run `make bench-snapshot`)", got, want)
	}
	if b.Quantile != 0.99 || b.Seed == 0 || b.WindowUs <= 0 {
		t.Errorf("snapshot header fields implausible: %+v", b)
	}
	if !bytes.HasSuffix(buf, []byte("\n")) {
		t.Error("BENCH_service.json missing trailing newline")
	}
}
