// Command natlevet is the repo's static analysis suite: a vet-style
// multichecker running the analyzers under internal/analysis over the
// packages matching its arguments (default ./...). It exits nonzero
// when any diagnostic survives suppression, so `make lint` and CI gate
// on a natlevet-clean tree.
//
// Usage:
//
//	natlevet [-list] [-json] [-<analyzer>=false ...] [packages]
//
// Each analyzer guards an invariant the compiler cannot see; run
// `natlevet -list` for the roster, and see README "Static analysis"
// for which paper phenomenon breaks when each invariant is violated.
// Findings are suppressed per line with
// //natlevet:allow <analyzer>(reason). With -json the findings are
// written to stdout as a JSON array of {file,line,col,analyzer,
// message} records (CI uploads them as a diffable artifact); the exit
// status is unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"natle/internal/analysis"
	"natle/internal/analysis/atomicsafe"
	"natle/internal/analysis/determinism"
	"natle/internal/analysis/exhaustive"
	"natle/internal/analysis/falseshare"
	"natle/internal/analysis/hookcost"
	"natle/internal/analysis/hotalloc"
	"natle/internal/analysis/load"
	"natle/internal/analysis/lockorder"
	"natle/internal/analysis/txnsafe"
)

// analyzers is the natlevet roster, alphabetical.
var analyzers = []*analysis.Analyzer{
	atomicsafe.Analyzer,
	determinism.Analyzer,
	exhaustive.Analyzer,
	falseshare.Analyzer,
	hookcost.Analyzer,
	hotalloc.Analyzer,
	lockorder.Analyzer,
	txnsafe.Analyzer,
}

func main() {
	listOnly := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "write findings to stdout as a JSON array")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true,
			fmt.Sprintf("run the %s analyzer (%s)", a.Name, firstLine(a.Doc)))
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "natlevet: %v\n", err)
		os.Exit(2)
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []diag
	for _, p := range pkgs {
		var pkgDiags []analysis.Diagnostic
		report := func(d analysis.Diagnostic) { pkgDiags = append(pkgDiags, d) }
		analysis.LintDirectives(p.Fset, p.Syntax, known, report)
		allow := analysis.BuildAllowlist(p.Fset, p.Syntax)
		for _, a := range analyzers {
			if !*enabled[a.Name] {
				continue
			}
			pass := analysis.NewPass(a, p.Fset, p.Syntax, p.Types, p.TypesInfo, allow, report)
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "natlevet: %s on %s: %v\n", a.Name, p.PkgPath, err)
				os.Exit(2)
			}
		}
		for _, d := range pkgDiags {
			pos := p.Fset.Position(d.Pos)
			diags = append(diags, diag{
				file: relative(pos.Filename), line: pos.Line, col: pos.Column,
				analyzer: d.Analyzer, message: d.Message,
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	if *jsonOut {
		records := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			records = append(records, jsonDiag{
				File: d.file, Line: d.line, Col: d.col,
				Analyzer: d.analyzer, Message: d.message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(os.Stderr, "natlevet: writing json: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.file, d.line, d.col, d.message, d.analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "natlevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

type diag struct {
	file      string
	line, col int
	analyzer  string
	message   string
}

// jsonDiag is the -json record shape: one finding, sorted by position,
// stable across runs so CI artifacts diff cleanly between PRs.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func relative(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
