// Command natlevet is the repo's static analysis suite: a vet-style
// multichecker running the analyzers under internal/analysis over the
// packages matching its arguments (default ./...). It exits nonzero
// when any diagnostic survives suppression, so `make lint` and CI gate
// on a natlevet-clean tree.
//
// Usage:
//
//	natlevet [-list] [-<analyzer>=false ...] [packages]
//
// Each analyzer guards an invariant the compiler cannot see; run
// `natlevet -list` for the roster, and see README "Static analysis"
// for which paper phenomenon breaks when each invariant is violated.
// Findings are suppressed per line with
// //natlevet:allow <analyzer>(reason).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"natle/internal/analysis"
	"natle/internal/analysis/determinism"
	"natle/internal/analysis/exhaustive"
	"natle/internal/analysis/hookcost"
	"natle/internal/analysis/load"
	"natle/internal/analysis/txnsafe"
)

// analyzers is the natlevet roster, alphabetical.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	exhaustive.Analyzer,
	hookcost.Analyzer,
	txnsafe.Analyzer,
}

func main() {
	listOnly := flag.Bool("list", false, "list analyzers and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true,
			fmt.Sprintf("run the %s analyzer (%s)", a.Name, firstLine(a.Doc)))
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "natlevet: %v\n", err)
		os.Exit(2)
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []diag
	for _, p := range pkgs {
		var pkgDiags []analysis.Diagnostic
		report := func(d analysis.Diagnostic) { pkgDiags = append(pkgDiags, d) }
		analysis.LintDirectives(p.Fset, p.Syntax, known, report)
		allow := analysis.BuildAllowlist(p.Fset, p.Syntax)
		for _, a := range analyzers {
			if !*enabled[a.Name] {
				continue
			}
			pass := analysis.NewPass(a, p.Fset, p.Syntax, p.Types, p.TypesInfo, allow, report)
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "natlevet: %s on %s: %v\n", a.Name, p.PkgPath, err)
				os.Exit(2)
			}
		}
		for _, d := range pkgDiags {
			pos := p.Fset.Position(d.Pos)
			diags = append(diags, diag{
				file: relative(pos.Filename), line: pos.Line, col: pos.Column,
				analyzer: d.Analyzer, message: d.Message,
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.file, d.line, d.col, d.message, d.analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "natlevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

type diag struct {
	file      string
	line, col int
	analyzer  string
	message   string
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func relative(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
