package natle

// This file holds one benchmark per table and figure in the paper's
// evaluation, each regenerating its figure at a reduced sweep scale
// (bench-sized trials; cmd/figures -scale full produces the record in
// EXPERIMENTS.md). Key shape metrics are attached via b.ReportMetric:
// for the throughput figures, "cliff" is the 72-thread value relative
// to the 36-thread value of the first series — the quantity the paper
// is about.

import (
	"testing"

	"natle/internal/harness"
	"natle/internal/vtime"
)

// benchScale is a trimmed sweep so `go test -bench=.` stays tractable
// on one host CPU while preserving every figure's shape.
func benchScale() harness.Scale {
	sc := harness.QuickScale()
	sc.LargeThreads = []int{1, 18, 36, 54, 72}
	sc.SmallThreads = []int{1, 4, 8}
	sc.Dur = 250 * vtime.Microsecond
	sc.Warmup = 100 * vtime.Microsecond
	sc.NATLE.ProfilingLen = 300 * vtime.Microsecond
	sc.NATLE.QuantumLen = 100 * vtime.Microsecond
	sc.NATLEDur = 2600 * vtime.Microsecond
	sc.NATLEWarmup = 1300 * vtime.Microsecond
	return sc
}

var benchFig *harness.Figure // sink

// reportCliff attaches t(72)/t(36) of the named series (or the first).
func reportCliff(b *testing.B, f *harness.Figure) {
	b.Helper()
	if len(f.Series) == 0 {
		return
	}
	s := f.Series[0]
	var at36, at72 float64
	for i, x := range s.X {
		if x == 36 {
			at36 = s.Y[i]
		}
		if x == 72 {
			at72 = s.Y[i]
		}
	}
	if at36 > 0 {
		b.ReportMetric(at72/at36, "cliff-72v36")
	}
}

func BenchmarkFig01AVLSpeedupBothMachines(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig01(sc)
	}
	reportCliff(b, benchFig)
}

func BenchmarkFig02aRetryPolicies(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig02a(sc)
	}
}

func BenchmarkFig02bCommitsAfterHintClear(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig02b(sc)
	}
	// Peak percentage across thread counts (the paper's <=4%).
	if len(benchFig.Series) > 0 {
		peak := 0.0
		for _, y := range benchFig.Series[0].Y {
			if y > peak {
				peak = y
			}
		}
		b.ReportMetric(peak, "peak-pct")
	}
}

func BenchmarkFig03ReadOnlyVs2pct(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig03(sc)
	}
	reportCliff(b, benchFig)
}

func BenchmarkFig04SearchReplace(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig04(sc)
	}
	reportCliff(b, benchFig)
}

func BenchmarkFig05AbortBreakdown(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig05(sc)
	}
}

func BenchmarkFig06CommitDelay(b *testing.B) {
	sc := benchScale()
	sc.Dur = 150 * vtime.Microsecond
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig06(sc)
	}
}

func BenchmarkFig07AVLvsLeafBST(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig07(sc)
	}
}

func BenchmarkLLCMissesDoNotAbort(b *testing.B) {
	var aborts, reads uint64
	for i := 0; i < b.N; i++ {
		r := harness.RunLLC(1<<16, false, 1)
		aborts, reads = r.Aborts, r.Reads
	}
	b.ReportMetric(float64(aborts), "aborts")
	b.ReportMetric(float64(reads), "reads")
}

func BenchmarkFig12AVLTLEvsNATLE(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig12(sc)
	}
}

func BenchmarkFig13BSTAndSkipList(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig13(sc)
	}
}

func BenchmarkFig14SmallKeyRangeBST(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig14(sc)
	}
}

func BenchmarkFig15PinningPolicies(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig15(sc)
	}
}

func BenchmarkFig16TwoTrees(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig16(sc)
	}
}

// Fig 17 benches: one per STAMP program (full grid in cmd/figures).
func benchStamp(b *testing.B, name string) {
	sc := benchScale()
	sc.LargeThreads = []int{1, 36, 72}
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig17(sc, []string{name})
	}
}

func BenchmarkFig17Genome(b *testing.B)       { benchStamp(b, "genome") }
func BenchmarkFig17Intruder(b *testing.B)     { benchStamp(b, "intruder") }
func BenchmarkFig17KMeansHigh(b *testing.B)   { benchStamp(b, "kmeans-high") }
func BenchmarkFig17KMeansLow(b *testing.B)    { benchStamp(b, "kmeans-low") }
func BenchmarkFig17Labyrinth(b *testing.B)    { benchStamp(b, "labyrinth") }
func BenchmarkFig17SSCA2(b *testing.B)        { benchStamp(b, "ssca2") }
func BenchmarkFig17VacationHigh(b *testing.B) { benchStamp(b, "vacation-high") }
func BenchmarkFig17VacationLow(b *testing.B)  { benchStamp(b, "vacation-low") }
func BenchmarkFig17Yada(b *testing.B)         { benchStamp(b, "yada") }

func BenchmarkFig18aCCTSAPinned(b *testing.B) {
	sc := benchScale()
	sc.LargeThreads = []int{1, 36, 72}
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig18(sc, true)
	}
}

func BenchmarkFig18bCCTSAModeTimeline(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig18b(sc)
	}
}

func BenchmarkFig18cCCTSAUnpinned(b *testing.B) {
	sc := benchScale()
	sc.LargeThreads = []int{1, 36, 72}
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig18(sc, false)
	}
}

func BenchmarkFig19aParaheapPinned(b *testing.B) {
	sc := benchScale()
	sc.LargeThreads = []int{1, 36, 72}
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig19(sc, true)
	}
}

func BenchmarkFig19bParaheapUnpinned(b *testing.B) {
	sc := benchScale()
	sc.LargeThreads = []int{1, 36, 72}
	for i := 0; i < b.N; i++ {
		benchFig = harness.Fig19(sc, false)
	}
}

func BenchmarkDelegationBaseline(b *testing.B) {
	sc := benchScale()
	sc.LargeThreads = []int{4, 18, 36}
	for i := 0; i < b.N; i++ {
		benchFig = harness.DelegationTable(sc, []int{1, 4})
	}
}

func BenchmarkLocksComparison(b *testing.B) {
	sc := benchScale()
	sc.LargeThreads = []int{4, 36, 72}
	for i := 0; i < b.N; i++ {
		benchFig = harness.LocksTable(sc)
	}
}

// Ablation benches for the design choices called out in DESIGN.md.

func BenchmarkAblationRemoteLatency(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.AblationRemoteLatency(sc)
	}
}

func BenchmarkAblationProfilingLen(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.AblationProfilingLen(sc)
	}
}

func BenchmarkAblationWarmupThreshold(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.AblationWarmupThreshold(sc)
	}
}

func BenchmarkAblationQuanta(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.AblationQuanta(sc)
	}
}

func BenchmarkAblationAdaptiveProfiling(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		benchFig = harness.AblationAdaptiveProfiling(sc)
	}
}

// Substrate microbenchmarks (host performance of the simulator).

func BenchmarkSimulatorAccessRate(b *testing.B) {
	// Measures host nanoseconds per simulated memory access at high
	// thread counts — the quantity that determines how much virtual
	// time a given host budget buys.
	r := RunWorkload(WorkloadConfig{
		Threads:   36,
		Seed:      1,
		UpdatePct: 100,
		Duration:  vtime.Duration(b.N) * 20 * vtime.Microsecond,
		Warmup:    50 * vtime.Microsecond,
	})
	b.ReportMetric(float64(r.Ops)/float64(b.N), "sim-ops/iter")
}

// Telemetry overhead on the Fig 12 microbenchmark path (AVL, 100%
// updates, keys [0,2048), 36 threads): the no-op recorder vs a full
// collector vs a collector that also buffers the event trace. Compare
// ns/op across the three to see what recording costs the simulator.
func benchTelemetry(b *testing.B, rec TelemetryRecorder) {
	for i := 0; i < b.N; i++ {
		benchResult = RunWorkload(WorkloadConfig{
			Threads:   36,
			Seed:      1,
			UpdatePct: 100,
			KeyRange:  2048,
			Duration:  200 * vtime.Microsecond,
			Warmup:    50 * vtime.Microsecond,
			Recorder:  rec,
		})
	}
}

var benchResult *WorkloadResult // sink

func BenchmarkTelemetryOffNopRecorder(b *testing.B) {
	benchTelemetry(b, nil) // nil keeps the built-in no-op recorder
}

func BenchmarkTelemetryCountersOnly(b *testing.B) {
	benchTelemetry(b, NewTelemetryCollector(TelemetryConfig{}))
}

func BenchmarkTelemetryCountersAndTrace(b *testing.B) {
	benchTelemetry(b, NewTelemetryCollector(TelemetryConfig{TraceCap: 1 << 16}))
}

func BenchmarkSingleThreadAVLOps(b *testing.B) {
	r := RunWorkload(WorkloadConfig{
		Threads:   1,
		Seed:      1,
		UpdatePct: 100,
		Duration:  vtime.Duration(b.N) * 50 * vtime.Microsecond,
		Warmup:    20 * vtime.Microsecond,
	})
	b.ReportMetric(float64(r.Ops)/float64(b.N), "sim-ops/iter")
}
