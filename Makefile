GO ?= go

.PHONY: all build test vet lint race race-executor check bench figures figures-quick chaos clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt -l output is non-empty), on
# vet findings, and on natlevet findings — the repo's own analyzers
# guarding determinism, transaction safety, zero-cost hooks, and enum
# exhaustiveness (see README "Static analysis").
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/natlevet ./...

race:
	$(GO) test -race -timeout 30m ./...

# race-executor focuses the race detector on the parallel trial
# executor and everything it fans out over host goroutines.
race-executor:
	$(GO) test -race -timeout 30m ./internal/expt ./internal/harness ./internal/workload

# The full gate: everything must build, lint clean (gofmt + vet), and
# pass under the race detector.
check:
	$(GO) build ./...
	$(MAKE) lint
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# chaos runs the fault-injection matrix: every named fault schedule
# against every robust synchronization scheme, asserting the
# conservation invariants and fault-free final contents.
chaos:
	$(GO) run ./cmd/htmbench -faults

figures:
	$(GO) run ./cmd/figures

# figures-quick smoke-runs the full figure menu at quick scale on the
# parallel executor (one worker per host core, default -j).
figures-quick:
	$(GO) run ./cmd/figures -scale quick -progress

clean:
	$(GO) clean ./...
