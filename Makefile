GO ?= go

.PHONY: all build test vet race check bench figures clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full gate: everything must build, vet clean, and pass under the
# race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
