GO ?= go

.PHONY: all build test vet lint natlevet-check race race-executor native-check native-check-multi check bench figures figures-quick chaos chaos-native bench-snapshot bench-check service-check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt -l output is non-empty), on
# vet findings, and on natlevet findings — the repo's own eight
# analyzers guarding determinism, transaction safety, zero-cost hooks,
# enum exhaustiveness, atomic access discipline, cache-line layout,
# lock ordering, and hot-path allocation freedom (see README "Static
# analysis"). The ./... pattern covers internal/..., cmd/..., and the
# examples; a package the go tool cannot load fails the run loudly
# instead of silently vanishing from it.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/natlevet ./...

# natlevet-check exercises the analyzer suite itself: the analysistest
# fixture suites for all eight analyzers, the offline loader's
# export-data regression tests (including the generics canary), and a
# full multichecker run over the tree writing the findings artifact CI
# uploads — an empty JSON array on a clean tree, so the artifact diffs
# cleanly between runs.
natlevet-check:
	$(GO) test -count=1 ./internal/analysis/...
	$(GO) run ./cmd/natlevet -json ./... > natlevet.json

race:
	$(GO) test -race -timeout 30m ./...

# race-executor focuses the race detector on the parallel trial
# executor and everything it fans out over host goroutines.
race-executor:
	$(GO) test -race -timeout 30m ./internal/expt ./internal/harness ./internal/workload

# native-check gates the real-execution backend: the native lock
# suite and the cross-backend conformance tests under the race
# detector (real goroutines on real memory are exactly what -race is
# for), the natlevet analyzers over the backend split, and an
# htmbench smoke run that must report nonzero native throughput.
native-check:
	$(GO) test -race -timeout 10m ./internal/native
	$(GO) test -race -timeout 10m -run 'TestCrossBackendConformance|TestSimWorldMatchesKind' ./internal/workload
	$(GO) run ./cmd/natlevet ./internal/backend/... ./internal/native/... ./internal/workload/...
	@out=$$($(GO) run ./cmd/htmbench -backend=native -lock=native-tle -threads 2 -ops 4096); \
	echo "$$out"; \
	echo "$$out" | awk 'NR>3 && $$2+0 > 0 { ok = 1 } END { exit !ok }' || \
		{ echo "native smoke run reported zero throughput"; exit 1; }

# native-check-multi is the genuinely-parallel half of the native
# gate: with GOMAXPROCS pinned above 1, real goroutines interleave on
# real cores, so the striped-TLE seqlock sharding, the native KV
# service pipeline, and the cross-backend conformance paths run under
# -race with actual concurrency, and the disjoint-key speedup test
# (striped native-tle must beat the single-seq lock) actually
# measures something. On a 1-CPU host the speedup test skips with a
# notice naming this target; everything else still runs.
NATIVE_MULTI_PROCS ?= 4
native-check-multi:
	GOMAXPROCS=$(NATIVE_MULTI_PROCS) $(GO) test -race -timeout 15m -run 'TestStriped' ./internal/native
	GOMAXPROCS=$(NATIVE_MULTI_PROCS) $(GO) test -race -timeout 15m ./internal/service
	GOMAXPROCS=$(NATIVE_MULTI_PROCS) $(GO) test -race -timeout 15m -run 'TestCrossBackendConformance|TestStripedDisjointSpeedup' -v ./internal/workload

# The full gate: everything must build, lint clean (gofmt + vet), and
# pass under the race detector.
check:
	$(GO) build ./...
	$(MAKE) lint
	$(GO) test -race -timeout 30m ./...
	$(MAKE) native-check

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# chaos runs the fault-injection matrix on both backends: every named
# fault schedule against every robust synchronization scheme, on the
# simulator and then on real goroutines, asserting the conservation
# invariants and fault-free final contents/checksums.
chaos:
	$(GO) run ./cmd/htmbench -faults

# chaos-native runs the cross-backend chaos suite under the race
# detector: the native fault adapter drives real goroutines, which is
# exactly what -race exists to check.
chaos-native:
	$(GO) test -race -timeout 15m -run 'TestNativeChaos|TestCrossBackendChaos|TestNativeSweepFault' ./internal/harness
	$(GO) run ./cmd/htmbench -backend=native -faults

# bench-snapshot regenerates the committed benchmark snapshots. The
# service half is deterministic — a diff in BENCH_service.json after
# this target means the performance model actually changed. The
# native half (BENCH_native.json) is wall-clock and host-dependent:
# its structure is stable, its values are not, and byte-comparisons
# must exclude the measured fields alongside the "host" fingerprint
# that explains them.
bench-snapshot:
	$(GO) run ./cmd/htmbench -service -slo 1000 -slojson BENCH_service.json
	$(GO) run ./cmd/htmbench -backend=native -threads 1,2,4,8,16 -benchjson BENCH_native.json

# bench-check is the structural gate on the committed snapshots: both
# BENCH_*.json files must parse into their Go shapes with no unknown
# fields and carry the registry's scheme grids — catching a registry
# change that forgot `make bench-snapshot` without comparing any
# host-dependent value.
bench-check:
	$(GO) test -run 'TestCommittedServiceBenchShape' -count=1 ./cmd/htmbench
	$(GO) test -run 'TestCommittedNativeBenchParses' -count=1 ./internal/harness

# service-check regenerates the service figure family at -j 1 and
# -j 4 and fails on any byte difference, then runs the natlevet
# analyzers over the service package (CI runs this as its own job).
service-check:
	$(GO) run ./cmd/figures -fig service-latency,service-slo,service-arrivals,service-chaos,service-overload -j 1 > /tmp/service_j1.txt
	$(GO) run ./cmd/figures -fig service-latency,service-slo,service-arrivals,service-chaos,service-overload -j 4 > /tmp/service_j4.txt
	cmp /tmp/service_j1.txt /tmp/service_j4.txt
	$(GO) run ./cmd/natlevet ./internal/service/...

figures:
	$(GO) run ./cmd/figures

# figures-quick smoke-runs the full figure menu at quick scale on the
# parallel executor (one worker per host core, default -j).
figures-quick:
	$(GO) run ./cmd/figures -scale quick -progress

clean:
	$(GO) clean ./...
