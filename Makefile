GO ?= go

.PHONY: all build test vet lint race check bench figures chaos clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt -l output is non-empty), on
# vet findings, and on natlevet findings — the repo's own analyzers
# guarding determinism, transaction safety, zero-cost hooks, and enum
# exhaustiveness (see README "Static analysis").
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/natlevet ./...

race:
	$(GO) test -race ./...

# The full gate: everything must build, lint clean (gofmt + vet), and
# pass under the race detector.
check:
	$(GO) build ./...
	$(MAKE) lint
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# chaos runs the fault-injection matrix: every named fault schedule
# against every robust synchronization scheme, asserting the
# conservation invariants and fault-free final contents.
chaos:
	$(GO) run ./cmd/htmbench -faults

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
