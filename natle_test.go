package natle

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sim := NewSimulation(SmallMachine(), FillSocketFirst(), 4, 1)
	var ops int
	sim.Main(func(c *Thread) {
		lock := sim.NewNATLELock(c, DefaultNATLEConfig())
		set := sim.NewAVL(c)
		PrefillSet(set, c, 256)
		deadline := c.Now().Add(200 * Microsecond)
		for i := 0; i < 4; i++ {
			sim.Go(c, func(w *Thread) {
				for w.Now() < deadline {
					key := int64(w.Intn(256))
					lock.Critical(w, func() {
						if w.Rand64()&1 == 0 {
							set.Insert(w, key)
						} else {
							set.Delete(w, key)
						}
					})
					ops++
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(Microsecond)
		if err := set.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
	if ops == 0 {
		t.Fatal("no operations executed")
	}
}

func TestPublicAPILockKinds(t *testing.T) {
	for _, lk := range []LockKind{LockPlain, LockTLE, LockNATLE, LockNoSync} {
		r := RunWorkload(WorkloadConfig{
			Prof:     SmallMachine(),
			Threads:  2,
			Seed:     2,
			KeyRange: 128,
			Lock:     lk,
			Duration: 50 * Microsecond,
			Warmup:   20 * Microsecond,
		})
		if r.Ops == 0 {
			t.Errorf("%s: no ops", lk)
		}
	}
}

func TestPublicAPISetKinds(t *testing.T) {
	for _, sk := range []SetKind{SetAVL, SetLeafBST, SetBST, SetSkipList} {
		r := RunWorkload(WorkloadConfig{
			Prof:      SmallMachine(),
			Threads:   2,
			Seed:      3,
			SetKind:   sk,
			KeyRange:  128,
			UpdatePct: 50,
			Duration:  50 * Microsecond,
			Warmup:    20 * Microsecond,
		})
		if r.Ops == 0 {
			t.Errorf("%s: no ops", sk)
		}
	}
}

func TestMachineProfiles(t *testing.T) {
	lg, sm := LargeMachine(), SmallMachine()
	if lg.HWThreads() != 72 {
		t.Errorf("large machine has %d hardware threads, want 72", lg.HWThreads())
	}
	if sm.HWThreads() != 8 {
		t.Errorf("small machine has %d hardware threads, want 8", sm.HWThreads())
	}
	if lg.RemoteHit <= lg.L3Hit {
		t.Error("remote transfers must cost more than same-socket transfers")
	}
}
