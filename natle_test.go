package natle

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sim := NewSimulation(SmallMachine(), FillSocketFirst(), 4, 1)
	var ops int
	sim.Main(func(c *Thread) {
		lock := sim.NewNATLELock(c, DefaultNATLEConfig())
		set := sim.NewAVL(c)
		PrefillSet(set, c, 256)
		deadline := c.Now().Add(200 * Microsecond)
		for i := 0; i < 4; i++ {
			sim.Go(c, func(w *Thread) {
				for w.Now() < deadline {
					key := int64(w.Intn(256))
					lock.Critical(w, func() {
						if w.Rand64()&1 == 0 {
							set.Insert(w, key)
						} else {
							set.Delete(w, key)
						}
					})
					ops++
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(Microsecond)
		if err := set.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
	if ops == 0 {
		t.Fatal("no operations executed")
	}
}

// TestPublicAPISchemes drives the microbenchmark through every
// registry entry via the facade: the lock kinds are not a closed enum,
// they are whatever the scheme registry holds.
func TestPublicAPISchemes(t *testing.T) {
	for _, name := range SchemeNames() {
		d, err := LookupScheme(name)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Mutex {
			continue // unsynchronized updates would corrupt the set
		}
		r := RunWorkload(WorkloadConfig{
			Prof:     SmallMachine(),
			Threads:  2,
			Seed:     2,
			KeyRange: 128,
			Lock:     LockKind(name),
			Duration: 50 * Microsecond,
			Warmup:   20 * Microsecond,
		})
		if r.Ops == 0 {
			t.Errorf("%s: no ops", name)
		}
	}
}

// TestPublicAPINewScheme constructs a scheme directly (without the
// workload driver) through the facade.
func TestPublicAPINewScheme(t *testing.T) {
	sim := NewSimulation(SmallMachine(), FillSocketFirst(), 2, 1)
	sim.Main(func(c *Thread) {
		cs, err := sim.NewScheme(c, "tle", SchemeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := 0; i < 10; i++ {
			cs.Critical(c, func() { n++ })
		}
		if n != 10 {
			t.Errorf("critical sections ran %d times, want 10", n)
		}
		if st := cs.Stats(); st.TLE.Ops != 10 {
			t.Errorf("scheme stats report %d ops, want 10", st.TLE.Ops)
		}
		if _, err := sim.NewScheme(c, "bogus", SchemeOptions{}); err == nil {
			t.Error("NewScheme(bogus) should fail")
		}
	})
}

func TestPublicAPILockKinds(t *testing.T) {
	for _, lk := range []LockKind{LockPlain, LockTLE, LockNATLE, LockNoSync} {
		r := RunWorkload(WorkloadConfig{
			Prof:     SmallMachine(),
			Threads:  2,
			Seed:     2,
			KeyRange: 128,
			Lock:     lk,
			Duration: 50 * Microsecond,
			Warmup:   20 * Microsecond,
		})
		if r.Ops == 0 {
			t.Errorf("%s: no ops", lk)
		}
	}
}

func TestPublicAPISetKinds(t *testing.T) {
	for _, sk := range []SetKind{SetAVL, SetLeafBST, SetBST, SetSkipList} {
		r := RunWorkload(WorkloadConfig{
			Prof:      SmallMachine(),
			Threads:   2,
			Seed:      3,
			SetKind:   sk,
			KeyRange:  128,
			UpdatePct: 50,
			Duration:  50 * Microsecond,
			Warmup:    20 * Microsecond,
		})
		if r.Ops == 0 {
			t.Errorf("%s: no ops", sk)
		}
	}
}

func TestMachineProfiles(t *testing.T) {
	lg, sm := LargeMachine(), SmallMachine()
	if lg.HWThreads() != 72 {
		t.Errorf("large machine has %d hardware threads, want 72", lg.HWThreads())
	}
	if sm.HWThreads() != 8 {
		t.Errorf("small machine has %d hardware threads, want 8", sm.HWThreads())
	}
	if lg.RemoteHit <= lg.L3Hit {
		t.Error("remote transfers must cost more than same-socket transfers")
	}
}
