// Retry policies (the paper's Figure 2a): on a large machine it pays
// to ignore the hardware hint bit and to tolerate many failed
// transactions, because one thread taking the fallback lock blocks
// everyone.
package main

import (
	"fmt"

	"natle"
)

func main() {
	policies := []natle.TLEPolicy{
		{Attempts: 5, HonorHint: true},
		{Attempts: 20, HonorHint: true},
		{Attempts: 5},
		{Attempts: 20},
		{Attempts: 5, CountLockHeld: true},
		{Attempts: 20, CountLockHeld: true},
	}
	threads := []int{1, 8, 18, 36}
	fmt.Printf("%-22s", "policy")
	for _, n := range threads {
		fmt.Printf(" %12d", n)
	}
	fmt.Println(" (threads)")
	for _, pol := range policies {
		fmt.Printf("%-22s", pol.Name())
		for _, n := range threads {
			r := natle.RunWorkload(natle.WorkloadConfig{
				Prof:      natle.LargeMachine(),
				Threads:   n,
				Seed:      1,
				KeyRange:  131072,
				UpdatePct: 100,
				TLE:       pol,
				MemWords:  1 << 22,
				Duration:  natle.Millisecond,
			})
			fmt.Printf(" %12.0f", r.Throughput())
		}
		fmt.Println()
	}
	fmt.Println("\nCounting lock-held attempts (×-count-lock) triggers the lemming")
	fmt.Println("effect; honoring the hint bit gives up on transiently-overflowing")
	fmt.Println("transactions that would have succeeded on retry.")
}
