// Two trees (the paper's Figure 16): half the threads hammer an
// update-only AVL tree, the other half search a read-only one. NATLE
// profiles each lock separately — it throttles the update tree's lock
// to one socket at a time while leaving the search tree's lock
// unthrottled.
package main

import (
	"fmt"

	"natle"
)

func main() {
	for _, lk := range []natle.LockKind{natle.LockTLE, natle.LockNATLE} {
		fmt.Printf("— %s —\n", lk)
		for _, threads := range []int{8, 36, 72} {
			ncfg := natle.QuickNATLEConfig()
			r := natle.RunTwoTrees(natle.TwoTreesConfig{
				Base: natle.WorkloadConfig{
					Prof:     natle.LargeMachine(),
					Threads:  threads,
					Seed:     1,
					KeyRange: 2048,
					Lock:     lk,
					NATLE:    &ncfg,
					Duration: 4 * natle.Millisecond,
					Warmup:   1300 * natle.Microsecond,
				},
				SearchWork: 256,
			})
			fmt.Printf("  %2d threads: combined %10.0f ops/s (updates %10.0f, searches %10.0f)\n",
				threads, r.CombinedThroughput(), r.UpdateThroughput(), r.SearchThroughput())
			if lk == natle.LockNATLE && threads == 72 {
				printDecisions("update tree", r.UpdateSync.Timeline)
				printDecisions("search tree", r.SearchSync.Timeline)
			}
		}
	}
}

func printDecisions(name string, tl []natle.ModeSample) {
	throttled := 0
	for _, m := range tl {
		if m.FastestMode != 2 {
			throttled++
		}
	}
	fmt.Printf("    %s lock: throttled to one socket in %d/%d profiling cycles\n",
		name, throttled, len(tl))
}
