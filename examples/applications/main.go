// Applications: the paper's three real-application workloads — STAMP
// (Fig 17), ccTSA sequence assembly (Fig 18), and paraheap-k
// clustering (Fig 19) — run through the public API, comparing TLE and
// NATLE at a cross-socket thread count.
package main

import (
	"fmt"
	"log"

	"natle"
)

func main() {
	const threads = 54 // 36 on socket 0 + 18 on socket 1
	ncfg := natle.QuickNATLEConfig()

	fmt.Println("— STAMP (total runtime, lower is better) —")
	for _, name := range []string{"ssca2", "vacation-high", "labyrinth"} {
		fmt.Printf("  %-14s", name)
		for _, lk := range []string{"tle", "natle"} {
			cfg := natle.STAMPConfig{Name: name}
			cfg.Threads = threads
			cfg.Seed = 1
			cfg.Lock = lk
			cfg.NATLE = &ncfg
			r, err := natle.RunSTAMP(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s=%-12v", lk, r.Runtime)
		}
		fmt.Println()
	}

	fmt.Println("— ccTSA (synthetic genome assembly) —")
	for _, lk := range []string{"tle", "natle"} {
		cfg := natle.DefaultCCTSAConfig()
		cfg.Threads = threads
		cfg.Seed = 1
		cfg.Lock = lk
		cfg.NATLE = &ncfg
		r := natle.RunCCTSA(cfg)
		fmt.Printf("  %-6s runtime=%-12v contigs=%d\n", lk, r.Runtime, r.Contigs)
	}

	fmt.Println("— paraheap-k (heap-based clustering, threads re-created per phase) —")
	for _, lk := range []string{"tle", "natle"} {
		cfg := natle.DefaultParaheapConfig()
		cfg.Threads = threads
		cfg.Seed = 1
		cfg.Lock = lk
		cfg.NATLE = &ncfg
		r := natle.RunParaheap(cfg)
		fmt.Printf("  %-6s runtime=%-12v iterations=%d\n", lk, r.Runtime, r.Iterations)
	}
}
