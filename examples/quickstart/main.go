// Quickstart: build the simulated two-socket machine, protect an AVL
// tree with one NATLE lock, and watch the lock rescue a workload that
// collapses across sockets under plain TLE.
package main

import (
	"fmt"

	"natle"
)

func main() {
	for _, kind := range []natle.WorkloadConfig{
		{Lock: natle.LockTLE},
		{Lock: natle.LockNATLE},
	} {
		fmt.Printf("— %s —\n", kind.Lock)
		for _, threads := range []int{1, 18, 36, 72} {
			cfg := kind
			cfg.Prof = natle.LargeMachine()
			cfg.Pin = natle.FillSocketFirst()
			cfg.Threads = threads
			cfg.Seed = 1
			cfg.KeyRange = 2048
			cfg.UpdatePct = 100
			cfg.Duration = 2 * natle.Millisecond
			if cfg.Lock == natle.LockNATLE {
				// Several short NATLE cycles must fit in the trial.
				ncfg := natle.QuickNATLEConfig()
				cfg.NATLE = &ncfg
				cfg.Duration = 4 * natle.Millisecond
				cfg.Warmup = 1300 * natle.Microsecond
			}
			r := natle.RunWorkload(cfg)
			fmt.Printf("  %2d threads: %11.0f ops/s  (abort rate %4.1f%%)\n",
				threads, r.Throughput(), 100*r.HTM.AbortRate())
		}
	}
	fmt.Println("\nTLE collapses once threads spill onto the second socket;")
	fmt.Println("NATLE profiles each lock and throttles to one socket at a time.")
}
