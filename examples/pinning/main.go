// Pinning policies (the paper's Figure 15 and Section 5.4): how the
// placement of threads across sockets changes where the NUMA cliff
// appears, and how NATLE compensates under each policy.
package main

import (
	"fmt"

	"natle"
)

func main() {
	policies := []struct {
		name string
		pin  natle.PinPolicy
	}{
		{"fill-socket-first", natle.FillSocketFirst()},
		{"alternating", natle.AlternatingSockets()},
		{"unpinned (OS)", natle.Unpinned()},
	}
	for _, pol := range policies {
		fmt.Printf("— %s —\n", pol.name)
		for _, lk := range []natle.LockKind{natle.LockTLE, natle.LockNATLE} {
			fmt.Printf("  %-6s:", lk)
			for _, threads := range []int{4, 16, 36, 72} {
				ncfg := natle.QuickNATLEConfig()
				r := natle.RunWorkload(natle.WorkloadConfig{
					Prof:         natle.LargeMachine(),
					Pin:          pol.pin,
					Threads:      threads,
					Seed:         1,
					KeyRange:     2048,
					UpdatePct:    100,
					ExternalWork: 256,
					Lock:         lk,
					NATLE:        &ncfg,
					Duration:     3 * natle.Millisecond,
					Warmup:       1300 * natle.Microsecond,
				})
				fmt.Printf("  %2d->%9.0f", threads, r.Throughput())
			}
			fmt.Println()
		}
	}
	fmt.Println("\nWith alternating or OS placement, cross-socket traffic starts at 2")
	fmt.Println("threads, so NATLE's advantage appears long before 36 threads.")
}
