package natle_test

import (
	"fmt"

	"natle"
)

// ExampleSimulation shows the basic pattern: build a machine, create a
// lock and a data structure in simulated memory, and run simulated
// threads against them. The simulator is deterministic, so the output
// is stable.
func ExampleSimulation() {
	sim := natle.NewSimulation(natle.SmallMachine(), natle.FillSocketFirst(), 2, 1)
	var size int
	sim.Main(func(c *natle.Thread) {
		lock := sim.NewTLELock(c, natle.TLE20())
		set := sim.NewAVL(c)
		for i := 0; i < 2; i++ {
			base := int64(i * 100)
			sim.Go(c, func(w *natle.Thread) {
				for k := int64(0); k < 50; k++ {
					lock.Critical(w, func() { set.Insert(w, base+k) })
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(natle.Microsecond)
		size = len(set.Keys())
	})
	fmt.Println("keys:", size)
	// Output: keys: 100
}

// ExampleRunWorkload runs one microbenchmark trial and reports whether
// transactions were elided.
func ExampleRunWorkload() {
	r := natle.RunWorkload(natle.WorkloadConfig{
		Prof:      natle.SmallMachine(),
		Threads:   4,
		Seed:      1,
		KeyRange:  256,
		UpdatePct: 50,
		Duration:  100 * natle.Microsecond,
		Warmup:    50 * natle.Microsecond,
	})
	fmt.Println("elided:", r.HTM.Commits > 0, "fallbacks-bounded:", r.Sync.TLE.Fallbacks < r.Sync.TLE.Ops)
	// Output: elided: true fallbacks-bounded: true
}

// ExampleMachineProfile prints the large machine's topology.
func ExampleMachineProfile() {
	p := natle.LargeMachine()
	fmt.Printf("%d sockets x %d cores x %d threads = %d hardware threads\n",
		p.Sockets, p.CoresPerSocket, p.ThreadsPerCore, p.HWThreads())
	// Output: 2 sockets x 18 cores x 2 threads = 72 hardware threads
}
