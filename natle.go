// Package natle is a Go reproduction of "Investigating the Performance
// of Hardware Transactions on a Multi-Socket Machine" (Brown, Kogan,
// Lev, Luchangco — SPAA 2016).
//
// Go exposes neither HTM intrinsics nor thread pinning, so the package
// ships the machine itself: a deterministic discrete-event simulator of
// a two-socket 72-thread Haswell-class system (and a small 8-thread
// one), with a MESI-style cache/coherence model and a best-effort
// hardware transactional memory faithful to Intel TSX/RTM behaviour.
// On top of that substrate it provides:
//
//   - TLE: transactional lock elision with the paper's retry-policy
//     matrix (attempt counts, hint-bit handling, anti-lemming);
//   - NATLE: the paper's contribution — per-lock adaptive socket
//     throttling driven by periodic profiling (Figures 8-11);
//   - the microbenchmark suite (AVL tree, unbalanced internal and
//     leaf-oriented BSTs, skip-list) and workload driver;
//   - the application workloads (a scaled STAMP suite, the ccTSA
//     assembler, paraheap-k) and a delegation baseline;
//   - a harness regenerating every figure and table in the paper's
//     evaluation (see cmd/figures and EXPERIMENTS.md).
//
// # Quick start
//
//	sim := natle.NewSimulation(natle.LargeMachine(), natle.FillSocketFirst(), 72, 1)
//	sim.Main(func(c *natle.Thread) {
//	    lock := sim.NewNATLELock(c, natle.DefaultNATLEConfig())
//	    set := sim.NewAVL(c)
//	    for i := 0; i < 72; i++ {
//	        sim.Go(c, func(w *natle.Thread) {
//	            lock.Critical(w, func() { set.Insert(w, int64(w.Intn(2048))) })
//	        })
//	    }
//	    c.WaitOthers(natle.Microsecond)
//	})
//
// Deterministic: identical configurations and seeds produce identical
// results, which the test suite exploits heavily.
package natle

import (
	"natle/internal/backend"
	"natle/internal/cctsa"
	"natle/internal/cohort"
	"natle/internal/fault"
	"natle/internal/harness"
	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/paraheap"
	"natle/internal/scheme"
	"natle/internal/sets"
	"natle/internal/sim"
	"natle/internal/spinlock"
	"natle/internal/stamp"
	"natle/internal/telemetry"
	"natle/internal/tle"
	"natle/internal/vtime"
	"natle/internal/workload"
)

// Re-exported core types. Aliases let external code use the internal
// implementations through this package's namespace.
type (
	// MachineProfile describes a simulated machine (topology, latency
	// table, HTM capacities).
	MachineProfile = machine.Profile
	// PinPolicy places software threads on cores.
	PinPolicy = machine.PinPolicy
	// Thread is a simulated thread's execution context.
	Thread = sim.Ctx
	// Engine is the discrete-event simulator core.
	Engine = sim.Engine
	// HTM is the transactional-memory runtime and shared memory.
	HTM = htm.System
	// CriticalSection runs critical sections (TLE, NATLE, plain, none).
	CriticalSection = lock.CS
	// TLEPolicy selects a TLE retry policy.
	TLEPolicy = tle.Policy
	// TLELock is an elidable lock.
	TLELock = tle.Lock
	// NATLEConfig tunes the NATLE profiling cycle.
	NATLEConfig = natle.Config
	// NATLELock is a NATLE adaptive lock.
	NATLELock = natle.Lock
	// SpinLock is the test-and-test-and-set fallback lock.
	SpinLock = spinlock.Lock
	// Set is the abstract set implemented by the benchmark structures.
	Set = sets.Set
	// Duration is a virtual-time span (picoseconds).
	Duration = vtime.Duration
	// Time is an absolute virtual timestamp.
	Time = vtime.Time
	// WorkloadConfig configures a microbenchmark trial.
	WorkloadConfig = workload.Config
	// WorkloadResult reports a microbenchmark trial.
	WorkloadResult = workload.Result
	// TwoTreesConfig configures the paper's two-tree experiment (Fig 16).
	TwoTreesConfig = workload.TwoTreesConfig
	// TwoTreesResult reports the two-tree experiment.
	TwoTreesResult = workload.TwoTreesResult
	// ModeSample is one NATLE profiling decision.
	ModeSample = natle.ModeSample
	// LockKind selects a synchronization scheme by name.
	LockKind = workload.LockKind
	// SetKind selects a set implementation by name.
	SetKind = sets.Kind
	// Figure is a reproduced chart/table from the paper.
	Figure = harness.Figure
	// Scale selects figure sweep density.
	Scale = harness.Scale
	// STAMPResult reports one STAMP run.
	STAMPResult = stamp.Result
	// CCTSAConfig configures the ccTSA assembler workload.
	CCTSAConfig = cctsa.Config
	// CCTSAResult reports one ccTSA run.
	CCTSAResult = cctsa.Result
	// ParaheapConfig configures the paraheap-k workload.
	ParaheapConfig = paraheap.Config
	// ParaheapResult reports one paraheap-k run.
	ParaheapResult = paraheap.Result
	// CohortLock is the NUMA-aware cohort-lock baseline (extension).
	CohortLock = cohort.Lock
	// TelemetryRecorder receives transaction lifecycle, fallback,
	// throttle-wait, and cache events (see internal/telemetry).
	TelemetryRecorder = telemetry.Recorder
	// TelemetryCollector aggregates telemetry into counters, latency
	// histograms, per-lock × per-socket attribution, and an optional
	// bounded event trace.
	TelemetryCollector = telemetry.Collector
	// TelemetryConfig sizes a TelemetryCollector.
	TelemetryConfig = telemetry.Config
	// TelemetrySummary is a collector's exportable roll-up.
	TelemetrySummary = telemetry.Summary
	// Scheme describes one registered synchronization scheme (see
	// internal/scheme); its New method constructs instances.
	Scheme = scheme.Descriptor
	// SchemeOptions overrides a scheme's baked-in configuration.
	SchemeOptions = scheme.Options
	// SchemeStats is the uniform per-scheme counter snapshot (TLE
	// counters, NATLE timeline, scheme-specific extras).
	SchemeStats = scheme.Stats
	// SchemeInstance is a constructed scheme: a CriticalSection that
	// also reports SchemeStats.
	SchemeInstance = scheme.Instance
	// FaultProfile configures the deterministic fault injector
	// (internal/fault): spurious aborts, lying hint bits, capacity
	// squeezes, delayed invalidations, critical-section stalls. Assign
	// to WorkloadConfig.Fault.
	FaultProfile = fault.Profile
	// FaultSchedule is a named FaultProfile reproducing one of the
	// paper's pathologies.
	FaultSchedule = fault.Schedule
	// FaultStats counts what an injector actually did during a run.
	FaultStats = fault.Stats
	// ChaosConfig configures the chaos matrix (fault schedules ×
	// robust schemes with conservation and contents invariants).
	ChaosConfig = harness.ChaosConfig
	// ChaosCell is one (schedule, scheme) outcome of the chaos matrix.
	ChaosCell = harness.ChaosCell
	// TLEBreakerConfig tunes the per-lock circuit breaker
	// (TLEPolicy.Breaker) that degrades TLE to the plain mutex under
	// pathological abort rates.
	TLEBreakerConfig = tle.BreakerConfig
)

// STAMPConfig configures one STAMP benchmark run by name.
type STAMPConfig struct {
	Name string
	stamp.Config
}

// NewCohortLock allocates a cohort lock (extension baseline; see
// internal/cohort).
func (s *Simulation) NewCohortLock(c *Thread, maxPass int) *CohortLock {
	return cohort.New(s.HTM, c, maxPass)
}

// Common virtual durations.
const (
	Nanosecond  = vtime.Nanosecond
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
)

// Lock kinds accepted by WorkloadConfig.Lock.
const (
	LockPlain  = workload.LockPlain
	LockTLE    = workload.LockTLE
	LockNATLE  = workload.LockNATLE
	LockCohort = workload.LockCohort
	LockNoSync = workload.LockNoSync
)

// Set kinds accepted by WorkloadConfig.SetKind.
const (
	SetAVL      = sets.KindAVL
	SetLeafBST  = sets.KindLeafBST
	SetBST      = sets.KindBST
	SetSkipList = sets.KindSkipList
)

// LargeMachine returns the two-socket 72-thread profile (Oracle X5-2).
func LargeMachine() *MachineProfile { return machine.LargeX52() }

// SmallMachine returns the single-socket 8-thread profile (i7-4770).
func SmallMachine() *MachineProfile { return machine.SmallI7() }

// FillSocketFirst returns the paper's default pinning policy.
func FillSocketFirst() PinPolicy { return machine.FillSocketFirst{} }

// AlternatingSockets returns the even/odd-socket pinning policy.
func AlternatingSockets() PinPolicy { return machine.Alternating{} }

// Unpinned leaves placement to the simulated OS scheduler.
func Unpinned() PinPolicy { return machine.Unpinned{} }

// TLE20 returns the paper's default retry policy (20 attempts, ignore
// the hint bit, anti-lemming on).
func TLE20() TLEPolicy { return tle.TLE20() }

// DefaultNATLEConfig returns the scaled NATLE cycle configuration
// (3 ms cycle — the paper's 300 ms structure at 1/100 scale). Trials
// should run for at least two or three cycles.
func DefaultNATLEConfig() NATLEConfig { return natle.DefaultConfig() }

// QuickNATLEConfig returns a shorter-cycle configuration (1.2 ms
// cycle) for demos and tests: the profiling windows stay long enough
// (100 us per mode) for clean measurements, but the quanta are
// shortened so a few-millisecond trial spans several cycles.
func QuickNATLEConfig() NATLEConfig {
	cfg := natle.DefaultConfig()
	cfg.ProfilingLen = 300 * Microsecond
	cfg.QuantumLen = 100 * Microsecond
	cfg.WarmupThreshold = 64
	return cfg
}

// NoSync returns the unsynchronized CriticalSection (every body runs
// directly — only correct for read-only or benign-race workloads).
func NoSync() CriticalSection { return lock.NoSync{} }

// Simulation bundles one simulated machine instance: the event engine
// and its memory/HTM runtime.
type Simulation struct {
	Engine *Engine
	HTM    *HTM
}

// NewSimulation creates a machine. planned is the worker-thread count
// the pinning policy should lay out for; seed fixes all randomness.
func NewSimulation(p *MachineProfile, pin PinPolicy, planned int, seed int64) *Simulation {
	e := sim.New(p, pin, planned, seed)
	return &Simulation{Engine: e, HTM: htm.NewSystem(e, 1<<20)}
}

// Main spawns fn as the driver thread and runs the simulation to
// completion. It must be called exactly once.
func (s *Simulation) Main(fn func(c *Thread)) {
	s.Engine.Spawn(nil, fn)
	s.Engine.Run()
}

// Go spawns a worker thread from within the simulation (normally from
// the driver). Placement follows the pinning policy.
func (s *Simulation) Go(parent *Thread, fn func(c *Thread)) *Thread {
	return s.Engine.Spawn(parent, fn)
}

// NewSpinLock allocates a plain spin lock homed on socket 0.
func (s *Simulation) NewSpinLock(c *Thread) *SpinLock {
	return spinlock.New(s.HTM, c, 0)
}

// NewTLELock allocates a TLE lock with the given policy.
func (s *Simulation) NewTLELock(c *Thread, pol TLEPolicy) *TLELock {
	return tle.New(s.HTM, c, 0, pol)
}

// NewNATLELock allocates a NATLE lock over a TLE-20 inner lock.
func (s *Simulation) NewNATLELock(c *Thread, cfg NATLEConfig) *NATLELock {
	return natle.New(s.HTM, c, tle.New(s.HTM, c, 0, tle.TLE20()), cfg)
}

// SchemeNames lists every simulated synchronization scheme, sorted.
// All of them are accepted by WorkloadConfig.Lock and the application
// workloads' Lock fields.
func SchemeNames() []string { return scheme.NamesFor(backend.Sim) }

// LookupScheme finds a registered scheme descriptor by name.
func LookupScheme(name string) (*Scheme, error) { return scheme.LookupFor(backend.Sim, name) }

// NewScheme constructs an instance of the named scheme (with opt
// overriding its defaults), homed on socket 0. It is the registry-
// driven generalization of NewTLELock/NewNATLELock/NewSpinLock: any
// scheme name from SchemeNames works here without a dedicated
// constructor.
func (s *Simulation) NewScheme(c *Thread, name string, opt SchemeOptions) (SchemeInstance, error) {
	d, err := scheme.LookupFor(backend.Sim, name)
	if err != nil {
		return nil, err
	}
	return d.Configure(opt).New(s.HTM, c, 0), nil
}

// NewAVL allocates an AVL tree in simulated memory.
func (s *Simulation) NewAVL(c *Thread) *sets.AVL { return sets.NewAVL(s.HTM, c) }

// NewLeafBST allocates a leaf-oriented BST in simulated memory.
func (s *Simulation) NewLeafBST(c *Thread) *sets.LeafBST { return sets.NewLeafBST(s.HTM, c) }

// NewBST allocates an internal BST in simulated memory.
func (s *Simulation) NewBST(c *Thread) *sets.BST { return sets.NewBST(s.HTM, c) }

// NewSkipList allocates a skip-list in simulated memory.
func (s *Simulation) NewSkipList(c *Thread) *sets.SkipList { return sets.NewSkipList(s.HTM, c) }

// PrefillSet inserts half the keys of [0, keyRange) (the benchmark
// prefill step).
func PrefillSet(set Set, c *Thread, keyRange int64) { sets.Prefill(set, c, keyRange) }

// RunWorkload executes one microbenchmark trial (see WorkloadConfig).
func RunWorkload(cfg WorkloadConfig) *WorkloadResult { return workload.Run(cfg) }

// NewTelemetryCollector allocates a telemetry collector; assign it to
// WorkloadConfig.Recorder (or HTM.SetRecorder) to record a trial.
func NewTelemetryCollector(cfg TelemetryConfig) *TelemetryCollector {
	return telemetry.NewCollector(cfg)
}

// RunTwoTrees executes the Fig 16 two-tree experiment.
func RunTwoTrees(cfg TwoTreesConfig) *TwoTreesResult { return workload.RunTwoTrees(cfg) }

// STAMPNames lists the available STAMP benchmarks (Fig 17).
func STAMPNames() []string { return stamp.Names() }

// RunSTAMP executes one STAMP benchmark and returns its result.
func RunSTAMP(cfg STAMPConfig) (*STAMPResult, error) {
	b, err := stamp.New(cfg.Name)
	if err != nil {
		return nil, err
	}
	return stamp.Run(b, cfg.Config), nil
}

// RunCCTSA executes the ccTSA assembly workload (Fig 18).
func RunCCTSA(cfg CCTSAConfig) *CCTSAResult { return cctsa.Run(cfg) }

// DefaultCCTSAConfig returns the synthetic E. coli stand-in sizing.
func DefaultCCTSAConfig() CCTSAConfig { return cctsa.DefaultConfig() }

// RunParaheap executes the paraheap-k clustering workload (Fig 19).
func RunParaheap(cfg ParaheapConfig) *ParaheapResult { return paraheap.Run(cfg) }

// DefaultParaheapConfig returns the synthetic sky sizing.
func DefaultParaheapConfig() ParaheapConfig { return paraheap.DefaultConfig() }

// QuickScale returns the fast figure-sweep scale.
func QuickScale() Scale { return harness.QuickScale() }

// FullScale returns the dense figure-sweep scale used for
// EXPERIMENTS.md.
func FullScale() Scale { return harness.FullScale() }

// FaultScheduleNames lists the named fault schedules, mild to severe.
func FaultScheduleNames() []string { return fault.ScheduleNames() }

// LookupFaultSchedule finds a named fault schedule (see
// FaultScheduleNames); the error lists the valid names.
func LookupFaultSchedule(name string) (FaultSchedule, error) {
	return fault.LookupSchedule(name)
}

// DefaultBreakerConfig returns the circuit-breaker tuning used by the
// tle-robust scheme.
func DefaultBreakerConfig() TLEBreakerConfig { return tle.DefaultBreakerConfig() }

// RunChaos runs the chaos matrix: every requested fault schedule
// against every requested robust scheme, checking conservation and
// final-contents invariants per cell.
func RunChaos(cfg ChaosConfig) ([]ChaosCell, error) { return harness.RunChaos(cfg) }

// ChaosReport renders chaos cells one line each and reports whether
// every cell held its invariants.
func ChaosReport(cells []ChaosCell) (string, bool) { return harness.ChaosReport(cells) }
