module natle

go 1.23
