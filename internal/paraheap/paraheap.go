// Package paraheap reproduces the paper's Section 5.4 application:
// paraheap-k, a small parallel heap-based k-means clustering program
// developed for galactic spectral data [Jenne et al. 2014].
//
// Structure mirrored from the paper's description:
//
//   - 7 critical sections: 6 very short ones updating shared counters,
//     plus one that inserts a data point into a shared heap;
//   - multiple locks (each counter group and the heap have their own),
//     making it an interesting multi-lock NATLE case;
//   - worker threads are created anew twice per iteration (once for
//     the associate phase, once for the recalculate phase), so thread
//     creation and pinning overhead recur throughout the run — the
//     effect behind the paper's pinned-vs-unpinned Figure 19;
//   - iteration stops when the share of points keeping their centroid
//     association exceeds a threshold (99.9% by default).
//
// The galactic input file is replaced by a synthetic mixture of
// Gaussian clusters (same code path; the clustering loop only sees
// coordinates).
package paraheap

import (
	"fmt"
	"math"

	"natle/internal/backend"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/mem"
	"natle/internal/natle"
	"natle/internal/scheme"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// Config sizes the clustering job.
type Config struct {
	Points    int
	K         int     // clusters
	Dims      int     // coordinate dimensions (3 for galactic data)
	Threshold float64 // stable-association share that stops iteration
	MaxIters  int

	Prof    *machine.Profile
	Pin     machine.PinPolicy
	Threads int
	Seed    int64

	Lock  string // any scheme.Names() entry; "" = "tle"
	NATLE *natle.Config
}

// DefaultConfig returns the scaled-down synthetic sky.
func DefaultConfig() Config {
	return Config{
		Points:    16384,
		K:         8,
		Dims:      3,
		Threshold: 0.999,
		MaxIters:  14,
	}
}

// Result reports one run.
type Result struct {
	Threads    int
	Runtime    vtime.Duration // data-processing time only
	Iterations int
	HTM        htm.Stats
	Locks      []scheme.Stats // per-lock scheme counters (7 entries)
}

const heapCap = 64 // top-distance outlier heap capacity

// Run executes paraheap-k.
func Run(cfg Config) *Result {
	if cfg.Points == 0 {
		base := DefaultConfig()
		base.Prof, base.Pin = cfg.Prof, cfg.Pin
		base.Threads, base.Seed = cfg.Threads, cfg.Seed
		base.Lock, base.NATLE = cfg.Lock, cfg.NATLE
		cfg = base
	}
	if cfg.Prof == nil {
		cfg.Prof = machine.LargeX52()
	}
	if cfg.Pin == nil {
		cfg.Pin = machine.FillSocketFirst{}
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	e := sim.New(cfg.Prof, cfg.Pin, cfg.Threads+1, cfg.Seed)
	sys := htm.NewSystem(e, 1<<22)
	res := &Result{Threads: cfg.Threads}

	e.Spawn(nil, func(c *sim.Ctx) {
		p := newProgram(cfg, sys, c)
		start := c.Now()
		p.cluster(c, e)
		res.Runtime = c.Now().Sub(start)
		res.Iterations = p.iters
		res.HTM = sys.Stats
		for _, l := range p.locks {
			res.Locks = append(res.Locks, l.Stats())
		}
		if err := p.validate(); err != nil {
			panic(fmt.Sprintf("paraheap: validation failed: %v", err))
		}
	})
	e.Run()
	return res
}

type program struct {
	cfg Config
	sys *htm.System

	points    mem.Addr // Points*Dims float words
	centroids mem.Addr // K*Dims float words
	assign    mem.Addr // Points words
	// Shared counters, each on its own line, each with its own lock
	// (the six short critical sections).
	counters [6]mem.Addr
	// Outlier heap: [size, (distBits, point) pairs...].
	heap mem.Addr

	locks [7]scheme.Instance

	iters     int
	processed uint64
}

func f2w(f float64) uint64 { return math.Float64bits(f) }
func w2f(w uint64) float64 { return math.Float64frombits(w) }

func newProgram(cfg Config, sys *htm.System, c *sim.Ctx) *program {
	p := &program{cfg: cfg, sys: sys}
	p.points = sys.AllocHome(c, cfg.Points*cfg.Dims, 0)
	p.centroids = sys.AllocHome(c, cfg.K*cfg.Dims, 0)
	p.assign = sys.AllocHome(c, cfg.Points, 0)
	for i := range p.counters {
		p.counters[i] = sys.AllocHome(c, 1, 0)
	}
	p.heap = sys.AllocHome(c, 1+2*heapCap, 0)
	// Synthetic sky: K Gaussian blobs.
	for i := 0; i < cfg.Points; i++ {
		cl := i % cfg.K
		for d := 0; d < cfg.Dims; d++ {
			v := 10*float64(cl) + 2*(c.Float64()+c.Float64()-1)
			sys.Mem.SetRaw(p.points+mem.Addr(i*cfg.Dims+d), f2w(v))
		}
		sys.Mem.SetRaw(p.assign+mem.Addr(i), uint64(cfg.K)) // unassigned
	}
	for j := 0; j < cfg.K; j++ {
		for d := 0; d < cfg.Dims; d++ {
			v := 10 * float64(cfg.K) * c.Float64()
			sys.Mem.SetRaw(p.centroids+mem.Addr(j*cfg.Dims+d), f2w(v))
		}
	}
	name := cfg.Lock
	if name == "" {
		name = "tle"
	}
	desc, err := scheme.LookupFor(backend.Sim, name)
	if err != nil {
		panic(fmt.Sprintf("paraheap: %v", err))
	}
	desc = desc.Configure(scheme.Options{NATLE: cfg.NATLE})
	// Each counter group and the heap has its own lock (the multi-lock
	// structure that makes this an interesting NATLE case).
	for i := range p.locks {
		p.locks[i] = desc.New(sys, c, 0)
	}
	return p
}

// cluster runs the iterative loop; each phase creates fresh worker
// threads, as the real program does (the behaviour behind Fig 19).
func (p *program) cluster(c *sim.Ctx, e *sim.Engine) {
	cfg := p.cfg
	perThread := make([][]float64, cfg.Threads) // partial centroid sums
	counts := make([][]uint64, cfg.Threads)
	for p.iters < cfg.MaxIters {
		p.iters++
		// Reset the per-iteration counters under their locks (counter 4
		// is the running total across iterations and survives).
		for i, ctr := range p.counters {
			if i == 4 {
				continue
			}
			a := ctr
			p.locks[i].Critical(c, func() { p.sys.Write(c, a, 0) })
		}
		p.sys.Mem.SetRaw(p.heap, 0)

		// Phase 1: associate points with centroids (fresh threads).
		for t := 0; t < cfg.Threads; t++ {
			tid := t
			e.Spawn(c, func(w *sim.Ctx) { p.associate(w, tid) })
		}
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
		c.SetIdle(false)

		stable := w2fCount(p.sys.Mem.Raw(p.counters[1]))
		// Phase 2: recalculate centroids (fresh threads again).
		for t := 0; t < cfg.Threads; t++ {
			tid := t
			if perThread[tid] == nil {
				perThread[tid] = make([]float64, cfg.K*cfg.Dims)
				counts[tid] = make([]uint64, cfg.K)
			}
			e.Spawn(c, func(w *sim.Ctx) { p.recalc(w, tid, perThread[tid], counts[tid]) })
		}
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
		c.SetIdle(false)
		p.fold(c, perThread, counts)

		if float64(stable)/float64(cfg.Points) >= cfg.Threshold {
			break
		}
	}
}

func w2fCount(v uint64) int { return int(v) }

// associate is phase 1: nearest-centroid assignment plus the six
// counter critical sections and the heap insertion.
func (p *program) associate(w *sim.Ctx, tid int) {
	cfg := p.cfg
	per := cfg.Points / cfg.Threads
	lo := tid * per
	hi := lo + per
	if tid == cfg.Threads-1 {
		hi = cfg.Points
	}
	// The shared counters are updated in small chunks throughout the
	// scan (as the original program's "very short critical sections"
	// are), so counter traffic scales with the data, not with the
	// thread count.
	const chunk = 16
	var localProcessed uint64
	var chunkProcessed, chunkStable uint64
	maxDist := 0.0
	maxPoint := -1
	flush := func() {
		if chunkProcessed == 0 {
			return
		}
		p.bump(w, 0, chunkProcessed) // CS 1: points processed
		p.bump(w, 1, chunkStable)    // CS 2: stable associations
		p.bump(w, 4, chunkProcessed) // CS 5: running total
		chunkProcessed, chunkStable = 0, 0
	}
	for i := lo; i < hi; i++ {
		var pt [8]float64
		for d := 0; d < cfg.Dims; d++ {
			pt[d] = w2f(p.sys.Read(w, p.points+mem.Addr(i*cfg.Dims+d)))
		}
		best, bestD := 0, math.MaxFloat64
		for j := 0; j < cfg.K; j++ {
			dist := 0.0
			for d := 0; d < cfg.Dims; d++ {
				diff := pt[d] - w2f(p.sys.Read(w, p.centroids+mem.Addr(j*cfg.Dims+d)))
				dist += diff * diff
			}
			w.Advance(vtime.Duration(cfg.Dims) * vtime.Nanosecond / 2)
			if dist < bestD {
				best, bestD = j, dist
			}
		}
		old := p.sys.Read(w, p.assign+mem.Addr(i))
		p.sys.Write(w, p.assign+mem.Addr(i), uint64(best))
		localProcessed++
		chunkProcessed++
		if int(old) == best {
			chunkStable++
		}
		if bestD > maxDist {
			maxDist, maxPoint = bestD, i
		}
		// CS 7: every point is offered to the shared outlier heap (the
		// heap-based part of the algorithm).
		p.heapInsert(w, bestD, i)
		if chunkProcessed >= chunk {
			flush()
		}
	}
	flush()
	_ = maxDist
	_ = maxPoint
	// Per-phase bookkeeping counters (CSs 3, 4, 6).
	p.bump(w, 2, 1)             // phase-entry count
	p.bump(w, 3, uint64(tid)+1) // work ticket accounting
	p.bump(w, 5, 1)             // phase-exit count
	p.processed += localProcessed
}

func (p *program) bump(w *sim.Ctx, i int, delta uint64) {
	a := p.counters[i]
	p.locks[i].Critical(w, func() {
		p.sys.Write(w, a, p.sys.Read(w, a)+delta)
	})
}

// heapInsert is the heap critical section: a bounded min-heap keeping
// the largest distances (replace-min when full).
func (p *program) heapInsert(w *sim.Ctx, dist float64, point int) {
	p.locks[6].Critical(w, func() {
		n := int(p.sys.Read(w, p.heap))
		at := func(i int) mem.Addr { return p.heap + mem.Addr(1+2*i) }
		get := func(i int) float64 { return w2f(p.sys.Read(w, at(i))) }
		set := func(i int, d float64, pt int) {
			p.sys.Write(w, at(i), f2w(d))
			p.sys.Write(w, at(i)+1, uint64(pt))
		}
		if n < heapCap {
			// Sift up.
			i := n
			set(i, dist, point)
			for i > 0 {
				parent := (i - 1) / 2
				if get(parent) <= get(i) {
					break
				}
				pd, pp := get(parent), int(p.sys.Read(w, at(parent)+1))
				cd, cp := get(i), int(p.sys.Read(w, at(i)+1))
				set(parent, cd, cp)
				set(i, pd, pp)
				i = parent
			}
			p.sys.Write(w, p.heap, uint64(n+1))
			return
		}
		if dist <= get(0) {
			return
		}
		// Replace min and sift down.
		set(0, dist, point)
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < heapCap && get(l) < get(smallest) {
				smallest = l
			}
			if r < heapCap && get(r) < get(smallest) {
				smallest = r
			}
			if smallest == i {
				return
			}
			sd, sp := get(smallest), int(p.sys.Read(w, at(smallest)+1))
			cd, cp := get(i), int(p.sys.Read(w, at(i)+1))
			set(smallest, cd, cp)
			set(i, sd, sp)
			i = smallest
		}
	})
}

// recalc is phase 2: per-thread partial centroid sums (local), folded
// under a lock by each thread into the shared centroids.
func (p *program) recalc(w *sim.Ctx, tid int, sums []float64, counts []uint64) {
	cfg := p.cfg
	for i := range sums {
		sums[i] = 0
	}
	for i := range counts {
		counts[i] = 0
	}
	per := cfg.Points / cfg.Threads
	lo := tid * per
	hi := lo + per
	if tid == cfg.Threads-1 {
		hi = cfg.Points
	}
	for i := lo; i < hi; i++ {
		cl := int(p.sys.Read(w, p.assign+mem.Addr(i)))
		for d := 0; d < cfg.Dims; d++ {
			sums[cl*cfg.Dims+d] += w2f(p.sys.Read(w, p.points+mem.Addr(i*cfg.Dims+d)))
		}
		counts[cl]++
	}
}

// fold combines the per-thread partials into new centroids (driver).
func (p *program) fold(c *sim.Ctx, perThread [][]float64, counts [][]uint64) {
	cfg := p.cfg
	for j := 0; j < cfg.K; j++ {
		var n uint64
		for t := 0; t < cfg.Threads; t++ {
			n += counts[t][j]
		}
		if n == 0 {
			continue
		}
		for d := 0; d < cfg.Dims; d++ {
			var sum float64
			for t := 0; t < cfg.Threads; t++ {
				sum += perThread[t][j*cfg.Dims+d]
			}
			p.sys.Write(c, p.centroids+mem.Addr(j*cfg.Dims+d), f2w(sum/float64(n)))
		}
	}
}

func (p *program) validate() error {
	want := uint64(p.cfg.Points * p.iters)
	if p.processed != want {
		return fmt.Errorf("processed %d point-iterations, want %d", p.processed, want)
	}
	if got := p.sys.Mem.Raw(p.counters[4]); got != want {
		return fmt.Errorf("running-total counter %d, want %d", got, want)
	}
	if n := p.sys.Mem.Raw(p.heap); n == 0 || n > heapCap {
		return fmt.Errorf("heap size %d out of range", n)
	}
	// Heap property check from raw memory.
	for i := 1; i < int(p.sys.Mem.Raw(p.heap)); i++ {
		parent := (i - 1) / 2
		pd := w2f(p.sys.Mem.Raw(p.heap + mem.Addr(1+2*parent)))
		cd := w2f(p.sys.Mem.Raw(p.heap + mem.Addr(1+2*i)))
		if pd > cd {
			return fmt.Errorf("heap property violated at %d", i)
		}
	}
	if p.iters == 0 {
		return fmt.Errorf("no iterations ran")
	}
	return nil
}
