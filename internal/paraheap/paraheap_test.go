package paraheap

import (
	"testing"

	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/vtime"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Points = 1024
	cfg.MaxIters = 6
	return cfg
}

func TestSingleThreadClusters(t *testing.T) {
	cfg := smallConfig()
	cfg.Threads = 1
	cfg.Seed = 1
	r := Run(cfg) // validation inside Run panics on failure
	if r.Iterations == 0 {
		t.Error("no iterations")
	}
	if r.Runtime <= 0 {
		t.Errorf("runtime = %v", r.Runtime)
	}
}

func TestMultiThreadValidates(t *testing.T) {
	cfg := smallConfig()
	cfg.Threads = 12
	cfg.Seed = 2
	r := Run(cfg)
	if r.HTM.Commits == 0 {
		t.Error("no transactions committed")
	}
}

func TestNATLEUsesMultipleLocks(t *testing.T) {
	cfg := smallConfig()
	cfg.Threads = 12
	cfg.Seed = 3
	cfg.Lock = "natle"
	n := natle.DefaultConfig()
	n.ProfilingLen = 30 * vtime.Microsecond
	n.QuantumLen = 30 * vtime.Microsecond
	cfg.NATLE = &n
	r := Run(cfg)
	if len(r.Locks) != 7 {
		t.Fatalf("expected 7 per-lock stats, got %d", len(r.Locks))
	}
	withTimeline := 0
	for _, l := range r.Locks {
		if len(l.Timeline) > 0 {
			withTimeline++
		}
	}
	if withTimeline == 0 {
		t.Error("no lock recorded any NATLE cycles")
	}
}

func TestPinnedSlowerThanUnpinnedAtHighThreads(t *testing.T) {
	// The Fig 19 effect: repeated thread creation pays the pinning
	// overhead on every phase, so at high thread counts the pinned run
	// loses its advantage (and the unpinned run benefits more from
	// NATLE).
	cfg := smallConfig()
	cfg.Seed = 4
	cfg.Threads = 24
	pinned := Run(cfg)
	cfg.Pin = machine.Unpinned{}
	unpinned := Run(cfg)
	// Both must at least run; pinning overhead must be visible as a
	// runtime difference of the right sign.
	if pinned.Runtime <= 0 || unpinned.Runtime <= 0 {
		t.Fatal("zero runtime")
	}
	if pinned.Runtime < unpinned.Runtime {
		t.Logf("note: pinned (%v) faster than unpinned (%v) at this scale",
			pinned.Runtime, unpinned.Runtime)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Threads = 8
	cfg.Seed = 5
	a, b := Run(cfg), Run(cfg)
	if a.Runtime != b.Runtime || a.Iterations != b.Iterations {
		t.Errorf("identical configs diverged: %v/%d vs %v/%d",
			a.Runtime, a.Iterations, b.Runtime, b.Iterations)
	}
}
