package scheme

import (
	"natle/internal/htm"
	"natle/internal/sim"
	"natle/internal/tle"
)

// tle-hint is hint-bit-honoring TLE: fall back to the lock immediately
// when a transaction aborts with the hardware hint bit clear — the
// "optimization" common on small machines that the paper's Figure 2
// shows to be harmful on large ones (the hint bit lies under
// hyperthreading and transient evictions). Registered as a first-class
// scheme so sweeps can compare it everywhere, not only through
// htmbench's -hint flag.
func init() {
	Register(&Descriptor{
		Name:    "tle-hint",
		Summary: "TLE that falls back immediately on a hint-clear abort (Fig 2 policy)",
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Make: func(sys *htm.System, c *sim.Ctx, socket int, opt Options) Instance {
			pol := resolveTLE(opt.TLE)
			pol.HonorHint = true // the scheme's identity, whatever the base policy
			return tleInstance{tle.New(sys, c, socket, pol)}
		},
	})
}
