package scheme

import (
	"natle/internal/htm"
	"natle/internal/sim"
	"natle/internal/tle"
)

// tle-robust is TLE with the full hardening stack armed: the
// starvation watchdog (on by default in every TLE policy) plus the
// per-lock HTM circuit breaker, which degrades a pathologically
// aborting lock to pure mutual exclusion and periodically probes for
// recovery. Registered as a first-class scheme so sweeps and the chaos
// harness can compare degradation behaviour against plain TLE under
// identical fault schedules.
func init() {
	Register(&Descriptor{
		Name:    "tle-robust",
		Summary: "TLE with circuit breaker: degrades to the mutex under pathological abort rates",
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Make: func(sys *htm.System, c *sim.Ctx, socket int, opt Options) Instance {
			pol := resolveTLE(opt.TLE)
			if pol.Breaker == nil {
				// The scheme's identity: always armed, whatever the base
				// policy says.
				br := tle.DefaultBreakerConfig()
				pol.Breaker = &br
			}
			return tleInstance{tle.New(sys, c, socket, pol)}
		},
	})
}
