// Package scheme is the synchronization-scheme registry: one
// descriptor per scheme (plain locking, TLE, NATLE, the cohort lock,
// raw HTM, the unsynchronized baseline, and any future variants), each
// bundling the scheme's name, its tunable options, a factory building
// a ready-to-use critical-section executor, and a uniform statistics
// facade.
//
// The paper's central claim is that TLE and NATLE are drop-in lock
// replacements; this package is that claim expressed as architecture.
// Every workload layer (the microbenchmark driver, the two-tree
// experiment, STAMP, ccTSA, paraheap-k) and every binary constructs
// its synchronization through the registry, so adding a scheme variant
// is one new file in this package — no call-site edits anywhere.
package scheme

import (
	"fmt"
	"sort"
	"strings"

	"natle/internal/backend"
	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/natle"
	"natle/internal/sim"
	"natle/internal/tle"
)

// Options carries the tunables a trial may override on a scheme. The
// zero value selects each scheme's defaults; descriptors may bake
// their own base options in (see Descriptor.Opt and Configure).
type Options struct {
	// TLE is the retry policy for elision-based schemes (zero value
	// selects tle.TLE20()). Schemes with a fixed identity (e.g.
	// tle-hint) may force individual policy bits regardless.
	TLE tle.Policy
	// NATLE tunes the adaptive throttling cycle (nil selects
	// natle.DefaultConfig(); see ResolveNATLE).
	NATLE *natle.Config
	// Attempts bounds the raw-HTM scheme's retry loop (0 = its
	// default). Ignored by lock-based schemes, whose attempt count is
	// TLE.Attempts.
	Attempts int
}

// Stats is the uniform scheme-counter snapshot: every scheme reports
// through this one shape, so results no longer special-case TLE
// counters or NATLE timelines per scheme.
type Stats struct {
	// TLE holds the elision counters (zero for schemes that never
	// elide: plain, cohort, none, raw HTM).
	TLE tle.Stats
	// Timeline records adaptive-mode decisions (nil for schemes
	// without profiling).
	Timeline []natle.ModeSample
	// Extra carries scheme-private counters keyed by name (nil when a
	// scheme has none).
	Extra map[string]uint64
}

// Sub returns the counter deltas s - t for windowed measurement. The
// timeline is taken from s (decisions accumulate; they are not
// meaningfully subtractable).
func (s Stats) Sub(t Stats) Stats {
	d := Stats{TLE: s.TLE.Sub(t.TLE), Timeline: s.Timeline}
	if s.Extra != nil {
		d.Extra = make(map[string]uint64, len(s.Extra))
		for k, v := range s.Extra {
			d.Extra[k] = v - t.Extra[k]
		}
	}
	return d
}

// Instance is a constructed scheme on the simulated backend: a
// critical-section executor plus the uniform stats facade.
// Snapshot/delta measurement is inst.Stats() before the window and
// inst.Stats().Sub(before) after.
type Instance interface {
	lock.CS
	// Stats returns the cumulative counters since construction.
	Stats() Stats
}

// BackendInstance is a constructed scheme on an arbitrary execution
// backend: the backend-agnostic critical-section executor plus the
// same uniform stats facade. Sim instances are adapted to this shape
// by the sim world (internal/workload); native schemes implement it
// directly.
type BackendInstance interface {
	backend.CS
	// Stats returns the cumulative counters since construction.
	Stats() Stats
}

// Descriptor is one registry entry.
type Descriptor struct {
	// Name is the registry key and the value accepted by the tools'
	// -lock flags.
	Name string
	// Summary is the one-line description used in generated help text
	// and documentation.
	Summary string
	// Opt is the descriptor's base options; Configure merges trial
	// overrides on top.
	Opt Options
	// Mutex reports whether the scheme provides mutual exclusion
	// (false only for the unsynchronized baseline).
	Mutex bool
	// Robust reports whether every critical section eventually
	// completes regardless of its footprint (false for raw HTM, which
	// has no fallback for capacity-bound sections).
	Robust bool
	// Batch reports whether the scheme can execute multi-request
	// batches as one critical section (the service workload's per-shard
	// batching). Requires mutual exclusion (a batch must be atomic) and
	// robustness (a batch multiplies the transactional footprint, so a
	// scheme without a capacity fallback may never complete one); false
	// for the unsynchronized baseline and raw HTM.
	Batch bool
	// Make builds the scheme's simulated-backend instance, its lock
	// word (if any) homed on the given socket. Nil for native-only
	// schemes; at least one of Make and Native must be set.
	Make func(sys *htm.System, c *sim.Ctx, socket int, opt Options) Instance

	// Native builds the scheme's native-backend instance through the
	// backend-agnostic world/context pair (real goroutines, real
	// memory, wall-clock time; see internal/native). Nil for sim-only
	// schemes such as htm-raw, whose semantics exist only on the
	// simulated HTM.
	Native func(w backend.World, c backend.Ctx, opt Options) BackendInstance
}

// New builds a simulated instance with the descriptor's options. It
// panics when the scheme has no sim factory (callers gate on
// Supports(backend.Sim), normally via LookupFor).
func (d *Descriptor) New(sys *htm.System, c *sim.Ctx, socket int) Instance {
	if d.Make == nil {
		panic("scheme: " + d.Name + " is not available on the sim backend")
	}
	return d.Make(sys, c, socket, d.Opt)
}

// NewNative builds a native instance with the descriptor's options.
// It panics when the scheme has no native factory.
func (d *Descriptor) NewNative(w backend.World, c backend.Ctx) BackendInstance {
	if d.Native == nil {
		panic("scheme: " + d.Name + " is not available on the native backend")
	}
	return d.Native(w, c, d.Opt)
}

// Backends returns the execution backends the descriptor can
// construct on, in backend.Kinds() order — the registry's capability
// axis for "which world does this scheme run in".
func (d *Descriptor) Backends() []backend.Kind {
	var ks []backend.Kind
	for _, k := range backend.Kinds() {
		if d.Supports(k) {
			ks = append(ks, k)
		}
	}
	return ks
}

// Supports reports whether the descriptor has a factory for backend k.
func (d *Descriptor) Supports(k backend.Kind) bool {
	switch k {
	case backend.Sim:
		return d.Make != nil
	case backend.Native:
		return d.Native != nil
	default:
		return false
	}
}

// Configure returns a copy of the descriptor with the non-zero fields
// of opt overriding its base options.
func (d *Descriptor) Configure(opt Options) *Descriptor {
	nd := *d
	if opt.TLE != (tle.Policy{}) {
		nd.Opt.TLE = opt.TLE
	}
	if opt.NATLE != nil {
		nd.Opt.NATLE = opt.NATLE
	}
	if opt.Attempts != 0 {
		nd.Opt.Attempts = opt.Attempts
	}
	return &nd
}

// registry holds the descriptors by name. Registration happens in
// package init functions, so the map is read-only afterwards.
var registry = map[string]*Descriptor{}

// Register adds a descriptor. It panics on a duplicate or empty name
// or when no backend factory is set (registration is
// programmer-controlled, at init time).
func Register(d *Descriptor) {
	if d.Name == "" {
		panic("scheme: Register with empty name")
	}
	if d.Make == nil && d.Native == nil {
		panic("scheme: Register " + d.Name + " with no backend factory")
	}
	if _, dup := registry[d.Name]; dup {
		panic("scheme: duplicate registration of " + d.Name)
	}
	registry[d.Name] = d
}

// Lookup returns the descriptor for name regardless of backend. The
// error lists the valid names, so flag parsing can surface it
// directly. Construction sites that know their backend use LookupFor,
// which also rejects schemes the backend cannot build.
func Lookup(name string) (*Descriptor, error) {
	if d, ok := registry[name]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("scheme: unknown scheme %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// LookupFor returns the descriptor for name, requiring that it can be
// constructed on backend k. The error lists only that backend's
// names, so a native tool never advertises sim-only schemes and vice
// versa.
func LookupFor(k backend.Kind, name string) (*Descriptor, error) {
	d, ok := registry[name]
	if !ok || !d.Supports(k) {
		return nil, fmt.Errorf("scheme: unknown %s-backend scheme %q (have %s)",
			k, name, strings.Join(NamesFor(k), ", "))
	}
	return d, nil
}

// Names returns the registered scheme names across all backends,
// sorted.
func Names() []string {
	n := make([]string, 0, len(registry))
	for name := range registry {
		n = append(n, name)
	}
	sort.Strings(n)
	return n
}

// NamesFor returns the names of the schemes constructible on backend
// k, sorted.
func NamesFor(k backend.Kind) []string {
	var n []string
	for _, name := range Names() {
		if registry[name].Supports(k) {
			n = append(n, name)
		}
	}
	return n
}

// All returns the descriptors in Names() order.
func All() []*Descriptor {
	var ds []*Descriptor
	for _, n := range Names() {
		ds = append(ds, registry[n])
	}
	return ds
}

// AllFor returns the descriptors constructible on backend k, in
// NamesFor(k) order.
func AllFor(k backend.Kind) []*Descriptor {
	var ds []*Descriptor
	for _, n := range NamesFor(k) {
		ds = append(ds, registry[n])
	}
	return ds
}

// FlagHelp renders every registered -lock value, all backends
// (tools serving a single backend use FlagHelpFor).
func FlagHelp() string { return strings.Join(Names(), " | ") }

// FlagHelpFor renders the -lock values accepted on backend k for flag
// usage strings, so per-backend help stays generated from the
// registry.
func FlagHelpFor(k backend.Kind) string { return strings.Join(NamesFor(k), " | ") }

// BatchNames returns the names of the simulated schemes with the
// Batch capability, sorted (the schemes the service workload may drive
// with per-shard request batches larger than one; the service runs on
// the sim backend only, so native-only schemes are excluded even when
// internal/native is linked in).
func BatchNames() []string {
	var n []string
	for _, d := range AllFor(backend.Sim) {
		if d.Batch {
			n = append(n, d.Name)
		}
	}
	return n
}

// BatchHelp renders the Batch-capable scheme names for flag usage
// strings, so help text stays generated from the registry.
func BatchHelp() string { return strings.Join(BatchNames(), ", ") }

// MutexFor returns the canonical pure-mutual-exclusion scheme on
// backend k ("lock" on the simulator, "native-mutex" natively) — the
// degradation target shared by the tle-robust circuit breaker and the
// service brownout controller, both of which trade elision for the
// guaranteed progress of a plain lock when the substrate misbehaves.
func MutexFor(k backend.Kind) (*Descriptor, error) {
	switch k {
	case backend.Sim:
		return LookupFor(k, "lock")
	case backend.Native:
		return LookupFor(k, "native-mutex")
	default:
		return nil, fmt.Errorf("scheme: no mutual-exclusion baseline for backend %v", k)
	}
}

// Help renders one "name: summary" line per scheme (for docs and
// extended help output).
func Help() string {
	var b strings.Builder
	for _, d := range All() {
		fmt.Fprintf(&b, "%-10s %s\n", d.Name, d.Summary)
	}
	return b.String()
}

// ResolveNATLE is the single copy of the config-defaulting fallback
// that every layer used to hand-roll: nil selects the default cycle.
func ResolveNATLE(cfg *natle.Config) natle.Config {
	if cfg == nil {
		return natle.DefaultConfig()
	}
	return *cfg
}

// resolveTLE defaults a zero policy to the paper's TLE-20.
func resolveTLE(p tle.Policy) tle.Policy {
	if p == (tle.Policy{}) {
		return tle.TLE20()
	}
	return p
}

// tleInstance adapts *tle.Lock to the stats facade.
type tleInstance struct{ *tle.Lock }

func (t tleInstance) Stats() Stats { return Stats{TLE: t.Lock.Stats} }

// natleInstance adapts *natle.Lock (with its inner TLE lock) to the
// stats facade.
type natleInstance struct {
	*natle.Lock
	inner *tle.Lock
}

func (n natleInstance) Stats() Stats {
	return Stats{TLE: n.inner.Stats, Timeline: n.Lock.Timeline}
}

// statless adapts schemes without counters of their own (plain,
// cohort, none, raw HTM); their transactional activity, if any, is
// visible in htm.Stats and the telemetry recorder.
type statless struct{ lock.CS }

func (statless) Stats() Stats { return Stats{} }
