package scheme_test

import (
	"reflect"
	"strings"
	"testing"

	"natle/internal/backend"
	"natle/internal/scheme"
)

// A fake native-only descriptor exercises the backend axis without
// importing internal/native (which would drag real registrations into
// every test in this package). Registered once at init, it
// deliberately leaks into Names()/All() — the per-backend views below
// must keep it out of the sim side.
func init() {
	scheme.Register(&scheme.Descriptor{
		Name:    "test-native-only",
		Summary: "native-only fake for backend-capability tests",
		Mutex:   true,
		Robust:  true,
		Native: func(_ backend.World, _ backend.Ctx, _ scheme.Options) scheme.BackendInstance {
			return nil
		},
	})
}

// TestBackendsCapability checks the Descriptor.Backends axis: every
// core scheme is sim-only until a native factory is added, and the
// fake above is native-only.
func TestBackendsCapability(t *testing.T) {
	for _, name := range []string{"lock", "tle", "natle", "cohort", "none", "htm-raw"} {
		d, err := scheme.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Supports(backend.Sim) {
			t.Errorf("%s must support the sim backend", name)
		}
		if got := d.Backends(); !reflect.DeepEqual(got, []backend.Kind{backend.Sim}) {
			t.Errorf("%s.Backends() = %v, want [sim]", name, got)
		}
	}
	d, err := scheme.Lookup("test-native-only")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Backends(); !reflect.DeepEqual(got, []backend.Kind{backend.Native}) {
		t.Errorf("test-native-only.Backends() = %v, want [native]", got)
	}
}

// TestPerBackendViewsDoNotLeak is the registry half of the
// no-cross-backend-leakage guarantee: NamesFor/FlagHelpFor/AllFor
// list a scheme only on backends it supports, and LookupFor rejects
// (with per-backend help) schemes from the other world.
func TestPerBackendViewsDoNotLeak(t *testing.T) {
	for _, k := range backend.Kinds() {
		for _, name := range scheme.NamesFor(k) {
			d, err := scheme.LookupFor(k, name)
			if err != nil {
				t.Errorf("NamesFor(%s) lists %q but LookupFor rejects it: %v", k, name, err)
				continue
			}
			if !d.Supports(k) {
				t.Errorf("NamesFor(%s) leaked %q, which does not support %s", k, name, k)
			}
		}
		for _, d := range scheme.AllFor(k) {
			if !d.Supports(k) {
				t.Errorf("AllFor(%s) leaked %q", k, d.Name)
			}
		}
	}
	if h := scheme.FlagHelpFor(backend.Sim); strings.Contains(h, "test-native-only") {
		t.Errorf("sim -lock help advertises a native-only scheme: %s", h)
	}
	if h := scheme.FlagHelpFor(backend.Native); strings.Contains(h, "htm-raw") {
		t.Errorf("native -lock help advertises the sim-only htm-raw: %s", h)
	}

	// LookupFor across the axis: a native-only name fails on sim with
	// an error listing only sim names, and vice versa.
	if _, err := scheme.LookupFor(backend.Sim, "test-native-only"); err == nil {
		t.Error("LookupFor(sim, test-native-only) succeeded")
	} else if strings.Contains(err.Error(), "test-native-only,") {
		t.Errorf("sim lookup error leaks native names: %v", err)
	}
	if _, err := scheme.LookupFor(backend.Native, "htm-raw"); err == nil {
		t.Error("LookupFor(native, htm-raw) succeeded")
	} else if strings.Contains(err.Error(), "htm-raw,") {
		t.Errorf("native lookup error leaks sim names: %v", err)
	}
}

// TestRegisterRequiresAFactory pins the relaxed Register contract: no
// factory at all still panics.
func TestRegisterRequiresAFactory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Register with no backend factory did not panic")
		}
	}()
	scheme.Register(&scheme.Descriptor{Name: "test-factoryless"})
}
