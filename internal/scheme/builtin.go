package scheme

import (
	"natle/internal/cohort"
	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/natle"
	"natle/internal/sim"
	"natle/internal/spinlock"
	"natle/internal/tle"
)

// The core schemes of the paper's evaluation. Extensions live in their
// own files (tlehint.go, atomic.go) to demonstrate that a new scheme
// is one file in this package and nothing else.
func init() {
	Register(&Descriptor{
		Name:    "lock",
		Summary: "plain test-and-test-and-set spin lock, never elided",
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Make: func(sys *htm.System, c *sim.Ctx, socket int, _ Options) Instance {
			return statless{lock.Plain{L: spinlock.New(sys, c, socket)}}
		},
	})
	Register(&Descriptor{
		Name:    "tle",
		Summary: "transactional lock elision (paper Section 3; default policy TLE-20)",
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Make: func(sys *htm.System, c *sim.Ctx, socket int, opt Options) Instance {
			return tleInstance{tle.New(sys, c, socket, resolveTLE(opt.TLE))}
		},
	})
	Register(&Descriptor{
		Name:    "natle",
		Summary: "NUMA-aware TLE: per-lock adaptive socket throttling (paper Section 4)",
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Make: func(sys *htm.System, c *sim.Ctx, socket int, opt Options) Instance {
			inner := tle.New(sys, c, socket, resolveTLE(opt.TLE))
			return natleInstance{
				Lock:  natle.New(sys, c, inner, ResolveNATLE(opt.NATLE)),
				inner: inner,
			}
		},
	})
	Register(&Descriptor{
		Name:    "cohort",
		Summary: "NUMA-aware cohort lock, no elision (related-work baseline)",
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Make: func(sys *htm.System, c *sim.Ctx, _ int, _ Options) Instance {
			return statless{cohort.New(sys, c, 0)}
		},
	})
	Register(&Descriptor{
		Name:    "none",
		Summary: "no synchronization (Fig 4 baseline; read-only/benign races only)",
		Mutex:   false,
		Robust:  true,
		Make: func(_ *htm.System, _ *sim.Ctx, _ int, _ Options) Instance {
			return statless{lock.NoSync{}}
		},
	})
}
