package scheme_test

import (
	"sort"
	"strings"
	"testing"

	"natle/internal/analysis/enums"
	"natle/internal/analysis/load"
	"natle/internal/natle"
	"natle/internal/scheme"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// workloadLockKinds type-checks the workload package through the
// natlevet loader and returns the string value of every LockKind
// constant, replacing an older version of this test that re-parsed
// workload.go with go/parser and pattern-matched the AST.
func workloadLockKinds(t *testing.T) []string {
	t.Helper()
	pkg, err := load.One(".", "natle/internal/workload")
	if err != nil {
		t.Fatalf("loading workload package: %v", err)
	}
	members, _, err := enums.Named(pkg.Types, "LockKind")
	if err != nil {
		t.Fatal(err)
	}
	kinds, err := enums.StringValues(members)
	if err != nil {
		t.Fatal(err)
	}
	return kinds
}

// TestRegistryCoversWorkloadLockKinds fails when someone adds a
// workload.LockKind constant without registering the scheme behind it
// — the constant would compile everywhere and then panic at run time.
func TestRegistryCoversWorkloadLockKinds(t *testing.T) {
	kinds := workloadLockKinds(t)
	if len(kinds) < 5 {
		t.Fatalf("found only %d LockKind constants in workload.go; parser out of sync?", len(kinds))
	}
	for _, k := range kinds {
		if _, err := scheme.Lookup(k); err != nil {
			t.Errorf("workload.LockKind %q has no registry entry: %v", k, err)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := scheme.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"lock", "tle", "natle", "cohort", "none", "tle-hint", "htm-raw"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scheme %q missing from registry (have %v)", want, names)
		}
	}
	if all := scheme.All(); len(all) != len(names) {
		t.Errorf("All() returned %d descriptors for %d names", len(all), len(names))
	}
}

func TestLookupErrorListsValidNames(t *testing.T) {
	_, err := scheme.Lookup("bogus")
	if err == nil {
		t.Fatal("Lookup(bogus) succeeded")
	}
	if !strings.Contains(err.Error(), "natle") || !strings.Contains(err.Error(), "tle-hint") {
		t.Errorf("error should list valid names, got: %v", err)
	}
}

func TestFlagHelpListsEverything(t *testing.T) {
	h := scheme.FlagHelp()
	for _, n := range scheme.Names() {
		if !strings.Contains(h, n) {
			t.Errorf("FlagHelp() missing %q: %s", n, h)
		}
	}
	if lines := strings.Count(scheme.Help(), "\n"); lines != len(scheme.Names()) {
		t.Errorf("Help() has %d lines for %d schemes", lines, len(scheme.Names()))
	}
}

func TestConfigureMergesOverrides(t *testing.T) {
	d, err := scheme.Lookup("tle")
	if err != nil {
		t.Fatal(err)
	}
	pol := tle.Policy{Attempts: 7, HonorHint: true}
	nd := d.Configure(scheme.Options{TLE: pol})
	if nd.Opt.TLE != pol {
		t.Errorf("TLE override lost: %+v", nd.Opt.TLE)
	}
	if nd == d {
		t.Error("Configure must copy, not mutate, the registered descriptor")
	}
	if d.Opt.TLE == pol {
		t.Error("Configure mutated the registered descriptor's options")
	}
	// Zero options leave the base untouched.
	same := d.Configure(scheme.Options{})
	if same.Opt != d.Opt {
		t.Errorf("zero-value Configure changed options: %+v != %+v", same.Opt, d.Opt)
	}
	// Non-zero NATLE override sticks.
	ncfg := natle.DefaultConfig()
	ncfg.QuantumLen = 123 * vtime.Microsecond
	nd2 := d.Configure(scheme.Options{NATLE: &ncfg})
	if nd2.Opt.NATLE == nil || nd2.Opt.NATLE.QuantumLen != 123*vtime.Microsecond {
		t.Error("NATLE override lost")
	}
}

func TestResolveNATLE(t *testing.T) {
	if got, want := scheme.ResolveNATLE(nil), natle.DefaultConfig(); got != want {
		t.Errorf("ResolveNATLE(nil) = %+v, want DefaultConfig", got)
	}
	cfg := natle.DefaultConfig()
	cfg.Quanta = 3
	if got := scheme.ResolveNATLE(&cfg); got.Quanta != 3 {
		t.Errorf("ResolveNATLE dropped explicit config: %+v", got)
	}
}

func TestCapabilityFlags(t *testing.T) {
	for name, want := range map[string]struct{ mutex, robust bool }{
		"lock": {true, true}, "tle": {true, true}, "natle": {true, true},
		"cohort": {true, true}, "tle-hint": {true, true},
		"none": {false, true}, "htm-raw": {true, false},
	} {
		d, err := scheme.Lookup(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if d.Mutex != want.mutex || d.Robust != want.robust {
			t.Errorf("%s: Mutex=%v Robust=%v, want %v/%v",
				name, d.Mutex, d.Robust, want.mutex, want.robust)
		}
	}
}
