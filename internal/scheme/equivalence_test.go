package scheme_test

import (
	"reflect"
	"sort"
	"testing"

	"natle/internal/backend"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/scheme"
	"natle/internal/sets"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// The equivalence trial: a fixed, interleaving-independent operation
// schedule applied to one shared AVL tree under every registered
// scheme. Each worker owns a disjoint key partition and executes a
// deterministic per-worker op sequence, so the final set contents are
// a pure function of the schedule — any two correct synchronization
// schemes must produce identical contents.
const (
	eqWorkers       = 4
	eqKeysPerWorker = 24
	eqOpsPerWorker  = 160
)

// eqOp returns worker tid's j-th operation: a key inside the worker's
// own partition and whether to insert (vs delete). Derived by integer
// hashing so the schedule is independent of the simulator's RNG and of
// thread interleaving.
func eqOp(tid, j int) (key int64, insert bool) {
	x := uint64(tid)*0x9e3779b97f4a7c15 + uint64(j)*0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	key = int64(tid*eqKeysPerWorker) + int64(x%eqKeysPerWorker)
	insert = x&(1<<40) != 0
	return
}

// eqExpected replays the schedule on a host map: the contents every
// scheme must converge to.
func eqExpected() []int64 {
	m := map[int64]bool{}
	for tid := 0; tid < eqWorkers; tid++ {
		for j := 0; j < eqOpsPerWorker; j++ {
			key, ins := eqOp(tid, j)
			if ins {
				m[key] = true
			} else {
				delete(m, key)
			}
		}
	}
	var keys []int64
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// eqTrial runs the schedule under desc and returns the final sorted
// contents, the machine's HTM counters, and the scheme's own counters.
// Schemes without mutual exclusion run the same schedule sequentially
// on the driver (concurrent unsynchronized updates would corrupt the
// tree, which is precisely why they are flagged Mutex=false).
func eqTrial(t *testing.T, desc *scheme.Descriptor) ([]int64, htm.Stats, scheme.Stats) {
	t.Helper()
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, eqWorkers, 1)
	sys := htm.NewSystem(e, 1<<20)
	var keys []int64
	var syncStats scheme.Stats

	e.Spawn(nil, func(c *sim.Ctx) {
		set := sets.NewAVL(sys, c)
		cs := desc.New(sys, c, 0)
		work := func(w *sim.Ctx, tid int) {
			for j := 0; j < eqOpsPerWorker; j++ {
				key, ins := eqOp(tid, j)
				if ins {
					cs.Critical(w, func() { set.Insert(w, key) })
				} else {
					cs.Critical(w, func() { set.Delete(w, key) })
				}
			}
		}
		if desc.Mutex {
			for i := 0; i < eqWorkers; i++ {
				tid := i
				e.Spawn(c, func(w *sim.Ctx) { work(w, tid) })
			}
			c.SetIdle(true)
			c.WaitOthers(vtime.Microsecond)
		} else {
			for tid := 0; tid < eqWorkers; tid++ {
				work(c, tid)
			}
		}
		if err := set.CheckInvariants(); err != nil {
			t.Errorf("%s: tree invariants violated: %v", desc.Name, err)
		}
		keys = set.Keys()
		syncStats = cs.Stats()
	})
	e.Run()
	return keys, sys.Stats, syncStats
}

// TestSchemesAreEquivalent is the registry's drop-in-replacement claim
// as a test: every scheme, core or extension, must drive the shared
// set to the same final contents on the same schedule, and the
// machine's transaction accounting must balance for each.
func TestSchemesAreEquivalent(t *testing.T) {
	want := eqExpected()
	if len(want) == 0 {
		t.Fatal("degenerate schedule: expected contents are empty")
	}
	for _, desc := range scheme.AllFor(backend.Sim) {
		desc := desc
		t.Run(desc.Name, func(t *testing.T) {
			keys, hs, ss := eqTrial(t, desc)
			if !reflect.DeepEqual(keys, want) {
				t.Errorf("final contents diverge: got %d keys, want %d\n got: %v\nwant: %v",
					len(keys), len(want), keys, want)
			}
			if hs.Starts != hs.Commits+hs.TotalAborts() {
				t.Errorf("HTM accounting broken: %d starts != %d commits + %d aborts",
					hs.Starts, hs.Commits, hs.TotalAborts())
			}
			if ops := ss.TLE.Ops; ops > 0 && ops != ss.TLE.Commits+ss.TLE.Fallbacks {
				t.Errorf("TLE accounting broken: %d ops != %d commits + %d fallbacks",
					ops, ss.TLE.Commits, ss.TLE.Fallbacks)
			}
		})
	}
}

// TestEquivalenceTrialIsDeterministic guards the trial itself: the
// same scheme twice must give byte-identical HTM counters, otherwise
// the equivalence assertions above would be flaky by construction.
func TestEquivalenceTrialIsDeterministic(t *testing.T) {
	desc, err := scheme.Lookup("tle")
	if err != nil {
		t.Fatal(err)
	}
	k1, h1, _ := eqTrial(t, desc)
	k2, h2, _ := eqTrial(t, desc)
	if !reflect.DeepEqual(k1, k2) || h1 != h2 {
		t.Error("identical trials diverged")
	}
}
