package scheme

import (
	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/sim"
)

// htm-raw runs every critical section as a best-effort hardware
// transaction with bounded retry and no lock fallback (lock.Atomic).
// It is not robust: a critical section that exceeds the transactional
// capacity can never complete, so sweeps over arbitrary workloads
// should filter on Descriptor.Robust.
func init() {
	Register(&Descriptor{
		Name:    "htm-raw",
		Summary: "raw best-effort transactions, bounded retry, no lock fallback",
		Mutex:   true,
		Robust:  false,
		Make: func(sys *htm.System, _ *sim.Ctx, _ int, opt Options) Instance {
			return statless{lock.Atomic{Sys: sys, Attempts: opt.Attempts}}
		},
	})
}
