package telemetry

import (
	"sync"
	"testing"

	"natle/internal/vtime"
)

func TestShardedCounterConcurrent(t *testing.T) {
	const writers, perWriter = 32, 10000
	c := NewShardedCounter(8)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != writers*perWriter {
		t.Errorf("Load = %d, want %d", got, writers*perWriter)
	}
}

func TestShardedCounterShardWrap(t *testing.T) {
	c := NewShardedCounter(4)
	c.Add(-3, 2) // negative shards must not panic
	c.Add(1001, 3)
	if got := c.Load(); got != 5 {
		t.Errorf("Load = %d, want 5", got)
	}
	if c.Shards() != 4 {
		t.Errorf("Shards = %d, want 4", c.Shards())
	}
}

type snap struct {
	A uint64
	B [3]uint64
	C vtime.Duration
	D struct{ N uint64 }
}

func TestSubGenericDelta(t *testing.T) {
	a := snap{A: 10, B: [3]uint64{5, 6, 7}, C: 100}
	a.D.N = 9
	b := snap{A: 4, B: [3]uint64{1, 2, 3}, C: 60}
	b.D.N = 2
	d := Sub(a, b)
	if d.A != 6 || d.B != [3]uint64{4, 4, 4} || d.C != 40 || d.D.N != 7 {
		t.Errorf("Sub = %+v", d)
	}
	// Unsigned wraparound matches the hand-rolled implementations'
	// semantics for monotone counters.
	w := Sub(snap{A: 1}, snap{A: 2})
	if w.A != ^uint64(0) {
		t.Errorf("wrap delta = %d", w.A)
	}
}
