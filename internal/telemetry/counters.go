package telemetry

import (
	"reflect"
	"sync/atomic"
)

// counterStride spaces shards one cache line apart so concurrent
// writers on different shards never false-share.
const counterStride = 8 // uint64s = 64 bytes

// ShardedCounter is a monotone uint64 counter split across
// cache-line-padded shards. Writers pick a shard (normally their
// transaction slot or goroutine id) and add atomically; readers sum
// all shards. With one writer per shard there is no contention at
// all; with more, contention is bounded by the shard count rather
// than serializing every increment on one line.
type ShardedCounter struct {
	shards []uint64 // len = n * counterStride, one live word per stride
}

// NewShardedCounter creates a counter with n shards (minimum 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{shards: make([]uint64, n*counterStride)}
}

// Shards returns the shard count.
func (c *ShardedCounter) Shards() int { return len(c.shards) / counterStride }

// Add atomically adds delta to the shard'th shard (wrapped modulo the
// shard count).
//
//natlevet:hotpath
func (c *ShardedCounter) Add(shard int, delta uint64) {
	n := len(c.shards) / counterStride
	i := shard % n
	if i < 0 {
		i += n
	}
	atomic.AddUint64(&c.shards[i*counterStride], delta)
}

// Load returns the merged value across all shards.
func (c *ShardedCounter) Load() uint64 {
	var sum uint64
	for i := 0; i < len(c.shards); i += counterStride {
		sum += atomic.LoadUint64(&c.shards[i])
	}
	return sum
}

// Sub returns the field-wise difference a - b of a counter-snapshot
// struct: every integer field, including elements of nested arrays and
// structs, of the result is a's value minus b's. It is the single
// windowed-delta implementation shared by the htm/tle/cache Stats
// snapshots (each previously hand-rolled its own Sub). Non-numeric
// fields are not allowed in snapshot types and panic loudly.
func Sub[T any](a, b T) T {
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(&b).Elem()
	subValue(va, vb)
	return a
}

// Add returns the field-wise sum a + b of a counter-snapshot struct,
// the aggregation dual of Sub: every integer (and float) field of the
// result, including elements of nested arrays and structs, is a's
// value plus b's. Layers that split counters across independent
// shards (the service workload keeps one scheme instance per shard)
// merge their snapshots with it. Like Sub it panics loudly on
// non-numeric fields — snapshot types are numbers all the way down.
func Add[T any](a, b T) T {
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(&b).Elem()
	addValue(va, vb)
	return a
}

func addValue(a, b reflect.Value) {
	switch a.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		a.SetUint(a.Uint() + b.Uint())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		a.SetInt(a.Int() + b.Int())
	case reflect.Float32, reflect.Float64:
		a.SetFloat(a.Float() + b.Float())
	case reflect.Array, reflect.Slice:
		for i := 0; i < a.Len(); i++ {
			addValue(a.Index(i), b.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			addValue(a.Field(i), b.Field(i))
		}
	default:
		panic("telemetry: Add: unsupported snapshot field kind " + a.Kind().String())
	}
}

func subValue(a, b reflect.Value) {
	switch a.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		a.SetUint(a.Uint() - b.Uint())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		a.SetInt(a.Int() - b.Int())
	case reflect.Float32, reflect.Float64:
		a.SetFloat(a.Float() - b.Float())
	case reflect.Array, reflect.Slice:
		for i := 0; i < a.Len(); i++ {
			subValue(a.Index(i), b.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			subValue(a.Field(i), b.Field(i))
		}
	default:
		panic("telemetry: Sub: unsupported snapshot field kind " + a.Kind().String())
	}
}
