package telemetry

import (
	"sync"
	"sync/atomic"

	"natle/internal/vtime"
)

// Config tunes a Collector.
type Config struct {
	// Shards is the shard count of the event counters (default 16;
	// writers shard by transaction slot).
	Shards int

	// TraceCap, when positive, enables the ring-buffer event trace
	// holding the most recent TraceCap events (see WriteChromeTrace).
	TraceCap int

	// TraceCache includes cache miss/invalidation events in the ring
	// trace. They are always counted; buffering them is off by default
	// because each simulated memory access can emit one, which would
	// evict the transaction timeline from a bounded ring.
	TraceCache bool
}

// Collector is the aggregating Recorder: sharded counters by event
// kind and abort cause, a per-lock × per-socket attribution matrix,
// duration histograms, and an optional bounded event trace.
type Collector struct {
	// The 64-bit atomic aggregates lead the struct: Go guarantees
	// 8-alignment only for the first word of an allocation, so on
	// 32-bit targets anything placed after the int-sized config or the
	// pointer fields lands 4-aligned and sync/atomic's 64-bit
	// operations fault on it. Every Histogram is a multiple of 8
	// bytes, so the whole prefix stays 8-aligned.
	commitLat    Histogram // begin→commit latency
	abortLat     Histogram // begin→abort latency
	abortGap     Histogram // abort→next-attempt gap (per slot)
	fallbackHold Histogram // fallback lock hold time
	waitTime     Histogram // admission-throttle waits

	// lastAbort tracks, per slot, the end time of the last abort (+1
	// so the zero value means "none"), to derive the abort-to-retry
	// gap without a dedicated event.
	lastAbort [1 << 10]int64

	cfg Config

	kinds   [NumKinds]*ShardedCounter
	aborts  [NumCodes]*ShardedCounter
	hintSet *ShardedCounter // aborts with the retry hint set

	remoteMiss  *ShardedCounter
	remoteInval *ShardedCounter

	mu     sync.Mutex   // guards lock registration
	blocks atomic.Value // []*lockBlock, index = LockID

	ring *Ring
}

// Per-lock, per-socket counter cells.
const (
	cellStarts = iota
	cellCommits
	cellFallbacks
	cellWaits
	cellAborts     // NumCodes consecutive cells
	lockCellStride = cellAborts + int(NumCodes)
)

// socketCells is one socket's attribution cells, padded out to whole
// cache lines: threads on different sockets bump their own block, so
// adjacent sockets must not share a line (the stride is 9 words, which
// would otherwise overlap neighbours and turn the attribution matrix
// itself into a false-sharing hotspot the native backend measures).
//
//natlevet:percpu
type socketCells struct {
	cells [lockCellStride]uint64
	_     [128 - 8*lockCellStride]byte
}

//natlevet:percpu
type lockBlock struct {
	// name is read-only after registration; the pad keeps the hot
	// per-socket cells off its line.
	name string
	_    [48]byte

	socks [MaxSockets]socketCells
}

// NewCollector creates a collector with the given config.
func NewCollector(cfg Config) *Collector {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	c := &Collector{cfg: cfg}
	for i := range c.kinds {
		c.kinds[i] = NewShardedCounter(cfg.Shards)
	}
	for i := range c.aborts {
		c.aborts[i] = NewShardedCounter(cfg.Shards)
	}
	c.hintSet = NewShardedCounter(cfg.Shards)
	c.remoteMiss = NewShardedCounter(cfg.Shards)
	c.remoteInval = NewShardedCounter(cfg.Shards)
	// Lock id 0 is the unattributed bucket (raw transactions).
	c.blocks.Store([]*lockBlock{{name: "(none)"}})
	if cfg.TraceCap > 0 {
		c.ring = NewRing(cfg.TraceCap)
	}
	return c
}

// Default returns a collector with default sharding and no trace.
func Default() *Collector { return NewCollector(Config{}) }

// --- Recorder implementation ---

// RegisterLock implements Recorder.
func (c *Collector) RegisterLock(name string) LockID {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.blocks.Load().([]*lockBlock)
	id := LockID(len(old))
	next := make([]*lockBlock, len(old)+1)
	copy(next, old)
	next[id] = &lockBlock{name: name}
	c.blocks.Store(next)
	return id
}

//natlevet:hotpath
func (c *Collector) lockCell(lock LockID, socket, cell int) *uint64 {
	blocks := c.blocks.Load().([]*lockBlock)
	if int(lock) >= len(blocks) || lock < 0 {
		lock = NoLock
	}
	if socket < 0 || socket >= MaxSockets {
		socket = 0
	}
	return &blocks[lock].socks[socket].cells[cell]
}

//natlevet:hotpath
func (c *Collector) trace(e Event) {
	if c.ring != nil {
		c.ring.Append(e)
	}
}

// TxStart implements Recorder.
//
//natlevet:hotpath
func (c *Collector) TxStart(at vtime.Time, slot, socket int, lock LockID) {
	c.kinds[KindTxStart].Add(slot, 1)
	atomic.AddUint64(c.lockCell(lock, socket, cellStarts), 1)
	if la := atomic.SwapInt64(&c.lastAbort[uint(slot)%uint(len(c.lastAbort))], 0); la != 0 {
		c.abortGap.Observe(at.Sub(vtime.Time(la - 1)))
	}
	c.trace(Event{Kind: KindTxStart, At: at, Slot: int16(slot), Socket: int8(socket), Lock: lock})
}

// TxCommit implements Recorder.
//
//natlevet:hotpath
func (c *Collector) TxCommit(at vtime.Time, slot, socket int, lock LockID, dur vtime.Duration, readSet, writeSet int) {
	c.kinds[KindTxCommit].Add(slot, 1)
	atomic.AddUint64(c.lockCell(lock, socket, cellCommits), 1)
	c.commitLat.Observe(dur)
	c.trace(Event{Kind: KindTxCommit, At: at, Slot: int16(slot), Socket: int8(socket),
		Lock: lock, Dur: dur, Read: int32(readSet), Write: int32(writeSet)})
}

// TxAbort implements Recorder.
//
//natlevet:hotpath
func (c *Collector) TxAbort(at vtime.Time, slot, socket int, lock LockID, code Code, hint bool, dur vtime.Duration) {
	c.kinds[KindTxAbort].Add(slot, 1)
	if code < NumCodes {
		c.aborts[code].Add(slot, 1)
	}
	if hint {
		c.hintSet.Add(slot, 1)
	}
	atomic.AddUint64(c.lockCell(lock, socket, cellAborts+int(code)), 1)
	c.abortLat.Observe(dur)
	atomic.StoreInt64(&c.lastAbort[uint(slot)%uint(len(c.lastAbort))], int64(at)+1)
	c.trace(Event{Kind: KindTxAbort, At: at, Slot: int16(slot), Socket: int8(socket),
		Lock: lock, Code: code, Hint: hint, Dur: dur})
}

// Fallback implements Recorder.
//
//natlevet:hotpath
func (c *Collector) Fallback(at vtime.Time, slot, socket int, lock LockID, hold vtime.Duration) {
	c.kinds[KindFallback].Add(slot, 1)
	atomic.AddUint64(c.lockCell(lock, socket, cellFallbacks), 1)
	c.fallbackHold.Observe(hold)
	// The retry loop ended in a fallback, not a retry: drop the gap.
	atomic.StoreInt64(&c.lastAbort[uint(slot)%uint(len(c.lastAbort))], 0)
	c.trace(Event{Kind: KindFallback, At: at, Slot: int16(slot), Socket: int8(socket),
		Lock: lock, Dur: hold})
}

// Wait implements Recorder.
//
//natlevet:hotpath
func (c *Collector) Wait(at vtime.Time, slot, socket int, lock LockID, dur vtime.Duration) {
	c.kinds[KindWait].Add(slot, 1)
	atomic.AddUint64(c.lockCell(lock, socket, cellWaits), 1)
	c.waitTime.Observe(dur)
	c.trace(Event{Kind: KindWait, At: at, Slot: int16(slot), Socket: int8(socket),
		Lock: lock, Dur: dur})
}

// CacheMiss implements Recorder.
//
//natlevet:hotpath
func (c *Collector) CacheMiss(at vtime.Time, socket int, remote bool) {
	c.kinds[KindCacheMiss].Add(socket, 1)
	if remote {
		c.remoteMiss.Add(socket, 1)
	}
	if c.cfg.TraceCache {
		c.trace(Event{Kind: KindCacheMiss, At: at, Slot: -1, Socket: int8(socket), Remote: remote})
	}
}

// Breaker implements Recorder.
//
//natlevet:hotpath
func (c *Collector) Breaker(at vtime.Time, slot, socket int, lock LockID, open bool) {
	k := KindBreakerClose
	if open {
		k = KindBreakerOpen
	}
	c.kinds[k].Add(slot, 1)
	c.trace(Event{Kind: k, At: at, Slot: int16(slot), Socket: int8(socket), Lock: lock})
}

// Brownout implements Recorder. Read/Write carry the from/to levels so
// the trace records the direction of the transition.
//
//natlevet:hotpath
func (c *Collector) Brownout(at vtime.Time, slot, socket int, from, to int) {
	c.kinds[KindBrownout].Add(slot, 1)
	c.trace(Event{Kind: KindBrownout, At: at, Slot: int16(slot), Socket: int8(socket),
		Read: int32(from), Write: int32(to)})
}

// CacheInval implements Recorder.
//
//natlevet:hotpath
func (c *Collector) CacheInval(at vtime.Time, socket int, remote bool) {
	c.kinds[KindCacheInval].Add(socket, 1)
	if remote {
		c.remoteInval.Add(socket, 1)
	}
	if c.cfg.TraceCache {
		c.trace(Event{Kind: KindCacheInval, At: at, Slot: -1, Socket: int8(socket), Remote: remote})
	}
}

// --- queries ---

// Count returns the number of recorded events of one kind.
func (c *Collector) Count(k Kind) uint64 {
	if k >= NumKinds {
		return 0
	}
	return c.kinds[k].Load()
}

// Starts returns the number of transactional attempts.
func (c *Collector) Starts() uint64 { return c.Count(KindTxStart) }

// Commits returns the number of committed attempts.
func (c *Collector) Commits() uint64 { return c.Count(KindTxCommit) }

// Fallbacks returns the number of fallback acquisitions.
func (c *Collector) Fallbacks() uint64 { return c.Count(KindFallback) }

// Waits returns the number of admission-throttle waits.
func (c *Collector) Waits() uint64 { return c.Count(KindWait) }

// Aborts returns the abort count for one cause.
func (c *Collector) Aborts(code Code) uint64 {
	if code >= NumCodes {
		return 0
	}
	return c.aborts[code].Load()
}

// TotalAborts sums aborts over all causes.
func (c *Collector) TotalAborts() uint64 {
	var n uint64
	for i := range c.aborts {
		n += c.aborts[i].Load()
	}
	return n
}

// HintSetAborts returns aborts that carried the hardware retry hint.
func (c *Collector) HintSetAborts() uint64 { return c.hintSet.Load() }

// AbortRate returns aborted / started attempts (0 when nothing ran).
func (c *Collector) AbortRate() float64 {
	starts := c.Starts()
	if starts == 0 {
		return 0
	}
	return float64(c.TotalAborts()) / float64(starts)
}

// CommitDurTotal returns the summed begin→commit latency, matching
// htm.Stats.CommitDurTotal exactly.
func (c *Collector) CommitDurTotal() vtime.Duration {
	return vtime.Duration(c.commitLat.Snapshot().SumPs)
}

// RemoteCacheMisses returns cross-socket misses (of CacheMisses).
func (c *Collector) RemoteCacheMisses() uint64 { return c.remoteMiss.Load() }

// RemoteCacheInvals returns cross-socket invalidations (of CacheInvals).
func (c *Collector) RemoteCacheInvals() uint64 { return c.remoteInval.Load() }

// CommitLatency returns the begin→commit latency histogram.
func (c *Collector) CommitLatency() HistogramSnapshot { return c.commitLat.Snapshot() }

// AbortLatency returns the begin→abort latency histogram.
func (c *Collector) AbortLatency() HistogramSnapshot { return c.abortLat.Snapshot() }

// AbortGap returns the abort→next-attempt gap histogram.
func (c *Collector) AbortGap() HistogramSnapshot { return c.abortGap.Snapshot() }

// FallbackHold returns the fallback lock hold-time histogram.
func (c *Collector) FallbackHold() HistogramSnapshot { return c.fallbackHold.Snapshot() }

// WaitTime returns the admission-throttle wait histogram.
func (c *Collector) WaitTime() HistogramSnapshot { return c.waitTime.Snapshot() }

// LockCell is the per-lock, per-socket attribution record.
type LockCell struct {
	Starts    uint64
	Commits   uint64
	Fallbacks uint64
	Waits     uint64
	Aborts    [NumCodes]uint64
}

// Sub returns the windowed delta a - b.
func (a LockCell) Sub(b LockCell) LockCell { return Sub(a, b) }

// LockSummary is one lock's attribution matrix.
type LockSummary struct {
	ID        LockID
	Name      string
	PerSocket [MaxSockets]LockCell
}

// Total merges the per-socket cells.
func (l LockSummary) Total() LockCell {
	var t LockCell
	for _, c := range l.PerSocket {
		t.Starts += c.Starts
		t.Commits += c.Commits
		t.Fallbacks += c.Fallbacks
		t.Waits += c.Waits
		for i := range t.Aborts {
			t.Aborts[i] += c.Aborts[i]
		}
	}
	return t
}

// Locks returns the attribution matrix for every registered lock
// (index 0 is the unattributed bucket).
func (c *Collector) Locks() []LockSummary {
	blocks := c.blocks.Load().([]*lockBlock)
	out := make([]LockSummary, len(blocks))
	for id, b := range blocks {
		s := LockSummary{ID: LockID(id), Name: b.name}
		for sock := 0; sock < MaxSockets; sock++ {
			sc := &b.socks[sock]
			cell := &s.PerSocket[sock]
			cell.Starts = atomic.LoadUint64(&sc.cells[cellStarts])
			cell.Commits = atomic.LoadUint64(&sc.cells[cellCommits])
			cell.Fallbacks = atomic.LoadUint64(&sc.cells[cellFallbacks])
			cell.Waits = atomic.LoadUint64(&sc.cells[cellWaits])
			for code := 0; code < int(NumCodes); code++ {
				cell.Aborts[code] = atomic.LoadUint64(&sc.cells[cellAborts+code])
			}
		}
		out[id] = s
	}
	return out
}

// LockName returns the registered name of a lock id.
func (c *Collector) LockName(id LockID) string {
	blocks := c.blocks.Load().([]*lockBlock)
	if id < 0 || int(id) >= len(blocks) {
		return "(none)"
	}
	return blocks[id].name
}

// Events returns the buffered trace oldest-first (nil without a trace).
func (c *Collector) Events() []Event {
	if c.ring == nil {
		return nil
	}
	return c.ring.Events()
}

// TraceDropped returns how many trace events were overwritten.
func (c *Collector) TraceDropped() uint64 {
	if c.ring == nil {
		return 0
	}
	return c.ring.Dropped()
}
