package telemetry

import (
	"errors"
	"testing"
)

// errAfter is an io.Writer that accepts n bytes and then fails every
// subsequent write — the shape of a full disk or a closed pipe
// mid-export.
type errAfter struct {
	n   int
	err error
}

func (w *errAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

// TestExportersPropagateWriterErrors: every exporter must surface the
// writer's error instead of silently truncating output — a sweep
// writing CSV to a full disk has to fail loudly.
func TestExportersPropagateWriterErrors(t *testing.T) {
	sentinel := errors.New("disk full")
	c := traceScenario()
	s := c.Summary()

	exporters := map[string]func(w *errAfter) error{
		"WriteCSVHeader":   func(w *errAfter) error { return WriteCSVHeader(w, "threads") },
		"Summary.WriteCSV": func(w *errAfter) error { return s.WriteCSV(w, "4") },
		"Summary.WriteJSON": func(w *errAfter) error {
			return s.WriteJSON(w)
		},
		"Collector.WriteChromeTrace": func(w *errAfter) error {
			return c.WriteChromeTrace(w)
		},
	}
	for name, export := range exporters {
		// Failing immediately and failing mid-stream must both surface.
		for _, accept := range []int{0, 10} {
			w := &errAfter{n: accept, err: sentinel}
			err := export(w)
			if err == nil {
				t.Errorf("%s (fail after %d bytes): error swallowed", name, accept)
			} else if !errors.Is(err, sentinel) {
				t.Errorf("%s (fail after %d bytes): got %v, want the writer's error", name, accept, err)
			}
		}
		// And a writer that never fails must see no error.
		w := &errAfter{n: 1 << 30, err: sentinel}
		if err := export(w); err != nil {
			t.Errorf("%s: unexpected error on a healthy writer: %v", name, err)
		}
	}
}
