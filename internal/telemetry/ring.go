package telemetry

import "sync"

// Ring is a bounded ring buffer of trace events: appends beyond the
// capacity overwrite the oldest events, so a long run keeps the most
// recent window of the timeline at a fixed memory bound. A mutex
// guards the buffer; under the simulator's serialization token the
// lock is never contended, and it keeps the recorder safe for
// genuinely concurrent callers (tests, future host-parallel engines).
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int    // insertion index
	wrapped bool   // buffer has been full at least once
	dropped uint64 // events overwritten
}

// NewRing creates a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records one event, overwriting the oldest if full.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.dropped++
		r.wrapped = true
	}
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
	r.mu.Unlock()
}

// Events returns the buffered events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return cap(r.buf) }

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
