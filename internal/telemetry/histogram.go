package telemetry

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"natle/internal/vtime"
)

// HistBuckets is the number of log₂ buckets: bucket b counts
// observations d with 2^(b-1) ≤ d < 2^b picoseconds (bucket 0 counts
// d ≤ 0 ps, which can occur for zero-cost spans). 63 buckets cover the
// whole non-negative Duration range.
const HistBuckets = 64

// Histogram is a log₂-bucketed duration histogram with atomic
// updates, so it can be shared by concurrent observers without
// locking. Use Snapshot for consistent reads and windowed deltas.
type Histogram struct {
	counts [HistBuckets]uint64
	sum    uint64 // total observed picoseconds
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d vtime.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// Observe adds one observation.
//
//natlevet:hotpath
func (h *Histogram) Observe(d vtime.Duration) {
	atomic.AddUint64(&h.counts[bucketOf(d)], 1)
	if d > 0 {
		atomic.AddUint64(&h.sum, uint64(d))
	}
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		atomic.AddUint64(&h.counts[i], atomic.LoadUint64(&o.counts[i]))
	}
	atomic.AddUint64(&h.sum, atomic.LoadUint64(&o.sum))
}

// Snapshot captures the current buckets for queries and deltas.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = atomic.LoadUint64(&h.counts[i])
	}
	s.SumPs = atomic.LoadUint64(&h.sum)
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += atomic.LoadUint64(&h.counts[i])
	}
	return n
}

// Quantile returns the q-quantile (e.g. 0.5, 0.99) of the current
// contents; see HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) vtime.Duration {
	s := h.Snapshot()
	return s.Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Being a
// plain counter struct, windowed deltas come from telemetry.Sub.
type HistogramSnapshot struct {
	Counts [HistBuckets]uint64
	SumPs  uint64
}

// Sub returns the windowed delta s - t.
func (s HistogramSnapshot) Sub(t HistogramSnapshot) HistogramSnapshot { return Sub(s, t) }

// Count returns the number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the mean observation.
func (s HistogramSnapshot) Mean() vtime.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return vtime.Duration(s.SumPs / n)
}

// Quantile returns the q-quantile (q in [0,1]), interpolated linearly
// within the containing log₂ bucket. Resolution is therefore the
// bucket width (a factor of 2), which is ample for latency
// distributions spanning decades.
func (s HistogramSnapshot) Quantile(q float64) vtime.Duration {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketBounds(b)
			frac := 0.5
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + vtime.Duration(float64(hi-lo)*frac)
		}
		cum = next
	}
	// Fell through (rank beyond last non-empty bucket): max bound.
	for b := HistBuckets - 1; b >= 0; b-- {
		if s.Counts[b] != 0 {
			_, hi := bucketBounds(b)
			return hi
		}
	}
	return 0
}

// bucketBounds returns the [lo, hi) duration range of bucket b.
func bucketBounds(b int) (lo, hi vtime.Duration) {
	if b == 0 {
		return 0, 1
	}
	return 1 << uint(b-1), 1 << uint(b)
}

// String renders count, mean and key percentiles.
func (s HistogramSnapshot) String() string {
	if s.Count() == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v",
		s.Count(), s.Mean(), s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99))
}

// Bars renders an ASCII bucket chart of the non-empty range (debug
// aid; width is the longest bar in characters).
func (s HistogramSnapshot) Bars(width int) string {
	if width <= 0 {
		width = 40
	}
	var max uint64
	lo, hi := -1, -1
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		if lo < 0 {
			lo = b
		}
		hi = b
		if c > max {
			max = c
		}
	}
	if lo < 0 {
		return "empty\n"
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		l, _ := bucketBounds(i)
		n := int(float64(width) * float64(s.Counts[i]) / float64(max))
		fmt.Fprintf(&b, "%10v %8d %s\n", l, s.Counts[i], strings.Repeat("#", n))
	}
	return b.String()
}
