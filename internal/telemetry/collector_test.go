package telemetry

import (
	"strings"
	"testing"

	"natle/internal/vtime"
)

func TestCollectorCountsAndAttribution(t *testing.T) {
	c := NewCollector(Config{TraceCap: 64})
	l1 := c.RegisterLock("TLE-20")
	l2 := c.RegisterLock("TLE-5")

	at := vtime.Time(0)
	// Slot 1 on socket 0, lock 1: abort then commit.
	c.TxStart(at, 1, 0, l1)
	at = at.Add(50 * vtime.Nanosecond)
	c.TxAbort(at, 1, 0, l1, CodeConflict, true, 50*vtime.Nanosecond)
	at = at.Add(100 * vtime.Nanosecond)
	c.TxStart(at, 1, 0, l1)
	at = at.Add(80 * vtime.Nanosecond)
	c.TxCommit(at, 1, 0, l1, 80*vtime.Nanosecond, 10, 3)
	// Slot 2 on socket 1, lock 2: capacity abort then fallback.
	c.TxStart(at, 2, 1, l2)
	c.TxAbort(at, 2, 1, l2, CodeCapacity, false, 20*vtime.Nanosecond)
	c.Fallback(at.Add(300*vtime.Nanosecond), 2, 1, l2, 200*vtime.Nanosecond)
	// Cache traffic.
	c.CacheMiss(at, 0, true)
	c.CacheMiss(at, 0, false)
	c.CacheInval(at, 1, true)

	if c.Starts() != 3 || c.Commits() != 1 || c.Fallbacks() != 1 {
		t.Errorf("starts/commits/fallbacks = %d/%d/%d, want 3/1/1",
			c.Starts(), c.Commits(), c.Fallbacks())
	}
	if c.Aborts(CodeConflict) != 1 || c.Aborts(CodeCapacity) != 1 || c.TotalAborts() != 2 {
		t.Errorf("aborts = conflict %d capacity %d total %d",
			c.Aborts(CodeConflict), c.Aborts(CodeCapacity), c.TotalAborts())
	}
	if c.HintSetAborts() != 1 {
		t.Errorf("hint-set aborts = %d, want 1", c.HintSetAborts())
	}
	if got := c.AbortRate(); got != 2.0/3.0 {
		t.Errorf("abort rate = %g, want 2/3", got)
	}
	if got := c.CommitDurTotal(); got != 80*vtime.Nanosecond {
		t.Errorf("commit dur total = %v, want 80ns", got)
	}

	// The abort→retry gap: slot 1 aborted at t=50ns and restarted at
	// t=150ns, so exactly one 100ns gap. The slot-2 abort ended in a
	// fallback, which must not count as a retry gap.
	gap := c.AbortGap()
	if gap.Count() != 1 {
		t.Fatalf("abort gap count = %d, want 1", gap.Count())
	}
	if gap.SumPs != uint64(100*vtime.Nanosecond) {
		t.Errorf("abort gap sum = %dps, want 100ns", gap.SumPs)
	}

	// Per-lock × per-socket attribution.
	locks := c.Locks()
	if len(locks) != 3 { // (none) + 2 registered
		t.Fatalf("lock table size = %d, want 3", len(locks))
	}
	c1 := locks[l1].PerSocket[0]
	if c1.Starts != 2 || c1.Commits != 1 || c1.Aborts[CodeConflict] != 1 {
		t.Errorf("lock1 socket0 cell = %+v", c1)
	}
	c2 := locks[l2].PerSocket[1]
	if c2.Starts != 1 || c2.Fallbacks != 1 || c2.Aborts[CodeCapacity] != 1 {
		t.Errorf("lock2 socket1 cell = %+v", c2)
	}
	if tot := locks[l2].Total(); tot.Starts != 1 || tot.Fallbacks != 1 {
		t.Errorf("lock2 total = %+v", tot)
	}

	if c.Count(KindCacheMiss) != 2 || c.RemoteCacheMisses() != 1 ||
		c.Count(KindCacheInval) != 1 || c.RemoteCacheInvals() != 1 {
		t.Errorf("cache counters = miss %d (remote %d) inval %d (remote %d)",
			c.Count(KindCacheMiss), c.RemoteCacheMisses(),
			c.Count(KindCacheInval), c.RemoteCacheInvals())
	}

	// Cache events stay out of the ring by default.
	for _, e := range c.Events() {
		if e.Kind == KindCacheMiss || e.Kind == KindCacheInval {
			t.Errorf("cache event leaked into the trace ring: %+v", e)
		}
	}

	sum := c.Summary()
	if sum.Starts != 3 || sum.Aborts[CodeConflict] != 1 || len(sum.Locks) != 2 {
		t.Errorf("summary = %+v", sum)
	}
	if !strings.Contains(sum.String(), "commits=1") {
		t.Errorf("summary string = %q", sum.String())
	}
	row := sum.CSVRow("72")
	if !strings.HasPrefix(row, "72,3,1,") {
		t.Errorf("csv row = %q", row)
	}
	if got, want := len(strings.Split(row, ",")), len(strings.Split(CSVHeader("threads"), ",")); got != want {
		t.Errorf("csv row has %d columns, header %d", got, want)
	}
}

func TestCollectorUnknownLockFallsBackToNone(t *testing.T) {
	c := NewCollector(Config{})
	c.TxStart(0, 0, 0, LockID(99)) // never registered
	locks := c.Locks()
	if locks[0].PerSocket[0].Starts != 1 {
		t.Errorf("unattributed starts = %d, want 1", locks[0].PerSocket[0].Starts)
	}
	if got := c.LockName(99); got != "(none)" {
		t.Errorf("LockName(99) = %q", got)
	}
}

func TestNopRecorderIsInert(t *testing.T) {
	r := Nop()
	if id := r.RegisterLock("x"); id != NoLock {
		t.Errorf("nop RegisterLock = %d, want NoLock", id)
	}
	// Must not panic or allocate state.
	r.TxStart(0, 0, 0, NoLock)
	r.TxCommit(0, 0, 0, NoLock, 0, 0, 0)
	r.TxAbort(0, 0, 0, NoLock, CodeConflict, true, 0)
	r.Fallback(0, 0, 0, NoLock, 0)
	r.Wait(0, 0, 0, NoLock, 0)
	r.CacheMiss(0, 0, false)
	r.CacheInval(0, 0, true)
}
