// Package telemetry is the observability substrate for the simulated
// HTM stack: a Recorder interface receiving per-transaction lifecycle
// events (start, commit, abort, lock fallback, throttle wait) and
// cache events (miss, invalidation), all stamped with virtual time
// from package vtime.
//
// Two recorders are provided:
//
//   - Nop, whose methods are empty so the hot path costs nothing when
//     telemetry is off (every emitting layer holds a Recorder and
//     defaults to Nop);
//   - Collector, which aggregates events into sharded counters, a
//     per-lock × per-socket × per-abort-cause attribution matrix (the
//     axes of the paper's Figures 5, 12 and 17), log₂-bucketed
//     duration histograms (commit latency, abort-to-retry gap,
//     fallback hold time, throttle wait) with percentile queries, and
//     an optional bounded ring-buffer event trace exportable as Chrome
//     trace_event JSON (see export.go).
//
// The package depends only on vtime so that every layer of the stack
// (cache, htm, tle, natle, workload, harness) can emit events without
// import cycles. Event codes mirror htm abort codes by value; package
// htm asserts the correspondence at compile time.
package telemetry

import (
	"fmt"

	"natle/internal/vtime"
)

// Code is a transaction abort condition code. Values mirror htm.Code
// (none, conflict, capacity, explicit, lock-held).
type Code uint8

// Abort condition codes.
const (
	CodeNone Code = iota
	CodeConflict
	CodeCapacity
	CodeExplicit
	CodeLockHeld
	NumCodes
)

// String returns the name of the abort code.
func (c Code) String() string {
	switch c {
	case CodeNone:
		return "none"
	case CodeConflict:
		return "conflict"
	case CodeCapacity:
		return "capacity"
	case CodeExplicit:
		return "explicit"
	case CodeLockHeld:
		return "lock-held"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// LockID identifies one registered lock within a Recorder. The zero
// value NoLock means "no lock attribution" (e.g. raw transactions run
// outside any elision layer).
type LockID int32

// NoLock is the unattributed lock id.
const NoLock LockID = 0

// MaxSockets bounds the per-socket attribution axes (matches the
// widest simulated machine).
const MaxSockets = 8

// Kind discriminates trace events.
type Kind uint8

// Event kinds.
const (
	KindTxStart Kind = iota
	KindTxCommit
	KindTxAbort
	KindFallback
	KindWait
	KindCacheMiss
	KindCacheInval
	KindBreakerOpen
	KindBreakerClose
	KindBrownout
	NumKinds
)

// String returns the name of the event kind.
func (k Kind) String() string {
	switch k {
	case KindTxStart:
		return "tx-start"
	case KindTxCommit:
		return "tx-commit"
	case KindTxAbort:
		return "tx-abort"
	case KindFallback:
		return "fallback"
	case KindWait:
		return "wait"
	case KindCacheMiss:
		return "cache-miss"
	case KindCacheInval:
		return "cache-inval"
	case KindBreakerOpen:
		return "breaker-open"
	case KindBreakerClose:
		return "breaker-close"
	case KindBrownout:
		return "brownout"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record. At is the event's virtual timestamp; for
// events with a duration (commit, abort, fallback, wait) At is the
// *end* of the span and Dur its length, so the span starts at
// At.Add(-Dur).
type Event struct {
	Kind   Kind
	Code   Code // abort cause (KindTxAbort only)
	Hint   bool // hardware retry hint (KindTxAbort only)
	Remote bool // cross-socket (cache events only)
	Socket int8
	Slot   int16 // transaction slot / dense thread id (-1 if unknown)
	Lock   LockID
	At     vtime.Time
	Dur    vtime.Duration
	Read   int32 // read-set lines at commit
	Write  int32 // write-set lines at commit
}

// Recorder receives lifecycle events from the HTM substrate. All
// methods are invoked under the simulator's global serialization
// token, but implementations are written to also tolerate genuinely
// concurrent callers (the Collector uses sharded atomic counters), so
// recorders can be shared by tests that bypass the simulator.
type Recorder interface {
	// RegisterLock introduces a lock instance for per-lock attribution
	// and returns its id. Locks must be registered on the recorder
	// that will receive their events (i.e. set the recorder before
	// constructing locks).
	RegisterLock(name string) LockID

	// TxStart records the beginning of one transactional attempt.
	TxStart(at vtime.Time, slot, socket int, lock LockID)

	// TxCommit records a successful attempt: dur is the begin-to-commit
	// latency, readSet/writeSet the footprint in cache lines.
	TxCommit(at vtime.Time, slot, socket int, lock LockID, dur vtime.Duration, readSet, writeSet int)

	// TxAbort records a failed attempt: code/hint are the hardware
	// abort condition, dur the begin-to-abort latency.
	TxAbort(at vtime.Time, slot, socket int, lock LockID, code Code, hint bool, dur vtime.Duration)

	// Fallback records a critical section that acquired the fallback
	// lock, with the lock hold time.
	Fallback(at vtime.Time, slot, socket int, lock LockID, hold vtime.Duration)

	// Wait records time a thread spent blocked by an admission policy
	// (NATLE mode throttling) before entering the critical section.
	Wait(at vtime.Time, slot, socket int, lock LockID, dur vtime.Duration)

	// CacheMiss records an access served outside the requesting
	// socket's caches (remote cache-to-cache transfer, or DRAM; remote
	// reports whether it crossed the socket boundary).
	CacheMiss(at vtime.Time, socket int, remote bool)

	// CacheInval records a write that invalidated other copies
	// (remote reports whether a remote-socket copy was invalidated).
	CacheInval(at vtime.Time, socket int, remote bool)

	// Breaker records a circuit-breaker transition on a lock: open=true
	// when the windowed abort rate tripped it (HTM degraded to pure
	// mutual exclusion), open=false when a recovery probe committed and
	// restored elision.
	Breaker(at vtime.Time, slot, socket int, lock LockID, open bool)

	// Brownout records an overload-controller level transition on a
	// service shard (slot carries the shard index): from/to are
	// brownout levels — 0 is normal operation, higher levels shrink the
	// batch size and the highest downgrades the scheme to pure mutual
	// exclusion (see internal/service).
	Brownout(at vtime.Time, slot, socket int, from, to int)
}

// NopRecorder discards all events. Its methods are empty and
// non-virtual once devirtualized, so emitting layers pay only the
// interface call.
type NopRecorder struct{}

// Nop returns the shared no-op recorder.
func Nop() Recorder { return nopShared }

var nopShared Recorder = NopRecorder{}

// RegisterLock implements Recorder.
func (NopRecorder) RegisterLock(string) LockID { return NoLock }

// TxStart implements Recorder.
func (NopRecorder) TxStart(vtime.Time, int, int, LockID) {}

// TxCommit implements Recorder.
func (NopRecorder) TxCommit(vtime.Time, int, int, LockID, vtime.Duration, int, int) {}

// TxAbort implements Recorder.
func (NopRecorder) TxAbort(vtime.Time, int, int, LockID, Code, bool, vtime.Duration) {}

// Fallback implements Recorder.
func (NopRecorder) Fallback(vtime.Time, int, int, LockID, vtime.Duration) {}

// Wait implements Recorder.
func (NopRecorder) Wait(vtime.Time, int, int, LockID, vtime.Duration) {}

// CacheMiss implements Recorder.
func (NopRecorder) CacheMiss(vtime.Time, int, bool) {}

// CacheInval implements Recorder.
func (NopRecorder) CacheInval(vtime.Time, int, bool) {}

// Breaker implements Recorder.
func (NopRecorder) Breaker(vtime.Time, int, int, LockID, bool) {}

// Brownout implements Recorder.
func (NopRecorder) Brownout(vtime.Time, int, int, int, int) {}
