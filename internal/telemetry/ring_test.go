package telemetry

import (
	"testing"

	"natle/internal/vtime"
)

func TestRingBounded(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Kind: KindTxStart, At: vtime.Time(i)})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", r.Len(), r.Cap())
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
	ev := r.Events()
	for i, e := range ev {
		if want := vtime.Time(6 + i); e.At != want {
			t.Errorf("event %d at %v, want %v (oldest-first order)", i, e.At, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Append(Event{At: 1})
	r.Append(Event{At: 2})
	ev := r.Events()
	if len(ev) != 2 || ev[0].At != 1 || ev[1].At != 2 {
		t.Errorf("events = %+v", ev)
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", r.Dropped())
	}
}
