package telemetry

import (
	"sync"
	"testing"

	"natle/internal/vtime"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)   // bucket 1: [1,2)
	h.Observe(2)   // bucket 2: [2,4)
	h.Observe(3)   // bucket 2
	h.Observe(512) // bucket 10
	s := h.Snapshot()
	if s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 2 || s.Counts[10] != 1 {
		t.Errorf("bucket counts = %v", s.Counts[:12])
	}
	if got := s.SumPs; got != 518 {
		t.Errorf("sum = %d, want 518", got)
	}
	if got := s.Mean(); got != 518/5 {
		t.Errorf("mean = %d, want %d", got, 518/5)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of ~1us, 1 outlier at ~1ms.
	for i := 0; i < 100; i++ {
		h.Observe(1 * vtime.Microsecond)
	}
	h.Observe(1 * vtime.Millisecond)
	p50 := h.Quantile(0.50)
	if p50 < 512*vtime.Nanosecond || p50 > 2*vtime.Microsecond {
		t.Errorf("p50 = %v, want ~1us", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 > 2*vtime.Microsecond {
		t.Errorf("p99 = %v, want within the 1us bucket", p99)
	}
	p100 := h.Quantile(1)
	if p100 < 512*vtime.Microsecond {
		t.Errorf("p100 = %v, want in the outlier bucket", p100)
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramMergeAndDelta(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	b.Observe(10)
	b.Observe(1000)
	a.Merge(&b)
	if got := a.Count(); got != 3 {
		t.Fatalf("merged count = %d, want 3", got)
	}
	before := a.Snapshot()
	a.Observe(10)
	a.Observe(20)
	delta := a.Snapshot().Sub(before)
	if delta.Count() != 2 || delta.SumPs != 30 {
		t.Errorf("windowed delta = count %d sum %d, want 2/30", delta.Count(), delta.SumPs)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const gors, per = 16, 5000
	for g := 0; g < gors; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(vtime.Duration(i % 1024))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != gors*per {
		t.Errorf("count = %d, want %d", got, gors*per)
	}
}
