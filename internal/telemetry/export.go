package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"natle/internal/vtime"
)

// HistStats is the exported summary of one histogram (times in
// nanoseconds for readability in CSV/JSON).
type HistStats struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P90Ns  float64 `json:"p90_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

func histStats(s HistogramSnapshot) HistStats {
	return HistStats{
		Count:  s.Count(),
		MeanNs: s.Mean().Nanoseconds(),
		P50Ns:  s.Quantile(0.50).Nanoseconds(),
		P90Ns:  s.Quantile(0.90).Nanoseconds(),
		P99Ns:  s.Quantile(0.99).Nanoseconds(),
	}
}

// Summary is the exportable roll-up of a Collector.
type Summary struct {
	Starts        uint64           `json:"starts"`
	Commits       uint64           `json:"commits"`
	Aborts        [NumCodes]uint64 `json:"aborts_by_code"`
	AbortRate     float64          `json:"abort_rate"`
	HintSetAborts uint64           `json:"hint_set_aborts"`
	Fallbacks     uint64           `json:"fallbacks"`
	Waits         uint64           `json:"waits"`

	CacheMisses       uint64 `json:"cache_misses"`
	RemoteCacheMisses uint64 `json:"remote_cache_misses"`
	CacheInvals       uint64 `json:"cache_invals"`
	RemoteCacheInvals uint64 `json:"remote_cache_invals"`

	BreakerOpens  uint64 `json:"breaker_opens,omitempty"`
	BreakerCloses uint64 `json:"breaker_closes,omitempty"`
	Brownouts     uint64 `json:"brownout_transitions,omitempty"`

	CommitLatency HistStats `json:"commit_latency"`
	AbortGap      HistStats `json:"abort_gap"`
	FallbackHold  HistStats `json:"fallback_hold"`
	WaitTime      HistStats `json:"wait_time"`

	Locks []LockSummary `json:"locks,omitempty"`

	TraceEvents  int    `json:"trace_events,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
}

// Summary rolls up the collector's current counters.
func (c *Collector) Summary() Summary {
	s := Summary{
		Starts:        c.Starts(),
		Commits:       c.Commits(),
		AbortRate:     c.AbortRate(),
		HintSetAborts: c.HintSetAborts(),
		Fallbacks:     c.Fallbacks(),
		Waits:         c.Waits(),

		CacheMisses:       c.Count(KindCacheMiss),
		RemoteCacheMisses: c.RemoteCacheMisses(),
		CacheInvals:       c.Count(KindCacheInval),
		RemoteCacheInvals: c.RemoteCacheInvals(),

		BreakerOpens:  c.Count(KindBreakerOpen),
		BreakerCloses: c.Count(KindBreakerClose),
		Brownouts:     c.Count(KindBrownout),

		CommitLatency: histStats(c.CommitLatency()),
		AbortGap:      histStats(c.AbortGap()),
		FallbackHold:  histStats(c.FallbackHold()),
		WaitTime:      histStats(c.WaitTime()),
	}
	for code := Code(0); code < NumCodes; code++ {
		s.Aborts[code] = c.Aborts(code)
	}
	// Skip the unattributed bucket when no raw transactions used it.
	for _, l := range c.Locks() {
		if l.ID == NoLock && l.Total() == (LockCell{}) {
			continue
		}
		s.Locks = append(s.Locks, l)
	}
	if c.ring != nil {
		s.TraceEvents = c.ring.Len()
		s.TraceDropped = c.ring.Dropped()
	}
	return s
}

// WriteJSON writes the full summary (including the per-lock
// attribution matrix) as indented JSON.
func (s Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// CSVHeader returns the column names of CSVRow, with an optional
// prefix of extra caller columns (e.g. "threads").
func CSVHeader(extra ...string) string {
	cols := append([]string{}, extra...)
	cols = append(cols,
		"starts", "commits", "abort_rate",
		"aborts_conflict", "aborts_capacity", "aborts_explicit", "aborts_lockheld",
		"fallbacks", "waits",
		"cache_misses", "remote_cache_misses", "cache_invals", "remote_cache_invals",
		"commit_p50_ns", "commit_p99_ns", "commit_mean_ns",
		"abort_gap_p50_ns", "abort_gap_p99_ns",
		"fallback_hold_p50_ns", "fallback_hold_p99_ns",
	)
	return strings.Join(cols, ",")
}

// WriteCSVHeader writes CSVHeader (plus newline) to w, propagating the
// writer's error — callers streaming sweep results to a file must see
// a full disk instead of silently truncated output.
func WriteCSVHeader(w io.Writer, extra ...string) error {
	_, err := io.WriteString(w, CSVHeader(extra...)+"\n")
	return err
}

// CSVRow renders the summary's flat (global) counters as one CSV row,
// prefixed by any extra caller values matching CSVHeader's extras.
func (s Summary) CSVRow(extra ...string) string {
	cols := append([]string{}, extra...)
	cols = append(cols,
		fmt.Sprintf("%d", s.Starts),
		fmt.Sprintf("%d", s.Commits),
		fmt.Sprintf("%.6g", s.AbortRate),
		fmt.Sprintf("%d", s.Aborts[CodeConflict]),
		fmt.Sprintf("%d", s.Aborts[CodeCapacity]),
		fmt.Sprintf("%d", s.Aborts[CodeExplicit]),
		fmt.Sprintf("%d", s.Aborts[CodeLockHeld]),
		fmt.Sprintf("%d", s.Fallbacks),
		fmt.Sprintf("%d", s.Waits),
		fmt.Sprintf("%d", s.CacheMisses),
		fmt.Sprintf("%d", s.RemoteCacheMisses),
		fmt.Sprintf("%d", s.CacheInvals),
		fmt.Sprintf("%d", s.RemoteCacheInvals),
		fmt.Sprintf("%.6g", s.CommitLatency.P50Ns),
		fmt.Sprintf("%.6g", s.CommitLatency.P99Ns),
		fmt.Sprintf("%.6g", s.CommitLatency.MeanNs),
		fmt.Sprintf("%.6g", s.AbortGap.P50Ns),
		fmt.Sprintf("%.6g", s.AbortGap.P99Ns),
		fmt.Sprintf("%.6g", s.FallbackHold.P50Ns),
		fmt.Sprintf("%.6g", s.FallbackHold.P99Ns),
	)
	return strings.Join(cols, ",")
}

// WriteCSV writes the summary's CSVRow (plus newline) to w,
// propagating the writer's error.
func (s Summary) WriteCSV(w io.Writer, extra ...string) error {
	_, err := io.WriteString(w, s.CSVRow(extra...)+"\n")
	return err
}

// String renders a compact human-readable roll-up.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "starts=%d commits=%d aborts=%d (%.1f%%) fallbacks=%d",
		s.Starts, s.Commits,
		s.Aborts[CodeConflict]+s.Aborts[CodeCapacity]+s.Aborts[CodeExplicit]+s.Aborts[CodeLockHeld],
		100*s.AbortRate, s.Fallbacks)
	fmt.Fprintf(&b, "\n  aborts by cause: conflict=%d capacity=%d explicit=%d lock-held=%d (hint set on %d)",
		s.Aborts[CodeConflict], s.Aborts[CodeCapacity], s.Aborts[CodeExplicit],
		s.Aborts[CodeLockHeld], s.HintSetAborts)
	fmt.Fprintf(&b, "\n  commit latency: n=%d mean=%.0fns p50=%.0fns p99=%.0fns",
		s.CommitLatency.Count, s.CommitLatency.MeanNs, s.CommitLatency.P50Ns, s.CommitLatency.P99Ns)
	if s.AbortGap.Count > 0 {
		fmt.Fprintf(&b, "\n  abort→retry gap: n=%d p50=%.0fns p99=%.0fns",
			s.AbortGap.Count, s.AbortGap.P50Ns, s.AbortGap.P99Ns)
	}
	if s.FallbackHold.Count > 0 {
		fmt.Fprintf(&b, "\n  fallback hold:   n=%d p50=%.0fns p99=%.0fns",
			s.FallbackHold.Count, s.FallbackHold.P50Ns, s.FallbackHold.P99Ns)
	}
	if s.BreakerOpens > 0 || s.BreakerCloses > 0 {
		fmt.Fprintf(&b, "\n  breaker: opens=%d closes=%d", s.BreakerOpens, s.BreakerCloses)
	}
	if s.Brownouts > 0 {
		fmt.Fprintf(&b, "\n  brownout transitions: %d", s.Brownouts)
	}
	return b.String()
}

// --- Chrome trace_event export ---

// chromeEvent is one trace_event record; field order fixes the JSON
// layout so exports are byte-for-byte deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func us(d vtime.Duration) float64 { return float64(d) / float64(vtime.Microsecond) }

// WriteChromeTrace exports the buffered event trace in Chrome's
// trace_event JSON format (load it at chrome://tracing or
// https://ui.perfetto.dev). Sockets map to processes and transaction
// slots to threads, so the per-socket interleaving of commits, aborts,
// fallbacks, and throttle waits — the paper's central object of study
// — is directly visible on the timeline. Spans (commit, abort,
// fallback, wait) are complete events ("X"); instantaneous events
// (tx-start, cache events) are instants ("i").
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		raw, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(raw)
		return err
	}

	// Name the processes (sockets) and announce lock ids.
	sockets := map[int]bool{}
	for _, e := range c.Events() {
		sockets[int(e.Socket)] = true
	}
	for s := 0; s < MaxSockets; s++ {
		if !sockets[s] {
			continue
		}
		if err := emit(chromeEvent{Name: "process_name", Phase: "M", PID: s,
			Args: map[string]any{"name": fmt.Sprintf("socket %d", s)}}); err != nil {
			return err
		}
	}

	for _, e := range c.Events() {
		ce := chromeEvent{
			PID: int(e.Socket),
			TID: int(e.Slot),
			Cat: e.Kind.String(),
		}
		switch e.Kind {
		case KindTxCommit:
			d := us(e.Dur)
			ce.Name = "tx:" + c.LockName(e.Lock)
			ce.Phase = "X"
			ce.TsUs = us(vtime.Duration(e.At.Add(-e.Dur)))
			ce.DurUs = &d
			ce.Args = map[string]any{"readSet": e.Read, "writeSet": e.Write}
		case KindTxAbort:
			d := us(e.Dur)
			ce.Name = "abort:" + e.Code.String()
			ce.Phase = "X"
			ce.TsUs = us(vtime.Duration(e.At.Add(-e.Dur)))
			ce.DurUs = &d
			ce.Args = map[string]any{"hint": e.Hint, "lock": c.LockName(e.Lock)}
		case KindFallback:
			d := us(e.Dur)
			ce.Name = "fallback:" + c.LockName(e.Lock)
			ce.Phase = "X"
			ce.TsUs = us(vtime.Duration(e.At.Add(-e.Dur)))
			ce.DurUs = &d
		case KindWait:
			d := us(e.Dur)
			ce.Name = "wait:" + c.LockName(e.Lock)
			ce.Phase = "X"
			ce.TsUs = us(vtime.Duration(e.At.Add(-e.Dur)))
			ce.DurUs = &d
		case KindTxStart:
			ce.Name = "tx-start"
			ce.Phase = "i"
			ce.Scope = "t"
			ce.TsUs = us(vtime.Duration(e.At))
		case KindBreakerOpen, KindBreakerClose:
			ce.Name = e.Kind.String() + ":" + c.LockName(e.Lock)
			ce.Phase = "i"
			ce.Scope = "p"
			ce.TsUs = us(vtime.Duration(e.At))
		case KindBrownout:
			ce.Name = fmt.Sprintf("brownout:%d→%d", e.Read, e.Write)
			ce.Phase = "i"
			ce.Scope = "p"
			ce.TsUs = us(vtime.Duration(e.At))
		case KindCacheMiss, KindCacheInval:
			ce.Name = e.Kind.String()
			ce.Phase = "i"
			ce.Scope = "p"
			ce.TsUs = us(vtime.Duration(e.At))
			ce.TID = 0
			ce.Args = map[string]any{"remote": e.Remote}
		default:
			continue
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
