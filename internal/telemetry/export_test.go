package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"natle/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// traceScenario replays a fixed event sequence into a collector:
// a conflict-abort/retry/commit on socket 0 and a capacity abort
// resolving to a fallback on socket 1, plus cache traffic.
func traceScenario() *Collector {
	c := NewCollector(Config{TraceCap: 64, TraceCache: true})
	l1 := c.RegisterLock("TLE-20")
	l2 := c.RegisterLock("NATLE(TLE-20)")

	ns := func(n int64) vtime.Time { return vtime.Time(n) * vtime.Time(vtime.Nanosecond) }
	c.TxStart(ns(100), 1, 0, l1)
	c.TxAbort(ns(150), 1, 0, l1, CodeConflict, true, 50*vtime.Nanosecond)
	c.TxStart(ns(250), 1, 0, l1)
	c.TxCommit(ns(330), 1, 0, l1, 80*vtime.Nanosecond, 12, 3)
	c.TxStart(ns(200), 2, 1, l2)
	c.TxAbort(ns(260), 2, 1, l2, CodeCapacity, false, 60*vtime.Nanosecond)
	c.Wait(ns(400), 2, 1, l2, 120*vtime.Nanosecond)
	c.Fallback(ns(700), 2, 1, l2, 250*vtime.Nanosecond)
	c.CacheMiss(ns(120), 0, true)
	c.CacheInval(ns(140), 1, false)
	return c
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := traceScenario().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden file (run with -update to regenerate)\ngot:\n%s", buf.String())
	}

	// The export must be loadable: well-formed JSON with the
	// trace_event envelope Chrome and Perfetto expect.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TsUs  float64 `json:"ts"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	// 2 process_name metadata + 8 tx/lock events + 2 cache instants.
	if got := len(doc.TraceEvents); got != 12 {
		t.Errorf("trace has %d events, want 12", got)
	}
	for _, e := range doc.TraceEvents {
		if e.Phase == "" || e.Name == "" {
			t.Errorf("event missing phase or name: %+v", e)
		}
		if e.TsUs < 0 {
			t.Errorf("event %q has negative timestamp %g", e.Name, e.TsUs)
		}
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	sum := traceScenario().Summary()
	var buf bytes.Buffer
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("summary JSON does not round-trip: %v", err)
	}
	if back.Starts != sum.Starts || back.Commits != sum.Commits ||
		back.Aborts != sum.Aborts || len(back.Locks) != len(sum.Locks) {
		t.Errorf("round-trip mismatch: got %+v, want %+v", back, sum)
	}
}
