package cohort

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
	"natle/internal/vtime"
)

func TestMutualExclusion(t *testing.T) {
	const threads, iters = 16, 60
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, 1)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		l := New(s, c, 8)
		inCS, maxIn, count := 0, 0, 0
		for i := 0; i < threads; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < iters; j++ {
					l.Critical(w, func() {
						inCS++
						if inCS > maxIn {
							maxIn = inCS
						}
						w.AdvanceIdle(50 * vtime.Nanosecond)
						w.Checkpoint()
						count++
						inCS--
					})
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
		if maxIn != 1 {
			t.Errorf("max threads in CS = %d", maxIn)
		}
		if count != threads*iters {
			t.Errorf("count = %d, want %d", count, threads*iters)
		}
	})
	e.Run()
}

func TestCohortHandoffLocality(t *testing.T) {
	// Under cross-socket contention, consecutive critical sections
	// should mostly stay on one socket (that is the point of the lock).
	const threads = 48
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, 3)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		l := New(s, c, DefaultMaxPass)
		var order []int
		started := false
		var deadline vtime.Time
		for i := 0; i < threads; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				w.WaitUntil(500*vtime.Nanosecond, func() bool { return started })
				for w.Now() < deadline {
					l.Critical(w, func() {
						order = append(order, w.Socket())
						w.AdvanceIdle(80 * vtime.Nanosecond)
					})
				}
			})
		}
		deadline = c.Now().Add(300 * vtime.Microsecond)
		started = true
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
		if len(order) < 100 {
			t.Fatalf("only %d acquisitions", len(order))
		}
		switches := 0
		bySocket := map[int]int{}
		for i, s := range order {
			bySocket[s]++
			if i > 0 && order[i-1] != s {
				switches++
			}
		}
		if ratio := float64(switches) / float64(len(order)); ratio > 0.2 {
			t.Errorf("socket switch ratio %.2f; cohorting should keep it low", ratio)
		}
		// Bounded unfairness: both sockets must be served.
		if bySocket[0] == 0 || bySocket[1] == 0 {
			t.Errorf("a socket starved: %v", bySocket)
		}
	})
	e.Run()
}

func TestSingleThreadOverheadIsBounded(t *testing.T) {
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 1, 5)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		l := New(s, c, 8)
		start := c.Now()
		for i := 0; i < 100; i++ {
			l.Critical(c, func() {})
		}
		per := c.Now().Sub(start) / 100
		if per > 2*vtime.Microsecond {
			t.Errorf("uncontended acquire+release = %v each; too expensive", per)
		}
	})
	e.Run()
}
