// Package cohort implements a NUMA-aware cohort lock [Dice, Marathe &
// Shavit, "Lock Cohorting", TOPC 2015], the related-work technique the
// paper identifies as closest in spirit to NATLE's throttling: threads
// on the socket that holds the lock pass it among themselves (keeping
// the protected data hot in that socket's caches) before releasing it
// to another socket, trading short-term fairness for throughput.
//
// The implementation is a simplified C-TAS-TAS cohort lock: a global
// test-and-test-and-set lock plus one local lock per socket. A
// releasing thread hands the global lock to a waiting same-socket
// thread (up to MaxPass consecutive handoffs, which bounds unfairness)
// by releasing only its local lock.
//
// It exists as an extra baseline: a NUMA-aware lock without elision,
// to compare against plain locking, TLE, and NATLE.
package cohort

import (
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/spinlock"
)

// DefaultMaxPass bounds consecutive same-socket handoffs (the cohort
// lock papers use values in the tens to hundreds).
const DefaultMaxPass = 64

// Lock is a two-level cohort lock. It implements lock.CS.
type Lock struct {
	sys     *htm.System
	global  *spinlock.Lock
	local   []*spinlock.Lock
	state   []mem.Addr // per socket: [owned flag, pass count, waiters]
	maxPass uint64
}

// Per-socket state words within the state line.
const (
	stOwned   = 0 // this socket's cohort holds the global lock
	stPasses  = 1 // consecutive local handoffs
	stWaiters = 2 // threads waiting on the local lock
)

// New allocates a cohort lock for the engine's machine.
func New(sys *htm.System, c *sim.Ctx, maxPass int) *Lock {
	if maxPass <= 0 {
		maxPass = DefaultMaxPass
	}
	sockets := sys.Eng.Prof.Sockets
	l := &Lock{
		sys:     sys,
		global:  spinlock.New(sys, c, 0),
		maxPass: uint64(maxPass),
	}
	for s := 0; s < sockets; s++ {
		l.local = append(l.local, spinlock.New(sys, c, s))
		l.state = append(l.state, sys.AllocHome(c, 3, s))
	}
	return l
}

// Name implements lock.CS.
func (l *Lock) Name() string { return "cohort" }

// Acquire takes the lock.
func (l *Lock) Acquire(c *sim.Ctx) {
	s := c.Socket()
	st := l.state[s]
	l.sys.Add(c, st+stWaiters, 1)
	l.local[s].Acquire(c)
	l.sys.Add(c, st+stWaiters, ^uint64(0)) // -1
	if l.sys.Read(c, st+stOwned) != 0 {
		return // inherited the global lock from a cohort member
	}
	l.global.Acquire(c)
	l.sys.Write(c, st+stOwned, 1)
	l.sys.Write(c, st+stPasses, 0)
}

// Release frees the lock, preferring a same-socket handoff.
func (l *Lock) Release(c *sim.Ctx) {
	s := c.Socket()
	st := l.state[s]
	passes := l.sys.Read(c, st+stPasses)
	if passes < l.maxPass && l.sys.Read(c, st+stWaiters) > 0 {
		// Hand the global lock to a waiting cohort member by releasing
		// only the local lock.
		l.sys.Write(c, st+stPasses, passes+1)
		l.local[s].Release(c)
		return
	}
	l.sys.Write(c, st+stOwned, 0)
	l.global.Release(c)
	l.local[s].Release(c)
}

// Critical implements lock.CS.
func (l *Lock) Critical(c *sim.Ctx, body func()) {
	l.Acquire(c)
	body()
	l.Release(c)
}
