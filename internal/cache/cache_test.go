package cache

import (
	"testing"
	"testing/quick"

	"natle/internal/machine"
	"natle/internal/vtime"
)

// at returns a virtual time far enough from its neighbours that line
// transfers never queue in these latency assertions.
func at(step int) vtime.Time { return vtime.Time(step) * vtime.Time(vtime.Microsecond) }

func newModel() (*Model, *machine.Profile) {
	p := machine.LargeX52()
	m := New(p)
	m.EnsureLines(256)
	return m, p
}

func TestColdReadIsDRAM(t *testing.T) {
	m, p := newModel()
	if lat := m.Access(at(1), 0, 0, 0, 1, false); lat != p.LocalDRAM {
		t.Errorf("cold local read latency %v, want %v", lat, p.LocalDRAM)
	}
	if lat := m.Access(at(2), 0, 0, 1, 2, false); lat != p.RemoteDRAM {
		t.Errorf("cold remote-home read latency %v, want %v", lat, p.RemoteDRAM)
	}
}

func TestRepeatReadHitsL1(t *testing.T) {
	m, p := newModel()
	m.Access(at(1), 0, 0, 0, 1, false)
	if lat := m.Access(at(2), 0, 0, 0, 1, false); lat != p.L1Hit {
		t.Errorf("repeat read latency %v, want L1 %v", lat, p.L1Hit)
	}
}

func TestSameSocketTransfer(t *testing.T) {
	m, p := newModel()
	m.Access(at(1), 0, 0, 0, 1, true) // core 0 modifies
	if lat := m.Access(at(2), 1, 0, 0, 1, false); lat != p.L3Hit {
		t.Errorf("same-socket dirty read %v, want %v", lat, p.L3Hit)
	}
}

func TestCrossSocketTransfer(t *testing.T) {
	m, p := newModel()
	m.Access(at(1), 0, 0, 0, 1, true) // socket-0 core modifies
	if lat := m.Access(at(2), 20, 1, 0, 1, false); lat != p.RemoteHit {
		t.Errorf("cross-socket dirty read %v, want %v", lat, p.RemoteHit)
	}
	// After the remote read the line is shared; a same-socket core of
	// the writer reads it cheaply again.
	if lat := m.Access(at(3), 0, 0, 0, 1, false); lat != p.L1Hit {
		t.Errorf("writer re-read %v, want L1 %v", lat, p.L1Hit)
	}
}

func TestWriteInvalidationCosts(t *testing.T) {
	m, p := newModel()
	m.Access(at(1), 0, 0, 0, 1, false)  // socket 0 reads
	m.Access(at(2), 20, 1, 0, 1, false) // socket 1 reads
	lat := m.Access(at(3), 1, 0, 0, 1, true)
	if lat < p.RemoteInval {
		t.Errorf("write with remote sharers cost %v, want >= %v", lat, p.RemoteInval)
	}
	if m.Stats.RemoteInvals != 1 {
		t.Errorf("RemoteInvals = %d, want 1", m.Stats.RemoteInvals)
	}
	// Invalidated reader now misses.
	if lat := m.Access(at(4), 20, 1, 0, 1, false); lat != p.RemoteHit {
		t.Errorf("invalidated reader re-read %v, want %v", lat, p.RemoteHit)
	}
}

func TestSingleModifiedOwnerInvariant(t *testing.T) {
	// Property: after any access sequence, a modified line has exactly
	// one sharer (its owner).
	p := machine.LargeX52()
	f := func(ops []uint16) bool {
		m := New(p)
		m.EnsureLines(16)
		for _, op := range ops {
			core := int(op) % p.Cores()
			line := int32(op>>6) % 16
			write := op&1 == 1
			m.Access(0, core, p.SocketOfCore(core), 0, line, write)
			_ = write
			sharers, modified, owner := m.Peek(line)
			if modified {
				if sharers != 1<<uint(owner) {
					return false
				}
			}
			if write && !modified {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPrivateCacheCapacityEviction(t *testing.T) {
	// Two lines mapping to the same direct-mapped set evict each
	// other: the second read of the first line is not an L1 hit.
	m, p := newModel()
	m.EnsureLines(2*p.PrivateCacheSets + 8)
	a := int32(1)
	b := a + int32(p.PrivateCacheSets)
	m.Access(at(1), 0, 0, 0, a, false)
	m.Access(at(2), 0, 0, 0, b, false) // evicts a from core 0's tags
	if lat := m.Access(at(3), 0, 0, 0, a, false); lat == p.L1Hit {
		t.Error("conflicting tag should have evicted the line from the private cache")
	} else if lat != p.L3Hit {
		t.Errorf("evicted line re-read %v, want L3 %v", lat, p.L3Hit)
	}
}

func TestWriterSocket(t *testing.T) {
	m, p := newModel()
	if s := m.WriterSocket(3); s != -1 {
		t.Errorf("WriterSocket on clean line = %d", s)
	}
	m.Access(at(1), 20, 1, 0, 3, true)
	if s := m.WriterSocket(3); s != 1 {
		t.Errorf("WriterSocket = %d, want 1", s)
	}
	_ = p
}

func TestTooManyCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for >56 cores")
		}
	}()
	p := machine.LargeX52()
	p.CoresPerSocket = 40
	New(p)
}

func TestLineTransferQueueSerializesHotLine(t *testing.T) {
	p := machine.LargeX52()
	p.LineTransferQueue = true
	m := New(p)
	m.EnsureLines(8)
	// Two back-to-back transfers of the same line at the same instant:
	// the second must wait out the first.
	first := m.Access(at(1), 0, 0, 0, 1, true)
	second := m.Access(at(1), 20, 1, 0, 1, true)
	if second <= p.RemoteHit {
		t.Errorf("second transfer %v did not queue behind the first (%v)", second, first)
	}
	// With the flag off, the same pattern does not queue.
	p2 := machine.LargeX52()
	m2 := New(p2)
	m2.EnsureLines(8)
	m2.Access(at(1), 0, 0, 0, 1, true)
	if lat := m2.Access(at(1), 20, 1, 0, 1, true); lat > p2.RemoteHit+p2.RemoteInval {
		t.Errorf("unqueued transfer cost %v; expected plain latency", lat)
	}
}
