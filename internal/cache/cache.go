// Package cache models the cache hierarchy and coherence protocol of
// the simulated machine: a MESI-style directory with one entry per
// cache line, plus a small direct-mapped tag model of each core's
// private caches.
//
// The model captures exactly the effects the paper identifies as
// decisive for HTM on NUMA machines:
//
//   - a line modified on one socket and then read from the other incurs
//     a cross-socket cache-to-cache transfer (RemoteHit), roughly 5x a
//     same-socket L3 hit;
//   - a writer pays to invalidate remote copies (RemoteInval), and the
//     invalidated socket pays again on its next access — this round
//     trip is what "lengthens the window of contention" (paper §3.2);
//   - same-socket communication stays cheap because cores share an L3.
//
// Per line the directory packs, into one uint64: a sharer bitmask over
// cores (bits 0..55), the MESI-summary state (bits 56..57), and the
// owning core when modified (bits 58..63). Private-cache capacity is
// modeled by a per-core direct-mapped tag array: a sharer bit says "may
// be cached somewhere on that core's socket", while a matching tag says
// "still resident in the core's private cache" — the combination
// distinguishes L1 hits, same-socket L3 hits, and remote transfers
// without tracking every eviction.
package cache

import (
	"natle/internal/fault"
	"natle/internal/machine"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// Line states (2-bit summary of MESI).
const (
	stateInvalid  = 0 // no cached copies
	stateShared   = 1 // >=1 read-only copies
	stateModified = 2 // exactly one dirty copy, held by owner core
)

const (
	sharerBits = 56
	sharerMask = (uint64(1) << sharerBits) - 1
	stateShift = 56
	ownerShift = 58
)

// Stats aggregates access-level counters for the whole model.
type Stats struct {
	L1Hits       uint64
	L3Hits       uint64 // same-socket hits outside the private cache
	RemoteHits   uint64 // cross-socket cache-to-cache transfers
	DRAMAccesses uint64
	RemoteInvals uint64 // writes that invalidated a remote-socket copy
	LocalInvals  uint64 // writes that invalidated same-socket copies only
}

// Sub returns the counter deltas s - t (for windowed measurement).
func (s Stats) Sub(t Stats) Stats { return telemetry.Sub(s, t) }

// Model is the cache/coherence simulator for one machine instance.
type Model struct {
	prof *machine.Profile

	lines []uint64 // packed directory entries, indexed by line
	busy  []int64  // per line: virtual time (ps) its last transfer completes
	tags  []int32  // per-core direct-mapped private-cache tags, -1 empty
	sets  int32    // entries per core in tags

	socketMask []uint64 // sharer-bitmask of all cores on socket s

	Stats Stats

	// Rec receives per-access cache telemetry (misses that leave the
	// private cache, invalidations). Never nil; defaults to the no-op
	// recorder, which keeps the hot path free.
	Rec telemetry.Recorder

	// Inj, when non-nil, may stretch invalidation latencies (delayed
	// remote invalidations widen the cross-socket conflict window).
	// Normally installed through htm.System.SetInjector.
	Inj fault.Injector
}

// New creates a cache model for profile p; lines must cover the
// simulated memory (use EnsureLines as memory grows).
func New(p *machine.Profile) *Model {
	if p.Cores() > sharerBits {
		panic("cache: profile has more cores than the directory can track")
	}
	m := &Model{
		prof: p,
		sets: int32(p.PrivateCacheSets),
		Rec:  telemetry.Nop(),
	}
	m.tags = make([]int32, p.Cores()*p.PrivateCacheSets)
	for i := range m.tags {
		m.tags[i] = -1
	}
	m.socketMask = make([]uint64, p.Sockets)
	for s := 0; s < p.Sockets; s++ {
		m.socketMask[s] = p.SocketMask(s) & sharerMask
	}
	return m
}

// EnsureLines grows the directory to cover at least n lines.
func (m *Model) EnsureLines(n int) {
	for len(m.lines) < n {
		m.lines = append(m.lines, 0)
		m.busy = append(m.busy, 0)
	}
}

func unpack(e uint64) (sharers uint64, state int, owner int) {
	return e & sharerMask, int(e>>stateShift) & 3, int(e >> ownerShift)
}

func pack(sharers uint64, state, owner int) uint64 {
	return sharers | uint64(state)<<stateShift | uint64(owner)<<ownerShift
}

func (m *Model) tagSlot(core int, line int32) *int32 {
	return &m.tags[int32(core)*m.sets+line%m.sets]
}

// privateHit reports whether core still holds line in its private
// cache (sharer bit plus resident tag).
func (m *Model) privateHit(core int, line int32, sharers uint64) bool {
	return sharers&(1<<uint(core)) != 0 && *m.tagSlot(core, line) == line
}

// Access simulates one word access to the given line by a thread on
// (core, socket) at virtual time now; home is the line's home socket
// for DRAM placement. It updates the directory and returns the access
// latency, including queueing behind an in-progress transfer of the
// same line (a hot line ping-ponging between caches serializes at the
// transfer latency — the physical effect that makes single-line
// contention expensive on real machines). It does not know about
// transactions: package htm layers conflict detection on top.
func (m *Model) Access(now vtime.Time, core, socket, home int, line int32, write bool) vtime.Duration {
	p := m.prof
	e := m.lines[line]
	sharers, state, owner := unpack(e)
	self := uint64(1) << uint(core)

	var lat vtime.Duration
	switch {
	case m.privateHit(core, line, sharers):
		lat = p.L1Hit
		m.Stats.L1Hits++
	case state == stateModified:
		if p.SocketOfCore(owner) == socket {
			lat = p.L3Hit
			m.Stats.L3Hits++
		} else {
			lat = p.RemoteHit
			m.Stats.RemoteHits++
			m.Rec.CacheMiss(now, socket, true)
		}
	case sharers&m.socketMask[socket] != 0:
		lat = p.L3Hit
		m.Stats.L3Hits++
	case sharers != 0:
		lat = p.RemoteHit
		m.Stats.RemoteHits++
		m.Rec.CacheMiss(now, socket, true)
	default:
		m.Stats.DRAMAccesses++
		if home == socket {
			lat = p.LocalDRAM
		} else {
			lat = p.RemoteDRAM
		}
		m.Rec.CacheMiss(now, socket, home != socket)
	}

	// Optionally queue behind an in-progress transfer of this line.
	// Only transfers (anything beyond a private-cache hit) occupy it.
	if p.LineTransferQueue && lat > p.L1Hit {
		if wait := vtime.Time(m.busy[line]).Sub(now); wait > 0 {
			lat += wait
		}
		m.busy[line] = int64(now.Add(lat))
	}

	if write {
		others := sharers &^ self
		if others != 0 {
			remote := others&^m.socketMask[socket] != 0
			if remote {
				lat += p.RemoteInval
				m.Stats.RemoteInvals++
				m.Rec.CacheInval(now, socket, true)
			} else {
				lat += p.SameSocketInval
				m.Stats.LocalInvals++
				m.Rec.CacheInval(now, socket, false)
			}
			if m.Inj != nil {
				lat += m.Inj.InvalDelay(now, remote)
			}
		}
		sharers, state, owner = self, stateModified, core
	} else {
		if state == stateModified && owner != core {
			state = stateShared // writer downgrades on a remote read
		} else if state == stateInvalid {
			state = stateShared
		}
		sharers |= self
	}
	m.lines[line] = pack(sharers, state, owner)
	*m.tagSlot(core, line) = line
	return lat
}

// Peek returns the directory view of a line (for tests and counters).
func (m *Model) Peek(line int32) (sharers uint64, modified bool, owner int) {
	s, st, o := unpack(m.lines[line])
	return s, st == stateModified, o
}

// WriterSocket returns the socket holding a modified copy of the line,
// or -1 if the line is not in modified state. Used for statistics on
// cross-socket invalidation traffic.
func (m *Model) WriterSocket(line int32) int {
	_, st, o := unpack(m.lines[line])
	if st != stateModified {
		return -1
	}
	return m.prof.SocketOfCore(o)
}
