// Package spinlock provides the test-and-test-and-set lock, living in
// simulated memory, that TLE and NATLE fall back to when transactions
// fail. Reading the lock word from inside a transaction subscribes the
// transaction to the lock (the TLE correctness condition): a subsequent
// acquisition by any thread invalidates the line and aborts the
// transaction.
package spinlock

import (
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// Lock is a test-and-test-and-set spin lock with bounded exponential
// backoff. The zero value is not usable; allocate with New so the lock
// word occupies its own cache line.
type Lock struct {
	sys  *htm.System
	addr mem.Addr
}

// New allocates a lock homed on the given socket.
func New(sys *htm.System, c *sim.Ctx, socket int) *Lock {
	return &Lock{sys: sys, addr: sys.AllocHome(c, 1, socket)}
}

// Addr returns the lock word's simulated address (tests only).
func (l *Lock) Addr() mem.Addr { return l.addr }

// Held reports whether the lock is currently held. Called inside a
// transaction this also adds the lock word to the read set, which is
// exactly what TLE requires.
func (l *Lock) Held(c *sim.Ctx) bool { return l.sys.Read(c, l.addr) != 0 }

// Acquire spins until the lock is taken.
func (l *Lock) Acquire(c *sim.Ctx) {
	backoff := 40 * vtime.Nanosecond
	for {
		if l.sys.Read(c, l.addr) == 0 && l.sys.CAS(c, l.addr, 0, 1) {
			l.stall(c)
			return
		}
		c.AdvanceIdle(backoff)
		if backoff < 2*vtime.Microsecond {
			backoff *= 2
		}
		c.Yield()
	}
}

// stall inserts an injected "preemption" immediately after acquiring
// the lock: the holder sits descheduled while every transaction
// subscribed to the lock word has already aborted — the classic TLE
// convoy trigger. No-op without a fault injector.
func (l *Lock) stall(c *sim.Ctx) {
	inj := l.sys.Injector()
	if inj == nil {
		return
	}
	if d := inj.CSStall(c); d > 0 {
		c.AdvanceIdle(d)
		c.Yield()
	}
}

// TryAcquire attempts to take the lock once, without spinning.
func (l *Lock) TryAcquire(c *sim.Ctx) bool {
	return l.sys.Read(c, l.addr) == 0 && l.sys.CAS(c, l.addr, 0, 1)
}

// Release frees the lock.
func (l *Lock) Release(c *sim.Ctx) { l.sys.Write(c, l.addr, 0) }

// WaitFree spins (with backoff) until the lock is observed free,
// without attempting to take it. TLE threads use this to avoid the
// lemming effect: an aborted elision attempt is not retried until the
// lock is released.
func (l *Lock) WaitFree(c *sim.Ctx) {
	backoff := 40 * vtime.Nanosecond
	for l.sys.Read(c, l.addr) != 0 {
		c.AdvanceIdle(backoff)
		if backoff < 2*vtime.Microsecond {
			backoff *= 2
		}
		c.Yield()
	}
}
