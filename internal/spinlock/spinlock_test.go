package spinlock

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
	"natle/internal/vtime"
)

func TestMutualExclusion(t *testing.T) {
	const threads, iters = 8, 100
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, 1)
	s := htm.NewSystem(e, 1<<12)
	var l *Lock
	inCS := 0
	maxInCS := 0
	counter := 0
	e.Spawn(nil, func(c *sim.Ctx) {
		l = New(s, c, 0)
		for i := 0; i < threads; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < iters; j++ {
					l.Acquire(w)
					inCS++
					if inCS > maxInCS {
						maxInCS = inCS
					}
					// Cross a yield point while inside the CS.
					w.AdvanceIdle(100 * vtime.Nanosecond)
					w.Checkpoint()
					counter++
					inCS--
					l.Release(w)
				}
			})
		}
		c.WaitOthers(vtime.Microsecond)
	})
	e.Run()
	if maxInCS != 1 {
		t.Errorf("max threads in critical section = %d, want 1", maxInCS)
	}
	if counter != threads*iters {
		t.Errorf("counter = %d, want %d", counter, threads*iters)
	}
}

func TestLockSubscriptionAbortsElidingTx(t *testing.T) {
	// A transaction that read the lock word as free must abort when
	// another thread subsequently acquires the lock — the TLE
	// correctness condition.
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 2, 3)
	s := htm.NewSystem(e, 1<<12)
	var l *Lock
	var outcome htm.Outcome
	setup := make(chan struct{})
	_ = setup
	e.Spawn(nil, func(c *sim.Ctx) {
		l = New(s, c, 0)
		data := s.Alloc(c, 1)
		e.Spawn(c, func(w *sim.Ctx) { // eliding transaction
			outcome = s.Try(w, func() {
				if l.Held(w) {
					s.Abort(w, htm.CodeLockHeld)
				}
				for i := 0; i < 2000; i++ { // stay in flight ~200us
					w.AdvanceIdle(100 * vtime.Nanosecond)
					w.Checkpoint()
				}
				_ = s.Read(w, data)
			})
		})
		e.Spawn(c, func(w *sim.Ctx) { // lock acquirer
			w.AdvanceIdle(10 * vtime.Microsecond)
			w.Checkpoint()
			l.Acquire(w)
			w.AdvanceIdle(vtime.Microsecond)
			l.Release(w)
		})
		c.WaitOthers(vtime.Microsecond)
	})
	e.Run()
	if outcome.Committed {
		t.Fatal("eliding transaction survived a lock acquisition")
	}
	if outcome.Code != htm.CodeConflict {
		t.Fatalf("abort code = %v, want conflict (lock-word invalidation)", outcome.Code)
	}
}

func TestTryAcquire(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 5)
	s := htm.NewSystem(e, 1<<10)
	e.Spawn(nil, func(c *sim.Ctx) {
		l := New(s, c, 0)
		if !l.TryAcquire(c) {
			t.Error("TryAcquire failed on a free lock")
		}
		if l.TryAcquire(c) {
			t.Error("TryAcquire succeeded on a held lock")
		}
		l.Release(c)
		if !l.TryAcquire(c) {
			t.Error("TryAcquire failed after release")
		}
	})
	e.Run()
}
