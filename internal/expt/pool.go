package expt

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Map runs f over the index range [0, n) on a bounded worker pool and
// returns the results in index order — never completion order — so
// callers that print or compare results stay deterministic at any
// worker count. workers <= 0 selects GOMAXPROCS; a single worker (or
// n <= 1) degenerates to a plain sequential loop on the caller's
// goroutine.
//
// If an f call panics, workers stop claiming new indices, the pool
// drains, and Map re-panics on the caller's goroutine with the first
// captured panic (by claim order), mirroring what a sequential loop
// would have done. Callers that need per-item isolation instead of
// fail-fast semantics recover inside f (Plan.Execute does exactly
// that).
func Map[T any](workers, n int, f func(i int) T) []T {
	out := make([]T, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}

	var failed atomic.Bool
	var panicMu sync.Mutex
	panicIdx := n
	var panicVal any
	forEachPooled(w, n, &failed, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				failed.Store(true)
				panicMu.Lock()
				if i < panicIdx {
					panicIdx, panicVal = i, r
				}
				panicMu.Unlock()
			}
		}()
		out[i] = f(i)
	})
	if failed.Load() {
		panic(fmt.Sprintf("expt.Map: item %d panicked: %v", panicIdx, panicVal))
	}
	return out
}

// forEach runs f over [0, n) on a bounded pool and waits for all calls
// to finish. f must contain its own panics (Plan.Execute recovers per
// trial); an escaped panic here would crash the process, exactly as it
// would in a sequential loop.
func forEach(workers, n int, f func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	forEachPooled(w, n, nil, f)
}

// forEachPooled is the shared claim loop: w goroutines atomically
// claim ascending indices until the range is exhausted (or stop, when
// non-nil, becomes true).
func forEachPooled(w, n int, stop *atomic.Bool, f func(i int)) {
	var next int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for stop == nil || !stop.Load() {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
