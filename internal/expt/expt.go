// Package expt is the declarative experiment layer: a figure or table
// is a Plan — an ordered grid of named TrialSpecs — and a bounded
// worker pool executes the trials on host cores.
//
// Every trial in this repository is a self-contained deterministic
// island (it builds its own sim.Engine, htm.System, sets, locks, and
// telemetry recorder from a config and a seed), so trials may run in
// any order on any number of host goroutines without changing a single
// measured value. The executor preserves that determinism end to end:
//
//   - results are keyed by spec and assembled strictly in plan order,
//     never in completion order;
//   - reducers (speedup baselines, ratio denominators) read other
//     trials' outcomes only after the pool barrier, when every outcome
//     is final;
//   - a panicking trial fails that one trial — its points are dropped
//     and a deterministic note records the panic value — instead of
//     tearing down the whole sweep;
//   - per-trial notes (telemetry roll-ups, attribution tables) are
//     merged after the barrier, again in plan order.
//
// Consequently a Plan's output is byte-identical at any worker count,
// which the harness tests assert figure by figure.
package expt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Point is one rendered figure point: a named series and an (x, y)
// coordinate pair.
type Point struct {
	Series string
	X, Y   float64
}

// Outcome is what one trial produced. Simple scalar trials set Value
// (throughput, runtime, a percentage) and let a reducer shape it;
// multi-series trials emit Points directly; Notes carry per-trial
// annotations that the assembly merges in plan order.
type Outcome struct {
	Value  float64
	Points []Point
	Notes  []string
}

// Value wraps a scalar measurement as an Outcome.
func Value(v float64) Outcome { return Outcome{Value: v} }

// Lookup gives reducers read-only access to other trials' outcomes by
// spec key. The second result is false for unknown keys and for trials
// that failed (panicked), so a reducer never consumes a zero outcome
// as if it were measured.
type Lookup func(key string) (Outcome, bool)

// Reducer maps one trial's outcome to its final figure points once
// every trial in the plan has finished. Reducers run sequentially in
// plan order after the pool barrier; get resolves cross-trial
// references such as speedup baselines. A nil Reducer emits
// o.Points verbatim.
type Reducer func(o Outcome, get Lookup) []Point

// TrialSpec is one named, self-contained unit of simulated work.
type TrialSpec struct {
	// Key identifies the trial within its plan (unique; Execute panics
	// on duplicates). Reducers reference other trials by key.
	Key string
	// Run performs the trial. It executes on a pool worker and must be
	// self-contained: build the engine, run it, return the measurement.
	// It must not touch state shared with other trials.
	Run func() Outcome
	// Reduce shapes the outcome into figure points (nil emits
	// o.Points as-is).
	Reduce Reducer
}

// Plan is a declarative figure: rendering metadata plus the ordered
// trial grid.
type Plan struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Notes  []string
	Specs  []TrialSpec
}

// Add appends a spec and returns its key (convenience for builders).
func (p *Plan) Add(s TrialSpec) string {
	p.Specs = append(p.Specs, s)
	return s.Key
}

// TrialError records one trial's panic. The stack is for humans
// debugging the failure; assembly uses only the deterministic panic
// value.
type TrialError struct {
	Key   string
	Index int
	Value any    // the recovered panic value
	Stack string // worker stack at the point of the panic
}

func (e TrialError) Error() string {
	return fmt.Sprintf("trial %s: panic: %v", e.Key, e.Value)
}

// Result is an executed plan: outcomes by spec index, points and notes
// assembled in plan order, and the trials that failed.
type Result struct {
	Plan     *Plan
	Outcomes []Outcome // by spec index (zero value for failed trials)
	Points   []Point   // assembled in plan order
	Notes    []string  // plan notes, then per-trial notes in plan order
	Failed   []TrialError
}

// Options configure one Execute call.
type Options struct {
	// Workers bounds the pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called once per finished trial with
	// the completion count, the total, and the finished trial's key.
	// Calls are serialized but arrive in completion order, so progress
	// must go to logs/stderr — never into figure output.
	Progress func(done, total int, key string)
}

// Workers resolves a requested worker count: values <= 0 select
// GOMAXPROCS (the host's usable cores).
func Workers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Execute runs every spec on a bounded worker pool and assembles the
// result in plan order. It panics on duplicate spec keys (a plan
// construction bug); trial panics are captured per trial.
func (p *Plan) Execute(opt Options) *Result {
	n := len(p.Specs)
	index := make(map[string]int, n)
	for i, s := range p.Specs {
		if _, dup := index[s.Key]; dup {
			panic(fmt.Sprintf("expt: plan %s: duplicate spec key %q", p.ID, s.Key))
		}
		index[s.Key] = i
	}

	res := &Result{Plan: p, Outcomes: make([]Outcome, n)}
	errs := make([]*TrialError, n)

	var done int32
	var progressMu sync.Mutex
	report := func(i int) {
		if opt.Progress == nil {
			return
		}
		d := int(atomic.AddInt32(&done, 1))
		progressMu.Lock()
		opt.Progress(d, n, p.Specs[i].Key)
		progressMu.Unlock()
	}

	forEach(Workers(opt.Workers), n, func(i int) {
		defer report(i)
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &TrialError{
					Key:   p.Specs[i].Key,
					Index: i,
					Value: r,
					Stack: string(stack()),
				}
			}
		}()
		res.Outcomes[i] = p.Specs[i].Run()
	})

	// Assembly: strictly plan order, after the barrier.
	get := func(key string) (Outcome, bool) {
		i, ok := index[key]
		if !ok || errs[i] != nil {
			return Outcome{}, false
		}
		return res.Outcomes[i], true
	}
	res.Notes = append(res.Notes, p.Notes...)
	for i, s := range p.Specs {
		if errs[i] != nil {
			res.Failed = append(res.Failed, *errs[i])
			// The note uses only the panic value, which is as
			// deterministic as the trial itself, so output stays
			// byte-identical at any worker count.
			res.Notes = append(res.Notes, fmt.Sprintf("trial %s FAILED: %v", s.Key, errs[i].Value))
			continue
		}
		o := res.Outcomes[i]
		if s.Reduce != nil {
			res.Points = append(res.Points, s.Reduce(o, get)...)
		} else {
			res.Points = append(res.Points, o.Points...)
		}
		res.Notes = append(res.Notes, o.Notes...)
	}
	return res
}

// stack returns the current goroutine's stack (split out so the
// capture site stays small).
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
