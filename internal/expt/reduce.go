package expt

// Emit reduces a scalar outcome to the single point
// (series, x, o.Value).
func Emit(series string, x float64) Reducer {
	return func(o Outcome, _ Lookup) []Point {
		return []Point{{Series: series, X: x, Y: o.Value}}
	}
}

// Ratio reduces a scalar outcome to (series, x, o.Value / base.Value)
// where base is the trial named by baseKey — the explicit-baseline
// shape every speedup figure uses. No point is emitted when the
// baseline is missing, failed, or zero (a sweep must degrade to a gap,
// not to a division by zero).
func Ratio(series string, x float64, baseKey string) Reducer {
	return func(o Outcome, get Lookup) []Point {
		base, ok := get(baseKey)
		if !ok || base.Value == 0 {
			return nil
		}
		return []Point{{Series: series, X: x, Y: o.Value / base.Value}}
	}
}

// Discard emits nothing: the spec exists only to be referenced by
// other reducers (hidden baselines, ratio denominators).
func Discard(Outcome, Lookup) []Point { return nil }
