package expt

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestMapOrder(t *testing.T) {
	for _, w := range []int{0, 1, 3, 4, 200} {
		got := Map(w, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", w, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestMapOrderUnderReordering forces completion order to differ from
// index order (item 0 blocks until item 1 finishes) and checks the
// result slice still comes back in index order.
func TestMapOrderUnderReordering(t *testing.T) {
	release := make(chan struct{})
	got := Map(2, 2, func(i int) string {
		if i == 0 {
			<-release
		} else {
			close(release)
		}
		return fmt.Sprintf("item-%d", i)
	})
	if !reflect.DeepEqual(got, []string{"item-0", "item-1"}) {
		t.Fatalf("got %v", got)
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(4, 0, func(i int) int { t.Fatal("called"); return 0 })
	if len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestMapPanicParallel(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		s := fmt.Sprint(r)
		if !strings.Contains(s, "panicked: boom 7") {
			t.Fatalf("panic = %q", s)
		}
	}()
	Map(4, 64, func(i int) int {
		if i == 7 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return i
	})
}

func TestMapPanicSequentialIsRaw(t *testing.T) {
	defer func() {
		if r := recover(); r != "raw" {
			t.Fatalf("panic = %v, want raw", r)
		}
	}()
	Map(1, 3, func(i int) int {
		if i == 1 {
			panic("raw")
		}
		return i
	})
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("Workers(5)")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive requests to >= 1")
	}
}

// plan builds a small plan with two series and explicit baselines.
func testPlan() *Plan {
	p := &Plan{ID: "t", Title: "T", Notes: []string{"plan note"}}
	for _, series := range []string{"a", "b"} {
		scale := 1.0
		if series == "b" {
			scale = 2.0
		}
		base := p.Add(TrialSpec{
			Key:    series + "/baseline",
			Run:    func() Outcome { return Value(scale) },
			Reduce: Discard,
		})
		for _, x := range []float64{1, 2, 4} {
			p.Add(TrialSpec{
				Key: fmt.Sprintf("%s/%g", series, x),
				Run: func() Outcome {
					o := Value(scale * x)
					o.Notes = []string{fmt.Sprintf("note %s/%g", series, x)}
					return o
				},
				Reduce: Ratio(series, x, base),
			})
		}
	}
	return p
}

func TestExecuteDeterministicAtAnyWorkerCount(t *testing.T) {
	ref := testPlan().Execute(Options{Workers: 1})
	for _, w := range []int{2, 3, 8} {
		got := testPlan().Execute(Options{Workers: w})
		if !reflect.DeepEqual(got.Points, ref.Points) {
			t.Fatalf("workers=%d points differ:\n%v\n%v", w, got.Points, ref.Points)
		}
		if !reflect.DeepEqual(got.Notes, ref.Notes) {
			t.Fatalf("workers=%d notes differ:\n%v\n%v", w, got.Notes, ref.Notes)
		}
	}
	// The ratio points are x for both series (scale cancels).
	want := []Point{
		{Series: "a", X: 1, Y: 1}, {Series: "a", X: 2, Y: 2}, {Series: "a", X: 4, Y: 4},
		{Series: "b", X: 1, Y: 1}, {Series: "b", X: 2, Y: 2}, {Series: "b", X: 4, Y: 4},
	}
	if !reflect.DeepEqual(ref.Points, want) {
		t.Fatalf("points = %v, want %v", ref.Points, want)
	}
	if ref.Notes[0] != "plan note" || len(ref.Notes) != 7 {
		t.Fatalf("notes = %v", ref.Notes)
	}
}

func TestExecutePanicIsolatesOneTrial(t *testing.T) {
	p := &Plan{ID: "t"}
	p.Add(TrialSpec{Key: "ok1", Run: func() Outcome { return Value(1) }, Reduce: Emit("s", 1)})
	p.Add(TrialSpec{Key: "bad", Run: func() Outcome { panic("boom") }, Reduce: Emit("s", 2)})
	p.Add(TrialSpec{Key: "ok2", Run: func() Outcome { return Value(3) }, Reduce: Emit("s", 3)})
	for _, w := range []int{1, 4} {
		res := p.Execute(Options{Workers: w})
		want := []Point{{Series: "s", X: 1, Y: 1}, {Series: "s", X: 3, Y: 3}}
		if !reflect.DeepEqual(res.Points, want) {
			t.Fatalf("workers=%d points = %v", w, res.Points)
		}
		if len(res.Failed) != 1 || res.Failed[0].Key != "bad" || res.Failed[0].Index != 1 {
			t.Fatalf("workers=%d failed = %+v", w, res.Failed)
		}
		if res.Failed[0].Stack == "" {
			t.Fatal("missing stack")
		}
		if len(res.Notes) != 1 || res.Notes[0] != "trial bad FAILED: boom" {
			t.Fatalf("notes = %v", res.Notes)
		}
	}
}

func TestExecuteDuplicateKeyPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "duplicate spec key") {
			t.Fatalf("panic = %v", r)
		}
	}()
	p := &Plan{ID: "t"}
	p.Add(TrialSpec{Key: "k", Run: func() Outcome { return Outcome{} }})
	p.Add(TrialSpec{Key: "k", Run: func() Outcome { return Outcome{} }})
	p.Execute(Options{Workers: 1})
}

func TestRatioDegradesToGap(t *testing.T) {
	// Missing baseline key: no point.
	p := &Plan{ID: "t"}
	p.Add(TrialSpec{Key: "n", Run: func() Outcome { return Value(5) }, Reduce: Ratio("s", 1, "nope")})
	if res := p.Execute(Options{Workers: 1}); len(res.Points) != 0 {
		t.Fatalf("missing baseline: points = %v", res.Points)
	}
	// Zero baseline: no point.
	p = &Plan{ID: "t"}
	b := p.Add(TrialSpec{Key: "b", Run: func() Outcome { return Value(0) }, Reduce: Discard})
	p.Add(TrialSpec{Key: "n", Run: func() Outcome { return Value(5) }, Reduce: Ratio("s", 1, b)})
	if res := p.Execute(Options{Workers: 1}); len(res.Points) != 0 {
		t.Fatalf("zero baseline: points = %v", res.Points)
	}
	// Failed baseline: the dependent trial emits nothing, but survives.
	p = &Plan{ID: "t"}
	b = p.Add(TrialSpec{Key: "b", Run: func() Outcome { panic("x") }, Reduce: Discard})
	p.Add(TrialSpec{Key: "n", Run: func() Outcome { return Value(5) }, Reduce: Ratio("s", 1, b)})
	res := p.Execute(Options{Workers: 1})
	if len(res.Points) != 0 || len(res.Failed) != 1 {
		t.Fatalf("failed baseline: points = %v, failed = %v", res.Points, res.Failed)
	}
}

func TestProgressReportsEveryTrial(t *testing.T) {
	p := testPlan()
	var mu sync.Mutex
	seen := map[int]string{}
	res := p.Execute(Options{
		Workers: 4,
		Progress: func(done, total int, key string) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(p.Specs) {
				t.Errorf("total = %d", total)
			}
			if _, dup := seen[done]; dup {
				t.Errorf("duplicate done count %d", done)
			}
			seen[done] = key
		},
	})
	if len(seen) != len(p.Specs) {
		t.Fatalf("progress calls = %d, want %d", len(seen), len(p.Specs))
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed = %v", res.Failed)
	}
}
