package expt

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoSharedPackageState guards the executor's core assumption: a
// trial is a pure function of its config and seed, so trials may run
// concurrently on host goroutines. Any package-level variable in a
// trial-path package is state every pooled trial would share; this test
// fails when one appears that is not on the audited allowlist below.
//
// Allowlisted globals and why each is pool-safe:
//
//	scheme.registry       written only from init (via MustRegister);
//	                      read-only once trials exist
//	fault.schedules       a fixed table, never mutated
//	telemetry.nopShared   a stateless NopRecorder sentinel
//	service.arrivalTable  a fixed table, never mutated
var sharedStateAllowlist = map[string]string{
	"scheme/registry":      "init-only registration, read-only afterwards",
	"fault/schedules":      "immutable schedule table",
	"telemetry/nopShared":  "stateless no-op recorder sentinel",
	"service/arrivalTable": "immutable arrival-process table",
}

// trialPathPackages are the internal packages whose code can run inside
// a pooled trial. internal/analysis is excluded: it is host-side
// tooling (go/analysis passes) that never executes during a trial.
var trialPathPackages = []string{
	"cache", "cctsa", "cohort", "delegation", "expt", "fault", "harness",
	"htm", "lock", "machine", "mem", "natle", "paraheap", "scheme",
	"service", "sets", "sim", "simmap", "spinlock", "stamp", "telemetry",
	"tle", "vtime", "workload",
}

func TestNoSharedPackageState(t *testing.T) {
	root := filepath.Join("..", "..")
	used := map[string]bool{}
	for _, pkg := range trialPathPackages {
		dir := filepath.Join(root, "internal", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, id := range vs.Names {
						if id.Name == "_" {
							continue
						}
						key := pkg + "/" + id.Name
						if _, ok := sharedStateAllowlist[key]; ok {
							used[key] = true
							continue
						}
						pos := fset.Position(id.Pos())
						t.Errorf("package-level var %s (%s) is shared across pooled trials; "+
							"move it into the trial's config/engine, or audit it and extend "+
							"sharedStateAllowlist with a justification", key, pos)
					}
				}
			}
		}
	}
	// A stale allowlist hides regressions: if an entry disappears from
	// the tree, it must be removed here too.
	for key := range sharedStateAllowlist {
		if !used[key] {
			t.Errorf("allowlist entry %q matched nothing; delete it", key)
		}
	}
}
