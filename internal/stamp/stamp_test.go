package stamp

import (
	"testing"

	"natle/internal/natle"
	"natle/internal/vtime"
)

func TestAllBenchmarksValidateSingleThread(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			r := Run(b, Config{Threads: 1, Seed: 1, Lock: "tle"})
			if r.Runtime <= 0 {
				t.Errorf("%s: non-positive runtime %v", name, r.Runtime)
			}
			if r.HTM.Commits == 0 {
				t.Errorf("%s: no transactions committed", name)
			}
		})
	}
}

func TestAllBenchmarksValidateMultiThread(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			// Validation runs inside Run and panics on failure.
			r := Run(b, Config{Threads: 24, Seed: 2, Lock: "tle"})
			if r.Runtime <= 0 {
				t.Errorf("%s: non-positive runtime %v", name, r.Runtime)
			}
		})
	}
}

func TestMultiThreadSpeedsUpScalableBenchmarks(t *testing.T) {
	for _, name := range []string{"ssca2", "genome", "vacation-low"} {
		b1, _ := New(name)
		r1 := Run(b1, Config{Threads: 1, Seed: 3, Lock: "tle"})
		b2, _ := New(name)
		r2 := Run(b2, Config{Threads: 18, Seed: 3, Lock: "tle"})
		if r2.Runtime >= r1.Runtime {
			t.Errorf("%s: 18 threads (%v) not faster than 1 (%v)", name, r2.Runtime, r1.Runtime)
		}
	}
}

func TestNATLERunsAllBenchmarks(t *testing.T) {
	ncfg := natle.DefaultConfig()
	ncfg.ProfilingLen = 30 * vtime.Microsecond
	ncfg.QuantumLen = 30 * vtime.Microsecond
	ncfg.WarmupThreshold = 32
	for _, name := range Names() {
		b, _ := New(name)
		r := Run(b, Config{Threads: 8, Seed: 5, Lock: "natle", NATLE: &ncfg})
		if r.Runtime <= 0 {
			t.Errorf("%s under NATLE: runtime %v", name, r.Runtime)
		}
	}
}

func TestLabyrinthOverflowsCapacity(t *testing.T) {
	// 24 threads co-schedule hyperthread siblings, halving transaction
	// capacity: labyrinth's long routing write-sets must overflow or
	// exhaust their retry budget. (Fewer threads no longer trigger
	// either reliably: capped exponential backoff desynchronizes the
	// retry herds that used to exhaust the attempt budget.)
	b, _ := New("labyrinth")
	r := Run(b, Config{Threads: 24, Seed: 7, Lock: "tle"})
	if r.Sync.TLE.Aborts[2] == 0 && r.Sync.TLE.Fallbacks == 0 {
		t.Error("labyrinth should overflow HTM capacity or fall back; it did neither")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := New("nonesuch"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestShareCoversAll(t *testing.T) {
	for _, total := range []int{0, 1, 7, 64, 1000} {
		for _, threads := range []int{1, 3, 7, 72} {
			covered := 0
			prevHi := 0
			for tid := 0; tid < threads; tid++ {
				lo, hi := share(total, threads, tid)
				if lo != prevHi {
					t.Fatalf("share(%d,%d,%d): gap at %d", total, threads, tid, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != total {
				t.Fatalf("share(%d,%d): covered %d", total, threads, covered)
			}
		}
	}
}

func TestBarrier(t *testing.T) {
	// Exercised heavily through kmeans/genome; a direct check that a
	// barrier round-trips its generation counter.
	b := NewBarrier(1)
	b.Wait(nil) // n=1 never blocks, ctx unused
	if b.gen != 1 {
		t.Errorf("gen = %d, want 1", b.gen)
	}
}
