package stamp

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/simmap"
)

// intruder emulates STAMP's network intrusion detector: threads pop
// packet fragments from a shared queue (a hot, short transaction),
// reassemble flows in a shared map (medium transactions), and scan
// completed flows outside transactions, recording detections in a
// shared counter (short transaction). The shared queue head makes this
// benchmark conflict-heavy at high thread counts.
type intruder struct {
	flows    int
	perFlow  int // fragments per flow
	sys      *htm.System
	queue    mem.Addr // ring of fragment descriptors
	qHead    mem.Addr // shared pop index (own line)
	flowsMap *simmap.Map
	attacks  mem.Addr // detection counter (own line)

	nFrags         int
	expectedAttack uint64
	processed      uint64
}

func newIntruder() *intruder {
	return &intruder{flows: 1 << 10, perFlow: 4}
}

// Name implements Benchmark.
func (b *intruder) Name() string { return "intruder" }

// Fragment descriptor packing: flow id in the low 32 bits, fragment
// index above, payload hash above that (16 bits).
func packFrag(flow, idx, payload int) uint64 {
	return uint64(flow) | uint64(idx)<<32 | uint64(payload&0xFFFF)<<40
}

// Setup implements Benchmark: fragments are interleaved round-robin
// (a deterministic shuffle) so a flow's fragments arrive far apart.
func (b *intruder) Setup(sys *htm.System, c *sim.Ctx, threads int) {
	b.sys = sys
	b.nFrags = b.flows * b.perFlow
	b.queue = sys.AllocHome(c, b.nFrags, 0)
	b.qHead = sys.AllocHome(c, 1, 0)
	b.flowsMap = simmap.New(sys, c, 11, 0)
	b.attacks = sys.AllocHome(c, 1, 0)
	pos := 0
	for idx := 0; idx < b.perFlow; idx++ {
		for flow := 0; flow < b.flows; flow++ {
			payload := (flow*131 + idx*17) & 0xFFFF
			sys.Mem.SetRaw(b.queue+mem.Addr(pos), packFrag(flow, idx, payload))
			pos++
		}
	}
	// The detector flags a flow whose combined payload hash is 0 mod 8;
	// compute the expected count for validation.
	for flow := 0; flow < b.flows; flow++ {
		if b.flowHash(flow)%8 == 0 {
			b.expectedAttack++
		}
	}
}

func (b *intruder) flowHash(flow int) uint64 {
	var h uint64 = 1469598103934665603
	for idx := 0; idx < b.perFlow; idx++ {
		h = (h ^ uint64((flow*131+idx*17)&0xFFFF)) * 1099511628211
	}
	return h
}

// Work implements Benchmark.
func (b *intruder) Work(c *sim.Ctx, cs lock.CS, bar *Barrier, tid, threads int) {
	for {
		var frag uint64
		have := false
		// Transaction 1: pop a fragment from the shared queue.
		cs.Critical(c, func() {
			h := b.sys.Read(c, b.qHead)
			if int(h) >= b.nFrags {
				have = false
				return
			}
			frag = b.sys.Read(c, b.queue+mem.Addr(h))
			b.sys.Write(c, b.qHead, h+1)
			have = true
		})
		if !have {
			return
		}
		flow := uint64(frag & 0xFFFFFFFF)
		complete := false
		// Transaction 2: fold the fragment into its flow's state.
		cs.Critical(c, func() {
			n := b.flowsMap.Add(c, flow, 1)
			complete = int(n) == b.perFlow
		})
		if complete {
			// Detector: local computation over the flow's payloads.
			c.Advance(200 * 3) // ~600ps per byte-ish token work
			if b.flowHash(int(flow))%8 == 0 {
				// Transaction 3: record the detection.
				cs.Critical(c, func() {
					b.sys.Write(c, b.attacks, b.sys.Read(c, b.attacks)+1)
				})
			}
		}
		b.processed++
	}
}

// Validate implements Benchmark.
func (b *intruder) Validate(sys *htm.System) error {
	if b.processed != uint64(b.nFrags) {
		return fmt.Errorf("processed %d fragments, want %d", b.processed, b.nFrags)
	}
	if got := sys.Mem.Raw(b.attacks); got != b.expectedAttack {
		return fmt.Errorf("detected %d attacks, want %d", got, b.expectedAttack)
	}
	return nil
}
