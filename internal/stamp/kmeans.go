package stamp

import (
	"fmt"
	"math"

	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// kmeans clusters D-dimensional points into K centroids. Per STAMP,
// each point assignment is computed outside transactions and the
// accumulation into the new centroid is one short transaction; the
// high-contention variant uses few clusters (many threads hit the same
// accumulator), the low-contention variant many clusters.
type kmeans struct {
	high bool

	nPoints, dims, k, iters int

	sys       *htm.System
	points    mem.Addr // nPoints * dims float64-bit words
	centroids mem.Addr // k * dims words, rewritten between iterations
	accum     mem.Addr // k lines: [count, sum_0 .. sum_{dims-1}]
	assigned  mem.Addr // nPoints words

	totalAssigned uint64
}

func newKMeans(high bool) *kmeans {
	k := &kmeans{
		high:    high,
		nPoints: 2048,
		dims:    4,
		iters:   3,
		k:       16,
	}
	if high {
		k.k = 4
	}
	return k
}

// Name implements Benchmark.
func (b *kmeans) Name() string {
	if b.high {
		return "kmeans-high"
	}
	return "kmeans-low"
}

func f2w(f float64) uint64 { return math.Float64bits(f) }
func w2f(w uint64) float64 { return math.Float64frombits(w) }

// Setup implements Benchmark: points are drawn from k Gaussian-ish
// clusters so the algorithm has real structure to find.
func (b *kmeans) Setup(sys *htm.System, c *sim.Ctx, threads int) {
	b.sys = sys
	b.points = sys.AllocHome(c, b.nPoints*b.dims, 0)
	b.centroids = sys.AllocHome(c, b.k*b.dims, 0)
	// One cache line per accumulator so transactions on different
	// clusters do not false-share.
	b.accum = sys.AllocHome(c, b.k*mem.WordsPerLine, 0)
	b.assigned = sys.AllocHome(c, b.nPoints, 0)
	for i := 0; i < b.nPoints; i++ {
		cl := i % b.k
		for d := 0; d < b.dims; d++ {
			v := float64(cl) + 0.3*(c.Float64()-0.5)
			sys.Mem.SetRaw(b.points+mem.Addr(i*b.dims+d), f2w(v))
		}
	}
	for j := 0; j < b.k; j++ {
		for d := 0; d < b.dims; d++ {
			v := float64(b.k) * c.Float64()
			sys.Mem.SetRaw(b.centroids+mem.Addr(j*b.dims+d), f2w(v))
		}
	}
}

// Work implements Benchmark.
func (b *kmeans) Work(c *sim.Ctx, cs lock.CS, bar *Barrier, tid, threads int) {
	lo, hi := share(b.nPoints, threads, tid)
	for it := 0; it < b.iters; it++ {
		// Assignment phase: pure reads plus local float math.
		for i := lo; i < hi; i++ {
			best, bestD := 0, math.MaxFloat64
			var pt [8]float64
			for d := 0; d < b.dims; d++ {
				pt[d] = w2f(b.sys.Read(c, b.points+mem.Addr(i*b.dims+d)))
			}
			for j := 0; j < b.k; j++ {
				dist := 0.0
				for d := 0; d < b.dims; d++ {
					diff := pt[d] - w2f(b.sys.Read(c, b.centroids+mem.Addr(j*b.dims+d)))
					dist += diff * diff
				}
				c.Advance(vtime.Duration(4*b.dims) * vtime.Nanosecond / 4) // distance math
				if dist < bestD {
					best, bestD = j, dist
				}
			}
			b.sys.Write(c, b.assigned+mem.Addr(i), uint64(best))
			// Transaction: fold the point into the chosen centroid's
			// accumulator (the contended STAMP transaction).
			acc := b.accum + mem.Addr(best*mem.WordsPerLine)
			cs.Critical(c, func() {
				b.sys.Write(c, acc, b.sys.Read(c, acc)+1)
				for d := 0; d < b.dims; d++ {
					a := acc + mem.Addr(1+d)
					b.sys.Write(c, a, f2w(w2f(b.sys.Read(c, a))+pt[d]))
				}
			})
		}
		bar.Wait(c)
		// Thread 0 recomputes centroids from the accumulators.
		if tid == 0 {
			for j := 0; j < b.k; j++ {
				acc := b.accum + mem.Addr(j*mem.WordsPerLine)
				var folded uint64
				cs.Critical(c, func() {
					folded = 0 // body may re-execute after an abort
					n := b.sys.Read(c, acc)
					if n == 0 {
						return
					}
					for d := 0; d < b.dims; d++ {
						sum := w2f(b.sys.Read(c, acc+mem.Addr(1+d)))
						b.sys.Write(c, b.centroids+mem.Addr(j*b.dims+d), f2w(sum/float64(n)))
						b.sys.Write(c, acc+mem.Addr(1+d), f2w(0))
					}
					folded = n
					b.sys.Write(c, acc, 0)
				})
				b.totalAssigned += folded
			}
		}
		bar.Wait(c)
	}
}

// Validate implements Benchmark: every point must have been folded
// into an accumulator exactly once per iteration.
func (b *kmeans) Validate(sys *htm.System) error {
	want := uint64(b.nPoints * b.iters)
	if b.totalAssigned != want {
		return fmt.Errorf("accumulated %d point-iterations, want %d", b.totalAssigned, want)
	}
	return nil
}
