// Package stamp re-implements the STAMP benchmark suite [Minh et al.
// 2008] (in the Ruan et al. adaptation the paper evaluates) on the
// simulated machine, scaled down so trials complete in milliseconds of
// virtual time. As in the paper's setup, the transactional runtime is
// replaced by a single process-wide lock per benchmark, which TLE or
// NATLE then elides — so every transaction in a program contends on
// one elidable lock.
//
// Each benchmark is a faithful miniature of the original workload's
// transaction profile; see doc.go for the per-benchmark substitution
// notes (what the original computes, what the miniature preserves).
package stamp

import (
	"fmt"
	"sort"

	"natle/internal/backend"
	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/scheme"
	"natle/internal/sim"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// Benchmark is one STAMP program.
type Benchmark interface {
	// Name is the benchmark's STAMP name (e.g. "kmeans-high").
	Name() string
	// Setup builds the input data; it runs on the driver thread before
	// the clock starts.
	Setup(sys *htm.System, c *sim.Ctx, threads int)
	// Work runs thread tid's share of the program. Transactions are
	// executed via cs.Critical. The barrier synchronizes program
	// phases.
	Work(c *sim.Ctx, cs lock.CS, bar *Barrier, tid, threads int)
	// Validate checks application-level output from raw memory after
	// the run.
	Validate(sys *htm.System) error
}

// New constructs a benchmark by name at the default (unit) size.
func New(name string) (Benchmark, error) { return NewScaled(name, 1) }

// NewScaled constructs a benchmark with its primary workload size
// multiplied by scale. Unit size keeps tests and benchmarks fast;
// the figure-record runs use larger scales so that high-thread-count
// runtimes span several NATLE cycles, as the original second-long
// STAMP runs did.
func NewScaled(name string, scale int) (Benchmark, error) {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case "genome":
		b := newGenome()
		b.genomeLen *= scale
		return b, nil
	case "intruder":
		b := newIntruder()
		b.flows *= scale
		return b, nil
	case "kmeans-high":
		b := newKMeans(true)
		b.nPoints *= scale
		return b, nil
	case "kmeans-low":
		b := newKMeans(false)
		b.nPoints *= scale
		return b, nil
	case "labyrinth":
		b := newLabyrinth()
		b.routes *= scale
		// Grow the grid area with the route count so later routes do
		// not just fail on a congested board.
		for b.w*b.h < 12*b.routes {
			b.w += 16
			b.h += 16
		}
		return b, nil
	case "ssca2":
		b := newSSCA2()
		b.nodes *= scale
		return b, nil
	case "vacation-high":
		b := newVacation(true)
		b.sessions *= scale
		return b, nil
	case "vacation-low":
		b := newVacation(false)
		b.sessions *= scale
		return b, nil
	case "yada":
		b := newYada()
		b.initBad *= scale
		b.maxNew *= scale
		return b, nil
	}
	return nil, fmt.Errorf("stamp: unknown benchmark %q", name)
}

// Names lists all benchmarks in the order of the paper's Figure 17
// (bayes is omitted there for its high variance, as in the paper).
func Names() []string {
	n := []string{
		"genome", "intruder", "kmeans-high", "kmeans-low", "labyrinth",
		"ssca2", "vacation-high", "vacation-low", "yada",
	}
	sort.Strings(n)
	return n
}

// Config selects machine, synchronization, and scale for a run.
type Config struct {
	Prof    *machine.Profile
	Pin     machine.PinPolicy
	Threads int
	Seed    int64

	Lock  string        // any scheme.Names() entry; "" = "tle"
	TLE   tle.Policy    // inner policy (default TLE-20)
	NATLE *natle.Config // nil = natle.DefaultConfig
}

// Result is one benchmark run's outcome. Runtime is the virtual time
// from the moment all threads are released to the last thread's
// completion — the total-runtime metric of Figure 17 (lower is
// better).
type Result struct {
	Benchmark string
	Threads   int
	Runtime   vtime.Duration
	HTM       htm.Stats
	Sync      scheme.Stats // uniform scheme counters (TLE, timeline, extras)
}

// Barrier is a simple sense-reversing barrier for simulated threads
// (host state; execution is serialized by the simulator token, so no
// atomics are needed — waiting threads poll in virtual time).
type Barrier struct {
	n       int
	arrived int
	gen     int
}

// NewBarrier creates a barrier for n threads.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Wait blocks the calling thread (in virtual time) until all n threads
// arrive.
func (b *Barrier) Wait(c *sim.Ctx) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		return
	}
	c.WaitUntil(500*vtime.Nanosecond, func() bool { return b.gen != gen })
}

// Run executes one benchmark and returns its measurements.
func Run(b Benchmark, cfg Config) *Result {
	if cfg.Prof == nil {
		cfg.Prof = machine.LargeX52()
	}
	if cfg.Pin == nil {
		cfg.Pin = machine.FillSocketFirst{}
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.TLE.Attempts == 0 {
		cfg.TLE = tle.TLE20()
	}
	if cfg.Lock == "" {
		cfg.Lock = "tle"
	}
	desc, err := scheme.LookupFor(backend.Sim, cfg.Lock)
	if err != nil {
		panic(fmt.Sprintf("stamp: %v", err))
	}
	desc = desc.Configure(scheme.Options{TLE: cfg.TLE, NATLE: cfg.NATLE})
	e := sim.New(cfg.Prof, cfg.Pin, cfg.Threads, cfg.Seed)
	sys := htm.NewSystem(e, 1<<22)
	res := &Result{Benchmark: b.Name(), Threads: cfg.Threads}

	e.Spawn(nil, func(c *sim.Ctx) {
		b.Setup(sys, c, cfg.Threads)
		// The STAMP adaptation's single process-wide elidable lock.
		cs := desc.New(sys, c, 0)
		bar := NewBarrier(cfg.Threads)
		started := false
		var start, finish vtime.Time
		for i := 0; i < cfg.Threads; i++ {
			tid := i
			e.Spawn(c, func(w *sim.Ctx) {
				// Wait for the release flag, then align to the common
				// virtual start time (threads are created before the
				// timed region, as in STAMP).
				w.WaitUntil(500*vtime.Nanosecond, func() bool { return started })
				if d := start.Sub(w.Now()); d > 0 {
					w.AdvanceIdle(d)
					w.Checkpoint()
				}
				b.Work(w, cs, bar, tid, cfg.Threads)
				if w.Now() > finish {
					finish = w.Now()
				}
			})
		}
		start = c.Now()
		started = true
		c.SetIdle(true)
		c.WaitOthers(2 * vtime.Microsecond)
		res.Runtime = finish.Sub(start)
		res.HTM = sys.Stats
		res.Sync = cs.Stats()
		if err := b.Validate(sys); err != nil {
			panic(fmt.Sprintf("stamp %s: validation failed: %v", b.Name(), err))
		}
	})
	e.Run()
	return res
}

// share splits count items into threads nearly equal chunks and
// returns tid's [lo, hi) range.
func share(count, threads, tid int) (lo, hi int) {
	per := count / threads
	rem := count % threads
	lo = tid*per + min(tid, rem)
	hi = lo + per
	if tid < rem {
		hi++
	}
	return
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
