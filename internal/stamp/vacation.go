package stamp

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/sim"
	"natle/internal/simmap"
)

// vacation emulates a travel-reservation system: three resource tables
// (cars, flights, rooms) and a customer table, all hash maps. Each
// client session is one transaction that queries several random items
// and reserves the best available one, or updates the tables, or
// cancels a customer — the STAMP mix. The high-contention variant
// queries a wider span of the tables with more operations per
// transaction.
type vacation struct {
	high bool

	relations int // items per table
	sessions  int // transactions per run (split across threads)
	queryNum  int // items examined per reservation

	sys    *htm.System
	tables [3]*simmap.Map
	cust   *simmap.Map

	reservations uint64 // successful reservations (host counter)
	expectedOps  uint64
	doneOps      uint64
}

// Table item value packing: low 32 bits free count, high 32 bits price.
func packItem(free, price uint32) uint64       { return uint64(price)<<32 | uint64(free) }
func unpackItem(v uint64) (free, price uint32) { return uint32(v), uint32(v >> 32) }

func newVacation(high bool) *vacation {
	v := &vacation{
		high:      high,
		relations: 1 << 10,
		sessions:  1 << 13,
		queryNum:  4,
	}
	if high {
		v.relations = 1 << 7 // smaller tables => hotter entries
		v.queryNum = 8
	}
	return v
}

// Name implements Benchmark.
func (v *vacation) Name() string {
	if v.high {
		return "vacation-high"
	}
	return "vacation-low"
}

// Setup implements Benchmark.
func (v *vacation) Setup(sys *htm.System, c *sim.Ctx, threads int) {
	v.sys = sys
	logB := 8
	for i := range v.tables {
		v.tables[i] = simmap.New(sys, c, logB, 0)
		for id := 0; id < v.relations; id++ {
			price := uint32(50 + (id*37)%450)
			v.tables[i].Put(c, uint64(id), packItem(4, price))
		}
	}
	v.cust = simmap.New(sys, c, logB, 0)
	v.expectedOps = uint64(v.sessions)
}

// Work implements Benchmark.
func (v *vacation) Work(c *sim.Ctx, cs lock.CS, bar *Barrier, tid, threads int) {
	lo, hi := share(v.sessions, threads, tid)
	var done uint64
	for s := lo; s < hi; s++ {
		r := c.Rand64()
		switch {
		case r%100 < 80: // make-reservation session
			reserved := false
			tableIdx := c.Intn(3)
			cs.Critical(c, func() {
				reserved = false // body may re-execute after an abort
				table := v.tables[tableIdx]
				bestID, bestPrice := int64(-1), uint32(1<<31)
				for q := 0; q < v.queryNum; q++ {
					id := uint64(c.Intn(v.relations))
					if val, ok := table.Get(c, id); ok {
						free, price := unpackItem(val)
						if free > 0 && price < bestPrice {
							bestID, bestPrice = int64(id), price
						}
					}
				}
				if bestID >= 0 {
					val, _ := table.Get(c, uint64(bestID))
					free, price := unpackItem(val)
					if free > 0 {
						table.Put(c, uint64(bestID), packItem(free-1, price))
						custID := uint64(c.Intn(v.relations))
						v.cust.Add(c, custID, uint64(price))
						reserved = true
					}
				}
			})
			if reserved {
				v.reservations++
			}
		case r%100 < 90: // delete-customer session
			cs.Critical(c, func() {
				custID := uint64(c.Intn(v.relations))
				v.cust.Delete(c, custID)
			})
		default: // update-tables session (add/remove items)
			cs.Critical(c, func() {
				table := v.tables[c.Intn(3)]
				id := uint64(c.Intn(v.relations))
				if c.Rand64()&1 == 0 {
					table.Put(c, id, packItem(4, uint32(50+c.Intn(450))))
				} else {
					table.Delete(c, id)
				}
			})
		}
		done++
	}
	v.doneOps += done
}

// Validate implements Benchmark: all sessions completed, and table
// integrity holds (free counts never exceed the restock value).
func (v *vacation) Validate(sys *htm.System) error {
	if v.doneOps != v.expectedOps {
		return fmt.Errorf("sessions done %d, want %d", v.doneOps, v.expectedOps)
	}
	bad := 0
	for _, tb := range v.tables {
		tb.RawEach(func(_, val uint64) {
			free, _ := unpackItem(val)
			if free > 4 {
				bad++
			}
		})
	}
	if bad > 0 {
		return fmt.Errorf("%d items with impossible free counts", bad)
	}
	return nil
}
