// Substitution notes (per the repository's reproduction policy: what
// the original STAMP program computes, what this miniature preserves,
// and what was scaled or simplified).
//
// genome — Original: segment dedup via a hash set, overlap matching
// via hashed (k-1)-mers, sequential final assembly. Here: identical
// three phases over a synthetic 8K-base genome with full
// sliding-window coverage (deterministic validation); transaction
// profile preserved (short hash-insert transactions, then short
// lookup+insert transactions, then a sequential walk).
//
// intruder — Original: packet fragments popped from a shared queue,
// flows reassembled in a shared map, completed flows scanned by a
// detector. Here: the same three transaction types with a synthetic
// fragment stream and a hash-based detector with a deterministic
// expected detection count. The hot queue head is preserved — it is
// what makes intruder conflict-bound.
//
// kmeans — Original: k-means with a transaction per point folding it
// into a centroid accumulator. Here: the same structure (assignment
// reads + one short accumulator transaction per point, centroid
// recomputation between iterations); 2048 4-d points, K=4 (high
// contention) or K=16 (low), 3 iterations.
//
// labyrinth — Original: Lee-style path routing; each transaction
// copies the grid, expands a wavefront, and claims the found path.
// Here: in-transaction BFS over a 48x48 shared grid with the claim
// writes in the same transaction — preserving the huge read sets and
// large write sets that overflow HTM capacity and force lock
// fallbacks.
//
// ssca2 — Original: graph construction kernel appending edges to
// per-node adjacency arrays in tiny transactions. Here: identical,
// with an R-MAT-like skewed source distribution over 2048 nodes.
//
// vacation — Original: an in-memory travel database (three resource
// relations + customers) with make-reservation / delete-customer /
// update-tables sessions as transactions. Here: the same session mix
// (80/10/10) over hash-map tables; the high-contention variant uses
// 8x smaller relations and twice the queries per session.
//
// yada — Original: Delaunay mesh refinement with cavity
// retriangulation transactions feeding a shared work list. Here: a
// synthetic cavity function (6 neighbourhood elements) over a 4096-
// element mesh with a bounded new-work budget for deterministic
// termination; preserves medium-length transactions, neighbourhood
// conflicts, and work-list contention.
//
// bayes is omitted, as in the paper (Figure 17 caption: it "highly
// depends on the order of various parallel computations and thus
// exhibits high variance").
package stamp
