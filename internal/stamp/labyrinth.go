package stamp

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// labyrinth routes paths through a shared grid, STAMP's
// longest-transaction benchmark: each transaction breadth-first
// searches the grid (a huge read set) and then claims the found path's
// cells (a large write set). Transactions frequently overflow HTM
// capacity, so TLE degenerates to the lock and the benchmark is
// dominated by serialized execution.
type labyrinth struct {
	w, h   int
	routes int

	sys  *htm.System
	grid mem.Addr // w*h words: 0 free, else route id
	next mem.Addr // shared route index (own line)

	routed, failed uint64
}

func newLabyrinth() *labyrinth {
	return &labyrinth{w: 48, h: 48, routes: 192}
}

// Name implements Benchmark.
func (b *labyrinth) Name() string { return "labyrinth" }

// Setup implements Benchmark.
func (b *labyrinth) Setup(sys *htm.System, c *sim.Ctx, threads int) {
	b.sys = sys
	b.grid = sys.AllocHome(c, b.w*b.h, 0)
	b.next = sys.AllocHome(c, 1, 0)
}

func (b *labyrinth) cell(x, y int) mem.Addr { return b.grid + mem.Addr(y*b.w+x) }

// endpoints derives route r's source and destination deterministically.
func (b *labyrinth) endpoints(r int) (sx, sy, dx, dy int) {
	h1 := uint64(r)*0x9E3779B97F4A7C15 + 12345
	h2 := uint64(r)*0xBF58476D1CE4E5B9 + 54321
	sx = int(h1 % uint64(b.w))
	sy = int((h1 >> 16) % uint64(b.h))
	dx = int(h2 % uint64(b.w))
	dy = int((h2 >> 16) % uint64(b.h))
	return
}

// Work implements Benchmark.
func (b *labyrinth) Work(c *sim.Ctx, cs lock.CS, bar *Barrier, tid, threads int) {
	for {
		r := -1
		// Claim the next route id (short transaction). The body may be
		// re-executed after an abort, so it resets r first.
		cs.Critical(c, func() {
			r = -1
			n := b.sys.Read(c, b.next)
			if int(n) < b.routes {
				b.sys.Write(c, b.next, n+1)
				r = int(n)
			}
		})
		if r < 0 {
			return
		}
		sx, sy, dx, dy := b.endpoints(r)
		// Route transaction: BFS over the grid (reads) + path claim
		// (writes), all atomic.
		ok := false
		cs.Critical(c, func() {
			ok = b.route(c, r+1, sx, sy, dx, dy)
		})
		if ok {
			b.routed++
		} else {
			b.failed++
		}
	}
}

// route performs the in-transaction BFS and path claim. The BFS
// bookkeeping (parents, queue) is thread-local; only grid cells are
// shared reads/writes.
func (b *labyrinth) route(c *sim.Ctx, id int, sx, sy, dx, dy int) bool {
	if sx == dx && sy == dy {
		return true
	}
	size := b.w * b.h
	parent := make([]int32, size)
	for i := range parent {
		parent[i] = -1
	}
	start, goal := sy*b.w+sx, dy*b.w+dx
	if b.sys.Read(c, b.grid+mem.Addr(start)) != 0 ||
		b.sys.Read(c, b.grid+mem.Addr(goal)) != 0 {
		return false
	}
	queue := []int32{int32(start)}
	parent[start] = int32(start)
	found := false
	for len(queue) > 0 && !found {
		cur := int(queue[0])
		queue = queue[1:]
		x, y := cur%b.w, cur/b.w
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || ny < 0 || nx >= b.w || ny >= b.h {
				continue
			}
			n := ny*b.w + nx
			if parent[n] >= 0 {
				continue
			}
			if b.sys.Read(c, b.grid+mem.Addr(n)) != 0 {
				parent[n] = -2 // occupied
				continue
			}
			parent[n] = int32(cur)
			if n == goal {
				found = true
				break
			}
			queue = append(queue, int32(n))
		}
		c.Advance(2 * vtime.Nanosecond) // expansion bookkeeping
	}
	if !found {
		return false
	}
	// Claim the path.
	for n := goal; ; n = int(parent[n]) {
		b.sys.Write(c, b.grid+mem.Addr(n), uint64(id))
		if n == int(parent[n]) {
			break
		}
	}
	return true
}

// Validate implements Benchmark: every route accounted for, and each
// routed id appears as a connected claim in the grid.
func (b *labyrinth) Validate(sys *htm.System) error {
	if b.routed+b.failed != uint64(b.routes) {
		return fmt.Errorf("routed %d + failed %d != %d routes", b.routed, b.failed, b.routes)
	}
	if b.routed == 0 {
		return fmt.Errorf("no routes succeeded")
	}
	// Count claimed cells per id; each successful route claims at
	// least two cells (source and goal) unless degenerate.
	claims := map[uint64]int{}
	for i := 0; i < b.w*b.h; i++ {
		if v := sys.Mem.Raw(b.grid + mem.Addr(i)); v != 0 {
			claims[v]++
		}
	}
	if len(claims) > int(b.routed) {
		return fmt.Errorf("%d route ids in grid, but only %d routed", len(claims), b.routed)
	}
	return nil
}
