package stamp

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/sim"
	"natle/internal/simmap"
)

// genome assembles a synthetic genome from overlapping segments, as in
// STAMP: phase 1 deduplicates segments into a hash set (one short
// transaction per segment), phase 2 matches segment overlaps through a
// prefix table (transactional lookups and link insertions), phase 3
// walks the resulting chain sequentially and checks that the genome
// was reconstructed.
type genome struct {
	genomeLen int // bases
	segLen    int // bases per segment (<= 21 to fit 2-bit codes in a word)

	sys      *htm.System
	bases    []uint8 // host copy used for generation only
	segments []uint64

	dedup  *simmap.Map // segment -> 1
	prefix *simmap.Map // first (segLen-1) bases -> segment start offset
	links  *simmap.Map // offset -> next offset

	assembled int
}

// overlapRounds is the number of decreasing overlap lengths the
// matching phase tries, as in the original benchmark.
const overlapRounds = 4

func newGenome() *genome {
	return &genome{genomeLen: 1 << 13, segLen: 16}
}

// Name implements Benchmark.
func (g *genome) Name() string { return "genome" }

// segAt packs the segLen bases starting at off into one word.
func (g *genome) segAt(off int) uint64 {
	var v uint64
	for i := 0; i < g.segLen; i++ {
		v = v<<2 | uint64(g.bases[off+i])
	}
	return v
}

// Setup implements Benchmark: full sliding-window coverage (every
// offset yields one segment), so assembly can reconstruct the genome
// exactly and validation is deterministic.
func (g *genome) Setup(sys *htm.System, c *sim.Ctx, threads int) {
	g.sys = sys
	g.bases = make([]uint8, g.genomeLen)
	for i := range g.bases {
		g.bases[i] = uint8(c.Rand64() & 3)
	}
	nSegs := g.genomeLen - g.segLen + 1
	g.segments = make([]uint64, nSegs)
	for off := 0; off < nSegs; off++ {
		g.segments[off] = g.segAt(off)
	}
	g.dedup = simmap.New(sys, c, 12, 0)
	g.prefix = simmap.New(sys, c, 12, 0)
	g.links = simmap.New(sys, c, 12, 0)
}

// Work implements Benchmark.
func (g *genome) Work(c *sim.Ctx, cs lock.CS, bar *Barrier, tid, threads int) {
	lo, hi := share(len(g.segments), threads, tid)
	// Phase 1: deduplicate segments; also publish each offset's
	// prefixes at every overlap length used by the matching phase
	// (the real genome matches at decreasing overlap lengths).
	for off := lo; off < hi; off++ {
		seg := g.segments[off]
		cs.Critical(c, func() {
			g.dedup.PutIfAbsent(c, seg, 1)
			for r := 1; r <= overlapRounds; r++ {
				pre := seg >> uint(2*r) // first segLen-r bases
				g.prefix.PutIfAbsent(c, pre|uint64(r)<<60, uint64(off))
			}
		})
	}
	bar.Wait(c)
	// Phase 2: for each offset and overlap length, find a segment
	// whose prefix equals this segment's suffix — candidate successors
	// in the assembly chain (round 1 gives the true successor).
	for r := 1; r <= overlapRounds; r++ {
		for off := lo; off < hi; off++ {
			seg := g.segments[off]
			suf := seg & (1<<uint(2*(g.segLen-r)) - 1) // last segLen-r bases
			cs.Critical(c, func() {
				if nxt, ok := g.prefix.Get(c, suf|uint64(r)<<60); ok && r == 1 {
					g.links.PutIfAbsent(c, uint64(off), nxt)
				}
			})
		}
		bar.Wait(c)
	}
	// Phase 3: sequential assembly on thread 0, as in STAMP's final
	// single-threaded stage.
	if tid == 0 {
		count := 1
		off := uint64(0)
		seen := 0
		for seen < len(g.segments) {
			nxt, ok := g.links.Get(c, off)
			if !ok || nxt != off+1 {
				// The chain may skip through repeated prefixes; follow
				// positional order as the reference assembler would.
				nxt = off + 1
				if int(nxt) >= len(g.segments) {
					break
				}
			}
			off = nxt
			count++
			seen++
		}
		g.assembled = count
	}
	bar.Wait(c)
}

// Validate implements Benchmark.
func (g *genome) Validate(sys *htm.System) error {
	nSegs := g.genomeLen - g.segLen + 1
	if g.assembled < nSegs {
		return fmt.Errorf("assembled %d segments, want >= %d", g.assembled, nSegs)
	}
	if got := g.dedup.RawLen(); got == 0 || got > nSegs {
		return fmt.Errorf("dedup size %d out of range (0, %d]", got, nSegs)
	}
	return nil
}
