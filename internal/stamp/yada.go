package stamp

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// yada emulates STAMP's Delaunay mesh refinement: a work list of "bad"
// elements; each transaction takes an element, gathers its cavity (a
// neighbourhood read set of moderate size), rewrites the cavity
// (several writes), and may enqueue new bad elements. Medium-length
// transactions with irregular conflicts through shared neighbourhoods
// and the shared work list.
type yada struct {
	elements int
	initBad  int
	maxNew   int // refinement budget to guarantee termination

	sys    *htm.System
	mesh   mem.Addr // per element: quality word (line-packed, 8/line)
	wl     mem.Addr // work-list ring of element ids
	wlCap  int
	head   mem.Addr // own line
	tail   mem.Addr // own line
	budget mem.Addr // remaining new-work budget (own line)

	processed uint64
}

func newYada() *yada {
	return &yada{elements: 1 << 12, initBad: 1 << 10, maxNew: 1 << 11}
}

// Name implements Benchmark.
func (b *yada) Name() string { return "yada" }

// Setup implements Benchmark.
func (b *yada) Setup(sys *htm.System, c *sim.Ctx, threads int) {
	b.sys = sys
	b.mesh = sys.AllocHome(c, b.elements, 0)
	b.wlCap = b.initBad + b.maxNew + 64
	b.wl = sys.AllocHome(c, b.wlCap, 0)
	b.head = sys.AllocHome(c, 1, 0)
	b.tail = sys.AllocHome(c, 1, 0)
	b.budget = sys.AllocHome(c, 1, 0)
	for i := 0; i < b.elements; i++ {
		q := uint64(3 + (uint64(i)*2654435761)%13)
		sys.Mem.SetRaw(b.mesh+mem.Addr(i), q)
	}
	// Seed the work list with the initially bad elements.
	for i := 0; i < b.initBad; i++ {
		id := (i * 2654435761) % b.elements
		sys.Mem.SetRaw(b.wl+mem.Addr(i), uint64(id))
	}
	sys.Mem.SetRaw(b.tail, uint64(b.initBad))
	sys.Mem.SetRaw(b.budget, uint64(b.maxNew))
}

// cavity returns the element ids forming id's neighbourhood.
func (b *yada) cavity(id int) [6]int {
	var cav [6]int
	h := uint64(id) * 0x9E3779B97F4A7C15
	for i := range cav {
		cav[i] = (id + int(h>>(8*uint(i)))%32 - 16 + b.elements) % b.elements
	}
	cav[0] = id
	return cav
}

// Work implements Benchmark.
func (b *yada) Work(c *sim.Ctx, cs lock.CS, bar *Barrier, tid, threads int) {
	for {
		id := -1
		// Take one bad element from the shared work list. The body may
		// be re-executed after an abort, so it resets id first.
		cs.Critical(c, func() {
			id = -1
			h := b.sys.Read(c, b.head)
			t := b.sys.Read(c, b.tail)
			if h == t {
				return
			}
			id = int(b.sys.Read(c, b.wl+mem.Addr(h%uint64(b.wlCap))))
			b.sys.Write(c, b.head, h+1)
		})
		if id < 0 {
			return
		}
		cav := b.cavity(id)
		// Refinement transaction: read the cavity, rewrite it, and
		// possibly enqueue one new bad element.
		cs.Critical(c, func() {
			var sum uint64
			for _, e := range cav {
				sum += b.sys.Read(c, b.mesh+mem.Addr(e))
			}
			c.Advance(30 * vtime.Nanosecond) // geometry recomputation
			for _, e := range cav {
				q := b.sys.Read(c, b.mesh+mem.Addr(e))
				if q > 3 {
					b.sys.Write(c, b.mesh+mem.Addr(e), q-1)
				}
			}
			if sum%5 == 0 {
				if bud := b.sys.Read(c, b.budget); bud > 0 {
					b.sys.Write(c, b.budget, bud-1)
					t := b.sys.Read(c, b.tail)
					nid := int(sum) % b.elements
					b.sys.Write(c, b.wl+mem.Addr(t%uint64(b.wlCap)), uint64(nid))
					b.sys.Write(c, b.tail, t+1)
				}
			}
		})
		b.processed++
	}
}

// Validate implements Benchmark: the work list must drain completely
// and the number of processed elements must equal the number enqueued.
func (b *yada) Validate(sys *htm.System) error {
	h, t := sys.Mem.Raw(b.head), sys.Mem.Raw(b.tail)
	if h != t {
		return fmt.Errorf("work list not drained: head %d != tail %d", h, t)
	}
	if b.processed != t {
		return fmt.Errorf("processed %d, enqueued %d", b.processed, t)
	}
	if b.processed < uint64(b.initBad) {
		return fmt.Errorf("processed %d < initial %d", b.processed, b.initBad)
	}
	return nil
}
