package stamp

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/mem"
	"natle/internal/sim"
)

// ssca2 runs the graph-construction kernel of SSCA2: threads insert
// directed edges into per-node adjacency arrays. Transactions are very
// short (read a count, append, bump the count) and conflicts occur only
// when two threads add edges at the same source node — the benchmark
// that traditionally scales well under TLE.
type ssca2 struct {
	nodes  int
	degree int // average out-degree

	sys   *htm.System
	adj   mem.Addr // per node: one region of (2 + maxDeg) words, line aligned
	slotW int      // words per node region
	maxD  int

	edges    []uint64 // src<<32|dst, generated at setup
	inserted uint64
}

func newSSCA2() *ssca2 {
	return &ssca2{nodes: 1 << 11, degree: 8}
}

// Name implements Benchmark.
func (b *ssca2) Name() string { return "ssca2" }

// Setup implements Benchmark: an R-MAT-ish skewed edge list so some
// nodes are much hotter than others, as in the real kernel.
func (b *ssca2) Setup(sys *htm.System, c *sim.Ctx, threads int) {
	b.sys = sys
	b.maxD = b.degree * 8
	b.slotW = (2 + b.maxD + mem.WordsPerLine - 1) / mem.WordsPerLine * mem.WordsPerLine
	b.adj = sys.AllocHome(c, b.nodes*b.slotW, 0)
	nEdges := b.nodes * b.degree
	b.edges = make([]uint64, 0, nEdges)
	for i := 0; i < nEdges; i++ {
		// Skewed source choice: quarter the range with p=0.6 per step.
		lo, hi := 0, b.nodes
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if c.Float64() < 0.6 {
				hi = mid
			} else {
				lo = mid
			}
		}
		src := lo
		dst := c.Intn(b.nodes)
		b.edges = append(b.edges, uint64(src)<<32|uint64(dst))
	}
}

// Work implements Benchmark.
func (b *ssca2) Work(c *sim.Ctx, cs lock.CS, bar *Barrier, tid, threads int) {
	lo, hi := share(len(b.edges), threads, tid)
	var done uint64
	for i := lo; i < hi; i++ {
		src := int(b.edges[i] >> 32)
		dst := b.edges[i] & 0xFFFFFFFF
		region := b.adj + mem.Addr(src*b.slotW)
		cs.Critical(c, func() {
			n := b.sys.Read(c, region)
			if int(n) < b.maxD {
				b.sys.Write(c, region+mem.Addr(2+n), dst)
				b.sys.Write(c, region, n+1)
			} else {
				// Degree overflow: count it in the second header word
				// (the real kernel grows the array; bounded here).
				b.sys.Write(c, region+1, b.sys.Read(c, region+1)+1)
			}
		})
		done++
	}
	b.inserted += done
}

// Validate implements Benchmark: stored edges + overflow counts must
// equal the generated edge count.
func (b *ssca2) Validate(sys *htm.System) error {
	var total uint64
	for n := 0; n < b.nodes; n++ {
		region := b.adj + mem.Addr(n*b.slotW)
		total += sys.Mem.Raw(region) + sys.Mem.Raw(region+1)
	}
	if total != uint64(len(b.edges)) {
		return fmt.Errorf("stored %d edges, want %d", total, len(b.edges))
	}
	if b.inserted != uint64(len(b.edges)) {
		return fmt.Errorf("threads processed %d edges, want %d", b.inserted, len(b.edges))
	}
	return nil
}
