// Package backend makes *which world a scheme executes in* a
// first-class axis of the substrate. A backend bundles the four
// capabilities every synchronization scheme and workload driver
// consumes — a time source, thread spawn/join, word-addressed shared
// memory, and critical-section entry — behind interfaces small enough
// that the same workload code runs unchanged on either side:
//
//   - the sim backend (internal/workload.SimWorld) executes on the
//     deterministic discrete-event simulator: virtual time, simulated
//     threads under a pinning policy, simulated cache-coherent memory.
//     Simulated results are a pure function of (profile, seed) — they
//     predict.
//   - the native backend (internal/native.World) executes on real
//     goroutines over real memory ([]atomic.Uint64 words) with
//     wall-clock time. Native results are host measurements — they
//     prove.
//
// This package holds only the vocabulary (no execution machinery), so
// internal/scheme can declare per-backend factories without importing
// either world, and the worlds can be built in the packages that own
// their machinery.
package backend

// Kind names one execution backend.
type Kind string

const (
	// Sim is the deterministic discrete-event simulator backend
	// (virtual time, simulated threads and memory).
	Sim Kind = "sim"
	// Native is the real-execution backend (wall-clock time, real
	// goroutines, atomic words in process memory).
	Native Kind = "native"
)

// Kinds returns every backend, in fixed order.
func Kinds() []Kind { return []Kind{Sim, Native} }

// Valid reports whether k names a known backend.
func Valid(k Kind) bool {
	switch k {
	case Sim, Native:
		return true
	default:
		return false
	}
}

// Ctx is the per-thread execution context a backend hands to setup
// and worker functions. One Ctx belongs to exactly one thread and is
// never shared, so implementations keep per-thread state (RNG,
// speculative transaction state) in it without synchronization.
type Ctx interface {
	// Thread is the worker's index within the trial, or -1 for the
	// setup context that runs before workers start.
	Thread() int
	// Socket is the thread's placement domain: the simulated socket
	// under the trial's pinning policy on sim; on native, the physical
	// package of CPU thread%ncpu as discovered from
	// /sys/devices/system/cpu/cpu*/topology, falling back to a
	// fill-first thread-index stripe when sysfs is absent or an
	// explicit group count was configured (see internal/native's
	// ReadTopology).
	Socket() int
	// Rand64 draws from the thread's deterministic seeded RNG.
	Rand64() uint64
	// Intn returns a draw in [0, n) from the same RNG.
	Intn(n int) int
	// Now returns the backend clock in nanoseconds: virtual time on
	// sim, monotonic wall-clock time on native.
	Now() int64
	// Work burns n iterations of external (non-critical-section)
	// work.
	Work(n int)
	// Alloc reserves nWords zeroed words of the world's shared memory
	// and returns the address of the first. Call only from the setup
	// context (single-threaded, before workers run).
	Alloc(nWords int) int
	// Load reads shared word a. Inside a Critical body the access is
	// transactional on backends with optimistic schemes (tracked and
	// validated; it may abort and re-run the body).
	Load(a int) uint64
	// Store writes shared word a, transactionally inside a Critical
	// body.
	Store(a int, v uint64)
}

// CS executes critical sections on a backend (the backend-agnostic
// mirror of lock.CS). Bodies must be restartable: optimistic schemes
// unwind aborted attempts and re-run them.
type CS interface {
	Critical(c Ctx, body func())
	// Name identifies the scheme in benchmark output.
	Name() string
}

// World is one constructed execution backend: a shared memory plus
// the ability to run one trial of worker threads over it.
type World interface {
	// Kind names the backend.
	Kind() Kind
	// Run executes one trial: setup runs first, alone (allocate
	// memory, build scheme instances), then threads workers run body
	// concurrently; Run returns after every worker finished.
	Run(threads int, setup func(Ctx), body func(Ctx))
	// Peek reads shared word a after Run returned (quiesced memory
	// inspection for conformance checks; not synchronized against
	// running workers).
	Peek(a int) uint64
}
