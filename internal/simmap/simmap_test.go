package simmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
)

func withMap(f func(c *sim.Ctx, m *Map)) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 1)
	s := htm.NewSystem(e, 1<<16)
	e.Spawn(nil, func(c *sim.Ctx) { f(c, New(s, c, 6, 0)) })
	e.Run()
}

func TestPutGetDelete(t *testing.T) {
	withMap(func(c *sim.Ctx, m *Map) {
		if _, ok := m.Get(c, 42); ok {
			t.Error("Get on empty map succeeded")
		}
		if m.Put(c, 42, 7) {
			t.Error("Put reported existing key on fresh insert")
		}
		if v, ok := m.Get(c, 42); !ok || v != 7 {
			t.Errorf("Get = %d,%v want 7,true", v, ok)
		}
		if !m.Put(c, 42, 9) {
			t.Error("Put did not report overwrite")
		}
		if v, _ := m.Get(c, 42); v != 9 {
			t.Errorf("overwrite lost: %d", v)
		}
		if !m.Delete(c, 42) {
			t.Error("Delete missed existing key")
		}
		if m.Delete(c, 42) {
			t.Error("Delete succeeded twice")
		}
		if m.RawLen() != 0 {
			t.Errorf("RawLen = %d, want 0", m.RawLen())
		}
	})
}

func TestAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		withMap(func(c *sim.Ctx, m *Map) {
			rng := rand.New(rand.NewSource(seed))
			model := map[uint64]uint64{}
			for i := 0; i < 800; i++ {
				key := uint64(rng.Intn(97))
				switch rng.Intn(5) {
				case 0, 1:
					val := rng.Uint64()
					_, had := model[key]
					if got := m.Put(c, key, val); got != had {
						ok = false
					}
					model[key] = val
				case 2:
					_, had := model[key]
					if got := m.Delete(c, key); got != had {
						ok = false
					}
					delete(model, key)
				case 3:
					want, had := model[key]
					got, gok := m.Get(c, key)
					if gok != had || (had && got != want) {
						ok = false
					}
				case 4:
					model[key] += 3
					if got := m.Add(c, key, 3); got != model[key] {
						ok = false
					}
				}
			}
			if m.RawLen() != len(model) {
				ok = false
			}
			seen := 0
			m.RawEach(func(k, v uint64) {
				if model[k] != v {
					ok = false
				}
				seen++
			})
			if seen != len(model) {
				ok = false
			}
		})
		return ok
	}
	// A seeded generator keeps the property-test inputs (and therefore
	// the simulated schedules) identical run to run; quick's default
	// draws from the wall clock.
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestPutIfAbsent(t *testing.T) {
	withMap(func(c *sim.Ctx, m *Map) {
		if !m.PutIfAbsent(c, 5, 1) {
			t.Error("first PutIfAbsent failed")
		}
		if m.PutIfAbsent(c, 5, 2) {
			t.Error("second PutIfAbsent succeeded")
		}
		if v, _ := m.Get(c, 5); v != 1 {
			t.Errorf("value = %d, want 1", v)
		}
	})
}

func TestCollisionChains(t *testing.T) {
	// A tiny bucket count forces chains; everything must still work.
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 3)
	s := htm.NewSystem(e, 1<<16)
	e.Spawn(nil, func(c *sim.Ctx) {
		m := New(s, c, 1, 0) // 2 buckets
		for k := uint64(0); k < 64; k++ {
			m.Put(c, k, k*k)
		}
		for k := uint64(0); k < 64; k++ {
			if v, ok := m.Get(c, k); !ok || v != k*k {
				t.Fatalf("Get(%d) = %d,%v", k, v, ok)
			}
		}
		for k := uint64(0); k < 64; k += 2 {
			if !m.Delete(c, k) {
				t.Fatalf("Delete(%d) failed", k)
			}
		}
		if m.RawLen() != 32 {
			t.Fatalf("len = %d, want 32", m.RawLen())
		}
	})
	e.Run()
}
