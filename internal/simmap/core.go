package simmap

import "natle/internal/arena"

// The structure core, generic over the arena.Mem word-memory contract
// so the same chained-hash code runs on simulated memory (Map) and on
// native backend words (BackendMap). The cores preserve the exact
// word-access order of the original sim-only implementation: the
// simulator's coherence traces — and the pinned service benchmark
// snapshots — depend on every read and write landing in the same
// sequence.

func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

func mapBucket(buckets, mask, key uint64) uint64 {
	return buckets + (hash64(key) & mask)
}

func mapGet[M arena.Mem](m M, buckets, mask, key uint64) (uint64, bool) {
	n := m.Load(mapBucket(buckets, mask, key))
	for n != arena.Nil {
		if m.Load(n+nKey) == key {
			return m.Load(n + nVal), true
		}
		n = m.Load(n + nNext)
	}
	return 0, false
}

func mapPut[M arena.Mem](m M, buckets, mask, key, val uint64) bool {
	b := mapBucket(buckets, mask, key)
	n := m.Load(b)
	for n != arena.Nil {
		if m.Load(n+nKey) == key {
			m.Store(n+nVal, val)
			return true
		}
		n = m.Load(n + nNext)
	}
	nn := m.Alloc(nWords)
	m.Store(nn+nKey, key)
	m.Store(nn+nVal, val)
	m.Store(nn+nNext, m.Load(b))
	m.Store(b, nn)
	return false
}

func mapPutIfAbsent[M arena.Mem](m M, buckets, mask, key, val uint64) bool {
	b := mapBucket(buckets, mask, key)
	n := m.Load(b)
	for n != arena.Nil {
		if m.Load(n+nKey) == key {
			return false
		}
		n = m.Load(n + nNext)
	}
	nn := m.Alloc(nWords)
	m.Store(nn+nKey, key)
	m.Store(nn+nVal, val)
	m.Store(nn+nNext, m.Load(b))
	m.Store(b, nn)
	return true
}

func mapAdd[M arena.Mem](m M, buckets, mask, key, delta uint64) uint64 {
	b := mapBucket(buckets, mask, key)
	n := m.Load(b)
	for n != arena.Nil {
		if m.Load(n+nKey) == key {
			v := m.Load(n+nVal) + delta
			m.Store(n+nVal, v)
			return v
		}
		n = m.Load(n + nNext)
	}
	nn := m.Alloc(nWords)
	m.Store(nn+nKey, key)
	m.Store(nn+nVal, delta)
	m.Store(nn+nNext, m.Load(b))
	m.Store(b, nn)
	return delta
}

func mapDelete[M arena.Mem](m M, buckets, mask, key uint64) bool {
	b := mapBucket(buckets, mask, key)
	prev := arena.Nil
	n := m.Load(b)
	for n != arena.Nil {
		next := m.Load(n + nNext)
		if m.Load(n+nKey) == key {
			if prev == arena.Nil {
				m.Store(b, next)
			} else {
				m.Store(prev+nNext, next)
			}
			return true
		}
		prev, n = n, next
	}
	return false
}

// mapEach walks every chain in bucket order (validation/checksum use;
// callers pass a read-only adapter on quiesced memory).
func mapEach[M arena.Mem](m M, buckets, mask uint64, fn func(key, val uint64)) {
	for b := uint64(0); b <= mask; b++ {
		n := m.Load(buckets + b)
		for n != arena.Nil {
			fn(m.Load(n+nKey), m.Load(n+nVal))
			n = m.Load(n + nNext)
		}
	}
}
