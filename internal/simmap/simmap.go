// Package simmap provides a chained hash map used by the application
// benchmarks (STAMP's vacation, genome and intruder, the ccTSA
// assembler's k-mer table) and the KV service's shard stores. Like the
// other data structures it is sequential: callers run operations
// inside critical sections protected by an elidable lock.
//
// The map logic lives in generic cores over arena.Mem (see core.go),
// so the same code backs two front ends: Map on simulated memory and
// BackendMap (backend.go) on any backend.World's words.
package simmap

import (
	"natle/internal/arena"
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Node layout: one cache line per entry.
const (
	nKey   = 0
	nVal   = 1
	nNext  = 2
	nWords = 3
)

// Map is a fixed-bucket chained hash map from uint64 keys to uint64
// values. It deliberately keeps no element counter: a shared size word
// would serialize every insert transaction on one cache line.
type Map struct {
	sys     *htm.System
	buckets mem.Addr // one word per bucket (head pointer)
	mask    uint64
}

// New allocates a map with 2^logBuckets buckets homed on the given
// socket. Bucket head words are packed 8 per line; for the benchmark
// access patterns this models the real allocation of a bucket array.
func New(sys *htm.System, c *sim.Ctx, logBuckets, socket int) *Map {
	n := 1 << logBuckets
	return &Map{
		sys:     sys,
		buckets: sys.AllocHome(c, n, socket),
		mask:    uint64(n - 1),
	}
}

func (m *Map) mem(c *sim.Ctx) arena.Sim { return arena.Sim{Sys: m.sys, C: c} }

// Get returns the value stored under key.
func (m *Map) Get(c *sim.Ctx, key uint64) (uint64, bool) {
	return mapGet(m.mem(c), uint64(m.buckets), m.mask, key)
}

// Put stores val under key, returning true if the key was already
// present (its value is overwritten).
func (m *Map) Put(c *sim.Ctx, key, val uint64) bool {
	return mapPut(m.mem(c), uint64(m.buckets), m.mask, key, val)
}

// PutIfAbsent stores val under key only if absent; it reports whether
// the insert happened.
func (m *Map) PutIfAbsent(c *sim.Ctx, key, val uint64) bool {
	return mapPutIfAbsent(m.mem(c), uint64(m.buckets), m.mask, key, val)
}

// Add increments the value under key by delta (inserting 0+delta if
// absent) and returns the new value.
func (m *Map) Add(c *sim.Ctx, key, delta uint64) uint64 {
	return mapAdd(m.mem(c), uint64(m.buckets), m.mask, key, delta)
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(c *sim.Ctx, key uint64) bool {
	return mapDelete(m.mem(c), uint64(m.buckets), m.mask, key)
}

// RawLen returns the element count by walking raw memory (validation
// only; not a simulated operation).
func (m *Map) RawLen() int {
	n := 0
	m.RawEach(func(_, _ uint64) { n++ })
	return n
}

// RawEach calls fn for every key/value pair, reading raw memory
// (validation only).
func (m *Map) RawEach(fn func(key, val uint64)) {
	mapEach(arena.SimRaw{Space: m.sys.Mem}, uint64(m.buckets), m.mask, fn)
}
