// Package simmap provides a chained hash map stored in simulated
// memory, used by the application benchmarks (STAMP's vacation, genome
// and intruder, and the ccTSA assembler's k-mer table). Like the other
// data structures it is sequential: callers run operations inside
// critical sections protected by an elidable lock.
package simmap

import (
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Node layout: one cache line per entry.
const (
	nKey   = 0
	nVal   = 1
	nNext  = 2
	nWords = 3
)

// Map is a fixed-bucket chained hash map from uint64 keys to uint64
// values. It deliberately keeps no element counter: a shared size word
// would serialize every insert transaction on one cache line.
type Map struct {
	sys     *htm.System
	buckets mem.Addr // one word per bucket (head pointer)
	mask    uint64
}

// New allocates a map with 2^logBuckets buckets homed on the given
// socket. Bucket head words are packed 8 per line; for the benchmark
// access patterns this models the real allocation of a bucket array.
func New(sys *htm.System, c *sim.Ctx, logBuckets, socket int) *Map {
	n := 1 << logBuckets
	return &Map{
		sys:     sys,
		buckets: sys.AllocHome(c, n, socket),
		mask:    uint64(n - 1),
	}
}

func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

func (m *Map) bucket(key uint64) mem.Addr {
	return m.buckets + mem.Addr(hash64(key)&m.mask)
}

// Get returns the value stored under key.
func (m *Map) Get(c *sim.Ctx, key uint64) (uint64, bool) {
	n := mem.Addr(m.sys.Read(c, m.bucket(key)))
	for n != mem.Nil {
		if m.sys.Read(c, n+nKey) == key {
			return m.sys.Read(c, n+nVal), true
		}
		n = mem.Addr(m.sys.Read(c, n+nNext))
	}
	return 0, false
}

// Put stores val under key, returning true if the key was already
// present (its value is overwritten).
func (m *Map) Put(c *sim.Ctx, key, val uint64) bool {
	b := m.bucket(key)
	n := mem.Addr(m.sys.Read(c, b))
	for n != mem.Nil {
		if m.sys.Read(c, n+nKey) == key {
			m.sys.Write(c, n+nVal, val)
			return true
		}
		n = mem.Addr(m.sys.Read(c, n+nNext))
	}
	nn := m.sys.Alloc(c, nWords)
	m.sys.Write(c, nn+nKey, key)
	m.sys.Write(c, nn+nVal, val)
	m.sys.Write(c, nn+nNext, m.sys.Read(c, b))
	m.sys.Write(c, b, uint64(nn))
	return false
}

// PutIfAbsent stores val under key only if absent; it reports whether
// the insert happened.
func (m *Map) PutIfAbsent(c *sim.Ctx, key, val uint64) bool {
	b := m.bucket(key)
	n := mem.Addr(m.sys.Read(c, b))
	for n != mem.Nil {
		if m.sys.Read(c, n+nKey) == key {
			return false
		}
		n = mem.Addr(m.sys.Read(c, n+nNext))
	}
	nn := m.sys.Alloc(c, nWords)
	m.sys.Write(c, nn+nKey, key)
	m.sys.Write(c, nn+nVal, val)
	m.sys.Write(c, nn+nNext, m.sys.Read(c, b))
	m.sys.Write(c, b, uint64(nn))
	return true
}

// Add increments the value under key by delta (inserting 0+delta if
// absent) and returns the new value.
func (m *Map) Add(c *sim.Ctx, key, delta uint64) uint64 {
	b := m.bucket(key)
	n := mem.Addr(m.sys.Read(c, b))
	for n != mem.Nil {
		if m.sys.Read(c, n+nKey) == key {
			v := m.sys.Read(c, n+nVal) + delta
			m.sys.Write(c, n+nVal, v)
			return v
		}
		n = mem.Addr(m.sys.Read(c, n+nNext))
	}
	nn := m.sys.Alloc(c, nWords)
	m.sys.Write(c, nn+nKey, key)
	m.sys.Write(c, nn+nVal, delta)
	m.sys.Write(c, nn+nNext, m.sys.Read(c, b))
	m.sys.Write(c, b, uint64(nn))
	return delta
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(c *sim.Ctx, key uint64) bool {
	b := m.bucket(key)
	prev := mem.Nil
	n := mem.Addr(m.sys.Read(c, b))
	for n != mem.Nil {
		next := mem.Addr(m.sys.Read(c, n+nNext))
		if m.sys.Read(c, n+nKey) == key {
			if prev == mem.Nil {
				m.sys.Write(c, b, uint64(next))
			} else {
				m.sys.Write(c, prev+nNext, uint64(next))
			}
			return true
		}
		prev, n = n, next
	}
	return false
}

// RawLen returns the element count by walking raw memory (validation
// only; not a simulated operation).
func (m *Map) RawLen() int {
	n := 0
	m.RawEach(func(_, _ uint64) { n++ })
	return n
}

// RawEach calls fn for every key/value pair, reading raw memory
// (validation only).
func (m *Map) RawEach(fn func(key, val uint64)) {
	raw := m.sys.Mem
	for b := mem.Addr(0); b <= mem.Addr(m.mask); b++ {
		n := mem.Addr(raw.Raw(m.buckets + b))
		for n != mem.Nil {
			fn(raw.Raw(n+nKey), raw.Raw(n+nVal))
			n = mem.Addr(raw.Raw(n + nNext))
		}
	}
}
