package simmap

import (
	"natle/internal/arena"
	"natle/internal/backend"
)

// BackendMap is the chained hash map over an arbitrary backend.World's
// words: the same generic cores as Map, with the bucket array in plain
// backend words and nodes carved from an arena lane keyed by the
// calling thread. On the native backend this is the KV service's shard
// store — real goroutines hashing into real atomic words.
type BackendMap struct {
	buckets uint64
	mask    uint64
	ar      *arena.Arena
}

// NewBackendMap allocates a map with 2^logBuckets buckets during
// setup; nodes come out of ar (size lanes for NodeWords() per insert).
func NewBackendMap(c backend.Ctx, ar *arena.Arena, logBuckets int) *BackendMap {
	n := 1 << logBuckets
	return &BackendMap{
		buckets: uint64(c.Alloc(n)),
		mask:    uint64(n - 1),
		ar:      ar,
	}
}

// NodeWords returns the arena words one insert consumes (the node is
// line-rounded by the allocator), for lane sizing.
func NodeWords() int { return arena.RoundLine(nWords) }

// Get returns the value stored under key.
func (m *BackendMap) Get(c backend.Ctx, key uint64) (uint64, bool) {
	return mapGet(arena.Bind(c, m.ar), m.buckets, m.mask, key)
}

// Put stores val under key, returning true if the key was already
// present (its value is overwritten).
func (m *BackendMap) Put(c backend.Ctx, key, val uint64) bool {
	return mapPut(arena.Bind(c, m.ar), m.buckets, m.mask, key, val)
}

// PutIfAbsent stores val under key only if absent; it reports whether
// the insert happened.
func (m *BackendMap) PutIfAbsent(c backend.Ctx, key, val uint64) bool {
	return mapPutIfAbsent(arena.Bind(c, m.ar), m.buckets, m.mask, key, val)
}

// Add increments the value under key by delta (inserting 0+delta if
// absent) and returns the new value.
func (m *BackendMap) Add(c backend.Ctx, key, delta uint64) uint64 {
	return mapAdd(arena.Bind(c, m.ar), m.buckets, m.mask, key, delta)
}

// Delete removes key, reporting whether it was present.
func (m *BackendMap) Delete(c backend.Ctx, key uint64) bool {
	return mapDelete(arena.Bind(c, m.ar), m.buckets, m.mask, key)
}

// PeekEach calls fn for every key/value pair on quiesced memory after
// World.Run returned (validation and checksums only).
func (m *BackendMap) PeekEach(w backend.World, fn func(key, val uint64)) {
	mapEach(arena.Peek{W: w}, m.buckets, m.mask, fn)
}

// PeekLen returns the element count on quiesced memory.
func (m *BackendMap) PeekLen(w backend.World) int {
	n := 0
	m.PeekEach(w, func(_, _ uint64) { n++ })
	return n
}
