// Package vtime provides the virtual time base used by the machine
// simulator. All simulated latencies and timestamps are expressed in
// picoseconds so that sub-nanosecond costs (e.g. a 4-cycle L1 hit at
// 2.3 GHz) can be represented exactly as integers.
//
// The int64 picosecond representation covers about 106 days of virtual
// time, far beyond any simulated trial (typically tens of milliseconds).
package vtime

import "fmt"

// Time is an absolute virtual timestamp in picoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds returns the duration as a floating-point number of
// nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Scale returns d multiplied by factor f, rounding toward zero.
func (d Duration) Scale(f float64) Duration { return Duration(float64(d) * f) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// String formats the timestamp as a duration since time zero.
func (t Time) String() string { return Duration(t).String() }
