package vtime

import (
	"testing"
	"testing/quick"
)

func TestUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Error("ns != 1000ps")
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Error("unit ladder broken")
	}
}

func TestAddSub(t *testing.T) {
	f := func(base int64, d int64) bool {
		tm := Time(base % (1 << 50))
		du := Duration(d % (1 << 40))
		return tm.Add(du).Sub(tm) == du
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeconds(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (500 * Microsecond).Seconds(); got != 0.0005 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (3 * Nanosecond).Nanoseconds(); got != 3.0 {
		t.Errorf("Nanoseconds = %v", got)
	}
}

func TestScale(t *testing.T) {
	if got := (100 * Nanosecond).Scale(1.5); got != 150*Nanosecond {
		t.Errorf("Scale(1.5) = %v", got)
	}
	if got := (100 * Nanosecond).Scale(0); got != 0 {
		t.Errorf("Scale(0) = %v", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}
