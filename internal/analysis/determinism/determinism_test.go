package determinism_test

import (
	"testing"

	"natle/internal/analysis/analysistest"
	"natle/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "det", "detnative", "detsysfs")
}
