// Package determinism defines the natlevet analyzer enforcing that
// simulated code is a pure function of (machine profile, fault
// profile, seed). The fault injector's byte-identical replay tests and
// the pinned golden traces (PRs 1 and 3) rely on runs being exactly
// reproducible; one wall-clock read or one draw from math/rand's
// unseeded global source silently breaks them in a way no unit test
// reliably catches. Virtual time flows only through internal/vtime and
// sim.Ctx; randomness flows only through seeded sources (the thread's
// sim.Ctx RNG, or rand.New(rand.NewSource(seed))).
package determinism

import (
	"go/ast"
	"go/types"

	"natle/internal/analysis"
)

// Analyzer flags wall-clock reads and unseeded global randomness.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid wall-clock time and unseeded global randomness

Simulated results must be a pure function of (profile, seed): replay
tests compare traces byte-for-byte. time.Now/Sleep/Since/... and the
package-level math/rand functions (which draw from a process-global
source) are banned in non-test code; use internal/vtime, the sim.Ctx
RNG, or an explicitly seeded *rand.Rand. Sanctioned wall-clock uses
(human progress reporting) carry //natlevet:allow determinism(reason).`,
	Run: run,
}

// bannedTime are the time functions that read or wait on the wall
// clock. Constants (time.Millisecond) and pure arithmetic on
// time.Time/Duration values remain available.
var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"Since": true, "Until": true,
}

// allowedRand are the math/rand (and v2) package-level functions that
// construct explicitly-seeded sources rather than drawing from the
// global one.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if analysis.PackageBackend(pass.Files) == "native" {
		// Wall-clock time is the declared point of a native-backend
		// package; determinism is a sim-only invariant.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded by construction
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s leaks wall-clock nondeterminism into the run: simulated code must use virtual time (internal/vtime, sim.Ctx)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the unseeded global source: use the thread's sim.Ctx RNG or rand.New(rand.NewSource(seed))",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
