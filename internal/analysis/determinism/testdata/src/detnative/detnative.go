// Package detnative is the backend-gating fixture: the package-level
// directive below declares it a native-backend package, so wall-clock
// reads and global randomness — violations in any simulated package
// (see the det fixture, which stays strict) — must produce no
// diagnostics here. There are deliberately no want comments in this
// file.
//
//natlevet:backend native
package detnative

import (
	"math/rand"
	"time"
)

func wallClockIsThePoint() time.Duration {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(start)
}

func hostRandomness() int {
	return rand.Intn(4)
}
