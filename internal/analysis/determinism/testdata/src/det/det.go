// Package det is the determinism analyzer fixture: wall-clock reads
// and global-source randomness must be flagged; seeded sources,
// constants, and annotated sanctioned uses must not.
package det

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()                      // want `wall-clock`
	time.Sleep(time.Millisecond)             // want `wall-clock`
	deadline := time.After(start.Sub(start)) // want `wall-clock`
	<-deadline
	return time.Since(start) // want `wall-clock`
}

func globalRand() int {
	rand.Shuffle(4, func(i, j int) {}) // want `unseeded global`
	return rand.Intn(4)                // want `unseeded global`
}

// timeValue takes the banned function as a value, not a call; the
// reference alone is nondeterminism waiting to be invoked.
func timeValue() func() time.Time {
	return time.Now // want `wall-clock`
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are deterministic
	return rng.Intn(4)                    // methods on a seeded *rand.Rand are fine
}

func constantsOnly() time.Duration {
	return 3 * time.Millisecond // constants never tick
}

func sanctioned() time.Time {
	return time.Now() //natlevet:allow determinism(fixture: progress reporting for humans)
}

func sanctionedAbove() time.Time {
	//natlevet:allow determinism(fixture: directive on the line above)
	return time.Now()
}
