package detsysfs

import (
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"
)

// readTopologyish mimics internal/native's sysfs topology reader: it
// touches the host filesystem and stamps the scan with wall-clock
// time. In a simulated package both would be determinism bugs; under
// the package-level native directive (in doc.go, not this file) they
// are the declared point. Deliberately no want comments anywhere in
// this package.
func readTopologyish(root string) (int, time.Duration) {
	start := time.Now()
	b, err := os.ReadFile(root + "/cpu0/topology/physical_package_id")
	if err != nil {
		return 0, time.Since(start)
	}
	pkg, _ := strconv.Atoi(strings.TrimSpace(string(b)))
	return pkg, time.Since(start)
}

// jitteredRetry is the other class of native-only code: host
// randomness for backoff jitter.
func jitteredRetry() {
	time.Sleep(time.Duration(rand.Intn(64)) * time.Microsecond)
}
