// Package detsysfs is the multi-file backend-gating fixture,
// mirroring how internal/native is laid out: the //natlevet:backend
// native directive lives here in doc.go while the wall-clock reads
// live in sysfs.go. The exemption is package-level — the analyzer
// scans every file of the package for the directive — so sysfs.go's
// violations must produce no diagnostics even though this file
// contains none of the offending code.
//
//natlevet:backend native
package detsysfs
