// Package fshare is the falseshare analyzer fixture: //natlevet:percpu
// structs must keep concurrently-written fields on distinct 64-byte
// cache lines under gc/amd64 layout.
package fshare

import "sync/atomic"

// good is the sanctioned idiom: each hot word owns a full line.
//
//natlevet:percpu
type good struct {
	hits atomic.Uint64
	_    [56]byte
	miss atomic.Uint64
	_    [56]byte
}

//natlevet:percpu
type shared struct { // want `not a multiple of 64`
	a atomic.Uint64
	b atomic.Uint64 // want `share cache line 0`
}

//natlevet:percpu
type coldmix struct {
	cfg int64
	hot atomic.Uint64 // want `shares cache line 0 with field cfg`
	_   [48]byte
}

// padded owns its lines outright when 64-aligned.
type padded struct {
	n atomic.Uint64
	_ [56]byte
}

//natlevet:percpu
type bank struct {
	seq   atomic.Uint64
	cells [2]padded // want `starts at offset 8, not 64-byte aligned`
	_     [56]byte
}

// plainhot's words are hot because this package updates them via
// sync/atomic, even though their declared type is a bare uint64.
//
//natlevet:percpu
type plainhot struct {
	n uint64
	m uint64 // want `share cache line 0`
	_ [48]byte
}

func bump(p *plainhot) {
	atomic.AddUint64(&p.n, 1)
	atomic.AddUint64(&p.m, 1)
}

// allowed documents deliberate sharing: both words are written by the
// same thread, so the line never bounces.
//
//natlevet:percpu
type allowed struct {
	a atomic.Uint64
	b atomic.Uint64 //natlevet:allow falseshare(fixture: both words written by one owner thread)
	_ [48]byte
}

//natlevet:percpu
func strayDirective() {} // want `must mark a struct type declaration`

//natlevet:percpu
type notStruct int64 // want `not a struct type`
