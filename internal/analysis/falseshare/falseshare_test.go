package falseshare_test

import (
	"testing"

	"natle/internal/analysis/analysistest"
	"natle/internal/analysis/falseshare"
)

func TestFalseshare(t *testing.T) {
	analysistest.Run(t, "testdata", falseshare.Analyzer, "fshare")
}
