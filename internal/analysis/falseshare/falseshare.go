// Package falseshare defines the natlevet analyzer guarding the cache
// line layout of per-thread and per-group hot structures. The paper's
// central finding is that cross-socket cache-line traffic dominates
// HTM performance on multi-socket machines, so a refactor that lands
// two independently-written counters on one 64-byte line silently
// changes what the native backend measures: every writer invalidates
// the other's line and the "per-group" counters start costing a
// coherence round-trip per update. The compiler reorders nothing and
// warns about nothing; only the declared layout decides.
//
// Structs whose instances are written concurrently by distinct threads
// carry //natlevet:percpu on their type declaration. For each such
// struct the analyzer computes field offsets under the gc/amd64 layout
// (the layout the native backend benchmarks on) and requires:
//
//   - no two hot fields share a 64-byte line (hot = holds sync/atomic
//     state, or is a plain word this package accesses atomically);
//   - no hot field shares a line with a non-pad cold field (a reader
//     of the cold field would take the writers' invalidations);
//   - nested padded units (size a multiple of 64) start 64-aligned,
//     so arrays of them stay line-disjoint;
//   - the struct's total size is a multiple of 64, so adjacent
//     instances in an array do not share the trailing line.
//
// Blank "_" fields are padding and may share lines with anything.
package falseshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"natle/internal/analysis"
)

// Analyzer checks //natlevet:percpu struct layouts for false sharing.
var Analyzer = &analysis.Analyzer{
	Name: "falseshare",
	Doc: `require //natlevet:percpu structs to keep concurrently-written fields on distinct cache lines

Field offsets are computed under gc/amd64 layout with a 64-byte line.
Hot fields (atomic state) must not share a line with each other or
with cold fields; padded sub-units must be 64-aligned; total size must
be a multiple of 64. Deliberate sharing carries
//natlevet:allow falseshare(reason).`,
	Run: run,
}

// lineSize is the coherence granule the paper's machines share: 64
// bytes on every x86 these experiments model.
const lineSize = 64

// sizesAMD64 is the layout the native backend runs and benchmarks on.
var sizesAMD64 = types.SizesFor("gc", "amd64")

func run(pass *analysis.Pass) error {
	av := analysis.AtomicFields(pass.TypesInfo, pass.Files)
	consumed := make(map[*ast.Comment]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				return true
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				groups := []*ast.CommentGroup{ts.Doc, ts.Comment}
				if len(gd.Specs) == 1 {
					groups = append(groups, gd.Doc)
				}
				if !takeDirective(groups, consumed) {
					continue
				}
				checkStruct(pass, av, ts)
			}
			return false
		})
	}
	// A percpu directive attached to anything but a type declaration
	// marks nothing and would silently check nothing. Report misfiled
	// ones at the declaration they attach to (so the finding lands on
	// code, not on the comment), floating ones at the comment itself.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				if d.Tok == token.TYPE {
					continue
				}
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				if strings.TrimSpace(c.Text) == analysis.PercpuDirective && !consumed[c] {
					consumed[c] = true
					pass.Reportf(decl.Pos(), "%s here marks nothing: it must mark a struct type declaration", analysis.PercpuDirective)
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == analysis.PercpuDirective && !consumed[c] {
					pass.Reportf(c.Pos(), "%s must be in the doc comment of a struct type declaration", analysis.PercpuDirective)
				}
			}
		}
	}
	return nil
}

func takeDirective(groups []*ast.CommentGroup, consumed map[*ast.Comment]bool) bool {
	found := false
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if strings.TrimSpace(c.Text) == analysis.PercpuDirective {
				consumed[c] = true
				found = true
			}
		}
	}
	return found
}

type fieldInfo struct {
	v      *types.Var
	pos    token.Pos
	offset int64
	size   int64
	hot    bool
	pad    bool // blank "_" spacer
}

func checkStruct(pass *analysis.Pass, av map[*types.Var]bool, ts *ast.TypeSpec) {
	if sizesAMD64 == nil {
		return
	}
	tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Name.Pos(), "%s on %s, which is not a struct type", analysis.PercpuDirective, ts.Name.Name)
		return
	}
	syntax, _ := ts.Type.(*ast.StructType)

	vars := make([]*types.Var, st.NumFields())
	for i := range vars {
		vars[i] = st.Field(i)
	}
	offsets := sizesAMD64.Offsetsof(vars)

	fields := make([]fieldInfo, 0, len(vars))
	for i, v := range vars {
		hot := analysis.ContainsAtomic(v.Type()) || holdsAtomicWord(v, av)
		fields = append(fields, fieldInfo{
			v:      v,
			pos:    declPos(syntax, v.Name(), ts.Pos()),
			offset: offsets[i],
			size:   sizesAMD64.Sizeof(v.Type()),
			hot:    hot,
			pad:    v.Name() == "_" && !hot,
		})
	}

	// Misaligned padded units: a field sized to whole lines is meant to
	// own them outright; starting mid-line defeats its own padding (and
	// that of every later element if it is an array). Such fields are
	// excluded from the overlap checks below — realigning them is the
	// fix, and reporting their overlaps too would be noise.
	misplaced := make([]bool, len(fields))
	for i, f := range fields {
		if f.size > 0 && f.size%lineSize == 0 && f.offset%lineSize != 0 {
			misplaced[i] = true
			if f.hot || !f.pad {
				pass.Reportf(f.pos,
					"field %s of percpu struct %s is a %d-byte padded unit but starts at offset %d, not 64-byte aligned: its elements straddle cache lines",
					f.v.Name(), ts.Name.Name, f.size, f.offset)
			}
		}
	}

	lineRange := func(f fieldInfo) (int64, int64) {
		if f.size == 0 {
			return f.offset / lineSize, f.offset/lineSize - 1 // empty
		}
		return f.offset / lineSize, (f.offset + f.size - 1) / lineSize
	}
	overlaps := func(a, b fieldInfo) (int64, bool) {
		alo, ahi := lineRange(a)
		blo, bhi := lineRange(b)
		lo, hi := max(alo, blo), min(ahi, bhi)
		if lo > hi {
			return 0, false
		}
		return lo, true
	}

	for i, f := range fields {
		if !f.hot || misplaced[i] {
			continue
		}
		for j, g := range fields {
			if j == i || misplaced[j] || g.pad {
				continue
			}
			line, shared := overlaps(f, g)
			if !shared {
				continue
			}
			if g.hot {
				// Report each hot pair once, at the later field.
				if j < i {
					continue
				}
				pass.Reportf(g.pos,
					"hot fields %s and %s of percpu struct %s share cache line %d: concurrent writers will false-share; separate them with pad fields",
					f.v.Name(), g.v.Name(), ts.Name.Name, line)
			} else {
				pass.Reportf(f.pos,
					"hot field %s of percpu struct %s shares cache line %d with field %s: writes invalidate the line under its readers; pad or segregate",
					f.v.Name(), ts.Name.Name, line, g.v.Name())
			}
		}
	}

	if total := sizesAMD64.Sizeof(tn.Type()); total%lineSize != 0 {
		pass.Reportf(ts.Name.Pos(),
			"percpu struct %s is %d bytes, not a multiple of 64: adjacent instances share its trailing cache line; add tail padding",
			ts.Name.Name, total)
	}
}

// holdsAtomicWord reports whether field v is (or contains, for arrays)
// a plain word this package accesses through sync/atomic.
func holdsAtomicWord(v *types.Var, av map[*types.Var]bool) bool {
	if av[v] {
		return true
	}
	u, ok := v.Type().Underlying().(*types.Struct)
	if !ok {
		if a, ok := v.Type().Underlying().(*types.Array); ok {
			if s, ok := a.Elem().Underlying().(*types.Struct); ok {
				u = s
			} else {
				return false
			}
		} else {
			return false
		}
	}
	for i := 0; i < u.NumFields(); i++ {
		if holdsAtomicWord(u.Field(i), av) {
			return true
		}
	}
	return false
}

func declPos(st *ast.StructType, name string, fallback token.Pos) token.Pos {
	if st == nil {
		return fallback
	}
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				return id.Pos()
			}
		}
	}
	return fallback
}
