// Package analysistest runs a natlevet analyzer over fixture packages
// under a testdata directory and compares its findings against
// expectations written in the fixtures themselves, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	_ = rand.Intn(4) // want `unseeded global`
//
// A `// want` comment holds one or more quoted or backquoted regular
// expressions; each must match a diagnostic reported on that line, and
// every diagnostic must be matched by some expectation. Fixture
// directories live at <testdata>/src/<name> and are ordinary Go
// packages hidden from the go tool (testdata is skipped by ./...), so
// deliberately-broken invariant violations in them never break the
// build; they may import real natle/internal/... packages, which the
// loader resolves through the module's export data.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"natle/internal/analysis"
	"natle/internal/analysis/load"
)

// wantRE extracts the quoted or backquoted patterns of a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package <testdata>/src/<pkg>, applies the
// analyzer, and reports mismatches between its diagnostics and the
// fixtures' want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		p, err := load.Fixture(dir)
		if err != nil {
			t.Errorf("loading fixture %s: %v", name, err)
			continue
		}

		wants := make(map[string][]*expectation) // "file:line" -> expectations
		for _, f := range p.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") && text != "want" {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					for _, lit := range wantRE.FindAllString(text, -1) {
						pat := lit[1 : len(lit)-1]
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", key, pat, err)
							continue
						}
						wants[key] = append(wants[key], &expectation{re: re})
					}
				}
			}
		}

		var diags []analysis.Diagnostic
		pass := analysis.NewPass(a, p.Fset, p.Syntax, p.Types, p.TypesInfo,
			analysis.BuildAllowlist(p.Fset, p.Syntax),
			func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s failed: %v", name, a.Name, err)
			continue
		}

		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
			found := false
			for _, w := range wants[key] {
				if !w.matched && w.re.MatchString(d.Message) {
					w.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s/%s: unexpected diagnostic: %s", name, key, d.Message)
			}
		}
		var keys []string
		for k := range wants {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, w := range wants[k] {
				if !w.matched {
					t.Errorf("%s/%s: no diagnostic matched %q", name, k, w.re)
				}
			}
		}
	}
}
