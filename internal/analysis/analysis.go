// Package analysis is the vocabulary of natlevet, the repo's static
// analysis suite: Analyzer, Pass and Diagnostic mirror the shape of
// golang.org/x/tools/go/analysis so each checker reads like a standard
// vet analyzer, but the implementation is dependency-free — the build
// environment has no module proxy, so x/tools cannot be fetched and
// the loader (package load) instead type-checks against the compiler's
// own export data via `go list -export`. If x/tools ever becomes
// available, the analyzers port over by swapping this import.
//
// The suite exists because the reproduction rests on invariants the
// compiler cannot see:
//
//   - simulated results must be a pure function of (profile, seed) —
//     wall-clock reads or unseeded global randomness silently break
//     the fault injector's byte-identical replays (determinism);
//   - transaction bodies unwind via an htm.AbortSignal panic — a
//     recover, go statement, or channel operation inside one swallows
//     or escapes the unwind (txnsafe);
//   - telemetry and fault hooks are only zero-cost-when-disabled if
//     every call site keeps the nil-check / Nop-default discipline
//     (hookcost);
//   - enum switches and the value-mirrored enum pairs must stay
//     complete as constants are added (exhaustive).
//
// # Suppression
//
// A finding is silenced by an allow directive on the same line as the
// diagnostic or on the line directly above it:
//
//	//natlevet:allow determinism(progress timing for humans only)
//
// The parenthesized reason is mandatory; a directive without one is
// itself a diagnostic. Multiple analyzers may be listed in a single
// directive, comma-separated: //natlevet:allow a(why), b(why).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //natlevet:allow directives.
	Name string

	// Doc is the help text; the first line is the summary.
	Doc string

	// Run applies the analyzer to one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allow  *Allowlist
	report func(Diagnostic)
}

// NewPass prepares a run of a over one package. The allowlist is
// shared across analyzers for the package (build it once with
// BuildAllowlist); report receives every non-suppressed diagnostic.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, allow *Allowlist,
	report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer: a, Fset: fset, Files: files, Pkg: pkg,
		TypesInfo: info, allow: allow, report: report,
	}
}

// A Diagnostic is one finding, positioned within the fileset of the
// pass that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a finding unless an allow directive for this
// analyzer covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allow != nil {
		position := p.Fset.Position(pos)
		if p.allow.Allowed(p.Analyzer.Name, position.Filename, position.Line) {
			return
		}
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// An Allow is one parsed name(reason) entry of an allow directive.
type Allow struct {
	Analyzer string
	Reason   string
}

// allowDirective is the comment prefix of a suppression.
const allowDirective = "//natlevet:allow"

// MirrorDirective is the comment prefix of an enum-mirror assertion
// (interpreted by the exhaustive analyzer).
const MirrorDirective = "//natlevet:mirror"

// BackendDirective is the comment prefix of a package-level execution
// backend declaration. Packages default to the simulated backend,
// where determinism and txnsafe are load-bearing invariants; a package
// whose point is real execution (wall-clock time, real goroutines —
// internal/native) declares
//
//	//natlevet:backend native
//
// once at package level, and those two analyzers skip it wholesale.
// The remaining analyzers (hookcost, exhaustive, atomicsafe,
// falseshare, hotalloc) apply everywhere; lockorder applies only to
// declared-native packages.
const BackendDirective = "//natlevet:backend"

// PercpuDirective marks a struct type whose instances are hammered
// concurrently by distinct threads or thread groups (per-CPU counter
// blocks, per-group decision words). The falseshare analyzer checks
// the annotated struct's field layout against 64-byte cache lines. The
// directive takes no arguments and sits in the type's doc comment.
const PercpuDirective = "//natlevet:percpu"

// HotpathDirective marks a function (declaration or literal) on a
// measured fast path — the native seqlock attempt path, telemetry
// record hooks, the service dequeue loop. The hotalloc analyzer
// forbids heap-allocating constructs inside it. The directive takes no
// arguments and sits in the function's doc comment (or on the line
// directly above a func literal).
const HotpathDirective = "//natlevet:hotpath"

// SeqlockDirective marks a function whose dynamic extent is an
// optimistic seqlock read section (internal/native's TLE.try): blocking
// lock acquisition inside it can wedge forever, because the section
// unwinds via panic with the lock still held and is re-executed an
// arbitrary number of times. The lockorder analyzer forbids
// acquisitions within it; the directive is only meaningful in
// //natlevet:backend native packages.
const SeqlockDirective = "//natlevet:seqlock"

// PackageBackend returns the backend declared by a BackendDirective in
// any of the package's files ("" when none is declared, i.e. the
// simulated default).
func PackageBackend(files []*ast.File) string {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, BackendDirective) {
					return strings.TrimSpace(strings.TrimPrefix(c.Text, BackendDirective))
				}
			}
		}
	}
	return ""
}

var allowEntryRE = regexp.MustCompile(`^([a-zA-Z][a-zA-Z0-9_-]*)\(([^()]*)\)$`)

// parseAllow parses the text of one allow directive comment. It
// returns nil and an error when the directive is malformed (missing
// reason, bad entry syntax).
func parseAllow(text string) ([]Allow, error) {
	body := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
	if body == "" {
		return nil, fmt.Errorf("natlevet:allow directive names no analyzer; use //natlevet:allow name(reason)")
	}
	var out []Allow
	for _, item := range splitTopLevel(body) {
		m := allowEntryRE.FindStringSubmatch(item)
		if m == nil {
			return nil, fmt.Errorf("malformed natlevet:allow entry %q; use name(reason)", item)
		}
		if strings.TrimSpace(m[2]) == "" {
			return nil, fmt.Errorf("natlevet:allow %s() has an empty reason; say why the invariant is safe to waive here", m[1])
		}
		out = append(out, Allow{Analyzer: m[1], Reason: strings.TrimSpace(m[2])})
	}
	return out, nil
}

// splitTopLevel splits comma-separated allow entries without breaking
// on commas inside the (reason) parentheses.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if last := strings.TrimSpace(s[start:]); last != "" {
		out = append(out, last)
	}
	return out
}

// An Allowlist indexes the allow directives of one package by file and
// line. A directive sanctions findings on its own line and on the line
// directly below it (covering both trailing-comment and
// line-above-the-statement placement).
type Allowlist struct {
	byLine map[lineKey][]Allow
}

type lineKey struct {
	file string
	line int
}

// BuildAllowlist collects the allow directives of the given files.
// Malformed directives are ignored here; LintDirectives reports them.
func BuildAllowlist(fset *token.FileSet, files []*ast.File) *Allowlist {
	al := &Allowlist{byLine: make(map[lineKey][]Allow)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				entries, err := parseAllow(c.Text)
				if err != nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, k := range []lineKey{
					{pos.Filename, pos.Line},
					{pos.Filename, pos.Line + 1},
				} {
					al.byLine[k] = append(al.byLine[k], entries...)
				}
			}
		}
	}
	return al
}

// Allowed reports whether a directive sanctions findings of the named
// analyzer at file:line.
func (al *Allowlist) Allowed(analyzer, file string, line int) bool {
	for _, a := range al.byLine[lineKey{file, line}] {
		if a.Analyzer == analyzer {
			return true
		}
	}
	return false
}

// LintDirectives checks every natlevet: comment in the files for
// well-formedness: allow entries must parse and carry a reason, allow
// names must be known analyzers, and unrecognized natlevet: verbs are
// flagged. It reports through report with the pseudo-analyzer name
// "natlevet".
func LintDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) {
	bad := func(pos token.Pos, format string, args ...any) {
		report(Diagnostic{Pos: pos, Analyzer: "natlevet", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case strings.HasPrefix(c.Text, allowDirective):
					entries, err := parseAllow(c.Text)
					if err != nil {
						bad(c.Pos(), "%v", err)
						continue
					}
					for _, e := range entries {
						if !known[e.Analyzer] {
							bad(c.Pos(), "natlevet:allow names unknown analyzer %q", e.Analyzer)
						}
					}
				case strings.HasPrefix(c.Text, MirrorDirective):
					body := strings.TrimSpace(strings.TrimPrefix(c.Text, MirrorDirective))
					if body == "" || !strings.Contains(body, ".") {
						bad(c.Pos(), "natlevet:mirror needs an import-path-qualified type: //natlevet:mirror path/to/pkg.Type")
					}
				case strings.HasPrefix(c.Text, BackendDirective):
					body := strings.TrimSpace(strings.TrimPrefix(c.Text, BackendDirective))
					if body != "native" {
						bad(c.Pos(), "natlevet:backend declares unknown backend %q (only %q exempts a package; the simulated default needs no directive)", body, "native")
					}
				case strings.HasPrefix(c.Text, PercpuDirective):
					if rest := strings.TrimSpace(strings.TrimPrefix(c.Text, PercpuDirective)); rest != "" {
						bad(c.Pos(), "natlevet:percpu takes no arguments (got %q); it marks the annotated struct as concurrently written", rest)
					}
				case strings.HasPrefix(c.Text, HotpathDirective):
					if rest := strings.TrimSpace(strings.TrimPrefix(c.Text, HotpathDirective)); rest != "" {
						bad(c.Pos(), "natlevet:hotpath takes no arguments (got %q); it marks the annotated function as allocation-free", rest)
					}
				case strings.HasPrefix(c.Text, SeqlockDirective):
					if rest := strings.TrimSpace(strings.TrimPrefix(c.Text, SeqlockDirective)); rest != "" {
						bad(c.Pos(), "natlevet:seqlock takes no arguments (got %q); it marks the annotated function as an optimistic read section", rest)
					}
				case strings.HasPrefix(c.Text, "//natlevet:"):
					bad(c.Pos(), "unknown natlevet directive %q (known: allow, mirror, backend, percpu, hotpath, seqlock)", c.Text)
				}
			}
		}
	}
}

// ExprString renders an expression for receiver matching and
// diagnostics (a thin indirection over types.ExprString so analyzers
// share one normalization).
func ExprString(e ast.Expr) string { return types.ExprString(e) }

// MarkedFuncs collects the functions marked by a function directive
// (HotpathDirective, SeqlockDirective): a directive in a FuncDecl's
// doc comment marks the declaration; a directive on the line of — or
// the line directly above — a func literal's opening `func` marks the
// literal. Directive comments that attach to neither are returned as
// strays for the analyzer to flag.
func MarkedFuncs(fset *token.FileSet, files []*ast.File, directive string) (marked map[ast.Node]bool, strays []token.Pos) {
	marked = make(map[ast.Node]bool)
	used := make(map[*ast.Comment]bool)
	type key struct {
		file string
		line int
	}
	byLine := make(map[key][]*ast.Comment)
	var all []*ast.Comment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine[key{pos.Filename, pos.Line}] = append(byLine[key{pos.Filename, pos.Line}], c)
				all = append(all, c)
			}
		}
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, directive) {
					marked[fd] = true
					used[c] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			pos := fset.Position(lit.Pos())
			for _, line := range []int{pos.Line, pos.Line - 1} {
				for _, c := range byLine[key{pos.Filename, line}] {
					if !used[c] {
						marked[lit] = true
						used[c] = true
					}
				}
			}
			return true
		})
	}
	for _, c := range all {
		if !used[c] {
			strays = append(strays, c.Pos())
		}
	}
	return marked, strays
}

// AtomicFields returns the variables — struct fields, package-level
// vars, and locals — whose address is passed to a sync/atomic function
// somewhere in the files: the words the package treats as atomic.
// atomicsafe uses it to catch plain accesses racing with those
// atomics; falseshare uses it to classify plain-typed fields
// (uint64 counters updated via atomic.AddUint64) as concurrently
// written.
func AtomicFields(info *types.Info, files []*ast.File) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if v := AddrTarget(info, u.X); v != nil {
					out[v] = true
				}
			}
			return true
		})
	}
	return out
}

// AddrTarget resolves the variable an addressable expression is rooted
// in: the field of a selector chain (peeling index expressions), the
// package-level var of a qualified identifier, or a plain local. It
// returns nil for unrooted expressions (function results, literals).
func AddrTarget(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
				v, _ := s.Obj().(*types.Var)
				return v
			}
			v, _ := info.Uses[x.Sel].(*types.Var)
			return v
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// ContainsAtomic reports whether t is, or holds by value, a named type
// from sync/atomic. Pointers, slices, maps, and channels share their
// referent rather than embedding the word, so only named types,
// structs, and arrays propagate.
func ContainsAtomic(t types.Type) bool {
	switch u := types.Unalias(t).(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
		return ContainsAtomic(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if ContainsAtomic(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return ContainsAtomic(u.Elem())
	}
	return false
}
