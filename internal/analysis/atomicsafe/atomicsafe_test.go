package atomicsafe_test

import (
	"testing"

	"natle/internal/analysis/analysistest"
	"natle/internal/analysis/atomicsafe"
)

func TestAtomicsafe(t *testing.T) {
	analysistest.Run(t, "testdata", atomicsafe.Analyzer, "atomics")
}
