// Package atomics is the atomicsafe analyzer fixture: words accessed
// via sync/atomic must never be touched plainly, atomic-bearing values
// must not be copied, and 64-bit words must be 8-aligned under 32-bit
// struct layout.
package atomics

import "sync/atomic"

// counters keeps hits first so the 64-bit word is 8-aligned even under
// 32-bit layout; the mixed-access checks below all concern hits.
type counters struct {
	hits  uint64
	ready uint32
}

func atomicUse(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	atomic.StoreUint32(&c.ready, 1)
}

func plainRead(c *counters) uint64 {
	return c.hits // want `plain read of hits`
}

func plainWrite(c *counters) {
	c.hits = 0 // want `plain write to hits`
	c.hits++   // want `plain \+\+ of hits`
}

func sanctionedAtomics(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits) // the atomic API itself is the point
}

func allowedPlain(c *counters) uint64 {
	return c.hits //natlevet:allow atomicsafe(fixture: single-threaded teardown with a proven happens-before)
}

// words is atomically indexed, so the whole array joins the atomic set;
// len and index-only range read just the constant-length header.
type ring struct {
	words [8]uint64
}

func ringOps(r *ring) uint64 {
	var sum uint64
	for i := range r.words {
		sum += atomic.LoadUint64(&r.words[i])
	}
	_ = len(r.words)
	return sum + r.words[0] // want `plain read of words`
}

// --- copies of atomic-bearing values ---

type gauge struct {
	val atomic.Int64
}

func copyAssign(g *gauge) {
	snapshot := *g // want `copies`
	_ = snapshot
}

func sink(g gauge) {} // want `parameter or result declared by value`

func passByValue(g *gauge) {
	sink(*g) // want `call argument copies`
}

func construct() *gauge {
	g := gauge{} // composite literals construct in place: not a copy
	return &g
}

func rangeCopy(arr *[4]gauge) {
	for _, g := range arr { // want `range value copies`
		_ = g
	}
}

// --- 64-bit alignment under 32-bit layout ---

type misaligned struct {
	flag bool
	n    uint64 // want `not 8-aligned`
}

func bump(m *misaligned) { atomic.AddUint64(&m.n, 1) }

type holder struct {
	pad uint32
	c   counters // want `contains 64-bit words`
}

type aligned64 struct {
	flag bool
	n    atomic.Uint64 // align64: the compiler 8-aligns this everywhere
}

func bump64(a *aligned64) { a.n.Add(1) }
