// Package atomicsafe defines the natlevet analyzer guarding the
// atomic-access discipline of the native backend and the telemetry
// counters. Three failure modes motivate it, none visible to the
// compiler and only probabilistically visible to -race:
//
//   - mixed access: a word updated through sync/atomic in one place
//     and read or written plainly in another races — the plain access
//     can tear, be cached in a register across the atomic update, or
//     be reordered past it. Every access to such a word must go
//     through the atomic API.
//   - copies: a value of (or containing) an atomic.* type that is
//     copied by value forks its state — the copy starts from a
//     snapshot and silently diverges; subsequent "atomic" updates hit
//     the wrong word. go vet's copylocks catches some of these via
//     noCopy; this check also covers structs that embed atomics
//     indirectly and parameters/results declared by value.
//   - alignment: sync/atomic's 64-bit functions fault on 32-bit
//     targets when the word is not 8-aligned. Go only guarantees
//     8-alignment for the first word of an allocation, so a plain
//     uint64/int64 struct field used with atomic.AddUint64 must sit at
//     an 8-aligned offset under 32-bit struct layout (or become an
//     atomic.Uint64, whose align64 marker the compiler honors
//     everywhere).
package atomicsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"natle/internal/analysis"
)

// Analyzer flags plain accesses, copies, and misaligned layouts of
// atomically-accessed words.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsafe",
	Doc: `forbid plain access to atomic words, atomic-value copies, and 64-bit misalignment

A field or variable whose address is passed to a sync/atomic function
must be accessed through sync/atomic everywhere; values containing
atomic.* types must not be copied; plain 64-bit fields accessed
atomically must be 8-aligned under 32-bit struct layout. Sites with a
proven happens-before (single-threaded construction) carry
//natlevet:allow atomicsafe(reason).`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	av := analysis.AtomicFields(pass.TypesInfo, pass.Files)
	checkMixedAccess(pass, av)
	checkCopies(pass)
	checkAlignment(pass, av)
	return nil
}

// --- mixed plain/atomic access ---

// checkMixedAccess flags uses of atomically-accessed variables outside
// the sanctioned forms: the &x argument of a sync/atomic call, len/cap
// (which read only the constant-length header), and index-only range.
func checkMixedAccess(pass *analysis.Pass, av map[*types.Var]bool) {
	if len(av) == 0 {
		return
	}
	for _, f := range pass.Files {
		// Pre-pass: collect expression nodes whose interior uses of an
		// atomic variable are sanctioned, so the main walk can skip
		// them wholesale.
		skip := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					// Taking the address is not a data access; the
					// resulting pointer feeds the atomic API (that is
					// why the word is in the atomic set at all).
					skip[n.X] = true
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
						for _, arg := range n.Args {
							skip[arg] = true
						}
					}
				}
			case *ast.KeyValueExpr:
				// A struct-literal key names the field; it does not
				// read it.
				if id, ok := n.Key.(*ast.Ident); ok {
					skip[id] = true
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					skip[n.X] = true // index-only range reads just the length
				}
			}
			return true
		})
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n != nil && skip[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if v := atomicTarget(pass, av, lhs); v != nil {
						pass.Reportf(lhs.Pos(),
							"plain write to %s, which is accessed via sync/atomic elsewhere in this package: it races with (and can be reordered past) the atomic updates",
							v.Name())
						skip[lhs] = true
					}
				}
			case *ast.IncDecStmt:
				if v := atomicTarget(pass, av, n.X); v != nil {
					pass.Reportf(n.Pos(),
						"plain %s of %s, which is accessed via sync/atomic elsewhere in this package: use atomic.Add instead",
						n.Tok, v.Name())
					skip[n.X] = true
				}
			case *ast.Ident, *ast.SelectorExpr:
				if v := atomicTarget(pass, av, n.(ast.Expr)); v != nil {
					pass.Reportf(n.Pos(),
						"plain read of %s, which is accessed via sync/atomic elsewhere in this package: use the matching atomic.Load",
						v.Name())
					return false
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// atomicTarget reports whether e directly denotes an atomically-
// accessed variable (not merely an expression rooted in one: indexing
// h.counts[i] denotes an element, and the element is the atomic word,
// so indexed roots count; a selector hopping *through* such a field
// does not occur for basic-typed words).
func atomicTarget(pass *analysis.Pass, av map[*types.Var]bool, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		// Uses only: the ident in a declaration (Defs) is the
		// declaration itself, not an access.
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok && av[v] {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[x]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && av[v] {
				return v
			}
		}
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && av[v] {
			return v
		}
	case *ast.IndexExpr:
		return atomicTarget(pass, av, x.X)
	}
	return nil
}

func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// --- copies of atomic-bearing values ---

// containsAtomic is analysis.ContainsAtomic, shared with falseshare.
func containsAtomic(t types.Type) bool { return analysis.ContainsAtomic(t) }

// checkCopies flags value copies of atomic-bearing types: assignments
// and initializations from non-literal sources, call arguments, and
// returns. Composite literals construct in place and are not copies.
func checkCopies(pass *analysis.Pass) {
	if pass.Pkg.Path() == "sync/atomic" {
		return
	}
	copied := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			// Construction in place; a call returning an atomic-bearing
			// value is the callee's declared-result problem.
			return false
		}
		t := pass.TypesInfo.TypeOf(e)
		return t != nil && containsAtomic(t)
	}
	report := func(e ast.Expr, how string) {
		pass.Reportf(e.Pos(),
			"%s copies %s, which contains sync/atomic state: the copy forks the atomic word (share a pointer instead)",
			how, types.TypeString(pass.TypesInfo.TypeOf(ast.Unparen(e)), types.RelativeTo(pass.Pkg)))
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// _ = x discards the value; no copy outlives it.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if copied(rhs) {
						report(rhs, "assignment")
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if copied(v) {
						report(v, "initialization")
					}
				}
			case *ast.CallExpr:
				if isAtomicCall(pass, n) {
					return true // methods/functions of the atomic API itself
				}
				for _, arg := range n.Args {
					if copied(arg) {
						report(arg, "call argument")
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if copied(r) {
						report(r, "return")
					}
				}
			case *ast.FuncType:
				for _, fl := range []*ast.FieldList{n.Params, n.Results} {
					if fl == nil {
						continue
					}
					for _, field := range fl.List {
						if t := pass.TypesInfo.TypeOf(field.Type); t != nil && containsAtomic(t) {
							pass.Reportf(field.Pos(),
								"parameter or result declared by value with type %s, which contains sync/atomic state: every call copies it (pass a pointer)",
								types.TypeString(t, types.RelativeTo(pass.Pkg)))
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypesInfo.TypeOf(n.Value); t != nil && containsAtomic(t) {
						report(n.Value, "range value")
					}
				}
			}
			return true
		})
	}
}

// --- 64-bit alignment on 32-bit targets ---

// sizes32 is the 32-bit struct layout (gc/386): words and max
// alignment are 4 bytes, so a 64-bit field can land 4-aligned.
var sizes32 = types.SizesFor("gc", "386")

// checkAlignment verifies that every plain 64-bit word accessed via
// sync/atomic sits 8-aligned under 32-bit layout, transitively: a
// struct containing such words must itself be placed 8-aligned when
// embedded by value in another struct.
func checkAlignment(pass *analysis.Pass, av map[*types.Var]bool) {
	if len(av) == 0 || sizes32 == nil {
		return
	}
	// needs64 reports whether t holds, by value, a 64-bit word that
	// this package accesses atomically.
	var needs64 func(t types.Type, seen map[types.Type]bool) bool
	needs64 = func(t types.Type, seen map[types.Type]bool) bool {
		t = types.Unalias(t)
		if seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if av[f] && is64(f.Type()) {
					return true
				}
				if needs64(f.Type(), seen) {
					return true
				}
			}
		case *types.Array:
			return needs64(u.Elem(), seen)
		}
		return false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			u, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			fields := make([]*types.Var, u.NumFields())
			for i := range fields {
				fields[i] = u.Field(i)
			}
			offsets := sizes32.Offsetsof(fields)
			for i, fv := range fields {
				direct := av[fv] && is64(fv.Type())
				nested := !direct && needs64(fv.Type(), map[types.Type]bool{})
				if !direct && !nested {
					continue
				}
				if offsets[i]%8 == 0 {
					continue
				}
				what := "is accessed via sync/atomic's 64-bit functions"
				if nested {
					what = "contains 64-bit words accessed via sync/atomic"
				}
				pass.Reportf(fieldPos(st, fv.Name(), ts.Pos()),
					"field %s %s but sits at 32-bit offset %d (not 8-aligned): atomic access faults on 386/arm; move it to the front of the struct or use atomic.Uint64/Int64",
					fv.Name(), what, offsets[i])
			}
			return true
		})
	}
}

func is64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if ok {
		switch b.Kind() {
		case types.Int64, types.Uint64:
			return true
		}
		return false
	}
	if a, ok := t.Underlying().(*types.Array); ok {
		return is64(a.Elem())
	}
	return false
}

// fieldPos locates the declaration of a named field in the struct's
// syntax (falling back to the type position).
func fieldPos(st *ast.StructType, name string, fallback token.Pos) token.Pos {
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				return id.Pos()
			}
		}
	}
	return fallback
}
