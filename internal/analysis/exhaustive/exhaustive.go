// Package exhaustive defines the natlevet analyzer keeping enum
// handling complete as constants are added:
//
//   - a switch over a repo enum (a defined integer/string type with a
//     package-scope constant block, e.g. htm.Code or telemetry.Kind)
//     must either cover every member or carry a default case;
//   - a type declaration carrying //natlevet:mirror path/to/pkg.Type
//     must declare exactly the same constant values as the named type,
//     replacing the older mirrored-array compile assertion
//     (`var _ [other.NumX]struct{} = [numX]struct{}{}`) with a check
//     that also survives value renumbering, not just count drift.
//
// Sentinel constants closing an iota block (numCodes, NumKinds,
// MaxBatch) size arrays; switches need not handle them and mirrors
// compare only real members.
package exhaustive

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"natle/internal/analysis"
	"natle/internal/analysis/enums"
)

// Analyzer flags incomplete enum switches and diverged mirror enums.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: `require enum switches to cover every constant or carry a default

A switch over a defined constant-block type must handle every member
or have a default; //natlevet:mirror on a type asserts value-for-value
correspondence with an enum in another package. Deliberately partial
switches carry //natlevet:allow exhaustive(reason).`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkMirrors(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

// enumType returns the named enum type of a switch tag when the type
// is declared in this module (or the package under analysis, which is
// how fixtures exercise the rule), or nil.
func enumType(pass *analysis.Pass, tag ast.Expr) *types.Named {
	t := pass.TypesInfo.TypeOf(tag)
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil // universe types (error, ...)
	}
	if obj.Pkg() != pass.Pkg && !strings.HasPrefix(obj.Pkg().Path(), "natle") {
		return nil // stdlib and foreign enums are not ours to legislate
	}
	switch named.Underlying().(type) {
	case *types.Basic:
		return named
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	named := enumType(pass, sw.Tag)
	if named == nil {
		return
	}
	members, _ := enums.Members(named.Obj().Pkg(), named)
	if len(members) < 2 {
		return // one constant is a named value, not an enum
	}
	var covered []constant.Value
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default case: partial coverage is deliberate
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage is dynamic, not checkable
			}
			covered = append(covered, tv.Value)
		}
	}
	var missing []string
	for _, m := range members {
		found := false
		for _, v := range covered {
			if constant.Compare(m.Val(), token.EQL, v) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s.%s is missing cases %s: add them or a default case",
			named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// checkMirrors enforces //natlevet:mirror directives: the annotated
// type's constant values must match the target enum's value-for-value.
func checkMirrors(pass *analysis.Pass) {
	inDoc := make(map[*ast.Comment]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if !strings.HasPrefix(c.Text, analysis.MirrorDirective) {
							continue
						}
						inDoc[c] = true
						checkMirror(pass, ts, c)
					}
				}
			}
		}
		// Mirror directives anywhere else silently assert nothing;
		// flag them so the assertion is not imagined to be in force.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, analysis.MirrorDirective) && !inDoc[c] {
					pass.Reportf(c.Pos(),
						"natlevet:mirror must sit in the doc comment of a type declaration to take effect")
				}
			}
		}
	}
}

func checkMirror(pass *analysis.Pass, ts *ast.TypeSpec, c *ast.Comment) {
	body := strings.TrimSpace(strings.TrimPrefix(c.Text, analysis.MirrorDirective))
	dot := strings.LastIndex(body, ".")
	if dot <= 0 || dot == len(body)-1 {
		pass.Reportf(ts.Pos(), "natlevet:mirror needs an import-path-qualified type: //natlevet:mirror path/to/pkg.Type")
		return
	}
	targetPath, targetName := body[:dot], body[dot+1:]

	var target *types.Package
	if pass.Pkg.Path() == targetPath {
		target = pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == targetPath {
			target = imp
		}
	}
	if target == nil {
		pass.Reportf(ts.Pos(), "natlevet:mirror target package %q is not imported by this package", targetPath)
		return
	}
	targetMembers, _, err := enums.Named(target, targetName)
	if err != nil {
		pass.Reportf(ts.Pos(), "natlevet:mirror: %v", err)
		return
	}

	tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	localMembers, _ := enums.Members(pass.Pkg, tn.Type())

	missing := diffValues(targetMembers, localMembers)
	extra := diffValues(localMembers, targetMembers)
	if len(missing) == 0 && len(extra) == 0 {
		return
	}
	var parts []string
	if len(missing) > 0 {
		parts = append(parts, fmt.Sprintf("missing values of %s", strings.Join(missing, ", ")))
	}
	if len(extra) > 0 {
		parts = append(parts, fmt.Sprintf("extra values of %s", strings.Join(extra, ", ")))
	}
	pass.Reportf(ts.Pos(),
		"enum %s does not mirror %s.%s: %s (the two constant blocks must stay value-for-value identical)",
		ts.Name.Name, target.Name(), targetName, strings.Join(parts, "; "))
}

// diffValues returns the names of constants in a whose values have no
// counterpart in b.
func diffValues(a, b []*types.Const) []string {
	var out []string
	for _, ca := range a {
		found := false
		for _, cb := range b {
			if constant.Compare(ca.Val(), token.EQL, cb.Val()) {
				found = true
				break
			}
		}
		if !found {
			out = append(out, ca.Name())
		}
	}
	return out
}
