// Package exhmirror is the mirror-directive fixture: it declares one
// faithful and one diverged mirror of the real telemetry.Code enum.
package exhmirror

import "natle/internal/telemetry"

var _ = telemetry.NumCodes // keep the mirrored package imported

// good mirrors telemetry.Code value-for-value (sentinels exempt).
//
//natlevet:mirror natle/internal/telemetry.Code
type good uint8

const (
	goodNone good = iota
	goodConflict
	goodCapacity
	goodExplicit
	goodLockHeld
	numGood
)

// stale dropped two codes and drifted.
//
//natlevet:mirror natle/internal/telemetry.Code
type stale uint8 // want `does not mirror telemetry.Code`

const (
	staleNone stale = iota
	staleConflict
	staleCapacity
)

//natlevet:mirror nosuch/pkg.Type
type unimported uint8 // want `not imported by this package`

const (
	unimportedA unimported = iota
	unimportedB
)
