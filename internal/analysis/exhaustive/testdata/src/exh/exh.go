// Package exh is the exhaustive analyzer switch fixture: a local enum
// stands in for the repo's (the rule fires for enums defined in the
// package under analysis, exactly as it does for natle/... enums).
package exh

type color uint8

const (
	red color = iota
	green
	blue
	numColors // sentinel: sizes arrays, exempt from switches
)

type mode string

const (
	modeFast mode = "fast"
	modeSafe mode = "safe"
)

func partial(c color) string {
	switch c { // want `missing cases blue`
	case red:
		return "red"
	case green:
		return "green"
	}
	return "?"
}

func full(c color) string {
	switch c {
	case red, green:
		return "warm-ish"
	case blue:
		return "cold"
	}
	return "?"
}

func defaulted(c color) string {
	switch c {
	case red:
		return "red"
	default:
		return "not red"
	}
}

func stringEnum(m mode) bool {
	switch m { // want `missing cases modeSafe`
	case modeFast:
		return true
	}
	return false
}

func sanctioned(c color) string {
	switch c { //natlevet:allow exhaustive(fixture: legacy renderer handles the rest elsewhere)
	case red:
		return "red"
	}
	return "?"
}

// tagless and non-enum switches are out of scope.
func outOfScope(n int, c color) string {
	switch {
	case n > 0:
		return "+"
	}
	switch n {
	case 1:
		return "1"
	}
	var arr [numColors]string
	return arr[c]
}
