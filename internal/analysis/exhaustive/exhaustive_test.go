package exhaustive_test

import (
	"testing"

	"natle/internal/analysis/analysistest"
	"natle/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", exhaustive.Analyzer, "exh", "exhmirror")
}
