package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	for _, tc := range []struct {
		text    string
		want    []Allow
		wantErr string
	}{
		{
			text: "//natlevet:allow determinism(progress timing)",
			want: []Allow{{"determinism", "progress timing"}},
		},
		{
			text: "//natlevet:allow determinism(a, b reasons), hookcost(c)",
			want: []Allow{{"determinism", "a, b reasons"}, {"hookcost", "c"}},
		},
		{text: "//natlevet:allow", wantErr: "names no analyzer"},
		{text: "//natlevet:allow determinism", wantErr: "malformed"},
		{text: "//natlevet:allow determinism()", wantErr: "empty reason"},
		{text: "//natlevet:allow determinism( )", wantErr: "empty reason"},
	} {
		got, err := parseAllow(tc.text)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseAllow(%q) err = %v, want containing %q", tc.text, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseAllow(%q): %v", tc.text, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", tc.text, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseAllow(%q)[%d] = %v, want %v", tc.text, i, got[i], tc.want[i])
			}
		}
	}
}

const directiveSrc = `package p

//natlevet:allow determinism(same line and line below are sanctioned)
var a int

//natlevet:allow unknownanalyzer(reason)
var b int

//natlevet:allow broken
var c int

//natlevet:frobnicate
var d int
`

func TestAllowlistAndLint(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}

	al := BuildAllowlist(fset, files)
	if !al.Allowed("determinism", "p.go", 3) {
		t.Error("directive line itself not allowed")
	}
	if !al.Allowed("determinism", "p.go", 4) {
		t.Error("line below directive not allowed")
	}
	if al.Allowed("determinism", "p.go", 5) {
		t.Error("two lines below directive should not be allowed")
	}
	if al.Allowed("hookcost", "p.go", 4) {
		t.Error("directive must only sanction the named analyzer")
	}

	var diags []Diagnostic
	LintDirectives(fset, files, map[string]bool{"determinism": true},
		func(d Diagnostic) { diags = append(diags, d) })
	wants := []string{"unknown analyzer", "malformed", "unknown natlevet directive"}
	if len(diags) != len(wants) {
		t.Fatalf("LintDirectives produced %d diagnostics, want %d: %v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want containing %q", i, diags[i].Message, w)
		}
	}
}

func TestPackageBackend(t *testing.T) {
	parse := func(src string) []*ast.File {
		t.Helper()
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return []*ast.File{f}
	}
	if got := PackageBackend(parse("package p\n")); got != "" {
		t.Errorf("undeclared backend = %q, want \"\"", got)
	}
	native := parse("//natlevet:backend native\npackage p\n")
	if got := PackageBackend(native); got != "native" {
		t.Errorf("declared backend = %q, want \"native\"", got)
	}

	// Lint: a valid declaration is silent, an unknown backend is not.
	lint := func(src string) []Diagnostic {
		t.Helper()
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		var diags []Diagnostic
		LintDirectives(fset, []*ast.File{f}, nil, func(d Diagnostic) { diags = append(diags, d) })
		return diags
	}
	if diags := lint("//natlevet:backend native\npackage p\n"); len(diags) != 0 {
		t.Errorf("valid backend directive flagged: %v", diags)
	}
	for _, src := range []string{
		"//natlevet:backend quantum\npackage p\n",
		"//natlevet:backend\npackage p\n",
		"//natlevet:backend sim\npackage p\n", // the default needs no directive
	} {
		diags := lint(src)
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown backend") {
			t.Errorf("lint(%q) = %v, want one unknown-backend diagnostic", src, diags)
		}
	}
}
