// Package load type-checks Go packages for the natlevet analyzers
// without golang.org/x/tools (unavailable offline): it shells out to
// `go list -export -deps -json`, which compiles dependencies and hands
// back the compiler's export data, and then parses + type-checks the
// target packages with go/parser and go/types, resolving imports
// through go/importer's gc lookup mode. This is the same strategy
// x/tools' go/packages uses in NeedExportFile mode, reduced to what
// the analyzers need: syntax, types.Info, and the *types.Package.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked target package.
type Package struct {
	// PkgPath is the import path (for fixtures, the package name).
	PkgPath string
	// Dir is the directory holding the source files.
	Dir string
	// GoFiles are the non-test source files, absolute paths.
	GoFiles []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listed is the subset of `go list -json` output the loader consumes.
type listed struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *listError
}

// listError is go list's structured per-package error (-e mode).
type listError struct {
	Err string
}

// run executes one go command in dir and returns stdout, folding
// stderr into the error.
func run(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	return out, nil
}

// list invokes `go list -export -deps -json` on the patterns and
// decodes the stream.
func list(dir string, patterns []string) ([]listed, error) {
	// -e keeps go list from dying on the first broken package so every
	// package's structured Error can be surfaced with its import path.
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	out, err := run(dir, args...)
	if err != nil {
		return nil, err
	}
	var pkgs []listed
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listed
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			return pkgs, nil
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
}

// exportLookup adapts an import-path → export-file map to the lookup
// signature go/importer's gc mode expects.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) ([]*ast.File, *types.Package, *types.Info, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		syntax = append(syntax, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return syntax, pkg, info, nil
}

// Packages loads and type-checks the packages matching the go-list
// patterns, rooted at dir (any directory inside the module). Only
// non-test GoFiles are loaded — the analyzers check shipped code, and
// test files are free to use wall clocks and recover.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := list(dir, patterns)
	if err != nil {
		return nil, err
	}
	// A package the go tool cannot load or compile must fail the lint
	// run, not silently vanish from it: a tree that does not build has
	// no analyzable invariants, and a skipped package reads as clean.
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, strings.TrimSpace(p.Error.Err))
		}
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	matched := 0
	for _, p := range pkgs {
		if !p.DepOnly {
			matched++
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("patterns %v matched no packages", patterns)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, g := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, g))
		}
		syntax, tpkg, info, err := check(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			PkgPath: p.ImportPath, Dir: p.Dir, GoFiles: files,
			Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// One returns the single package matching pattern.
func One(dir, pattern string) (*Package, error) {
	pkgs, err := Packages(dir, pattern)
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("pattern %q matched %d packages, want 1", pattern, len(pkgs))
	}
	return pkgs[0], nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Fixture loads the .go files of dir as one package. The directory is
// typically an analysistest testdata tree, invisible to the go tool,
// so the files are enumerated directly; their imports (standard
// library and module-internal alike) are resolved through the
// enclosing module's export data, which lets fixtures import the real
// natle/internal/... packages instead of hand-written stubs.
func Fixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)

	// Pre-parse (imports only) to learn what must be resolved.
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	pkgName := ""
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		pkgName = f.Name.Name
		for _, spec := range f.Imports {
			importSet[spec.Path.Value[1:len(spec.Path.Value)-1]] = true
		}
	}

	exports := make(map[string]string)
	if len(importSet) > 0 {
		root, err := moduleRoot(dir)
		if err != nil {
			return nil, err
		}
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := list(root, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	fset = token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	syntax, tpkg, info, err := check(fset, pkgName, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: pkgName, Dir: dir, GoFiles: files,
		Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info,
	}, nil
}
