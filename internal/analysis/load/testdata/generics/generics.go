// Package generics exercises the loader's export-data path for
// generic functions: telemetry.Sub and telemetry.Add are instantiated
// here, so go/importer must reconstruct their type parameters from the
// compiler's export data rather than from source. gc export data has
// grown new layouts for generics across Go releases; this fixture
// pins the loader against regressions when the toolchain moves.
package generics

import "natle/internal/telemetry"

type snap struct {
	Ops uint64
	Lat telemetry.HistogramSnapshot
}

func delta(a, b snap) snap { return telemetry.Sub(a, b) }

func merge(a, b snap) snap { return telemetry.Add(a, b) }
