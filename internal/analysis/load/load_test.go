package load_test

import (
	"go/types"
	"strings"
	"testing"

	"natle/internal/analysis/load"
)

// TestFixtureResolvesGenericExportData loads a fixture that
// instantiates telemetry.Sub and telemetry.Add — generic functions
// whose signatures must come out of the compiler's export data. The
// gc export format for generics has changed between Go releases, so
// this is the canary for toolchain bumps breaking the offline loader.
func TestFixtureResolvesGenericExportData(t *testing.T) {
	pkg, err := load.Fixture("testdata/generics")
	if err != nil {
		t.Fatalf("Fixture: %v", err)
	}
	for _, name := range []string{"delta", "merge"} {
		obj := pkg.Types.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("fixture lost %q during type-checking", name)
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Results().Len() != 1 {
			t.Fatalf("%s has type %v, want a single-result func", name, obj.Type())
		}
		if got := sig.Results().At(0).Type().String(); !strings.HasSuffix(got, ".snap") {
			t.Fatalf("%s returns %s, want the instantiated snap type", name, got)
		}
	}

	// The imported generic declarations themselves must carry their
	// type parameters: a loader that silently degraded them to
	// non-generic stubs would still type-check trivial uses.
	var telem *types.Package
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "natle/internal/telemetry" {
			telem = imp
		}
	}
	if telem == nil {
		t.Fatal("fixture did not import natle/internal/telemetry")
	}
	for _, name := range []string{"Sub", "Add"} {
		fn, ok := telem.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("telemetry.%s missing from export data", name)
		}
		if fn.Signature().TypeParams().Len() != 1 {
			t.Errorf("telemetry.%s lost its type parameter: %v", name, fn.Signature())
		}
	}
}

// TestPackagesLoadsRealPackage is the end-to-end smoke test of the
// go-list pattern path the natlevet multichecker uses.
func TestPackagesLoadsRealPackage(t *testing.T) {
	pkg, err := load.One(".", "natle/internal/vtime")
	if err != nil {
		t.Fatalf("One: %v", err)
	}
	if pkg.PkgPath != "natle/internal/vtime" {
		t.Fatalf("loaded %q, want natle/internal/vtime", pkg.PkgPath)
	}
	if len(pkg.Syntax) == 0 || pkg.TypesInfo == nil {
		t.Fatal("package loaded without syntax or type info")
	}
}

// TestPackagesFailsLoudlyOnBadPattern guards the loader hardening: a
// pattern the go tool cannot resolve must fail the run, not silently
// lint zero packages and report a clean tree.
func TestPackagesFailsLoudlyOnBadPattern(t *testing.T) {
	if _, err := load.Packages(".", "./no/such/dir"); err == nil {
		t.Fatal("Packages succeeded on a nonexistent pattern")
	}
	if _, err := load.Packages(".", "natle/internal/does-not-exist"); err == nil {
		t.Fatal("Packages succeeded on a nonexistent import path")
	}
}
