// Package halloc is the hotalloc analyzer fixture: functions marked
// //natlevet:hotpath must be free of heap-allocating constructs;
// unmarked functions may allocate freely.
package halloc

import (
	"fmt"
	"sync"

	"natle/internal/telemetry"
	"natle/internal/vtime"
)

type pair struct{ a, b uint64 }

//natlevet:hotpath
func makes(n int) []uint64 {
	return make([]uint64, n) // want `make allocates`
}

//natlevet:hotpath
func news() *uint64 {
	return new(uint64) // want `new allocates`
}

//natlevet:hotpath
func appends(dst []uint64, v uint64) []uint64 {
	return append(dst, v) // want `append may grow`
}

//natlevet:hotpath
func formats(v uint64) {
	fmt.Println(v) // want `fmt call allocates`
}

//natlevet:hotpath
func closes(base uint64) func() uint64 {
	return func() uint64 { return base } // want `function literal allocates a closure`
}

//natlevet:hotpath
func spawns(f func()) {
	go f() // want `go statement allocates`
}

//natlevet:hotpath
func concats(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//natlevet:hotpath
func escapes() *pair {
	return &pair{1, 2} // want `&composite literal escapes`
}

//natlevet:hotpath
func slices() []uint64 {
	return []uint64{1, 2} // want `slice literal allocates`
}

//natlevet:hotpath
func stringifies(b []byte) string {
	return string(b) // want `conversion copies and allocates`
}

//natlevet:hotpath
func boxes(v uint64) any {
	return v // want `interface conversion of uint64 allocates`
}

//natlevet:hotpath
func boxarg(v pair) {
	eat(v) // want `interface conversion of pair allocates`
}

//natlevet:hotpath
func boxptr(p *pair) any {
	return p // pointer-shaped: the word is the box, no allocation
}

type signal struct{}

//natlevet:hotpath
func aborts() {
	panic(signal{}) // zero-size: shares the runtime's zerobase
}

// deferred closures are open-coded onto the stack; the body is still
// hot-path code, so the fmt call inside is flagged.
//
//natlevet:hotpath
func deferred(mu *sync.Mutex, v uint64) {
	mu.Lock()
	defer func() {
		mu.Unlock()
		fmt.Println(v) // want `fmt call allocates`
	}()
}

// observe leans on a real internal hot hook: recording into a
// telemetry histogram must not allocate, and does not.
//
//natlevet:hotpath
func observe(h *telemetry.Histogram, d vtime.Duration) {
	h.Observe(d)
}

//natlevet:hotpath
func allowed(n int) []uint64 {
	return make([]uint64, n) //natlevet:allow hotalloc(fixture: one-time warmup before the steady-state loop)
}

// hot function literals are marked by the directive on the line above
// their binding.
//
//natlevet:hotpath
var hotLit = func(n int) []uint64 {
	return make([]uint64, n) // want `make allocates`
}

// coldPath is unmarked: allocations are fine here.
func coldPath(n int) []uint64 {
	return append(make([]uint64, 0, n), 1)
}

func eat(any) {}
