package hotalloc_test

import (
	"testing"

	"natle/internal/analysis/analysistest"
	"natle/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "halloc")
}
