// Package hotalloc defines the natlevet analyzer keeping marked hot
// paths allocation-free. The native backend's elided fast path, the
// telemetry record hooks, and the service dequeue loop run millions of
// times per benchmark window; a single heap allocation on one of them
// does not just cost the allocation — it drags the garbage collector
// into the measurement, adds write-barrier traffic to exactly the
// cache lines the experiment is counting, and turns a nanosecond-scale
// seqlock attempt into a malloc benchmark. Escape analysis is silent
// about all of this, so the discipline is declared: functions marked
// //natlevet:hotpath must contain no heap-allocating construct.
//
// Flagged constructs: make/new/append, fmt calls, non-constant string
// concatenation, string<->[]byte/[]rune conversions, slice and map
// literals, &composite literals, closures (function literals), go
// statements, implicit variadic argument slices, and interface
// conversions of non-pointer-shaped, non-zero-size, non-constant
// values. Two shapes are exempt because the compiler provably keeps
// them off the heap: the closure of an immediately-deferred call
// (open-coded defers live on the stack) and interface conversions of
// zero-size or pointer-shaped values (no convT box is materialized).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"natle/internal/analysis"
)

// Analyzer flags heap-allocating constructs in //natlevet:hotpath
// functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: `forbid heap-allocating constructs in //natlevet:hotpath functions

Hot paths (the native seqlock attempt path, telemetry record hooks,
the service dequeue loop) must not allocate: no make/new/append, fmt,
string building, slice/map/&composite literals, closures, go
statements, or boxing interface conversions. One-time setup that must
stay in a marked function carries //natlevet:allow hotalloc(reason).`,
	Run: run,
}

var sizes = types.SizesFor("gc", "amd64")

func run(pass *analysis.Pass) error {
	marked, strays := analysis.MarkedFuncs(pass.Fset, pass.Files, analysis.HotpathDirective)
	for _, pos := range strays {
		pass.Reportf(pos, "%s is not attached to a function declaration or literal", analysis.HotpathDirective)
	}
	for n := range marked {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				continue
			}
			sig, _ := pass.TypesInfo.ObjectOf(fn.Name).Type().(*types.Signature)
			check(pass, fn.Name.Name, sig, fn.Body)
		case *ast.FuncLit:
			sig, _ := pass.TypesInfo.TypeOf(fn).(*types.Signature)
			check(pass, "hot function literal", sig, fn.Body)
		}
	}
	return nil
}

func check(pass *analysis.Pass, name string, sig *types.Signature, body *ast.BlockStmt) {
	c := &checker{pass: pass, name: name, sig: sig,
		exemptLit: make(map[*ast.FuncLit]bool),
		handled:   make(map[ast.Node]bool),
	}
	ast.Inspect(body, c.inspect)
}

type checker struct {
	pass      *analysis.Pass
	name      string
	sig       *types.Signature
	exemptLit map[*ast.FuncLit]bool // immediately-deferred closures: open-coded, stack-allocated
	handled   map[ast.Node]bool     // nodes a parent already reported or sanctioned
}

func (c *checker) report(n ast.Node, what string) {
	c.pass.Reportf(n.Pos(), "hot path %s: %s", c.name, what)
}

func (c *checker) inspect(n ast.Node) bool {
	if n == nil || c.handled[n] {
		return !c.handled[n]
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			// Open-coded defer: the closure lives on the stack. Its
			// body still runs before the hot path returns, so it is
			// checked — against its own signature.
			c.exemptLit[lit] = true
			saved := c.sig
			c.sig, _ = c.pass.TypesInfo.TypeOf(lit).(*types.Signature)
			ast.Inspect(lit.Body, c.inspect)
			c.sig = saved
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, c.inspect)
			}
			return false
		}
		return true

	case *ast.GoStmt:
		c.report(n, "go statement allocates a goroutine and its closure")
		return false

	case *ast.FuncLit:
		if c.exemptLit[n] {
			return false // body already walked by the defer carve-out
		}
		c.report(n, "function literal allocates a closure; hoist it out of the hot path")
		return false

	case *ast.CallExpr:
		return c.call(n)

	case *ast.UnaryExpr:
		if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND {
			c.report(n, "&composite literal escapes to the heap")
			c.handled[lit] = true // don't re-flag a slice/map literal under the &
		}
		return true

	case *ast.CompositeLit:
		switch c.typeOf(n).Underlying().(type) {
		case *types.Slice:
			c.report(n, "slice literal allocates its backing array")
		case *types.Map:
			c.report(n, "map literal allocates")
		}
		return true

	case *ast.BinaryExpr:
		if n.Op == token.ADD && !c.isConst(n) {
			if b, ok := c.typeOf(n).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				c.report(n, "non-constant string concatenation allocates")
				return false // one finding per concat chain
			}
		}
		return true

	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, rhs := range n.Rhs {
				c.ifaceConv(rhs, c.typeOf(n.Lhs[i]))
			}
		}
		return true

	case *ast.ValueSpec:
		if n.Type != nil {
			for _, v := range n.Values {
				c.ifaceConv(v, c.typeOf(n.Type))
			}
		}
		return true

	case *ast.ReturnStmt:
		if c.sig != nil && c.sig.Results().Len() == len(n.Results) {
			for i, r := range n.Results {
				c.ifaceConv(r, c.sig.Results().At(i).Type())
			}
		}
		return true

	case *ast.SendStmt:
		if t := chanElem(c.typeOf(n.Chan)); t != nil {
			c.ifaceConv(n.Value, t)
		}
		return true
	}
	return true
}

// call classifies one call expression: builtins, conversions, fmt,
// variadic slices, and boxing argument conversions.
func (c *checker) call(call *ast.CallExpr) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call, "make allocates; preallocate outside the hot path")
			case "new":
				c.report(call, "new allocates; preallocate outside the hot path")
			case "append":
				c.report(call, "append may grow and reallocate; preallocate capacity outside the hot path")
			case "panic":
				if len(call.Args) == 1 {
					c.ifaceConv(call.Args[0], nil)
				}
			}
			return true
		}
	}

	// Conversions: string <-> []byte/[]rune copy their contents.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type.Underlying(), c.typeOf(call.Args[0]).Underlying()
		if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
			c.report(call, "string/slice conversion copies and allocates")
		}
		return true
	}

	// fmt: every call formats through reflection and allocates.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.report(call, "fmt call allocates (and formats through reflection)")
			return false
		}
	}

	sig, ok := c.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == 0 {
		fixed := params.Len() - 1
		if len(call.Args) > fixed {
			c.report(call, "call to a variadic function allocates the argument slice")
			return true
		}
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || !sig.Variadic():
			if i < params.Len() {
				pt = params.At(i).Type()
			}
		case call.Ellipsis == 0:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		default:
			pt = params.At(params.Len() - 1).Type()
		}
		if pt != nil {
			c.ifaceConv(arg, pt)
		}
	}
	return true
}

// ifaceConv reports e when converting it to target (an interface, or
// nil for panic's any) materializes a heap box: non-interface,
// non-constant, non-zero-size, non-pointer-shaped operands do.
func (c *checker) ifaceConv(e ast.Expr, target types.Type) {
	if target != nil {
		if _, ok := target.Underlying().(*types.Interface); !ok {
			return
		}
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return // constants are materialized in read-only data
	}
	et := tv.Type
	if et == nil {
		return
	}
	switch u := et.Underlying().(type) {
	case *types.Interface:
		return // already boxed
	case *types.Basic:
		if u.Kind() == types.UntypedNil {
			return
		}
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: the word is the box
	}
	if sizes != nil && sizes.Sizeof(et) == 0 {
		return // zero-size values share the runtime's zerobase
	}
	c.report(e, "interface conversion of "+types.TypeString(et, types.RelativeTo(c.pass.Pkg))+" allocates the box")
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if t := c.pass.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func (c *checker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func chanElem(t types.Type) types.Type {
	if ch, ok := t.Underlying().(*types.Chan); ok {
		return ch.Elem()
	}
	return nil
}
