package hookcost_test

import (
	"testing"

	"natle/internal/analysis/analysistest"
	"natle/internal/analysis/hookcost"
)

func TestHookcost(t *testing.T) {
	analysistest.Run(t, "testdata", hookcost.Analyzer, "hook")
}
