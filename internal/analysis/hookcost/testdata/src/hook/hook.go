// Package hook is the hookcost analyzer fixture: fault.Injector calls
// must be nil-guarded, telemetry.Recorder fields must be Nop-defaulted
// (or guarded), and the recognized guard shapes must all pass.
package hook

import (
	"natle/internal/fault"
	"natle/internal/sim"
	"natle/internal/telemetry"
)

type substrate struct {
	inj fault.Injector
	rec telemetry.Recorder
}

// newSubstrate Nop-defaults rec, which sanctions every unguarded call
// through the field in this package.
func newSubstrate() *substrate {
	return &substrate{rec: telemetry.Nop()}
}

func (s *substrate) unguarded(c *sim.Ctx) {
	s.inj.TxStart(c) // want `not dominated by a nil check`
}

func (s *substrate) guarded(c *sim.Ctx) {
	if s.inj != nil {
		s.inj.TxStart(c)
	}
	s.rec.RegisterLock("fine: rec is Nop-defaulted")
}

func (s *substrate) guardedConjunct(c *sim.Ctx, hot bool) {
	if hot && s.inj != nil {
		s.inj.TxStart(c)
	}
}

func (s *substrate) earlyBail(c *sim.Ctx) {
	if s.inj == nil {
		return
	}
	s.inj.TxStart(c)
}

func (s *substrate) earlyBailDisjunct(c *sim.Ctx, cold bool) {
	if s.inj == nil || cold {
		return
	}
	s.inj.TxStart(c)
}

func (s *substrate) elseBranch(c *sim.Ctx) {
	if s.inj == nil {
		_ = c
	} else {
		s.inj.TxStart(c)
	}
}

func (s *substrate) localBinding(c *sim.Ctx) {
	inj := s.inj
	if inj != nil {
		inj.TxStart(c)
	}
	wrong := s.inj
	if inj != nil {
		wrong.TxStart(c) // want `not dominated by a nil check`
	}
}

// callReceiver cannot be guarded syntactically: the analyzer pushes
// call sites to bind the hook to a local first.
func (s *substrate) callReceiver(c *sim.Ctx) {
	s.injector().TxStart(c) // want `not dominated by a nil check`
}

func (s *substrate) injector() fault.Injector { return s.inj }

type bare struct {
	rec telemetry.Recorder // no Nop default anywhere in the package
}

func (b *bare) emit() {
	b.rec.RegisterLock("boom") // want `neither defaulted to telemetry.Nop`
}

func (b *bare) emitGuarded() {
	if b.rec != nil {
		b.rec.RegisterLock("checked is acceptable too")
	}
}

func (s *substrate) sanctioned(c *sim.Ctx) {
	s.inj.TxStart(c) //natlevet:allow hookcost(fixture: caller contract guarantees an installed injector)
}
