// Package hookcost defines the natlevet analyzer preserving the
// zero-cost-when-disabled contract of the observability hooks:
//
//   - fault.Injector fields are nil when injection is off (the
//     hot-path default), so every call through an Injector-typed
//     expression must be dominated by a nil check — both to avoid a
//     nil-interface panic and to keep the disabled cost at one pointer
//     comparison;
//   - telemetry.Recorder fields are never nil: holders default them to
//     telemetry.Nop() (whose empty methods devirtualize to nothing),
//     so a Recorder field may be called unguarded only if its package
//     visibly establishes the Nop default (a composite-literal entry
//     or assignment of telemetry.Nop()); a field with neither the
//     default nor a nil check is one forgotten constructor away from a
//     panic.
//
// The guard analysis is syntactic domination: the call must sit inside
// `if x != nil { ... }` (or the else of an == nil), or follow an
// `if x == nil { return/... }` early bail in an enclosing block, where
// x prints identically to the call's receiver expression. Binding the
// hook to a local first (inj := s.Injector(); if inj != nil { ... })
// is the idiom the analyzer pushes call sites toward.
package hookcost

import (
	"go/ast"
	"go/token"
	"go/types"

	"natle/internal/analysis"
)

// Analyzer enforces nil-guarded fault hooks and Nop-defaulted
// telemetry recorders.
var Analyzer = &analysis.Analyzer{
	Name: "hookcost",
	Doc: `require nil checks around fault.Injector calls and Nop defaults for telemetry.Recorder fields

With no injector installed the fault hooks must cost one pointer
comparison; with telemetry off the Recorder must be telemetry.Nop(),
never nil. Calls that violate either pattern panic when the subsystem
is disabled and erode the zero-cost contract. Call sites with an
out-of-band guarantee carry //natlevet:allow hookcost(reason).`,
	Run: run,
}

const (
	faultPath     = "natle/internal/fault"
	telemetryPath = "natle/internal/telemetry"
)

// isNamedInterface reports whether t is the named interface pkgPath.name.
func isNamedInterface(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == faultPath || pass.Pkg.Path() == telemetryPath {
		return nil // the packages defining the hooks trade in them freely
	}
	nopDefaulted := nopDefaultedFields(pass)
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			recv := sel.X
			rt := pass.TypesInfo.TypeOf(recv)
			if rt == nil {
				return
			}
			switch {
			case isNamedInterface(rt, faultPath, "Injector"):
				if !guarded(stack, n, analysis.ExprString(recv)) {
					pass.Reportf(call.Pos(),
						"call through fault.Injector %q is not dominated by a nil check: with no injector installed this panics, and the hook is no longer one pointer comparison (bind to a local and guard with != nil)",
						analysis.ExprString(recv))
				}
			case isNamedInterface(rt, telemetryPath, "Recorder"):
				fieldVar := fieldOf(pass, recv)
				if fieldVar == nil {
					return // locals/params/results follow the holder's contract
				}
				if nopDefaulted[fieldVar] {
					return
				}
				if !guarded(stack, n, analysis.ExprString(recv)) {
					pass.Reportf(call.Pos(),
						"telemetry.Recorder field %q is neither defaulted to telemetry.Nop() in this package nor nil-checked here: the zero-cost contract wants Nop, not nil",
						analysis.ExprString(recv))
				}
			}
		})
	}
	return nil
}

// fieldOf returns the struct field a selector expression denotes, or
// nil if e is not a field selection.
func fieldOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// nopDefaultedFields collects Recorder-typed fields that this package
// visibly initializes with telemetry.Nop(): a composite-literal entry
// {rec: telemetry.Nop()} or an assignment x.rec = telemetry.Nop().
func nopDefaultedFields(pass *analysis.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := pass.TypesInfo.Uses[key].(*types.Var)
					if ok && v.IsField() && isNopCall(pass, kv.Value) {
						out[v] = true
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if v := fieldOf(pass, lhs); v != nil && isNopCall(pass, n.Rhs[i]) {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// isNopCall reports whether e is a call to telemetry.Nop.
func isNopCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == telemetryPath && fn.Name() == "Nop"
}

// inspectWithStack is ast.Inspect with the ancestor stack (outermost
// first, excluding n itself) passed to the callback.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// guarded reports whether the node (with its ancestor stack) is
// dominated by a nil check on the expression printing as estr.
func guarded(stack []ast.Node, node ast.Node, estr string) bool {
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.IfStmt:
			if child == p.Body && condConjunctNonNil(p.Cond, estr) {
				return true
			}
			if child == p.Else && condDisjunctNil(p.Cond, estr) {
				return true
			}
		case *ast.BlockStmt:
			if bailedBefore(p.List, child, estr) {
				return true
			}
		case *ast.CaseClause:
			if bailedBefore(p.Body, child, estr) {
				return true
			}
		case *ast.CommClause:
			if bailedBefore(p.Body, child, estr) {
				return true
			}
		}
		child = stack[i]
	}
	return false
}

// bailedBefore reports whether a statement preceding child in stmts is
// an early bail of the form `if estr == nil { return/break/... }`.
func bailedBefore(stmts []ast.Stmt, child ast.Node, estr string) bool {
	for _, s := range stmts {
		if s == child {
			return false
		}
		ifs, ok := s.(*ast.IfStmt)
		if ok && ifs.Else == nil && terminates(ifs.Body) && condDisjunctNil(ifs.Cond, estr) {
			return true
		}
	}
	return false
}

// condConjunctNonNil reports whether cond being true implies
// estr != nil: the condition contains `estr != nil` as an &&-conjunct.
func condConjunctNonNil(cond ast.Expr, estr string) bool {
	cond = ast.Unparen(cond)
	if b, ok := cond.(*ast.BinaryExpr); ok {
		switch b.Op {
		case token.LAND:
			return condConjunctNonNil(b.X, estr) || condConjunctNonNil(b.Y, estr)
		case token.NEQ:
			return isNilCompare(b, estr)
		}
	}
	return false
}

// condDisjunctNil reports whether cond being false implies
// estr != nil: the condition contains `estr == nil` as an ||-disjunct.
func condDisjunctNil(cond ast.Expr, estr string) bool {
	cond = ast.Unparen(cond)
	if b, ok := cond.(*ast.BinaryExpr); ok {
		switch b.Op {
		case token.LOR:
			return condDisjunctNil(b.X, estr) || condDisjunctNil(b.Y, estr)
		case token.EQL:
			return isNilCompare(b, estr)
		}
	}
	return false
}

// isNilCompare reports whether b compares the expression printing as
// estr against nil.
func isNilCompare(b *ast.BinaryExpr, estr string) bool {
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilIdent(y) {
		return analysis.ExprString(x) == estr
	}
	if isNilIdent(x) {
		return analysis.ExprString(y) == estr
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block visibly ends the enclosing
// control flow: return, branch (break/continue/goto), panic, or a
// nested block that terminates.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(last)
	}
	return false
}
