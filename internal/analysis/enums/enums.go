// Package enums extracts the constant members of a Go "enum" — a
// defined type with a block of typed constants — from type-checker
// data. It is the shared substrate of the exhaustive analyzer and of
// tests that assert runtime registries cover every declared constant
// (the scheme registry's LockKind coverage test), replacing the older
// pattern of re-parsing source files with go/parser and pattern
// matching on the AST.
package enums

import (
	"fmt"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// sentinelPrefixes mark length/bound constants that close an iota
// block (numCodes, NumKinds, MaxBatch, ...). They size arrays; they
// are not values a switch should handle.
var sentinelPrefixes = []string{"num", "Num", "max", "Max"}

// IsSentinel reports whether a constant name looks like an iota-block
// terminator rather than an enum member.
func IsSentinel(name string) bool {
	for _, p := range sentinelPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Members returns the constants of type t declared at package scope in
// pkg, split into enum members and sentinels, in declaration order.
func Members(pkg *types.Package, t types.Type) (members, sentinels []*types.Const) {
	scope := pkg.Scope()
	var all []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			continue
		}
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Pos() < all[j].Pos() })
	for _, c := range all {
		if IsSentinel(c.Name()) {
			sentinels = append(sentinels, c)
		} else {
			members = append(members, c)
		}
	}
	return members, sentinels
}

// Named looks up the defined type called typeName in pkg and returns
// its enum members, requiring at least one.
func Named(pkg *types.Package, typeName string) (members, sentinels []*types.Const, err error) {
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		return nil, nil, fmt.Errorf("%s has no type %s", pkg.Path(), typeName)
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil, fmt.Errorf("%s.%s is %T, not a type", pkg.Path(), typeName, obj)
	}
	members, sentinels = Members(pkg, tn.Type())
	if len(members) == 0 {
		return nil, nil, fmt.Errorf("%s.%s has no constants: not an enum", pkg.Path(), typeName)
	}
	return members, sentinels, nil
}

// StringValues returns the string value of each constant; it errors if
// any member is not of string kind.
func StringValues(consts []*types.Const) ([]string, error) {
	var out []string
	for _, c := range consts {
		if c.Val().Kind() != constant.String {
			return nil, fmt.Errorf("constant %s is %v, not a string", c.Name(), c.Val().Kind())
		}
		out = append(out, constant.StringVal(c.Val()))
	}
	return out, nil
}
