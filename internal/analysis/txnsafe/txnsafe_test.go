package txnsafe_test

import (
	"testing"

	"natle/internal/analysis/analysistest"
	"natle/internal/analysis/txnsafe"
)

func TestTxnsafe(t *testing.T) {
	analysistest.Run(t, "testdata", txnsafe.Analyzer, "txn", "txnnative")
}
