// Package txn is the txnsafe analyzer fixture. It imports the real
// htm and tle packages (resolved through the module's export data) so
// the matcher is exercised against the true Try/Critical signatures.
package txn

import (
	"natle/internal/htm"
	"natle/internal/sim"
	"natle/internal/tle"
)

func unsafeBody(sys *htm.System, c *sim.Ctx, ch chan int) {
	sys.Try(c, func() {
		defer func() {
			recover() // want `swallow the AbortSignal`
		}()
		go work()      // want `go statement`
		ch <- 1        // want `channel send`
		<-ch           // want `channel receive`
		close(ch)      // want `close of a channel`
		select {}      // want `select`
		for range ch { // want `range over a channel`
			work()
		}
	})
}

func unsafeCritical(l *tle.Lock, c *sim.Ctx, done chan struct{}) {
	l.Critical(c, func() {
		done <- struct{}{} // want `channel send`
	})
}

func safeBody(sys *htm.System, c *sim.Ctx) {
	sys.Try(c, func() {
		work()
		for i := 0; i < 3; i++ {
			work()
		}
	})
}

// outsideBody shows the same operations are legal outside transaction
// bodies: the analyzer legislates only the abortable region.
func outsideBody(ch chan int) {
	go work()
	ch <- 1
	close(ch)
}

func allowedProbe(sys *htm.System, c *sim.Ctx) {
	sys.Try(c, func() {
		defer func() {
			recover() //natlevet:allow txnsafe(fixture: testing the unwind machinery itself)
		}()
		work()
	})
}

func work() {}
