// Package txnnative is the backend-gating fixture: the package-level
// directive below declares it a native-backend package, so operations
// that would be unwind-unsafe in simulated transaction bodies (see the
// txn fixture, which stays strict) must produce no diagnostics here.
// There are deliberately no want comments in this file.
//
//natlevet:backend native
package txnnative

import (
	"natle/internal/sim"
	"natle/internal/tle"
)

func nativeStyleBody(l *tle.Lock, c *sim.Ctx, ch chan int) {
	l.Critical(c, func() {
		defer func() { recover() }()
		go func() { ch <- 1 }()
		<-ch
	})
}
