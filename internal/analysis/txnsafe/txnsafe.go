// Package txnsafe defines the natlevet analyzer guarding the abort
// unwind of transaction bodies. htm.System.Try runs its body func and
// unwinds aborts by panicking with an htm.AbortSignal, which Try
// recovers; the elision layers (tle/natle/cohort Lock.Critical) build
// on the same mechanism. Inside such a body:
//
//   - recover() can swallow the AbortSignal, turning an aborted
//     attempt into a silently half-executed critical section;
//   - a go statement escapes the abortable region — the goroutine's
//     effects survive an abort that was supposed to discard them, and
//     the simulator's cooperative scheduler never runs real
//     goroutines deterministically anyway;
//   - channel operations (send, receive, select, close, range-over-
//     channel) block or publish state across a region that may be
//     re-executed an arbitrary number of times.
package txnsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"natle/internal/analysis"
)

// Analyzer flags unwind-unsafe operations in transaction bodies.
var Analyzer = &analysis.Analyzer{
	Name: "txnsafe",
	Doc: `forbid recover, go, and channel operations in transaction bodies

Closures passed to htm.System.Try or to the Critical methods of the
lock-elision layers unwind via an AbortSignal panic and may be re-run
any number of times; recover(), go statements, and channel operations
break that contract. Bodies that deliberately probe the unwind (tests
of the machinery itself) carry //natlevet:allow txnsafe(reason).`,
	Run: run,
}

// helperPkgs are the packages whose Try/Critical methods accept a
// transaction body.
var helperPkgs = map[string]bool{
	"natle/internal/htm":    true,
	"natle/internal/tle":    true,
	"natle/internal/natle":  true,
	"natle/internal/cohort": true,
}

// bodyMethods are the method names whose func() arguments are
// transaction bodies.
var bodyMethods = map[string]bool{"Try": true, "Critical": true}

func run(pass *analysis.Pass) error {
	if analysis.PackageBackend(pass.Files) == "native" {
		// Native critical sections unwind through their own recover
		// (internal/native's abortSignal) and run real goroutines by
		// design; the sim unwind contract does not apply.
		return nil
	}
	reported := make(map[token.Pos]bool) // dedup when bodies nest
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !bodyMethods[fn.Name()] || !helperPkgs[fn.Pkg().Path()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok || !isBodyFunc(pass.TypesInfo.TypeOf(lit)) {
					continue
				}
				checkBody(pass, lit.Body, reported)
			}
			return true
		})
	}
	return nil
}

// isBodyFunc reports whether t is func() — the transaction-body shape.
func isBodyFunc(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func checkBody(pass *analysis.Pass, body ast.Node, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement inside a transaction body: the goroutine escapes the abortable region and its effects survive an AbortSignal unwind")
		case *ast.SendStmt:
			report(n.Pos(), "channel send inside a transaction body: it publishes state from a region that may be unwound and re-executed")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive inside a transaction body: it can block and consumes state from a region that may be unwound and re-executed")
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select inside a transaction body: channel operations break the AbortSignal unwind contract")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Pos(), "range over a channel inside a transaction body: it can block across an abortable region")
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "recover":
						report(n.Pos(), "recover inside a transaction body can swallow the AbortSignal unwind, leaving a half-executed critical section committed")
					case "close":
						report(n.Pos(), "close of a channel inside a transaction body: it publishes state from a region that may be unwound and re-executed")
					}
				}
			}
		}
		return true
	})
}
