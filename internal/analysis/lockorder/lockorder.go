// Package lockorder defines the natlevet analyzer guarding the lock
// acquisition discipline of //natlevet:backend native packages. The
// native backend runs real goroutines over real mutexes, so an
// inconsistent acquisition order deadlocks for real — and only under
// the interleaving that exhibits it, which -race does not search for.
//
// The analyzer builds a static acquisition graph. Nodes are lock
// identities: fields or variables whose sync.Mutex/RWMutex is locked,
// and package-local lock types entered through a Critical(ctx, body)
// helper (native.Mutex, Spin, TLE, NATLE) — a Critical method body and
// the closure passed to a Critical call both run with that type's lock
// held. Edges run from every lock held at a program point to every
// lock acquired there, directly or transitively through same-package
// calls. Any cycle — including re-acquiring a held lock — is reported
// on the acquisition that closes it.
//
// Functions marked //natlevet:seqlock are optimistic read sections:
// they run concurrently with writers and retry on conflict, so
// blocking on any lock inside one can hold the whole seqlock window
// hostage (and, for paths reachable from the writer side, deadlock).
// No acquisition may be reachable from a marked function.
package lockorder

import (
	"go/ast"
	"go/types"

	"natle/internal/analysis"
)

// Analyzer checks native-backend packages for lock-order cycles and
// for lock acquisitions inside seqlock read sections.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `forbid lock-order cycles and lock acquisition inside seqlock read sections (native packages)

In //natlevet:backend native packages, a static acquisition graph is
built over sync.Mutex/RWMutex values and package-local Critical-style
lock helpers; cycles (including re-acquiring a held lock) fail, as
does any acquisition reachable from a //natlevet:seqlock function.
Intentional exceptions carry //natlevet:allow lockorder(reason).`,
	Run: run,
}

// lockNode is one vertex of the acquisition graph: either a concrete
// sync mutex variable or a package-local Critical-helper lock type.
type lockNode struct {
	obj  types.Object // *types.Var (mutex field/var) or *types.TypeName
	name string
}

type edge struct {
	from, to *lockNode
	pos      ast.Node
}

type funcInfo struct {
	decl      *ast.FuncDecl
	acquires  map[*lockNode]ast.Node // directly acquired anywhere in body
	callees   map[*types.Func]bool   // same-package calls anywhere in body
	heldCalls []heldCall             // calls made while holding a lock
}

type checker struct {
	pass  *analysis.Pass
	nodes map[types.Object]*lockNode
	funcs map[*types.Func]*funcInfo
	edges []edge
	cur   *funcInfo
}

func run(pass *analysis.Pass) error {
	marked, strays := analysis.MarkedFuncs(pass.Fset, pass.Files, analysis.SeqlockDirective)
	for _, pos := range strays {
		pass.Reportf(pos, "%s is not attached to a function declaration or literal", analysis.SeqlockDirective)
	}
	if analysis.PackageBackend(pass.Files) != "native" {
		for n := range marked {
			pass.Reportf(n.Pos(), "%s outside a //natlevet:backend native package: lockorder only checks native packages", analysis.SeqlockDirective)
		}
		return nil
	}

	c := &checker{
		pass:  pass,
		nodes: make(map[types.Object]*lockNode),
		funcs: make(map[*types.Func]*funcInfo),
	}

	// Pass 1: per-function summaries and held-set edges.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				decl:     fd,
				acquires: make(map[*lockNode]ast.Node),
				callees:  make(map[*types.Func]bool),
			}
			c.funcs[fn] = fi
			c.cur = fi
			var held []*lockNode
			// A Critical method body runs with its receiver's lock held.
			if t := criticalReceiver(pass, fd); t != nil {
				held = append(held, c.node(t))
			}
			c.walkStmts(fd.Body.List, held)
		}
	}

	// Pass 2: transitive acquisitions through same-package calls.
	star := c.transitiveAcquires()

	// Calls made while holding a lock acquire everything the callee
	// chain acquires.
	for _, fi := range c.funcs {
		for _, hc := range fi.heldCalls {
			for node := range star[hc.callee] {
				if node == hc.held {
					c.pass.Reportf(hc.pos.Pos(),
						"calling %s while holding %s re-acquires it: self-deadlock",
						hc.callee.Name(), hc.held.name)
					continue
				}
				c.edges = append(c.edges, edge{from: hc.held, to: node, pos: hc.pos})
			}
		}
	}

	c.reportCycles()
	c.checkSeqlock(marked, star)
	return nil
}

// --- summary construction ---

type heldCall struct {
	held   *lockNode
	callee *types.Func
	pos    ast.Node
}

func (c *checker) node(obj types.Object) *lockNode {
	if n, ok := c.nodes[obj]; ok {
		return n
	}
	name := obj.Name()
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		name = "field " + name
	}
	n := &lockNode{obj: obj, name: name}
	c.nodes[obj] = n
	return n
}

// criticalReceiver returns the receiver's type name when fd is a
// Critical-style lock entry point: a method named Critical whose last
// parameter is a function (the critical-section body).
func criticalReceiver(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || fd.Name.Name != "Critical" || len(fd.Type.Params.List) == 0 {
		return nil
	}
	last := fd.Type.Params.List[len(fd.Type.Params.List)-1]
	if _, ok := pass.TypesInfo.TypeOf(last.Type).Underlying().(*types.Signature); !ok {
		return nil
	}
	return receiverTypeName(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type))
}

func receiverTypeName(t types.Type) *types.TypeName {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// syncLockCall classifies x.Lock/RLock/Unlock/RUnlock calls on
// sync.Mutex/RWMutex values, returning the lock's variable identity.
func (c *checker) syncLockCall(call *ast.CallExpr) (v *types.Var, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	return analysis.AddrTarget(c.pass.TypesInfo, sel.X), fn.Name()
}

// criticalCall classifies recv.Critical(..., body) calls on
// package-local lock helpers, returning the helper's type and the
// critical-section body when it is a literal.
func (c *checker) criticalCall(call *ast.CallExpr) (*types.TypeName, *ast.FuncLit) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Critical" || len(call.Args) == 0 {
		return nil, nil
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() != c.pass.Pkg {
		return nil, nil
	}
	tn := receiverTypeName(c.pass.TypesInfo.TypeOf(sel.X))
	if tn == nil || tn.Pkg() != c.pass.Pkg {
		return nil, nil
	}
	lit, _ := call.Args[len(call.Args)-1].(*ast.FuncLit)
	return tn, lit
}

// walkStmts tracks the held-lock set through a statement list. A sync
// Lock is held until the matching Unlock in the same list (or, absent
// one — including the defer idiom — to the end of the list); a
// Critical body runs with its helper's lock held.
func (c *checker) walkStmts(list []ast.Stmt, held []*lockNode) {
	for i := 0; i < len(list); i++ {
		stmt := list[i]
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if v, method := c.syncLockCall(call); v != nil {
					switch method {
					case "Lock", "RLock":
						n := c.node(v)
						c.acquire(n, call, held)
						rest := list[i+1:]
						if j := c.findUnlock(rest, v); j >= 0 {
							c.walkStmts(rest[:j], append(held, n))
							c.walkStmts(rest[j+1:], held)
						} else {
							c.walkStmts(rest, append(held, n))
						}
						return
					case "Unlock", "RUnlock":
						continue // unmatched unlock: nothing held to release
					}
				}
			}
		}
		c.walkStmt(stmt, held)
	}
}

// findUnlock locates the statement releasing v in list, ignoring
// nested blocks (an unlock in a conditional branch does not end the
// critical section on the fall-through path).
func (c *checker) findUnlock(list []ast.Stmt, v *types.Var) int {
	for j, stmt := range list {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if u, method := c.syncLockCall(call); u == v && (method == "Unlock" || method == "RUnlock") {
			return j
		}
	}
	return -1
}

func (c *checker) acquire(n *lockNode, at ast.Node, held []*lockNode) {
	if _, ok := c.cur.acquires[n]; !ok {
		c.cur.acquires[n] = at
	}
	for _, h := range held {
		if h == n {
			c.pass.Reportf(at.Pos(), "re-acquiring %s, which is already held on this path: self-deadlock", n.name)
			continue
		}
		c.edges = append(c.edges, edge{from: h, to: n, pos: at})
	}
}

// walkStmt descends into one statement, scanning its expressions for
// acquisitions and same-package calls under the current held set.
func (c *checker) walkStmt(stmt ast.Stmt, held []*lockNode) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		c.walkStmts(s.List, held)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.walkExpr(s.Cond, held)
		c.walkStmts(s.Body.List, held)
		if s.Else != nil {
			c.walkStmt(s.Else, held)
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.walkExpr(s.Cond, held)
		}
		if s.Post != nil {
			c.walkStmt(s.Post, held)
		}
		c.walkStmts(s.Body.List, held)
		return
	case *ast.RangeStmt:
		c.walkExpr(s.X, held)
		c.walkStmts(s.Body.List, held)
		return
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.walkExpr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.walkExpr(e, held)
				}
				c.walkStmts(cl.Body, held)
			}
		}
		return
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, held)
			}
		}
		return
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.walkStmts(cl.Body, held)
			}
		}
		return
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
		return
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's held set.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, nil)
		} else {
			c.walkExpr(s.Call, nil)
		}
		return
	case *ast.DeferStmt:
		// Deferred work runs at exit; conservatively the held set at
		// this point may still apply (the defer-unlock idiom keeps the
		// lock held to exit anyway).
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, held)
		} else {
			c.walkExpr(s.Call, held)
		}
		return
	case *ast.ExprStmt:
		c.walkExpr(s.X, held)
		return
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.walkExpr(e, held)
		}
		return
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.walkExpr(e, held)
		}
		return
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.walkExpr(e, held)
				return false
			}
			return true
		})
		return
	case nil:
		return
	}
}

// walkExpr scans an expression for lock-relevant calls: Critical
// entries (whose body literal runs with the helper held) and calls to
// same-package functions (recorded for the transitive pass).
func (c *checker) walkExpr(e ast.Expr, held []*lockNode) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tn, lit := c.criticalCall(call); tn != nil {
			node := c.node(tn)
			c.acquire(node, call, held)
			if lit != nil {
				c.walkStmts(lit.Body.List, append(append([]*lockNode{}, held...), node))
			}
			for _, arg := range call.Args[:len(call.Args)-1] {
				c.walkExpr(arg, held)
			}
			return false
		}
		if v, method := c.syncLockCall(call); v != nil && (method == "Lock" || method == "RLock") {
			// A Lock in expression position (rare) is still an
			// acquisition; scope tracking is statement-level only.
			c.acquire(c.node(v), call, held)
			return false
		}
		if fn := c.calleeOf(call); fn != nil {
			c.cur.callees[fn] = true
			for _, h := range held {
				c.cur.heldCalls = append(c.cur.heldCalls, heldCall{held: h, callee: fn, pos: call})
			}
		}
		return true
	})
}

// calleeOf resolves a call to a same-package function or method.
func (c *checker) calleeOf(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != c.pass.Pkg {
		return nil
	}
	return fn
}

// --- transitive closure and cycle detection ---

// transitiveAcquires computes, for every function, the set of lock
// nodes acquired by it or anything it (transitively) calls in this
// package, with a representative acquisition site.
func (c *checker) transitiveAcquires() map[*types.Func]map[*lockNode]ast.Node {
	star := make(map[*types.Func]map[*lockNode]ast.Node, len(c.funcs))
	for fn, fi := range c.funcs {
		m := make(map[*lockNode]ast.Node, len(fi.acquires))
		for n, at := range fi.acquires {
			m[n] = at
		}
		star[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for fn, fi := range c.funcs {
			m := star[fn]
			for callee := range fi.callees {
				for n, at := range star[callee] {
					if _, ok := m[n]; !ok {
						m[n] = at
						changed = true
					}
				}
			}
		}
	}
	return star
}

func (c *checker) reportCycles() {
	// Strongly connected components over the acquisition graph; every
	// edge within a component participates in a cycle.
	adj := make(map[*lockNode][]*lockNode)
	for _, e := range c.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	index := make(map[*lockNode]int)
	low := make(map[*lockNode]int)
	comp := make(map[*lockNode]int)
	onStack := make(map[*lockNode]bool)
	var stack []*lockNode
	next, ncomp := 0, 0
	var strongconnect func(n *lockNode)
	strongconnect = func(n *lockNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range adj[n] {
			if _, seen := index[m]; !seen {
				strongconnect(m)
				low[n] = min(low[n], low[m])
			} else if onStack[m] {
				low[n] = min(low[n], index[m])
			}
		}
		if low[n] == index[n] {
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp[m] = ncomp
				if m == n {
					break
				}
			}
			ncomp++
		}
	}
	for n := range c.nodes {
		if _, seen := index[c.nodes[n]]; !seen {
			strongconnect(c.nodes[n])
		}
	}
	reported := make(map[ast.Node]bool)
	for _, e := range c.edges {
		if e.from == e.to {
			continue // self-deadlock already reported at acquire time
		}
		if comp[e.from] == comp[e.to] && !reported[e.pos] {
			reported[e.pos] = true
			c.pass.Reportf(e.pos.Pos(),
				"acquiring %s while holding %s closes a lock-order cycle: another path acquires them in the opposite order",
				e.to.name, e.from.name)
		}
	}
}

// checkSeqlock reports any acquisition reachable from a
// //natlevet:seqlock function: a seqlock read section must never
// block on a lock.
func (c *checker) checkSeqlock(marked map[ast.Node]bool, star map[*types.Func]map[*lockNode]ast.Node) {
	for _, fi := range c.funcs {
		if !marked[ast.Node(fi.decl)] {
			continue
		}
		fn := c.pass.TypesInfo.Defs[fi.decl.Name].(*types.Func)
		for n, at := range fi.acquires {
			c.pass.Reportf(at.Pos(),
				"seqlock read section %s acquires %s: optimistic reads must never block on a lock",
				fn.Name(), n.name)
		}
		for callee := range fi.callees {
			if m := star[callee]; len(m) > 0 {
				for n := range m {
					c.pass.Reportf(fi.decl.Name.Pos(),
						"seqlock read section %s calls %s, which acquires %s: optimistic reads must never block on a lock",
						fn.Name(), callee.Name(), n.name)
					break
				}
				break
			}
		}
	}
	// Marked function literals: direct scan (no summary entry).
	for n := range marked {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			continue
		}
		saved := c.cur
		c.cur = &funcInfo{acquires: make(map[*lockNode]ast.Node), callees: make(map[*types.Func]bool)}
		c.walkStmts(lit.Body.List, nil)
		for node, at := range c.cur.acquires {
			c.pass.Reportf(at.Pos(),
				"seqlock read section acquires %s: optimistic reads must never block on a lock", node.name)
		}
		for callee := range c.cur.callees {
			if len(star[callee]) > 0 {
				for node := range star[callee] {
					c.pass.Reportf(lit.Pos(),
						"seqlock read section calls %s, which acquires %s: optimistic reads must never block on a lock",
						callee.Name(), node.name)
					break
				}
				break
			}
		}
		c.cur = saved
	}
}
