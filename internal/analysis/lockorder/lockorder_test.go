package lockorder_test

import (
	"testing"

	"natle/internal/analysis/analysistest"
	"natle/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lorder", "lordersim")
}
