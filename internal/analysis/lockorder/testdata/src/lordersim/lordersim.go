// Package lordersim has no backend directive, so it runs on the
// simulated backend and lockorder checks nothing — but a seqlock
// directive here marks nothing and must be called out.
package lordersim

import "sync"

var mu sync.Mutex

// ba would be a cycle half in a native package; here it is ignored.
func cyclicHalf(other *sync.Mutex) {
	mu.Lock()
	other.Lock()
	other.Unlock()
	mu.Unlock()
}

//natlevet:seqlock
func notNative() {} // want `outside a //natlevet:backend native package`
