//natlevet:backend native

// Package lorder is the lockorder analyzer fixture: a native-backend
// package whose lock acquisitions must be cycle-free, with seqlock
// read sections acquiring nothing at all.
package lorder

import (
	"sync"

	"natle/internal/backend"
)

type server struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *server) ab() {
	s.a.Lock()
	s.b.Lock() // want `closes a lock-order cycle`
	s.b.Unlock()
	s.a.Unlock()
}

func (s *server) ba() {
	s.b.Lock()
	s.a.Lock() // want `closes a lock-order cycle`
	s.a.Unlock()
	s.b.Unlock()
}

func (s *server) twice() {
	s.a.Lock()
	defer s.a.Unlock()
	s.a.Lock() // want `re-acquiring field a`
}

func (s *server) lockB() {
	s.b.Lock()
	s.b.Unlock()
}

// aThenB takes the a-then-b order only through a callee, so the edge
// is found by the transitive pass, not the direct one.
func (s *server) aThenB() {
	s.a.Lock()
	s.lockB() // want `closes a lock-order cycle`
	s.a.Unlock()
}

// Critical-style helpers are lock nodes too: their method body and
// the closure passed to a call both run with the helper held.
type elideA struct{}

func (l *elideA) Critical(bc backend.Ctx, body func()) { body() }

type elideB struct{}

func (l *elideB) Critical(bc backend.Ctx, body func()) { body() }

func nestAB(bc backend.Ctx, a *elideA, b *elideB) {
	a.Critical(bc, func() {
		b.Critical(bc, func() {}) // want `closes a lock-order cycle`
	})
}

func nestBA(bc backend.Ctx, a *elideA, b *elideB) {
	b.Critical(bc, func() {
		a.Critical(bc, func() {}) // want `closes a lock-order cycle`
	})
}

// --- seqlock read sections ---

//natlevet:seqlock
func (s *server) read() uint64 {
	s.a.Lock() // want `seqlock read section read acquires field a`
	s.a.Unlock()
	return 0
}

//natlevet:seqlock
func (s *server) readVia() { // want `calls lockB, which acquires field b`
	s.lockB()
}

//natlevet:seqlock
func (s *server) readClean() uint64 { return 0 }

// allowedBA documents a sanctioned ordering violation.
func (s *server) allowedBA() {
	s.b.Lock()
	s.a.Lock() //natlevet:allow lockorder(fixture: startup path, provably single-threaded)
	s.a.Unlock()
	s.b.Unlock()
}
