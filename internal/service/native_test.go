package service_test

import (
	"testing"

	"natle/internal/backend"
	"natle/internal/fault"
	"natle/internal/native"
	"natle/internal/service"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// nativeConfBase is a trial small enough to replay against the wall
// clock in milliseconds, shaped for cross-backend store conformance:
// one server per shard (each shard applies its request subsequence in
// admission order) and a queue bound no arrival burst can hit, so no
// request is shed on either backend.
func nativeConfBase() service.Config {
	return service.Config{
		Seed:     11,
		Rate:     2e5,
		Window:   vtime.Millisecond,
		Shards:   4,
		Servers:  1,
		QueueCap: 4096,
		KeyRange: 512,
	}
}

// TestNativeServiceStoreConformance: the simulator predicts, the
// native backend proves — the final KV contents of the same Config
// must agree between the sim run and the native run under every
// native scheme mirror.
func TestNativeServiceStoreConformance(t *testing.T) {
	base := nativeConfBase()

	simCfg := base
	simCfg.Scheme = "tle"
	simRes := service.Run(simCfg)
	if simRes.Shed != 0 || simRes.DeadlineShed != 0 {
		t.Fatalf("sim trial shed %d/%d requests; conformance needs loss-free trials", simRes.Shed, simRes.DeadlineShed)
	}

	for _, nat := range []string{"native-mutex", "native-tle", "native-tle-striped", "native-natle"} {
		t.Run(nat, func(t *testing.T) {
			cfg := base
			cfg.Scheme = nat
			w := native.NewWorld(native.Config{Seed: cfg.Seed, Words: cfg.NativeMemWords()})
			res := service.RunNative(w, cfg)

			if res.Arrivals != res.Admitted+res.Shed {
				t.Fatalf("arrivals %d != admitted %d + shed %d", res.Arrivals, res.Admitted, res.Shed)
			}
			if res.Admitted != res.Completed+res.DeadlineShed {
				t.Fatalf("admitted %d != completed %d + deadline-shed %d", res.Admitted, res.Completed, res.DeadlineShed)
			}
			if res.Shed != 0 {
				t.Fatalf("native trial shed %d requests; queue bound mis-sized for conformance", res.Shed)
			}
			if uint64(res.Requests) != res.Arrivals {
				t.Fatalf("schedule length %d != arrivals %d", res.Requests, res.Arrivals)
			}
			if res.StoreCheck != simRes.StoreCheck {
				t.Fatalf("final store diverges: sim %#x, %s %#x", simRes.StoreCheck, nat, res.StoreCheck)
			}
			if res.E2E.Count() != res.Completed {
				t.Fatalf("e2e histogram count %d != completed %d", res.E2E.Count(), res.Completed)
			}
			// Scheme-counter conservation for eliding schemes.
			for i, s := range res.SyncPerShard {
				if s.TLE.Ops == 0 {
					continue
				}
				if got := s.TLE.Commits + s.TLE.Fallbacks; got != s.TLE.Ops {
					t.Fatalf("shard %d: commits+fallbacks = %d, want ops = %d", i, got, s.TLE.Ops)
				}
			}
		})
	}
}

// TestNativeServiceConservationUnderPressure: many servers per shard,
// a tight queue, and deadlines — requests race real goroutines, and
// the ledgers must still balance exactly.
func TestNativeServiceConservationUnderPressure(t *testing.T) {
	cfg := nativeConfBase()
	cfg.Scheme = "native-tle-striped"
	cfg.Rate = 1e6
	cfg.Servers = 2
	cfg.QueueCap = 8
	cfg.Deadline = 50 * vtime.Microsecond
	w := native.NewWorld(native.Config{Seed: cfg.Seed, Words: cfg.NativeMemWords()})
	res := service.RunNative(w, cfg)

	if res.Arrivals != res.Admitted+res.Shed {
		t.Fatalf("arrivals %d != admitted %d + shed %d", res.Arrivals, res.Admitted, res.Shed)
	}
	if res.Admitted != res.Completed+res.DeadlineShed {
		t.Fatalf("admitted %d != completed %d + deadline-shed %d", res.Admitted, res.Completed, res.DeadlineShed)
	}
	for i, st := range res.PerShard {
		if st.Arrivals != st.Admitted+st.Shed {
			t.Fatalf("shard %d: arrivals %d != admitted %d + shed %d", i, st.Arrivals, st.Admitted, st.Shed)
		}
		if st.Admitted != st.Completed+st.DeadlineShed {
			t.Fatalf("shard %d: admitted %d != completed %d + deadline-shed %d",
				i, st.Admitted, st.Completed, st.DeadlineShed)
		}
	}
	if res.Completed > 0 && res.Batches == 0 {
		t.Fatalf("%d completions in 0 batches", res.Completed)
	}
}

// TestRunNativeRejections: the sim-only machinery must be refused
// loudly, not silently dropped.
func TestRunNativeRejections(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: RunNative did not panic", name)
			}
		}()
		f()
	}
	w := native.NewWorld(native.Config{})
	run := func(mut func(*service.Config)) func() {
		return func() {
			cfg := nativeConfBase()
			cfg.Scheme = "native-tle"
			mut(&cfg)
			service.RunNative(w, cfg)
		}
	}
	mustPanic("brownout", run(func(c *service.Config) { c.Brownout = &service.BrownoutConfig{} }))
	mustPanic("retry-budget", run(func(c *service.Config) { c.RetryBudget = 10 }))
	mustPanic("fault", run(func(c *service.Config) {
		c.Fault = &fault.Profile{StallProb: 1, StallLen: vtime.Microsecond}
	}))
	mustPanic("recorder", run(func(c *service.Config) { c.Recorder = telemetry.NewCollector(telemetry.Config{}) }))
	mustPanic("sim-scheme", run(func(c *service.Config) { c.Scheme = "tle" }))
	mustPanic("sim-world", func() {
		cfg := nativeConfBase()
		cfg.Scheme = "native-tle"
		service.RunNative(simWorldStub{}, cfg)
	})
}

type simWorldStub struct{}

func (simWorldStub) Kind() backend.Kind                            { return backend.Sim }
func (simWorldStub) Run(int, func(backend.Ctx), func(backend.Ctx)) {}
func (simWorldStub) Peek(int) uint64                               { return 0 }
