package service

import (
	"fmt"
	"strings"

	"natle/internal/vtime"
)

// The SLO search answers the ROADMAP's north-star question directly:
// "what request rate can each scheme sustain within a 1 ms p99?".
// Sustainability at a rate means the trial at that rate sheds nothing
// and meets the latency target at the configured quantile; the search
// bisects the offered load between a floor and a ceiling. Every probe
// is a full deterministic trial, so the search result is itself a
// pure function of (Config, SLO, bounds).

// SLO is a latency service-level objective.
type SLO struct {
	// Target is the end-to-end latency bound (default 1ms).
	Target vtime.Duration
	// Quantile is the percentile the bound applies to (default 0.99).
	Quantile float64
	// Lo and Hi bracket the search in requests per virtual second
	// (defaults 1e5 and 6.4e7). Lo is assumed-but-verified
	// sustainable; Hi is the ceiling.
	Lo, Hi float64
	// Iters is the number of bisection steps after the bracket probes
	// (default 6, resolving the bracket to ~1.5% of its width).
	Iters int
}

func (s *SLO) defaults() {
	if s.Target <= 0 {
		s.Target = vtime.Millisecond
	}
	if s.Quantile <= 0 || s.Quantile >= 1 {
		s.Quantile = 0.99
	}
	if s.Lo <= 0 {
		s.Lo = 1e5
	}
	if s.Hi <= s.Lo {
		s.Hi = 6.4e7
	}
	if s.Iters <= 0 {
		s.Iters = 6
	}
}

// SLOProbe is one trial of the search.
type SLOProbe struct {
	Rate     float64        // offered load probed (req/s)
	Latency  vtime.Duration // measured latency at the SLO quantile
	Shed     uint64         // requests shed at admission
	Sustains bool           // zero shed and Latency <= Target
}

// SLOResult is the outcome of one search.
type SLOResult struct {
	Scheme string
	SLO    SLO

	// Sustained is the highest probed rate that sustained the SLO (0
	// when even the floor fails). LatencyAt is the measured quantile
	// at that rate.
	Sustained float64
	LatencyAt vtime.Duration

	Probes []SLOProbe
}

// String renders a one-line summary.
func (r SLOResult) String() string {
	if r.Sustained == 0 {
		return fmt.Sprintf("%s: UNSUSTAINABLE at %.3g req/s (%s p%g > %v or shedding)",
			r.Scheme, r.SLO.Lo, r.LatencyAt, 100*r.SLO.Quantile, r.SLO.Target)
	}
	return fmt.Sprintf("%s: sustains %.4g req/s at p%g=%v (target %v, %d probes)",
		r.Scheme, r.Sustained, 100*r.SLO.Quantile, r.LatencyAt, r.SLO.Target, len(r.Probes))
}

// ProbeTable renders the probe history, one line per trial.
func (r SLOResult) ProbeTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%14s %14s %8s %s\n", "rate(r/s)", "latency", "shed", "verdict")
	for _, p := range r.Probes {
		v := "over"
		if p.Sustains {
			v = "ok"
		}
		fmt.Fprintf(&b, "%14.4g %14v %8d %s\n", p.Rate, p.Latency, p.Shed, v)
	}
	return b.String()
}

// SearchSLO binary-searches the maximum sustainable arrival rate for
// cfg's scheme under the SLO. cfg.Rate is ignored (each probe
// overrides it); everything else — arrival process, shards, batching,
// fault schedule — shapes what "sustainable" means.
func SearchSLO(cfg Config, slo SLO) SLOResult {
	slo.defaults()
	cfg.defaults()
	res := SLOResult{Scheme: cfg.Scheme, SLO: slo}

	probe := func(rate float64) SLOProbe {
		c := cfg
		c.Rate = rate
		r := Run(c)
		p := SLOProbe{
			Rate:    rate,
			Latency: r.E2E.Quantile(slo.Quantile),
			Shed:    r.Shed,
		}
		p.Sustains = p.Shed == 0 && p.Latency <= slo.Target
		res.Probes = append(res.Probes, p)
		return p
	}

	lo := probe(slo.Lo)
	if !lo.Sustains {
		res.LatencyAt = lo.Latency
		return res // even the floor fails: report unsustainable
	}
	res.Sustained, res.LatencyAt = lo.Rate, lo.Latency

	hi := probe(slo.Hi)
	if hi.Sustains {
		res.Sustained, res.LatencyAt = hi.Rate, hi.Latency
		return res // the ceiling holds: saturated by the bracket, not the scheme
	}

	loRate, hiRate := slo.Lo, slo.Hi
	for i := 0; i < slo.Iters; i++ {
		mid := (loRate + hiRate) / 2
		p := probe(mid)
		if p.Sustains {
			loRate = mid
			res.Sustained, res.LatencyAt = p.Rate, p.Latency
		} else {
			hiRate = mid
		}
	}
	return res
}
