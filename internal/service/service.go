// Package service is the open-loop transactional key-value service:
// the production-scale counterpart of the closed-loop microbenchmarks.
//
// Where every other workload in this repository is closed-loop (N
// threads hammering a structure in a loop, throughput the only
// output), the service is driven by an arrival process on virtual
// time — Poisson, bursty, or diurnal (see arrival.go) — simulating
// millions of client requests per virtual second against a sharded
// KV store. Each shard is a hash map in simulated memory guarded by
// its own synchronization-scheme instance from the registry, so every
// "-lock" scheme (plain lock, TLE, NATLE, cohort, the hardened
// variants) is a drop-in per-shard primitive, exactly as the paper's
// drop-in-replacement claim promises.
//
// The pipeline is arrivals -> admission -> shards -> telemetry:
//
//   - a dispatcher thread replays the pre-generated schedule, routing
//     each request to its shard's bounded admission queue; a full
//     queue sheds the request (counted, never silently dropped);
//   - Servers server threads per shard drain its queue in batches of
//     up to Batch requests, executing each batch as one critical
//     section under the shard's scheme instance (so the shard lock is
//     genuinely contended, and eliding it genuinely pays);
//   - per-request end-to-end latency (queueing + service + every
//     transactional retry in between) lands in the telemetry log2
//     histograms, so results report p50/p99/p999 — not just
//     throughput.
//
// Everything runs on the deterministic simulator: a Result is a pure
// function of (Config, Seed), which the determinism and conservation
// tests assert, fault schedules included.
package service

import (
	"fmt"

	"natle/internal/backend"
	"natle/internal/cache"
	"natle/internal/fault"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/scheme"
	"natle/internal/sim"
	"natle/internal/simmap"
	"natle/internal/telemetry"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// Config describes one service trial. The zero value of every field
// selects the documented default.
type Config struct {
	Prof *machine.Profile  // simulated machine (default LargeX52)
	Pin  machine.PinPolicy // server-thread placement (default FillSocketFirst)
	Seed int64             // schedule and simulator seed

	// Scheme names the per-shard synchronization primitive (any
	// registry name; default "tle"). Schemes without the Batch
	// capability have Batch clamped to 1 (see Result.BatchClamped).
	Scheme string
	TLE    tle.Policy    // retry policy for elision-based schemes
	NATLE  *natle.Config // nil selects natle.DefaultConfig

	// Arrival selects the open-loop arrival process (default poisson);
	// Rate is the time-averaged offered load in requests per virtual
	// second (default 1e6); Window is the arrival interval — requests
	// arrive in [0, Window) and the run drains afterwards.
	Arrival ArrivalKind
	Rate    float64
	Window  vtime.Duration

	// Bursty shape: mean on/off state lengths (defaults Window/16 and
	// Window/8) and the on-state rate multiplier (default 4).
	OnLen, OffLen vtime.Duration
	BurstFactor   float64

	// Diurnal shape: relative amplitude (default 0.8) and period
	// (default Window — one simulated "day" per trial).
	Amp    float64
	Period vtime.Duration

	Shards   int // KV shards (default 8)
	Servers  int // server threads per shard (default 2)
	QueueCap int // per-shard admission-queue bound (default 64)
	Batch    int // max requests per critical section (default 8)

	// WorkPerReq is the request-handler compute executed inside the
	// critical section, in external-work iterations (default 100, about
	// 200ns on the large machine). It models the read-modify-write
	// logic a real handler runs transactionally, and it is what gives
	// batches a footprint worth eliding: servers of one shard contend
	// on the shard lock, and the window they conflict over is this
	// handler time plus the map operation.
	WorkPerReq int

	KeyRange  uint64 // keys drawn uniformly from [0, KeyRange) (default 4096)
	UpdatePct int    // 0..100; updates split evenly between puts and deletes (default 50)

	// Deadline, when positive, attaches a completion budget to every
	// scheduled request, drawn uniformly in [Deadline/2, 3·Deadline/2)
	// by the schedule generator. Servers shed queued requests whose
	// remaining budget can no longer cover the observed per-request
	// service time (CoDel-style queue-wait shedding), counted as
	// DeadlineShed separately from capacity sheds; completions past
	// their budget count as DeadlineMiss. Zero disables deadlines and
	// leaves the schedule bytes untouched (see overload.go).
	Deadline vtime.Duration

	// Brownout, when non-nil, arms the per-shard brownout controller:
	// batch-size degradation and finally a scheme downgrade to the
	// mutual-exclusion baseline when the rolling e2e p99 breaches the
	// SLO, with recovery probing (see BrownoutConfig).
	Brownout *BrownoutConfig

	// RetryBudget, when positive, bounds transactional retries per
	// shard per decision window: aborted attempts spend tokens shared
	// by the shard's servers, and a dry bucket degrades the shard to
	// the mutual-exclusion baseline until the window rolls (see
	// tle.RetryBudget).
	RetryBudget int

	LogBuckets int // per-shard hash buckets = 1<<LogBuckets (default 8)

	// Fault, if non-nil and enabled, installs a deterministic fault
	// injector (seeded from Seed) for the whole trial — the chaos
	// schedules stress the service exactly as they stress the
	// microbenchmarks.
	Fault *fault.Profile

	// Recorder, if non-nil, receives the trial's telemetry events.
	// Nil keeps the no-op recorder (zero-cost contract).
	Recorder telemetry.Recorder

	MemWords int // simulated memory pre-size (grown on demand)
}

func (cfg *Config) defaults() {
	if cfg.Prof == nil {
		cfg.Prof = machine.LargeX52()
	}
	if cfg.Pin == nil {
		cfg.Pin = machine.FillSocketFirst{}
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "tle"
	}
	if cfg.TLE.Attempts == 0 {
		cfg.TLE = tle.TLE20()
	}
	if cfg.Arrival == "" {
		cfg.Arrival = ArrivalPoisson
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1e6
	}
	if cfg.Window <= 0 {
		cfg.Window = 2 * vtime.Millisecond
	}
	if cfg.OnLen <= 0 {
		cfg.OnLen = cfg.Window / 16
	}
	if cfg.OffLen <= 0 {
		cfg.OffLen = cfg.Window / 8
	}
	if cfg.BurstFactor <= 0 {
		cfg.BurstFactor = 4
	}
	if cfg.Amp <= 0 {
		cfg.Amp = 0.8
	}
	if cfg.Period <= 0 {
		cfg.Period = cfg.Window
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if cfg.WorkPerReq <= 0 {
		cfg.WorkPerReq = 100
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 4096
	}
	if cfg.UpdatePct < 0 {
		cfg.UpdatePct = 0
	}
	if cfg.UpdatePct == 0 {
		cfg.UpdatePct = 50
	}
	if cfg.LogBuckets <= 0 {
		cfg.LogBuckets = 8
	}
	if cfg.MemWords <= 0 {
		cfg.MemWords = 1 << 20
	}
}

// ShardStats is one shard's request accounting.
type ShardStats struct {
	Arrivals  uint64 // requests routed to this shard
	Admitted  uint64 // enqueued (queue had room)
	Shed      uint64 // dropped at admission (queue full)
	Completed uint64 // executed to completion
	Batches   uint64 // critical sections executed
	MaxQueue  int    // admission-queue high-water mark

	DeadlineShed    uint64 // admitted, then dropped in-queue on deadline budget
	DeadlineMiss    uint64 // completed past their deadline budget
	DegradedBatches uint64 // batches run under the mutual-exclusion downgrade
	Brownouts       uint64 // brownout level transitions
	RetryExhausted  uint64 // retry-budget windows that ran dry
	BrownoutPeak    int    // highest brownout level reached
}

// Result reports one service trial. Counters cover the whole run
// (arrival window plus drain); the conservation invariants
// Arrivals == Admitted + Shed and Admitted == Completed + DeadlineShed
// hold for every scheme under every fault schedule — admission
// shedding and in-queue deadline shedding are the only sanctioned
// losses (DeadlineShed is zero unless Config.Deadline is set).
type Result struct {
	Config   Config
	Requests int // schedule length (== Arrivals)

	Arrivals  uint64
	Admitted  uint64
	Shed      uint64
	Completed uint64
	Batches   uint64

	DeadlineShed    uint64
	DeadlineMiss    uint64
	DegradedBatches uint64
	Brownouts       uint64
	RetryExhausted  uint64
	BrownoutPeak    int

	PerShard []ShardStats

	// Latency distributions (telemetry log2 histograms): E2E is
	// arrival to completion, Queue is arrival to batch start, Service
	// is batch start to completion (retries included in all three).
	E2E     telemetry.HistogramSnapshot
	Queue   telemetry.HistogramSnapshot
	Service telemetry.HistogramSnapshot

	Start       vtime.Time // arrival clock base (post-construction)
	LastArrival vtime.Time // last scheduled arrival, relative to Start
	Drained     vtime.Time // last completion (absolute virtual time)

	// BatchClamped reports that the scheme lacks the Batch capability
	// and Config.Batch was forced to 1.
	BatchClamped bool

	// StoreCheck is the checksum of the final KV-store contents (FNV
	// over sorted key/value pairs; see storeChecksum). With one server
	// per shard and no shedding, each shard applies its request
	// subsequence in schedule order on every backend, so the sim and
	// native runs of one Config must agree — the cross-backend
	// conformance invariant for the service pipeline.
	StoreCheck uint64

	// Sync aggregates the per-shard scheme counters (field-wise sum of
	// the TLE counters; timelines stay per-shard). SyncPerShard keeps
	// each shard's full snapshot.
	Sync         scheme.Stats
	SyncPerShard []scheme.Stats

	HTM   htm.Stats
	Cache cache.Stats
	Fault fault.Stats

	// Telemetry is the recorder's roll-up when Config.Recorder is a
	// *telemetry.Collector (nil otherwise).
	Telemetry *telemetry.Summary
}

// OfferedRate returns the realized offered load in requests per
// virtual second of the arrival window.
func (r *Result) OfferedRate() float64 {
	if r.Config.Window <= 0 {
		return 0
	}
	return float64(r.Arrivals) / r.Config.Window.Seconds()
}

// CompletedRate returns completed requests per virtual second of the
// arrival window (goodput).
func (r *Result) CompletedRate() float64 {
	if r.Config.Window <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Config.Window.Seconds()
}

// ShedFraction returns the shed share of all arrivals.
func (r *Result) ShedFraction() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Arrivals)
}

// DeadlineShedFraction returns the deadline-shed share of all
// arrivals (commensurable with ShedFraction: the two together are the
// total loss rate).
func (r *Result) DeadlineShedFraction() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.DeadlineShed) / float64(r.Arrivals)
}

// DeadlineMissFraction returns the share of completed requests that
// finished past their deadline budget.
func (r *Result) DeadlineMissFraction() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.DeadlineMiss) / float64(r.Completed)
}

// pending is one admitted request waiting in a shard queue.
type pending struct {
	req Request
	at  vtime.Time // admission time (== arrival; admission is immediate)
}

// shardState is the host-side state of one shard (mutated only under
// the simulator's serialization token).
type shardState struct {
	m     *simmap.Map
	cs    scheme.Instance
	queue []pending
	stats ShardStats

	// Overload control (all nil/zero unless armed; see overload.go).
	deg        scheme.Instance  // mutual-exclusion downgrade instance
	bo         *brownout        // brownout controller
	budget     *tle.RetryBudget // shared retry budget
	e2e        telemetry.Histogram
	svcEst     vtime.Duration // EWMA of per-request service time
	lastAborts uint64         // scheme abort counter at last budget spend
}

// serverPoll is the idle-queue polling step of a shard server. It
// bounds how long a server sleeps past an enqueue, so it is part of
// the latency floor under light load.
const serverPoll = 500 * vtime.Nanosecond

// Run executes one service trial and returns its measurements.
func Run(cfg Config) *Result {
	cfg.defaults()
	desc, err := scheme.LookupFor(backend.Sim, cfg.Scheme)
	if err != nil {
		panic(fmt.Sprintf("service: %v", err))
	}
	desc = desc.Configure(scheme.Options{TLE: cfg.TLE, NATLE: cfg.NATLE})
	res := &Result{Config: cfg}
	if cfg.Batch > 1 && !desc.Batch {
		cfg.Batch = 1
		res.Config.Batch = 1
		res.BatchClamped = true
	}

	// Overload control (see overload.go): the brownout controller and
	// the retry budget both degrade to the backend's mutual-exclusion
	// baseline, constructed per shard only when armed so default
	// trials stay byte-identical with their pre-overload-control
	// selves.
	overload := cfg.Brownout != nil || cfg.RetryBudget > 0
	var degDesc *scheme.Descriptor
	if overload {
		degDesc, err = scheme.MutexFor(backend.Sim)
		if err != nil {
			panic(fmt.Sprintf("service: %v", err))
		}
	}
	boCfg := BrownoutConfig{}
	if cfg.Brownout != nil {
		boCfg = *cfg.Brownout
	}
	boCfg = boCfg.withDefaults()
	rec := cfg.Recorder
	if rec == nil {
		rec = telemetry.Nop()
	}

	sched := cfg.Schedule()
	res.Requests = len(sched)
	if len(sched) > 0 {
		res.LastArrival = sched[len(sched)-1].At
	}

	e := sim.New(cfg.Prof, cfg.Pin, cfg.Shards*cfg.Servers, cfg.Seed)
	sys := htm.NewSystem(e, cfg.MemWords)
	if cfg.Recorder != nil {
		// Installed before any locks exist so their RegisterLock calls
		// land in this recorder.
		sys.SetRecorder(cfg.Recorder)
	}
	var inj *fault.Fault
	if cfg.Fault != nil && cfg.Fault.Enabled() {
		inj = fault.New(*cfg.Fault, cfg.Seed)
		sys.SetInjector(inj)
	}

	var e2e, queueLat, svcLat telemetry.Histogram
	res.PerShard = make([]ShardStats, cfg.Shards)
	res.SyncPerShard = make([]scheme.Stats, cfg.Shards)

	e.Spawn(nil, func(c *sim.Ctx) {
		// Build the shards round-robin across sockets: shard i's
		// buckets and lock word are homed on socket i mod sockets, so
		// cross-socket traffic is part of the workload exactly as it
		// would be for a real NUMA-sharded store.
		shards := make([]*shardState, cfg.Shards)
		for i := range shards {
			socket := i % cfg.Prof.Sockets
			shards[i] = &shardState{
				m:  simmap.New(sys, c, cfg.LogBuckets, socket),
				cs: desc.New(sys, c, socket),
			}
			if overload {
				shards[i].deg = degDesc.New(sys, c, socket)
			}
			if cfg.Brownout != nil {
				shards[i].bo = newBrownout(boCfg, i, socket, cfg.Batch, rec)
			}
			if cfg.RetryBudget > 0 {
				shards[i].budget = tle.NewRetryBudget(cfg.RetryBudget, boCfg.Window)
			}
		}

		// Shared trial state (host-side; safe because execution is
		// serialized by the simulator token).
		closed := false
		var lastDone vtime.Time

		apply := func(w *sim.Ctx, s *shardState, q Request) {
			switch q.Op {
			case OpGet:
				s.m.Get(w, q.Key)
			case OpPut:
				s.m.Put(w, q.Key, q.Val)
			case OpDel:
				s.m.Delete(w, q.Key)
			case NumOps:
				panic("service: NumOps is not an operation")
			}
		}

		//natlevet:hotpath
		serve := func(w *sim.Ctx, s *shardState) {
			// One critical-section body per server, re-bound to each
			// batch through the captured slice: building the literal
			// inside the loop would heap-allocate a fresh closure per
			// batch served.
			var batch []pending
			body := func() { //natlevet:allow hotalloc(one closure per server lifetime, not per batch)
				for _, p := range batch {
					w.Work(cfg.WorkPerReq)
					apply(w, s, p.req)
				}
			}
			for {
				if cfg.Deadline > 0 {
					// CoDel-style queue-wait shedding: drop queued
					// requests whose remaining budget can no longer
					// cover the observed per-request service time —
					// they are already dead, and executing them would
					// only delay requests that can still make it.
					now := w.Now()
					for len(s.queue) > 0 {
						p := s.queue[0]
						if now.Add(s.svcEst) <= p.at.Add(p.req.Deadline) {
							break
						}
						s.queue = s.queue[1:]
						s.stats.DeadlineShed++
					}
				}
				if len(s.queue) == 0 {
					if closed {
						return
					}
					w.AdvanceIdle(serverPoll)
					w.Checkpoint()
					if s.bo != nil {
						// Idle ticks let a drained shard probe recovery.
						s.bo.tick(w.Now(), &s.e2e, &s.stats)
					}
					continue
				}
				n := cfg.Batch
				cs := s.cs
				if s.bo != nil {
					n = s.bo.batch(cfg.Batch)
					if s.bo.degraded() {
						cs = s.deg
					}
				}
				if s.budget != nil && !s.budget.Allow(w.Now()) {
					cs = s.deg
				}
				if n > len(s.queue) {
					n = len(s.queue)
				}
				batch = s.queue[:n:n]
				s.queue = s.queue[n:]
				start := w.Now()
				for _, p := range batch {
					queueLat.Observe(start.Sub(p.at))
				}
				// One critical section per batch: the body may be
				// retried transactionally, so it only touches simulated
				// memory (rolled back on abort). WorkPerReq models the
				// handler compute each request runs under the shard's
				// synchronization; aborted attempts re-pay it, exactly
				// as an elided section re-executes its body.
				cs.Critical(w, body)
				end := w.Now()
				svcLat.Observe(end.Sub(start))
				for _, p := range batch {
					d := end.Sub(p.at)
					e2e.Observe(d)
					if s.bo != nil {
						s.e2e.Observe(d)
					}
					if p.req.Deadline > 0 && d > p.req.Deadline {
						s.stats.DeadlineMiss++
					}
				}
				s.stats.Completed += uint64(n)
				s.stats.Batches++
				if cs != s.cs {
					s.stats.DegradedBatches++
				}
				if cfg.Deadline > 0 {
					per := end.Sub(start) / vtime.Duration(n)
					if s.svcEst == 0 {
						s.svcEst = per
					} else {
						s.svcEst = (3*s.svcEst + per) / 4
					}
				}
				if s.budget != nil {
					st := s.cs.Stats().TLE
					if a := st.TotalAborts(); a > s.lastAborts {
						s.budget.Spend(end, a-s.lastAborts)
						s.lastAborts = a
					}
				}
				if s.bo != nil {
					s.bo.tick(end, &s.e2e, &s.stats)
				}
				if end > lastDone {
					lastDone = end
				}
			}
		}

		for i := range shards {
			s := shards[i]
			for j := 0; j < cfg.Servers; j++ {
				e.Spawn(c, func(w *sim.Ctx) { serve(w, s) })
			}
		}

		// The dispatcher models the network frontend: an event source
		// that does not contend for a core with the shard servers.
		c.SetIdle(true)

		// The schedule is replayed relative to the post-construction
		// clock: building the shards advanced the driver's virtual time,
		// and replaying absolute times would dump every "overdue"
		// arrival as one artificial burst at t=0.
		base := c.Now()
		res.Start = base
		for _, q := range sched {
			if gap := base.Add(vtime.Duration(q.At)).Sub(c.Now()); gap > 0 {
				c.AdvanceIdle(gap)
				c.Checkpoint()
			}
			s := shards[q.Shard]
			s.stats.Arrivals++
			if len(s.queue) >= cfg.QueueCap {
				s.stats.Shed++
				continue
			}
			s.queue = append(s.queue, pending{req: q, at: c.Now()})
			s.stats.Admitted++
			if len(s.queue) > s.stats.MaxQueue {
				s.stats.MaxQueue = len(s.queue)
			}
		}
		closed = true
		c.WaitOthers(vtime.Microsecond)

		for i, s := range shards {
			s.stats.RetryExhausted = s.budget.Exhausted()
			res.PerShard[i] = s.stats
			res.SyncPerShard[i] = s.cs.Stats()
		}
		res.Drained = lastDone

		// Final-contents checksum over raw memory: no simulated events,
		// so traces (and the pinned snapshots) are unaffected.
		var pairs [][2]uint64
		for _, s := range shards {
			s.m.RawEach(func(k, v uint64) { pairs = append(pairs, [2]uint64{k, v}) })
		}
		res.StoreCheck = storeChecksum(pairs)
	})
	e.Run()

	for _, st := range res.PerShard {
		res.Arrivals += st.Arrivals
		res.Admitted += st.Admitted
		res.Shed += st.Shed
		res.Completed += st.Completed
		res.Batches += st.Batches
		res.DeadlineShed += st.DeadlineShed
		res.DeadlineMiss += st.DeadlineMiss
		res.DegradedBatches += st.DegradedBatches
		res.Brownouts += st.Brownouts
		res.RetryExhausted += st.RetryExhausted
		if st.BrownoutPeak > res.BrownoutPeak {
			res.BrownoutPeak = st.BrownoutPeak
		}
	}
	for _, s := range res.SyncPerShard {
		res.Sync.TLE = telemetry.Add(res.Sync.TLE, s.TLE)
	}
	res.E2E = e2e.Snapshot()
	res.Queue = queueLat.Snapshot()
	res.Service = svcLat.Snapshot()
	res.HTM = sys.Stats
	res.Cache = sys.Cache.Stats
	if col, ok := cfg.Recorder.(*telemetry.Collector); ok {
		sum := col.Summary()
		res.Telemetry = &sum
	}
	if inj != nil {
		res.Fault = inj.Stats
	}
	return res
}
