package service

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"natle/internal/expt"
	"natle/internal/fault"
	"natle/internal/vtime"
)

// quick returns a short trial config exercising the full pipeline
// (shedding included at high rates) in little host time.
func quick() Config {
	return Config{
		Seed:   7,
		Window: 250 * vtime.Microsecond,
	}
}

// TestScheduleByteIdentical pins the arrival layer's determinism
// contract: the request schedule is a pure function of (Config, Seed),
// so rendering it from one host worker and from several concurrent
// workers must produce byte-identical text for every arrival process.
func TestScheduleByteIdentical(t *testing.T) {
	for _, kind := range Arrivals() {
		t.Run(string(kind.Kind), func(t *testing.T) {
			cfg := quick()
			cfg.Arrival = kind.Kind
			cfg.Rate = 8e6
			render := func() []byte { return AppendSchedule(nil, cfg.Schedule()) }
			// Workers=1 and Workers=4 generate the same schedule 4 times
			// each; every copy must match every other byte for byte.
			seq := expt.Map(1, 4, func(int) []byte { return render() })
			par := expt.Map(4, 4, func(int) []byte { return render() })
			for i := 1; i < 4; i++ {
				if !bytes.Equal(seq[0], seq[i]) || !bytes.Equal(seq[0], par[i]) {
					t.Fatalf("schedule differs across generations (copy %d)", i)
				}
			}
			if len(seq[0]) == 0 {
				t.Fatal("empty schedule at 8e6 req/s")
			}
		})
	}
}

// TestScheduleSeedAndOrder checks that schedules are time-ordered,
// route consistently (Shard is a function of Key), and that different
// seeds give different schedules.
func TestScheduleSeedAndOrder(t *testing.T) {
	cfg := quick()
	cfg.Rate = 4e6
	a := cfg.Schedule()
	for i, q := range a {
		if q.ID != i {
			t.Fatalf("request %d has ID %d", i, q.ID)
		}
		if i > 0 && q.At < a[i-1].At {
			t.Fatalf("schedule out of order at %d: %v < %v", i, q.At, a[i-1].At)
		}
		if want := int(hash64(q.Key) % 8); q.Shard != want {
			t.Fatalf("request %d: shard %d, want %d", i, q.Shard, want)
		}
	}
	cfg.Seed = 8
	b := cfg.Schedule()
	if bytes.Equal(AppendSchedule(nil, a), AppendSchedule(nil, b)) {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// resultFingerprint renders everything a trial measures; the
// determinism test compares these strings across runs and worker
// counts.
func resultFingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "reqs=%d arr=%d adm=%d shed=%d done=%d batches=%d clamped=%v\n",
		r.Requests, r.Arrivals, r.Admitted, r.Shed, r.Completed, r.Batches, r.BatchClamped)
	fmt.Fprintf(&b, "dshed=%d miss=%d deg=%d bo=%d peak=%d retry=%d\n",
		r.DeadlineShed, r.DeadlineMiss, r.DegradedBatches, r.Brownouts,
		r.BrownoutPeak, r.RetryExhausted)
	fmt.Fprintf(&b, "e2e=%v/%v/%v queue=%v service=%v\n",
		r.E2E.Quantile(0.5), r.E2E.Quantile(0.99), r.E2E.Quantile(0.999),
		r.Queue.Quantile(0.99), r.Service.Quantile(0.99))
	fmt.Fprintf(&b, "start=%v last=%v drained=%v\n", r.Start, r.LastArrival, r.Drained)
	fmt.Fprintf(&b, "sync=%+v\nhtm=%+v\nfault=%+v\n", r.Sync.TLE, r.HTM, r.Fault)
	for i, s := range r.PerShard {
		fmt.Fprintf(&b, "shard%d=%+v\n", i, s)
	}
	return b.String()
}

// TestRunDeterministic runs the same trial from concurrent pool
// workers and sequentially; every fingerprint must match — the service
// Result is a pure function of (Config, Seed).
func TestRunDeterministic(t *testing.T) {
	for _, sch := range []string{"lock", "tle", "natle"} {
		t.Run(sch, func(t *testing.T) {
			cfg := quick()
			cfg.Scheme = sch
			cfg.Rate = 16e6
			cfg.Arrival = ArrivalBursty
			fps := expt.Map(4, 4, func(int) string { return resultFingerprint(Run(cfg)) })
			for i := 1; i < 4; i++ {
				if fps[i] != fps[0] {
					t.Fatalf("run %d diverged:\n--- run 0\n%s\n--- run %d\n%s", i, fps[0], i, fps[i])
				}
			}
		})
	}
}

// TestConservation asserts the service's loss accounting under every
// fault schedule (and fault-free): arrivals = admitted + shed and
// admitted = completed — shedding is the only sanctioned loss, no
// matter what the injector does to the HTM underneath.
func TestConservation(t *testing.T) {
	schedules := append([]string{""}, fault.ScheduleNames()...)
	for _, sn := range schedules {
		name := sn
		if name == "" {
			name = "fault-free"
		}
		t.Run(name, func(t *testing.T) {
			cfg := quick()
			cfg.Scheme = "tle-robust"
			cfg.Arrival = ArrivalBursty
			cfg.Rate = 24e6 // past the knee: shedding genuinely occurs
			if sn != "" {
				sched, err := fault.LookupSchedule(sn)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Fault = &sched.Profile
			}
			r := Run(cfg)
			if r.Arrivals != uint64(r.Requests) {
				t.Errorf("arrivals %d != schedule length %d", r.Arrivals, r.Requests)
			}
			if r.Arrivals != r.Admitted+r.Shed {
				t.Errorf("admission leak: arrivals %d != admitted %d + shed %d",
					r.Arrivals, r.Admitted, r.Shed)
			}
			if r.Admitted != r.Completed {
				t.Errorf("completion leak: admitted %d != completed %d", r.Admitted, r.Completed)
			}
			for i, s := range r.PerShard {
				if s.Arrivals != s.Admitted+s.Shed || s.Admitted != s.Completed {
					t.Errorf("shard %d leak: %+v", i, s)
				}
			}
		})
	}
}

// TestBatchClamp checks the Batch capability contract: schemes without
// it (no mutual exclusion, or no capacity fallback) have multi-request
// batches forced to 1, flagged on the result; capable schemes keep
// their batch size.
func TestBatchClamp(t *testing.T) {
	for _, tc := range []struct {
		scheme  string
		clamped bool
	}{
		{"none", true}, {"htm-raw", true},
		{"lock", false}, {"tle", false},
	} {
		cfg := quick()
		cfg.Scheme = tc.scheme
		cfg.Rate = 2e6
		cfg.Batch = 8
		r := Run(cfg)
		if r.BatchClamped != tc.clamped {
			t.Errorf("%s: BatchClamped = %v, want %v", tc.scheme, r.BatchClamped, tc.clamped)
		}
		want := 8
		if tc.clamped {
			want = 1
		}
		if r.Config.Batch != want {
			t.Errorf("%s: effective batch %d, want %d", tc.scheme, r.Config.Batch, want)
		}
		if r.Admitted != r.Completed {
			t.Errorf("%s: admitted %d != completed %d", tc.scheme, r.Admitted, r.Completed)
		}
	}
}

// TestSearchSLO sanity-checks the bisection: the reported sustained
// rate comes from a probe that actually sustained, an impossible
// target reports unsustainable, and a trivially loose ceiling is hit
// exactly.
func TestSearchSLO(t *testing.T) {
	cfg := quick()
	cfg.Scheme = "lock"
	slo := SLO{Target: vtime.Millisecond, Lo: 1e6, Hi: 4e7, Iters: 3}
	r := SearchSLO(cfg, slo)
	if r.Sustained <= 0 {
		t.Fatalf("lock unsustainable even at %g req/s: %v", slo.Lo, r)
	}
	found := false
	for _, p := range r.Probes {
		if p.Rate == r.Sustained {
			if !p.Sustains {
				t.Fatalf("sustained rate %g comes from a failing probe", r.Sustained)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("sustained rate %g matches no probe", r.Sustained)
	}

	// An impossible target: nothing beats the serverPoll latency floor.
	hard := SearchSLO(cfg, SLO{Target: vtime.Nanosecond, Lo: 1e6, Hi: 4e6, Iters: 1})
	if hard.Sustained != 0 {
		t.Fatalf("1ns target reported sustainable at %g req/s", hard.Sustained)
	}

	// A floor-only bracket whose ceiling holds reports the ceiling.
	loose := SearchSLO(cfg, SLO{Target: vtime.Millisecond, Lo: 1e5, Hi: 2e5, Iters: 1})
	if loose.Sustained != 2e5 {
		t.Fatalf("loose ceiling: sustained %g, want 2e5", loose.Sustained)
	}
}

// TestArrivalLookup exercises the arrival registry surface.
func TestArrivalLookup(t *testing.T) {
	for _, n := range ArrivalNames() {
		k, err := LookupArrival(n)
		if err != nil || string(k) != n {
			t.Errorf("LookupArrival(%q) = %v, %v", n, k, err)
		}
	}
	if _, err := LookupArrival("nope"); err == nil {
		t.Error("LookupArrival(nope) succeeded")
	}
	if h := ArrivalHelp(); !strings.Contains(h, "poisson") || !strings.Contains(h, "bursty") {
		t.Errorf("ArrivalHelp missing processes:\n%s", h)
	}
}
