package service

import (
	"testing"

	"natle/internal/expt"
	"natle/internal/fault"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// overloaded returns a trial driven well past the shards' capacity
// with the full overload-control stack armed.
func overloaded() Config {
	cfg := quick()
	cfg.Scheme = "tle-robust"
	cfg.Rate = 64e6
	cfg.QueueCap = 1024
	cfg.Deadline = 50 * vtime.Microsecond
	cfg.Brownout = &BrownoutConfig{SLO: 50 * vtime.Microsecond}
	cfg.RetryBudget = 256
	return cfg
}

// TestDeadlineDraws pins the deadline sampling contract: no deadlines
// without the knob, and with it every request gets a budget in
// [Deadline/2, 3*Deadline/2).
func TestDeadlineDraws(t *testing.T) {
	cfg := quick()
	cfg.Rate = 8e6
	for _, q := range cfg.Schedule() {
		if q.Deadline != 0 {
			t.Fatalf("request %d has deadline %v with the knob off", q.ID, q.Deadline)
		}
	}
	d := 100 * vtime.Microsecond
	cfg.Deadline = d
	sched := cfg.Schedule()
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	for _, q := range sched {
		if q.Deadline < d/2 || q.Deadline >= d/2+d {
			t.Fatalf("request %d deadline %v outside [%v, %v)", q.ID, q.Deadline, d/2, d/2+d)
		}
	}
}

// TestDeadlineShedding drives the service past capacity with deadlines
// armed: queue-wait shedding must fire, be counted separately from
// capacity sheds, and the extended conservation law must hold globally
// and per shard.
func TestDeadlineShedding(t *testing.T) {
	cfg := quick()
	cfg.Scheme = "tle-robust"
	cfg.Rate = 64e6
	cfg.QueueCap = 1024
	cfg.Deadline = 50 * vtime.Microsecond
	r := Run(cfg)
	if r.DeadlineShed == 0 {
		t.Fatal("overloaded deep queue shed no deadlined requests")
	}
	if r.Arrivals != r.Admitted+r.Shed {
		t.Fatalf("admission leak: arrivals %d != admitted %d + shed %d",
			r.Arrivals, r.Admitted, r.Shed)
	}
	if r.Admitted != r.Completed+r.DeadlineShed {
		t.Fatalf("completion leak: admitted %d != completed %d + deadline-shed %d",
			r.Admitted, r.Completed, r.DeadlineShed)
	}
	for i, s := range r.PerShard {
		if s.Arrivals != s.Admitted+s.Shed || s.Admitted != s.Completed+s.DeadlineShed {
			t.Errorf("shard %d leak: %+v", i, s)
		}
	}

	// Without deadlines nothing may be deadline-shed or counted missed.
	cfg.Deadline = 0
	r = Run(cfg)
	if r.DeadlineShed != 0 || r.DeadlineMiss != 0 {
		t.Fatalf("deadline counters active with the knob off: %+v", r)
	}
}

// TestBrownoutControllerLadder unit-tests the per-shard controller:
// sustained p99 breaches climb the ladder to the scheme downgrade,
// and Hold in-SLO windows per level probe the way back down.
func TestBrownoutControllerLadder(t *testing.T) {
	cfg := BrownoutConfig{
		SLO:      100 * vtime.Microsecond,
		Window:   10 * vtime.Microsecond,
		MinCount: 1,
	}.withDefaults()
	var h telemetry.Histogram
	var st ShardStats
	b := newBrownout(cfg, 0, 0, 8, nil)
	if b.maxLevel != 4 { // 8 -> 4 -> 2 -> 1, then the scheme downgrade
		t.Fatalf("maxLevel = %d, want 4", b.maxLevel)
	}

	now := vtime.Time(0)
	b.tick(now, &h, &st) // arms the first window

	// Breaching windows climb one level each and saturate at maxLevel.
	for i := 0; i < 6; i++ {
		h.Observe(vtime.Millisecond)
		now = now.Add(cfg.Window)
		b.tick(now, &h, &st)
	}
	if b.level != b.maxLevel || !b.degraded() {
		t.Fatalf("level %d after sustained breach, want %d (degraded)", b.level, b.maxLevel)
	}
	if got := b.batch(8); got != 1 {
		t.Fatalf("degraded batch bound %d, want 1", got)
	}
	if st.BrownoutPeak != b.maxLevel {
		t.Fatalf("peak %d, want %d", st.BrownoutPeak, b.maxLevel)
	}

	// In-SLO windows recover one level per Hold+1 windows, back to 0.
	transitions := st.Brownouts
	for i := 0; i < b.maxLevel*(cfg.Hold+1)+2; i++ {
		h.Observe(vtime.Microsecond)
		now = now.Add(cfg.Window)
		b.tick(now, &h, &st)
	}
	if b.level != 0 {
		t.Fatalf("level %d after sustained recovery, want 0", b.level)
	}
	if st.Brownouts != transitions+uint64(b.maxLevel) {
		t.Fatalf("recovery made %d transitions, want %d",
			st.Brownouts-transitions, b.maxLevel)
	}

	// Sparse windows (below MinCount) freeze the level entirely.
	cfgSparse := cfg
	cfgSparse.MinCount = 100
	bs := newBrownout(cfgSparse, 0, 0, 8, nil)
	var st2 ShardStats
	bs.tick(now, &h, &st2)
	for i := 0; i < 4; i++ {
		h.Observe(vtime.Millisecond)
		now = now.Add(cfg.Window)
		bs.tick(now, &h, &st2)
	}
	if bs.level != 0 || st2.Brownouts != 0 {
		t.Fatalf("sparse windows moved the level: %d (%d transitions)", bs.level, st2.Brownouts)
	}
}

// TestBrownoutEndToEnd arms the controller on an overloaded service:
// levels must move, batches must run degraded, and every transition
// must reach the telemetry recorder.
func TestBrownoutEndToEnd(t *testing.T) {
	cfg := overloaded()
	col := telemetry.NewCollector(telemetry.Config{})
	cfg.Recorder = col
	r := Run(cfg)
	if r.Brownouts == 0 {
		t.Fatal("overloaded run made no brownout transitions")
	}
	if r.BrownoutPeak == 0 {
		t.Fatal("overloaded run peaked at level 0")
	}
	if r.DegradedBatches == 0 {
		t.Fatal("overloaded run never ran a degraded batch")
	}
	if got := col.Summary().Brownouts; got != r.Brownouts {
		t.Fatalf("telemetry saw %d brownout transitions, result says %d", got, r.Brownouts)
	}
	if r.Admitted != r.Completed+r.DeadlineShed {
		t.Fatalf("completion leak under brownout: admitted %d != completed %d + deadline-shed %d",
			r.Admitted, r.Completed, r.DeadlineShed)
	}
}

// TestRetryBudgetDegradesService: an abort-heavy fault schedule with a
// small per-shard retry budget must exhaust windows and push batches
// onto the degraded scheme — without losing a single request.
func TestRetryBudgetDegradesService(t *testing.T) {
	sched, err := fault.LookupSchedule("storm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quick()
	cfg.Scheme = "tle-robust"
	cfg.Rate = 32e6
	cfg.Fault = &sched.Profile
	cfg.RetryBudget = 1
	r := Run(cfg)
	if r.RetryExhausted == 0 {
		t.Fatal("a 1-token budget under an abort storm never ran dry")
	}
	if r.DegradedBatches == 0 {
		t.Fatal("exhausted budget never degraded a batch")
	}
	if r.Arrivals != r.Admitted+r.Shed || r.Admitted != r.Completed {
		t.Fatalf("conservation broken: %+v", r)
	}
}

// TestOverloadDeterministic: the full overload-control stack (deadlines,
// brownout, retry budget) stays a pure function of (Config, Seed) at
// any host parallelism.
func TestOverloadDeterministic(t *testing.T) {
	cfg := overloaded()
	cfg.Arrival = ArrivalBursty
	fps := expt.Map(4, 4, func(int) string { return resultFingerprint(Run(cfg)) })
	for i := 1; i < 4; i++ {
		if fps[i] != fps[0] {
			t.Fatalf("run %d diverged:\n--- run 0\n%s\n--- run %d\n%s", i, fps[0], i, fps[i])
		}
	}
}

// TestConservationWithOverloadControl mirrors TestConservation with
// the full stack armed: under every fault schedule the extended law
// (admitted = completed + deadline-shed) holds exactly.
func TestConservationWithOverloadControl(t *testing.T) {
	schedules := append([]string{""}, fault.ScheduleNames()...)
	for _, sn := range schedules {
		name := sn
		if name == "" {
			name = "fault-free"
		}
		t.Run(name, func(t *testing.T) {
			cfg := overloaded()
			cfg.Arrival = ArrivalBursty
			if sn != "" {
				sched, err := fault.LookupSchedule(sn)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Fault = &sched.Profile
			}
			r := Run(cfg)
			if r.Arrivals != r.Admitted+r.Shed {
				t.Errorf("admission leak: arrivals %d != admitted %d + shed %d",
					r.Arrivals, r.Admitted, r.Shed)
			}
			if r.Admitted != r.Completed+r.DeadlineShed {
				t.Errorf("completion leak: admitted %d != completed %d + deadline-shed %d",
					r.Admitted, r.Completed, r.DeadlineShed)
			}
			for i, s := range r.PerShard {
				if s.Arrivals != s.Admitted+s.Shed || s.Admitted != s.Completed+s.DeadlineShed {
					t.Errorf("shard %d leak: %+v", i, s)
				}
			}
		})
	}
}
