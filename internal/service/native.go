package service

import (
	"fmt"
	"runtime"
	"sort"

	"natle/internal/arena"
	"natle/internal/backend"
	"natle/internal/mem"
	"natle/internal/scheme"
	"natle/internal/simmap"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// RunNative executes one service trial on a native backend.World: the
// same arrivals -> admission -> shards -> telemetry pipeline as Run,
// but on real goroutines over real atomic words on wall-clock time.
// Thread 0 is the dispatcher, replaying the deterministic schedule
// against the wall clock; threads 1..Shards*Servers are shard servers
// draining bounded channel queues in batches, each batch one critical
// section under the shard's scheme instance (any native registry
// scheme — native-tle, native-tle-striped, ...). The shard stores are
// simmap.BackendMap arenas in backend words, so every store access is
// transactional under optimistic schemes exactly as on the simulator.
//
// Native results are measurements, not predictions: latency
// distributions vary run to run. What must NOT vary is the request
// accounting — the conservation invariants Arrivals == Admitted + Shed
// and Admitted == Completed + DeadlineShed hold exactly — and, with
// one server per shard and no shedding, the final store contents match
// the simulator's run of the same Config (Result.StoreCheck).
//
// The sim-only overload-control machinery (Brownout, RetryBudget),
// fault injection, and telemetry recorders are not supported here;
// RunNative panics rather than silently ignoring them.
func RunNative(w backend.World, cfg Config) *Result {
	if w.Kind() != backend.Native {
		panic(fmt.Sprintf("service: RunNative requires a native world, got %q", w.Kind()))
	}
	cfg.defaults()
	switch {
	case cfg.Brownout != nil:
		panic("service: Brownout is not supported on the native backend")
	case cfg.RetryBudget > 0:
		panic("service: RetryBudget is not supported on the native backend")
	case cfg.Fault != nil && cfg.Fault.Enabled():
		panic("service: fault injection is not supported on the native backend")
	case cfg.Recorder != nil:
		panic("service: telemetry recorders are not supported on the native backend")
	}
	desc, err := scheme.LookupFor(w.Kind(), cfg.Scheme)
	if err != nil {
		panic(fmt.Sprintf("service: %v", err))
	}
	desc = desc.Configure(scheme.Options{TLE: cfg.TLE, NATLE: cfg.NATLE})
	res := &Result{Config: cfg}
	if cfg.Batch > 1 && !desc.Batch {
		cfg.Batch = 1
		res.Config.Batch = 1
		res.BatchClamped = true
	}

	sched := cfg.Schedule()
	res.Requests = len(sched)
	if len(sched) > 0 {
		res.LastArrival = sched[len(sched)-1].At
	}

	threads := 1 + cfg.Shards*cfg.Servers

	// npending is one admitted request in flight to a server; at is the
	// admission wall-clock in backend nanoseconds.
	type npending struct {
		req Request
		at  int64
	}
	queues := make([]chan npending, cfg.Shards)
	for i := range queues {
		queues[i] = make(chan npending, cfg.QueueCap)
	}

	// serverState is one server thread's private ledger, merged after
	// the trial — servers of a shard share only the queue channel, the
	// store words, and the scheme instance.
	type serverState struct {
		stats    ShardStats // Completed/Batches/DeadlineShed/DeadlineMiss only
		e2e      telemetry.Histogram
		queue    telemetry.Histogram
		svc      telemetry.Histogram
		lastDone int64
	}
	servers := make([]*serverState, threads)
	for t := 1; t < threads; t++ {
		servers[t] = &serverState{}
	}
	// The dispatcher's admission ledger (thread 0 is the only writer).
	disp := make([]ShardStats, cfg.Shards)
	var baseNs int64

	maps := make([]*simmap.BackendMap, cfg.Shards)
	css := make([]scheme.BackendInstance, cfg.Shards)

	nsDur := func(ns int64) vtime.Duration { return vtime.Duration(ns) * vtime.Nanosecond }

	w.Run(threads, func(c backend.Ctx) {
		// One arena lane per thread; each lane big enough for the
		// worst case of one server applying every scheduled insert.
		laneWords := len(sched)*simmap.NodeWords() + mem.WordsPerLine
		ar := arena.New(c, threads+1, laneWords)
		for i := range maps {
			maps[i] = simmap.NewBackendMap(c, ar, cfg.LogBuckets)
			css[i] = desc.NewNative(w, c)
		}
	}, func(c backend.Ctx) {
		t := c.Thread()
		if t == 0 {
			// Dispatcher: replay the schedule against the wall clock,
			// spinning through the scheduler between arrivals so the
			// servers run even on few cores.
			base := c.Now()
			baseNs = base
			for _, q := range sched {
				target := base + int64(q.At)/int64(vtime.Nanosecond)
				for c.Now() < target {
					runtime.Gosched()
				}
				d := &disp[q.Shard]
				d.Arrivals++
				select {
				case queues[q.Shard] <- npending{req: q, at: c.Now()}:
					d.Admitted++
					if n := len(queues[q.Shard]); n > d.MaxQueue {
						d.MaxQueue = n
					}
				default:
					d.Shed++
				}
			}
			for _, ch := range queues {
				close(ch)
			}
			return
		}

		shard := (t - 1) / cfg.Servers
		ch := queues[shard]
		m := maps[shard]
		cs := css[shard]
		sv := servers[t]
		var svcEst int64 // per-request service-time EWMA, ns

		// Shed a queued request whose remaining deadline budget can no
		// longer cover the observed service time (the native mirror of
		// the sim path's CoDel-style queue-wait shedding).
		dead := func(p npending, now int64) bool {
			if p.req.Deadline <= 0 {
				return false
			}
			return now+svcEst > p.at+int64(p.req.Deadline)/int64(vtime.Nanosecond)
		}

		batch := make([]npending, 0, cfg.Batch)
		body := func() {
			for _, p := range batch {
				c.Work(cfg.WorkPerReq)
				switch p.req.Op {
				case OpGet:
					m.Get(c, p.req.Key)
				case OpPut:
					m.Put(c, p.req.Key, p.req.Val)
				case OpDel:
					m.Delete(c, p.req.Key)
				case NumOps:
					panic("service: NumOps is not an operation")
				}
			}
		}
		for {
			p, ok := <-ch
			if !ok {
				return
			}
			now := c.Now()
			if dead(p, now) {
				sv.stats.DeadlineShed++
				continue
			}
			batch = append(batch[:0], p)
		fill:
			for len(batch) < cfg.Batch {
				select {
				case p2, ok2 := <-ch:
					if !ok2 {
						break fill
					}
					if dead(p2, now) {
						sv.stats.DeadlineShed++
						continue
					}
					batch = append(batch, p2)
				default:
					break fill
				}
			}

			start := c.Now()
			for _, p := range batch {
				sv.queue.Observe(nsDur(start - p.at))
			}
			// One critical section per batch, as on the simulator: the
			// body may be retried by optimistic schemes, so it touches
			// only backend words (rolled back on abort) and re-pays the
			// handler compute on every attempt.
			cs.Critical(c, body)
			end := c.Now()
			sv.svc.Observe(nsDur(end - start))
			for _, p := range batch {
				d := end - p.at
				sv.e2e.Observe(nsDur(d))
				if p.req.Deadline > 0 && nsDur(d) > p.req.Deadline {
					sv.stats.DeadlineMiss++
				}
			}
			sv.stats.Completed += uint64(len(batch))
			sv.stats.Batches++
			if cfg.Deadline > 0 {
				per := (end - start) / int64(len(batch))
				if svcEst == 0 {
					svcEst = per
				} else {
					svcEst = (3*svcEst + per) / 4
				}
			}
			if end > sv.lastDone {
				sv.lastDone = end
			}
		}
	})

	// Merge the per-thread ledgers into the shared Result shape.
	var e2e, queueLat, svcLat telemetry.Histogram
	res.PerShard = make([]ShardStats, cfg.Shards)
	res.SyncPerShard = make([]scheme.Stats, cfg.Shards)
	var lastDone int64
	for i := range res.PerShard {
		res.PerShard[i] = disp[i]
		res.SyncPerShard[i] = css[i].Stats()
	}
	for t := 1; t < threads; t++ {
		sv := servers[t]
		st := &res.PerShard[(t-1)/cfg.Servers]
		st.Completed += sv.stats.Completed
		st.Batches += sv.stats.Batches
		st.DeadlineShed += sv.stats.DeadlineShed
		st.DeadlineMiss += sv.stats.DeadlineMiss
		e2e.Merge(&sv.e2e)
		queueLat.Merge(&sv.queue)
		svcLat.Merge(&sv.svc)
		if sv.lastDone > lastDone {
			lastDone = sv.lastDone
		}
	}
	for _, st := range res.PerShard {
		res.Arrivals += st.Arrivals
		res.Admitted += st.Admitted
		res.Shed += st.Shed
		res.Completed += st.Completed
		res.Batches += st.Batches
		res.DeadlineShed += st.DeadlineShed
		res.DeadlineMiss += st.DeadlineMiss
	}
	for _, s := range res.SyncPerShard {
		res.Sync.TLE = telemetry.Add(res.Sync.TLE, s.TLE)
	}
	res.E2E = e2e.Snapshot()
	res.Queue = queueLat.Snapshot()
	res.Service = svcLat.Snapshot()
	if lastDone > baseNs {
		res.Drained = vtime.Time(nsDur(lastDone - baseNs))
	}

	var pairs [][2]uint64
	for _, m := range maps {
		m.PeekEach(w, func(k, v uint64) { pairs = append(pairs, [2]uint64{k, v}) })
	}
	res.StoreCheck = storeChecksum(pairs)
	return res
}

// NativeMemWords returns the backend words a native world needs for
// this Config: the shard bucket arrays plus per-thread arena lanes
// each sized for the worst case of one server applying every
// scheduled insert (the bump allocator does not reuse deleted nodes).
func (cfg Config) NativeMemWords() int {
	cfg.defaults()
	sched := cfg.Schedule()
	threads := 1 + cfg.Shards*cfg.Servers
	laneWords := arena.RoundLine(len(sched)*simmap.NodeWords() + mem.WordsPerLine)
	words := (threads+1)*(laneWords+mem.WordsPerLine) +
		cfg.Shards*(1<<cfg.LogBuckets) +
		1<<16 // locks, slack
	if words < 1<<20 {
		words = 1 << 20
	}
	return words
}

// storeChecksum hashes final KV contents: FNV-1a over the (key, value)
// pairs in key order, folded with the pair count. Keys are unique
// across shards (each key routes to exactly one shard), so the global
// sort gives one canonical order on every backend.
func storeChecksum(pairs [][2]uint64) uint64 {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	h := uint64(1469598103934665603)
	for _, p := range pairs {
		h = (h ^ p[0]) * 1099511628211
		h = (h ^ p[1]) * 1099511628211
	}
	return h ^ uint64(len(pairs))*0x9e3779b97f4a7c15
}
