package service

import (
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// Overload control: the machinery that makes the service fail
// gracefully instead of collapsing when offered load exceeds
// capacity. Three cooperating mechanisms, all off by default:
//
//   - per-request deadlines (Config.Deadline): each scheduled request
//     carries a completion budget; servers shed queued requests whose
//     remaining budget can no longer cover the observed per-request
//     service time (CoDel-style queue-wait shedding — the store stops
//     burning capacity on requests that are already dead), counted as
//     DeadlineShed, separately from capacity sheds;
//   - a per-shard retry budget (Config.RetryBudget, tle.RetryBudget):
//     aborted hardware attempts spend tokens shared by all of a
//     shard's servers; a dry bucket runs batches under the degraded
//     mutual-exclusion scheme until the next window refills it, so an
//     abort storm cannot extract unbounded wasted work;
//   - a brownout controller (Config.Brownout): a per-shard state
//     machine on the rolling e2e p99 that first shrinks the batch
//     size level by level and finally downgrades the scheme to the
//     mutual-exclusion baseline (scheme.MutexFor), then probes its
//     way back up once the window p99 holds under the SLO. Every
//     transition is emitted through telemetry (Recorder.Brownout).

// BrownoutConfig tunes the per-shard brownout controller. The zero
// value of every field selects the documented default.
type BrownoutConfig struct {
	// SLO is the rolling-p99 target on end-to-end latency; a decision
	// window whose p99 exceeds it degrades the shard one level
	// (default 1ms, the service SLO used by the bisection).
	SLO vtime.Duration
	// Window is the controller's decision interval (default 50µs). The
	// per-shard retry budget refills on the same interval.
	Window vtime.Duration
	// MinCount is the minimum completions a window needs before the
	// controller acts on its p99 (default 8; sparser windows carry no
	// signal and freeze the level).
	MinCount uint64
	// Hold is how many consecutive in-SLO windows a level is held
	// before the controller probes one level of recovery (default 2).
	Hold int
	// MinBatch is the batch-size floor of the degradation ladder
	// (default 1).
	MinBatch int
}

// withDefaults returns the config with zero fields resolved.
func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.SLO <= 0 {
		c.SLO = vtime.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 50 * vtime.Microsecond
	}
	if c.MinCount == 0 {
		c.MinCount = 8
	}
	if c.Hold <= 0 {
		c.Hold = 2
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 1
	}
	return c
}

// brownout is one shard's controller. Level 0 is normal operation;
// levels 1..maxLevel-1 halve the batch size per level down to
// MinBatch; level maxLevel runs batches of MinBatch under the
// degraded mutual-exclusion scheme. All state is host-side and
// mutated only under the simulator's serialization token.
type brownout struct {
	cfg      BrownoutConfig
	shard    int
	socket   int
	rec      telemetry.Recorder // defaulted to telemetry.Nop()
	maxLevel int

	level   int
	hold    int // in-SLO windows left before a recovery probe
	started bool
	winAt   vtime.Time                  // current window start
	last    telemetry.HistogramSnapshot // shard e2e at window start
}

// newBrownout builds the controller for one shard. cfg must already
// have defaults resolved; batch is the shard's configured batch size
// (the top of the degradation ladder).
func newBrownout(cfg BrownoutConfig, shard, socket, batch int, rec telemetry.Recorder) *brownout {
	levels := 0
	for b := batch; b > cfg.MinBatch; b /= 2 {
		levels++
	}
	b := &brownout{
		cfg:      cfg,
		shard:    shard,
		socket:   socket,
		rec:      telemetry.Nop(),
		maxLevel: levels + 1, // batch-halving levels, then the scheme downgrade
	}
	if rec != nil {
		b.rec = rec
	}
	return b
}

// batch returns the batch bound at the current level.
func (b *brownout) batch(base int) int {
	n := base >> b.level
	if n < b.cfg.MinBatch {
		n = b.cfg.MinBatch
	}
	return n
}

// degraded reports whether the shard has been downgraded to the
// mutual-exclusion scheme.
func (b *brownout) degraded() bool { return b.level == b.maxLevel }

// setLevel transitions to level to, emitting the move through
// telemetry and recording it in the shard stats.
func (b *brownout) setLevel(now vtime.Time, to int, st *ShardStats) {
	b.rec.Brownout(now, b.shard, b.socket, b.level, to)
	b.level = to
	st.Brownouts++
	if to > st.BrownoutPeak {
		st.BrownoutPeak = to
	}
}

// tick runs the controller: servers call it after every batch and on
// idle polls. At each Window boundary it takes the shard's e2e
// histogram delta; a p99 breach degrades one level, and Hold
// consecutive in-SLO windows earn a one-level recovery probe.
func (b *brownout) tick(now vtime.Time, h *telemetry.Histogram, st *ShardStats) {
	if !b.started {
		b.started = true
		b.winAt = now
		b.last = h.Snapshot()
		return
	}
	if now.Sub(b.winAt) < b.cfg.Window {
		return
	}
	snap := h.Snapshot()
	win := snap.Sub(b.last)
	b.winAt = now
	b.last = snap
	if win.Count() < b.cfg.MinCount {
		return
	}
	if win.Quantile(0.99) > b.cfg.SLO {
		if b.level < b.maxLevel {
			b.setLevel(now, b.level+1, st)
		}
		b.hold = b.cfg.Hold
		return
	}
	if b.level == 0 {
		return
	}
	if b.hold > 0 {
		b.hold--
		return
	}
	b.setLevel(now, b.level-1, st)
	b.hold = b.cfg.Hold
}
