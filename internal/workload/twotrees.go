package workload

import (
	"fmt"

	"natle/internal/backend"
	"natle/internal/scheme"
	"natle/internal/sets"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// TwoTreesConfig describes the paper's Figure 16 experiment: two AVL
// trees, each protected by its own lock; half the threads run 100%
// updates on tree U, the other half run 100% lookups (with extra
// external work to equalize single-thread op cost) on tree S. Threads
// are pinned so each socket hosts equal numbers from both groups.
type TwoTreesConfig struct {
	Base Config // machine, pinning, lock kind, durations, seeds

	// SearchWork is the external-work iteration count added to each
	// search operation so the two groups have comparable single-thread
	// throughput (the paper adds work because searches are much
	// cheaper than updates).
	SearchWork int
}

// TwoTreesResult reports combined and per-group throughput.
type TwoTreesResult struct {
	UpdateOps uint64 // operations completed on the update-only tree
	SearchOps uint64 // operations completed on the search-only tree
	Duration  vtime.Duration

	UpdateSync scheme.Stats // scheme counters for the update tree's lock
	SearchSync scheme.Stats // scheme counters for the search tree's lock
}

// CombinedThroughput returns total operations per virtual second.
func (r *TwoTreesResult) CombinedThroughput() float64 {
	return float64(r.UpdateOps+r.SearchOps) / r.Duration.Seconds()
}

// UpdateThroughput returns the update group's operations per second.
func (r *TwoTreesResult) UpdateThroughput() float64 {
	return float64(r.UpdateOps) / r.Duration.Seconds()
}

// SearchThroughput returns the search group's operations per second.
func (r *TwoTreesResult) SearchThroughput() float64 {
	return float64(r.SearchOps) / r.Duration.Seconds()
}

// RunTwoTrees executes the Figure 16 experiment. Thread i updates tree
// U when i is even and searches tree S when i is odd; under the
// paper's fill-socket-first pinning with an even thread count this
// splits each socket's threads equally between the groups.
func RunTwoTrees(cfg TwoTreesConfig) *TwoTreesResult {
	base := cfg.Base
	base.defaults()
	e := sim.New(base.Prof, base.Pin, base.Threads, base.Seed)
	sys := newSystem(e, base)
	res := &TwoTreesResult{Duration: base.Duration}

	desc, err := scheme.LookupFor(backend.Sim, string(base.Lock))
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	desc = desc.Configure(scheme.Options{TLE: base.TLE, NATLE: base.NATLE})

	e.Spawn(nil, func(c *sim.Ctx) {
		updTree := sets.NewAVL(sys, c)
		schTree := sets.NewAVL(sys, c)
		// Per-lock independence is the point of the experiment: each
		// tree gets its own instance of the same scheme.
		updLock := desc.New(sys, c, 0)
		schLock := desc.New(sys, c, 0)

		sets.Prefill(updTree, c, base.KeyRange)
		sets.Prefill(schTree, c, base.KeyRange)

		var started bool
		var measureStart, deadline vtime.Time
		for i := 0; i < base.Threads; i++ {
			i := i
			e.Spawn(c, func(w *sim.Ctx) {
				w.WaitUntil(500*vtime.Nanosecond, func() bool { return started })
				var counted uint64
				for {
					opStart := w.Now()
					if opStart >= deadline {
						break
					}
					key := int64(w.Rand64() % uint64(base.KeyRange))
					if i%2 == 0 {
						if w.Rand64()&1 == 0 {
							updLock.Critical(w, func() { updTree.Insert(w, key) })
						} else {
							updLock.Critical(w, func() { updTree.Delete(w, key) })
						}
					} else {
						schLock.Critical(w, func() { schTree.Contains(w, key) })
						if cfg.SearchWork > 0 {
							w.Work(w.Intn(cfg.SearchWork))
						}
					}
					if opStart >= measureStart && w.Now() <= deadline {
						counted++
					}
				}
				if i%2 == 0 {
					res.UpdateOps += counted
				} else {
					res.SearchOps += counted
				}
			})
		}
		measureStart = c.Now().Add(base.Warmup)
		deadline = measureStart.Add(base.Duration)
		started = true
		c.SetIdle(true)
		c.WaitOthers(2 * vtime.Microsecond)
		res.UpdateSync = updLock.Stats()
		res.SearchSync = schLock.Stats()
	})
	e.Run()
	return res
}
