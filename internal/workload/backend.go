package workload

import (
	"fmt"
	"sort"

	"natle/internal/arena"
	"natle/internal/backend"
	"natle/internal/fault"
	"natle/internal/mem"
	"natle/internal/scheme"
	"natle/internal/sets"
	"natle/internal/tle"
)

// The backend-agnostic workloads. Unlike the virtual-time sweeps above
// (duration-bounded, meaningful only on the simulator), these trials
// are *operation-count*-bounded and express every shared access
// through backend.Ctx, so one driver runs bit-identically on the
// simulator and natively. Their operation schedules are pure hashes of
// (seed, thread, op index) — independent of interleaving — and their
// mutations either commute (counter increments) or touch thread-owned
// key partitions (twotrees updates), so the final shared-memory
// contents are a function of the config alone. That property is what
// the cross-backend conformance suite checks.

// Backend workload names.
const (
	BackendCounter  = "counter"  // all threads increment one shared counter
	BackendTwoTrees = "twotrees" // Fig 16 shape: update-only set + search-only set, a lock each
	BackendSets     = "sets"     // Fig 1 shape: one search structure under one elidable lock
)

// BackendWorkloads lists the backend-agnostic workload names (flag
// help, sweeps).
func BackendWorkloads() []string {
	return []string{BackendCounter, BackendTwoTrees, BackendSets}
}

// IsBackendWorkload reports whether name is a registered
// backend-agnostic workload. Flag validation must use this (and flag
// help BackendWorkloads()) so both stay tied to the one registry.
func IsBackendWorkload(name string) bool {
	for _, n := range BackendWorkloads() {
		if n == name {
			return true
		}
	}
	return false
}

// BackendConfig describes one backend-agnostic trial.
type BackendConfig struct {
	// Lock names a scheme; it must be registered for the world's
	// backend (see scheme.LookupFor).
	Lock string
	// Workload is one of BackendWorkloads() (default counter).
	Workload string
	// Threads is the worker count (default 1).
	Threads int
	// Ops is the per-thread operation count (default 1<<14).
	Ops int
	// Seed feeds the operation-schedule hash.
	Seed int64
	// KeyRange is the twotrees/sets key-space size per structure
	// (default 1024; must be >= the updater/thread count).
	KeyRange int
	// Set selects the structure the sets workload exercises (default
	// avl; see sets.Kinds).
	Set sets.Kind
	// ExternalWork is the exclusive upper bound on the random
	// external-work iterations between operations (0 disables).
	ExternalWork int
	// TLE overrides the scheme's retry policy (zero keeps the
	// descriptor default).
	TLE tle.Policy
}

func (cfg *BackendConfig) defaults() {
	if cfg.Workload == "" {
		cfg.Workload = BackendCounter
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 1 << 14
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 1024
	}
	if cfg.Set == "" {
		cfg.Set = sets.KindAVL
	}
}

// MemWords estimates the backend words the configured trial can touch,
// for sizing fixed-size native worlds (the simulator's space grows on
// demand, so sim callers may ignore it). The sets bound is worst-case:
// every operation an insert, every insert a full allocation.
func (cfg BackendConfig) MemWords() int {
	c := cfg
	c.defaults()
	base := 1 << 16 // locks, counters, slack
	switch c.Workload {
	case BackendTwoTrees:
		base += 2*c.KeyRange + 2*mem.WordsPerLine
	case BackendSets:
		lanes := c.Threads + 1
		per := sets.InsertWords(c.Set)
		need := c.Ops
		if half := c.KeyRange/2 + 1; half > need {
			need = half
		}
		base += lanes*(need*per+mem.WordsPerLine) + 4*mem.WordsPerLine
	}
	if base < 1<<20 {
		base = 1 << 20
	}
	return base
}

// BackendResult reports one backend-agnostic trial.
type BackendResult struct {
	Backend  backend.Kind
	Lock     string
	Workload string
	Threads  int

	// Ops is the total completed operations (threads * per-thread ops;
	// op-count-bounded trials always finish their schedule).
	Ops uint64
	// ElapsedNs is first-op-start to last-op-end: virtual nanoseconds
	// on sim, wall-clock nanoseconds natively.
	ElapsedNs int64
	// Sync holds each of the workload's locks' counters (one entry for
	// counter; update then search lock for twotrees).
	Sync []scheme.Stats
	// Check is the workload-defined checksum of the final shared
	// contents; for a fixed config it is backend- and
	// interleaving-independent.
	Check uint64
	// Fault holds the injected-fault counters of the trial's world
	// (zero when no injector was armed).
	Fault fault.Stats
	// Groups is the world's thread-group (socket/package) count and
	// GroupSource how it was obtained — "sysfs" when the native world
	// read /sys/devices/system/cpu topology, "stripe" for the
	// fill-first fallback or an explicit Sockets config. Zero/empty on
	// worlds that don't report topology.
	Groups      int
	GroupSource string
}

// Throughput returns operations per (virtual or wall) second.
func (r *BackendResult) Throughput() float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.ElapsedNs) / 1e9)
}

// RunBackend executes one backend-agnostic trial on w.
func RunBackend(w backend.World, cfg BackendConfig) *BackendResult {
	cfg.defaults()
	desc, err := scheme.LookupFor(w.Kind(), cfg.Lock)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	desc = desc.Configure(scheme.Options{TLE: cfg.TLE})
	wl, err := newBackendWorkload(cfg)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}

	finish := make([]int64, cfg.Threads)
	var startNs int64
	w.Run(cfg.Threads, func(c backend.Ctx) {
		wl.Setup(w, c, desc)
		startNs = c.Now()
	}, func(c backend.Ctx) {
		t := c.Thread()
		for j := 0; j < cfg.Ops; j++ {
			wl.Op(c, t, j)
			if cfg.ExternalWork > 0 {
				c.Work(c.Intn(cfg.ExternalWork))
			}
		}
		finish[t] = c.Now()
	})

	var end int64
	for _, f := range finish {
		if f > end {
			end = f
		}
	}
	elapsed := end - startNs
	if elapsed <= 0 {
		elapsed = 1
	}
	res := &BackendResult{
		Backend:   w.Kind(),
		Lock:      cfg.Lock,
		Workload:  cfg.Workload,
		Threads:   cfg.Threads,
		Ops:       uint64(cfg.Threads) * uint64(cfg.Ops),
		ElapsedNs: elapsed,
		Sync:      wl.Sync(),
		Check:     wl.Check(w),
	}
	if g, ok := w.(interface {
		Groups() int
		GroupSource() string
	}); ok {
		res.Groups, res.GroupSource = g.Groups(), g.GroupSource()
	}
	return res
}

// backendWorkload is one backend-agnostic benchmark: shared-state
// setup, the per-thread operation, and the final-contents checksum.
type backendWorkload interface {
	Setup(w backend.World, c backend.Ctx, desc *scheme.Descriptor)
	Op(c backend.Ctx, thread, j int)
	Sync() []scheme.Stats
	Check(w backend.World) uint64
}

func newBackendWorkload(cfg BackendConfig) (backendWorkload, error) {
	switch cfg.Workload {
	case BackendCounter:
		return &bkCounter{}, nil
	case BackendTwoTrees:
		updaters := (cfg.Threads + 1) / 2
		if cfg.KeyRange < updaters {
			return nil, fmt.Errorf("twotrees: key range %d < %d updaters", cfg.KeyRange, updaters)
		}
		return &bkTwoTrees{cfg: cfg, updaters: updaters}, nil
	case BackendSets:
		if sets.InsertWords(cfg.Set) == 0 {
			return nil, fmt.Errorf("sets: unknown set kind %q", cfg.Set)
		}
		if cfg.KeyRange < cfg.Threads {
			return nil, fmt.Errorf("sets: key range %d < %d threads", cfg.KeyRange, cfg.Threads)
		}
		return &bkSets{cfg: cfg}, nil
	default:
		return nil, fmt.Errorf("unknown backend workload %q (have %v)", cfg.Workload, BackendWorkloads())
	}
}

// opHash is the deterministic, interleaving-independent operation
// schedule: a splitmix64-style mix of (seed, thread, op index).
func opHash(seed int64, thread, j int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 +
		uint64(thread+1)*0xbf58476d1ce4e5b9 +
		uint64(j)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// bkCounter: every operation increments one shared word inside the
// critical section. Maximum conflict; increments commute, so the final
// value must equal threads*ops on any backend under any mutual
// exclusion — the sharpest conservation check available.
type bkCounter struct {
	addr int
	cs   scheme.BackendInstance
}

func (b *bkCounter) Setup(w backend.World, c backend.Ctx, desc *scheme.Descriptor) {
	b.addr = c.Alloc(1)
	b.cs = NewInstance(w, c, desc)
}

func (b *bkCounter) Op(c backend.Ctx, thread, j int) {
	b.cs.Critical(c, func() {
		c.Store(b.addr, c.Load(b.addr)+1)
	})
}

func (b *bkCounter) Sync() []scheme.Stats { return []scheme.Stats{b.cs.Stats()} }

func (b *bkCounter) Check(w backend.World) uint64 { return w.Peek(b.addr) }

// bkTwoTrees is the backend-agnostic shape of the paper's Figure 16
// two-trees experiment: two sets, each under its own lock; even
// threads run 100% updates against set U, odd threads run 100%
// searches against set S. The sets are direct-mapped (one membership
// word per key, plus a size word every update touches, playing the
// role of the root), and each updater owns the key residues equal to
// its updater index — so the final membership is a pure function of
// each updater's own schedule.
type bkTwoTrees struct {
	cfg      BackendConfig
	updaters int

	updMemb, updSize int
	schMemb, schSize int
	updLock, schLock scheme.BackendInstance
}

func (b *bkTwoTrees) Setup(w backend.World, c backend.Ctx, desc *scheme.Descriptor) {
	kr := b.cfg.KeyRange
	b.updMemb = c.Alloc(kr)
	b.updSize = c.Alloc(1)
	b.schMemb = c.Alloc(kr)
	b.schSize = c.Alloc(1)
	// Prefill both sets to half full (even keys), as the sim workloads
	// prefill to half the key range.
	var n uint64
	for k := 0; k < kr; k += 2 {
		c.Store(b.updMemb+k, 1)
		c.Store(b.schMemb+k, 1)
		n++
	}
	c.Store(b.updSize, n)
	c.Store(b.schSize, n)
	// Per-lock independence is the point of the experiment: each set
	// gets its own instance of the same scheme.
	b.updLock = NewInstance(w, c, desc)
	b.schLock = NewInstance(w, c, desc)
}

func (b *bkTwoTrees) Op(c backend.Ctx, thread, j int) {
	x := opHash(b.cfg.Seed, thread, j)
	kr := b.cfg.KeyRange
	if thread%2 == 0 {
		// Updater: insert or delete within this updater's partition.
		u := thread / 2
		key := int((x>>1)%uint64(kr/b.updaters))*b.updaters + u
		if x&1 == 0 {
			b.updLock.Critical(c, func() {
				if c.Load(b.updMemb+key) == 0 {
					c.Store(b.updMemb+key, 1)
					c.Store(b.updSize, c.Load(b.updSize)+1)
				}
			})
		} else {
			b.updLock.Critical(c, func() {
				if c.Load(b.updMemb+key) != 0 {
					c.Store(b.updMemb+key, 0)
					c.Store(b.updSize, c.Load(b.updSize)-1)
				}
			})
		}
	} else {
		// Searcher: a read-only contains on the search set.
		key := int(x % uint64(kr))
		b.schLock.Critical(c, func() {
			_ = c.Load(b.schMemb + key)
		})
	}
}

func (b *bkTwoTrees) Sync() []scheme.Stats {
	return []scheme.Stats{b.updLock.Stats(), b.schLock.Stats()}
}

func (b *bkTwoTrees) Check(w backend.World) uint64 {
	var h uint64
	for k := 0; k < b.cfg.KeyRange; k++ {
		h = h*31 + w.Peek(b.updMemb+k)
		h = h*31 + w.Peek(b.schMemb+k)
	}
	h = h*31 + w.Peek(b.updSize)
	return h*31 + w.Peek(b.schSize)
}

// bkSets is the backend-agnostic shape of the paper's Figure 1 set
// microbenchmark: one pointer structure (AVL/BST/leaf-BST/skip-list)
// with nodes in backend words, every operation inside one elidable
// lock. Half the operations are searches over the whole key range; the
// other half insert or delete within the calling thread's key partition
// (keys ≡ thread mod threads), so the final membership is a pure
// function of each thread's own hashed schedule — the property the
// cross-backend checksum relies on. Disjoint partitions also make this
// the striped-TLE showcase: concurrent updaters write disjoint nodes,
// which a per-word-range seqlock can elide in parallel.
type bkSets struct {
	cfg BackendConfig
	set *sets.BackendSet
	cs  scheme.BackendInstance
}

func (b *bkSets) Setup(w backend.World, c backend.Ctx, desc *scheme.Descriptor) {
	per := sets.InsertWords(b.cfg.Set)
	need := b.cfg.Ops
	if half := b.cfg.KeyRange/2 + 1; half > need {
		need = half
	}
	ar := arena.New(c, b.cfg.Threads+1, need*per)
	s, err := sets.NewBackendSet(b.cfg.Set, c, ar)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	b.set = s
	// Prefill with the even keys — the same membership the twotrees
	// prefill establishes — but inserted in a hashed order so the
	// unbalanced trees don't degenerate into spines. The shuffle is
	// pure host-side arithmetic; only the inserts touch the world.
	kr := b.cfg.KeyRange
	evens := make([]int64, 0, (kr+1)/2)
	for k := 0; k < kr; k += 2 {
		evens = append(evens, int64(k))
	}
	for i := len(evens) - 1; i > 0; i-- {
		j := int(opHash(b.cfg.Seed, -1, i) % uint64(i+1))
		evens[i], evens[j] = evens[j], evens[i]
	}
	for _, k := range evens {
		b.set.Insert(c, k)
	}
	b.cs = NewInstance(w, c, desc)
}

func (b *bkSets) Op(c backend.Ctx, thread, j int) {
	x := opHash(b.cfg.Seed, thread, j)
	kr := b.cfg.KeyRange
	th := b.cfg.Threads
	if x&1 == 0 {
		// Search: a contains over the whole key range.
		key := int64((x >> 8) % uint64(kr))
		b.cs.Critical(c, func() {
			b.set.Contains(c, key)
		})
		return
	}
	// Update: insert or delete within this thread's partition.
	key := int64((x>>8)%uint64(kr/th))*int64(th) + int64(thread)
	if x&2 == 0 {
		b.cs.Critical(c, func() {
			b.set.Insert(c, key)
		})
	} else {
		b.cs.Critical(c, func() {
			b.set.Delete(c, key)
		})
	}
}

func (b *bkSets) Sync() []scheme.Stats { return []scheme.Stats{b.cs.Stats()} }

// Check validates the structural invariants of the final tree and
// returns a hash of its sorted contents. Tower heights and tree shapes
// may differ across backends (the skip-list consumes backend RNG
// streams), but membership may not — so the checksum covers keys and
// cardinality only.
func (b *bkSets) Check(w backend.World) uint64 {
	if err := b.set.CheckInvariants(w); err != nil {
		panic(fmt.Sprintf("workload: sets final state invalid: %v", err))
	}
	keys := b.set.Keys(w)
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		panic("workload: sets Keys not sorted")
	}
	h := uint64(1469598103934665603)
	for _, k := range keys {
		h = (h ^ uint64(k)) * 1099511628211
	}
	return h ^ uint64(len(keys))*0x9e3779b97f4a7c15
}
