package workload_test

import (
	"fmt"
	"testing"

	"natle/internal/backend"
	"natle/internal/native"
	"natle/internal/scheme"
	"natle/internal/workload"
)

// The cross-backend conformance suite: the backend-agnostic workloads
// are built so their final shared-memory contents are a pure function
// of (workload, threads, seed) — independent of scheme, backend, and
// interleaving. So every scheme on every backend must produce the
// same checksum, and every trial must conserve its operation count.
// This generalizes the sim-only cross-scheme equivalence test to the
// native backend, where the interleavings are real.

// conformancePairs maps each simulated scheme to its native mirror(s).
var conformancePairs = []struct {
	sim, native string
}{
	{"lock", "native-spin"},
	{"lock", "native-mutex"},
	{"tle", "native-tle"},
	{"tle", "native-tle-striped"},
	{"natle", "native-natle"},
}

func runConformance(t *testing.T, k backend.Kind, cfg workload.BackendConfig) *workload.BackendResult {
	t.Helper()
	var w backend.World
	switch k {
	case backend.Sim:
		w = workload.NewSimWorld(nil, nil, cfg.Threads, cfg.Seed, 0)
	case backend.Native:
		w = native.NewWorld(native.Config{Seed: cfg.Seed, Words: cfg.MemWords()})
	default:
		t.Fatalf("unknown backend %q", k)
	}
	res := workload.RunBackend(w, cfg)

	want := uint64(cfg.Threads) * uint64(cfg.Ops)
	if res.Ops != want {
		t.Fatalf("%s/%s on %s: %d ops completed, want %d", cfg.Workload, cfg.Lock, k, res.Ops, want)
	}
	// Op conservation per lock: every critical section either
	// committed optimistically or took the fallback, never both,
	// never neither.
	for i, s := range res.Sync {
		if s.TLE.Ops == 0 {
			continue // non-eliding scheme: no attempt ledger
		}
		if got := s.TLE.Commits + s.TLE.Fallbacks; got != s.TLE.Ops {
			t.Fatalf("%s/%s on %s lock %d: commits+fallbacks = %d, want ops = %d",
				cfg.Workload, cfg.Lock, k, i, got, s.TLE.Ops)
		}
	}
	return res
}

func TestCrossBackendConformance(t *testing.T) {
	for _, wl := range workload.BackendWorkloads() {
		for _, threads := range []int{1, 3, 4} {
			t.Run(fmt.Sprintf("%s/threads=%d", wl, threads), func(t *testing.T) {
				base := workload.BackendConfig{
					Workload: wl,
					Threads:  threads,
					Ops:      1500,
					Seed:     1,
					KeyRange: 256,
				}

				var wantCheck uint64
				var wantFrom string
				record := func(from string, check uint64) {
					if wantFrom == "" {
						wantFrom, wantCheck = from, check
						return
					}
					if check != wantCheck {
						t.Fatalf("final contents diverge: %s checksum %#x, %s checksum %#x",
							wantFrom, wantCheck, from, check)
					}
				}

				for _, pair := range conformancePairs {
					simCfg := base
					simCfg.Lock = pair.sim
					record(pair.sim+"@sim", runConformance(t, backend.Sim, simCfg).Check)

					natCfg := base
					natCfg.Lock = pair.native
					record(pair.native+"@native", runConformance(t, backend.Native, natCfg).Check)
				}

				if wl == workload.BackendCounter {
					want := uint64(threads) * uint64(base.Ops)
					if wantCheck != want {
						t.Fatalf("counter final value %d, want threads*ops = %d", wantCheck, want)
					}
				}
			})
		}
	}
}

// TestSimWorldMatchesKind pins the adapter's capability wiring: the
// sim world builds sim instances, and asking it for a native-only
// scheme must fail in LookupFor (not panic in a nil factory).
func TestSimWorldMatchesKind(t *testing.T) {
	w := workload.NewSimWorld(nil, nil, 1, 1, 0)
	if w.Kind() != backend.Sim {
		t.Fatalf("sim world kind = %q", w.Kind())
	}
	if _, err := scheme.LookupFor(w.Kind(), "native-tle"); err == nil {
		t.Fatalf("LookupFor(sim, native-tle) succeeded; want error")
	}
	nw := native.NewWorld(native.Config{})
	if _, err := scheme.LookupFor(nw.Kind(), "htm-raw"); err == nil {
		t.Fatalf("LookupFor(native, htm-raw) succeeded; want error")
	}
}
