// Package workload implements the paper's microbenchmark driver: a
// fixed number of threads repeatedly invoke operations on one shared
// set, with keys drawn uniformly from a key range, a configurable
// update percentage (updates split evenly between inserts and
// deletes), optional "external work" between operations, and a choice
// of synchronization scheme. The set is prefilled to half the key
// range before measurement, exactly as in Section 5.1.
package workload

import (
	"fmt"

	"natle/internal/backend"
	"natle/internal/cache"
	"natle/internal/fault"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/scheme"
	"natle/internal/sets"
	"natle/internal/sim"
	"natle/internal/telemetry"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// LockKind selects the synchronization scheme for a trial. Any name
// registered in internal/scheme is accepted; the constants below cover
// the paper's core schemes.
type LockKind string

// Core schemes (see scheme.Names() for the full registry, which also
// includes extension entries such as "tle-hint" and "htm-raw").
const (
	LockPlain  LockKind = "lock"   // spin lock, never elided
	LockTLE    LockKind = "tle"    // transactional lock elision
	LockNATLE  LockKind = "natle"  // NATLE over TLE
	LockCohort LockKind = "cohort" // NUMA-aware cohort lock (no elision)
	LockNoSync LockKind = "none"   // no synchronization (Fig 4 baseline)
)

// Config describes one trial.
type Config struct {
	Prof    *machine.Profile
	Pin     machine.PinPolicy
	Threads int
	Seed    int64

	SetKind   sets.Kind
	KeyRange  int64
	UpdatePct int // 0..100; remainder are lookups

	// SearchReplace switches the operation mix to the Fig 4
	// search-and-replace operation (UpdatePct is then ignored).
	SearchReplace bool

	// ExternalWork is the exclusive upper bound on the random number
	// of external-work iterations between operations (0 disables).
	ExternalWork int

	Lock  LockKind
	TLE   tle.Policy    // used by LockTLE and as NATLE's inner lock
	NATLE *natle.Config // nil selects natle.DefaultConfig

	Warmup   vtime.Duration // virtual time before measurement starts
	Duration vtime.Duration // measured virtual time

	// CommitDelay inserts a spin of the given virtual duration before
	// every transactional commit (the Fig 6 injection experiment).
	CommitDelay vtime.Duration

	// Fault, if non-nil and enabled, installs a deterministic fault
	// injector (seeded from Seed) for the whole trial, prefill and
	// warmup included. See internal/fault for the available faults.
	Fault *fault.Profile

	// MemWords pre-sizes the simulated memory (grown on demand).
	MemWords int

	// Recorder, if non-nil, receives the trial's telemetry events
	// (transaction lifecycle, fallbacks, throttle waits, cache traffic).
	// Nil keeps the no-op recorder, so instrumented layers cost nothing.
	Recorder telemetry.Recorder
}

func (cfg *Config) defaults() {
	if cfg.Prof == nil {
		cfg.Prof = machine.LargeX52()
	}
	if cfg.Pin == nil {
		cfg.Pin = machine.FillSocketFirst{}
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.SetKind == "" {
		cfg.SetKind = sets.KindAVL
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 2048
	}
	if cfg.Lock == "" {
		cfg.Lock = LockTLE
	}
	if cfg.TLE.Attempts == 0 {
		cfg.TLE = tle.TLE20()
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 300 * vtime.Microsecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * vtime.Millisecond
	}
	if cfg.MemWords <= 0 {
		cfg.MemWords = 1 << 20
	}
}

// Result reports one trial's measurements (all counters are deltas over
// the measured window only).
type Result struct {
	Config   Config
	Ops      uint64   // operations completed in the window
	PerSock  []uint64 // operations by socket (len = Config.Prof.Sockets)
	Duration vtime.Duration

	// Sync is the scheme's uniform counter snapshot: TLE elision
	// counters (zero for non-eliding schemes), the adaptive-mode
	// timeline (nil unless the scheme profiles), and any
	// scheme-private extras.
	Sync scheme.Stats

	HTM   htm.Stats   // transaction counters
	Cache cache.Stats // coherence counters

	// Telemetry is the recorder's whole-trial roll-up when
	// Config.Recorder is a *telemetry.Collector (nil otherwise). Unlike
	// the windowed deltas above it also covers warmup and prefill.
	Telemetry *telemetry.Summary

	// Fault counts the faults injected over the whole trial (zero
	// without Config.Fault).
	Fault fault.Stats
}

// Throughput returns operations per virtual second.
func (r *Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// newSystem builds the HTM runtime for a trial, wiring up the Fig 6
// commit-delay injection hook when configured.
func newSystem(e *sim.Engine, cfg Config) *htm.System {
	sys := htm.NewSystem(e, cfg.MemWords)
	if cfg.CommitDelay > 0 {
		step := 200 * vtime.Nanosecond
		steps := int(cfg.CommitDelay / step)
		sys.CommitDelay = func(c *sim.Ctx) {
			for i := 0; i < steps; i++ {
				c.Advance(step)
				c.Checkpoint()
			}
		}
	}
	return sys
}

// Run executes one trial and returns its measurements.
func Run(cfg Config) *Result {
	cfg.defaults()
	desc, err := scheme.LookupFor(backend.Sim, string(cfg.Lock))
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	desc = desc.Configure(scheme.Options{TLE: cfg.TLE, NATLE: cfg.NATLE})
	e := sim.New(cfg.Prof, cfg.Pin, cfg.Threads, cfg.Seed)
	sys := newSystem(e, cfg)
	if cfg.Recorder != nil {
		// Installed before any locks exist so their RegisterLock calls
		// land in this recorder.
		sys.SetRecorder(cfg.Recorder)
	}
	var inj *fault.Fault
	if cfg.Fault != nil && cfg.Fault.Enabled() {
		inj = fault.New(*cfg.Fault, cfg.Seed)
		sys.SetInjector(inj)
	}
	res := &Result{Config: cfg, PerSock: make([]uint64, cfg.Prof.Sockets)}

	e.Spawn(nil, func(c *sim.Ctx) {
		set, err := sets.New(cfg.SetKind, sys, c)
		if err != nil {
			panic(err)
		}
		cs := desc.New(sys, c, 0)

		sets.Prefill(set, c, cfg.KeyRange)

		// Shared trial state (host-side; safe because execution is
		// serialized by the simulator token).
		var started bool
		var measureStart, deadline vtime.Time
		for i := 0; i < cfg.Threads; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				w.WaitUntil(500*vtime.Nanosecond, func() bool { return started })
				runWorker(w, cfg, set, cs, res, &measureStart, &deadline)
			})
		}
		measureStart = c.Now().Add(cfg.Warmup)
		deadline = measureStart.Add(cfg.Duration)
		started = true
		// The driver now just waits (a joined main thread); it should
		// not contend with the worker sharing its core.
		c.SetIdle(true)

		// Snapshot counters at the start of the measurement window.
		c.AdvanceIdle(cfg.Warmup)
		c.Checkpoint()
		htmBefore := sys.Stats
		cacheBefore := sys.Cache.Stats
		syncBefore := cs.Stats()

		c.WaitOthers(2 * vtime.Microsecond)

		res.Duration = cfg.Duration
		res.HTM = sys.Stats.Sub(htmBefore)
		res.Cache = sys.Cache.Stats.Sub(cacheBefore)
		res.Sync = cs.Stats().Sub(syncBefore)
	})
	e.Run()
	if col, ok := cfg.Recorder.(*telemetry.Collector); ok {
		sum := col.Summary()
		res.Telemetry = &sum
	}
	if inj != nil {
		res.Fault = inj.Stats
	}
	return res
}

func runWorker(w *sim.Ctx, cfg Config, set sets.Set, cs scheme.Instance,
	res *Result, measureStart, deadline *vtime.Time) {
	var counted uint64
	countedSock := make([]uint64, len(res.PerSock))
	for {
		opStart := w.Now()
		if opStart >= *deadline {
			break
		}
		key := int64(w.Rand64() % uint64(cfg.KeyRange))
		switch {
		case cfg.SearchReplace:
			cs.Critical(w, func() { set.SearchReplace(w, key) })
		case int(w.Rand64()%100) < cfg.UpdatePct:
			if w.Rand64()&1 == 0 {
				cs.Critical(w, func() { set.Insert(w, key) })
			} else {
				cs.Critical(w, func() { set.Delete(w, key) })
			}
		default:
			cs.Critical(w, func() { set.Contains(w, key) })
		}
		if opStart >= *measureStart && w.Now() <= *deadline {
			counted++
			countedSock[w.Socket()]++
		}
		if cfg.ExternalWork > 0 {
			w.Work(w.Intn(cfg.ExternalWork))
		}
	}
	res.Ops += counted
	for i, n := range countedSock {
		res.PerSock[i] += n
	}
}
