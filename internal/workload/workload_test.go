package workload

import (
	"testing"

	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/sets"
	"natle/internal/vtime"
)

// testNATLE returns a NATLE configuration fast enough for tests (short
// cycles, low warmup threshold) while preserving the 10% profiling
// share.
func testNATLE() natle.Config {
	cfg := natle.DefaultConfig()
	cfg.ProfilingLen = 300 * vtime.Microsecond
	cfg.QuantumLen = 100 * vtime.Microsecond
	cfg.WarmupThreshold = 64
	return cfg
}

func TestReadOnlyScalesAcrossSockets(t *testing.T) {
	run := func(threads int) float64 {
		r := Run(Config{
			Threads:  threads,
			Seed:     3,
			Duration: 300 * vtime.Microsecond,
			Warmup:   100 * vtime.Microsecond,
		})
		return r.Throughput()
	}
	one := run(1)
	full := run(72)
	if full < 12*one {
		t.Errorf("read-only at 72 threads only %.1fx one thread; expected strong scaling", full/one)
	}
}

func TestUpdateWorkloadCollapsesAcrossSockets(t *testing.T) {
	run := func(threads int) *Result {
		return Run(Config{
			Threads:   threads,
			Seed:      3,
			UpdatePct: 100,
			Duration:  600 * vtime.Microsecond,
			Warmup:    200 * vtime.Microsecond,
		})
	}
	peak := run(36)
	over := run(48)
	sat := run(72)
	if over.Throughput() > 0.85*peak.Throughput() {
		t.Errorf("48 threads = %.2fx of 36-thread peak; expected a sharp drop",
			over.Throughput()/peak.Throughput())
	}
	if sat.Throughput() > 0.5*peak.Throughput() {
		t.Errorf("72 threads = %.2fx of peak; expected collapse",
			sat.Throughput()/peak.Throughput())
	}
	if sat.HTM.AbortRate() < peak.HTM.AbortRate() {
		t.Errorf("abort rate fell across the socket boundary: %.2f -> %.2f",
			peak.HTM.AbortRate(), sat.HTM.AbortRate())
	}
}

func TestNATLERescuesCrossSocketCollapse(t *testing.T) {
	ncfg := testNATLE()
	nr := Run(Config{
		Threads:   72,
		Seed:      3,
		UpdatePct: 100,
		Lock:      LockNATLE,
		NATLE:     &ncfg,
		Duration:  4 * vtime.Millisecond,
		Warmup:    1300 * vtime.Microsecond,
	})
	tr := Run(Config{
		Threads:   72,
		Seed:      3,
		UpdatePct: 100,
		Lock:      LockTLE,
		Duration:  3 * vtime.Millisecond,
		Warmup:    600 * vtime.Microsecond,
	})
	if nr.Throughput() < 1.5*tr.Throughput() {
		t.Errorf("NATLE (%.0f ops/s) should clearly beat TLE (%.0f ops/s) at 72 threads",
			nr.Throughput(), tr.Throughput())
	}
	if len(nr.Sync.Timeline) == 0 {
		t.Error("NATLE recorded no profiling cycles")
	}
	throttled := 0
	for _, m := range nr.Sync.Timeline {
		if m.FastestMode != 2 {
			throttled++
		}
	}
	if throttled == 0 {
		t.Error("NATLE never chose a single-socket mode on a collapsing workload")
	}
}

func TestNATLEKeepsScalableWorkloadUnthrottled(t *testing.T) {
	ncfg := testNATLE()
	r := Run(Config{
		Threads:  72,
		Seed:     5,
		Lock:     LockNATLE,
		NATLE:    &ncfg,
		Duration: 3 * vtime.Millisecond,
		Warmup:   1300 * vtime.Microsecond,
	})
	if len(r.Sync.Timeline) == 0 {
		t.Fatal("no profiling cycles recorded")
	}
	unthrottled := 0
	for _, m := range r.Sync.Timeline {
		if m.FastestMode == 2 {
			unthrottled++
		}
	}
	if unthrottled*2 < len(r.Sync.Timeline) {
		t.Errorf("read-only workload throttled in %d/%d cycles; expected mostly unthrottled",
			len(r.Sync.Timeline)-unthrottled, len(r.Sync.Timeline))
	}
}

func TestSearchReplaceNoSyncBeatsTLEBeyondSocket(t *testing.T) {
	// Fig 4's qualitative claim: NUMA hurts TLE far more than the
	// unsynchronized algorithm.
	run := func(kind LockKind, threads int) float64 {
		r := Run(Config{
			Threads:       threads,
			Seed:          7,
			KeyRange:      4096,
			SearchReplace: true,
			Lock:          kind,
			Duration:      400 * vtime.Microsecond,
			Warmup:        150 * vtime.Microsecond,
		})
		return r.Throughput()
	}
	tleDrop := run(LockTLE, 72) / run(LockTLE, 36)
	noneDrop := run(LockNoSync, 72) / run(LockNoSync, 36)
	if tleDrop > noneDrop {
		t.Errorf("TLE 36->72 ratio %.2f should be worse than no-sync %.2f", tleDrop, noneDrop)
	}
}

func TestPinningPoliciesChangeCliffOnset(t *testing.T) {
	// Under alternating pinning, cross-socket traffic exists from two
	// threads on; the update workload should already be far from ideal
	// at 8 threads compared to fill-socket-first.
	run := func(pin machine.PinPolicy) float64 {
		r := Run(Config{
			Pin:       pin,
			Threads:   8,
			Seed:      9,
			UpdatePct: 100,
			Duration:  400 * vtime.Microsecond,
			Warmup:    150 * vtime.Microsecond,
		})
		return r.Throughput()
	}
	fill := run(machine.FillSocketFirst{})
	alt := run(machine.Alternating{})
	if alt > 0.8*fill {
		t.Errorf("alternating (%.0f) should trail fill-socket-first (%.0f) at 8 threads", alt, fill)
	}
}

func TestTwoTreesPerLockDecisions(t *testing.T) {
	ncfg := testNATLE()
	r := RunTwoTrees(TwoTreesConfig{
		Base: Config{
			Threads:  64,
			Seed:     11,
			Lock:     LockNATLE,
			NATLE:    &ncfg,
			Duration: 4 * vtime.Millisecond,
			Warmup:   1300 * vtime.Microsecond,
		},
		SearchWork: 256,
	})
	if r.UpdateOps == 0 || r.SearchOps == 0 {
		t.Fatalf("missing group throughput: upd=%d sch=%d", r.UpdateOps, r.SearchOps)
	}
	count := func(tl []natle.ModeSample) (throttled, total int) {
		for _, m := range tl {
			if m.FastestMode != 2 {
				throttled++
			}
			total++
		}
		return
	}
	ut, utot := count(r.UpdateSync.Timeline)
	st, stot := count(r.SearchSync.Timeline)
	if utot == 0 || stot == 0 {
		t.Fatal("missing NATLE timelines")
	}
	if ut == 0 {
		t.Errorf("update tree never throttled (%d cycles)", utot)
	}
	if st*2 > stot {
		t.Errorf("search tree throttled in %d/%d cycles; expected mostly unthrottled", st, stot)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := Config{
		Threads:   24,
		Seed:      42,
		UpdatePct: 50,
		SetKind:   sets.KindSkipList,
		Duration:  200 * vtime.Microsecond,
		Warmup:    50 * vtime.Microsecond,
	}
	a, b := Run(cfg), Run(cfg)
	if a.Ops != b.Ops || a.HTM != b.HTM {
		t.Errorf("identical configs diverged: ops %d vs %d", a.Ops, b.Ops)
	}
}
