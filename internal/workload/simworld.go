package workload

import (
	"natle/internal/backend"
	"natle/internal/fault"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/mem"
	"natle/internal/scheme"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// SimWorld adapts the deterministic simulator to backend.World, so
// backend-agnostic workloads run unchanged on virtual time. It is the
// proof that the backend split costs the simulated path nothing: the
// adapter only forwards to the same engine/system calls the sim-only
// drivers make.
type SimWorld struct {
	Eng *sim.Engine
	Sys *htm.System
}

// NewSimWorld builds a simulated world. Nil/zero arguments select the
// workload defaults (large X5-2 profile, fill-socket-first pinning,
// 1Mi words).
func NewSimWorld(prof *machine.Profile, pin machine.PinPolicy, threads int, seed int64, memWords int) *SimWorld {
	if prof == nil {
		prof = machine.LargeX52()
	}
	if pin == nil {
		pin = machine.FillSocketFirst{}
	}
	if memWords <= 0 {
		memWords = 1 << 20
	}
	e := sim.New(prof, pin, threads, seed)
	return &SimWorld{Eng: e, Sys: htm.NewSystem(e, memWords)}
}

// InjectFaults installs a deterministic fault injector (seeded from
// seed) on the world's HTM system and returns it for stats queries —
// the sim half of the cross-backend chaos matrix (the native half is
// native.Config.Fault). Call before Run; a disabled profile installs
// nothing and returns nil.
func (w *SimWorld) InjectFaults(p fault.Profile, seed int64) *fault.Fault {
	if !p.Enabled() {
		return nil
	}
	inj := fault.New(p, seed)
	w.Sys.SetInjector(inj)
	return inj
}

// Kind implements backend.World.
func (w *SimWorld) Kind() backend.Kind { return backend.Sim }

// Peek implements backend.World.
func (w *SimWorld) Peek(a int) uint64 { return w.Sys.Mem.Raw(mem.Addr(a)) }

// Run implements backend.World with the repo's standard driver shape:
// a spawning driver thread runs setup, releases the workers through a
// started flag, idles, and joins them (see workload.Run).
func (w *SimWorld) Run(threads int, setup func(backend.Ctx), body func(backend.Ctx)) {
	w.Eng.Spawn(nil, func(c *sim.Ctx) {
		setup(&SimCtx{w: w, c: c, thread: -1})
		var started bool
		for i := 0; i < threads; i++ {
			i := i
			w.Eng.Spawn(c, func(wc *sim.Ctx) {
				wc.WaitUntil(500*vtime.Nanosecond, func() bool { return started })
				body(&SimCtx{w: w, c: wc, thread: i})
			})
		}
		started = true
		c.SetIdle(true)
		c.WaitOthers(2 * vtime.Microsecond)
	})
	w.Eng.Run()
}

// SimCtx is the simulated backend.Ctx: a sim thread context bound to
// its world's HTM system, so Load/Store participate in whatever
// transaction the scheme has open on the context.
type SimCtx struct {
	w      *SimWorld
	c      *sim.Ctx
	thread int
}

// Thread implements backend.Ctx (-1 for the setup context).
func (c *SimCtx) Thread() int { return c.thread }

// Socket implements backend.Ctx.
func (c *SimCtx) Socket() int { return c.c.Socket() }

// Rand64 implements backend.Ctx.
func (c *SimCtx) Rand64() uint64 { return c.c.Rand64() }

// Intn implements backend.Ctx.
func (c *SimCtx) Intn(n int) int { return c.c.Intn(n) }

// Now implements backend.Ctx: virtual nanoseconds (vtime counts
// picoseconds; the backend clock contract is nanoseconds on every
// backend).
func (c *SimCtx) Now() int64 { return int64(c.c.Now()) / int64(vtime.Nanosecond) }

// Work implements backend.Ctx.
func (c *SimCtx) Work(n int) { c.c.Work(n) }

// Alloc implements backend.Ctx.
func (c *SimCtx) Alloc(nWords int) int { return int(c.w.Sys.Alloc(c.c, nWords)) }

// Load implements backend.Ctx.
func (c *SimCtx) Load(a int) uint64 { return c.w.Sys.Read(c.c, mem.Addr(a)) }

// Store implements backend.Ctx.
func (c *SimCtx) Store(a int, v uint64) { c.w.Sys.Write(c.c, mem.Addr(a), v) }

// simInstance adapts a simulated scheme.Instance to the
// backend-agnostic scheme.BackendInstance shape.
type simInstance struct {
	inner scheme.Instance
}

func (s simInstance) Critical(c backend.Ctx, body func()) {
	s.inner.Critical(c.(*SimCtx).c, body)
}

func (s simInstance) Name() string        { return s.inner.Name() }
func (s simInstance) Stats() scheme.Stats { return s.inner.Stats() }

// NewInstance constructs desc on whichever backend w is: the one
// dispatch point between the per-backend factory signatures and the
// uniform BackendInstance the workloads use.
func NewInstance(w backend.World, c backend.Ctx, desc *scheme.Descriptor) scheme.BackendInstance {
	switch w.Kind() {
	case backend.Sim:
		sc := c.(*SimCtx)
		return simInstance{desc.New(sc.w.Sys, sc.c, 0)}
	case backend.Native:
		return desc.NewNative(w, c)
	default:
		panic("workload: unknown backend kind " + string(w.Kind()))
	}
}
