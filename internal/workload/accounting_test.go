package workload

import (
	"testing"

	"natle/internal/vtime"
)

func TestPerSocketOpsSumToTotal(t *testing.T) {
	r := Run(Config{
		Threads:   48,
		Seed:      19,
		UpdatePct: 20,
		Duration:  300 * vtime.Microsecond,
		Warmup:    100 * vtime.Microsecond,
	})
	var sum uint64
	for _, n := range r.PerSock {
		sum += n
	}
	if sum != r.Ops {
		t.Errorf("per-socket ops sum %d != total %d", sum, r.Ops)
	}
	if r.PerSock[0] == 0 || r.PerSock[1] == 0 {
		t.Errorf("48 threads must span both sockets: %v", r.PerSock[:2])
	}
}

func TestWarmupExcludedFromCounts(t *testing.T) {
	// Doubling the warmup must not change the measured window's
	// throughput materially (same duration, later window).
	short := Run(Config{
		Threads: 8, Seed: 21, UpdatePct: 50,
		Duration: 300 * vtime.Microsecond, Warmup: 100 * vtime.Microsecond,
	})
	long := Run(Config{
		Threads: 8, Seed: 21, UpdatePct: 50,
		Duration: 300 * vtime.Microsecond, Warmup: 200 * vtime.Microsecond,
	})
	ratio := short.Throughput() / long.Throughput()
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("throughput should be warmup-invariant: %.0f vs %.0f", short.Throughput(), long.Throughput())
	}
}

func TestSearchReplaceModeCountsOps(t *testing.T) {
	r := Run(Config{
		Threads: 4, Seed: 23, SearchReplace: true, KeyRange: 512,
		Duration: 150 * vtime.Microsecond, Warmup: 50 * vtime.Microsecond,
	})
	if r.Ops == 0 {
		t.Fatal("search-replace mode produced no ops")
	}
	// Search-and-replace writes even in "read" operations, so the
	// cache must show invalidation traffic.
	if r.Cache.LocalInvals == 0 && r.Cache.RemoteInvals == 0 {
		t.Error("no invalidation traffic from search-and-replace writes")
	}
}

func TestHTMWindowedStatsConsistent(t *testing.T) {
	r := Run(Config{
		Threads: 12, Seed: 25, UpdatePct: 100,
		Duration: 300 * vtime.Microsecond, Warmup: 100 * vtime.Microsecond,
	})
	// The measurement window cuts mid-flight: transactions that start
	// inside the window may resolve after it (and vice versa), so the
	// balance equations hold only up to one in-flight transaction per
	// thread.
	const threads = 12
	within := func(a, b uint64) bool {
		d := int64(a) - int64(b)
		return d <= threads && d >= -threads
	}
	if !within(r.HTM.Commits+r.HTM.TotalAborts(), r.HTM.Starts) {
		t.Errorf("commits %d + aborts %d far from starts %d",
			r.HTM.Commits, r.HTM.TotalAborts(), r.HTM.Starts)
	}
	if !within(r.Sync.TLE.Commits+r.Sync.TLE.Fallbacks, r.Sync.TLE.Ops) {
		t.Errorf("TLE commits %d + fallbacks %d far from ops %d",
			r.Sync.TLE.Commits, r.Sync.TLE.Fallbacks, r.Sync.TLE.Ops)
	}
	if r.HTM.AvgCommitDuration() <= 0 {
		t.Error("zero average commit duration with committed transactions")
	}
}
