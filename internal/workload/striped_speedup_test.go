package workload_test

import (
	"runtime"
	"testing"
	"time"

	"natle/internal/native"
	"natle/internal/workload"
)

// TestStripedDisjointSpeedup is the non-regression check behind the
// seqlock sharding: on a multi-core host, disjoint-key set updates
// under native-tle-striped must outrun the single-sequence native-tle,
// whose every writer serializes on the one seqlock word. Best-of-N
// timing absorbs scheduler noise; single-core hosts skip with a notice
// (the CI native-check-multi job provides the real coverage).
func TestStripedDisjointSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if n, p := runtime.NumCPU(), runtime.GOMAXPROCS(0); n < 2 || p < 2 {
		t.Skipf("striped speedup needs >=2 cores to manifest (NumCPU=%d GOMAXPROCS=%d); "+
			"run the native-check-multi CI job for coverage", n, p)
	}

	threads := 4
	if runtime.NumCPU() < 4 {
		threads = 2
	}
	base := workload.BackendConfig{
		Workload: workload.BackendSets,
		Set:      "bst",
		Threads:  threads,
		Ops:      20000,
		Seed:     7,
		KeyRange: 4096,
	}

	best := func(lock string) time.Duration {
		cfg := base
		cfg.Lock = lock
		b := time.Duration(1<<62 - 1)
		for trial := 0; trial < 5; trial++ {
			w := native.NewWorld(native.Config{Seed: cfg.Seed, Words: cfg.MemWords()})
			start := time.Now()
			workload.RunBackend(w, cfg)
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}

	single := best("native-tle")
	striped := best("native-tle-striped")
	t.Logf("disjoint-key sets/bst, %d threads: native-tle best=%v, native-tle-striped best=%v (%.2fx)",
		threads, single, striped, float64(single)/float64(striped))
	if striped >= single {
		t.Fatalf("striped TLE (%v) not faster than single-seq TLE (%v) on disjoint keys with %d cores",
			striped, single, runtime.NumCPU())
	}
}
