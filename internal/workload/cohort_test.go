package workload

import (
	"testing"

	"natle/internal/tle"
	"natle/internal/vtime"
)

func TestCohortLockKindRuns(t *testing.T) {
	r := Run(Config{
		Threads:   16,
		Seed:      13,
		UpdatePct: 100,
		Lock:      LockCohort,
		Duration:  300 * vtime.Microsecond,
		Warmup:    100 * vtime.Microsecond,
	})
	if r.Ops == 0 {
		t.Fatal("cohort lock produced no operations")
	}
	if r.HTM.Starts != 0 {
		t.Errorf("cohort lock started %d transactions; it must not elide", r.HTM.Starts)
	}
}

func TestCohortBeatsPlainLockAcrossSockets(t *testing.T) {
	run := func(kind LockKind) float64 {
		return Run(Config{
			Threads:   72,
			Seed:      13,
			UpdatePct: 100,
			Lock:      kind,
			Duration:  400 * vtime.Microsecond,
			Warmup:    150 * vtime.Microsecond,
		}).Throughput()
	}
	plain := run(LockPlain)
	coh := run(LockCohort)
	if coh < plain {
		t.Errorf("cohort (%.0f) should beat the plain lock (%.0f) at 72 threads", coh, plain)
	}
}

func TestRetryPolicyOrderingsAtScale(t *testing.T) {
	// The Fig 2a orderings, asserted at a thread count beyond the
	// hyperthreading knee (30 threads, large tree): plain TLE-20 must
	// beat both the hint-honoring and the lock-counting variants.
	run := func(honorHint, countLock bool) float64 {
		return Run(Config{
			Threads:   30,
			Seed:      17,
			UpdatePct: 100,
			KeyRange:  131072,
			MemWords:  1 << 22,
			TLE:       tle.Policy{Attempts: 20, HonorHint: honorHint, CountLockHeld: countLock},
			Duration:  500 * vtime.Microsecond,
			Warmup:    200 * vtime.Microsecond,
		}).Throughput()
	}
	plain := run(false, false)
	hint := run(true, false)
	if plain <= hint {
		t.Errorf("TLE-20 (%.0f) should beat TLE-20-hint-bit (%.0f) beyond 18 threads", plain, hint)
	}
	// The count-lock variant must collapse at 30 threads (the lemming
	// effect; paper: collapse after 12 for 5 attempts, later for 20 —
	// by 36 it is far below).
	lemming := Run(Config{
		Threads:   36,
		Seed:      17,
		UpdatePct: 100,
		KeyRange:  131072,
		MemWords:  1 << 22,
		TLE:       tle.Policy{Attempts: 5, CountLockHeld: true},
		Duration:  500 * vtime.Microsecond,
		Warmup:    200 * vtime.Microsecond,
	}).Throughput()
	if lemming > plain/4 {
		t.Errorf("TLE-5-count-lock (%.0f) should collapse relative to TLE-20 (%.0f)", lemming, plain)
	}
}
