package mem

import (
	"testing"
	"testing/quick"
)

func TestNilReserved(t *testing.T) {
	s := NewSpace(0)
	a := s.Alloc(1, 0)
	if a == Nil {
		t.Fatal("first allocation returned the nil address")
	}
	if a%WordsPerLine != 0 {
		t.Fatalf("allocation %d not line aligned", a)
	}
}

func TestAllocationsLineAlignedAndDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewSpace(0)
		var prevEnd Addr = WordsPerLine // line 0 is reserved
		for _, raw := range sizes {
			n := int(raw%40) + 1
			a := s.Alloc(n, int(raw)%2)
			if a%WordsPerLine != 0 {
				return false
			}
			if a < prevEnd {
				return false // overlap with the previous allocation
			}
			padded := (n + WordsPerLine - 1) / WordsPerLine * WordsPerLine
			prevEnd = a + Addr(padded)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHomeSocketRecorded(t *testing.T) {
	s := NewSpace(0)
	a0 := s.Alloc(8, 0)
	a1 := s.Alloc(8, 1)
	if s.Home(a0) != 0 {
		t.Errorf("home(a0) = %d", s.Home(a0))
	}
	if s.Home(a1) != 1 {
		t.Errorf("home(a1) = %d", s.Home(a1))
	}
}

func TestRawRoundTrip(t *testing.T) {
	s := NewSpace(0)
	a := s.Alloc(4, 0)
	s.SetRaw(a+2, 0xDEADBEEF)
	if got := s.Raw(a + 2); got != 0xDEADBEEF {
		t.Errorf("Raw = %x", got)
	}
	if got := s.Raw(a); got != 0 {
		t.Errorf("fresh word = %x, want 0", got)
	}
}

func TestOnGrowFires(t *testing.T) {
	s := NewSpace(0)
	var lastLines int
	s.OnGrow = func(n int) { lastLines = n }
	s.Alloc(WordsPerLine*3, 0)
	if lastLines != s.Lines() {
		t.Errorf("OnGrow reported %d lines, space has %d", lastLines, s.Lines())
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(7) != 0 || LineOf(8) != 1 || LineOf(17) != 2 {
		t.Error("LineOf mapping wrong")
	}
}

func TestAllocPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSpace(0).Alloc(0, 0)
}
