// Package mem provides the simulated word-addressable shared memory
// that every data structure and lock in this repository lives in.
//
// Memory is an array of 64-bit words grouped into 64-byte cache lines
// (8 words). The allocator is "HTM-friendly" in the sense of the
// malloc-placement study the paper cites [Dice et al. 2015]: every
// allocation is line-aligned and padded to a whole number of lines, so
// distinct objects never share a cache line (no false sharing between
// nodes, locks, or counters). Each line records a home socket for NUMA
// placement of DRAM accesses.
package mem

// Addr is a word index into the simulated memory. Address 0 is
// reserved as the nil pointer.
type Addr uint32

// WordsPerLine is the cache-line size in words (64 bytes).
const WordsPerLine = 8

// Nil is the null simulated pointer.
const Nil Addr = 0

// LineOf returns the cache-line index containing addr.
func LineOf(a Addr) int32 { return int32(a / WordsPerLine) }

// Space is one simulated physical memory.
type Space struct {
	words []uint64
	home  []uint8 // home socket per line
	next  Addr    // bump cursor, line-aligned

	// OnGrow, if set, is called after the memory grows, with the new
	// line count; the cache and HTM layers use it to size their
	// per-line metadata.
	OnGrow func(lines int)
}

// NewSpace creates a memory pre-sized to capWords (grown on demand).
func NewSpace(capWords int) *Space {
	if capWords < WordsPerLine*16 {
		capWords = WordsPerLine * 16
	}
	s := &Space{
		words: make([]uint64, 0, capWords),
		home:  make([]uint8, 0, capWords/WordsPerLine+1),
	}
	// Burn line 0 so that Addr 0 can serve as nil.
	s.grow(WordsPerLine, 0)
	return s
}

func (s *Space) grow(nWords, socket int) Addr {
	base := s.next
	end := int(base) + nWords
	for len(s.words) < end {
		s.words = append(s.words, 0)
	}
	for len(s.home) < end/WordsPerLine {
		s.home = append(s.home, uint8(socket))
	}
	s.next = Addr(end)
	if s.OnGrow != nil {
		s.OnGrow(end / WordsPerLine)
	}
	return base
}

// Alloc reserves nWords of zeroed, line-aligned memory homed on the
// given socket and returns its address. Allocations are padded to a
// whole number of lines.
func (s *Space) Alloc(nWords, socket int) Addr {
	if nWords <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	padded := (nWords + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	return s.grow(padded, socket)
}

// Words returns the number of allocated words (the high-water mark).
func (s *Space) Words() int { return int(s.next) }

// Lines returns the number of allocated cache lines.
func (s *Space) Lines() int { return int(s.next) / WordsPerLine }

// Home returns the home socket of the line containing addr.
func (s *Space) Home(a Addr) int { return int(s.home[LineOf(a)]) }

// Raw reads a word without any timing or coherence effects. It is used
// by the simulator runtime itself and by validation code; simulated
// threads must go through the HTM runtime instead.
func (s *Space) Raw(a Addr) uint64 { return s.words[a] }

// SetRaw writes a word without any timing or coherence effects.
func (s *Space) SetRaw(a Addr, v uint64) { s.words[a] = v }
