// Package fault is the deterministic fault injector for the simulated
// HTM substrate. It reproduces, on demand, the pathological hardware
// behaviours the paper documents — spurious aborts, the lying retry
// hint bit (Fig 2), sibling-hyperthread capacity pressure, stretched
// cross-socket invalidation windows, and preemption while holding the
// fallback lock (the classic TLE convoy trigger) — so the retry and
// degradation machinery in packages tle and natle can be exercised
// under adversarial conditions instead of only the happy-ish path.
//
// The substrate consults an Injector through nil-checked hooks in
// packages htm, cache, and spinlock: with no injector installed the
// hooks cost one pointer comparison, and an injector built from the
// zero Profile is behaviourally identical to no injector at all (it
// draws no randomness and adds no virtual time), which is asserted by
// the equivalence tests.
//
// All randomness is deterministic: hooks that receive a *sim.Ctx draw
// from the calling thread's seeded RNG (sim.Ctx.Intn/Float64); the one
// hook that has no thread context (InvalDelay, called from the cache
// model) draws from the injector's own seeded xorshift stream. A run
// is therefore a pure function of (machine profile, fault profile,
// seed) — never of wall-clock time.
package fault

import (
	"fmt"
	"math"

	"natle/internal/sim"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// Injector is the injection interface the HTM substrate consults. The
// hooks are called under the simulator's global serialization token.
// Implementations must be deterministic; the default implementation is
// New. Tests may supply their own (e.g. an injector that aborts every
// transaction until told to stop).
type Injector interface {
	// TxStart is invoked at transaction begin. It returns the number of
	// transactional accesses after which a spurious abort fires (0 =
	// none), modelling Poisson-like asynchronous abort arrivals (the
	// geometric distribution is the discrete-time Poisson interarrival).
	// It may also open machine-level fault windows (capacity squeezes).
	TxStart(c *sim.Ctx) int

	// AbortHint filters the hardware retry hint an abort reports, given
	// the (untouched) condition code. The lying-hint faults live here:
	// a capacity abort reported with the hint set ("retry will help" —
	// it will not) or a conflict abort reported with the hint clear.
	AbortHint(c *sim.Ctx, code telemetry.Code, hint bool) bool

	// Caps filters the transaction capacity bounds, modelling transient
	// sibling-hyperthread pressure shrinking the effective write-set
	// budget for a window.
	Caps(c *sim.Ctx, writeCap, readCap int) (int, int)

	// InvalDelay returns extra latency for an invalidation (remote
	// reports whether it crossed the socket boundary), stretching the
	// cross-socket window of contention.
	InvalDelay(now vtime.Time, remote bool) vtime.Duration

	// CSStall returns a stall to insert immediately after a fallback
	// lock acquisition (simulated preemption while holding the lock),
	// or 0.
	CSStall(c *sim.Ctx) vtime.Duration
}

// Profile configures the built-in injector. The zero value disables
// every fault: New(Profile{}, seed) is behaviourally identical to
// installing no injector.
type Profile struct {
	// SpuriousAbortRate is the per-transactional-access probability of
	// an injected spurious abort (condition code conflict, hint set, as
	// TSX reports interrupts and other environmental aborts). Arrivals
	// are geometric in the access count — the discrete-time analogue of
	// a Poisson process over a transaction's lifetime.
	SpuriousAbortRate float64

	// LieOnCapacity is the probability that a capacity abort reports
	// the retry hint SET (the lie: retrying cannot help a genuinely
	// overflowing transaction).
	LieOnCapacity float64

	// LieOnConflict is the probability that a conflict abort reports
	// the retry hint CLEAR — the Fig 2 pathology: policies that honor
	// the hint fall back to the lock for transient, retryable aborts.
	LieOnConflict float64

	// SqueezeProb is the per-transaction-start probability that a
	// capacity-squeeze window opens (if none is active): for SqueezeLen
	// of virtual time every transaction's capacity bounds are divided
	// by SqueezeFactor, modelling a burst of sibling-hyperthread cache
	// pressure.
	SqueezeProb   float64
	SqueezeFactor int            // capacity divisor during a window (default 64)
	SqueezeLen    vtime.Duration // window length (default 20us)

	// InvalDelayProb is the per-invalidation probability of adding
	// InvalDelayLen to a cross-socket invalidation, stretching the
	// window of contention (paper §3.2).
	InvalDelayProb float64
	InvalDelayLen  vtime.Duration // default 300ns

	// StallProb is the per-acquisition probability that a thread is
	// "preempted" for StallLen immediately after taking a spin lock —
	// while transactions subscribed to the lock word abort and pile up
	// behind it (the TLE convoy / lemming trigger).
	StallProb float64
	StallLen  vtime.Duration // default 30us
}

// Enabled reports whether any fault is active.
func (p Profile) Enabled() bool {
	return p.SpuriousAbortRate > 0 || p.LieOnCapacity > 0 || p.LieOnConflict > 0 ||
		p.SqueezeProb > 0 || p.InvalDelayProb > 0 || p.StallProb > 0
}

// Stats counts the faults actually injected (host-side, observational).
type Stats struct {
	SpuriousAborts uint64 // spurious-abort countdowns armed
	HintLies       uint64 // abort hints flipped
	Squeezes       uint64 // capacity-squeeze windows opened
	SqueezedTx     uint64 // capacity queries answered with squeezed bounds
	InvalDelays    uint64 // invalidations delayed
	Stalls         uint64 // in-critical-section stalls injected
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("spurious=%d hint-lies=%d squeezes=%d squeezed-tx=%d inval-delays=%d stalls=%d",
		s.SpuriousAborts, s.HintLies, s.Squeezes, s.SqueezedTx, s.InvalDelays, s.Stalls)
}

// Fault is the built-in deterministic injector.
type Fault struct {
	p   Profile
	rng uint64 // private stream for hooks without a thread context

	squeezeUntil vtime.Time

	Stats Stats
}

// New builds an injector for the profile. seed feeds the injector's
// private RNG stream; hooks with a thread context use the thread's own
// seeded RNG, so the whole run stays a function of (profile, seed).
func New(p Profile, seed int64) *Fault {
	if p.SqueezeFactor <= 0 {
		p.SqueezeFactor = 64
	}
	if p.SqueezeLen <= 0 {
		p.SqueezeLen = 20 * vtime.Microsecond
	}
	if p.InvalDelayLen <= 0 {
		p.InvalDelayLen = 300 * vtime.Nanosecond
	}
	if p.StallLen <= 0 {
		p.StallLen = 30 * vtime.Microsecond
	}
	rng := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	if rng == 0 {
		rng = 0x2545F4914F6CDD1D
	}
	return &Fault{p: p, rng: rng}
}

// Profile returns the (defaulted) profile the injector was built with.
func (f *Fault) Profile() Profile { return f.p }

func (f *Fault) rand64() uint64 {
	x := f.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	f.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (f *Fault) float64() float64 { return float64(f.rand64()>>11) / (1 << 53) }

// TxStart implements Injector.
func (f *Fault) TxStart(c *sim.Ctx) int {
	if f.p.SqueezeProb > 0 && c.Now() >= f.squeezeUntil &&
		c.Float64() < f.p.SqueezeProb {
		f.squeezeUntil = c.Now().Add(f.p.SqueezeLen)
		f.Stats.Squeezes++
	}
	if f.p.SpuriousAbortRate <= 0 {
		return 0
	}
	// Geometric interarrival by inverse transform: the countdown is the
	// number of accesses until the first success of a Bernoulli(p)
	// process. u is kept away from 0 so Log stays finite.
	u := c.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	k := int(math.Ceil(math.Log(u) / math.Log(1-f.p.SpuriousAbortRate)))
	if k < 1 {
		k = 1
	}
	f.Stats.SpuriousAborts++
	return k
}

// AbortHint implements Injector.
func (f *Fault) AbortHint(c *sim.Ctx, code telemetry.Code, hint bool) bool {
	switch code {
	case telemetry.CodeCapacity:
		if !hint && f.p.LieOnCapacity > 0 && c.Float64() < f.p.LieOnCapacity {
			f.Stats.HintLies++
			return true
		}
	case telemetry.CodeConflict:
		if hint && f.p.LieOnConflict > 0 && c.Float64() < f.p.LieOnConflict {
			f.Stats.HintLies++
			return false
		}
	case telemetry.CodeNone, telemetry.CodeExplicit, telemetry.CodeLockHeld:
		// The hint lies model environmental misreporting; explicit and
		// lock-held aborts carry exact, program-chosen hints that no
		// hardware path distorts.
	}
	return hint
}

// Caps implements Injector.
func (f *Fault) Caps(c *sim.Ctx, writeCap, readCap int) (int, int) {
	if f.p.SqueezeProb <= 0 || c.Now() >= f.squeezeUntil {
		return writeCap, readCap
	}
	f.Stats.SqueezedTx++
	w := writeCap / f.p.SqueezeFactor
	r := readCap / f.p.SqueezeFactor
	if w < 1 {
		w = 1
	}
	if r < 1 {
		r = 1
	}
	return w, r
}

// InvalDelay implements Injector. It has no thread context (the cache
// model works below the thread layer), so it draws from the injector's
// private deterministic stream.
func (f *Fault) InvalDelay(now vtime.Time, remote bool) vtime.Duration {
	if !remote || f.p.InvalDelayProb <= 0 {
		return 0
	}
	if f.float64() >= f.p.InvalDelayProb {
		return 0
	}
	f.Stats.InvalDelays++
	return f.p.InvalDelayLen
}

// CSStall implements Injector.
func (f *Fault) CSStall(c *sim.Ctx) vtime.Duration {
	if f.p.StallProb <= 0 || c.Float64() >= f.p.StallProb {
		return 0
	}
	f.Stats.Stalls++
	return f.p.StallLen
}
