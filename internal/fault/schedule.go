package fault

import (
	"fmt"
	"strings"

	"natle/internal/vtime"
)

// Schedule is a named fault profile, each reproducing one of the
// paper's pathologies on demand. The chaos harness (internal/harness)
// runs every synchronization scheme under every schedule and asserts
// the conservation invariants and final data-structure contents.
type Schedule struct {
	Name    string
	Summary string
	// Paper names the phenomenon from the paper (or the follow-up
	// literature) the schedule reproduces.
	Paper   string
	Profile Profile
}

// schedules are ordered mild-to-severe; Schedules preserves the order.
var schedules = []Schedule{
	{
		Name:    "spurious",
		Summary: "Poisson-arrival spurious aborts (0.5%/access, conflict code, hint set)",
		Paper:   "environmental aborts: interrupts, TLB shootdowns (§2; Dice et al., malloc placement abort storms)",
		Profile: Profile{SpuriousAbortRate: 0.005},
	},
	{
		Name:    "hintlie",
		Summary: "lying retry-hint bit: capacity aborts report hint set, conflicts hint clear (plus abort traffic to lie about)",
		Paper:   "Fig 2: transactions aborting without the hint bit succeed when retried; honoring the hint is harmful",
		Profile: Profile{LieOnCapacity: 1, LieOnConflict: 1, SpuriousAbortRate: 0.003},
	},
	{
		Name:    "squeeze",
		Summary: "transient capacity squeezes: sibling pressure divides tx capacity by 128 for 20us windows",
		Paper:   "Fig 2b: hyperthread-sibling cache pressure halves capacity and causes transient evictions",
		Profile: Profile{SqueezeProb: 0.05, SqueezeFactor: 128, SqueezeLen: 20 * vtime.Microsecond},
	},
	{
		Name:    "slowinval",
		Summary: "delayed cross-socket invalidations (+300ns each), stretching the conflict window",
		Paper:   "§3.2: remote invalidation round trips lengthen the window of contention",
		Profile: Profile{InvalDelayProb: 1, InvalDelayLen: 300 * vtime.Nanosecond},
	},
	{
		Name:    "stall",
		Summary: "in-critical-section preemption: 20% of lock acquisitions stall 30us while holding (spurious aborts force occasional fallbacks)",
		Paper:   "§3.1 lemming effect: a descheduled fallback-lock holder convoys every eliding thread",
		Profile: Profile{StallProb: 0.2, StallLen: 30 * vtime.Microsecond, SpuriousAbortRate: 0.003},
	},
	{
		Name:    "storm",
		Summary: "all faults at once, moderate rates (the adversarial kitchen sink)",
		Paper:   "composite: every pathology above, concurrently",
		Profile: Profile{
			SpuriousAbortRate: 0.002,
			LieOnCapacity:     0.5,
			LieOnConflict:     0.5,
			SqueezeProb:       0.02,
			SqueezeFactor:     128,
			SqueezeLen:        10 * vtime.Microsecond,
			InvalDelayProb:    0.5,
			InvalDelayLen:     200 * vtime.Nanosecond,
			StallProb:         0.1,
			StallLen:          15 * vtime.Microsecond,
		},
	},
}

// Schedules returns the named fault schedules, mild to severe.
func Schedules() []Schedule { return append([]Schedule(nil), schedules...) }

// ScheduleNames returns the schedule names in Schedules order.
func ScheduleNames() []string {
	n := make([]string, len(schedules))
	for i, s := range schedules {
		n[i] = s.Name
	}
	return n
}

// LookupSchedule returns the named schedule; the error lists the valid
// names so flag parsing can surface it directly.
func LookupSchedule(name string) (Schedule, error) {
	for _, s := range schedules {
		if s.Name == name {
			return s, nil
		}
	}
	return Schedule{}, fmt.Errorf("fault: unknown schedule %q (have %s)",
		name, strings.Join(ScheduleNames(), ", "))
}

// ScheduleHelp renders one "name: summary" line per schedule.
func ScheduleHelp() string {
	var b strings.Builder
	for _, s := range schedules {
		fmt.Fprintf(&b, "%-10s %s\n", s.Name, s.Summary)
	}
	return b.String()
}
