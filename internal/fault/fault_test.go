package fault_test

import (
	"bytes"
	"strings"
	"testing"

	"natle/internal/fault"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sets"
	"natle/internal/sim"
	"natle/internal/telemetry"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// trial runs a fixed four-worker insert/delete schedule over a shared
// AVL tree under TLE, with the given injector installed (nil = none),
// and returns the final contents, the machine's HTM counters, and the
// full Chrome-trace export of every telemetry event.
func trial(t *testing.T, inj fault.Injector) ([]int64, htm.Stats, []byte) {
	t.Helper()
	rec := telemetry.NewCollector(telemetry.Config{TraceCap: 1 << 15})
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 4, 1)
	sys := htm.NewSystem(e, 1<<20)
	sys.SetRecorder(rec)
	if inj != nil {
		sys.SetInjector(inj)
	}
	var keys []int64
	e.Spawn(nil, func(c *sim.Ctx) {
		set := sets.NewAVL(sys, c)
		l := tle.New(sys, c, 0, tle.TLE20())
		for i := 0; i < 4; i++ {
			tid := i
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < 120; j++ {
					key := int64((tid*131 + j*17) % 96)
					if (tid+j)%3 == 0 {
						l.Critical(w, func() { set.Delete(w, key) })
					} else {
						l.Critical(w, func() { set.Insert(w, key) })
					}
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
		keys = set.Keys()
	})
	e.Run()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	return keys, sys.Stats, buf.Bytes()
}

// TestZeroProfileInjectorIsNoOp is the zero-cost-when-disabled
// contract: an injector built from the zero Profile must be
// behaviourally identical to installing no injector at all — same
// results, same counters, byte-identical telemetry. This is what
// guarantees the hooks draw no randomness and add no virtual time
// unless a fault is actually configured.
func TestZeroProfileInjectorIsNoOp(t *testing.T) {
	k0, h0, tr0 := trial(t, nil)
	k1, h1, tr1 := trial(t, fault.New(fault.Profile{}, 99))
	if h0 != h1 {
		t.Errorf("HTM counters diverge:\n nil: %v\nzero: %v", h0, h1)
	}
	if len(k0) == 0 || len(k0) != len(k1) {
		t.Fatalf("contents diverge: %d vs %d keys", len(k0), len(k1))
	}
	for i := range k0 {
		if k0[i] != k1[i] {
			t.Fatalf("contents diverge at %d: %d vs %d", i, k0[i], k1[i])
		}
	}
	if !bytes.Equal(tr0, tr1) {
		t.Error("telemetry traces diverge between nil injector and zero-profile injector")
	}
}

// TestInjectionIsDeterministic: identical (profile, seed) must yield
// byte-identical telemetry streams and identical injector counters.
func TestInjectionIsDeterministic(t *testing.T) {
	sched, err := fault.LookupSchedule("storm")
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := fault.New(sched.Profile, 7), fault.New(sched.Profile, 7)
	k1, h1, t1 := trial(t, i1)
	k2, h2, t2 := trial(t, i2)
	if h1 != h2 {
		t.Errorf("HTM counters diverge across identical runs:\n%v\n%v", h1, h2)
	}
	if i1.Stats != i2.Stats {
		t.Errorf("injector counters diverge: %v vs %v", i1.Stats, i2.Stats)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("telemetry traces diverge across identical fault runs")
	}
	if len(k1) != len(k2) {
		t.Errorf("contents diverge: %d vs %d keys", len(k1), len(k2))
	}
}

// TestFaultsChangeBehaviour guards against the opposite failure: a
// schedule that silently injects nothing. Under the storm schedule the
// injector must actually fire.
func TestFaultsChangeBehaviour(t *testing.T) {
	inj := fault.New(mustSchedule(t, "storm").Profile, 7)
	_, h, _ := trial(t, inj)
	_, h0, _ := trial(t, nil)
	if inj.Stats.SpuriousAborts == 0 {
		t.Error("storm schedule armed no spurious aborts")
	}
	if h.TotalAborts() <= h0.TotalAborts() {
		t.Errorf("faults did not increase aborts: %d (faulty) vs %d (clean)",
			h.TotalAborts(), h0.TotalAborts())
	}
}

func mustSchedule(t *testing.T, name string) fault.Schedule {
	t.Helper()
	s, err := fault.LookupSchedule(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInvalDelayPrivateStreamIsDeterministic(t *testing.T) {
	p := fault.Profile{InvalDelayProb: 0.5}
	a, b := fault.New(p, 42), fault.New(p, 42)
	for i := 0; i < 1000; i++ {
		at := vtime.Time(i)
		if a.InvalDelay(at, true) != b.InvalDelay(at, true) {
			t.Fatalf("private streams diverge at draw %d", i)
		}
	}
	if a.Stats.InvalDelays == 0 || a.Stats.InvalDelays == 1000 {
		t.Errorf("InvalDelay prob 0.5 fired %d/1000 times", a.Stats.InvalDelays)
	}
	if d := a.InvalDelay(0, false); d != 0 {
		t.Errorf("local invalidation delayed by %v; only remote ones should be", d)
	}
}

func TestScheduleLookup(t *testing.T) {
	for _, name := range fault.ScheduleNames() {
		s, err := fault.LookupSchedule(name)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Profile.Enabled() {
			t.Errorf("schedule %q has a disabled profile", name)
		}
		if s.Paper == "" {
			t.Errorf("schedule %q cites no paper phenomenon", name)
		}
	}
	if _, err := fault.LookupSchedule("nonesuch"); err == nil {
		t.Error("expected error for unknown schedule")
	} else if !strings.Contains(err.Error(), "spurious") {
		t.Errorf("error should list valid names, got: %v", err)
	}
	if !strings.Contains(fault.ScheduleHelp(), "storm") {
		t.Error("ScheduleHelp missing a schedule")
	}
}
