package harness

import (
	"fmt"
	"strings"

	"natle/internal/expt"
	"natle/internal/fault"
	"natle/internal/scheme"
	"natle/internal/service"
	"natle/internal/vtime"
)

// The service plans: the open-loop KV service (internal/service) as
// figure families. Where the paper's figures ask "how fast can N
// threads hammer a structure?", these ask the production-shaped dual:
// "what offered load can each scheme absorb within a latency SLO, and
// what does its tail look like on the way there?". Every trial is a
// full deterministic service run (arrivals -> admission -> shards ->
// telemetry), so the plans inherit the executor's byte-identity
// guarantee unchanged.

// serviceBase is the shared trial config: the scale's window and seed,
// and the scale's NATLE cycle (shortened at QuickScale exactly like
// the closed-loop NATLE figures).
func (sc Scale) serviceBase() service.Config {
	n := sc.NATLE
	return service.Config{
		Seed:   sc.Seed,
		Window: sc.ServiceWindow,
		NATLE:  &n,
	}
}

// usF converts a virtual duration to microseconds for plotting.
func usF(d vtime.Duration) float64 { return d.Seconds() * 1e6 }

// serviceMidRate picks the sweep's middle offered load (the chaos plan
// runs at one fixed rate so fault schedules are the only axis).
func (sc Scale) serviceMidRate() float64 {
	if len(sc.ServiceRates) == 0 {
		return 8e6
	}
	return sc.ServiceRates[len(sc.ServiceRates)/2]
}

// PlanServiceLatency sweeps offered load under Poisson arrivals for
// the headline schemes and plots the end-to-end latency distribution
// (p50 and p99) plus the shed share — the knee where each scheme's
// shards saturate is the figure's story.
func PlanServiceLatency(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "service-latency",
		Title:  "KV service, poisson arrivals: end-to-end latency vs offered load",
		XLabel: "req/s",
		YLabel: "latency [us] / shed [%]",
	}
	for _, schm := range []string{"lock", "tle", "natle"} {
		for _, rate := range sc.ServiceRates {
			p.Add(expt.TrialSpec{
				Key: fmt.Sprintf("%s/%.4g", schm, rate),
				Run: func() expt.Outcome {
					cfg := sc.serviceBase()
					cfg.Scheme = schm
					cfg.Rate = rate
					r := service.Run(cfg)
					return expt.Outcome{Points: []expt.Point{
						{Series: schm + "/p50", X: rate, Y: usF(r.E2E.Quantile(0.50))},
						{Series: schm + "/p99", X: rate, Y: usF(r.E2E.Quantile(0.99))},
						{Series: schm + "/shed%", X: rate, Y: 100 * r.ShedFraction()},
						// Deadline shedding stays zero here (no deadlines
						// armed); the column documents the invariant and
						// keeps the CSV shape aligned with the overload and
						// chaos families.
						{Series: schm + "/dshed%", X: rate, Y: 100 * r.DeadlineShedFraction()},
					}}
				},
			})
		}
	}
	return p
}

// PlanServiceSLO binary-searches the maximum sustainable arrival rate
// under the scale's latency SLO for every Batch-capable scheme — the
// ROADMAP's "what rate fits in 1 ms p99?" question answered per
// scheme. The x axis indexes schemes in registry order; the notes name
// each one with its searched rate.
func PlanServiceSLO(sc Scale) *expt.Plan {
	schemes := scheme.BatchNames()
	p := &expt.Plan{
		ID: "service-slo",
		Title: fmt.Sprintf("KV service: max sustainable load at p%g <= %v",
			100*quantileOrDefault(sc.ServiceSLO), sc.ServiceSLO.Target),
		XLabel: "scheme#",
		YLabel: "req/s",
		Notes: []string{
			"x axis indexes Batch-capable schemes in registry order: " +
				strings.Join(schemes, ", "),
		},
	}
	for i, name := range schemes {
		p.Add(expt.TrialSpec{
			Key: "slo/" + name,
			Run: func() expt.Outcome {
				cfg := sc.serviceBase()
				cfg.Scheme = name
				r := service.SearchSLO(cfg, sc.ServiceSLO)
				return expt.Outcome{
					Points: []expt.Point{
						{Series: "sustained", X: float64(i), Y: r.Sustained},
					},
					Notes: []string{r.String()},
				}
			},
		})
	}
	return p
}

// quantileOrDefault mirrors SLO.defaults for display (the search
// itself normalizes independently).
func quantileOrDefault(s service.SLO) float64 {
	if s.Quantile <= 0 || s.Quantile >= 1 {
		return 0.99
	}
	return s.Quantile
}

// PlanServiceArrivals holds the scheme fixed (TLE) and sweeps offered
// load under each arrival process: the same time-averaged rate arrives
// smoothly, in bursts, or on a diurnal curve, and the p99 separation
// between the curves is the cost of non-stationarity.
func PlanServiceArrivals(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "service-arrivals",
		Title:  "KV service, TLE shards: p99 latency by arrival process",
		XLabel: "req/s",
		YLabel: "p99 [us] / shed [%]",
	}
	for _, a := range service.Arrivals() {
		for _, rate := range sc.ServiceRates {
			p.Add(expt.TrialSpec{
				Key: fmt.Sprintf("%s/%.4g", a.Kind, rate),
				Run: func() expt.Outcome {
					cfg := sc.serviceBase()
					cfg.Scheme = "tle"
					cfg.Arrival = a.Kind
					cfg.Rate = rate
					r := service.Run(cfg)
					return expt.Outcome{Points: []expt.Point{
						{Series: string(a.Kind) + "/p99", X: rate, Y: usF(r.E2E.Quantile(0.99))},
						{Series: string(a.Kind) + "/shed%", X: rate, Y: 100 * r.ShedFraction()},
						{Series: string(a.Kind) + "/dshed%", X: rate, Y: 100 * r.DeadlineShedFraction()},
					}}
				},
			})
		}
	}
	return p
}

// PlanServiceChaos drives the hardened schemes (tle-robust's breaker,
// natle's throttle) through every named fault schedule under bursty
// arrivals at the sweep's middle rate, with the full overload-control
// stack armed (per-request deadlines, brownout, retry budget):
// non-stationary load on top of injected HTM adversity. The
// conservation invariant (arrivals = admitted + shed, admitted =
// completed + deadline-shed) must hold in every cell; a violation
// surfaces as a deterministic note and the test suite fails on it.
func PlanServiceChaos(sc Scale) *expt.Plan {
	scheds := fault.ScheduleNames()
	p := &expt.Plan{
		ID:     "service-chaos",
		Title:  "KV service, bursty arrivals: hardened schemes under fault schedules",
		XLabel: "schedule#",
		YLabel: "p99 [us] / shed [%] / brownout level",
		Notes: []string{
			"x axis indexes fault schedules in order: " + strings.Join(scheds, ", "),
		},
	}
	rate := sc.serviceMidRate()
	slo := sc.overloadSLO()
	for _, schm := range []string{"tle-robust", "natle"} {
		for i, sn := range scheds {
			p.Add(expt.TrialSpec{
				Key: fmt.Sprintf("%s/%s", schm, sn),
				Run: func() expt.Outcome {
					sched, err := fault.LookupSchedule(sn)
					if err != nil {
						panic(err)
					}
					cfg := sc.serviceBase()
					cfg.Scheme = schm
					cfg.Arrival = service.ArrivalBursty
					cfg.Rate = rate
					cfg.Fault = &sched.Profile
					cfg.Deadline = slo
					cfg.Brownout = &service.BrownoutConfig{SLO: slo}
					cfg.RetryBudget = overloadRetryBudget
					r := service.Run(cfg)
					o := expt.Outcome{Points: []expt.Point{
						{Series: schm + "/p99", X: float64(i), Y: usF(r.E2E.Quantile(0.99))},
						{Series: schm + "/shed%", X: float64(i), Y: 100 * r.ShedFraction()},
						{Series: schm + "/dshed%", X: float64(i), Y: 100 * r.DeadlineShedFraction()},
						{Series: schm + "/miss%", X: float64(i), Y: 100 * r.DeadlineMissFraction()},
						{Series: schm + "/bo-peak", X: float64(i), Y: float64(r.BrownoutPeak)},
					}}
					if r.Arrivals != r.Admitted+r.Shed || r.Admitted != r.Completed+r.DeadlineShed {
						o.Notes = append(o.Notes, fmt.Sprintf(
							"%s/%s: CONSERVATION BROKEN: arrivals=%d admitted=%d shed=%d completed=%d dshed=%d",
							schm, sn, r.Arrivals, r.Admitted, r.Shed, r.Completed, r.DeadlineShed))
					}
					return o
				},
			})
		}
	}
	return p
}

// overloadSLO resolves the scale's overload deadline (zero keeps a
// 200us default so ad-hoc Scale literals still get a sane target).
func (sc Scale) overloadSLO() vtime.Duration {
	if sc.ServiceOverloadSLO > 0 {
		return sc.ServiceOverloadSLO
	}
	return 200 * vtime.Microsecond
}

// overloadRetryBudget is the per-shard abort allowance per brownout
// window armed by the overload and chaos plans: generous enough to
// never bite at sane load, small enough that an abort storm under
// overload forces the mutual-exclusion downgrade.
const overloadRetryBudget = 4096

// PlanServiceOverload sweeps offered load from half to four times the
// sweep's middle rate with a deliberately deep admission queue
// (bufferbloat) and compares the baseline service against the full
// overload-control stack — per-request deadlines with queue-wait
// shedding, the brownout ladder, and the shared retry budget. The
// figure's claim: under 4x overload the controlled service holds p99
// near the SLO by shedding visibly, where the baseline's tail grows
// with the queue depth.
func PlanServiceOverload(sc Scale) *expt.Plan {
	slo := sc.overloadSLO()
	base := sc.serviceMidRate()
	muls := []float64{0.5, 1, 2, 3, 4}
	p := &expt.Plan{
		ID:     "service-overload",
		Title:  fmt.Sprintf("KV service, tle-robust shards: overload control vs baseline (SLO %v)", slo),
		XLabel: "offered load [x mid rate]",
		YLabel: "p99 [us] / shed [%] / brownout level",
	}
	for _, mode := range []string{"baseline", "brownout"} {
		for _, mul := range muls {
			p.Add(expt.TrialSpec{
				Key: fmt.Sprintf("%s/%.2gx", mode, mul),
				Run: func() expt.Outcome {
					cfg := sc.serviceBase()
					cfg.Scheme = "tle-robust"
					cfg.Rate = base * mul
					cfg.QueueCap = 1024
					if mode == "brownout" {
						cfg.Deadline = slo
						cfg.Brownout = &service.BrownoutConfig{SLO: slo}
						cfg.RetryBudget = overloadRetryBudget
					}
					r := service.Run(cfg)
					return expt.Outcome{Points: []expt.Point{
						{Series: mode + "/p99", X: mul, Y: usF(r.E2E.Quantile(0.99))},
						{Series: mode + "/shed%", X: mul, Y: 100 * r.ShedFraction()},
						{Series: mode + "/dshed%", X: mul, Y: 100 * r.DeadlineShedFraction()},
						{Series: mode + "/miss%", X: mul, Y: 100 * r.DeadlineMissFraction()},
						{Series: mode + "/bo-peak", X: mul, Y: float64(r.BrownoutPeak)},
					}}
				},
			})
		}
	}
	return p
}
