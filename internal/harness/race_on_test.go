//go:build race

package harness

// raceDetectorOn reports whether this test binary was built with
// -race. The detector multiplies simulated-trial cost several-fold,
// so the heaviest plans opt out of the byte-identity sweep under it
// (see parallel_test.go).
const raceDetectorOn = true
