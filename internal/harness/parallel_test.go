package harness

import (
	"testing"

	"natle/internal/expt"
	"natle/internal/vtime"
)

// microScale shrinks every sweep to the minimum that still exercises
// each plan's full structure (both machines, a cross-socket thread
// count, every series). The determinism test below runs EVERY plan
// twice, so this scale trades fidelity for wall clock; the byte-
// identity property itself is scale-independent (assembly is plan
// order at any -j), which is exactly what the test pins down.
func microScale() Scale {
	sc := QuickScale()
	sc.LargeThreads = []int{1, 42}
	sc.SmallThreads = []int{1, 2}
	sc.Dur /= 8
	sc.Warmup /= 8
	sc.NATLEDur /= 6
	sc.NATLEWarmup /= 6
	// Shorter NATLE cycles (profiling + 2 quanta) so a few full cycles
	// still fit inside the shrunken trials.
	sc.NATLE.ProfilingLen = 100 * vtime.Microsecond
	sc.NATLE.QuantumLen = 50 * vtime.Microsecond
	sc.NATLE.Quanta = 2
	// Service plans: one pre-knee and one post-knee rate over a short
	// window, and a two-step SLO bisection — every series and the shed
	// path still exercised.
	sc.ServiceWindow /= 4
	sc.ServiceRates = []float64{8e6, 32e6}
	sc.ServiceSLO.Iters = 2
	return sc
}

// TestPlansByteIdenticalAtAnyWorkerCount is the executor's headline
// guarantee: for every figure in the menu, rendering with one host
// worker and with several must produce byte-identical text and CSV.
// Trials are deterministic islands and assembly is strictly plan
// order, so any diff here means shared state leaked into a trial or
// completion order leaked into assembly.
// raceSkip lists the plans whose trials are long NATLE sweeps; under
// -race they dominate the package's wall clock (the detector slows the
// simulator several-fold). They exercise the exact same executor and
// pool as every other plan, so skipping them under -race loses no
// interleaving coverage — the remaining 19 plans still run both ways.
var raceSkip = map[string]bool{
	"fig02a":                      true,
	"fig06":                       true,
	"fig12":                       true,
	"fig13":                       true,
	"fig17":                       true,
	"ablation-remote-latency":     true,
	"ablation-profiling-len":      true,
	"ablation-quanta":             true,
	"ablation-adaptive-profiling": true,
}

func TestPlansByteIdenticalAtAnyWorkerCount(t *testing.T) {
	sc := microScale()
	for _, e := range Plans() {
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			if raceDetectorOn && raceSkip[e.ID] {
				t.Skip("heavy NATLE sweep; skipped under -race (same executor path as the other plans)")
			}
			seq := Exec(e.Build(sc), expt.Options{Workers: 1})
			par := Exec(e.Build(sc), expt.Options{Workers: 4})
			if s, p := seq.String(), par.String(); s != p {
				t.Errorf("String() differs between -j 1 and -j 4:\n--- j=1\n%s\n--- j=4\n%s", s, p)
			}
			if s, p := seq.CSV(), par.CSV(); s != p {
				t.Errorf("CSV() differs between -j 1 and -j 4:\n--- j=1\n%s\n--- j=4\n%s", s, p)
			}
		})
	}
}

// TestExecFoldsFailureNotes checks the harness-level contract for a
// panicking trial: the figure still renders, the surviving series keep
// their points, and the failure surfaces as a deterministic note.
func TestExecFoldsFailureNotes(t *testing.T) {
	p := &expt.Plan{ID: "x", Title: "T", XLabel: "n", YLabel: "y"}
	valueSeries(p, "ok", []int{1, 2}, func(n int) float64 { return float64(n) })
	p.Add(expt.TrialSpec{
		Key:    "bad/1",
		Run:    func() expt.Outcome { panic("injected") },
		Reduce: expt.Emit("bad", 1),
	})
	f := Exec(p, expt.Options{Workers: 4})
	if len(f.Series) != 1 || f.Series[0].Name != "ok" || len(f.Series[0].X) != 2 {
		t.Fatalf("series = %+v", f.Series)
	}
	if len(f.Notes) != 1 || f.Notes[0] != "trial bad/1 FAILED: injected" {
		t.Fatalf("notes = %v", f.Notes)
	}
}
