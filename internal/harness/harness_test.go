package harness

import (
	"strings"
	"testing"
)

func TestFigureFormatting(t *testing.T) {
	f := &Figure{ID: "x", Title: "T", XLabel: "threads", YLabel: "y"}
	f.Add("a", 1, 10)
	f.Add("a", 2, 20)
	f.Add("b", 2, 5)
	s := f.String()
	if !strings.Contains(s, "== x: T") {
		t.Errorf("missing header in %q", s)
	}
	if !strings.Contains(s, "-") {
		t.Errorf("missing placeholder for sparse series in %q", s)
	}
	csv := f.CSV()
	want := "threads,a,b\n1,10,\n2,20,5\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestIndexSortedUnique(t *testing.T) {
	f := &Figure{}
	f.Add("a", 3, 10)
	f.Add("a", 1, 11)
	f.Add("b", 3, 12)
	f.Add("b", 2, 13)
	ix := f.index()
	want := []float64{1, 2, 3}
	if len(ix.xs) != len(want) {
		t.Fatalf("index xs = %v", ix.xs)
	}
	for i := range ix.xs {
		if ix.xs[i] != want[i] {
			t.Fatalf("index xs = %v, want %v", ix.xs, want)
		}
	}
	if y, ok := ix.series[1][2]; !ok || y != 13 {
		t.Fatalf("series b at x=2: got %v, %v", y, ok)
	}
	if _, ok := ix.series[0][2]; ok {
		t.Fatal("series a should have no point at x=2")
	}
}

// tinyScale shrinks everything for smoke tests.
func tinyScale() Scale {
	sc := QuickScale()
	sc.LargeThreads = []int{1, 36, 48}
	sc.SmallThreads = []int{1, 4}
	sc.Dur /= 2
	sc.NATLEDur /= 2
	return sc
}

func TestFig01Shape(t *testing.T) {
	f := Fig01(tinyScale())
	if len(f.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(f.Series))
	}
	lg := f.Series[0]
	if lg.Name != "large" {
		t.Fatalf("first series %q", lg.Name)
	}
	// Fig 1's qualitative content: speedup at 36 well above 1, and a
	// drop once the second socket is used.
	if lg.Y[1] < 4 {
		t.Errorf("large 36-thread speedup = %.1f, want > 4", lg.Y[1])
	}
	if lg.Y[2] > 0.9*lg.Y[1] {
		t.Errorf("no cross-socket drop: %.1f -> %.1f", lg.Y[1], lg.Y[2])
	}
}

func TestFig06DelayRaisesAborts(t *testing.T) {
	sc := tinyScale()
	sc.Dur /= 2
	f := Fig06(sc)
	var abort *Series
	for i := range f.Series {
		if f.Series[i].Name == "abort rate" {
			abort = &f.Series[i]
		}
	}
	if abort == nil || len(abort.Y) < 3 {
		t.Fatal("missing abort-rate series")
	}
	first, last := abort.Y[0], abort.Y[len(abort.Y)-1]
	if last < 3*first && last < 20 {
		t.Errorf("delay did not raise abort rate: %.2f%% -> %.2f%%", first, last)
	}
}

func TestLLCMissesDoNotAbort(t *testing.T) {
	r := RunLLC(1<<15, false, 1)
	if r.Reads < 1<<14 {
		t.Fatalf("too few reads: %d", r.Reads)
	}
	if r.LLCMisses < r.Reads/2 {
		t.Errorf("LLC misses = %d for %d reads; expected almost all to miss", r.LLCMisses, r.Reads)
	}
	if r.Aborts > r.Reads/100 {
		t.Errorf("aborts = %d; LLC misses must not abort transactions", r.Aborts)
	}
	remote := RunLLC(1<<15, true, 1)
	if remote.Aborts > remote.Reads/100 {
		t.Errorf("remote-home aborts = %d; cross-socket misses must not abort", remote.Aborts)
	}
}

func TestDelegationRuns(t *testing.T) {
	sc := tinyScale()
	single := RunDelegation(sc, 8, 1)
	batched := RunDelegation(sc, 8, 4)
	if single <= 0 || batched <= 0 {
		t.Fatalf("delegation throughput: single=%.0f batched=%.0f", single, batched)
	}
	if batched < single {
		t.Errorf("batching (%.0f) should outperform single-op delegation (%.0f)", batched, single)
	}
}
