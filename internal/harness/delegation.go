package harness

import (
	"natle/internal/delegation"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sets"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// avlExec adapts an AVL tree to the delegation executor interface.
type avlExec struct {
	sys *htm.System
	set *sets.AVL
}

// Execute implements delegation.Executor.
func (x avlExec) Execute(c *sim.Ctx, code int, key int64) bool {
	switch code {
	case delegation.OpInsert:
		return x.set.Insert(c, key)
	case delegation.OpDelete:
		return x.set.Delete(c, key)
	default:
		return x.set.Contains(c, key)
	}
}

// RunDelegation measures the Section 4.1 delegation baseline: one
// server per socket owns half the key range [0,2048) as a socket-local
// AVL tree; the remaining threads are clients issuing 100%-update
// operations in batches of the given size. It returns operations per
// virtual second over the measured window.
func RunDelegation(sc Scale, threads, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	if batch > delegation.MaxBatch {
		batch = delegation.MaxBatch
	}
	const keyRange = 2048
	p := machine.LargeX52()
	e := sim.New(p, machine.FillSocketFirst{}, threads, sc.Seed)
	sys := htm.NewSystem(e, 1<<20)
	nClients := threads - p.Sockets
	if nClients < 1 {
		nClients = 1
	}
	var ops uint64
	dur := sc.Dur

	e.Spawn(nil, func(c *sim.Ctx) {
		stop := false
		chans := make([]*delegation.Channel, p.Sockets)
		for s := 0; s < p.Sockets; s++ {
			s := s
			chans[s] = delegation.NewChannel(sys, c, nClients, s)
			// The server's half lives in a socket-local tree.
			tree := sets.NewAVL(sys, c)
			lo := int64(s) * keyRange / int64(p.Sockets)
			hi := int64(s+1) * keyRange / int64(p.Sockets)
			// Prefill half the keys of this server's subrange.
			for k := lo; k < hi; k += 2 {
				tree.Insert(c, k)
			}
			// Servers occupy the last core of their socket to keep the
			// policy-placed clients off them at low thread counts.
			core := (s+1)*p.CoresPerSocket - 1
			e.SpawnOn(c, core, func(w *sim.Ctx) {
				exec := avlExec{sys: sys, set: tree}
				for !stop {
					if !chans[s].Serve(w, exec) {
						w.AdvanceIdle(200 * vtime.Nanosecond)
						w.Yield()
					}
				}
			})
		}
		var started bool
		var measureStart, deadline vtime.Time
		for i := 0; i < nClients; i++ {
			i := i
			e.Spawn(c, func(w *sim.Ctx) {
				w.WaitUntil(500*vtime.Nanosecond, func() bool { return started })
				var counted uint64
				batches := make([][]delegation.Op, p.Sockets)
				for {
					opStart := w.Now()
					if opStart >= deadline {
						break
					}
					// Generate a batch, routed per socket by key half.
					for s := range batches {
						batches[s] = batches[s][:0]
					}
					for b := 0; b < batch; b++ {
						key := int64(w.Rand64() % keyRange)
						code := delegation.OpInsert
						if w.Rand64()&1 == 0 {
							code = delegation.OpDelete
						}
						s := int(key * int64(p.Sockets) / keyRange)
						batches[s] = append(batches[s], delegation.MakeOp(code, key))
					}
					for s, ob := range batches {
						if len(ob) > 0 {
							chans[s].Submit(w, i, ob)
						}
					}
					if opStart >= measureStart && w.Now() <= deadline {
						counted += uint64(batch)
					}
				}
				ops += counted
			})
		}
		measureStart = c.Now().Add(sc.Warmup)
		deadline = measureStart.Add(dur)
		started = true
		c.SetIdle(true)
		// Wait for the clients (servers spin until stop).
		c.WaitUntil(2*vtime.Microsecond, func() bool { return e.Live() <= 1+p.Sockets })
		stop = true
		c.WaitOthers(2 * vtime.Microsecond)
	})
	e.Run()
	return float64(ops) / dur.Seconds()
}
