package harness

import (
	"natle/internal/cctsa"
	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/paraheap"
	"natle/internal/stamp"
	"natle/internal/vtime"
)

// appNATLE returns the NATLE configuration used for the application
// figures: application runtimes are milliseconds (vs the paper's
// seconds), so the cycle is shortened further — while keeping the
// profiling windows wide enough for clean measurements — so several
// cycles fit within each run.
func appNATLE(sc Scale) natle.Config {
	n := sc.NATLE
	n.ProfilingLen = 150 * vtime.Microsecond
	n.QuantumLen = 50 * vtime.Microsecond
	n.WarmupThreshold = 64
	return n
}

// stampSize returns the STAMP workload multiplier for the scale (the
// full record uses larger inputs so high-thread-count runtimes span
// several NATLE cycles).
func (sc Scale) stampSize() int {
	if len(sc.LargeThreads) > 8 { // FullScale
		return 6
	}
	return 2
}

// AppThreads returns the (coarser) thread sweep used for the
// application figures, whose x axes in the paper are also coarse.
func (sc Scale) AppThreads() []int {
	if len(sc.LargeThreads) > 8 {
		return []int{1, 9, 18, 27, 36, 45, 54, 63, 72}
	}
	return sc.LargeThreads
}

// Fig17 reproduces Figure 17: STAMP total runtimes (milliseconds,
// lower is better) under TLE and NATLE. Pass the benchmark names to
// run (nil = all nine).
func Fig17(sc Scale, names []string) *Figure {
	if names == nil {
		names = stamp.Names()
	}
	f := &Figure{
		ID:     "fig17",
		Title:  "STAMP total runtime (virtual ms, lower is better)",
		XLabel: "threads",
		YLabel: "runtime (ms)",
	}
	for _, name := range names {
		for _, lk := range []string{"tle", "natle"} {
			series := name + "/" + lk
			for _, n := range sc.AppThreads() {
				b, err := stamp.NewScaled(name, sc.stampSize())
				if err != nil {
					panic(err)
				}
				ncfg := appNATLE(sc)
				r := stamp.Run(b, stamp.Config{
					Threads: n, Seed: sc.Seed, Lock: lk, NATLE: &ncfg,
				})
				f.Add(series, float64(n), float64(r.Runtime)/float64(vtime.Millisecond))
			}
		}
	}
	return f
}

// Fig18 reproduces Figure 18(a)/(c): ccTSA total runtime with and
// without pinning.
func Fig18(sc Scale, pinned bool) *Figure {
	id, title := "fig18a", "ccTSA total runtime, pinned (virtual ms, lower is better)"
	if !pinned {
		id, title = "fig18c", "ccTSA total runtime, unpinned (virtual ms, lower is better)"
	}
	f := &Figure{ID: id, Title: title, XLabel: "threads", YLabel: "runtime (ms)"}
	var pin machine.PinPolicy = machine.FillSocketFirst{}
	if !pinned {
		pin = machine.Unpinned{}
	}
	for _, lk := range []string{"tle", "natle"} {
		for _, n := range sc.AppThreads() {
			cfg := cctsa.DefaultConfig()
			// Full-scale runs use a larger genome so high-thread-count
			// runtimes span several NATLE cycles.
			cfg.GenomeLen *= sc.stampSize()
			cfg.Pin = pin
			cfg.Threads = n
			cfg.Seed = sc.Seed
			cfg.Lock = lk
			ncfg := appNATLE(sc)
			cfg.NATLE = &ncfg
			r := cctsa.Run(cfg)
			f.Add(lk, float64(n), float64(r.Runtime)/float64(vtime.Millisecond))
		}
	}
	return f
}

// Fig18b reproduces Figure 18(b): the share of post-profiling time
// NATLE allocates to socket 0, per cycle, in a 72-thread ccTSA run.
func Fig18b(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig18b",
		Title:  "ccTSA at 72 threads: socket-0 time share per NATLE cycle",
		XLabel: "cycle",
		YLabel: "share",
	}
	cfg := cctsa.DefaultConfig()
	cfg.GenomeLen *= sc.stampSize()
	cfg.Threads = 72
	cfg.Seed = sc.Seed
	cfg.Lock = "natle"
	ncfg := appNATLE(sc)
	cfg.NATLE = &ncfg
	r := cctsa.Run(cfg)
	for _, m := range r.Sync.Timeline {
		f.Add("socket-0 share", float64(m.Cycle), m.Socket0Share)
	}
	return f
}

// Fig19 reproduces Figure 19: paraheap-k total runtime with (a) and
// without (b) pinning.
func Fig19(sc Scale, pinned bool) *Figure {
	id, title := "fig19a", "paraheap-k runtime, pinned (virtual ms, lower is better)"
	if !pinned {
		id, title = "fig19b", "paraheap-k runtime, unpinned (virtual ms, lower is better)"
	}
	f := &Figure{ID: id, Title: title, XLabel: "threads", YLabel: "runtime (ms)"}
	var pin machine.PinPolicy = machine.FillSocketFirst{}
	if !pinned {
		pin = machine.Unpinned{}
	}
	for _, lk := range []string{"tle", "natle"} {
		for _, n := range sc.AppThreads() {
			if n < 1 {
				continue
			}
			cfg := paraheap.DefaultConfig()
			cfg.Pin = pin
			cfg.Threads = n
			cfg.Seed = sc.Seed
			cfg.Lock = lk
			ncfg := appNATLE(sc)
			cfg.NATLE = &ncfg
			r := paraheap.Run(cfg)
			f.Add(lk, float64(n), float64(r.Runtime)/float64(vtime.Millisecond))
		}
	}
	return f
}
