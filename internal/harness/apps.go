package harness

import (
	"natle/internal/cctsa"
	"natle/internal/expt"
	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/paraheap"
	"natle/internal/stamp"
	"natle/internal/vtime"
)

// appNATLE returns the NATLE configuration used for the application
// figures: application runtimes are milliseconds (vs the paper's
// seconds), so the cycle is shortened further — while keeping the
// profiling windows wide enough for clean measurements — so several
// cycles fit within each run.
func appNATLE(sc Scale) natle.Config {
	n := sc.NATLE
	n.ProfilingLen = 150 * vtime.Microsecond
	n.QuantumLen = 50 * vtime.Microsecond
	n.WarmupThreshold = 64
	return n
}

// stampSize returns the STAMP workload multiplier for the scale (the
// full record uses larger inputs so high-thread-count runtimes span
// several NATLE cycles).
func (sc Scale) stampSize() int {
	if len(sc.LargeThreads) > 8 { // FullScale
		return 6
	}
	return 2
}

// AppThreads returns the (coarser) thread sweep used for the
// application figures, whose x axes in the paper are also coarse.
func (sc Scale) AppThreads() []int {
	if len(sc.LargeThreads) > 8 {
		return []int{1, 9, 18, 27, 36, 45, 54, 63, 72}
	}
	return sc.LargeThreads
}

// PlanFig17 reproduces Figure 17: STAMP total runtimes (milliseconds,
// lower is better) under TLE and NATLE. Pass the benchmark names to
// run (nil = all nine).
func PlanFig17(sc Scale, names []string) *expt.Plan {
	if names == nil {
		names = stamp.Names()
	}
	p := &expt.Plan{
		ID:     "fig17",
		Title:  "STAMP total runtime (virtual ms, lower is better)",
		XLabel: "threads",
		YLabel: "runtime (ms)",
	}
	for _, name := range names {
		for _, lk := range []string{"tle", "natle"} {
			series := name + "/" + lk
			valueSeries(p, series, sc.AppThreads(), func(n int) float64 {
				b, err := stamp.NewScaled(name, sc.stampSize())
				if err != nil {
					panic(err)
				}
				ncfg := appNATLE(sc)
				r := stamp.Run(b, stamp.Config{
					Threads: n, Seed: sc.Seed, Lock: lk, NATLE: &ncfg,
				})
				return float64(r.Runtime) / float64(vtime.Millisecond)
			})
		}
	}
	return p
}

// Fig17 executes PlanFig17 on the default pool.
func Fig17(sc Scale, names []string) *Figure {
	return Exec(PlanFig17(sc, names), expt.Options{})
}

// PlanFig18 reproduces Figure 18(a)/(c): ccTSA total runtime with and
// without pinning.
func PlanFig18(sc Scale, pinned bool) *expt.Plan {
	id, title := "fig18a", "ccTSA total runtime, pinned (virtual ms, lower is better)"
	if !pinned {
		id, title = "fig18c", "ccTSA total runtime, unpinned (virtual ms, lower is better)"
	}
	p := &expt.Plan{ID: id, Title: title, XLabel: "threads", YLabel: "runtime (ms)"}
	var pin machine.PinPolicy = machine.FillSocketFirst{}
	if !pinned {
		pin = machine.Unpinned{}
	}
	for _, lk := range []string{"tle", "natle"} {
		valueSeries(p, lk, sc.AppThreads(), func(n int) float64 {
			cfg := cctsa.DefaultConfig()
			// Full-scale runs use a larger genome so high-thread-count
			// runtimes span several NATLE cycles.
			cfg.GenomeLen *= sc.stampSize()
			cfg.Pin = pin
			cfg.Threads = n
			cfg.Seed = sc.Seed
			cfg.Lock = lk
			ncfg := appNATLE(sc)
			cfg.NATLE = &ncfg
			r := cctsa.Run(cfg)
			return float64(r.Runtime) / float64(vtime.Millisecond)
		})
	}
	return p
}

// Fig18 executes PlanFig18 on the default pool.
func Fig18(sc Scale, pinned bool) *Figure {
	return Exec(PlanFig18(sc, pinned), expt.Options{})
}

// PlanFig18b reproduces Figure 18(b): the share of post-profiling time
// NATLE allocates to socket 0, per cycle, in a 72-thread ccTSA run.
func PlanFig18b(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig18b",
		Title:  "ccTSA at 72 threads: socket-0 time share per NATLE cycle",
		XLabel: "cycle",
		YLabel: "share",
	}
	p.Add(expt.TrialSpec{
		Key: "cctsa/72/timeline",
		Run: func() expt.Outcome {
			cfg := cctsa.DefaultConfig()
			cfg.GenomeLen *= sc.stampSize()
			cfg.Threads = 72
			cfg.Seed = sc.Seed
			cfg.Lock = "natle"
			ncfg := appNATLE(sc)
			cfg.NATLE = &ncfg
			r := cctsa.Run(cfg)
			var o expt.Outcome
			for _, m := range r.Sync.Timeline {
				o.Points = append(o.Points, expt.Point{
					Series: "socket-0 share", X: float64(m.Cycle), Y: m.Socket0Share,
				})
			}
			return o
		},
	})
	return p
}

// Fig18b executes PlanFig18b on the default pool.
func Fig18b(sc Scale) *Figure { return Exec(PlanFig18b(sc), expt.Options{}) }

// PlanFig19 reproduces Figure 19: paraheap-k total runtime with (a)
// and without (b) pinning.
func PlanFig19(sc Scale, pinned bool) *expt.Plan {
	id, title := "fig19a", "paraheap-k runtime, pinned (virtual ms, lower is better)"
	if !pinned {
		id, title = "fig19b", "paraheap-k runtime, unpinned (virtual ms, lower is better)"
	}
	p := &expt.Plan{ID: id, Title: title, XLabel: "threads", YLabel: "runtime (ms)"}
	var pin machine.PinPolicy = machine.FillSocketFirst{}
	if !pinned {
		pin = machine.Unpinned{}
	}
	threads := make([]int, 0, len(sc.AppThreads()))
	for _, n := range sc.AppThreads() {
		if n >= 1 {
			threads = append(threads, n)
		}
	}
	for _, lk := range []string{"tle", "natle"} {
		valueSeries(p, lk, threads, func(n int) float64 {
			cfg := paraheap.DefaultConfig()
			cfg.Pin = pin
			cfg.Threads = n
			cfg.Seed = sc.Seed
			cfg.Lock = lk
			ncfg := appNATLE(sc)
			cfg.NATLE = &ncfg
			r := paraheap.Run(cfg)
			return float64(r.Runtime) / float64(vtime.Millisecond)
		})
	}
	return p
}

// Fig19 executes PlanFig19 on the default pool.
func Fig19(sc Scale, pinned bool) *Figure {
	return Exec(PlanFig19(sc, pinned), expt.Options{})
}
