package harness

import (
	"fmt"

	"natle/internal/expt"
	"natle/internal/telemetry"
	"natle/internal/workload"
)

// PlanTelemetry sweeps the Figure 12 workload (AVL tree, 100% updates,
// keys [0,2048)) under TLE with a telemetry collector attached and
// tabulates what the counters expose beyond raw throughput: the abort
// rate, the share of aborts caused by cross-socket conflicts' cache
// traffic (remote misses per commit), and the tail of the
// commit-latency and abort-to-retry-gap distributions. Each trial owns
// its private collector (recorders are never shared across pool
// workers); the per-lock × per-socket attribution for the final trial
// is attached as notes after the barrier — the axes of the paper's
// abort-breakdown figures (cause × socket).
func PlanTelemetry(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "telemetry",
		Title:  "AVL tree, 100% updates, keys [0,2048), TLE: telemetry roll-up",
		XLabel: "threads",
		YLabel: "mixed",
	}
	for i, n := range sc.LargeThreads {
		last := i == len(sc.LargeThreads)-1
		p.Add(expt.TrialSpec{
			Key: fmt.Sprintf("telemetry/%d", n),
			Run: func() expt.Outcome {
				col := telemetry.NewCollector(telemetry.Config{})
				r := sc.run(workload.Config{
					Prof: large(), Threads: n, UpdatePct: 100, KeyRange: 2048,
					Recorder: col,
				})
				sum := col.Summary()
				x := float64(n)
				o := expt.Outcome{Points: []expt.Point{
					{Series: "abort%", X: x, Y: 100 * sum.AbortRate},
					{Series: "fallback/op", X: x, Y: safeDiv(float64(sum.Fallbacks), float64(r.Sync.TLE.Ops))},
					{Series: "rmiss/commit", X: x, Y: safeDiv(float64(sum.RemoteCacheMisses), float64(sum.Commits))},
					{Series: "commit-p99[ns]", X: x, Y: sum.CommitLatency.P99Ns},
					{Series: "abortgap-p50[ns]", X: x, Y: sum.AbortGap.P50Ns},
				}}
				if last {
					o.Notes = attributionNotes(n, sum)
				}
				return o
			},
		})
	}
	return p
}

// TelemetryTable executes PlanTelemetry on the default pool.
func TelemetryTable(sc Scale) *Figure { return Exec(PlanTelemetry(sc), expt.Options{}) }

// attributionNotes renders the per-lock × per-socket breakdown of one
// trial's summary as figure notes.
func attributionNotes(threads int, sum telemetry.Summary) []string {
	notes := []string{
		fmt.Sprintf("per-lock × per-socket attribution at %d threads:", threads),
	}
	for _, l := range sum.Locks {
		for s, cell := range l.PerSocket {
			if cell == (telemetry.LockCell{}) {
				continue
			}
			notes = append(notes, fmt.Sprintf(
				"  %s socket %d: starts=%d commits=%d fallbacks=%d aborts[conflict=%d capacity=%d lock-held=%d]",
				l.Name, s, cell.Starts, cell.Commits, cell.Fallbacks,
				cell.Aborts[telemetry.CodeConflict],
				cell.Aborts[telemetry.CodeCapacity],
				cell.Aborts[telemetry.CodeLockHeld]))
		}
	}
	return notes
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
