package harness

import (
	"fmt"

	"natle/internal/telemetry"
	"natle/internal/workload"
)

// TelemetryTable sweeps the Figure 12 workload (AVL tree, 100% updates,
// keys [0,2048)) under TLE with a telemetry collector attached and
// tabulates what the counters expose beyond raw throughput: the abort
// rate, the share of aborts caused by cross-socket conflicts' cache
// traffic (remote misses per commit), and the tail of the
// commit-latency and abort-to-retry-gap distributions. The per-lock ×
// per-socket attribution for the final trial is attached as notes —
// the axes of the paper's abort-breakdown figures (cause × socket).
func TelemetryTable(sc Scale) *Figure {
	f := &Figure{
		ID:     "telemetry",
		Title:  "AVL tree, 100% updates, keys [0,2048), TLE: telemetry roll-up",
		XLabel: "threads",
		YLabel: "mixed",
	}
	var last *telemetry.Collector
	for _, n := range sc.LargeThreads {
		col := telemetry.NewCollector(telemetry.Config{})
		r := sc.run(workload.Config{
			Prof: large(), Threads: n, UpdatePct: 100, KeyRange: 2048,
			Recorder: col,
		})
		sum := col.Summary()
		f.Add("abort%", float64(n), 100*sum.AbortRate)
		f.Add("fallback/op", float64(n), safeDiv(float64(sum.Fallbacks), float64(r.Sync.TLE.Ops)))
		f.Add("rmiss/commit", float64(n), safeDiv(float64(sum.RemoteCacheMisses), float64(sum.Commits)))
		f.Add("commit-p99[ns]", float64(n), sum.CommitLatency.P99Ns)
		f.Add("abortgap-p50[ns]", float64(n), sum.AbortGap.P50Ns)
		last = col
	}
	if last != nil {
		n := sc.LargeThreads[len(sc.LargeThreads)-1]
		f.Notes = append(f.Notes,
			fmt.Sprintf("per-lock × per-socket attribution at %d threads:", n))
		for _, l := range last.Summary().Locks {
			for s, cell := range l.PerSocket {
				if cell == (telemetry.LockCell{}) {
					continue
				}
				f.Notes = append(f.Notes, fmt.Sprintf(
					"  %s socket %d: starts=%d commits=%d fallbacks=%d aborts[conflict=%d capacity=%d lock-held=%d]",
					l.Name, s, cell.Starts, cell.Commits, cell.Fallbacks,
					cell.Aborts[telemetry.CodeConflict],
					cell.Aborts[telemetry.CodeCapacity],
					cell.Aborts[telemetry.CodeLockHeld]))
			}
		}
	}
	return f
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
