package harness

import (
	"bytes"
	"testing"

	"natle/internal/fault"
	"natle/internal/scheme"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// shortChaos keeps the matrix cheap enough for the regular test run
// while still driving every schedule's faults.
func shortChaos() ChaosConfig {
	return ChaosConfig{Workers: 4, OpsPerWorker: 60, Seed: 1}
}

// TestChaosMatrixHoldsInvariants is the acceptance gate: every named
// fault schedule, under every robust registry scheme, must preserve
// transaction conservation, critical-section conservation, and the
// exact fault-free final contents.
func TestChaosMatrixHoldsInvariants(t *testing.T) {
	cells, err := RunChaos(shortChaos())
	if err != nil {
		t.Fatal(err)
	}
	want := len(fault.ScheduleNames()) * len(shortChaos().withDefaults().Schemes)
	if len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if !c.Ok {
			t.Errorf("%s/%s: %v", c.Schedule, c.Scheme, c.Failures)
		}
	}
}

// TestChaosCellDeterministic is the seed-determinism guarantee:
// identical (profile, seed, schedule) must produce byte-identical
// telemetry event streams — the property that makes a chaos failure
// replayable.
func TestChaosCellDeterministic(t *testing.T) {
	sched, err := fault.LookupSchedule("storm")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := scheme.Lookup("tle-robust")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (ChaosCell, []byte) {
		rec := telemetry.NewCollector(telemetry.Config{TraceCap: 1 << 15})
		cell := RunChaosCell(shortChaos(), sched, desc, rec)
		var buf bytes.Buffer
		if err := rec.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("trace export: %v", err)
		}
		return cell, buf.Bytes()
	}
	c1, t1 := run()
	c2, t2 := run()
	if !c1.Ok || !c2.Ok {
		t.Fatalf("cells failed: %v / %v", c1.Failures, c2.Failures)
	}
	if c1.Commits != c2.Commits || c1.Aborts != c2.Aborts ||
		c1.Fallbacks != c2.Fallbacks || c1.Fault != c2.Fault {
		t.Errorf("cell counters diverge:\n%s\n%s", c1, c2)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("telemetry streams diverge across identical chaos runs")
	}
	if len(t1) < 1024 {
		t.Errorf("suspiciously small trace (%d bytes); recorder not wired through?", len(t1))
	}
}

// TestChaosPermanentSqueezeDegradesRobustTLE: a permanent capacity
// squeeze (every transaction overflows, forever) must push the breaker
// scheme into degraded mode — trips and skips observed — while the
// final contents stay exactly right. The named "squeeze" schedule's
// transient windows are deliberately too short to trip the default
// 64-attempt breaker window; permanence is what degradation is for.
func TestChaosPermanentSqueezeDegradesRobustTLE(t *testing.T) {
	desc, err := scheme.Lookup("tle-robust")
	if err != nil {
		t.Fatal(err)
	}
	sched := fault.Schedule{
		Name:    "squeeze-forever",
		Summary: "test-local: capacity divided to nothing for the whole run",
		Profile: fault.Profile{
			SqueezeProb:   1,
			SqueezeFactor: 1 << 20, // caps clamp to 1 line: nothing fits
			SqueezeLen:    vtime.Second,
		},
	}
	cfg := shortChaos()
	cell := RunChaosCell(cfg, sched, desc, nil)
	if !cell.Ok {
		t.Fatalf("cell failed: %v", cell.Failures)
	}
	if cell.Fault.SqueezedTx == 0 {
		t.Fatal("permanent squeeze squeezed no transactions")
	}
	trips, _, skips := BreakerStats(cell)
	if trips == 0 || skips == 0 {
		t.Errorf("breaker never degraded under a permanent squeeze: trips=%d skips=%d", trips, skips)
	}
	if cell.Ops == 0 || cell.Fallbacks == 0 {
		t.Errorf("degraded scheme made no progress: ops=%d fallbacks=%d", cell.Ops, cell.Fallbacks)
	}
}

// TestChaosRejectsUnknownNames: lookup failures surface as errors, not
// as silently skipped cells.
func TestChaosRejectsUnknownNames(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Workers: 1, OpsPerWorker: 1, Schedules: []string{"nonesuch"}}); err == nil {
		t.Error("unknown schedule accepted")
	}
	if _, err := RunChaos(ChaosConfig{Workers: 1, OpsPerWorker: 1, Schedules: []string{"spurious"}, Schemes: []string{"nonesuch"}}); err == nil {
		t.Error("unknown scheme accepted")
	}
}
