package harness

import (
	"fmt"
	"strings"

	"natle/internal/backend"
	"natle/internal/fault"
	"natle/internal/native"
	"natle/internal/scheme"
	"natle/internal/workload"
)

// The cross-backend chaos harness: every named fault schedule runs
// against the *native* execution backend too, through the native
// fault adapter (native.Fault), over the backend-agnostic workloads.
// Native timing is not deterministic, so the invariants are the ones
// wall-clock interleaving cannot excuse:
//
//   - operation conservation: the trial completes exactly
//     threads x ops critical sections, and for eliding schemes every
//     one of them either committed optimistically or took the
//     fallback (ops = commits + fallbacks per lock);
//   - correctness: the workload checksum equals the fault-free run of
//     the same config — faults may slow the schedule down, never
//     change what it computes.
//
// Together with the simulated matrix (RunChaos) this closes the loop
// the backend split opened: one fault vocabulary, two worlds, the
// same conservation laws.

// NativeChaosConfig configures a native chaos run. The zero value
// selects the defaults documented on each field.
type NativeChaosConfig struct {
	Threads int   // goroutines per trial (default 8)
	Ops     int   // operations per goroutine (default 512)
	Seed    int64 // operation-schedule and fault-decision seed (default 1)

	// Schemes names the native-backend schemes to run (default: every
	// native scheme with both Mutex and Robust set, mirroring the
	// simulated matrix's selection rule).
	Schemes []string

	// Schedules names the fault schedules to run (default: all).
	Schedules []string

	// Workloads names the backend-agnostic workloads to run (default:
	// all of workload.BackendWorkloads()).
	Workloads []string
}

func (cfg NativeChaosConfig) withDefaults() NativeChaosConfig {
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 512
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Schemes == nil {
		for _, d := range scheme.AllFor(backend.Native) {
			if d.Mutex && d.Robust {
				cfg.Schemes = append(cfg.Schemes, d.Name)
			}
		}
	}
	if cfg.Schedules == nil {
		cfg.Schedules = fault.ScheduleNames()
	}
	if cfg.Workloads == nil {
		cfg.Workloads = workload.BackendWorkloads()
	}
	return cfg
}

// NativeChaosCell is the outcome of one (schedule, scheme, workload)
// native cell.
type NativeChaosCell struct {
	Schedule string
	Scheme   string
	Workload string

	Ok       bool
	Failures []string // invariant violations (empty when Ok)

	Ops       uint64 // critical sections completed across all locks
	Commits   uint64
	Aborts    uint64
	Fallbacks uint64

	Check     uint64      // workload checksum under faults
	WantCheck uint64      // fault-free checksum of the same config
	Fault     fault.Stats // what the adapter actually injected
}

func (c *NativeChaosCell) fail(format string, args ...any) {
	c.Failures = append(c.Failures, fmt.Sprintf(format, args...))
}

// String renders one result line.
func (c NativeChaosCell) String() string {
	status := "ok"
	if !c.Ok {
		status = "FAIL: " + strings.Join(c.Failures, "; ")
	}
	return fmt.Sprintf("%-10s %-14s %-9s commits=%-6d aborts=%-6d fallbacks=%-5d [%s] %s",
		c.Schedule, c.Scheme, c.Workload, c.Commits, c.Aborts, c.Fallbacks, c.Fault, status)
}

// nativeChaosTrial runs one native trial of the cell's config with
// the given fault profile (nil = fault-free) and returns the result.
func nativeChaosTrial(cfg NativeChaosConfig, sched *fault.Profile, schemeName, wl string) *workload.BackendResult {
	w := native.NewWorld(native.Config{Seed: cfg.Seed, Fault: sched})
	r := workload.RunBackend(w, workload.BackendConfig{
		Lock:     schemeName,
		Workload: wl,
		Threads:  cfg.Threads,
		Ops:      cfg.Ops,
		Seed:     cfg.Seed,
	})
	r.Fault = w.FaultStats()
	return r
}

// RunNativeChaosCell runs one (schedule, scheme, workload) cell: a
// fault-free reference trial, then the fault-armed trial, then the
// invariant checks.
func RunNativeChaosCell(cfg NativeChaosConfig, sched fault.Schedule, schemeName, wl string) NativeChaosCell {
	cfg = cfg.withDefaults()
	cell := NativeChaosCell{Schedule: sched.Name, Scheme: schemeName, Workload: wl}

	clean := nativeChaosTrial(cfg, nil, schemeName, wl)
	cell.WantCheck = clean.Check

	r := nativeChaosTrial(cfg, &sched.Profile, schemeName, wl)
	cell.Check = r.Check
	cell.Fault = r.Fault
	for _, s := range r.Sync {
		cell.Commits += s.TLE.Commits
		cell.Aborts += s.TLE.TotalAborts()
		cell.Fallbacks += s.TLE.Fallbacks
		cell.Ops += s.TLE.Ops
	}

	want := uint64(cfg.Threads) * uint64(cfg.Ops)
	if r.Ops != want {
		cell.fail("op conservation broken: completed %d ops, want %d", r.Ops, want)
	}
	// Per-lock critical-section conservation for eliding schemes (lock
	// baselines report zero TLE ops; their activity rides in Extra).
	for i, s := range r.Sync {
		if s.TLE.Ops > 0 && s.TLE.Ops != s.TLE.Commits+s.TLE.Fallbacks {
			cell.fail("CS conservation broken on lock %d: %d ops != %d commits + %d fallbacks",
				i, s.TLE.Ops, s.TLE.Commits, s.TLE.Fallbacks)
		}
	}
	if cell.Check != cell.WantCheck {
		cell.fail("checksum diverges from fault-free run: got %#x, want %#x",
			cell.Check, cell.WantCheck)
	}
	cell.Ok = len(cell.Failures) == 0
	return cell
}

// RunNativeChaos runs the full (schedules x schemes x workloads)
// matrix, schedules outermost. Trials run sequentially — native cells
// measure real goroutines and must not contend with each other for
// the host. Every name is resolved before any cell runs.
func RunNativeChaos(cfg NativeChaosConfig) ([]NativeChaosCell, error) {
	cfg = cfg.withDefaults()
	var cells []NativeChaosCell
	for _, sn := range cfg.Schedules {
		sched, err := fault.LookupSchedule(sn)
		if err != nil {
			return nil, err
		}
		for _, name := range cfg.Schemes {
			if _, err := scheme.LookupFor(backend.Native, name); err != nil {
				return nil, err
			}
			for _, wl := range cfg.Workloads {
				cells = append(cells, RunNativeChaosCell(cfg, sched, name, wl))
			}
		}
	}
	return cells, nil
}

// NativeChaosReport renders the matrix and reports whether every cell
// held its invariants.
func NativeChaosReport(cells []NativeChaosCell) (string, bool) {
	var b strings.Builder
	ok := true
	for _, c := range cells {
		b.WriteString(c.String())
		b.WriteByte('\n')
		if !c.Ok {
			ok = false
		}
	}
	return b.String(), ok
}
