package harness

import (
	"fmt"

	"natle/internal/backend"
	"natle/internal/expt"
	"natle/internal/machine"
	"natle/internal/scheme"
	"natle/internal/vtime"
	"natle/internal/workload"
)

// PlanAblationRemoteLatency sweeps the cross-socket transfer latency
// and shows how the size of the 36->72 collapse tracks the
// remote/local latency ratio — the mechanism behind the paper's
// Section 3.2 hypothesis. Each latency point is two independent trials
// (72 and 36 threads) reduced to their ratio after the barrier.
func PlanAblationRemoteLatency(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "ablation-remote-latency",
		Title:  "72-thread throughput relative to 36-thread peak vs remote latency",
		XLabel: "remote/local latency ratio",
		YLabel: "t(72)/t(36)",
	}
	for _, remote := range []vtime.Duration{
		20 * vtime.Nanosecond, 60 * vtime.Nanosecond, 135 * vtime.Nanosecond,
		240 * vtime.Nanosecond, 400 * vtime.Nanosecond,
	} {
		prof := func() *machine.Profile {
			p := machine.LargeX52()
			p.RemoteHit = remote
			p.RemoteInval = remote * 3 / 8
			p.RemoteDRAM = remote + 20*vtime.Nanosecond
			return p
		}
		run := func(n int) expt.Outcome {
			return expt.Value(sc.thr(workload.Config{
				Prof: prof(), Threads: n, UpdatePct: 100, KeyRange: 2048,
			}))
		}
		ratio := float64(remote) / float64(machine.LargeX52().L3Hit)
		denom := fmt.Sprintf("remote%d/36", remote)
		p.Add(expt.TrialSpec{
			Key:    denom,
			Run:    func() expt.Outcome { return run(36) },
			Reduce: expt.Discard,
		})
		p.Add(expt.TrialSpec{
			Key:    fmt.Sprintf("remote%d/72", remote),
			Run:    func() expt.Outcome { return run(72) },
			Reduce: expt.Ratio("t(72)/t(36)", ratio, denom),
		})
	}
	return p
}

// AblationRemoteLatency executes PlanAblationRemoteLatency on the
// default pool.
func AblationRemoteLatency(sc Scale) *Figure {
	return Exec(PlanAblationRemoteLatency(sc), expt.Options{})
}

// PlanAblationProfilingLen sweeps the NATLE cycle length (keeping the
// 10% profiling share) and reports both the read-only overhead (the
// paper's 27% observation) and the 72-thread update throughput —
// shorter cycles react faster but switch sockets more often. Each
// plotted ratio is a NATLE trial divided by its hidden TLE
// denominator trial.
func PlanAblationProfilingLen(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "ablation-profiling-len",
		Title:  "NATLE cycle length: read-only overhead vs update rescue (72 threads)",
		XLabel: "quantum (us)",
		YLabel: "ratio",
	}
	for _, q := range []vtime.Duration{
		30 * vtime.Microsecond, 60 * vtime.Microsecond,
		120 * vtime.Microsecond, 240 * vtime.Microsecond,
	} {
		n := sc.NATLE
		n.ProfilingLen, n.QuantumLen = q, q
		dur := 4 * (n.ProfilingLen + vtime.Duration(n.Quanta)*n.QuantumLen)
		run := func(upd int, lk workload.LockKind) expt.Outcome {
			ncfg := n
			return expt.Value(workload.Run(workload.Config{
				Threads: 72, UpdatePct: upd, KeyRange: 2048, Lock: lk,
				NATLE: &ncfg, Seed: sc.Seed,
				Duration: dur, Warmup: dur / 4,
			}).Throughput())
		}
		x := float64(q) / float64(vtime.Microsecond)
		for _, c := range []struct {
			series string
			upd    int
		}{
			{"read-only NATLE/TLE", 0},
			{"100%-upd NATLE/TLE", 100},
		} {
			denom := fmt.Sprintf("q%gus/upd%d/tle", x, c.upd)
			p.Add(expt.TrialSpec{
				Key:    denom,
				Run:    func() expt.Outcome { return run(c.upd, workload.LockTLE) },
				Reduce: expt.Discard,
			})
			p.Add(expt.TrialSpec{
				Key:    fmt.Sprintf("q%gus/upd%d/natle", x, c.upd),
				Run:    func() expt.Outcome { return run(c.upd, workload.LockNATLE) },
				Reduce: expt.Ratio(c.series, x, denom),
			})
		}
	}
	return p
}

// AblationProfilingLen executes PlanAblationProfilingLen on the
// default pool.
func AblationProfilingLen(sc Scale) *Figure {
	return Exec(PlanAblationProfilingLen(sc), expt.Options{})
}

// PlanAblationWarmupThreshold shows the effect of the 256-acquisition
// floor: with the floor disabled (threshold 0), sparse profiling data
// can lock in a one-socket decision on a workload that scales.
func PlanAblationWarmupThreshold(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "ablation-warmup-threshold",
		Title:  "NATLE warmup threshold: read-only 72-thread throughput",
		XLabel: "threshold",
		YLabel: "ops/s",
	}
	for _, th := range []uint64{0, 16, 64, 256, 1024} {
		p.Add(expt.TrialSpec{
			Key: fmt.Sprintf("threshold/%d", th),
			Run: func() expt.Outcome {
				n := sc.NATLE
				n.WarmupThreshold = th
				return expt.Value(workload.Run(workload.Config{
					Threads: 72, UpdatePct: 0, KeyRange: 2048,
					// Long external work keeps acquisition counts per
					// profiling window low, which is where the floor
					// matters.
					ExternalWork: 2048,
					Lock:         workload.LockNATLE, NATLE: &n, Seed: sc.Seed,
					Duration: sc.NATLEDur, Warmup: sc.NATLEWarmup,
				}).Throughput())
			},
			Reduce: expt.Emit("read-only+work", float64(th)),
		})
	}
	return p
}

// AblationWarmupThreshold executes PlanAblationWarmupThreshold on the
// default pool.
func AblationWarmupThreshold(sc Scale) *Figure {
	return Exec(PlanAblationWarmupThreshold(sc), expt.Options{})
}

// PlanAblationQuanta sweeps the number of quanta per cycle (the paper
// uses 9) at fixed cycle length, trading profiling staleness against
// switching frequency.
func PlanAblationQuanta(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "ablation-quanta",
		Title:  "NATLE quanta per cycle: 72-thread 100%-update throughput",
		XLabel: "quanta",
		YLabel: "ops/s",
	}
	cycleBudget := 9 * sc.NATLE.QuantumLen
	for _, q := range []int{3, 6, 9, 18} {
		p.Add(expt.TrialSpec{
			Key: fmt.Sprintf("quanta/%d", q),
			Run: func() expt.Outcome {
				n := sc.NATLE
				n.Quanta = q
				n.QuantumLen = cycleBudget / vtime.Duration(q)
				return expt.Value(workload.Run(workload.Config{
					Threads: 72, UpdatePct: 100, KeyRange: 2048,
					Lock: workload.LockNATLE, NATLE: &n, Seed: sc.Seed,
					Duration: sc.NATLEDur, Warmup: sc.NATLEWarmup,
				}).Throughput())
			},
			Reduce: expt.Emit("100% upd", float64(q)),
		})
	}
	return p
}

// AblationQuanta executes PlanAblationQuanta on the default pool.
func AblationQuanta(sc Scale) *Figure {
	return Exec(PlanAblationQuanta(sc), expt.Options{})
}

// PlanAblationAdaptiveProfiling measures the extension that implements
// the paper's "dynamically adapting these settings" future work:
// skipping profiling during stable periods. It reports NATLE/TLE
// throughput ratios on the read-only workload (where profiling is pure
// overhead and adaptation should close the gap the paper reports as
// ~27%) and on the 100%-update workload (where adaptation must not
// lose the throttling benefit).
func PlanAblationAdaptiveProfiling(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "ablation-adaptive-profiling",
		Title:  "Adaptive profiling frequency: NATLE/TLE at 72 threads (0=fixed, 1=adaptive)",
		XLabel: "adaptive",
		YLabel: "NATLE/TLE throughput",
	}
	for i, adapt := range []bool{false, true} {
		run := func(upd int, lk workload.LockKind) expt.Outcome {
			n := sc.NATLE
			n.AdaptProfiling = adapt
			return expt.Value(workload.Run(workload.Config{
				Threads: 72, UpdatePct: upd, KeyRange: 2048, Lock: lk,
				NATLE: &n, Seed: sc.Seed,
				Duration: 3 * sc.NATLEDur, Warmup: sc.NATLEWarmup,
			}).Throughput())
		}
		for _, c := range []struct {
			series string
			upd    int
		}{
			{"read-only", 0},
			{"100% updates", 100},
		} {
			denom := fmt.Sprintf("adapt%d/upd%d/tle", i, c.upd)
			p.Add(expt.TrialSpec{
				Key:    denom,
				Run:    func() expt.Outcome { return run(c.upd, workload.LockTLE) },
				Reduce: expt.Discard,
			})
			p.Add(expt.TrialSpec{
				Key:    fmt.Sprintf("adapt%d/upd%d/natle", i, c.upd),
				Run:    func() expt.Outcome { return run(c.upd, workload.LockNATLE) },
				Reduce: expt.Ratio(c.series, float64(i), denom),
			})
		}
	}
	return p
}

// AblationAdaptiveProfiling executes PlanAblationAdaptiveProfiling on
// the default pool.
func AblationAdaptiveProfiling(sc Scale) *Figure {
	return Exec(PlanAblationAdaptiveProfiling(sc), expt.Options{})
}

// PlanLocks is an extension comparison beyond the paper's figures:
// every registered synchronization scheme on the 100%-update AVL
// workload. It situates NATLE against the concurrency-restriction
// technique the paper's related work identifies as closest (cohort
// locks throttle remote threads at lock granularity; NATLE at
// socket-schedule granularity, while keeping elision). The grid
// iterates the scheme registry, so a scheme registered tomorrow shows
// up here with no edit; entries without mutual exclusion ("none"
// would corrupt the shared set) or without guaranteed completion
// ("htm-raw" has no capacity fallback) are skipped.
func PlanLocks(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "locks",
		Title:  "Lock schemes on AVL keys [0,2048), 100% updates: ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, d := range scheme.AllFor(backend.Sim) {
		if !d.Mutex || !d.Robust {
			continue
		}
		valueSeries(p, d.Name, sc.LargeThreads, func(n int) float64 {
			return sc.thr(workload.Config{
				Threads: n, UpdatePct: 100, KeyRange: 2048,
				Lock: workload.LockKind(d.Name),
			})
		})
	}
	return p
}

// LocksTable executes PlanLocks on the default pool.
func LocksTable(sc Scale) *Figure { return Exec(PlanLocks(sc), expt.Options{}) }

// PlanDelegation compares TLE against the Section 4.1 delegation
// baselines (single-operation and batched) on the update-heavy AVL
// workload.
func PlanDelegation(sc Scale, batches []int) *expt.Plan {
	p := &expt.Plan{
		ID:     "delegation",
		Title:  "Delegation baselines vs TLE, AVL keys [0,2048), 100% updates: ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
		Notes: []string{
			"paper section 4.1: delegation doubled per-operation performance but coordination overhead dominated",
		},
	}
	valueSeries(p, "TLE-20", sc.LargeThreads, func(n int) float64 {
		return sc.thr(workload.Config{Threads: n, UpdatePct: 100, KeyRange: 2048})
	})
	for _, b := range batches {
		name := "delegation"
		if b > 1 {
			name = fmt.Sprintf("delegation-batch%d", b)
		}
		for _, n := range sc.LargeThreads {
			if n < 3 { // needs at least one client beyond the two servers
				continue
			}
			p.Add(expt.TrialSpec{
				Key:    fmt.Sprintf("%s/%d", name, n),
				Run:    func() expt.Outcome { return expt.Value(RunDelegation(sc, n, b)) },
				Reduce: expt.Emit(name, float64(n)),
			})
		}
	}
	return p
}

// DelegationTable executes PlanDelegation on the default pool.
func DelegationTable(sc Scale, batches []int) *Figure {
	return Exec(PlanDelegation(sc, batches), expt.Options{})
}
