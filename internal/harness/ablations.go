package harness

import (
	"fmt"

	"natle/internal/machine"
	"natle/internal/scheme"
	"natle/internal/vtime"
	"natle/internal/workload"
)

// AblationRemoteLatency sweeps the cross-socket transfer latency and
// shows how the size of the 36->72 collapse tracks the remote/local
// latency ratio — the mechanism behind the paper's Section 3.2
// hypothesis.
func AblationRemoteLatency(sc Scale) *Figure {
	f := &Figure{
		ID:     "ablation-remote-latency",
		Title:  "72-thread throughput relative to 36-thread peak vs remote latency",
		XLabel: "remote/local latency ratio",
		YLabel: "t(72)/t(36)",
	}
	for _, remote := range []vtime.Duration{
		20 * vtime.Nanosecond, 60 * vtime.Nanosecond, 135 * vtime.Nanosecond,
		240 * vtime.Nanosecond, 400 * vtime.Nanosecond,
	} {
		p := machine.LargeX52()
		p.RemoteHit = remote
		p.RemoteInval = remote * 3 / 8
		p.RemoteDRAM = remote + 20*vtime.Nanosecond
		run := func(n int) float64 {
			r := sc.run(workload.Config{Prof: p, Threads: n, UpdatePct: 100, KeyRange: 2048})
			return r.Throughput()
		}
		ratio := float64(remote) / float64(p.L3Hit)
		f.Add("t(72)/t(36)", ratio, run(72)/run(36))
	}
	return f
}

// AblationProfilingLen sweeps the NATLE cycle length (keeping the 10%
// profiling share) and reports both the read-only overhead (the
// paper's 27% observation) and the 72-thread update throughput —
// shorter cycles react faster but switch sockets more often.
func AblationProfilingLen(sc Scale) *Figure {
	f := &Figure{
		ID:     "ablation-profiling-len",
		Title:  "NATLE cycle length: read-only overhead vs update rescue (72 threads)",
		XLabel: "quantum (us)",
		YLabel: "ratio",
	}
	for _, q := range []vtime.Duration{
		30 * vtime.Microsecond, 60 * vtime.Microsecond,
		120 * vtime.Microsecond, 240 * vtime.Microsecond,
	} {
		n := sc.NATLE
		n.ProfilingLen, n.QuantumLen = q, q
		dur := 4 * (n.ProfilingLen + vtime.Duration(n.Quanta)*n.QuantumLen)
		run := func(upd int, lk workload.LockKind) float64 {
			return workload.Run(workload.Config{
				Threads: 72, UpdatePct: upd, KeyRange: 2048, Lock: lk,
				NATLE: &n, Seed: sc.Seed,
				Duration: dur, Warmup: dur / 4,
			}).Throughput()
		}
		x := float64(q) / float64(vtime.Microsecond)
		f.Add("read-only NATLE/TLE", x, run(0, workload.LockNATLE)/run(0, workload.LockTLE))
		f.Add("100%-upd NATLE/TLE", x, run(100, workload.LockNATLE)/run(100, workload.LockTLE))
	}
	return f
}

// AblationWarmupThreshold shows the effect of the 256-acquisition
// floor: with the floor disabled (threshold 0), sparse profiling data
// can lock in a one-socket decision on a workload that scales.
func AblationWarmupThreshold(sc Scale) *Figure {
	f := &Figure{
		ID:     "ablation-warmup-threshold",
		Title:  "NATLE warmup threshold: read-only 72-thread throughput",
		XLabel: "threshold",
		YLabel: "ops/s",
	}
	for _, th := range []uint64{0, 16, 64, 256, 1024} {
		n := sc.NATLE
		n.WarmupThreshold = th
		r := workload.Run(workload.Config{
			Threads: 72, UpdatePct: 0, KeyRange: 2048,
			// Long external work keeps acquisition counts per profiling
			// window low, which is where the floor matters.
			ExternalWork: 2048,
			Lock:         workload.LockNATLE, NATLE: &n, Seed: sc.Seed,
			Duration: sc.NATLEDur, Warmup: sc.NATLEWarmup,
		})
		f.Add("read-only+work", float64(th), r.Throughput())
	}
	return f
}

// AblationQuanta sweeps the number of quanta per cycle (the paper uses
// 9) at fixed cycle length, trading profiling staleness against
// switching frequency.
func AblationQuanta(sc Scale) *Figure {
	f := &Figure{
		ID:     "ablation-quanta",
		Title:  "NATLE quanta per cycle: 72-thread 100%-update throughput",
		XLabel: "quanta",
		YLabel: "ops/s",
	}
	cycleBudget := 9 * sc.NATLE.QuantumLen
	for _, q := range []int{3, 6, 9, 18} {
		n := sc.NATLE
		n.Quanta = q
		n.QuantumLen = cycleBudget / vtime.Duration(q)
		r := workload.Run(workload.Config{
			Threads: 72, UpdatePct: 100, KeyRange: 2048,
			Lock: workload.LockNATLE, NATLE: &n, Seed: sc.Seed,
			Duration: sc.NATLEDur, Warmup: sc.NATLEWarmup,
		})
		f.Add("100% upd", float64(q), r.Throughput())
	}
	return f
}

// AblationAdaptiveProfiling measures the extension that implements the
// paper's "dynamically adapting these settings" future work: skipping
// profiling during stable periods. It reports NATLE/TLE throughput
// ratios on the read-only workload (where profiling is pure overhead
// and adaptation should close the gap the paper reports as ~27%) and
// on the 100%-update workload (where adaptation must not lose the
// throttling benefit).
func AblationAdaptiveProfiling(sc Scale) *Figure {
	f := &Figure{
		ID:     "ablation-adaptive-profiling",
		Title:  "Adaptive profiling frequency: NATLE/TLE at 72 threads (0=fixed, 1=adaptive)",
		XLabel: "adaptive",
		YLabel: "NATLE/TLE throughput",
	}
	for i, adapt := range []bool{false, true} {
		n := sc.NATLE
		n.AdaptProfiling = adapt
		run := func(upd int, lk workload.LockKind) float64 {
			return workload.Run(workload.Config{
				Threads: 72, UpdatePct: upd, KeyRange: 2048, Lock: lk,
				NATLE: &n, Seed: sc.Seed,
				Duration: 3 * sc.NATLEDur, Warmup: sc.NATLEWarmup,
			}).Throughput()
		}
		f.Add("read-only", float64(i), run(0, workload.LockNATLE)/run(0, workload.LockTLE))
		f.Add("100% updates", float64(i), run(100, workload.LockNATLE)/run(100, workload.LockTLE))
	}
	return f
}

// LocksTable is an extension comparison beyond the paper's figures:
// every registered synchronization scheme on the 100%-update AVL
// workload. It situates NATLE against the concurrency-restriction
// technique the paper's related work identifies as closest (cohort
// locks throttle remote threads at lock granularity; NATLE at
// socket-schedule granularity, while keeping elision). The sweep
// iterates the scheme registry, so a scheme registered tomorrow shows
// up here with no edit; entries without mutual exclusion ("none"
// would corrupt the shared set) or without guaranteed completion
// ("htm-raw" has no capacity fallback) are skipped.
func LocksTable(sc Scale) *Figure {
	f := &Figure{
		ID:     "locks",
		Title:  "Lock schemes on AVL keys [0,2048), 100% updates: ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, d := range scheme.All() {
		if !d.Mutex || !d.Robust {
			continue
		}
		for _, n := range sc.LargeThreads {
			r := sc.run(workload.Config{Threads: n, UpdatePct: 100, KeyRange: 2048, Lock: workload.LockKind(d.Name)})
			f.Add(d.Name, float64(n), r.Throughput())
		}
	}
	return f
}

// DelegationTable compares TLE against the Section 4.1 delegation
// baselines (single-operation and batched) on the update-heavy AVL
// workload.
func DelegationTable(sc Scale, batches []int) *Figure {
	f := &Figure{
		ID:     "delegation",
		Title:  "Delegation baselines vs TLE, AVL keys [0,2048), 100% updates: ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
		Notes: []string{
			"paper section 4.1: delegation doubled per-operation performance but coordination overhead dominated",
		},
	}
	for _, n := range sc.LargeThreads {
		r := sc.run(workload.Config{Threads: n, UpdatePct: 100, KeyRange: 2048})
		f.Add("TLE-20", float64(n), r.Throughput())
	}
	for _, b := range batches {
		name := "delegation"
		if b > 1 {
			name = fmt.Sprintf("delegation-batch%d", b)
		}
		for _, n := range sc.LargeThreads {
			if n < 3 { // needs at least one client beyond the two servers
				continue
			}
			r := RunDelegation(sc, n, b)
			f.Add(name, float64(n), r)
		}
	}
	return f
}
