package harness

import (
	"fmt"

	"natle/internal/expt"
)

// This file is the bridge between the declarative experiment layer
// (internal/expt) and the Figure renderer: every figure/table below is
// built as an expt.Plan — a grid of self-contained TrialSpecs — and
// Exec folds an executed plan into a Figure. Because each trial builds
// its own simulator from (config, seed), the pool may run them on any
// number of host workers; assembly order is plan order, so a Figure is
// byte-identical at any worker count.

// Exec executes a plan on a bounded worker pool (see expt.Options;
// Workers <= 0 selects GOMAXPROCS) and folds the result into a Figure.
func Exec(p *expt.Plan, opt expt.Options) *Figure {
	res := p.Execute(opt)
	f := &Figure{ID: p.ID, Title: p.Title, XLabel: p.XLabel, YLabel: p.YLabel}
	f.Notes = append(f.Notes, res.Notes...)
	for _, pt := range res.Points {
		f.Add(pt.Series, pt.X, pt.Y)
	}
	return f
}

// baselineKey names a series' explicit 1-thread baseline spec.
func baselineKey(series string) string { return series + "/baseline" }

// speedupSeries appends one series of a speedup figure to the plan: an
// explicit 1-thread baseline spec plus one spec per thread count, each
// visible point reduced to value(n)/value(baseline).
//
// The baseline is always a dedicated 1-thread trial — never "whatever
// thread count happens to come first in the scale" — so a scale that
// omits 1 still normalizes against the true single-thread run (the
// baseline spec is then hidden: it feeds the reducers but plots no
// point of its own).
func speedupSeries(p *expt.Plan, series string, threads []int, run func(n int) float64) {
	bk := baselineKey(series)
	has1 := false
	for _, n := range threads {
		if n == 1 {
			has1 = true
			break
		}
	}
	if !has1 {
		p.Add(expt.TrialSpec{
			Key:    bk,
			Run:    func() expt.Outcome { return expt.Value(run(1)) },
			Reduce: expt.Discard,
		})
	}
	for _, n := range threads {
		key := fmt.Sprintf("%s/%d", series, n)
		if n == 1 {
			key = bk
		}
		p.Add(expt.TrialSpec{
			Key:    key,
			Run:    func() expt.Outcome { return expt.Value(run(n)) },
			Reduce: expt.Ratio(series, float64(n), bk),
		})
	}
}

// valueSeries appends one spec per thread count, each plotting its
// scalar directly (throughput and runtime figures).
func valueSeries(p *expt.Plan, series string, threads []int, run func(n int) float64) {
	for _, n := range threads {
		p.Add(expt.TrialSpec{
			Key:    fmt.Sprintf("%s/%d", series, n),
			Run:    func() expt.Outcome { return expt.Value(run(n)) },
			Reduce: expt.Emit(series, float64(n)),
		})
	}
}

// PlanEntry pairs a figure id with its plan builder (the cmd/figures
// menu and the determinism tests both iterate this).
type PlanEntry struct {
	ID    string
	Build func(sc Scale) *expt.Plan
}

// Plans returns every figure/table as a plan entry, in the
// presentation order cmd/figures uses. Figures with extra knobs
// (fig17's benchmark subset, the llc array size, delegation batch
// sizes) appear with their cmd/figures defaults.
func Plans() []PlanEntry {
	return []PlanEntry{
		{"fig01", PlanFig01},
		{"fig02a", PlanFig02a},
		{"fig02b", PlanFig02b},
		{"fig03", PlanFig03},
		{"fig04", PlanFig04},
		{"fig05", PlanFig05},
		{"fig06", PlanFig06},
		{"fig07", PlanFig07},
		{"llc", func(sc Scale) *expt.Plan { return PlanLLC(1<<17, sc.Seed) }},
		{"fig12", PlanFig12},
		{"fig13", PlanFig13},
		{"fig14", PlanFig14},
		{"fig15", PlanFig15},
		{"fig16", PlanFig16},
		{"fig17", func(sc Scale) *expt.Plan { return PlanFig17(sc, nil) }},
		{"fig18a", func(sc Scale) *expt.Plan { return PlanFig18(sc, true) }},
		{"fig18b", PlanFig18b},
		{"fig18c", func(sc Scale) *expt.Plan { return PlanFig18(sc, false) }},
		{"fig19a", func(sc Scale) *expt.Plan { return PlanFig19(sc, true) }},
		{"fig19b", func(sc Scale) *expt.Plan { return PlanFig19(sc, false) }},
		{"delegation", func(sc Scale) *expt.Plan { return PlanDelegation(sc, []int{1, 4}) }},
		{"locks", PlanLocks},
		{"telemetry", PlanTelemetry},
		{"service-latency", PlanServiceLatency},
		{"service-slo", PlanServiceSLO},
		{"service-arrivals", PlanServiceArrivals},
		{"service-chaos", PlanServiceChaos},
		{"service-overload", PlanServiceOverload},
		{"ablation-remote-latency", PlanAblationRemoteLatency},
		{"ablation-profiling-len", PlanAblationProfilingLen},
		{"ablation-warmup-threshold", PlanAblationWarmupThreshold},
		{"ablation-quanta", PlanAblationQuanta},
		{"ablation-adaptive-profiling", PlanAblationAdaptiveProfiling},
	}
}
