//go:build !race

package harness

const raceDetectorOn = false
