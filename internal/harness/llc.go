package harness

import (
	"natle/internal/expt"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/mem"
	"natle/internal/sim"
)

// LLCResult reports the Section 3.2 last-level-cache-miss experiment:
// a single thread iterates over a large array, reading one word per
// transaction with a two-line stride (to defeat the adjacent-line
// prefetcher), so almost every read misses the LLC. The paper uses the
// result — millions of misses, under 100 aborts — to prove that LLC
// misses do not themselves abort transactions.
type LLCResult struct {
	Reads      uint64
	LLCMisses  uint64 // simulated DRAM accesses
	Aborts     uint64
	Commits    uint64
	CrossReads uint64 // reads in the remote-socket variant
}

// RunLLC executes the experiment. arrayLines is the array size in
// cache lines (the paper used 1 GiB; the default figure run uses a
// smaller array with the same per-read behaviour — every read touches
// a line never seen before, so each one misses all caches).
// When remote is true, the array is homed on the other socket to also
// rule out cross-socket misses as an abort cause.
func RunLLC(arrayLines int, remote bool, seed int64) *LLCResult {
	p := machine.LargeX52()
	e := sim.New(p, machine.SingleSocket{}, 1, seed)
	sys := htm.NewSystem(e, arrayLines*mem.WordsPerLine+1024)
	res := &LLCResult{}
	home := 0
	if remote {
		home = 1
	}
	e.Spawn(nil, func(c *sim.Ctx) {
		arr := sys.AllocHome(c, arrayLines*mem.WordsPerLine, home)
		// Stride of two lines defeats the next-line prefetcher the
		// paper works around; with our cold-start directory every
		// first touch is a memory access regardless.
		for line := 0; line < arrayLines; line += 2 {
			a := arr + mem.Addr(line*mem.WordsPerLine)
			o := sys.Try(c, func() { _ = sys.Read(c, a) })
			res.Reads++
			if !o.Committed {
				res.Aborts++
			}
		}
	})
	e.Run()
	res.LLCMisses = sys.Cache.Stats.DRAMAccesses
	res.Commits = sys.Stats.Commits
	if remote {
		res.CrossReads = res.Reads
	}
	return res
}

// PlanLLC renders both variants (local and remote home) as a plan of
// two independent trials.
func PlanLLC(arrayLines int, seed int64) *expt.Plan {
	p := &expt.Plan{
		ID:     "llc",
		Title:  "Single-thread stride-2-line transactional reads over a large array",
		XLabel: "variant (0=local, 1=remote)",
		YLabel: "count",
		Notes: []string{
			"paper: ~2^23 LLC misses, <100 aborts, on a 1 GiB array",
		},
	}
	for i, remote := range []bool{false, true} {
		name := "local"
		if remote {
			name = "remote"
		}
		p.Add(expt.TrialSpec{
			Key: name,
			Run: func() expt.Outcome {
				r := RunLLC(arrayLines, remote, seed)
				x := float64(i)
				return expt.Outcome{Points: []expt.Point{
					{Series: "reads", X: x, Y: float64(r.Reads)},
					{Series: "llc-misses", X: x, Y: float64(r.LLCMisses)},
					{Series: "aborts", X: x, Y: float64(r.Aborts)},
				}}
			},
		})
	}
	return p
}

// LLCTable executes PlanLLC on the default pool.
func LLCTable(arrayLines int, seed int64) *Figure {
	return Exec(PlanLLC(arrayLines, seed), expt.Options{})
}
