package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"natle/internal/backend"
	"natle/internal/scheme"
	"natle/internal/workload"
)

// checkBenchShape asserts the structural invariants every
// BENCH_native.json must satisfy regardless of the host it was taken
// on: the full scheme x workload grid in registry order, one point
// per swept thread count, op totals that follow from the config.
func checkBenchShape(t *testing.T, b *NativeBench) {
	t.Helper()
	if b.Backend != string(backend.Native) {
		t.Errorf("backend = %q, want %q", b.Backend, backend.Native)
	}
	wls := workload.BackendWorkloads()
	if len(b.Workloads) != len(wls) {
		t.Fatalf("snapshot has %d workloads, want %d", len(b.Workloads), len(wls))
	}
	names := scheme.NamesFor(backend.Native)
	for i, bw := range b.Workloads {
		if bw.Workload != wls[i] {
			t.Errorf("workload[%d] = %q, want %q", i, bw.Workload, wls[i])
		}
		if len(bw.Schemes) != len(names) {
			t.Fatalf("workload %q has %d schemes, want %d", bw.Workload, len(bw.Schemes), len(names))
		}
		for j, bs := range bw.Schemes {
			if bs.Scheme != names[j] {
				t.Errorf("%s scheme[%d] = %q, want %q", bw.Workload, j, bs.Scheme, names[j])
			}
			if len(bs.Points) != len(b.Threads) {
				t.Fatalf("%s/%s has %d points, want %d", bw.Workload, bs.Scheme, len(bs.Points), len(b.Threads))
			}
			for k, p := range bs.Points {
				if p.Threads != b.Threads[k] {
					t.Errorf("%s/%s point %d threads = %d, want %d", bw.Workload, bs.Scheme, k, p.Threads, b.Threads[k])
				}
				if want := uint64(p.Threads) * uint64(b.OpsPerThread); p.Ops != want {
					t.Errorf("%s/%s @%d ops = %d, want %d", bw.Workload, bs.Scheme, p.Threads, p.Ops, want)
				}
				if p.OpsPerSec <= 0 {
					t.Errorf("%s/%s @%d ops_per_sec = %v, want > 0", bw.Workload, bs.Scheme, p.Threads, p.OpsPerSec)
				}
			}
		}
	}
}

func TestNativeBenchSnapshotShape(t *testing.T) {
	b := NativeBenchSnapshot(NativeSweepConfig{Threads: []int{1, 2}, Ops: 512, Seed: 1})
	checkBenchShape(t, b)
	if b.Host != Fingerprint() {
		t.Errorf("host fingerprint = %+v, want %+v", b.Host, Fingerprint())
	}
	buf, err := MarshalNativeBench(b)
	if err != nil {
		t.Fatal(err)
	}
	if buf[len(buf)-1] != '\n' {
		t.Error("marshaled snapshot missing trailing newline")
	}
}

// TestCommittedNativeBenchParses holds the committed snapshot to the
// structural contract: it must unmarshal into NativeBench with no
// unknown fields, cover the full scheme x workload grid, and carry
// the host fingerprint that explains (and scopes) its values.
func TestCommittedNativeBenchParses(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_native.json")
	if err != nil {
		t.Fatalf("committed snapshot unreadable (regenerate with make bench-snapshot): %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	var b NativeBench
	if err := dec.Decode(&b); err != nil {
		t.Fatalf("BENCH_native.json does not match harness.NativeBench: %v", err)
	}
	checkBenchShape(t, &b)
	if b.Host.GoVersion == "" || b.Host.GOOS == "" || b.Host.GOARCH == "" || b.Host.CPUs <= 0 {
		t.Errorf("host fingerprint incomplete: %+v", b.Host)
	}
}
