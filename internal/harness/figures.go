package harness

import (
	"fmt"

	"natle/internal/expt"
	"natle/internal/machine"
	"natle/internal/sets"
	"natle/internal/tle"
	"natle/internal/vtime"
	"natle/internal/workload"
)

// run executes one microbenchmark trial with the scale's defaults.
func (sc Scale) run(cfg workload.Config) *workload.Result {
	if cfg.Seed == 0 {
		cfg.Seed = sc.Seed
	}
	if cfg.Duration == 0 {
		if cfg.Lock == workload.LockNATLE {
			cfg.Duration, cfg.Warmup = sc.NATLEDur, sc.NATLEWarmup
		} else {
			cfg.Duration, cfg.Warmup = sc.Dur, sc.Warmup
		}
	}
	if cfg.Lock == workload.LockNATLE && cfg.NATLE == nil {
		n := sc.NATLE
		cfg.NATLE = &n
	}
	return workload.Run(cfg)
}

// thr runs one trial and returns its throughput (the scalar most
// specs measure).
func (sc Scale) thr(cfg workload.Config) float64 { return sc.run(cfg).Throughput() }

// PlanFig01 reproduces Figure 1: speedup of the 100%-update AVL
// microbenchmark (keys [0,2048)) on the large and small machines.
func PlanFig01(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig01",
		Title:  "AVL tree, 100% updates, keys [0,2048): speedup over 1 thread",
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, m := range []struct {
		name    string
		prof    func() *machine.Profile
		threads []int
	}{
		{"large", large, sc.LargeThreads},
		{"small", small, sc.SmallThreads},
	} {
		speedupSeries(p, m.name, m.threads, func(n int) float64 {
			return sc.thr(workload.Config{
				Prof: m.prof(), Threads: n, UpdatePct: 100, KeyRange: 2048,
			})
		})
	}
	return p
}

// Fig01 executes PlanFig01 on the default pool.
func Fig01(sc Scale) *Figure { return Exec(PlanFig01(sc), expt.Options{}) }

// retryPolicies is the Figure 2(a) policy matrix.
func retryPolicies() []tle.Policy {
	return []tle.Policy{
		{Attempts: 5, HonorHint: true},
		{Attempts: 20, HonorHint: true},
		{Attempts: 5},
		{Attempts: 20},
		{Attempts: 5, CountLockHeld: true},
		{Attempts: 20, CountLockHeld: true},
	}
}

// PlanFig02a reproduces Figure 2(a): TLE retry policies on a large AVL
// tree (keys [0,131072)), 100% updates.
func PlanFig02a(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig02a",
		Title:  "AVL tree, 100% updates, keys [0,131072): retry policies, speedup over 1 thread",
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, pol := range retryPolicies() {
		speedupSeries(p, pol.Name(), sc.LargeThreads, func(n int) float64 {
			return sc.thr(workload.Config{
				Threads: n, UpdatePct: 100, KeyRange: 131072, TLE: pol,
				MemWords: 1 << 22,
			})
		})
	}
	return p
}

// Fig02a executes PlanFig02a on the default pool.
func Fig02a(sc Scale) *Figure { return Exec(PlanFig02a(sc), expt.Options{}) }

// PlanFig02b reproduces Figure 2(b): the percentage of TLE-20 critical
// sections that commit in a transaction after at least one earlier
// attempt failed with the hint bit clear.
func PlanFig02b(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig02b",
		Title:  "Percent of operations committing after a hint-clear failure (TLE-20)",
		XLabel: "threads",
		YLabel: "percent",
	}
	valueSeries(p, "TLE-20", sc.LargeThreads, func(n int) float64 {
		r := sc.run(workload.Config{
			Threads: n, UpdatePct: 100, KeyRange: 131072, MemWords: 1 << 22,
		})
		if r.Sync.TLE.Commits == 0 {
			return 0
		}
		return 100 * float64(r.Sync.TLE.CommitsAfterNoHint) / float64(r.Sync.TLE.Commits)
	})
	return p
}

// Fig02b executes PlanFig02b on the default pool.
func Fig02b(sc Scale) *Figure { return Exec(PlanFig02b(sc), expt.Options{}) }

// PlanFig03 reproduces Figure 3: read-only vs 2%-update workloads on
// the small AVL tree.
func PlanFig03(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig03",
		Title:  "AVL tree, keys [0,2048): 100% lookup vs 2% updates, speedup over 1 thread",
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, upd := range []int{0, 2} {
		name := "read-only"
		if upd > 0 {
			name = fmt.Sprintf("%d%% updates", upd)
		}
		speedupSeries(p, name, sc.LargeThreads, func(n int) float64 {
			return sc.thr(workload.Config{Threads: n, UpdatePct: upd, KeyRange: 2048})
		})
	}
	return p
}

// Fig03 executes PlanFig03 on the default pool.
func Fig03(sc Scale) *Figure { return Exec(PlanFig03(sc), expt.Options{}) }

// PlanFig04 reproduces Figure 4: TLE vs no synchronization on the
// search-and-replace workload (keys [0,4096)).
func PlanFig04(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig04",
		Title:  "Search-and-replace, AVL keys [0,4096): TLE vs no synchronization, speedup",
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, kind := range []workload.LockKind{workload.LockTLE, workload.LockNoSync} {
		speedupSeries(p, string(kind), sc.LargeThreads, func(n int) float64 {
			return sc.thr(workload.Config{
				Threads: n, KeyRange: 4096, SearchReplace: true, Lock: kind,
			})
		})
	}
	return p
}

// Fig04 executes PlanFig04 on the default pool.
func Fig04(sc Scale) *Figure { return Exec(PlanFig04(sc), expt.Options{}) }

// PlanFig05 reproduces Figure 5: the abort-rate breakdown for the
// Fig 4 TLE curve.
func PlanFig05(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig05",
		Title:  "Abort rate by cause for the Fig 4 TLE curve (% of attempts)",
		XLabel: "threads",
		YLabel: "percent of attempts",
	}
	for _, n := range sc.LargeThreads {
		p.Add(expt.TrialSpec{
			Key: fmt.Sprintf("breakdown/%d", n),
			Run: func() expt.Outcome {
				r := sc.run(workload.Config{Threads: n, KeyRange: 4096, SearchReplace: true})
				at := float64(r.Sync.TLE.Attempts)
				if at == 0 {
					return expt.Outcome{}
				}
				x := float64(n)
				return expt.Outcome{Points: []expt.Point{
					{Series: "total", X: x, Y: 100 * float64(r.HTM.TotalAborts()) / at},
					{Series: "conflict", X: x, Y: 100 * float64(r.Sync.TLE.Aborts[1]) / at},
					{Series: "capacity", X: x, Y: 100 * float64(r.Sync.TLE.Aborts[2]) / at},
					{Series: "lock-held", X: x, Y: 100 * float64(r.Sync.TLE.Aborts[4]) / at},
				}}
			},
		})
	}
	return p
}

// Fig05 executes PlanFig05 on the default pool.
func Fig05(sc Scale) *Figure { return Exec(PlanFig05(sc), expt.Options{}) }

// PlanFig06 reproduces Figure 6: a 36-thread single-socket run with an
// artificial delay before each commit; the x axis is the delay, the
// series are the abort rate and the conflict share of aborts.
func PlanFig06(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig06",
		Title:  "36 threads on one socket, delay before commit (AVL keys [0,131072), 100% upd)",
		XLabel: "delay (us)",
		YLabel: "percent",
		Notes: []string{
			"paper's x axis is delay-loop iterations; ours is the equivalent virtual time",
		},
	}
	for _, us := range []float64{0, 0.5, 1, 2, 4, 8, 16, 32, 43} {
		p.Add(expt.TrialSpec{
			Key: fmt.Sprintf("delay/%gus", us),
			Run: func() expt.Outcome {
				r := sc.run(workload.Config{
					Threads: 36, Pin: machine.SingleSocket{}, UpdatePct: 100,
					KeyRange: 131072, MemWords: 1 << 22,
					CommitDelay: vtime.Duration(us * float64(vtime.Microsecond)),
				})
				aborts := float64(r.HTM.TotalAborts())
				attempts := float64(r.HTM.Starts)
				if attempts == 0 {
					return expt.Outcome{}
				}
				conflictShare := 0.0
				if aborts > 0 {
					conflictShare = 100 * float64(r.HTM.Aborts[1]) / aborts
				}
				// The paper's footnote 1 reports the average successful
				// transaction length (~61 ns without delay, ~43 us at the
				// maximum delay).
				return expt.Outcome{Points: []expt.Point{
					{Series: "abort rate", X: us, Y: 100 * aborts / attempts},
					{Series: "conflict share of aborts", X: us, Y: conflictShare},
					{Series: "avg tx length (us)", X: us, Y: r.HTM.AvgCommitDuration().Seconds() * 1e6},
				}}
			},
		})
	}
	return p
}

// Fig06 executes PlanFig06 on the default pool.
func Fig06(sc Scale) *Figure { return Exec(PlanFig06(sc), expt.Options{}) }

// PlanFig07 reproduces Figure 7: AVL vs leaf-oriented BST with 20%
// updates and keys [0,2048).
func PlanFig07(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig07",
		Title:  "AVL vs leaf-oriented BST, 20% updates, keys [0,2048): throughput (ops/s)",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, kind := range []sets.Kind{sets.KindAVL, sets.KindLeafBST} {
		valueSeries(p, string(kind), sc.LargeThreads, func(n int) float64 {
			return sc.thr(workload.Config{Threads: n, UpdatePct: 20, KeyRange: 2048, SetKind: kind})
		})
	}
	return p
}

// Fig07 executes PlanFig07 on the default pool.
func Fig07(sc Scale) *Figure { return Exec(PlanFig07(sc), expt.Options{}) }

// PlanFig12 reproduces Figure 12: TLE vs NATLE on the AVL tree (keys
// [0,2048)) for 0/20/100% updates, without and with external work.
func PlanFig12(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig12",
		Title:  "AVL keys [0,2048): TLE vs NATLE, ops/s (panels: upd% x external work)",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, work := range []int{0, 256} {
		for _, upd := range []int{0, 20, 100} {
			for _, kind := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
				name := fmt.Sprintf("%s/upd%d/work%d", kind, upd, work)
				valueSeries(p, name, sc.LargeThreads, func(n int) float64 {
					return sc.thr(workload.Config{
						Threads: n, UpdatePct: upd, KeyRange: 2048,
						ExternalWork: work, Lock: kind,
					})
				})
			}
		}
	}
	return p
}

// Fig12 executes PlanFig12 on the default pool.
func Fig12(sc Scale) *Figure { return Exec(PlanFig12(sc), expt.Options{}) }

// PlanFig13 reproduces Figure 13: unbalanced BSTs and skip-lists with
// external work (keys [0,2048)).
func PlanFig13(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig13",
		Title:  "Leaf-oriented BST and skip-list, keys [0,2048), external work: ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, kind := range []sets.Kind{sets.KindLeafBST, sets.KindSkipList} {
		for _, upd := range []int{20, 100} {
			for _, lk := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
				name := fmt.Sprintf("%s/%s/upd%d", kind, lk, upd)
				valueSeries(p, name, sc.LargeThreads, func(n int) float64 {
					return sc.thr(workload.Config{
						Threads: n, UpdatePct: upd, KeyRange: 2048,
						SetKind: kind, ExternalWork: 256, Lock: lk,
					})
				})
			}
		}
	}
	return p
}

// Fig13 executes PlanFig13 on the default pool.
func Fig13(sc Scale) *Figure { return Exec(PlanFig13(sc), expt.Options{}) }

// PlanFig14 reproduces Figure 14: the leaf-oriented BST with a tiny
// key range [0,128), where even leaf-only updates conflict.
func PlanFig14(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig14",
		Title:  "Leaf-oriented BST, keys [0,128): ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, upd := range []int{40, 100} {
		for _, lk := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
			name := fmt.Sprintf("%s/upd%d", lk, upd)
			valueSeries(p, name, sc.LargeThreads, func(n int) float64 {
				return sc.thr(workload.Config{
					Threads: n, UpdatePct: upd, KeyRange: 128,
					SetKind: sets.KindLeafBST, ExternalWork: 256, Lock: lk,
				})
			})
		}
	}
	return p
}

// Fig14 executes PlanFig14 on the default pool.
func Fig14(sc Scale) *Figure { return Exec(PlanFig14(sc), expt.Options{}) }

// PlanFig15 reproduces Figure 15: alternative pinning policies
// (alternating sockets, and unpinned under the simulated OS scheduler)
// for the 100%-update AVL workload with external work.
func PlanFig15(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig15",
		Title:  "AVL keys [0,2048), 100% upd, external work: pinning policies, ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, pin := range []machine.PinPolicy{machine.Alternating{}, machine.Unpinned{}} {
		for _, lk := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
			name := fmt.Sprintf("%s/%s", pin.Name(), lk)
			valueSeries(p, name, sc.LargeThreads, func(n int) float64 {
				return sc.thr(workload.Config{
					Threads: n, Pin: pin, UpdatePct: 100, KeyRange: 2048,
					ExternalWork: 256, Lock: lk,
				})
			})
		}
	}
	return p
}

// Fig15 executes PlanFig15 on the default pool.
func Fig15(sc Scale) *Figure { return Exec(PlanFig15(sc), expt.Options{}) }

// PlanFig16 reproduces Figure 16: two AVL trees, one update-only and
// one search-only, with combined and per-tree throughput.
func PlanFig16(sc Scale) *expt.Plan {
	p := &expt.Plan{
		ID:     "fig16",
		Title:  "Two AVL trees (update-only + search-only), keys [0,2048): ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, lk := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
		for _, n := range sc.LargeThreads {
			if n%2 == 1 {
				continue // the paper runs even thread counts only
			}
			p.Add(expt.TrialSpec{
				Key: fmt.Sprintf("%s/%d", lk, n),
				Run: func() expt.Outcome {
					cfg := workload.Config{Threads: n, KeyRange: 2048, Lock: lk}
					if lk == workload.LockNATLE {
						ncfg := sc.NATLE
						cfg.NATLE = &ncfg
						cfg.Duration, cfg.Warmup = sc.NATLEDur, sc.NATLEWarmup
					} else {
						cfg.Duration, cfg.Warmup = sc.Dur, sc.Warmup
					}
					cfg.Seed = sc.Seed
					r := workload.RunTwoTrees(workload.TwoTreesConfig{Base: cfg, SearchWork: 256})
					x := float64(n)
					return expt.Outcome{Points: []expt.Point{
						{Series: string(lk) + "/combined", X: x, Y: r.CombinedThroughput()},
						{Series: string(lk) + "/updates", X: x, Y: r.UpdateThroughput()},
						{Series: string(lk) + "/searches", X: x, Y: r.SearchThroughput()},
					}}
				},
			})
		}
	}
	return p
}

// Fig16 executes PlanFig16 on the default pool.
func Fig16(sc Scale) *Figure { return Exec(PlanFig16(sc), expt.Options{}) }
