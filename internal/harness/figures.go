package harness

import (
	"fmt"

	"natle/internal/machine"
	"natle/internal/sets"
	"natle/internal/tle"
	"natle/internal/vtime"
	"natle/internal/workload"
)

// run executes one microbenchmark trial with the scale's defaults.
func (sc Scale) run(cfg workload.Config) *workload.Result {
	if cfg.Seed == 0 {
		cfg.Seed = sc.Seed
	}
	if cfg.Duration == 0 {
		if cfg.Lock == workload.LockNATLE {
			cfg.Duration, cfg.Warmup = sc.NATLEDur, sc.NATLEWarmup
		} else {
			cfg.Duration, cfg.Warmup = sc.Dur, sc.Warmup
		}
	}
	if cfg.Lock == workload.LockNATLE && cfg.NATLE == nil {
		n := sc.NATLE
		cfg.NATLE = &n
	}
	return workload.Run(cfg)
}

// Fig01 reproduces Figure 1: speedup of the 100%-update AVL
// microbenchmark (keys [0,2048)) on the large and small machines.
func Fig01(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig01",
		Title:  "AVL tree, 100% updates, keys [0,2048): speedup over 1 thread",
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, m := range []struct {
		name    string
		prof    *machine.Profile
		threads []int
	}{
		{"large", large(), sc.LargeThreads},
		{"small", small(), sc.SmallThreads},
	} {
		var base float64
		for _, n := range m.threads {
			r := sc.run(workload.Config{
				Prof: m.prof, Threads: n, UpdatePct: 100, KeyRange: 2048,
			})
			if base == 0 {
				base = r.Throughput() / float64(n) // n is 1 in the provided scales
			}
			f.Add(m.name, float64(n), r.Throughput()/base)
		}
	}
	return f
}

// retryPolicies is the Figure 2(a) policy matrix.
func retryPolicies() []tle.Policy {
	return []tle.Policy{
		{Attempts: 5, HonorHint: true},
		{Attempts: 20, HonorHint: true},
		{Attempts: 5},
		{Attempts: 20},
		{Attempts: 5, CountLockHeld: true},
		{Attempts: 20, CountLockHeld: true},
	}
}

// Fig02a reproduces Figure 2(a): TLE retry policies on a large AVL
// tree (keys [0,131072)), 100% updates.
func Fig02a(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig02a",
		Title:  "AVL tree, 100% updates, keys [0,131072): retry policies, speedup over 1 thread",
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, pol := range retryPolicies() {
		var base float64
		for _, n := range sc.LargeThreads {
			r := sc.run(workload.Config{
				Threads: n, UpdatePct: 100, KeyRange: 131072, TLE: pol,
				MemWords: 1 << 22,
			})
			if base == 0 {
				base = r.Throughput()
			}
			f.Add(pol.Name(), float64(n), r.Throughput()/base)
		}
	}
	return f
}

// Fig02b reproduces Figure 2(b): the percentage of TLE-20 critical
// sections that commit in a transaction after at least one earlier
// attempt failed with the hint bit clear.
func Fig02b(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig02b",
		Title:  "Percent of operations committing after a hint-clear failure (TLE-20)",
		XLabel: "threads",
		YLabel: "percent",
	}
	for _, n := range sc.LargeThreads {
		r := sc.run(workload.Config{
			Threads: n, UpdatePct: 100, KeyRange: 131072, MemWords: 1 << 22,
		})
		pct := 0.0
		if r.Sync.TLE.Commits > 0 {
			pct = 100 * float64(r.Sync.TLE.CommitsAfterNoHint) / float64(r.Sync.TLE.Commits)
		}
		f.Add("TLE-20", float64(n), pct)
	}
	return f
}

// Fig03 reproduces Figure 3: read-only vs 2%-update workloads on the
// small AVL tree.
func Fig03(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig03",
		Title:  "AVL tree, keys [0,2048): 100% lookup vs 2% updates, speedup over 1 thread",
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, upd := range []int{0, 2} {
		name := "read-only"
		if upd > 0 {
			name = fmt.Sprintf("%d%% updates", upd)
		}
		var base float64
		for _, n := range sc.LargeThreads {
			r := sc.run(workload.Config{Threads: n, UpdatePct: upd, KeyRange: 2048})
			if base == 0 {
				base = r.Throughput()
			}
			f.Add(name, float64(n), r.Throughput()/base)
		}
	}
	return f
}

// Fig04 reproduces Figure 4: TLE vs no synchronization on the
// search-and-replace workload (keys [0,4096)).
func Fig04(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig04",
		Title:  "Search-and-replace, AVL keys [0,4096): TLE vs no synchronization, speedup",
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, kind := range []workload.LockKind{workload.LockTLE, workload.LockNoSync} {
		var base float64
		for _, n := range sc.LargeThreads {
			r := sc.run(workload.Config{
				Threads: n, KeyRange: 4096, SearchReplace: true, Lock: kind,
			})
			if base == 0 {
				base = r.Throughput()
			}
			f.Add(string(kind), float64(n), r.Throughput()/base)
		}
	}
	return f
}

// Fig05 reproduces Figure 5: the abort-rate breakdown for the Fig 4
// TLE curve.
func Fig05(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig05",
		Title:  "Abort rate by cause for the Fig 4 TLE curve (% of attempts)",
		XLabel: "threads",
		YLabel: "percent of attempts",
	}
	for _, n := range sc.LargeThreads {
		r := sc.run(workload.Config{Threads: n, KeyRange: 4096, SearchReplace: true})
		at := float64(r.Sync.TLE.Attempts)
		if at == 0 {
			continue
		}
		f.Add("total", float64(n), 100*float64(r.HTM.TotalAborts())/at)
		f.Add("conflict", float64(n), 100*float64(r.Sync.TLE.Aborts[1])/at)
		f.Add("capacity", float64(n), 100*float64(r.Sync.TLE.Aborts[2])/at)
		f.Add("lock-held", float64(n), 100*float64(r.Sync.TLE.Aborts[4])/at)
	}
	return f
}

// Fig06 reproduces Figure 6: a 36-thread single-socket run with an
// artificial delay before each commit; the x axis is the delay, the
// series are the abort rate and the conflict share of aborts.
func Fig06(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig06",
		Title:  "36 threads on one socket, delay before commit (AVL keys [0,131072), 100% upd)",
		XLabel: "delay (us)",
		YLabel: "percent",
		Notes: []string{
			"paper's x axis is delay-loop iterations; ours is the equivalent virtual time",
		},
	}
	for _, us := range []float64{0, 0.5, 1, 2, 4, 8, 16, 32, 43} {
		r := sc.run(workload.Config{
			Threads: 36, Pin: machine.SingleSocket{}, UpdatePct: 100,
			KeyRange: 131072, MemWords: 1 << 22,
			CommitDelay: vtime.Duration(us * float64(vtime.Microsecond)),
		})
		aborts := float64(r.HTM.TotalAborts())
		attempts := float64(r.HTM.Starts)
		if attempts == 0 {
			continue
		}
		f.Add("abort rate", us, 100*aborts/attempts)
		conflictShare := 0.0
		if aborts > 0 {
			conflictShare = 100 * float64(r.HTM.Aborts[1]) / aborts
		}
		f.Add("conflict share of aborts", us, conflictShare)
		// The paper's footnote 1 reports the average successful
		// transaction length (~61 ns without delay, ~43 us at the
		// maximum delay).
		f.Add("avg tx length (us)", us, r.HTM.AvgCommitDuration().Seconds()*1e6)
	}
	return f
}

// Fig07 reproduces Figure 7: AVL vs leaf-oriented BST with 20% updates
// and keys [0,2048).
func Fig07(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig07",
		Title:  "AVL vs leaf-oriented BST, 20% updates, keys [0,2048): throughput (ops/s)",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, kind := range []sets.Kind{sets.KindAVL, sets.KindLeafBST} {
		for _, n := range sc.LargeThreads {
			r := sc.run(workload.Config{Threads: n, UpdatePct: 20, KeyRange: 2048, SetKind: kind})
			f.Add(string(kind), float64(n), r.Throughput())
		}
	}
	return f
}

// Fig12 reproduces Figure 12: TLE vs NATLE on the AVL tree (keys
// [0,2048)) for 0/20/100% updates, without and with external work.
func Fig12(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig12",
		Title:  "AVL keys [0,2048): TLE vs NATLE, ops/s (panels: upd% x external work)",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, work := range []int{0, 256} {
		for _, upd := range []int{0, 20, 100} {
			for _, kind := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
				name := fmt.Sprintf("%s/upd%d/work%d", kind, upd, work)
				for _, n := range sc.LargeThreads {
					r := sc.run(workload.Config{
						Threads: n, UpdatePct: upd, KeyRange: 2048,
						ExternalWork: work, Lock: kind,
					})
					f.Add(name, float64(n), r.Throughput())
				}
			}
		}
	}
	return f
}

// Fig13 reproduces Figure 13: unbalanced BSTs and skip-lists with
// external work (keys [0,2048)).
func Fig13(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig13",
		Title:  "Leaf-oriented BST and skip-list, keys [0,2048), external work: ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, kind := range []sets.Kind{sets.KindLeafBST, sets.KindSkipList} {
		for _, upd := range []int{20, 100} {
			for _, lk := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
				name := fmt.Sprintf("%s/%s/upd%d", kind, lk, upd)
				for _, n := range sc.LargeThreads {
					r := sc.run(workload.Config{
						Threads: n, UpdatePct: upd, KeyRange: 2048,
						SetKind: kind, ExternalWork: 256, Lock: lk,
					})
					f.Add(name, float64(n), r.Throughput())
				}
			}
		}
	}
	return f
}

// Fig14 reproduces Figure 14: the leaf-oriented BST with a tiny key
// range [0,128), where even leaf-only updates conflict.
func Fig14(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig14",
		Title:  "Leaf-oriented BST, keys [0,128): ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, upd := range []int{40, 100} {
		for _, lk := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
			name := fmt.Sprintf("%s/upd%d", lk, upd)
			for _, n := range sc.LargeThreads {
				r := sc.run(workload.Config{
					Threads: n, UpdatePct: upd, KeyRange: 128,
					SetKind: sets.KindLeafBST, ExternalWork: 256, Lock: lk,
				})
				f.Add(name, float64(n), r.Throughput())
			}
		}
	}
	return f
}

// Fig15 reproduces Figure 15: alternative pinning policies
// (alternating sockets, and unpinned under the simulated OS scheduler)
// for the 100%-update AVL workload with external work.
func Fig15(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig15",
		Title:  "AVL keys [0,2048), 100% upd, external work: pinning policies, ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, pin := range []machine.PinPolicy{machine.Alternating{}, machine.Unpinned{}} {
		for _, lk := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
			name := fmt.Sprintf("%s/%s", pin.Name(), lk)
			for _, n := range sc.LargeThreads {
				r := sc.run(workload.Config{
					Threads: n, Pin: pin, UpdatePct: 100, KeyRange: 2048,
					ExternalWork: 256, Lock: lk,
				})
				f.Add(name, float64(n), r.Throughput())
			}
		}
	}
	return f
}

// Fig16 reproduces Figure 16: two AVL trees, one update-only and one
// search-only, with combined and per-tree throughput.
func Fig16(sc Scale) *Figure {
	f := &Figure{
		ID:     "fig16",
		Title:  "Two AVL trees (update-only + search-only), keys [0,2048): ops/s",
		XLabel: "threads",
		YLabel: "ops/s",
	}
	for _, lk := range []workload.LockKind{workload.LockTLE, workload.LockNATLE} {
		for _, n := range sc.LargeThreads {
			if n%2 == 1 {
				continue // the paper runs even thread counts only
			}
			cfg := workload.Config{Threads: n, KeyRange: 2048, Lock: lk}
			if lk == workload.LockNATLE {
				ncfg := sc.NATLE
				cfg.NATLE = &ncfg
				cfg.Duration, cfg.Warmup = sc.NATLEDur, sc.NATLEWarmup
			} else {
				cfg.Duration, cfg.Warmup = sc.Dur, sc.Warmup
			}
			cfg.Seed = sc.Seed
			r := workload.RunTwoTrees(workload.TwoTreesConfig{Base: cfg, SearchWork: 256})
			f.Add(string(lk)+"/combined", float64(n), r.CombinedThroughput())
			f.Add(string(lk)+"/updates", float64(n), r.UpdateThroughput())
			f.Add(string(lk)+"/searches", float64(n), r.SearchThroughput())
		}
	}
	return f
}
