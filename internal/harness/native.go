package harness

import (
	"encoding/json"
	"fmt"
	"runtime"

	"natle/internal/backend"
	"natle/internal/fault"
	"natle/internal/native"
	"natle/internal/scheme"
	"natle/internal/sets"
	"natle/internal/tle"
	"natle/internal/workload"
)

// The native harness: thread-count sweeps of the backend-agnostic
// workloads on the real-execution backend, and the committed
// BENCH_native.json snapshot. Native numbers are host- and
// load-dependent — the snapshot's *structure* is stable and its
// values carry a host fingerprint, which byte-comparisons exclude;
// nothing here may feed the deterministic figure pipeline.

// NativeSweepConfig describes one native thread sweep.
type NativeSweepConfig struct {
	// Lock names a native-backend scheme (scheme.NamesFor(native)).
	Lock string
	// Workload is one of workload.BackendWorkloads() (default counter).
	Workload string
	// Threads is the goroutine sweep (default 1,2,4,8,16).
	Threads []int
	// Ops is the per-thread operation count (default 1<<14).
	Ops int
	// Seed feeds the deterministic operation schedules.
	Seed int64
	// KeyRange sizes the twotrees/sets key space (default 1024).
	KeyRange int
	// Set selects the sets workload's structure (default avl).
	Set sets.Kind
	// ExternalWork bounds the random between-op work (0 disables).
	ExternalWork int
	// Sockets is the native thread-group count (default 2).
	Sockets int
	// TLE overrides the scheme's retry policy (zero keeps defaults).
	TLE tle.Policy
	// Fault, if non-nil and enabled, arms the native fault adapter on
	// every trial's world (see native.Fault); the per-trial injected
	// counters land in BackendResult.Fault.
	Fault *fault.Profile
}

func (cfg *NativeSweepConfig) defaults() {
	if cfg.Workload == "" {
		cfg.Workload = workload.BackendCounter
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{1, 2, 4, 8, 16}
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 1 << 14
	}
}

// NativeSweep runs the sweep, one trial per thread count. Trials run
// sequentially — wall-clock measurements must not contend with each
// other for the host the way parallel simulated trials safely do.
func NativeSweep(cfg NativeSweepConfig) []*workload.BackendResult {
	cfg.defaults()
	out := make([]*workload.BackendResult, 0, len(cfg.Threads))
	for _, n := range cfg.Threads {
		bc := workload.BackendConfig{
			Lock:         cfg.Lock,
			Workload:     cfg.Workload,
			Threads:      n,
			Ops:          cfg.Ops,
			Seed:         cfg.Seed,
			KeyRange:     cfg.KeyRange,
			Set:          cfg.Set,
			ExternalWork: cfg.ExternalWork,
			TLE:          cfg.TLE,
		}
		// The world is sized from the workload's own estimate: the sets
		// trials allocate structure nodes from backend words, and the
		// default capacity is not enough for long sweeps.
		w := native.NewWorld(native.Config{
			Seed: cfg.Seed, Sockets: cfg.Sockets, Fault: cfg.Fault, Words: bc.MemWords(),
		})
		r := workload.RunBackend(w, bc)
		r.Fault = w.FaultStats()
		out = append(out, r)
	}
	return out
}

// HostFingerprint identifies the machine a native snapshot was taken
// on. It is the one field of BENCH_native.json that byte-comparisons
// must exclude alongside the measured values it explains.
type HostFingerprint struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
}

// Fingerprint captures the current host.
func Fingerprint() HostFingerprint {
	return HostFingerprint{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// NativeBenchPoint is one (scheme, thread count) measurement.
type NativeBenchPoint struct {
	Threads   int     `json:"threads"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	Fallbacks uint64  `json:"fallbacks"`
}

// NativeBenchScheme is one scheme's sweep.
type NativeBenchScheme struct {
	Scheme string             `json:"scheme"`
	Points []NativeBenchPoint `json:"points"`
}

// NativeBenchWorkload is one workload's scheme sweeps.
type NativeBenchWorkload struct {
	Workload string              `json:"workload"`
	Schemes  []NativeBenchScheme `json:"schemes"`
}

// NativeBench is the BENCH_native.json shape: fixed field set and
// ordering (deterministic marshaling), host-dependent values, host
// fingerprint recorded.
type NativeBench struct {
	Backend      string                `json:"backend"`
	OpsPerThread int                   `json:"ops_per_thread"`
	Seed         int64                 `json:"seed"`
	Sockets      int                   `json:"sockets"`
	Threads      []int                 `json:"threads"`
	Host         HostFingerprint       `json:"host"`
	Workloads    []NativeBenchWorkload `json:"workloads"`
}

// NativeBenchSnapshot sweeps every native scheme over every
// backend-agnostic workload and assembles the snapshot.
func NativeBenchSnapshot(cfg NativeSweepConfig) *NativeBench {
	cfg.defaults()
	sockets := cfg.Sockets
	if sockets <= 0 {
		sockets = native.NewWorld(native.Config{}).Sockets()
	}
	out := &NativeBench{
		Backend:      string(backend.Native),
		OpsPerThread: cfg.Ops,
		Seed:         cfg.Seed,
		Sockets:      sockets,
		Threads:      cfg.Threads,
		Host:         Fingerprint(),
	}
	for _, wl := range workload.BackendWorkloads() {
		bw := NativeBenchWorkload{Workload: wl}
		for _, name := range scheme.NamesFor(backend.Native) {
			sc := cfg
			sc.Workload = wl
			sc.Lock = name
			bs := NativeBenchScheme{Scheme: name}
			for _, r := range NativeSweep(sc) {
				var commits, aborts, fallbacks uint64
				for _, s := range r.Sync {
					commits += s.TLE.Commits
					aborts += s.TLE.TotalAborts()
					fallbacks += s.TLE.Fallbacks
				}
				bs.Points = append(bs.Points, NativeBenchPoint{
					Threads:   r.Threads,
					Ops:       r.Ops,
					OpsPerSec: r.Throughput(),
					Commits:   commits,
					Aborts:    aborts,
					Fallbacks: fallbacks,
				})
			}
			bw.Schemes = append(bw.Schemes, bs)
		}
		out.Workloads = append(out.Workloads, bw)
	}
	return out
}

// MarshalNativeBench renders the snapshot as the committed JSON form
// (indented, trailing newline).
func MarshalNativeBench(b *NativeBench) ([]byte, error) {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("harness: marshal native bench: %w", err)
	}
	return append(buf, '\n'), nil
}
