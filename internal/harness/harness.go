// Package harness regenerates the paper's tables and figures on the
// simulated machine. Each FigNN function returns a Figure whose series
// correspond to the curves in the paper; cmd/figures prints them and
// bench_test.go wraps them as benchmarks.
//
// A Scale selects the sweep density and trial lengths: QuickScale keeps
// host time low (tests, benchmarks); FullScale is for regenerating the
// record in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/service"
	"natle/internal/vtime"
)

// Series is one curve: parallel X/Y vectors.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced chart or table.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Add appends a point to the named series, creating it if needed.
func (f *Figure) Add(series string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].X = append(f.Series[i].X, x)
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, X: []float64{x}, Y: []float64{y}})
}

// index is a rendering accelerator built once per String/CSV call:
// the sorted union of all x values plus one x->y map per series, so a
// dense grid renders in O(series × points) instead of rescanning every
// series linearly for every table row.
type index struct {
	xs     []float64
	series []map[float64]float64
}

func (f *Figure) index() index {
	ix := index{series: make([]map[float64]float64, len(f.Series))}
	seen := map[float64]bool{}
	for i, s := range f.Series {
		m := make(map[float64]float64, len(s.X))
		for j, x := range s.X {
			m[x] = s.Y[j]
			if !seen[x] {
				seen[x] = true
				ix.xs = append(ix.xs, x)
			}
		}
		ix.series[i] = m
	}
	sort.Float64s(ix.xs)
	return ix
}

// String renders the figure as an aligned text table (rows = x values,
// one column per series).
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	ix := f.index()
	fmt.Fprintf(&b, "%14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range ix.xs {
		fmt.Fprintf(&b, "%14.6g", x)
		for _, m := range ix.series {
			if y, ok := m[x]; ok {
				fmt.Fprintf(&b, " %18.6g", y)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	ix := f.index()
	for _, x := range ix.xs {
		fmt.Fprintf(&b, "%g", x)
		for _, m := range ix.series {
			b.WriteByte(',')
			if y, ok := m[x]; ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Scale selects sweep density and trial lengths.
type Scale struct {
	LargeThreads []int // thread counts on the two-socket machine
	SmallThreads []int // thread counts on the single-socket machine

	Dur    vtime.Duration // measured trial length (TLE/plain trials)
	Warmup vtime.Duration

	NATLEDur    vtime.Duration // trial length for NATLE comparisons
	NATLEWarmup vtime.Duration
	NATLE       natle.Config

	// Service-workload knobs (the open-loop KV service plans).
	ServiceWindow vtime.Duration // arrival window per service trial
	ServiceRates  []float64      // offered-load sweep, req/virtual second
	ServiceSLO    service.SLO    // SLO-search target and rate bracket
	// ServiceOverloadSLO is the overload plan's per-request deadline
	// and brownout p99 target — deliberately tighter than ServiceSLO
	// so overload control has something to defend at 4x offered load.
	ServiceOverloadSLO vtime.Duration

	Seed int64
}

// QuickScale keeps host time small: coarse sweeps, short trials, short
// NATLE cycles (ratios preserved). Used by tests and benchmarks.
func QuickScale() Scale {
	n := natle.DefaultConfig()
	// Keep the profiling windows long enough to amortize cross-socket
	// cache migration (~100us per mode) but shorten the quanta so a
	// few cycles fit in a short trial.
	n.ProfilingLen = 300 * vtime.Microsecond
	n.QuantumLen = 100 * vtime.Microsecond
	n.WarmupThreshold = 64
	return Scale{
		LargeThreads:  []int{1, 9, 18, 36, 42, 54, 72},
		SmallThreads:  []int{1, 2, 4, 6, 8},
		Dur:           400 * vtime.Microsecond,
		Warmup:        150 * vtime.Microsecond,
		NATLEDur:      3600 * vtime.Microsecond,
		NATLEWarmup:   1300 * vtime.Microsecond,
		NATLE:         n,
		ServiceWindow: vtime.Millisecond,
		ServiceRates:  []float64{2e6, 8e6, 16e6, 24e6, 32e6},
		ServiceSLO: service.SLO{
			Target: vtime.Millisecond,
			Lo:     2e6,
			Hi:     4e7,
			Iters:  4,
		},
		ServiceOverloadSLO: 200 * vtime.Microsecond,
		Seed:               1,
	}
}

// FullScale is the EXPERIMENTS.md record scale: dense sweeps and the
// default (larger) NATLE cycle.
func FullScale() Scale {
	return Scale{
		LargeThreads:  []int{1, 2, 4, 8, 12, 18, 24, 30, 36, 37, 40, 44, 48, 54, 60, 66, 72},
		SmallThreads:  []int{1, 2, 3, 4, 5, 6, 7, 8},
		Dur:           2 * vtime.Millisecond,
		Warmup:        400 * vtime.Microsecond,
		NATLEDur:      9 * vtime.Millisecond,
		NATLEWarmup:   3300 * vtime.Microsecond,
		NATLE:         natle.DefaultConfig(),
		ServiceWindow: 4 * vtime.Millisecond,
		ServiceRates: []float64{
			1e6, 2e6, 4e6, 8e6, 12e6, 16e6, 20e6, 24e6, 28e6, 32e6, 40e6,
		},
		ServiceSLO: service.SLO{
			Target: vtime.Millisecond,
			Lo:     1e6,
			Hi:     6.4e7,
			Iters:  7,
		},
		ServiceOverloadSLO: 200 * vtime.Microsecond,
		Seed:               1,
	}
}

// large returns the big-machine profile (one place to swap for tests).
func large() *machine.Profile { return machine.LargeX52() }

// small returns the small-machine profile.
func small() *machine.Profile { return machine.SmallI7() }
