package harness

import (
	"fmt"
	"sort"
	"strings"

	"natle/internal/backend"
	"natle/internal/expt"
	"natle/internal/fault"
	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/scheme"
	"natle/internal/sets"
	"natle/internal/sim"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// The chaos harness: every registered synchronization scheme runs a
// fixed, interleaving-independent operation schedule under every named
// fault schedule (internal/fault), and each cell is checked against
// the invariants no amount of injected adversity may break:
//
//   - transaction conservation: starts = commits + aborts;
//   - critical-section conservation: ops = commits + fallbacks (for
//     eliding schemes);
//   - correctness: the final set contents equal the fault-free host
//     replay of the schedule, and the tree invariants hold.
//
// Faults may slow a scheme down arbitrarily; they must never change
// what it computes.

// ChaosConfig configures a chaos run. The zero value selects the
// defaults documented on each field.
type ChaosConfig struct {
	Workers      int   // simulated threads (default 8)
	KeysPerWork  int   // worker key-partition size (default 24)
	OpsPerWorker int   // deterministic ops per worker (default 160)
	Seed         int64 // simulator and injector seed (default 1)

	// Parallel bounds the host worker pool running the matrix cells
	// (<= 0 selects GOMAXPROCS). Cells are independent simulations;
	// results are assembled in matrix order regardless of the pool
	// size, so the report is byte-identical at any parallelism.
	Parallel int

	// Schemes names the registry schemes to run (default: every scheme
	// with both Mutex and Robust set — non-robust schemes such as raw
	// HTM have no fallback, so a capacity-squeeze fault genuinely
	// violates their progress requirement; that is a documented
	// property, not a harness failure).
	Schemes []string

	// Schedules names the fault schedules to run (default: all).
	Schedules []string
}

func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.KeysPerWork <= 0 {
		cfg.KeysPerWork = 24
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 160
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Schemes == nil {
		for _, d := range scheme.AllFor(backend.Sim) {
			if d.Mutex && d.Robust {
				cfg.Schemes = append(cfg.Schemes, d.Name)
			}
		}
	}
	if cfg.Schedules == nil {
		cfg.Schedules = fault.ScheduleNames()
	}
	return cfg
}

// ChaosCell is the outcome of one (schedule, scheme) cell.
type ChaosCell struct {
	Schedule string
	Scheme   string

	Ok       bool
	Failures []string // invariant violations (empty when Ok)

	Ops       uint64 // critical sections executed
	Commits   uint64
	Aborts    uint64
	Fallbacks uint64

	Sync  scheme.Stats // the scheme's own counters
	Fault fault.Stats  // what the injector actually did
}

func (c *ChaosCell) fail(format string, args ...any) {
	c.Failures = append(c.Failures, fmt.Sprintf(format, args...))
}

// String renders one result line.
func (c ChaosCell) String() string {
	status := "ok"
	if !c.Ok {
		status = "FAIL: " + strings.Join(c.Failures, "; ")
	}
	s := fmt.Sprintf("%-10s %-12s commits=%-6d aborts=%-6d fallbacks=%-4d [%s] %s",
		c.Schedule, c.Scheme, c.Commits, c.Aborts, c.Fallbacks, c.Fault, status)
	return s
}

// chaosOp returns worker tid's j-th operation: a key inside the
// worker's own partition and whether to insert (vs delete). Derived by
// integer hashing so the schedule — and therefore the expected final
// contents — is independent of the simulator's RNG, of thread
// interleaving, and of any injected fault.
func chaosOp(cfg ChaosConfig, tid, j int) (key int64, insert bool) {
	x := uint64(tid)*0x9e3779b97f4a7c15 + uint64(j)*0xbf58476d1ce4e5b9 + 0x632be59bd9b4e019
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	key = int64(tid*cfg.KeysPerWork) + int64(x%uint64(cfg.KeysPerWork))
	insert = x&(1<<40) != 0
	return
}

// ChaosExpected replays the schedule on a host map: the contents every
// scheme must converge to under every fault schedule.
func ChaosExpected(cfg ChaosConfig) []int64 {
	cfg = cfg.withDefaults()
	m := map[int64]bool{}
	for tid := 0; tid < cfg.Workers; tid++ {
		for j := 0; j < cfg.OpsPerWorker; j++ {
			key, ins := chaosOp(cfg, tid, j)
			if ins {
				m[key] = true
			} else {
				delete(m, key)
			}
		}
	}
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// RunChaosCell runs one (schedule, scheme) cell on the two-socket
// machine with threads alternating across sockets (the adversarial
// placement: every fault schedule gets cross-socket traffic to
// amplify). rec, when non-nil, receives the cell's telemetry — the
// determinism test exports two runs' traces and compares bytes.
func RunChaosCell(cfg ChaosConfig, sched fault.Schedule, desc *scheme.Descriptor,
	rec telemetry.Recorder) ChaosCell {
	cfg = cfg.withDefaults()
	cell := ChaosCell{Schedule: sched.Name, Scheme: desc.Name}

	e := sim.New(machine.LargeX52(), machine.Alternating{}, cfg.Workers, cfg.Seed)
	sys := htm.NewSystem(e, 1<<20)
	if rec != nil {
		sys.SetRecorder(rec)
	}
	inj := fault.New(sched.Profile, cfg.Seed)
	sys.SetInjector(inj)

	var keys []int64
	e.Spawn(nil, func(c *sim.Ctx) {
		set := sets.NewAVL(sys, c)
		cs := desc.New(sys, c, 0)
		work := func(w *sim.Ctx, tid int) {
			for j := 0; j < cfg.OpsPerWorker; j++ {
				key, ins := chaosOp(cfg, tid, j)
				if ins {
					cs.Critical(w, func() { set.Insert(w, key) })
				} else {
					cs.Critical(w, func() { set.Delete(w, key) })
				}
			}
		}
		if desc.Mutex {
			for i := 0; i < cfg.Workers; i++ {
				tid := i
				e.Spawn(c, func(w *sim.Ctx) { work(w, tid) })
			}
			c.SetIdle(true)
			c.WaitOthers(vtime.Microsecond)
		} else {
			// Without mutual exclusion concurrent updates would corrupt
			// the tree by design; run the schedule sequentially so the
			// contents check still applies.
			for tid := 0; tid < cfg.Workers; tid++ {
				work(c, tid)
			}
		}
		if err := set.CheckInvariants(); err != nil {
			cell.fail("tree invariants violated: %v", err)
		}
		keys = set.Keys()
		cell.Sync = cs.Stats()
	})
	e.Run()

	hs := sys.Stats
	cell.Commits = hs.Commits
	cell.Aborts = hs.TotalAborts()
	cell.Fallbacks = cell.Sync.TLE.Fallbacks
	cell.Ops = cell.Sync.TLE.Ops
	cell.Fault = inj.Stats

	if hs.Starts != hs.Commits+hs.TotalAborts() {
		cell.fail("HTM conservation broken: %d starts != %d commits + %d aborts",
			hs.Starts, hs.Commits, hs.TotalAborts())
	}
	if ops := cell.Sync.TLE.Ops; ops > 0 && ops != cell.Sync.TLE.Commits+cell.Sync.TLE.Fallbacks {
		cell.fail("CS conservation broken: %d ops != %d commits + %d fallbacks",
			ops, cell.Sync.TLE.Commits, cell.Sync.TLE.Fallbacks)
	}
	want := ChaosExpected(cfg)
	if !equalKeys(keys, want) {
		cell.fail("final contents diverge from fault-free replay: got %d keys, want %d",
			len(keys), len(want))
	}
	cell.Ok = len(cell.Failures) == 0
	return cell
}

func equalKeys(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunChaos runs the full (schedules × schemes) matrix on a bounded
// host worker pool (cfg.Parallel) and returns one cell per
// combination, schedules outermost (the order of cfg.Schedules and
// cfg.Schemes). Every name is resolved before any cell runs, so
// lookup errors surface without burning simulation time.
func RunChaos(cfg ChaosConfig) ([]ChaosCell, error) {
	cfg = cfg.withDefaults()
	type cellSpec struct {
		sched fault.Schedule
		desc  *scheme.Descriptor
	}
	var specs []cellSpec
	for _, sn := range cfg.Schedules {
		sched, err := fault.LookupSchedule(sn)
		if err != nil {
			return nil, err
		}
		for _, name := range cfg.Schemes {
			desc, err := scheme.LookupFor(backend.Sim, name)
			if err != nil {
				return nil, err
			}
			specs = append(specs, cellSpec{sched, desc})
		}
	}
	return expt.Map(cfg.Parallel, len(specs), func(i int) ChaosCell {
		return RunChaosCell(cfg, specs[i].sched, specs[i].desc, nil)
	}), nil
}

// ChaosReport renders the matrix and reports whether every cell held
// its invariants.
func ChaosReport(cells []ChaosCell) (string, bool) {
	var b strings.Builder
	ok := true
	for _, c := range cells {
		b.WriteString(c.String())
		b.WriteByte('\n')
		if !c.Ok {
			ok = false
		}
	}
	return b.String(), ok
}

// BreakerStats extracts the hardened-TLE counters from a cell (zero
// for schemes without the breaker).
func BreakerStats(c ChaosCell) (trips, recoveries, skips uint64) {
	s := c.Sync.TLE
	return s.BreakerTrips, s.BreakerRecoveries, s.BreakerSkips
}
