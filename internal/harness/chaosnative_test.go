package harness

import (
	"bytes"
	"testing"

	"natle/internal/backend"
	"natle/internal/expt"
	"natle/internal/fault"
	"natle/internal/scheme"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// shortNativeChaos keeps the native matrix cheap enough for the
// regular (and -race) test run while still firing every schedule's
// faults against real goroutines.
func shortNativeChaos() NativeChaosConfig {
	return NativeChaosConfig{Threads: 4, Ops: 96, Seed: 1}
}

// TestNativeChaosMatrixHoldsInvariants is the cross-backend acceptance
// gate: every named fault schedule, against every robust native
// scheme, over every backend-agnostic workload, must conserve the
// operation count and reproduce the fault-free checksum.
func TestNativeChaosMatrixHoldsInvariants(t *testing.T) {
	cfg := shortNativeChaos()
	cells, err := RunNativeChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.withDefaults()
	want := len(fault.ScheduleNames()) * len(d.Schemes) * len(d.Workloads)
	if len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	injected := false
	for _, c := range cells {
		if !c.Ok {
			t.Errorf("%s/%s/%s: %v", c.Schedule, c.Scheme, c.Workload, c.Failures)
		}
		if c.Fault != (fault.Stats{}) {
			injected = true
		}
	}
	if !injected {
		t.Error("no cell recorded any injected fault; the native adapter is not wired through")
	}
}

// TestNativeChaosRejectsUnknownNames: lookup failures surface as
// errors, not as silently skipped cells.
func TestNativeChaosRejectsUnknownNames(t *testing.T) {
	if _, err := RunNativeChaos(NativeChaosConfig{Threads: 1, Ops: 1, Schedules: []string{"nonesuch"}}); err == nil {
		t.Error("unknown schedule accepted")
	}
	if _, err := RunNativeChaos(NativeChaosConfig{Threads: 1, Ops: 1,
		Schedules: []string{"spurious"}, Schemes: []string{"nonesuch"}}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestCrossBackendChaosConformance runs every named schedule on both
// backends side by side: the simulated cell must replay byte-identically
// (telemetry stream and counters), and the native cell must conserve
// its operations and checksum — one fault vocabulary, two worlds, the
// same laws.
func TestCrossBackendChaosConformance(t *testing.T) {
	desc, err := scheme.LookupFor(backend.Sim, "tle-robust")
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range fault.ScheduleNames() {
		t.Run(sn, func(t *testing.T) {
			sched, err := fault.LookupSchedule(sn)
			if err != nil {
				t.Fatal(err)
			}

			// Sim side: two runs of the same cell must agree byte for
			// byte — the replayability contract chaos debugging rests on.
			run := func() (ChaosCell, []byte) {
				rec := telemetry.NewCollector(telemetry.Config{TraceCap: 1 << 14})
				cell := RunChaosCell(shortChaos(), sched, desc, rec)
				var buf bytes.Buffer
				if err := rec.WriteChromeTrace(&buf); err != nil {
					t.Fatalf("trace export: %v", err)
				}
				return cell, buf.Bytes()
			}
			c1, t1 := run()
			c2, t2 := run()
			if !c1.Ok || !c2.Ok {
				t.Fatalf("sim cells failed: %v / %v", c1.Failures, c2.Failures)
			}
			if c1.Fault != c2.Fault || c1.Commits != c2.Commits || c1.Aborts != c2.Aborts {
				t.Errorf("sim counters diverge across replays:\n%s\n%s", c1, c2)
			}
			if !bytes.Equal(t1, t2) {
				t.Error("sim telemetry streams diverge across identical replays")
			}

			// Native side: same schedule, real goroutines, conserved ops
			// and fault-free checksum (asserted inside the cell).
			nc := RunNativeChaosCell(shortNativeChaos(), sched, "native-tle", "twotrees")
			if !nc.Ok {
				t.Errorf("native cell failed: %v", nc.Failures)
			}
		})
	}
}

// TestServiceOverloadFigureClaim pins the service-overload figure's
// headline: at 4x the sweep's mid rate, the overload-controlled
// service holds p99 within twice the SLO while the baseline's tail
// runs past it (or it sheds a large share of arrivals blindly).
func TestServiceOverloadFigureClaim(t *testing.T) {
	sc := QuickScale()
	res := PlanServiceOverload(sc).Execute(expt.Options{Workers: 4})
	at4 := map[string]float64{}
	for _, pt := range res.Points {
		if pt.X == 4 {
			at4[pt.Series] = pt.Y
		}
	}
	sloUs := sc.overloadSLO().Seconds() * 1e6
	bound := 2 * sloUs
	robust, ok := at4["brownout/p99"]
	if !ok {
		t.Fatalf("no brownout/p99 point at 4x (have %v)", at4)
	}
	if robust > bound {
		t.Errorf("brownout p99 %.1fus at 4x exceeds 2x SLO (%.1fus)", robust, bound)
	}
	if at4["brownout/dshed%"] <= 0 {
		t.Error("brownout mode shed nothing at 4x; control is not engaging")
	}
	if base := at4["baseline/p99"]; base <= bound && at4["baseline/shed%"] < 25 {
		t.Errorf("baseline neither collapsed (p99 %.1fus <= %.1fus) nor shed heavily (%.1f%%) at 4x — the figure has no story",
			base, bound, at4["baseline/shed%"])
	}
}

// TestPlanServiceChaosConservation executes the armed chaos plan and
// fails on any conservation note a cell emitted.
func TestPlanServiceChaosConservation(t *testing.T) {
	res := PlanServiceChaos(QuickScale()).Execute(expt.Options{Workers: 4})
	for _, n := range res.Notes {
		if bytes.Contains([]byte(n), []byte("CONSERVATION BROKEN")) {
			t.Error(n)
		}
	}
	if len(res.Points) == 0 {
		t.Fatal("chaos plan produced no points")
	}
}

// TestNativeSweepFaultPlumbing: a fault-armed native sweep reports
// injected-fault counters on its results; a fault-free sweep reports
// none.
func TestNativeSweepFaultPlumbing(t *testing.T) {
	p := fault.Profile{StallProb: 1, StallLen: vtime.Microsecond}
	rs := NativeSweep(NativeSweepConfig{
		Lock: "native-mutex", Threads: []int{2}, Ops: 64, Seed: 1, Fault: &p,
	})
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	if rs[0].Fault.Stalls == 0 {
		t.Error("certain stalls on every acquisition never fired")
	}
	clean := NativeSweep(NativeSweepConfig{
		Lock: "native-mutex", Threads: []int{2}, Ops: 64, Seed: 1,
	})
	if clean[0].Fault != (fault.Stats{}) {
		t.Errorf("fault-free sweep reported injected faults: %+v", clean[0].Fault)
	}
}
