// Package natle implements NATLE (NUMA-aware transactional lock
// elision), the adaptive throttling technique of the paper's Section 4.
//
// Each lock is augmented with a mode saying which threads may execute
// its critical sections: mode s (one per socket) admits only threads on
// socket s; the final mode admits everyone. Running time is divided
// into cycles: a profiling phase, split equally between the modes,
// measures how many critical sections each mode completes; the rest of
// the cycle is divided into quanta, each split between the fastest
// mode and the other socket's mode in proportion to their profiled
// throughput (or given entirely to the all-sockets mode if that
// profiled fastest).
//
// The implementation follows the paper's Figures 8-11 pseudocode
// structurally: the lock's lastProfStart field packs the profiling
// stage into its two low bits (0 = profiling on, counters not reset;
// 1 = counters reset; 2 = aggregation in progress; 3 = aggregated),
// and threads race through the stages with CAS. The acquisitions
// matrix has one cache line per thread so profiling increments do not
// contend. All metadata lives in simulated memory, so the overhead the
// paper reports for profiling and time sampling (about 27% on the
// read-only workload) is charged to the simulated threads too.
package natle

import (
	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// Config holds NATLE's tuning parameters. The paper used a 300 ms
// cycle (30 ms profiling, 9 x 30 ms quanta); virtual-time defaults here
// are scaled down by ~300x so that trials of a few milliseconds contain
// several cycles, preserving every ratio (10% profiling, 9 quanta,
// equal mode split).
type Config struct {
	ProfilingLen vtime.Duration // total profiling time per cycle
	QuantumLen   vtime.Duration // one post-profiling quantum
	Quanta       int            // quanta per cycle

	// WarmupThreshold guards against deciding from too little data: if
	// fewer total acquisitions were profiled, the all-sockets mode is
	// chosen (paper: 256).
	WarmupThreshold uint64

	// RepetitionThreshold bounds how many times LockAcquire re-checks
	// the mode before giving up and proceeding anyway (pathology
	// guard; paper: "a large constant").
	RepetitionThreshold int

	// Wait is how long a thread blocked by the current mode waits
	// before re-checking.
	Wait vtime.Duration

	// MaxThrottleWait is the starvation watchdog: the cumulative time
	// one critical section may spend blocked by the mode before
	// proceeding anyway (counted in Lock.Starvations). A mode decision
	// can only starve a socket until the next profiling phase revisits
	// it, so the default (0) is twice the cycle length; negative
	// disables the bound, leaving only RepetitionThreshold.
	MaxThrottleWait vtime.Duration

	// SocketRecheck re-reads the thread's socket every this many
	// LockAcquire calls, to accommodate migration (paper: ~1K).
	SocketRecheck int

	// TimeSample is the cost charged for reading the current time in
	// getMode (the paper reduces it by caching in a thread-local).
	TimeSample vtime.Duration

	// AdaptProfiling enables the extension the paper leaves as future
	// work ("dynamically adapting these settings"): when consecutive
	// profiling phases reach the same decision, profiling is skipped
	// for exponentially more cycles (up to MaxProfSkip), halving the
	// steady-state profiling overhead; any decision change resets the
	// skip to 1.
	AdaptProfiling bool

	// MaxProfSkip bounds the profile-every-k-cycles adaptation
	// (default 8).
	MaxProfSkip int
}

// DefaultConfig returns the scaled-down defaults described above.
func DefaultConfig() Config {
	return Config{
		ProfilingLen:        300 * vtime.Microsecond,
		QuantumLen:          300 * vtime.Microsecond,
		Quanta:              9,
		WarmupThreshold:     256,
		RepetitionThreshold: 1 << 20,
		Wait:                2 * vtime.Microsecond,
		SocketRecheck:       1024,
		TimeSample:          18 * vtime.Nanosecond,
	}
}

// CycleLen returns the full cycle length for the configuration.
func (cfg Config) CycleLen() vtime.Duration {
	return cfg.ProfilingLen + vtime.Duration(cfg.Quanta)*cfg.QuantumLen
}

// ModeSample records one profiling decision, for the Fig 18(b) style
// mode timelines.
type ModeSample struct {
	Cycle         int
	FastestMode   int
	SlicePerMille int64    // share of each quantum given to FastestMode
	Socket0Share  float64  // share of post-profiling time on which socket 0 may run
	Acqs          []uint64 // profiled acquisitions per mode
}

// Lock is a NATLE lock: TLE plus per-lock adaptive socket throttling.
// It implements lock.CS.
type Lock struct {
	sys   *htm.System
	inner lock.CS // underlying TLE lock (any lock.CS works)
	cfg   Config
	id    telemetry.LockID // telemetry id for throttle-wait attribution

	numModes int
	sockets  int

	// Simulated-memory metadata.
	startTime     mem.Addr // word: first-use timestamp (0 = unset)
	lastProfStart mem.Addr // word: packed <time, stage>
	fastestMode   mem.Addr // word
	alternateMode mem.Addr // word
	fastestSlice  mem.Addr // word: per-mille share of a quantum
	profEvery     mem.Addr // word: profile every k-th cycle (AdaptProfiling)
	acq           mem.Addr // acquisitions[thread][mode], one line per thread

	// Adaptation state, only touched by the single thread that wins
	// the finalize CAS for a cycle.
	prevFastest  int
	prevSlice    int64
	stableStreak int

	// Host-side per-thread caches (socket, recheck counters), indexed
	// by HTM slot.
	threadSocket  [htm.MaxThreads]int8
	threadCounter [htm.MaxThreads]int32

	// Timeline is the record of profiling decisions (observational,
	// host-side only).
	Timeline []ModeSample

	// Starvations counts critical sections that hit the MaxThrottleWait
	// (or RepetitionThreshold) watchdog and proceeded despite the mode.
	Starvations uint64
}

// New builds a NATLE lock wrapping inner (normally a *tle.Lock). Its
// metadata lines are homed on socket 0.
func New(sys *htm.System, c *sim.Ctx, inner lock.CS, cfg Config) *Lock {
	if cfg.Quanta <= 0 {
		cfg = DefaultConfig()
	}
	sockets := sys.Eng.Prof.Sockets
	l := &Lock{
		sys:      sys,
		inner:    inner,
		cfg:      cfg,
		numModes: sockets + 1,
		sockets:  sockets,
	}
	l.startTime = sys.AllocHome(c, 1, 0)
	l.lastProfStart = sys.AllocHome(c, 1, 0)
	l.fastestMode = sys.AllocHome(c, 1, 0)
	l.alternateMode = sys.AllocHome(c, 1, 0)
	l.fastestSlice = sys.AllocHome(c, 1, 0)
	l.profEvery = sys.AllocHome(c, 1, 0)
	sys.Mem.SetRaw(l.profEvery, 1)
	if l.cfg.MaxProfSkip <= 0 {
		l.cfg.MaxProfSkip = 8
	}
	if l.cfg.MaxThrottleWait == 0 {
		l.cfg.MaxThrottleWait = 2 * l.cfg.CycleLen()
	}
	l.acq = sys.AllocHome(c, htm.MaxThreads*mem.WordsPerLine, 0)
	for i := range l.threadSocket {
		l.threadSocket[i] = -1
	}
	// Until first profiling completes, run unthrottled.
	sys.Mem.SetRaw(l.fastestMode, uint64(l.numModes-1))
	sys.Mem.SetRaw(l.fastestSlice, 1000)
	l.id = sys.Recorder().RegisterLock(l.Name())
	return l
}

// Name implements lock.CS.
func (l *Lock) Name() string { return "NATLE(" + l.inner.Name() + ")" }

// Inner returns the wrapped lock.
func (l *Lock) Inner() lock.CS { return l.inner }

func (l *Lock) acqAddr(tid, mode int) mem.Addr {
	return l.acq + mem.Addr(tid*mem.WordsPerLine+mode)
}

// Acquisition counters are epoch-stamped rather than zeroed: each
// counter word packs the owning profiling phase's stamp in its high
// bits, so a counter from an earlier cycle reads as zero. The paper
// resets the array explicitly, which is negligible at its 30 ms
// profiling phases; at this simulator's scaled-down cycle lengths a
// 128-slot reset pass would consume a large fraction of the profiling
// phase, so the stamp achieves the same semantics at zero cost.
const (
	acqCountBits = 40
	acqCountMask = (uint64(1) << acqCountBits) - 1
)

// stampOf derives a cycle stamp from the profiling-phase start time.
// The hash mixing makes accidental stamp collisions between different
// cycles (which would let one stale count leak into a decision)
// vanishingly unlikely for any cycle length.
func stampOf(profStart vtime.Time) uint64 {
	h := uint64(profStart) >> 2
	h ^= h >> 17
	h *= 0x9E3779B1
	return h << acqCountBits
}

func packAcq(stamp, count uint64) uint64 { return stamp | count&acqCountMask }

func acqCount(word, stamp uint64) uint64 {
	if word&^acqCountMask != stamp {
		return 0 // stale epoch
	}
	return word & acqCountMask
}

// stage packing: times are rounded down to multiples of 4 ps so the
// two low bits carry the stage.
func packStage(t vtime.Time, stage uint64) uint64 {
	return (uint64(t) &^ 3) | stage
}
func stageOf(v uint64) uint64 { return v & 3 }
func baseOf(v uint64) uint64  { return v &^ 3 }

// socketOf returns the thread's socket, cached and rechecked every
// SocketRecheck acquisitions (as in the paper). A stale value only
// costs performance, never correctness.
func (l *Lock) socketOf(c *sim.Ctx) int {
	slot := l.sys.Slot(c)
	l.threadCounter[slot]++
	if l.threadSocket[slot] < 0 || int(l.threadCounter[slot])%l.cfg.SocketRecheck == 0 {
		l.threadSocket[slot] = int8(c.Socket())
	}
	return int(l.threadSocket[slot])
}

// Critical implements lock.CS, following the paper's Figure 9
// LockAcquire: check the lock's current mode, proceed if this thread's
// socket is admitted, otherwise wait and re-check (bounded by
// RepetitionThreshold).
func (l *Lock) Critical(c *sim.Ctx, body func()) {
	sock := l.socketOf(c)
	var waited vtime.Duration
	for rep := 0; rep < l.cfg.RepetitionThreshold; rep++ {
		mode, stamp := l.getMode(c)
		if mode == l.numModes-1 || mode == sock {
			l.recordWait(c, sock, waited)
			l.bumpAcquisition(c, mode, stamp)
			l.inner.Critical(c, body)
			return
		}
		if l.cfg.MaxThrottleWait > 0 && waited >= l.cfg.MaxThrottleWait {
			break
		}
		c.AdvanceIdle(l.cfg.Wait)
		waited += l.cfg.Wait
		c.Yield()
	}
	// Watchdog: the mode never admitted this socket within the wait (or
	// repetition) budget — proceed anyway rather than starve. The inner
	// TLE lock still serializes correctly; only throughput-shaping is
	// bypassed.
	l.Starvations++
	l.recordWait(c, sock, waited)
	l.inner.Critical(c, body)
}

// recordWait emits one throttle-wait telemetry span covering the whole
// blocked period (zero-length waits are not reported).
func (l *Lock) recordWait(c *sim.Ctx, sock int, waited vtime.Duration) {
	if waited > 0 {
		l.sys.Recorder().Wait(c.Now(), l.sys.Slot(c), sock, l.id, waited)
	}
}

func (l *Lock) bumpAcquisition(c *sim.Ctx, mode int, stamp uint64) {
	a := l.acqAddr(l.sys.Slot(c), mode)
	cnt := acqCount(l.sys.Read(c, a), stamp)
	l.sys.Write(c, a, packAcq(stamp, cnt+1))
}

// getMode implements Figure 10: determine the lock's current mode from
// the position within the cycle, driving profiling initialization and
// finalization as side effects. It also returns the current cycle's
// counter stamp (see bumpAcquisition).
func (l *Lock) getMode(c *sim.Ctx) (int, uint64) {
	c.Advance(l.cfg.TimeSample)
	now := c.Now()
	start := vtime.Time(l.sys.Read(c, l.startTime))
	if start == 0 {
		if l.sys.CAS(c, l.startTime, 0, uint64(now)) {
			start = now
		} else {
			start = vtime.Time(l.sys.Read(c, l.startTime))
		}
	}
	if now < start {
		now = start
	}
	cycleLen := l.cfg.CycleLen()
	timeInto := vtime.Duration(now-start) % cycleLen
	cycleStart := now.Add(-timeInto)
	stamp := stampOf(cycleStart)
	if l.cfg.AdaptProfiling {
		cycleIdx := uint64(vtime.Duration(now-start) / cycleLen)
		if k := l.sys.Read(c, l.profEvery); k > 1 && cycleIdx%k != 0 {
			// Skipped cycle: reuse the last decision for the whole
			// cycle (quanta tile the entire cycle, profiling included).
			fm := int(l.sys.Read(c, l.fastestMode))
			slice := int64(l.sys.Read(c, l.fastestSlice))
			if slice >= 1000 || fm == l.numModes-1 {
				return fm, stamp
			}
			tq := timeInto % l.cfg.QuantumLen
			if int64(tq)*1000 < int64(l.cfg.QuantumLen)*slice {
				return fm, stamp
			}
			return int(l.sys.Read(c, l.alternateMode)), stamp
		}
	}
	if timeInto < l.cfg.ProfilingLen {
		l.startProfiling(c, cycleStart)
		mode := int(timeInto / (l.cfg.ProfilingLen / vtime.Duration(l.numModes)))
		if mode >= l.numModes {
			mode = l.numModes - 1
		}
		return mode, stamp
	}
	l.finalizeProfiling(c)
	fm := int(l.sys.Read(c, l.fastestMode))
	slice := int64(l.sys.Read(c, l.fastestSlice))
	if slice >= 1000 || fm == l.numModes-1 {
		return fm, stamp
	}
	tq := (timeInto - l.cfg.ProfilingLen) % l.cfg.QuantumLen
	if int64(tq)*1000 < int64(l.cfg.QuantumLen)*slice {
		return fm, stamp
	}
	return int(l.sys.Read(c, l.alternateMode)), stamp
}

// startProfiling implements Figure 10's startProfiling: the first
// thread into a new profiling phase claims stage 0 with CAS and
// publishes stage 1. The paper's explicit counter reset between the
// two CASes is subsumed by the counters' epoch stamps (see
// bumpAcquisition), which invalidate earlier cycles' counts for free.
func (l *Lock) startProfiling(c *sim.Ctx, profStart vtime.Time) {
	target := packStage(profStart, 1)
	t := l.sys.Read(c, l.lastProfStart)
	for t < target {
		if t < packStage(profStart, 0) &&
			l.sys.CAS(c, l.lastProfStart, t, packStage(profStart, 0)) {
			l.sys.CAS(c, l.lastProfStart, packStage(profStart, 0), target)
			return
		}
		c.AdvanceIdle(200 * vtime.Nanosecond)
		c.Yield()
		t = l.sys.Read(c, l.lastProfStart)
	}
}

// finalizeProfiling implements Figure 11's finalizeProfiling: one
// thread CASes the stage from 1 to 2, aggregates, and publishes 3;
// concurrent threads wait out stage 2.
func (l *Lock) finalizeProfiling(c *sim.Ctx) {
	t := l.sys.Read(c, l.lastProfStart)
	if stageOf(t) == 3 {
		return
	}
	if stageOf(t) == 1 &&
		l.sys.CAS(c, l.lastProfStart, t, baseOf(t)|2) {
		l.computeBestLockModes(c, stampOf(vtime.Time(baseOf(t))))
		l.sys.CAS(c, l.lastProfStart, baseOf(t)|2, baseOf(t)|3)
		return
	}
	for {
		v := l.sys.Read(c, l.lastProfStart)
		if stageOf(v) != 2 || baseOf(v) != baseOf(t) {
			return
		}
		c.AdvanceIdle(200 * vtime.Nanosecond)
		c.Yield()
	}
}

// computeBestLockModes implements Figure 11: pick the mode with the
// most profiled acquisitions and the share of each quantum it gets.
// stamp identifies the cycle whose counters are live.
func (l *Lock) computeBestLockModes(c *sim.Ctx, stamp uint64) {
	acqs := make([]uint64, l.numModes)
	var total uint64
	for tid := 0; tid < htm.MaxThreads; tid++ {
		base := l.acqAddr(tid, 0)
		// Skip threads with no current-cycle counts without charging
		// reads for all 128 slots.
		quiet := true
		for m := 0; m < l.numModes; m++ {
			if acqCount(l.sys.Mem.Raw(base+mem.Addr(m)), stamp) != 0 {
				quiet = false
				break
			}
		}
		if quiet {
			continue
		}
		for m := 0; m < l.numModes; m++ {
			v := acqCount(l.sys.Read(c, base+mem.Addr(m)), stamp)
			acqs[m] += v
			total += v
		}
	}
	fastest, alternate := 0, 1
	for m := 1; m < l.numModes; m++ {
		if acqs[m] > acqs[fastest] {
			fastest = m
		}
	}
	best2 := uint64(0)
	alternate = (fastest + 1) % l.numModes
	for m := 0; m < l.numModes; m++ {
		if m != fastest && acqs[m] >= best2 {
			best2, alternate = acqs[m], m
		}
	}
	var slice int64
	if total < l.cfg.WarmupThreshold || fastest == l.numModes-1 {
		// Insufficient data or both sockets fastest: run unthrottled.
		fastest = l.numModes - 1
		slice = 1000
	} else {
		// Divide the quantum between this socket's mode and the other
		// socket's mode in proportion to profiled acquisitions.
		other := otherSocketMode(fastest, l.sockets)
		alternate = other
		den := acqs[fastest] + acqs[other]
		if den == 0 {
			slice = 1000
		} else {
			slice = int64(1000 * acqs[fastest] / den)
			if slice < 1 {
				slice = 1
			}
		}
	}
	l.sys.Write(c, l.fastestMode, uint64(fastest))
	l.sys.Write(c, l.alternateMode, uint64(alternate))
	l.sys.Write(c, l.fastestSlice, uint64(slice))

	if l.cfg.AdaptProfiling {
		// Same decision (mode and roughly the same slice) extends the
		// profiling skip; a change resets it.
		sameSlice := slice-l.prevSlice < 150 && l.prevSlice-slice < 150
		if fastest == l.prevFastest && sameSlice {
			if l.stableStreak < 30 {
				l.stableStreak++
			}
		} else {
			l.stableStreak = 0
		}
		k := 1
		for i := 0; i < l.stableStreak && k < l.cfg.MaxProfSkip; i++ {
			k *= 2
		}
		l.sys.Write(c, l.profEvery, uint64(k))
		l.prevFastest, l.prevSlice = fastest, slice
	}

	sample := ModeSample{
		Cycle:         len(l.Timeline),
		FastestMode:   fastest,
		SlicePerMille: slice,
		Acqs:          acqs,
	}
	sample.Socket0Share = l.socket0Share(fastest, alternate, slice)
	l.Timeline = append(l.Timeline, sample)
}

// otherSocketMode returns the mode of "the other socket" relative to a
// single-socket mode (the paper's 1-fastestMode generalized).
func otherSocketMode(mode, sockets int) int {
	if sockets == 2 {
		return 1 - mode
	}
	return (mode + 1) % sockets
}

// socket0Share computes the fraction of post-profiling time during
// which socket-0 threads are admitted (Fig 18(b)'s y-axis).
func (l *Lock) socket0Share(fastest, alternate int, slice int64) float64 {
	admit := func(mode int) bool { return mode == l.numModes-1 || mode == 0 }
	share := 0.0
	if admit(fastest) {
		share += float64(slice) / 1000
	}
	if slice < 1000 && admit(alternate) {
		share += float64(1000-slice) / 1000
	}
	return share
}
