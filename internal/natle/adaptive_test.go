package natle

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// The AdaptProfiling extension (the paper's "dynamically adapting
// these settings" future work): stable decisions stretch the profiling
// interval; decision changes reset it.

func adaptiveConfig() Config {
	cfg := testConfig()
	cfg.AdaptProfiling = true
	cfg.MaxProfSkip = 4
	return cfg
}

// runAdaptive drives a read-only workload long enough for many cycles.
func runAdaptive(t *testing.T, cfg Config, cycles int) *Lock {
	t.Helper()
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 8, 41)
	s := htm.NewSystem(e, 1<<14)
	var nl *Lock
	e.Spawn(nil, func(c *sim.Ctx) {
		nl = New(s, c, tle.New(s, c, 0, tle.TLE20()), cfg)
		shared := s.Alloc(c, 1)
		deadline := c.Now().Add(vtime.Duration(cycles) * cfg.CycleLen())
		for i := 0; i < 8; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for w.Now() < deadline {
					nl.Critical(w, func() { _ = s.Read(w, shared) })
					w.Work(10)
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(2 * vtime.Microsecond)
	})
	e.Run()
	return nl
}

func TestAdaptiveSkipsProfilingWhenStable(t *testing.T) {
	cycles := 16
	fixed := runAdaptive(t, testConfig(), cycles)
	adaptive := runAdaptive(t, adaptiveConfig(), cycles)
	if len(adaptive.Timeline) >= len(fixed.Timeline) {
		t.Errorf("adaptive profiled %d cycles, fixed %d; expected fewer",
			len(adaptive.Timeline), len(fixed.Timeline))
	}
	if len(adaptive.Timeline) < 3 {
		t.Errorf("adaptive profiled only %d cycles; must still profile occasionally",
			len(adaptive.Timeline))
	}
}

func TestAdaptiveSkipStateMachine(t *testing.T) {
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 1, 43)
	s := htm.NewSystem(e, 1<<14)
	e.Spawn(nil, func(c *sim.Ctx) {
		nl := New(s, c, tle.New(s, c, 0, tle.TLE20()), adaptiveConfig())
		// Same decision repeatedly -> k grows to the cap.
		for i := 0; i < 6; i++ {
			nl.computeBestLockModes(c, stampOf(vtime.Time(i*1000)))
		}
		if k := s.Mem.Raw(nl.profEvery); k != 4 {
			t.Errorf("profEvery = %d after stable streak, want cap 4", k)
		}
		// Force a different decision via the counters: bump socket-0
		// counts far past the warmup threshold for a fresh stamp.
		stamp := stampOf(vtime.Time(777776))
		for tid := 0; tid < 8; tid++ {
			for m := 0; m < 2; m++ {
				s.Mem.SetRaw(nl.acqAddr(tid, m), packAcq(stamp, 500))
			}
		}
		nl.computeBestLockModes(c, stamp)
		if k := s.Mem.Raw(nl.profEvery); k != 1 {
			t.Errorf("profEvery = %d after decision change, want 1", k)
		}
	})
	e.Run()
}
