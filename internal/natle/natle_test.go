package natle

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// testConfig returns a fast NATLE configuration for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ProfilingLen = 30 * vtime.Microsecond
	cfg.QuantumLen = 30 * vtime.Microsecond
	cfg.WarmupThreshold = 16
	return cfg
}

func TestStagePacking(t *testing.T) {
	base := vtime.Time(123456788) // not a multiple of 4
	for stage := uint64(0); stage < 4; stage++ {
		v := packStage(base, stage)
		if stageOf(v) != stage {
			t.Errorf("stageOf(packStage(_, %d)) = %d", stage, stageOf(v))
		}
		if baseOf(v) != uint64(base)&^3 {
			t.Errorf("baseOf lost time bits: %x", baseOf(v))
		}
	}
	// Stage ordering within one base must be monotone, as the CAS
	// protocol in Figures 10-11 relies on numeric comparison.
	for s := uint64(0); s < 3; s++ {
		if packStage(base, s) >= packStage(base, s+1) {
			t.Errorf("packStage not monotone in stage at %d", s)
		}
	}
}

func TestOtherSocketMode(t *testing.T) {
	if got := otherSocketMode(0, 2); got != 1 {
		t.Errorf("otherSocketMode(0,2) = %d, want 1", got)
	}
	if got := otherSocketMode(1, 2); got != 0 {
		t.Errorf("otherSocketMode(1,2) = %d, want 0", got)
	}
}

func TestWarmupThresholdForcesBothSockets(t *testing.T) {
	// With almost no acquisitions during profiling, the decision must
	// default to the all-sockets mode regardless of the split.
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 2, 19)
	s := htm.NewSystem(e, 1<<14)
	cfg := testConfig()
	cfg.WarmupThreshold = 1 << 20 // unreachably high
	e.Spawn(nil, func(c *sim.Ctx) {
		inner := tle.New(s, c, 0, tle.TLE20())
		nl := New(s, c, inner, cfg)
		ctr := s.Alloc(c, 1)
		deadline := c.Now().Add(2 * vtime.Millisecond)
		for c.Now() < deadline {
			nl.Critical(c, func() { s.Write(c, ctr, s.Read(c, ctr)+1) })
			c.Work(50)
		}
		for _, m := range nl.Timeline {
			if m.FastestMode != 2 || m.SlicePerMille != 1000 {
				t.Errorf("cycle %d decided mode %d slice %d below warmup threshold",
					m.Cycle, m.FastestMode, m.SlicePerMille)
			}
		}
		if len(nl.Timeline) == 0 {
			t.Error("no profiling cycles recorded")
		}
	})
	e.Run()
}

func TestSocket0ShareAccounting(t *testing.T) {
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 1, 29)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		nl := New(s, c, tle.New(s, c, 0, tle.TLE20()), testConfig())
		cases := []struct {
			fastest, alternate int
			slice              int64
			want               float64
		}{
			{2, 0, 1000, 1.0}, // both sockets all the time
			{0, 1, 600, 0.6},  // socket 0 gets 60% of each quantum
			{1, 0, 700, 0.3},  // socket 1 fastest; socket 0 gets the rest
		}
		for _, cse := range cases {
			got := nl.socket0Share(cse.fastest, cse.alternate, cse.slice)
			if diff := got - cse.want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("socket0Share(%d,%d,%d) = %v, want %v",
					cse.fastest, cse.alternate, cse.slice, got, cse.want)
			}
		}
	})
	e.Run()
}

func TestProfilingStageRaces(t *testing.T) {
	// Many threads racing into the same profiling phase must leave the
	// stage machine consistent (exactly stage 3 after finalize) and
	// never deadlock.
	const threads = 32
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, 31)
	s := htm.NewSystem(e, 1<<14)
	e.Spawn(nil, func(c *sim.Ctx) {
		nl := New(s, c, tle.New(s, c, 0, tle.TLE20()), testConfig())
		ctr := s.Alloc(c, 1)
		deadline := c.Now().Add(1 * vtime.Millisecond)
		for i := 0; i < threads; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for w.Now() < deadline {
					nl.Critical(w, func() { _ = s.Read(w, ctr) })
					w.Work(5)
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(2 * vtime.Microsecond)
		if st := stageOf(s.Mem.Raw(nl.lastProfStart)); st != 3 && st != 1 {
			t.Errorf("profiling stage machine left in stage %d", st)
		}
	})
	e.Run()
}
