package natle

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// The paper states NATLE extends straightforwardly to more than two
// sockets (one mode per socket plus an all-sockets mode). These tests
// exercise that generalization on a synthetic four-socket machine.

func TestQuadSocketModeCount(t *testing.T) {
	e := sim.New(machine.QuadSocket(), machine.FillSocketFirst{}, 1, 1)
	s := htm.NewSystem(e, 1<<14)
	e.Spawn(nil, func(c *sim.Ctx) {
		nl := New(s, c, tle.New(s, c, 0, tle.TLE20()), testConfig())
		if nl.numModes != 5 {
			t.Errorf("numModes = %d, want 5 (4 sockets + both)", nl.numModes)
		}
	})
	e.Run()
}

func TestQuadSocketProfilingCoversAllModes(t *testing.T) {
	p := machine.QuadSocket()
	e := sim.New(p, machine.FillSocketFirst{}, p.HWThreads(), 3)
	s := htm.NewSystem(e, 1<<16)
	e.Spawn(nil, func(c *sim.Ctx) {
		cfg := testConfig()
		cfg.ProfilingLen = 50 * vtime.Microsecond // 10us per mode
		nl := New(s, c, tle.New(s, c, 0, tle.TLE20()), cfg)
		ctr := s.Alloc(c, 1)
		deadline := c.Now().Add(5 * vtime.Millisecond)
		for i := 0; i < p.HWThreads(); i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for w.Now() < deadline {
					nl.Critical(w, func() { _ = s.Read(w, ctr) })
					w.Work(30)
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(2 * vtime.Microsecond)
		if len(nl.Timeline) < 2 {
			t.Fatalf("only %d cycles", len(nl.Timeline))
		}
		// A read-only workload on four sockets must profile activity in
		// every mode and stay unthrottled.
		last := nl.Timeline[len(nl.Timeline)-1]
		for m, a := range last.Acqs {
			if a == 0 {
				t.Errorf("mode %d profiled zero acquisitions: %v", m, last.Acqs)
			}
		}
		unthrottled := 0
		for _, m := range nl.Timeline[1:] {
			if m.FastestMode == nl.numModes-1 {
				unthrottled++
			}
		}
		if unthrottled*2 < len(nl.Timeline)-1 {
			t.Errorf("read-only quad-socket workload throttled in %d/%d cycles",
				len(nl.Timeline)-1-unthrottled, len(nl.Timeline)-1)
		}
	})
	e.Run()
}

func TestQuadSocketOtherSocketModeCycles(t *testing.T) {
	// On >2 sockets, the alternate mode walks the socket ring.
	if got := otherSocketMode(0, 4); got != 1 {
		t.Errorf("otherSocketMode(0,4) = %d", got)
	}
	if got := otherSocketMode(3, 4); got != 0 {
		t.Errorf("otherSocketMode(3,4) = %d", got)
	}
}
