package htm

import (
	"testing"

	"natle/internal/machine"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// retry keeps attempting a transaction until it commits, with
// exponential backoff so mutually aborting transactions make progress
// (without a fallback lock, best-effort HTM can livelock otherwise).
func retry(s *System, c *sim.Ctx, body func()) {
	backoff := 50 * vtime.Nanosecond
	for {
		if o := s.Try(c, body); o.Committed {
			return
		}
		c.AdvanceIdle(vtime.Duration(c.Intn(int(backoff)) + 1))
		c.Yield()
		if backoff < 100*vtime.Microsecond {
			backoff *= 2
		}
	}
}

func TestTransactionalCounter(t *testing.T) {
	const threads, incrs = 8, 200
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, 1)
	s := NewSystem(e, 1<<12)
	ctr := s.Mem.Alloc(1, 0)
	for i := 0; i < threads; i++ {
		e.Spawn(nil, func(c *sim.Ctx) {
			for j := 0; j < incrs; j++ {
				retry(s, c, func() {
					s.Write(c, ctr, s.Read(c, ctr)+1)
				})
			}
		})
	}
	e.Run()
	if got := s.Mem.Raw(ctr); got != threads*incrs {
		t.Fatalf("counter = %d, want %d (lost updates)", got, threads*incrs)
	}
	if s.Stats.Commits != threads*incrs {
		t.Errorf("commits = %d, want %d", s.Stats.Commits, threads*incrs)
	}
	if s.Stats.Aborts[CodeConflict] == 0 {
		t.Error("expected at least some conflict aborts on a contended counter")
	}
}

func TestBufferedWritesInvisibleUntilCommit(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 2, 3)
	s := NewSystem(e, 1<<10)
	a := s.Mem.Alloc(1, 0)
	s.Mem.SetRaw(a, 7)
	e.Spawn(nil, func(c *sim.Ctx) {
		o := s.Try(c, func() {
			s.Write(c, a, 99)
			if got := s.Read(c, a); got != 99 {
				t.Errorf("tx sees its own write as %d, want 99", got)
			}
			if raw := s.Mem.Raw(a); raw != 7 {
				t.Errorf("buffered write leaked to memory: %d", raw)
			}
			s.Abort(c, CodeExplicit)
		})
		if o.Committed {
			t.Error("transaction committed despite explicit abort")
		}
		if o.Code != CodeExplicit {
			t.Errorf("abort code = %v, want explicit", o.Code)
		}
		if got := s.Mem.Raw(a); got != 7 {
			t.Errorf("memory = %d after abort, want 7", got)
		}
		retry(s, c, func() { s.Write(c, a, 42) })
		if got := s.Mem.Raw(a); got != 42 {
			t.Errorf("memory = %d after commit, want 42", got)
		}
	})
	e.Run()
}

func TestRequesterWinsConflict(t *testing.T) {
	// Thread B (non-transactional) writes a line inside thread A's
	// read set; A must abort with a conflict code and the hint set.
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 2, 5)
	s := NewSystem(e, 1<<10)
	a := s.Mem.Alloc(1, 0)
	flag := make(chan struct{}, 1) // host-side ordering helper
	var outcome Outcome
	e.Spawn(nil, func(c *sim.Ctx) {
		outcome = s.Try(c, func() {
			_ = s.Read(c, a)
			flag <- struct{}{}
			// Give B time to write: advance past B's action.
			for i := 0; i < 50; i++ {
				c.AdvanceIdle(100 * vtime.Nanosecond)
				c.Yield()
			}
			_ = s.Read(c, a) // must observe the abort
		})
	})
	e.Spawn(nil, func(c *sim.Ctx) {
		c.AdvanceIdle(vtime.Microsecond)
		c.Yield()
		s.Write(c, a, 1)
	})
	e.Run()
	<-flag
	if outcome.Committed {
		t.Fatal("reader transaction committed despite conflicting write")
	}
	if outcome.Code != CodeConflict || !outcome.Hint {
		t.Fatalf("outcome = %+v, want conflict with hint set", outcome)
	}
}

func TestWriteCapacityAbort(t *testing.T) {
	p := machine.LargeX52()
	e := sim.New(p, machine.FillSocketFirst{}, 1, 9)
	s := NewSystem(e, 1<<20)
	base := s.Mem.Alloc((p.TxWriteCap+8)*mem.WordsPerLine, 0)
	e.Spawn(nil, func(c *sim.Ctx) {
		o := s.Try(c, func() {
			for i := 0; i <= p.TxWriteCap+1; i++ {
				s.Write(c, base+mem.Addr(i*mem.WordsPerLine), 1)
			}
		})
		if o.Committed {
			t.Error("transaction with oversized write set committed")
		}
		if o.Code != CodeCapacity || o.Hint {
			t.Errorf("outcome = %+v, want capacity abort with hint clear", o)
		}
	})
	e.Run()
	// All buffered writes must have been discarded.
	for i := 0; i <= p.TxWriteCap+1; i++ {
		if v := s.Mem.Raw(base + mem.Addr(i*mem.WordsPerLine)); v != 0 {
			t.Fatalf("aborted write leaked at line %d", i)
		}
	}
}

func TestReadOnlyTransactionsDoNotConflict(t *testing.T) {
	const threads = 16
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, 11)
	s := NewSystem(e, 1<<12)
	a := s.Mem.Alloc(8, 0)
	for i := 0; i < threads; i++ {
		e.Spawn(nil, func(c *sim.Ctx) {
			for j := 0; j < 100; j++ {
				o := s.Try(c, func() {
					for w := 0; w < 8; w++ {
						_ = s.Read(c, a+mem.Addr(w))
					}
				})
				if !o.Committed {
					t.Errorf("read-only transaction aborted: %+v", o)
					return
				}
			}
		})
	}
	e.Run()
	if s.Stats.TotalAborts() != 0 {
		t.Errorf("aborts = %d on a read-only workload, want 0", s.Stats.TotalAborts())
	}
}

func TestCommitDelayWidensContentionWindow(t *testing.T) {
	// The Fig 6 mechanism: the same workload with a long pre-commit
	// delay must suffer a much higher abort rate.
	run := func(delay vtime.Duration) float64 {
		const threads = 8
		e := sim.New(machine.LargeX52(), machine.SingleSocket{}, threads, 21)
		s := NewSystem(e, 1<<14)
		if delay > 0 {
			s.CommitDelay = func(c *sim.Ctx) {
				steps := int(delay / (200 * vtime.Nanosecond))
				for i := 0; i < steps; i++ {
					c.Advance(200 * vtime.Nanosecond)
					c.Checkpoint()
				}
			}
		}
		cells := s.Mem.Alloc(64*mem.WordsPerLine, 0)
		for i := 0; i < threads; i++ {
			e.Spawn(nil, func(c *sim.Ctx) {
				for j := 0; j < 150; j++ {
					cell := cells + mem.Addr(c.Intn(64)*mem.WordsPerLine)
					retry(s, c, func() {
						s.Write(c, cell, s.Read(c, cell)+1)
					})
				}
			})
		}
		e.Run()
		return s.Stats.AbortRate()
	}
	fast, slow := run(0), run(20*vtime.Microsecond)
	if slow < fast*3 && slow < 0.2 {
		t.Errorf("abort rate with delay = %.3f, without = %.3f; expected a large increase", slow, fast)
	}
}

func TestSlotRecycling(t *testing.T) {
	// Spawn far more threads (sequentially) than there are slots.
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 2, 13)
	s := NewSystem(e, 1<<10)
	ctr := s.Mem.Alloc(1, 0)
	e.Spawn(nil, func(c *sim.Ctx) {
		for batch := 0; batch < 40; batch++ {
			for i := 0; i < 8; i++ {
				e.Spawn(c, func(k *sim.Ctx) {
					retry(s, k, func() { s.Write(k, ctr, s.Read(k, ctr)+1) })
				})
			}
			c.WaitOthers(vtime.Microsecond)
		}
	})
	e.Run()
	if got := s.Mem.Raw(ctr); got != 320 {
		t.Fatalf("counter = %d, want 320", got)
	}
}

func TestAvgCommitDurationTracksDelay(t *testing.T) {
	run := func(delay vtime.Duration) vtime.Duration {
		e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 1, 31)
		s := NewSystem(e, 1<<12)
		if delay > 0 {
			s.CommitDelay = func(c *sim.Ctx) { c.AdvanceIdle(delay) }
		}
		e.Spawn(nil, func(c *sim.Ctx) {
			a := s.Alloc(c, 1)
			for i := 0; i < 50; i++ {
				retry(s, c, func() { s.Write(c, a, uint64(i)) })
			}
		})
		e.Run()
		return s.Stats.AvgCommitDuration()
	}
	short := run(0)
	long := run(40 * vtime.Microsecond)
	if short <= 0 || short > vtime.Microsecond {
		t.Errorf("undelayed avg tx length = %v; expected tens of ns", short)
	}
	if long < 40*vtime.Microsecond {
		t.Errorf("delayed avg tx length = %v, want >= 40us", long)
	}
}
