package htm

import (
	"testing"
	"testing/quick"

	"natle/internal/machine"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// TestSerializabilityBankTransfer runs concurrent transactional
// transfers between accounts and checks, both inside read-only
// transactions (snapshot consistency) and at the end (conservation),
// that committed transactions appear atomic.
func TestSerializabilityBankTransfer(t *testing.T) {
	f := func(seed int64) bool {
		const accounts, threads, opsPer = 32, 12, 120
		const initial = 1000
		ok := true
		e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, seed)
		s := NewSystem(e, 1<<14)
		var base mem.Addr
		e.Spawn(nil, func(c *sim.Ctx) {
			base = s.Alloc(c, accounts*mem.WordsPerLine)
			at := func(i int) mem.Addr { return base + mem.Addr(i*mem.WordsPerLine) }
			for i := 0; i < accounts; i++ {
				s.Write(c, at(i), initial)
			}
			for i := 0; i < threads; i++ {
				e.Spawn(c, func(w *sim.Ctx) {
					for j := 0; j < opsPer; j++ {
						if w.Intn(8) == 0 {
							// Read-only audit: the in-transaction sum
							// must equal the invariant.
							var sum uint64
							o := s.Try(w, func() {
								sum = 0
								for i := 0; i < accounts; i++ {
									sum += s.Read(w, at(i))
								}
							})
							if o.Committed && sum != accounts*initial {
								ok = false
							}
							continue
						}
						from, to := w.Intn(accounts), w.Intn(accounts)
						if from == to {
							continue
						}
						amt := uint64(w.Intn(50))
						retryBank(s, w, func() {
							bf := s.Read(w, at(from))
							if bf < amt {
								return
							}
							s.Write(w, at(from), bf-amt)
							s.Write(w, at(to), s.Read(w, at(to))+amt)
						})
					}
				})
			}
			c.SetIdle(true)
			c.WaitOthers(vtime.Microsecond)
			var sum uint64
			for i := 0; i < accounts; i++ {
				sum += s.Mem.Raw(at(i))
			}
			if sum != accounts*initial {
				ok = false
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func retryBank(s *System, c *sim.Ctx, body func()) {
	backoff := 100 * vtime.Nanosecond
	for {
		if o := s.Try(c, body); o.Committed {
			return
		}
		c.AdvanceIdle(vtime.Duration(c.Intn(int(backoff)) + 1))
		c.Yield()
		if backoff < 50*vtime.Microsecond {
			backoff *= 2
		}
	}
}

// TestZombieTransactionCausesNoHarm aborts a transaction from outside
// and lets the victim keep issuing reads; the victim must unwind at
// its next access and must not have aborted anyone else meanwhile.
func TestZombieTransactionCausesNoHarm(t *testing.T) {
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 3, 7)
	s := NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		a := s.Alloc(c, 1)
		b := s.Alloc(c, 1)
		victimAborted := false
		bystanderOK := true
		e.Spawn(c, func(w *sim.Ctx) { // victim
			o := s.Try(w, func() {
				_ = s.Read(w, a)
				for i := 0; i < 1000; i++ {
					w.AdvanceIdle(200 * vtime.Nanosecond)
					w.Checkpoint()
				}
				_ = s.Read(w, b) // must panic here after the abort
				t.Error("zombie transaction executed past its abort point")
			})
			victimAborted = !o.Committed
		})
		e.Spawn(c, func(w *sim.Ctx) { // attacker + bystander
			w.AdvanceIdle(2 * vtime.Microsecond)
			w.Checkpoint()
			s.Write(w, a, 1) // aborts the victim
			// Bystander transaction on b must be untouched by the
			// victim's pending unwind.
			o := s.Try(w, func() { s.Write(w, b, 2) })
			bystanderOK = o.Committed
		})
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
		if !victimAborted {
			t.Error("victim survived a conflicting write")
		}
		if !bystanderOK {
			t.Error("bystander transaction was aborted by a zombie")
		}
	})
	e.Run()
}

// TestAbortStorm injects constant explicit aborts and checks that the
// runtime's bookkeeping (slots, registrations, stats) stays sound.
func TestAbortStorm(t *testing.T) {
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 8, 11)
	s := NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		a := s.Alloc(c, 1)
		for i := 0; i < 8; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < 200; j++ {
					s.Try(w, func() {
						_ = s.Read(w, a)
						s.Write(w, a, 1)
						s.Abort(w, CodeExplicit)
					})
				}
			})
		}
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
		if s.Stats.Commits != 0 {
			t.Errorf("commits = %d, want 0", s.Stats.Commits)
		}
		if s.Stats.Aborts[CodeExplicit] != 8*200 {
			t.Errorf("explicit aborts = %d, want 1600", s.Stats.Aborts[CodeExplicit])
		}
		if got := s.Mem.Raw(a); got != 0 {
			t.Errorf("memory = %d after pure-abort storm, want 0", got)
		}
		// No stale registrations: a fresh transaction must commit.
		o := s.Try(c, func() { s.Write(c, a, 9) })
		if !o.Committed {
			t.Errorf("post-storm transaction failed: %+v", o)
		}
	})
	e.Run()
}

// TestReadCapacityAbort exercises the read-set bound (the write-set
// bound is covered in htm_test.go).
func TestReadCapacityAbort(t *testing.T) {
	p := machine.LargeX52()
	p.TxReadCap = 64 // tighten for test speed
	e := sim.New(p, machine.FillSocketFirst{}, 1, 13)
	s := NewSystem(e, 1<<16)
	e.Spawn(nil, func(c *sim.Ctx) {
		base := s.Alloc(c, 70*mem.WordsPerLine)
		o := s.Try(c, func() {
			for i := 0; i < 66; i++ {
				_ = s.Read(c, base+mem.Addr(i*mem.WordsPerLine))
			}
		})
		if o.Committed || o.Code != CodeCapacity || o.Hint {
			t.Errorf("outcome = %+v, want capacity abort with hint clear", o)
		}
	})
	e.Run()
}

// TestSiblingHalvesCapacity verifies the hyperthread capacity model.
func TestSiblingHalvesCapacity(t *testing.T) {
	p := machine.LargeX52()
	p.TransientEvictProb = 0 // isolate the halving
	run := func(sibling bool) Outcome {
		e := sim.New(p, machine.FillSocketFirst{}, 2, 17)
		s := NewSystem(e, 1<<22)
		var out Outcome
		e.Spawn(nil, func(c *sim.Ctx) {
			// Driver shares core 0 with worker 0 (both pinIdx 0);
			// SetIdle turns the sibling pressure on/off.
			c.SetIdle(!sibling)
			n := p.TxWriteCap/2 + 8 // over half, under full
			base := s.Alloc(c, (n+4)*mem.WordsPerLine)
			e.Spawn(c, func(w *sim.Ctx) {
				out = s.Try(w, func() {
					for i := 0; i < n; i++ {
						s.Write(w, base+mem.Addr(i*mem.WordsPerLine), 1)
					}
				})
			})
			if !sibling {
				c.SetIdle(true)
			}
			c.WaitOthers(vtime.Microsecond)
		})
		e.Run()
		return out
	}
	if o := run(false); !o.Committed {
		t.Errorf("alone: %+v, want commit (under full capacity)", o)
	}
	if o := run(true); o.Committed || o.Code != CodeCapacity {
		t.Errorf("with sibling: %+v, want capacity abort (halved bound)", o)
	}
}
