// Package htm implements a best-effort hardware transactional memory
// on top of the simulated memory (package mem) and cache model
// (package cache), mirroring Intel TSX/RTM as observed on Haswell:
//
//   - conflict detection is eager and at cache-line granularity;
//   - the requester wins: when a thread accesses a line inside another
//     in-flight transaction's write set (or writes a line in its read
//     set), the *other* transaction receives the invalidation and
//     aborts;
//   - transactional writes are buffered and become visible atomically
//     at commit; an aborted transaction's writes are discarded;
//   - an abort carries a condition code (conflict, capacity, explicit,
//     lock-held) and a hint bit indicating whether the hardware thinks
//     a retry may succeed — set for conflicts, clear for capacity;
//   - capacity is bounded by the private-cache-sized write set and a
//     larger read set; when the hyperthread sibling is active both
//     bounds are halved and transactions additionally suffer a small
//     transient-eviction probability, so a transaction may abort with
//     the hint clear and *still* succeed when retried — the effect the
//     paper documents in Figure 2.
//
// Aborts unwind the transaction body with a panic carrying an
// AbortSignal; System.Try recovers it and reports the outcome, which is
// how the lock-elision layers (packages tle and natle) retry.
package htm

import (
	"fmt"
	bits64 "math/bits"

	"natle/internal/cache"
	"natle/internal/fault"
	"natle/internal/machine"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// Code is a transaction abort condition code. Its values mirror
// package telemetry's Code (telemetry must not import htm); the
// natlevet exhaustive analyzer asserts the two constant blocks stay
// value-for-value identical.
//
//natlevet:mirror natle/internal/telemetry.Code
type Code uint8

// Abort condition codes.
const (
	CodeNone     Code = iota
	CodeConflict      // data conflict with another thread
	CodeCapacity      // read/write set overflowed the tracking capacity
	CodeExplicit      // explicit abort (XABORT) by the program
	CodeLockHeld      // explicit abort because the elided lock was held
	numCodes
)

// String returns the name of the abort code.
func (c Code) String() string {
	switch c {
	case CodeNone:
		return "none"
	case CodeConflict:
		return "conflict"
	case CodeCapacity:
		return "capacity"
	case CodeExplicit:
		return "explicit"
	case CodeLockHeld:
		return "lock-held"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// AbortSignal is the panic payload used to unwind an aborted
// transaction body. It is recovered by System.Try.
type AbortSignal struct {
	Code Code
	Hint bool // hardware hint: retry may succeed
}

// Outcome describes one transactional attempt.
type Outcome struct {
	Committed bool
	Code      Code
	Hint      bool
}

// Stats aggregates transaction counters for one System.
type Stats struct {
	Starts  uint64
	Commits uint64
	Aborts  [numCodes]uint64

	// CommitDurTotal accumulates the virtual duration of committed
	// transactions (begin to commit); CommitDurTotal / Commits is the
	// average successful-transaction length the paper reports in the
	// Figure 6 footnote.
	CommitDurTotal vtime.Duration
}

// AvgCommitDuration returns the mean committed-transaction length.
func (s *Stats) AvgCommitDuration() vtime.Duration {
	if s.Commits == 0 {
		return 0
	}
	return s.CommitDurTotal / vtime.Duration(s.Commits)
}

// TotalAborts sums aborts over all condition codes.
func (s *Stats) TotalAborts() uint64 {
	var n uint64
	for _, a := range s.Aborts {
		n += a
	}
	return n
}

// AbortRate returns aborted attempts / started attempts.
func (s *Stats) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(s.Starts)
}

// Sub returns the counter deltas s - t (for windowed measurement).
func (s Stats) Sub(t Stats) Stats { return telemetry.Sub(s, t) }

// String renders the counters compactly for logs and test failures.
func (s Stats) String() string {
	return fmt.Sprintf(
		"starts=%d commits=%d aborts=%d (conflict=%d capacity=%d explicit=%d lock-held=%d) rate=%.1f%% avg-commit=%v",
		s.Starts, s.Commits, s.TotalAborts(),
		s.Aborts[CodeConflict], s.Aborts[CodeCapacity],
		s.Aborts[CodeExplicit], s.Aborts[CodeLockHeld],
		100*s.AbortRate(), s.AvgCommitDuration())
}

// maxSlots bounds concurrently live threads (transaction slots are
// recycled when threads finish).
const maxSlots = 128

// System is the shared-memory + HTM runtime for one simulated machine.
// All simulated data structures, locks, and applications perform their
// shared accesses through it.
type System struct {
	Eng   *sim.Engine
	Mem   *mem.Space
	Cache *cache.Model
	prof  *machine.Profile

	regReaders [][2]uint64 // per line: bitmask of tx slots with the line in their read set
	regWriter  []int16     // per line: tx slot with the line in its write set, or -1

	slotOwner [maxSlots]*txState
	freeSlots []int16

	Stats Stats
	rec   telemetry.Recorder
	inj   fault.Injector // nil = no fault injection (the hot-path default)

	// CommitDelay, if non-nil, is invoked immediately before each
	// transactional commit; it is the injection hook used by the Fig 6
	// experiment (spinning before XEND to widen the contention window).
	CommitDelay func(c *sim.Ctx)

	allocCost vtime.Duration
}

// NewSystem creates the runtime for one engine, with a memory pre-sized
// to capWords.
func NewSystem(e *sim.Engine, capWords int) *System {
	s := &System{
		Eng:       e,
		Mem:       mem.NewSpace(capWords),
		Cache:     cache.New(e.Prof),
		prof:      e.Prof,
		rec:       telemetry.Nop(),
		allocCost: 30 * vtime.Nanosecond,
	}
	for i := maxSlots - 1; i >= 0; i-- {
		s.freeSlots = append(s.freeSlots, int16(i))
	}
	s.Mem.OnGrow = s.ensureLines
	s.ensureLines(s.Mem.Lines())
	e.OnThreadFinish = s.releaseThread
	return s
}

type txState struct {
	slot       int16
	active     bool
	aborted    bool
	code       Code
	hint       bool
	spuriousIn int // accesses until an injected spurious abort (0 = unarmed)
	beginAt    vtime.Time
	lock       telemetry.LockID // elided lock attribution tag (see SetLockTag)

	readLines  []int32
	writeLines []int32
	wbAddr     []mem.Addr
	wbVal      []uint64
	wbIdx      map[mem.Addr]int32
}

func (s *System) state(c *sim.Ctx) *txState {
	if t, ok := c.TxSlot.(*txState); ok {
		return t
	}
	if len(s.freeSlots) == 0 {
		panic("htm: too many concurrently live threads")
	}
	slot := s.freeSlots[len(s.freeSlots)-1]
	s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
	t := &txState{slot: slot, wbIdx: make(map[mem.Addr]int32, 64)}
	s.slotOwner[slot] = t
	c.TxSlot = t
	return t
}

func (s *System) releaseThread(c *sim.Ctx) {
	t, ok := c.TxSlot.(*txState)
	if !ok {
		return
	}
	if t.active {
		s.doAbort(t, CodeExplicit, false)
		t.active = false
	}
	s.slotOwner[t.slot] = nil
	s.freeSlots = append(s.freeSlots, t.slot)
	c.TxSlot = nil
}

func (s *System) ensureLines(n int) {
	s.Cache.EnsureLines(n)
	for len(s.regWriter) < n {
		s.regWriter = append(s.regWriter, -1)
		s.regReaders = append(s.regReaders, [2]uint64{})
	}
}

// Alloc reserves nWords of line-aligned simulated memory homed on the
// calling thread's socket, charging the allocation cost.
func (s *System) Alloc(c *sim.Ctx, nWords int) mem.Addr {
	return s.AllocHome(c, nWords, c.Socket())
}

// AllocHome is Alloc with an explicit home socket.
func (s *System) AllocHome(c *sim.Ctx, nWords, socket int) mem.Addr {
	c.Advance(s.allocCost)
	a := s.Mem.Alloc(nWords, socket)
	s.ensureLines(s.Mem.Lines())
	return a
}

// InTx reports whether the calling thread is inside a transaction.
func (s *System) InTx(c *sim.Ctx) bool { return s.state(c).active }

// Slot returns the thread's dense transaction-slot index in
// [0, MaxThreads). Slots are recycled when threads finish, so they
// serve as per-live-thread ids (NATLE indexes its acquisitions matrix
// with them).
func (s *System) Slot(c *sim.Ctx) int { return int(s.state(c).slot) }

// MaxThreads is the maximum number of concurrently live simulated
// threads supported by one System.
const MaxThreads = maxSlots

// SetRecorder installs the telemetry recorder receiving transaction
// lifecycle events (and cache events, via the cache model). It should
// be installed before any locks are constructed so that their
// RegisterLock calls land in the same recorder. Passing nil restores
// the no-op recorder.
func (s *System) SetRecorder(r telemetry.Recorder) {
	if r == nil {
		r = telemetry.Nop()
	}
	s.rec = r
	s.Cache.Rec = r
}

// Recorder returns the installed telemetry recorder (never nil).
func (s *System) Recorder() telemetry.Recorder { return s.rec }

// SetInjector installs a fault injector (nil disables injection). The
// injector is consulted from the transaction lifecycle, the capacity
// accounting, the cache model's invalidation path, and the fallback
// spin lock; with nil installed each hook is a single pointer check.
func (s *System) SetInjector(inj fault.Injector) {
	s.inj = inj
	s.Cache.Inj = inj
}

// Injector returns the installed fault injector (nil when disabled).
func (s *System) Injector() fault.Injector { return s.inj }

// SetLockTag tags the calling thread's subsequent transactional
// attempts with the given lock id, attributing per-lock telemetry. The
// lock-elision layers set it on entry to their critical sections; the
// tag persists until overwritten, matching "the lock this thread is
// currently eliding".
func (s *System) SetLockTag(c *sim.Ctx, id telemetry.LockID) {
	s.state(c).lock = id
}

// --- conflict bookkeeping ---

func readerBit(slot int16) (int, uint64) { return int(slot >> 6), 1 << uint(slot&63) }

func (s *System) hasReader(line int32, slot int16) bool {
	w, b := readerBit(slot)
	return s.regReaders[line][w]&b != 0
}

// doAbort marks an in-flight transaction aborted (requester-wins) and
// removes its registrations so it causes no further conflicts.
func (s *System) doAbort(t *txState, code Code, hint bool) {
	if t == nil || !t.active || t.aborted {
		return
	}
	t.aborted = true
	t.code = code
	t.hint = hint
	s.Stats.Aborts[code]++
	s.unregister(t)
}

func (s *System) unregister(t *txState) {
	w, b := readerBit(t.slot)
	for _, line := range t.readLines {
		s.regReaders[line][w] &^= b
	}
	for _, line := range t.writeLines {
		if s.regWriter[line] == t.slot {
			s.regWriter[line] = -1
		}
	}
}

// abortConflictors aborts every in-flight transaction (other than the
// one in slot self) that would receive an invalidation from the given
// access: the line's transactional writer always, and for writes also
// every transactional reader.
func (s *System) abortConflictors(line int32, self int16, write bool) {
	if w := s.regWriter[line]; w >= 0 && w != self {
		s.doAbort(s.slotOwner[w], CodeConflict, true)
	}
	if !write {
		return
	}
	r := s.regReaders[line]
	if r[0] == 0 && r[1] == 0 {
		return
	}
	for wi := 0; wi < 2; wi++ {
		bits := r[wi]
		for bits != 0 {
			bit := bits & (-bits)
			bits &^= bit
			slot := int16(wi<<6) | int16(bits64.TrailingZeros64(bit))
			if slot != self {
				s.doAbort(s.slotOwner[slot], CodeConflict, true)
			}
		}
	}
}

// finishAbort completes an abort on the victim's own thread: it
// discards the write buffer, charges the abort cost, and unwinds the
// transaction body.
func (s *System) finishAbort(c *sim.Ctx, t *txState) {
	t.active = false
	s.clearSets(t)
	c.Advance(s.prof.TxAbortCost)
	if s.inj != nil {
		// Lying-hint injection: the condition code is what happened; the
		// hint is only what the hardware *claims* about retrying.
		t.hint = s.inj.AbortHint(c, telemetry.Code(t.code), t.hint)
	}
	s.rec.TxAbort(c.Now(), int(t.slot), c.Socket(), t.lock,
		telemetry.Code(t.code), t.hint, c.Now().Sub(t.beginAt))
	panic(AbortSignal{Code: t.code, Hint: t.hint})
}

func (s *System) clearSets(t *txState) {
	t.readLines = t.readLines[:0]
	t.writeLines = t.writeLines[:0]
	t.wbAddr = t.wbAddr[:0]
	t.wbVal = t.wbVal[:0]
	clear(t.wbIdx)
}

// capacity bounds, halved when the hyperthread sibling is active and
// further squeezed during injected capacity-pressure windows.
func (s *System) caps(c *sim.Ctx) (writeCap, readCap int) {
	writeCap, readCap = s.prof.TxWriteCap, s.prof.TxReadCap
	if c.SiblingActive() {
		writeCap /= 2
		readCap /= 2
	}
	if s.inj != nil {
		writeCap, readCap = s.inj.Caps(c, writeCap, readCap)
	}
	return
}

// trackNewLine performs the capacity accounting for a line newly added
// to the transaction's footprint and triggers a capacity abort (hint
// clear) on overflow or transient eviction.
func (s *System) trackNewLine(c *sim.Ctx, t *txState) {
	writeCap, readCap := s.caps(c)
	if len(t.writeLines) > writeCap || len(t.readLines) > readCap {
		s.doAbort(t, CodeCapacity, false)
		s.finishAbort(c, t)
	}
	if c.SiblingActive() && s.prof.TransientEvictProb > 0 &&
		c.Float64() < s.prof.TransientEvictProb {
		s.doAbort(t, CodeCapacity, false)
		s.finishAbort(c, t)
	}
}

// injTick counts down an armed spurious abort on each transactional
// access and fires it when the countdown ends. Spurious aborts carry
// the conflict code with the hint set, as TSX reports interrupts and
// other environmental aborts; the injector's AbortHint filter may
// still lie about the hint afterwards.
func (s *System) injTick(c *sim.Ctx, t *txState) {
	t.spuriousIn--
	if t.spuriousIn == 0 {
		s.doAbort(t, CodeConflict, true)
		s.finishAbort(c, t)
	}
}

// --- the access API ---

// Read performs one simulated word read, transactional if the thread is
// inside a transaction.
func (s *System) Read(c *sim.Ctx, a mem.Addr) uint64 {
	c.Checkpoint()
	t := s.state(c)
	line := mem.LineOf(a)
	if t.active {
		if t.aborted {
			s.finishAbort(c, t)
		}
		if t.spuriousIn > 0 {
			s.injTick(c, t)
		}
		if i, ok := t.wbIdx[a]; ok {
			c.Advance(s.prof.L1Hit + s.prof.BaseOp)
			return t.wbVal[i]
		}
		s.abortConflictors(line, t.slot, false)
		if !s.hasReader(line, t.slot) {
			w, b := readerBit(t.slot)
			s.regReaders[line][w] |= b
			t.readLines = append(t.readLines, line)
			s.trackNewLine(c, t)
		}
	} else {
		s.abortConflictors(line, t.slot, false)
	}
	lat := s.Cache.Access(c.Now(), c.Core(), c.Socket(), s.Mem.Home(a), line, false)
	c.Advance(lat + s.prof.BaseOp)
	return s.Mem.Raw(a)
}

// Write performs one simulated word write, buffered if transactional.
func (s *System) Write(c *sim.Ctx, a mem.Addr, v uint64) {
	c.Checkpoint()
	t := s.state(c)
	line := mem.LineOf(a)
	if t.active {
		if t.aborted {
			s.finishAbort(c, t)
		}
		if t.spuriousIn > 0 {
			s.injTick(c, t)
		}
		s.abortConflictors(line, t.slot, true)
		if s.regWriter[line] != t.slot {
			s.regWriter[line] = t.slot
			t.writeLines = append(t.writeLines, line)
			s.trackNewLine(c, t)
		}
		if i, ok := t.wbIdx[a]; ok {
			t.wbVal[i] = v
		} else {
			t.wbIdx[a] = int32(len(t.wbAddr))
			t.wbAddr = append(t.wbAddr, a)
			t.wbVal = append(t.wbVal, v)
		}
	} else {
		s.abortConflictors(line, t.slot, true)
		s.Mem.SetRaw(a, v)
	}
	lat := s.Cache.Access(c.Now(), c.Core(), c.Socket(), s.Mem.Home(a), line, true)
	c.Advance(lat + s.prof.BaseOp)
}

// CAS performs a non-transactional atomic compare-and-swap (used by the
// fallback spin lock and by NATLE's profiling state machine). Calling
// it inside a transaction is a programming error.
func (s *System) CAS(c *sim.Ctx, a mem.Addr, old, new uint64) bool {
	t := s.state(c)
	if t.active {
		panic("htm: CAS inside a transaction")
	}
	c.Checkpoint()
	line := mem.LineOf(a)
	s.abortConflictors(line, t.slot, true)
	lat := s.Cache.Access(c.Now(), c.Core(), c.Socket(), s.Mem.Home(a), line, true)
	c.Advance(lat + s.prof.BaseOp)
	if s.Mem.Raw(a) != old {
		return false
	}
	s.Mem.SetRaw(a, new)
	return true
}

// Add performs a non-transactional atomic fetch-and-add and returns the
// new value.
func (s *System) Add(c *sim.Ctx, a mem.Addr, delta uint64) uint64 {
	t := s.state(c)
	if t.active {
		panic("htm: Add inside a transaction")
	}
	c.Checkpoint()
	line := mem.LineOf(a)
	s.abortConflictors(line, t.slot, true)
	lat := s.Cache.Access(c.Now(), c.Core(), c.Socket(), s.Mem.Home(a), line, true)
	c.Advance(lat + s.prof.BaseOp)
	v := s.Mem.Raw(a) + delta
	s.Mem.SetRaw(a, v)
	return v
}

// Abort explicitly aborts the calling thread's transaction with the
// given condition code (XABORT). The hint bit is clear, as on Intel
// explicit aborts.
func (s *System) Abort(c *sim.Ctx, code Code) {
	t := s.state(c)
	if !t.active {
		panic("htm: Abort outside a transaction")
	}
	if !t.aborted {
		s.doAbort(t, code, false)
	}
	s.finishAbort(c, t)
}

func (s *System) begin(c *sim.Ctx, t *txState) {
	if t.active {
		panic("htm: nested transactions are not supported")
	}
	t.active = true
	t.aborted = false
	t.code = CodeNone
	t.hint = false
	t.spuriousIn = 0
	if s.inj != nil {
		t.spuriousIn = s.inj.TxStart(c)
	}
	t.beginAt = c.Now()
	s.Stats.Starts++
	s.rec.TxStart(t.beginAt, int(t.slot), c.Socket(), t.lock)
	c.Advance(s.prof.TxBeginCost)
}

func (s *System) commit(c *sim.Ctx, t *txState) {
	c.Checkpoint()
	if t.aborted {
		s.finishAbort(c, t)
	}
	if s.CommitDelay != nil {
		s.CommitDelay(c)
		c.Checkpoint()
		if t.aborted {
			s.finishAbort(c, t)
		}
	}
	for i, a := range t.wbAddr {
		s.Mem.SetRaw(a, t.wbVal[i])
	}
	readSet, writeSet := len(t.readLines), len(t.writeLines)
	s.unregister(t)
	t.active = false
	s.clearSets(t)
	s.Stats.Commits++
	dur := c.Now().Sub(t.beginAt)
	s.Stats.CommitDurTotal += dur
	s.rec.TxCommit(c.Now(), int(t.slot), c.Socket(), t.lock, dur, readSet, writeSet)
	c.Advance(s.prof.TxCommitCost)
}

// Try runs body inside one best-effort transaction attempt and reports
// the outcome. The body must be restartable: it is unwound on abort and
// may be re-run by the caller.
func (s *System) Try(c *sim.Ctx, body func()) (o Outcome) {
	t := s.state(c)
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(AbortSignal)
			if !ok {
				panic(r)
			}
			o = Outcome{Committed: false, Code: a.Code, Hint: a.Hint}
		}
	}()
	s.begin(c, t)
	body()
	s.commit(c, t)
	return Outcome{Committed: true}
}
