// Package cctsa reproduces the paper's Section 5.3 application: the
// transactified version of ccTSA, a coverage-centric threaded de novo
// sequence assembler [Ahn 2012; Dice, Kogan & Lev 2016]. Unlike the
// original (which shards its hash map over thousands of locks), the
// transactified version stores all subsequences in a single
// lock-protected hash map — the lock this package elides with TLE or
// NATLE.
//
// The paper assembled E. coli reads shipped with the original
// software; that input is proprietary-ish test data, so this package
// generates a synthetic genome and samples reads from it with
// configurable coverage (the substitution preserves the code path:
// every read's k-mers funnel through the one shared map, which is what
// makes the workload NUMA-hostile).
package cctsa

import (
	"fmt"

	"natle/internal/backend"
	"natle/internal/htm"
	"natle/internal/lock"
	"natle/internal/machine"
	"natle/internal/natle"
	"natle/internal/scheme"
	"natle/internal/sim"
	"natle/internal/simmap"
	"natle/internal/vtime"
)

// Config sizes the synthetic assembly job.
type Config struct {
	GenomeLen int // bases in the reference genome
	ReadLen   int // bases per read
	Coverage  int // average read coverage per base
	K         int // subsequence (k-mer) length, <= 32

	Prof    *machine.Profile
	Pin     machine.PinPolicy
	Threads int
	Seed    int64

	Lock  string        // any scheme.Names() entry; "" = "tle"
	NATLE *natle.Config // nil = natle.DefaultConfig
}

// DefaultConfig returns the scaled-down synthetic E. coli stand-in.
func DefaultConfig() Config {
	return Config{
		GenomeLen: 1 << 15,
		ReadLen:   64,
		Coverage:  6,
		K:         16,
	}
}

// Result reports one assembly run.
type Result struct {
	Threads   int
	Runtime   vtime.Duration // data-processing time (generation excluded)
	Contigs   int
	Assembled int // bases covered by the assembled contigs
	KmersSeen uint64

	HTM  htm.Stats
	Sync scheme.Stats // uniform scheme counters (TLE, timeline, extras)
}

// Run generates the synthetic reads and assembles them.
func Run(cfg Config) *Result {
	if cfg.GenomeLen == 0 {
		base := DefaultConfig()
		base.Prof, base.Pin = cfg.Prof, cfg.Pin
		base.Threads, base.Seed = cfg.Threads, cfg.Seed
		base.Lock, base.NATLE = cfg.Lock, cfg.NATLE
		cfg = base
	}
	if cfg.Prof == nil {
		cfg.Prof = machine.LargeX52()
	}
	if cfg.Pin == nil {
		cfg.Pin = machine.FillSocketFirst{}
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Lock == "" {
		cfg.Lock = "tle"
	}
	desc, err := scheme.LookupFor(backend.Sim, cfg.Lock)
	if err != nil {
		panic(fmt.Sprintf("cctsa: %v", err))
	}
	desc = desc.Configure(scheme.Options{NATLE: cfg.NATLE})
	e := sim.New(cfg.Prof, cfg.Pin, cfg.Threads, cfg.Seed)
	sys := htm.NewSystem(e, 1<<22)
	res := &Result{Threads: cfg.Threads}

	e.Spawn(nil, func(c *sim.Ctx) {
		a := newAssembler(cfg, sys, c)
		// The single lock protecting the shared subsequence map.
		cs := desc.New(sys, c, 0)
		started := false
		var start, finish vtime.Time
		done := 0
		for i := 0; i < cfg.Threads; i++ {
			tid := i
			e.Spawn(c, func(w *sim.Ctx) {
				// Align all workers to the common virtual start time
				// (reads are distributed after thread creation).
				w.WaitUntil(500*vtime.Nanosecond, func() bool { return started })
				if d := start.Sub(w.Now()); d > 0 {
					w.AdvanceIdle(d)
					w.Checkpoint()
				}
				a.work(w, cs, tid, cfg.Threads)
				if w.Now() > finish {
					finish = w.Now()
				}
				done++
			})
		}
		start = c.Now()
		started = true
		c.SetIdle(true)
		c.WaitOthers(2 * vtime.Microsecond)
		// Final sequential stage: walk the links into contigs.
		a.assemble(c)
		res.Runtime = finish.Sub(start)
		res.Contigs, res.Assembled = a.contigs, a.assembled
		res.KmersSeen = a.kmersSeen
		res.HTM = sys.Stats
		res.Sync = cs.Stats()
		if err := a.validate(); err != nil {
			panic(fmt.Sprintf("cctsa: validation failed: %v", err))
		}
	})
	e.Run()
	return res
}

type assembler struct {
	cfg Config
	sys *htm.System

	genome []uint8
	reads  []int // read start offsets, sorted order of processing is shuffled

	kmers  *simmap.Map // k-mer -> count (the single shared hash map)
	prefix *simmap.Map // read-prefix k-mer -> read index

	links     []int32 // successor read index per read (host; one writer each)
	kmersSeen uint64

	contigs   int
	assembled int
}

func newAssembler(cfg Config, sys *htm.System, c *sim.Ctx) *assembler {
	a := &assembler{cfg: cfg, sys: sys}
	a.genome = make([]uint8, cfg.GenomeLen)
	for i := range a.genome {
		a.genome[i] = uint8(c.Rand64() & 3)
	}
	nReads := cfg.GenomeLen * cfg.Coverage / cfg.ReadLen
	a.reads = make([]int, nReads)
	for i := range a.reads {
		a.reads[i] = c.Intn(cfg.GenomeLen - cfg.ReadLen)
	}
	a.links = make([]int32, nReads)
	for i := range a.links {
		a.links[i] = -1
	}
	a.kmers = simmap.New(sys, c, 13, 0)
	a.prefix = simmap.New(sys, c, 13, 0)
	return a
}

// kmerAt packs the K bases at offset off into a word.
func (a *assembler) kmerAt(off int) uint64 {
	var v uint64
	for i := 0; i < a.cfg.K; i++ {
		v = v<<2 | uint64(a.genome[off+i])
	}
	return v | 1<<63 // bias so a k-mer of all zeros is distinguishable
}

// work processes this thread's share of the reads: one critical
// section per read inserts all its k-mers into the shared map (the
// long critical sections that make this workload collapse across
// sockets under plain TLE), then a second pass links reads by overlap.
func (a *assembler) work(c *sim.Ctx, cs lock.CS, tid, threads int) {
	per := len(a.reads) / threads
	lo := tid * per
	hi := lo + per
	if tid == threads-1 {
		hi = len(a.reads)
	}
	var seen uint64
	for r := lo; r < hi; r++ {
		off := a.reads[r]
		n := a.cfg.ReadLen - a.cfg.K + 1
		// One short critical section per subsequence insert, as in the
		// transactified ccTSA (the hash map is the only shared state).
		for i := 0; i < n; i += 4 { // k-mer stride 4, as configured in [11]
			km := a.kmerAt(off + i)
			cs.Critical(c, func() { a.kmers.Add(c, km, 1) })
		}
		pk := a.kmerAt(off)
		cs.Critical(c, func() { a.prefix.PutIfAbsent(c, pk, uint64(r)) })
		seen += uint64((n + 3) / 4)
	}
	a.kmersSeen += seen
	for r := lo; r < hi; r++ {
		off := a.reads[r]
		// Overlap: another read whose prefix k-mer starts somewhere in
		// this read's tail.
		tail := off + a.cfg.ReadLen - a.cfg.K
		var next uint64
		found := false
		cs.Critical(c, func() {
			found = false // body may re-execute after an abort
			if v, ok := a.prefix.Get(c, a.kmerAt(tail)); ok && int(v) != r {
				next, found = v, true
			}
		})
		if found {
			a.links[r] = int32(next)
		}
	}
}

// assemble chains reads into contigs (sequential final stage).
func (a *assembler) assemble(c *sim.Ctx) {
	visited := make([]bool, len(a.reads))
	for r := range a.reads {
		if visited[r] {
			continue
		}
		a.contigs++
		length := a.cfg.ReadLen
		cur := r
		for !visited[cur] {
			visited[cur] = true
			nxt := a.links[cur]
			if nxt < 0 || visited[nxt] {
				break
			}
			length += a.cfg.K // each overlap extends the contig
			cur = int(nxt)
		}
		a.assembled += length
		c.Advance(vtime.Duration(length) * vtime.Nanosecond / 16)
	}
}

func (a *assembler) validate() error {
	perRead := (a.cfg.ReadLen - a.cfg.K + 1 + 3) / 4
	want := uint64(len(a.reads) * perRead)
	if a.kmersSeen != want {
		return fmt.Errorf("processed %d k-mers, want %d", a.kmersSeen, want)
	}
	var total uint64
	a.kmers.RawEach(func(_, v uint64) { total += v })
	if total != want {
		return fmt.Errorf("map holds %d k-mer occurrences, want %d", total, want)
	}
	if a.contigs == 0 || a.contigs > len(a.reads) {
		return fmt.Errorf("implausible contig count %d", a.contigs)
	}
	return nil
}
