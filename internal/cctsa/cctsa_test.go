package cctsa

import (
	"testing"

	"natle/internal/natle"
	"natle/internal/vtime"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.GenomeLen = 1 << 12
	cfg.Coverage = 4
	return cfg
}

func TestSingleThreadAssembles(t *testing.T) {
	cfg := smallConfig()
	cfg.Threads = 1
	cfg.Seed = 1
	r := Run(cfg)
	if r.Contigs == 0 {
		t.Error("no contigs assembled")
	}
	if r.KmersSeen == 0 {
		t.Error("no k-mers processed")
	}
	if r.Runtime <= 0 {
		t.Errorf("runtime = %v", r.Runtime)
	}
}

func TestMultiThreadMatchesWorkTotal(t *testing.T) {
	cfg := smallConfig()
	cfg.Threads = 16
	cfg.Seed = 2
	r := Run(cfg) // validation inside Run panics on mismatch
	if r.HTM.Commits == 0 {
		t.Error("no transactions committed")
	}
}

func TestScalesWithinSocket(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 3
	cfg.Threads = 1
	r1 := Run(cfg)
	cfg.Threads = 16
	r16 := Run(cfg)
	if r16.Runtime >= r1.Runtime {
		t.Errorf("16 threads (%v) not faster than 1 (%v)", r16.Runtime, r1.Runtime)
	}
}

func TestNATLEProducesTimeline(t *testing.T) {
	cfg := smallConfig()
	cfg.GenomeLen = 1 << 13
	cfg.Threads = 48
	cfg.Seed = 4
	cfg.Lock = "natle"
	n := natle.DefaultConfig()
	n.ProfilingLen = 30 * vtime.Microsecond
	n.QuantumLen = 30 * vtime.Microsecond
	n.WarmupThreshold = 32
	cfg.NATLE = &n
	r := Run(cfg)
	if len(r.Sync.Timeline) == 0 {
		t.Error("NATLE recorded no cycles (run too short for the configured cycle length?)")
	}
	for _, m := range r.Sync.Timeline {
		if m.Socket0Share < 0 || m.Socket0Share > 1 {
			t.Errorf("socket-0 share %v out of [0,1]", m.Socket0Share)
		}
	}
}

func TestDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Threads = 8
	cfg.Seed = 5
	a, b := Run(cfg), Run(cfg)
	if a.Runtime != b.Runtime || a.Contigs != b.Contigs || a.KmersSeen != b.KmersSeen {
		t.Errorf("identical configs diverged: %+v vs %+v", a, b)
	}
}
