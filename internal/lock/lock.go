// Package lock defines the critical-section abstraction shared by all
// synchronization schemes in this repository (plain spin lock, TLE,
// NATLE, and the no-synchronization baseline). Benchmarks are written
// against this interface so a workload can be run unchanged under any
// scheme — the property that makes TLE and NATLE drop-in lock
// replacements in the paper.
package lock

import (
	"natle/internal/htm"
	"natle/internal/sim"
)

// CS executes critical sections. Implementations must be safe for use
// by any number of simulated threads.
type CS interface {
	// Critical runs body as one critical section. body may be executed
	// more than once (transactional attempts are unwound on abort and
	// retried), so it must be restartable.
	Critical(c *sim.Ctx, body func())
	// Name identifies the scheme in benchmark output.
	Name() string
}

// NoSync runs bodies with no synchronization at all (the unsynchronized
// baseline of the paper's Fig 4 search-and-replace experiment).
type NoSync struct{}

// Critical implements CS.
func (NoSync) Critical(c *sim.Ctx, body func()) { body() }

// Name implements CS.
func (NoSync) Name() string { return "none" }

// Plain guards critical sections with a spin lock and never elides it.
type Plain struct {
	L interface {
		Acquire(c *sim.Ctx)
		Release(c *sim.Ctx)
	}
}

// Critical implements CS.
func (p Plain) Critical(c *sim.Ctx, body func()) {
	p.L.Acquire(c)
	body()
	p.L.Release(c)
}

// Name implements CS.
func (Plain) Name() string { return "lock" }

// Atomic runs each body as a raw best-effort transaction with a simple
// bounded retry and no lock fallback; used by tests that exercise the
// HTM substrate directly. Bodies that repeatedly overflow capacity are
// executed under a global mutex-free last resort: single retry loop
// with backoff (tests keep bodies small enough to commit).
type Atomic struct {
	Sys      *htm.System
	Attempts int
}

// Critical implements CS.
func (a Atomic) Critical(c *sim.Ctx, body func()) {
	n := a.Attempts
	if n <= 0 {
		n = 1 << 20
	}
	for i := 0; i < n; i++ {
		if o := a.Sys.Try(c, body); o.Committed {
			return
		}
	}
	panic("lock.Atomic: transaction never committed")
}

// Name implements CS.
func (Atomic) Name() string { return "htm-raw" }
