package lock

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
	"natle/internal/spinlock"
	"natle/internal/vtime"
)

func TestNoSyncRunsBodyOnce(t *testing.T) {
	n := 0
	NoSync{}.Critical(nil, func() { n++ })
	if n != 1 {
		t.Errorf("body ran %d times", n)
	}
	if (NoSync{}).Name() != "none" {
		t.Error("bad name")
	}
}

func TestPlainSerializes(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 4, 1)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		p := Plain{L: spinlock.New(s, c, 0)}
		ctr := s.Alloc(c, 1)
		for i := 0; i < 4; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < 50; j++ {
					p.Critical(w, func() {
						s.Write(w, ctr, s.Read(w, ctr)+1)
					})
				}
			})
		}
		c.WaitOthers(vtime.Microsecond)
		if got := s.Mem.Raw(ctr); got != 200 {
			t.Errorf("counter = %d, want 200", got)
		}
	})
	e.Run()
}

func TestAtomicRetries(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 2, 3)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		a := Atomic{Sys: s}
		ctr := s.Alloc(c, 1)
		for i := 0; i < 2; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < 100; j++ {
					a.Critical(w, func() {
						s.Write(w, ctr, s.Read(w, ctr)+1)
					})
					w.AdvanceIdle(vtime.Duration(w.Intn(200)) * vtime.Nanosecond)
				}
			})
		}
		c.WaitOthers(vtime.Microsecond)
		if got := s.Mem.Raw(ctr); got != 200 {
			t.Errorf("counter = %d, want 200", got)
		}
	})
	e.Run()
}

func TestAtomicGivesUpAfterAttempts(t *testing.T) {
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 1, 5)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		a := Atomic{Sys: s, Attempts: 3}
		defer func() {
			if recover() == nil {
				t.Error("expected panic after exhausting attempts")
			}
		}()
		a.Critical(c, func() { s.Abort(c, htm.CodeExplicit) })
	})
	e.Run()
}
