package sim

import (
	"testing"

	"natle/internal/machine"
	"natle/internal/vtime"
)

func TestOrderingIsGlobalTimeOrder(t *testing.T) {
	e := New(machine.LargeX52(), machine.FillSocketFirst{}, 4, 1)
	e.Slack = 0 // strict ordering for this test
	var order []int
	var last vtime.Time
	for i := 0; i < 4; i++ {
		id := i
		e.Spawn(nil, func(c *Ctx) {
			for j := 0; j < 50; j++ {
				// Distinct per-thread step sizes interleave the clocks.
				c.AdvanceIdle(vtime.Duration(id+1) * vtime.Nanosecond)
				c.Checkpoint()
				if c.Now() < last {
					t.Errorf("time went backwards: %v after %v", c.Now(), last)
				}
				last = c.Now()
				order = append(order, id)
			}
		})
	}
	e.Run()
	if len(order) != 200 {
		t.Fatalf("expected 200 events, got %d", len(order))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := New(machine.LargeX52(), machine.FillSocketFirst{}, 3, 42)
		var trace []uint64
		for i := 0; i < 3; i++ {
			e.Spawn(nil, func(c *Ctx) {
				for j := 0; j < 100; j++ {
					c.AdvanceIdle(vtime.Duration(1 + c.Intn(100)))
					c.Checkpoint()
					trace = append(trace, uint64(c.ID)<<56|uint64(c.Now()))
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestSpawnFromRunningThread(t *testing.T) {
	e := New(machine.LargeX52(), machine.FillSocketFirst{}, 2, 7)
	childRan := false
	e.Spawn(nil, func(c *Ctx) {
		var atSpawn vtime.Time
		e.Spawn(c, func(k *Ctx) {
			if k.Now() < atSpawn {
				t.Errorf("child started before parent's spawn completed: %v < %v", k.Now(), atSpawn)
			}
			childRan = true
		})
		atSpawn = c.Now()
		c.WaitOthers(vtime.Microsecond)
	})
	e.Run()
	if !childRan {
		t.Fatal("child thread never ran")
	}
}

func TestPinningPlacement(t *testing.T) {
	p := machine.LargeX52()
	fill := machine.FillSocketFirst{}
	// Threads 0..17 on distinct socket-0 cores; 18..35 reuse them;
	// 36..53 on socket 1.
	for i := 0; i < 18; i++ {
		if got := fill.Place(p, i, 72); got != i {
			t.Errorf("fill.Place(%d) = %d, want %d", i, got, i)
		}
		if got := fill.Place(p, i+18, 72); got != i {
			t.Errorf("fill.Place(%d) = %d, want %d (hyperthread)", i+18, got, i)
		}
		if got := fill.Place(p, i+36, 72); got != i+18 {
			t.Errorf("fill.Place(%d) = %d, want %d (socket 1)", i+36, got, i+18)
		}
	}
	alt := machine.Alternating{}
	if s := p.SocketOfCore(alt.Place(p, 0, 8)); s != 0 {
		t.Errorf("alternating thread 0 on socket %d, want 0", s)
	}
	if s := p.SocketOfCore(alt.Place(p, 1, 8)); s != 1 {
		t.Errorf("alternating thread 1 on socket %d, want 1", s)
	}
}

func TestSiblingDetection(t *testing.T) {
	e := New(machine.LargeX52(), machine.FillSocketFirst{}, 19, 5)
	e.Spawn(nil, func(c *Ctx) { // driver: pinIdx 0 → core 0
		var threads []*Ctx
		for i := 0; i < 18; i++ {
			threads = append(threads, e.Spawn(c, func(k *Ctx) {
				k.AdvanceIdle(vtime.Millisecond)
				k.Checkpoint()
			}))
		}
		// Driver shares core 0 with worker pinIdx 0... workers 1..18
		// occupy cores 0..17; with the driver on core 0, core 0 hosts 2.
		if !threads[0].SiblingActive() {
			t.Error("expected sibling on core 0")
		}
		if threads[5].SiblingActive() {
			t.Error("unexpected sibling on core 5")
		}
		c.WaitOthers(vtime.Microsecond)
	})
	e.Run()
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Run")
		}
	}()
	e := New(machine.SmallI7(), machine.FillSocketFirst{}, 2, 1)
	e.Spawn(nil, func(c *Ctx) {
		c.AdvanceIdle(vtime.Microsecond)
		c.Checkpoint()
	})
	e.Spawn(nil, func(c *Ctx) { panic("boom") })
	e.Run()
}
