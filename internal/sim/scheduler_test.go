package sim

import (
	"testing"

	"natle/internal/machine"
	"natle/internal/vtime"
)

func TestUnpinnedSpreadsAcrossSockets(t *testing.T) {
	p := machine.LargeX52()
	e := New(p, machine.Unpinned{}, 8, 1)
	var sockets [2]int
	for i := 0; i < 8; i++ {
		e.Spawn(nil, func(c *Ctx) {
			sockets[c.Socket()]++
			c.AdvanceIdle(vtime.Microsecond)
			c.Checkpoint()
		})
	}
	e.Run()
	if sockets[0] != 4 || sockets[1] != 4 {
		t.Errorf("unpinned initial placement %v, want even split", sockets)
	}
}

func TestUnpinnedMigratesOffOverloadedCore(t *testing.T) {
	p := machine.LargeX52()
	e := New(p, machine.Unpinned{}, 3, 3)
	// Spawn three threads and then force two onto one core; the
	// periodic migration check must rebalance.
	var threads []*Ctx
	for i := 0; i < 3; i++ {
		threads = append(threads, e.Spawn(nil, func(c *Ctx) {
			for j := 0; j < 3000; j++ {
				c.Advance(10 * vtime.Nanosecond)
				c.Checkpoint() // drives the migration check
			}
		}))
	}
	// Manually overload: move thread 1 onto thread 0's core.
	e.coreLoad[threads[1].core]--
	threads[1].core = threads[0].core
	threads[1].socket = threads[0].socket
	e.coreLoad[threads[0].core]++
	e.Run()
	if threads[0].core == threads[1].core {
		t.Error("migration never separated co-located threads")
	}
}

func TestSpawnOnPlacesExactly(t *testing.T) {
	p := machine.LargeX52()
	e := New(p, machine.FillSocketFirst{}, 2, 5)
	e.Spawn(nil, func(c *Ctx) {
		k := e.SpawnOn(c, 23, func(w *Ctx) {
			if w.Core() != 23 {
				t.Errorf("core = %d, want 23", w.Core())
			}
			if w.Socket() != 1 {
				t.Errorf("socket = %d, want 1", w.Socket())
			}
		})
		_ = k
		c.WaitOthers(vtime.Microsecond)
	})
	e.Run()
}

func TestSetIdleTogglesSiblingPressure(t *testing.T) {
	p := machine.LargeX52()
	e := New(p, machine.FillSocketFirst{}, 2, 7)
	e.Spawn(nil, func(c *Ctx) { // driver: core 0
		w := e.Spawn(c, func(w *Ctx) { // worker 0: core 0 too
			w.AdvanceIdle(50 * vtime.Microsecond)
			w.Checkpoint()
		})
		if !w.SiblingActive() {
			t.Error("worker should see the driver as an active sibling")
		}
		c.SetIdle(true)
		if w.SiblingActive() {
			t.Error("idle driver still counted as sibling")
		}
		c.SetIdle(false)
		if !w.SiblingActive() {
			t.Error("un-idled driver not counted again")
		}
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
	})
	e.Run()
}

func TestAdvanceScalesWithSibling(t *testing.T) {
	p := machine.LargeX52()
	e := New(p, machine.FillSocketFirst{}, 2, 9)
	e.Spawn(nil, func(c *Ctx) {
		w := e.Spawn(c, func(w *Ctx) {
			w.AdvanceIdle(100 * vtime.Microsecond)
			w.Checkpoint()
		})
		_ = w
		// Driver shares core 0 with the worker: scaled cost.
		before := c.Now()
		c.Advance(100 * vtime.Nanosecond)
		scaled := c.Now().Sub(before)
		want := vtime.Duration(float64(100*vtime.Nanosecond) * p.SiblingSlowdown)
		if scaled != want {
			t.Errorf("scaled advance = %v, want %v", scaled, want)
		}
		// AdvanceIdle never scales.
		before = c.Now()
		c.AdvanceIdle(100 * vtime.Nanosecond)
		if got := c.Now().Sub(before); got != 100*vtime.Nanosecond {
			t.Errorf("idle advance = %v, want 100ns", got)
		}
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
	})
	e.Run()
}

func TestRandDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) uint64 {
		e := New(machine.SmallI7(), machine.FillSocketFirst{}, 1, seed)
		var v uint64
		e.Spawn(nil, func(c *Ctx) { v = c.Rand64() })
		e.Run()
		return v
	}
	if draw(1) != draw(1) {
		t.Error("same seed produced different draws")
	}
	if draw(1) == draw(2) {
		t.Error("different seeds produced identical draws")
	}
}
