// Package sim implements a deterministic discrete-event simulator for
// the machines described by package machine.
//
// Each simulated hardware thread is executed by its own goroutine, but
// at most one simulated thread runs at any instant: a token is passed
// between goroutines so that shared-memory events are processed in
// strict global virtual-time order. A thread holding the token runs
// freely until its local clock passes that of the earliest waiting
// thread, at which point it yields (Checkpoint). Because execution is
// serialized, all simulator state (cache directory, transaction sets,
// statistics) is mutated without locks, and a run is fully
// deterministic given (profile, seed).
//
// Local computation — external work, spin backoff — only advances the
// local clock and is therefore nearly free in host time.
package sim

import (
	"fmt"

	"natle/internal/machine"
	"natle/internal/vtime"
)

// Engine coordinates the simulated threads of one machine instance.
type Engine struct {
	Prof *machine.Profile

	threads []*Ctx
	heap    []*Ctx // min-heap by (now, ID) of runnable, not-running threads
	live    int

	coreLoad []int // threads assigned per core (live)
	planned  int   // expected thread count, used by pinning policies

	policy machine.PinPolicy
	seed   uint64

	// Slack is the out-of-order tolerance of the event ordering: a
	// running thread keeps the token until its clock exceeds the
	// earliest waiting thread's clock by more than Slack. A small
	// positive slack batches accesses between goroutine handoffs
	// (large host-time savings) at the cost of timing error bounded by
	// Slack; it does not affect determinism.
	Slack vtime.Duration

	done     chan struct{}
	crashed  chan struct{}
	crashVal any
	started  bool

	// OnThreadFinish, if set, is invoked when a simulated thread's
	// function returns (used by the HTM runtime to recycle per-thread
	// transaction slots for dynamically created threads).
	OnThreadFinish func(c *Ctx)
}

// New creates an engine for profile p. planned is the number of worker
// threads the pinning policy should plan for (it may be exceeded);
// seed makes runs reproducible.
func New(p *machine.Profile, policy machine.PinPolicy, planned int, seed int64) *Engine {
	if policy == nil {
		policy = machine.FillSocketFirst{}
	}
	return &Engine{
		Prof:     p,
		coreLoad: make([]int, p.Cores()),
		planned:  planned,
		policy:   policy,
		seed:     uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567,
		done:     make(chan struct{}),
		crashed:  make(chan struct{}),
		Slack:    100 * vtime.Nanosecond,
	}
}

// Ctx is the execution context of one simulated software thread. All
// simulated-memory operations take a Ctx; the Ctx carries the thread's
// virtual clock, placement, and deterministic RNG.
type Ctx struct {
	ID int

	eng    *Engine
	now    vtime.Time
	core   int
	socket int
	rng    uint64
	resume chan struct{}

	pinIdx   int    // index given to the pinning policy
	idle     bool   // excluded from core contention (see SetIdle)
	accesses uint64 // shared-memory accesses, drives periodic migration

	// Payload slots for higher layers (e.g. the HTM runtime keeps its
	// per-thread transaction state here to avoid map lookups).
	TxSlot any
}

// Now returns the thread's local virtual time.
func (c *Ctx) Now() vtime.Time { return c.now }

// Core returns the core the thread currently runs on.
func (c *Ctx) Core() int { return c.core }

// Socket returns the socket the thread currently runs on. This is the
// "library call" NATLE uses (cached and rechecked infrequently by the
// lock itself, as in the paper).
func (c *Ctx) Socket() int { return c.socket }

// Engine returns the owning engine.
func (c *Ctx) Engine() *Engine { return c.eng }

// SiblingActive reports whether another live thread shares this
// thread's core (hyperthread contention).
func (c *Ctx) SiblingActive() bool { return c.eng.coreLoad[c.core] > 1 }

// SetIdle marks the thread as not contending for its core (e.g. a
// driver thread blocked in a join while workers run). An idle thread
// does not count toward hyperthread-sibling contention. It may still
// execute; only its effect on co-located threads changes.
func (c *Ctx) SetIdle(idle bool) {
	if idle == c.idle {
		return
	}
	c.idle = idle
	if idle {
		c.eng.coreLoad[c.core]--
	} else {
		c.eng.coreLoad[c.core]++
	}
}

// Advance adds execution cost d to the local clock, inflated by the
// hyperthread-sibling slowdown when the core is shared.
func (c *Ctx) Advance(d vtime.Duration) {
	if c.SiblingActive() {
		d = d.Scale(c.eng.Prof.SiblingSlowdown)
	}
	c.now = c.now.Add(d)
}

// AdvanceIdle adds waiting time d to the local clock without the
// sibling slowdown (an idle hyperthread does not contend for the core).
func (c *Ctx) AdvanceIdle(d vtime.Duration) { c.now = c.now.Add(d) }

// Work simulates n iterations of the microbenchmarks' external-work
// function.
func (c *Ctx) Work(n int) {
	c.Advance(vtime.Duration(n) * c.eng.Prof.WorkIter)
}

// Rand64 returns the next value of the thread's deterministic RNG
// (xorshift64*).
func (c *Ctx) Rand64() uint64 {
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a deterministic pseudo-random int in [0, n).
func (c *Ctx) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(c.Rand64() % uint64(n))
}

// Float64 returns a deterministic pseudo-random float64 in [0, 1).
func (c *Ctx) Float64() float64 {
	return float64(c.Rand64()>>11) / (1 << 53)
}

// Checkpoint yields the execution token if another runnable thread has
// an earlier virtual time. Every simulated shared-memory access calls
// this before taking effect, which is what gives the simulation its
// strict global ordering.
func (c *Ctx) Checkpoint() {
	e := c.eng
	c.accesses++
	if c.accesses&0x3FF == 0 && e.policy.Dynamic() {
		e.migrate(c)
	}
	if len(e.heap) == 0 {
		return
	}
	if m := e.heap[0]; c.now < m.now.Add(e.Slack) || (c.now == m.now && c.ID < m.ID) {
		return
	}
	e.push(c)
	n := e.pop()
	if n == c {
		return
	}
	n.signal()
	c.wait()
}

// Yield unconditionally offers the token to the earliest waiting
// thread (used by spin loops after advancing their backoff time).
func (c *Ctx) Yield() { c.Checkpoint() }

func (c *Ctx) signal() { c.resume <- struct{}{} }

// crashToken unwinds a goroutine whose engine has crashed elsewhere.
type crashToken struct{}

func (c *Ctx) wait() {
	select {
	case <-c.resume:
	case <-c.eng.crashed:
		panic(crashToken{})
	}
}

// SpawnOn is Spawn with an explicit core assignment, bypassing the
// pinning policy (used by delegation servers and application threads
// that pin themselves).
func (e *Engine) SpawnOn(parent *Ctx, core int, fn func(*Ctx)) *Ctx {
	c := e.Spawn(parent, fn)
	e.coreLoad[c.core]--
	c.core = core
	c.socket = e.Prof.SocketOfCore(core)
	e.coreLoad[core]++
	return c
}

// Spawn creates a simulated thread running fn, placed by the engine's
// pinning policy. When called from a running thread (parent non-nil
// semantics are implicit: Engine tracks the caller via the token), the
// child starts after the configured spawn/pin overhead; the usual
// pattern is to Spawn all workers from a driver thread. Spawn must be
// called either before Run or by the currently running thread.
func (e *Engine) Spawn(parent *Ctx, fn func(*Ctx)) *Ctx {
	c := &Ctx{
		ID:     len(e.threads),
		eng:    e,
		resume: make(chan struct{}),
		pinIdx: 0,
	}
	c.rng = e.seed ^ (uint64(c.ID+1) * 0xD1B54A32D192ED03)
	if c.rng == 0 {
		c.rng = 0x9E3779B97F4A7C15
	}
	// Worker placement: the driver thread (ID 0) does not count toward
	// the pinning sequence, mirroring the benchmark processes where the
	// main thread is unpinned and idle during trials.
	c.pinIdx = len(e.threads) - 1
	if c.pinIdx < 0 {
		c.pinIdx = 0
	}
	if e.policy.Dynamic() {
		c.core = e.leastLoadedCore()
	} else {
		c.core = e.policy.Place(e.Prof, c.pinIdx, e.planned)
	}
	c.socket = e.Prof.SocketOfCore(c.core)
	if parent != nil {
		cost := e.Prof.SpawnOverhead
		if !e.policy.Dynamic() {
			cost += e.Prof.PinOverhead
		}
		parent.Advance(cost)
		c.now = parent.now
	}
	e.threads = append(e.threads, c)
	e.live++
	e.coreLoad[c.core]++
	e.push(c)
	go e.body(c, fn)
	return c
}

func (e *Engine) body(c *Ctx, fn func(*Ctx)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashToken); ok {
				return
			}
			e.crashVal = fmt.Sprintf("sim thread %d: %v", c.ID, r)
			close(e.crashed)
		}
	}()
	c.wait()
	fn(c)
	e.finish(c)
}

func (e *Engine) finish(c *Ctx) {
	if e.OnThreadFinish != nil {
		e.OnThreadFinish(c)
	}
	e.live--
	if !c.idle {
		e.coreLoad[c.core]--
	}
	if e.live == 0 {
		close(e.done)
		return
	}
	if len(e.heap) == 0 {
		e.crashVal = "sim: deadlock — live threads but empty run queue"
		close(e.crashed)
		return
	}
	e.pop().signal()
}

// Live returns the number of simulated threads that have not finished.
func (e *Engine) Live() int { return e.live }

// Threads returns all threads ever spawned (finished or not).
func (e *Engine) Threads() []*Ctx { return e.threads }

// Run drives the simulation until every simulated thread returns. It
// re-panics any panic raised inside a simulated thread.
func (e *Engine) Run() {
	if e.started {
		panic("sim: Run called twice")
	}
	e.started = true
	if len(e.heap) == 0 {
		return
	}
	e.pop().signal()
	select {
	case <-e.done:
	case <-e.crashed:
		panic(e.crashVal)
	}
}

// WaitOthers blocks the calling (driver) thread in virtual time until
// it is the only live thread, polling in poll-sized idle steps.
func (c *Ctx) WaitOthers(poll vtime.Duration) {
	for c.eng.live > 1 {
		c.AdvanceIdle(poll)
		c.Checkpoint()
	}
}

// WaitUntil blocks the calling thread in virtual time until cond()
// becomes true, polling in poll-sized idle steps.
func (c *Ctx) WaitUntil(poll vtime.Duration, cond func() bool) {
	for !cond() {
		c.AdvanceIdle(poll)
		c.Checkpoint()
	}
}

func (e *Engine) leastLoadedCore() int {
	best, bestLoad := 0, int(^uint(0)>>1)
	// Scan sockets round-robin so ties spread across sockets, like the
	// Linux scheduler's even distribution observed in the paper.
	p := e.Prof
	for off := 0; off < p.CoresPerSocket; off++ {
		for s := 0; s < p.Sockets; s++ {
			core := s*p.CoresPerSocket + off
			if e.coreLoad[core] < bestLoad {
				best, bestLoad = core, e.coreLoad[core]
			}
		}
	}
	return best
}

// migrate rebalances thread c to a less-loaded core, charging the OS
// migration cost. Called periodically for dynamic (unpinned) policies.
func (e *Engine) migrate(c *Ctx) {
	best := e.leastLoadedCore()
	if e.coreLoad[best] >= e.coreLoad[c.core]-1 {
		return // not worth moving
	}
	if !c.idle {
		e.coreLoad[c.core]--
		e.coreLoad[best]++
	}
	c.core = best
	c.socket = e.Prof.SocketOfCore(best)
	c.Advance(e.Prof.MigrateCost)
}

// --- min-heap of threads ordered by (now, ID) ---

func lessCtx(a, b *Ctx) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.ID < b.ID
}

func (e *Engine) push(c *Ctx) {
	h := append(e.heap, c)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if lessCtx(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	e.heap = h
}

func (e *Engine) pop() *Ctx {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && lessCtx(h[l], h[small]) {
			small = l
		}
		if r < len(h) && lessCtx(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	e.heap = h
	return top
}
