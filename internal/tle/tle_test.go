package tle

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/vtime"
)

func TestPolicyNames(t *testing.T) {
	cases := []struct {
		pol  Policy
		want string
	}{
		{Policy{Attempts: 20}, "TLE-20"},
		{Policy{Attempts: 5, HonorHint: true}, "TLE-5-hint-bit"},
		{Policy{Attempts: 20, CountLockHeld: true}, "TLE-20-count-lock"},
	}
	for _, c := range cases {
		if got := c.pol.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

// runCounter runs a contended counter under a TLE lock and returns the
// lock for stats inspection.
func runCounter(t *testing.T, pol Policy, threads, iters int) *Lock {
	t.Helper()
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, 7)
	s := htm.NewSystem(e, 1<<12)
	var l *Lock
	total := 0
	e.Spawn(nil, func(c *sim.Ctx) {
		l = New(s, c, 0, pol)
		ctr := s.Alloc(c, 1)
		for i := 0; i < threads; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < iters; j++ {
					l.Critical(w, func() {
						s.Write(w, ctr, s.Read(w, ctr)+1)
					})
				}
			})
		}
		c.WaitOthers(vtime.Microsecond)
		if got := s.Mem.Raw(ctr); got != uint64(threads*iters) {
			t.Errorf("counter = %d, want %d", got, threads*iters)
		}
		total = int(s.Mem.Raw(ctr))
	})
	e.Run()
	_ = total
	return l
}

func TestCriticalSectionAtomicity(t *testing.T) {
	l := runCounter(t, TLE20(), 12, 200)
	if l.Stats.Ops != 12*200 {
		t.Errorf("ops = %d, want %d", l.Stats.Ops, 12*200)
	}
	if l.Stats.Commits+l.Stats.Fallbacks != l.Stats.Ops {
		t.Errorf("commits(%d) + fallbacks(%d) != ops(%d)",
			l.Stats.Commits, l.Stats.Fallbacks, l.Stats.Ops)
	}
}

func TestFallbackProgressUnderMaxContention(t *testing.T) {
	// A single hot counter forces constant conflicts; the lock
	// fallback must still guarantee progress and exact counts.
	runCounter(t, Policy{Attempts: 3}, 24, 100)
}

func TestHonorHintFallsBackOnCapacity(t *testing.T) {
	// A transaction that always overflows the write capacity must fall
	// back after a single attempt under the hint-honoring policy, and
	// after Attempts tries otherwise.
	p := machine.LargeX52()
	run := func(pol Policy) *Lock {
		e := sim.New(p, machine.FillSocketFirst{}, 1, 9)
		s := htm.NewSystem(e, 1<<22)
		var l *Lock
		e.Spawn(nil, func(c *sim.Ctx) {
			l = New(s, c, 0, pol)
			big := s.Alloc(c, (p.TxWriteCap+8)*8)
			l.Critical(c, func() {
				for i := 0; i <= p.TxWriteCap+1; i++ {
					s.Write(c, big+mem.Addr(i*8), 1)
				}
			})
		})
		e.Run()
		return l
	}
	hint := run(Policy{Attempts: 20, HonorHint: true})
	if hint.Stats.Attempts != 1 {
		t.Errorf("hint policy attempts = %d, want 1", hint.Stats.Attempts)
	}
	if hint.Stats.Fallbacks != 1 {
		t.Errorf("hint policy fallbacks = %d, want 1", hint.Stats.Fallbacks)
	}
	plain := run(Policy{Attempts: 20})
	if plain.Stats.Attempts != 20 {
		t.Errorf("plain policy attempts = %d, want 20", plain.Stats.Attempts)
	}
	if plain.Stats.Aborts[htm.CodeCapacity] != 20 {
		t.Errorf("capacity aborts = %d, want 20", plain.Stats.Aborts[htm.CodeCapacity])
	}
}

func TestAntiLemmingDoesNotCountLockHeld(t *testing.T) {
	// While one thread holds the lock for a long time, a TLE thread
	// without CountLockHeld must not burn attempts; with CountLockHeld
	// it must exhaust them and acquire the lock (lemming behaviour).
	run := func(pol Policy) *Lock {
		e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 2, 11)
		s := htm.NewSystem(e, 1<<12)
		var l *Lock
		e.Spawn(nil, func(c *sim.Ctx) {
			l = New(s, c, 0, pol)
			ctr := s.Alloc(c, 1)
			holderDone := false
			e.Spawn(c, func(w *sim.Ctx) { // long lock holder
				l.Inner().Acquire(w)
				w.AdvanceIdle(100 * vtime.Microsecond)
				w.Checkpoint()
				l.Inner().Release(w)
				holderDone = true
			})
			e.Spawn(c, func(w *sim.Ctx) { // elider
				w.AdvanceIdle(2 * vtime.Microsecond) // let the holder take it
				w.Checkpoint()
				l.Critical(w, func() {
					s.Write(w, ctr, s.Read(w, ctr)+1)
				})
				if !pol.CountLockHeld && !holderDone {
					t.Error("anti-lemming elider ran before the lock was released")
				}
			})
			c.WaitOthers(vtime.Microsecond)
		})
		e.Run()
		return l
	}
	anti := run(Policy{Attempts: 5})
	if anti.Stats.Fallbacks != 0 {
		t.Errorf("anti-lemming fallbacks = %d, want 0", anti.Stats.Fallbacks)
	}
	lemming := run(Policy{Attempts: 5, CountLockHeld: true})
	if lemming.Stats.Fallbacks != 1 {
		t.Errorf("count-lock fallbacks = %d, want 1 (lemming)", lemming.Stats.Fallbacks)
	}
}

func TestCommitsAfterNoHintCounting(t *testing.T) {
	// Force one transient capacity failure, then a success; the
	// CommitsAfterNoHint counter (Fig 2b's numerator) must record it.
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 1, 13)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		l := New(s, c, 0, TLE20())
		ctr := s.Alloc(c, 1)
		first := true
		l.Critical(c, func() {
			if first {
				first = false
				s.Abort(c, htm.CodeCapacity)
			}
			s.Write(c, ctr, 1)
		})
		if l.Stats.CommitsAfterNoHint != 1 {
			t.Errorf("CommitsAfterNoHint = %d, want 1", l.Stats.CommitsAfterNoHint)
		}
	})
	e.Run()
}
