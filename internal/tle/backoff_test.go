package tle_test

import (
	"reflect"
	"testing"

	"natle/internal/fault"
	"natle/internal/telemetry"
	"natle/internal/tle"
	"natle/internal/vtime"
	"natle/internal/workload"
)

// seqRand is a deterministic Intn source standing in for a sim thread
// RNG in unit tests.
type seqRand struct{ x uint64 }

func (r *seqRand) Intn(n int) int {
	r.x = r.x*6364136223846793005 + 1442695040888963407
	return int((r.x >> 33) % uint64(n))
}

func TestBackoffBoundsGrowThenSaturate(t *testing.T) {
	b := tle.Backoff{Base: 100 * vtime.Nanosecond, Cap: 800 * vtime.Nanosecond}
	maxSeen := make([]vtime.Duration, 8)
	r := &seqRand{x: 1}
	for draw := 0; draw < 4000; draw++ {
		for a := range maxSeen {
			g := b.Gap(r, a)
			if g < 0 {
				t.Fatalf("negative gap %v at attempt %d", g, a)
			}
			bound := b.Base << a
			if bound > b.Cap {
				bound = b.Cap
			}
			if g >= bound {
				t.Fatalf("attempt %d: gap %v >= bound %v", a, g, bound)
			}
			if g > maxSeen[a] {
				maxSeen[a] = g
			}
		}
	}
	// The observed maxima must actually use the growing bound: each
	// doubling attempt's max should exceed the previous bound, and the
	// cap must bind from attempt 3 on (100<<3 = 800).
	for a := 1; a <= 3; a++ {
		if maxSeen[a] <= maxSeen[0] {
			t.Errorf("attempt %d max %v not larger than attempt 0 max %v",
				a, maxSeen[a], maxSeen[0])
		}
	}
	for a := 3; a < 8; a++ {
		if maxSeen[a] >= b.Cap {
			t.Errorf("attempt %d: max %v at or above cap %v", a, maxSeen[a], b.Cap)
		}
		if maxSeen[a] < b.Cap/2 {
			t.Errorf("attempt %d: max %v never reached the cap region", a, maxSeen[a])
		}
	}
}

func TestBackoffZeroValueUsesDefaults(t *testing.T) {
	var b tle.Backoff
	r := &seqRand{x: 7}
	for i := 0; i < 10000; i++ {
		if g := b.Gap(r, 30); g >= tle.DefaultBackoffCap {
			t.Fatalf("gap %v at or above default cap", g)
		}
	}
	for i := 0; i < 10000; i++ {
		if g := b.Gap(r, 0); g >= tle.DefaultBackoffBase {
			t.Fatalf("first-retry gap %v at or above default base", g)
		}
	}
}

func TestBackoffDeterministic(t *testing.T) {
	b := tle.Backoff{}
	r1, r2 := &seqRand{x: 3}, &seqRand{x: 3}
	for i := 0; i < 1000; i++ {
		if b.Gap(r1, i%10) != b.Gap(r2, i%10) {
			t.Fatalf("gap sequences diverge at %d", i)
		}
	}
}

// TestRetryGapHistogramPinned is the distribution pin: the same
// (profile, seed, schedule) must reproduce the abort→retry gap
// histogram of the telemetry recorder exactly, so any change to the
// backoff draw order or shape is caught as a diff, not as silent
// nondeterminism.
func TestRetryGapHistogramPinned(t *testing.T) {
	run := func() (telemetry.HistogramSnapshot, uint64) {
		rec := telemetry.NewCollector(telemetry.Config{})
		r := workload.Run(workload.Config{
			Threads:   8,
			Seed:      11,
			UpdatePct: 100,
			KeyRange:  128,
			Duration:  300 * vtime.Microsecond,
			Warmup:    50 * vtime.Microsecond,
			Lock:      workload.LockTLE,
			Recorder:  rec,
			Fault:     &fault.Profile{SpuriousAbortRate: 0.002},
		})
		return rec.AbortGap(), r.HTM.Starts
	}
	h1, s1 := run()
	h2, s2 := run()
	if s1 != s2 {
		t.Fatalf("runs diverge: %d vs %d starts", s1, s2)
	}
	if h1.Count() == 0 {
		t.Fatal("no abort→retry gaps recorded; the workload never retried")
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Error("retry-gap histograms diverge across identical runs")
	}
	// The backoff cap bounds every retry gap the policy inserts; the
	// recorded gap additionally contains abort unwinding and (rarely)
	// lock-held waiting, so allow generous headroom while still pinning
	// the distribution's tail to the same order of magnitude.
	if p99 := h1.Quantile(0.99); p99 > 40*vtime.Microsecond {
		t.Errorf("retry-gap p99 %v far above the backoff cap %v", p99, tle.DefaultBackoffCap)
	}
}
