// Package tle implements transactional lock elision [Dice et al. 2009]
// over the simulated HTM: critical sections bracketed by lock
// acquire/release are executed inside hardware transactions, falling
// back to the real lock after repeated failures.
//
// The retry-policy matrix of the paper's Section 3.1 is expressed by
// Policy: the number of transactional attempts, whether a clear
// hardware hint bit forces immediate fallback (the "optimization"
// common on small machines that the paper shows to be harmful on large
// ones), and whether attempts that find the lock held are counted
// (disabling the anti-lemming-effect optimization).
package tle

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/sim"
	"natle/internal/spinlock"
	"natle/internal/telemetry"
)

// DefaultMaxWaits bounds the uncounted anti-lemming deferrals per
// critical section before the starvation watchdog forces the fallback
// lock.
const DefaultMaxWaits = 64

// Policy selects a TLE retry policy.
type Policy struct {
	// Attempts is the number of transactional attempts before falling
	// back to the lock (5 and 20 in the paper).
	Attempts int
	// HonorHint falls back to the lock immediately when a transaction
	// aborts with the hardware hint bit clear (typically overflow).
	HonorHint bool
	// CountLockHeld counts attempts that abort because the lock is
	// held. When false (the default, and the paper's recommendation),
	// such attempts are not counted and the transaction is not retried
	// until the lock is released, avoiding the lemming effect.
	CountLockHeld bool
	// Backoff shapes the randomized delay between an abort and the next
	// transactional attempt (zero value = package defaults).
	Backoff Backoff
	// MaxWaits is the starvation watchdog: the number of uncounted
	// anti-lemming deferrals (lock-held waits and uncounted lock-held
	// aborts) one critical section tolerates before giving up on
	// elision and acquiring the lock. 0 means DefaultMaxWaits; negative
	// disables the watchdog (the pre-hardening unbounded behaviour).
	MaxWaits int
	// Breaker, when non-nil, arms the per-lock HTM circuit breaker:
	// when the windowed abort rate stays pathological the lock degrades
	// to pure mutual exclusion and periodically probes for recovery.
	// A pointer keeps Policy comparable (scheme option merging relies
	// on comparing against the zero Policy).
	Breaker *BreakerConfig
}

// Name returns the paper's name for the policy (e.g. "TLE-20",
// "TLE-5-hint-bit", "TLE-20-count-lock").
func (p Policy) Name() string {
	n := fmt.Sprintf("TLE-%d", p.Attempts)
	if p.HonorHint {
		n += "-hint-bit"
	}
	if p.CountLockHeld {
		n += "-count-lock"
	}
	if p.Breaker != nil {
		n += "-breaker"
	}
	return n
}

// TLE20 is the common policy used throughout the paper's Section 5.
func TLE20() Policy { return Policy{Attempts: 20} }

// Stats counts per-lock elision events.
type Stats struct {
	Ops                  uint64 // critical sections executed
	Attempts             uint64 // transactional attempts
	Commits              uint64
	Aborts               [5]uint64 // by htm.Code
	Fallbacks            uint64    // critical sections that took the lock
	CommitsAfterNoHint   uint64    // commits preceded by >=1 hint-clear abort (Fig 2b)
	LockHeldWaits        uint64    // attempts deferred because the lock was held
	CommitsAfterCapacity uint64    // commits preceded by >=1 capacity abort
	Starvations          uint64    // watchdog-forced fallbacks (wait bound hit)
	BreakerTrips         uint64    // breaker openings
	BreakerProbes        uint64    // half-open probe critical sections
	BreakerRecoveries    uint64    // probes that committed and closed the breaker
	BreakerSkips         uint64    // critical sections sent straight to the lock
}

// Sub returns the counter deltas s - t.
func (s Stats) Sub(t Stats) Stats { return telemetry.Sub(s, t) }

// TotalAborts sums aborts over all condition codes.
func (s *Stats) TotalAborts() uint64 {
	var n uint64
	for _, a := range s.Aborts {
		n += a
	}
	return n
}

// AbortRate returns aborted attempts / started attempts, 0 when no
// attempts were made (matching htm.Stats.AbortRate's guard).
func (s *Stats) AbortRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(s.Attempts)
}

// String renders the counters compactly for logs and test failures.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"ops=%d attempts=%d commits=%d aborts=%d rate=%.1f%% fallbacks=%d lock-held-waits=%d",
		s.Ops, s.Attempts, s.Commits, s.TotalAborts(),
		100*s.AbortRate(), s.Fallbacks, s.LockHeldWaits)
	if s.Starvations > 0 {
		out += fmt.Sprintf(" starvations=%d", s.Starvations)
	}
	if s.BreakerTrips > 0 || s.BreakerSkips > 0 {
		out += fmt.Sprintf(" breaker-trips=%d probes=%d recoveries=%d skips=%d",
			s.BreakerTrips, s.BreakerProbes, s.BreakerRecoveries, s.BreakerSkips)
	}
	return out
}

// Lock is an elidable lock. It implements lock.CS.
type Lock struct {
	sys *htm.System
	sl  *spinlock.Lock
	pol Policy
	id  telemetry.LockID
	br  *breaker // nil unless Policy.Breaker is set

	Stats Stats
}

// New allocates a TLE lock whose lock word is homed on the given
// socket.
func New(sys *htm.System, c *sim.Ctx, socket int, pol Policy) *Lock {
	if pol.Attempts <= 0 {
		pol.Attempts = 20
	}
	l := &Lock{
		sys: sys,
		sl:  spinlock.New(sys, c, socket),
		pol: pol,
		id:  sys.Recorder().RegisterLock(pol.Name()),
	}
	if pol.Breaker != nil {
		l.br = newBreaker(*pol.Breaker)
	}
	return l
}

// BreakerOpen reports whether the circuit breaker is currently open
// (HTM degraded to pure mutual exclusion). Always false without a
// breaker. Tests use this to observe the state machine.
func (l *Lock) BreakerOpen() bool { return l.br != nil && l.br.open }

// TelemetryID returns the lock's id in the telemetry recorder it was
// registered with (NoLock under the no-op recorder).
func (l *Lock) TelemetryID() telemetry.LockID { return l.id }

// Name implements lock.CS.
func (l *Lock) Name() string { return l.pol.Name() }

// Inner returns the fallback spin lock (used by tests).
func (l *Lock) Inner() *spinlock.Lock { return l.sl }

// Critical implements lock.CS: it elides the lock with up to
// Policy.Attempts transactions and falls back to acquiring it. With a
// breaker armed, an open breaker routes the critical section straight
// to the lock (periodically half-opening to probe for HTM recovery);
// the starvation watchdog bounds the otherwise-uncounted anti-lemming
// deferrals so a thread facing a permanently held (or permanently
// aborting) lock still reaches the fallback.
func (l *Lock) Critical(c *sim.Ctx, body func()) {
	l.Stats.Ops++
	l.sys.SetLockTag(c, l.id)

	budget := l.pol.Attempts
	probing := false
	if l.br != nil {
		switch l.br.admit(c.Now()) {
		case admitSkip:
			l.Stats.BreakerSkips++
			l.fallback(c, body)
			return
		case admitProbe:
			probing = true
			l.Stats.BreakerProbes++
			if pa := l.br.cfg.ProbeAttempts; pa < budget {
				budget = pa
			}
		case admitElide:
			// Closed breaker: elide with the full attempt budget.
		}
	}

	maxWaits := l.pol.MaxWaits
	if maxWaits == 0 {
		maxWaits = DefaultMaxWaits
	}

	attempts, waits := 0, 0
	hadNoHint := false
	hadCapacity := false
	committed := false
	starved := false
	for attempts < budget {
		if !l.pol.CountLockHeld && l.sl.Held(c) {
			// Anti-lemming: do not even start a transaction while the
			// lock is held; wait (uncounted) for its release — but only
			// up to the watchdog bound.
			l.Stats.LockHeldWaits++
			if waits++; maxWaits > 0 && waits > maxWaits {
				starved = true
				break
			}
			l.sl.WaitFree(c)
		}
		l.Stats.Attempts++
		o := l.sys.Try(c, func() {
			if l.sl.Held(c) {
				l.sys.Abort(c, htm.CodeLockHeld)
			}
			body()
		})
		if l.br != nil && o.Code != htm.CodeLockHeld {
			// Lock-held aborts say nothing about HTM health, so they do
			// not feed the breaker window. Probe attempts are judged by
			// probeResult below, not by the window (record ignores them
			// while the breaker is open).
			if l.br.record(c.Now(), !o.Committed) {
				l.Stats.BreakerTrips++
				l.sys.Recorder().Breaker(c.Now(), l.sys.Slot(c), c.Socket(), l.id, true)
			}
		}
		if o.Committed {
			committed = true
			l.Stats.Commits++
			if hadNoHint {
				l.Stats.CommitsAfterNoHint++
			}
			if hadCapacity {
				l.Stats.CommitsAfterCapacity++
			}
			break
		}
		l.Stats.Aborts[o.Code]++
		if o.Code == htm.CodeLockHeld {
			if l.pol.CountLockHeld {
				attempts++
			} else if waits++; maxWaits > 0 && waits > maxWaits {
				// An uncounted lock-held abort is also a deferral: bound
				// it, or a held lock plus CountLockHeld=false livelocks.
				starved = true
				break
			}
			// Not counted otherwise; loop re-enters the wait-free path.
			continue
		}
		if o.Code == htm.CodeCapacity {
			hadCapacity = true
		}
		if !o.Hint {
			hadNoHint = true
			if l.pol.HonorHint {
				break
			}
		}
		// Capped exponential backoff with jitter: randomization
		// desynchronizes retrying threads (on real hardware abort
		// handling and scheduling noise do this for free; without it the
		// deterministic simulator produces lock-step retry herds that
		// re-abort each other indefinitely), and the exponential growth
		// sheds offered load while contention persists.
		c.AdvanceIdle(l.pol.Backoff.Gap(c, attempts))
		c.Yield()
		attempts++
	}

	if probing {
		l.br.probeResult(c.Now(), committed)
		if committed {
			l.Stats.BreakerRecoveries++
			l.sys.Recorder().Breaker(c.Now(), l.sys.Slot(c), c.Socket(), l.id, false)
		}
	}
	if committed {
		return
	}
	if starved {
		l.Stats.Starvations++
	}
	l.fallback(c, body)
}

// fallback runs the critical section under the real lock.
func (l *Lock) fallback(c *sim.Ctx, body func()) {
	l.Stats.Fallbacks++
	l.sl.Acquire(c)
	acquiredAt := c.Now()
	body()
	l.sl.Release(c)
	l.sys.Recorder().Fallback(c.Now(), l.sys.Slot(c), c.Socket(), l.id,
		c.Now().Sub(acquiredAt))
}
