// Package tle implements transactional lock elision [Dice et al. 2009]
// over the simulated HTM: critical sections bracketed by lock
// acquire/release are executed inside hardware transactions, falling
// back to the real lock after repeated failures.
//
// The retry-policy matrix of the paper's Section 3.1 is expressed by
// Policy: the number of transactional attempts, whether a clear
// hardware hint bit forces immediate fallback (the "optimization"
// common on small machines that the paper shows to be harmful on large
// ones), and whether attempts that find the lock held are counted
// (disabling the anti-lemming-effect optimization).
package tle

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/sim"
	"natle/internal/spinlock"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// retryJitter bounds the randomized delay inserted between a
// transactional abort and the next attempt.
const retryJitter = 300 * vtime.Nanosecond

// Policy selects a TLE retry policy.
type Policy struct {
	// Attempts is the number of transactional attempts before falling
	// back to the lock (5 and 20 in the paper).
	Attempts int
	// HonorHint falls back to the lock immediately when a transaction
	// aborts with the hardware hint bit clear (typically overflow).
	HonorHint bool
	// CountLockHeld counts attempts that abort because the lock is
	// held. When false (the default, and the paper's recommendation),
	// such attempts are not counted and the transaction is not retried
	// until the lock is released, avoiding the lemming effect.
	CountLockHeld bool
}

// Name returns the paper's name for the policy (e.g. "TLE-20",
// "TLE-5-hint-bit", "TLE-20-count-lock").
func (p Policy) Name() string {
	n := fmt.Sprintf("TLE-%d", p.Attempts)
	if p.HonorHint {
		n += "-hint-bit"
	}
	if p.CountLockHeld {
		n += "-count-lock"
	}
	return n
}

// TLE20 is the common policy used throughout the paper's Section 5.
func TLE20() Policy { return Policy{Attempts: 20} }

// Stats counts per-lock elision events.
type Stats struct {
	Ops                  uint64 // critical sections executed
	Attempts             uint64 // transactional attempts
	Commits              uint64
	Aborts               [5]uint64 // by htm.Code
	Fallbacks            uint64    // critical sections that took the lock
	CommitsAfterNoHint   uint64    // commits preceded by >=1 hint-clear abort (Fig 2b)
	LockHeldWaits        uint64    // attempts deferred because the lock was held
	CommitsAfterCapacity uint64    // commits preceded by >=1 capacity abort
}

// Sub returns the counter deltas s - t.
func (s Stats) Sub(t Stats) Stats { return telemetry.Sub(s, t) }

// TotalAborts sums aborts over all condition codes.
func (s *Stats) TotalAborts() uint64 {
	var n uint64
	for _, a := range s.Aborts {
		n += a
	}
	return n
}

// AbortRate returns aborted attempts / started attempts, 0 when no
// attempts were made (matching htm.Stats.AbortRate's guard).
func (s *Stats) AbortRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(s.Attempts)
}

// String renders the counters compactly for logs and test failures.
func (s Stats) String() string {
	return fmt.Sprintf(
		"ops=%d attempts=%d commits=%d aborts=%d rate=%.1f%% fallbacks=%d lock-held-waits=%d",
		s.Ops, s.Attempts, s.Commits, s.TotalAborts(),
		100*s.AbortRate(), s.Fallbacks, s.LockHeldWaits)
}

// Lock is an elidable lock. It implements lock.CS.
type Lock struct {
	sys *htm.System
	sl  *spinlock.Lock
	pol Policy
	id  telemetry.LockID

	Stats Stats
}

// New allocates a TLE lock whose lock word is homed on the given
// socket.
func New(sys *htm.System, c *sim.Ctx, socket int, pol Policy) *Lock {
	if pol.Attempts <= 0 {
		pol.Attempts = 20
	}
	return &Lock{
		sys: sys,
		sl:  spinlock.New(sys, c, socket),
		pol: pol,
		id:  sys.Recorder().RegisterLock(pol.Name()),
	}
}

// TelemetryID returns the lock's id in the telemetry recorder it was
// registered with (NoLock under the no-op recorder).
func (l *Lock) TelemetryID() telemetry.LockID { return l.id }

// Name implements lock.CS.
func (l *Lock) Name() string { return l.pol.Name() }

// Inner returns the fallback spin lock (used by tests).
func (l *Lock) Inner() *spinlock.Lock { return l.sl }

// Critical implements lock.CS: it elides the lock with up to
// Policy.Attempts transactions and falls back to acquiring it.
func (l *Lock) Critical(c *sim.Ctx, body func()) {
	l.Stats.Ops++
	l.sys.SetLockTag(c, l.id)
	attempts := 0
	hadNoHint := false
	hadCapacity := false
	for attempts < l.pol.Attempts {
		if !l.pol.CountLockHeld {
			// Anti-lemming: do not even start a transaction while the
			// lock is held; wait (uncounted) for its release.
			if l.sl.Held(c) {
				l.Stats.LockHeldWaits++
				l.sl.WaitFree(c)
			}
		}
		l.Stats.Attempts++
		o := l.sys.Try(c, func() {
			if l.sl.Held(c) {
				l.sys.Abort(c, htm.CodeLockHeld)
			}
			body()
		})
		if o.Committed {
			l.Stats.Commits++
			if hadNoHint {
				l.Stats.CommitsAfterNoHint++
			}
			if hadCapacity {
				l.Stats.CommitsAfterCapacity++
			}
			return
		}
		l.Stats.Aborts[o.Code]++
		if o.Code == htm.CodeLockHeld {
			if l.pol.CountLockHeld {
				attempts++
			}
			// Not counted otherwise; loop re-enters the wait-free path.
			continue
		}
		if o.Code == htm.CodeCapacity {
			hadCapacity = true
		}
		if !o.Hint {
			hadNoHint = true
			if l.pol.HonorHint {
				break
			}
		}
		attempts++
		// Randomized retry jitter: abort handling, pipeline refill, and
		// scheduling noise desynchronize retrying threads on real
		// hardware; without it the deterministic simulator produces
		// lock-step retry herds that re-abort each other indefinitely.
		c.AdvanceIdle(vtime.Duration(c.Intn(int(retryJitter))))
		c.Yield()
	}
	l.Stats.Fallbacks++
	l.sl.Acquire(c)
	acquiredAt := c.Now()
	body()
	l.sl.Release(c)
	l.sys.Recorder().Fallback(c.Now(), l.sys.Slot(c), c.Socket(), l.id,
		c.Now().Sub(acquiredAt))
}
