package tle

import "natle/internal/vtime"

// RetryBudget is a windowed token bucket bounding transactional
// retries. The service gives each shard one budget shared by all of
// the shard's servers: every aborted hardware attempt spends a token,
// and once the window's tokens are gone the shard stops elided
// execution (runs its batches under the degraded mutual-exclusion
// scheme) until the next window refills the bucket. Bounding retries
// — rather than attempts — caps the wasted work an abort storm can
// extract from a shard while leaving well-behaved windows untouched.
//
// All methods are called under the simulator's serialization token
// (one shard's servers never run concurrently on the host), so no
// atomics are needed.
type RetryBudget struct {
	budget int
	window vtime.Duration

	tokens    int
	start     vtime.Time
	started   bool
	exhausted uint64 // windows that ran out of tokens
	denied    uint64 // Allow calls refused while exhausted
}

// NewRetryBudget returns a budget of n retry tokens per window. A
// non-positive n or window disables the budget (Allow always grants).
func NewRetryBudget(n int, window vtime.Duration) *RetryBudget {
	return &RetryBudget{budget: n, window: window, tokens: n}
}

// enabled reports whether the budget is live.
func (b *RetryBudget) enabled() bool { return b != nil && b.budget > 0 && b.window > 0 }

// refill rolls the window forward if now has passed its end, restoring
// the full token budget.
//
//natlevet:hotpath
func (b *RetryBudget) refill(now vtime.Time) {
	if !b.started {
		b.start, b.started = now, true
		return
	}
	for now.Sub(b.start) >= b.window {
		b.start = b.start.Add(b.window)
		b.tokens = b.budget
	}
}

// Spend deducts n retry tokens observed since the last call (clamping
// at zero) and records the window as exhausted the moment the bucket
// empties.
//
//natlevet:hotpath
func (b *RetryBudget) Spend(now vtime.Time, n uint64) {
	if !b.enabled() || n == 0 {
		return
	}
	b.refill(now)
	had := b.tokens > 0
	if n > uint64(b.tokens) {
		b.tokens = 0
	} else {
		b.tokens -= int(n)
	}
	if had && b.tokens == 0 {
		b.exhausted++
	}
}

// Allow reports whether elided execution is still within budget at
// now; a refusal is counted as a denied grant.
//
//natlevet:hotpath
func (b *RetryBudget) Allow(now vtime.Time) bool {
	if !b.enabled() {
		return true
	}
	b.refill(now)
	if b.tokens > 0 {
		return true
	}
	b.denied++
	return false
}

// Exhausted returns how many windows ran the bucket dry.
func (b *RetryBudget) Exhausted() uint64 {
	if b == nil {
		return 0
	}
	return b.exhausted
}

// Denied returns how many Allow calls were refused.
func (b *RetryBudget) Denied() uint64 {
	if b == nil {
		return 0
	}
	return b.denied
}
