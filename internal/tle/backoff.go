package tle

import "natle/internal/vtime"

// Default backoff bounds. The base matches the scale of abort-handling
// overhead on real hardware; the cap is chosen so a herd of ~50
// desynchronized threads spreads across a few microseconds without any
// single thread stalling long enough to matter.
const (
	DefaultBackoffBase = 75 * vtime.Nanosecond
	DefaultBackoffCap  = 2400 * vtime.Nanosecond
)

// Backoff is a capped exponential backoff with full jitter: after the
// n-th consecutive abort the retry gap is drawn uniformly from
// [0, min(Base<<n, Cap)). Randomization desynchronizes retrying threads
// (abort handling, pipeline refill, and scheduling noise do this on
// real hardware; without it the deterministic simulator produces
// lock-step retry herds that re-abort each other indefinitely), while
// the exponential growth sheds load when contention persists. The zero
// value uses DefaultBackoffBase/DefaultBackoffCap.
type Backoff struct {
	Base vtime.Duration // first-retry bound (default 75ns)
	Cap  vtime.Duration // bound ceiling (default 2400ns)
}

// Gap returns the randomized delay before retry attempt+1, where
// attempt counts consecutive aborts so far (first retry = 0). The draw
// comes from the calling thread's deterministic RNG.
//
//natlevet:hotpath
func (b Backoff) Gap(c interface{ Intn(int) int }, attempt int) vtime.Duration {
	base, ceil := b.Base, b.Cap
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if ceil <= 0 {
		ceil = DefaultBackoffCap
	}
	bound := base
	// Double per attempt, saturating at the cap (the loop condition also
	// guards the shift against overflow for absurd attempt counts).
	for i := 0; i < attempt && bound < ceil; i++ {
		bound <<= 1
	}
	if bound > ceil {
		bound = ceil
	}
	return vtime.Duration(c.Intn(int(bound)))
}
