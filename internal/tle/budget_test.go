package tle

import (
	"testing"

	"natle/internal/vtime"
)

func TestRetryBudgetSpendAndDeny(t *testing.T) {
	w := 10 * vtime.Microsecond
	b := NewRetryBudget(4, w)
	now := vtime.Time(0)

	if !b.Allow(now) {
		t.Fatal("fresh budget denied")
	}
	b.Spend(now, 3)
	if !b.Allow(now) {
		t.Fatal("denied with tokens remaining")
	}
	b.Spend(now, 5) // over-spend clamps at zero and counts one exhaustion
	if b.Allow(now) {
		t.Fatal("granted with an empty bucket")
	}
	if b.Exhausted() != 1 {
		t.Fatalf("exhausted = %d, want 1", b.Exhausted())
	}
	if b.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", b.Denied())
	}
	// Spending from an already-empty bucket must not double-count the
	// exhaustion.
	b.Spend(now, 1)
	if b.Exhausted() != 1 {
		t.Fatalf("empty-bucket spend re-counted exhaustion: %d", b.Exhausted())
	}
}

func TestRetryBudgetRefills(t *testing.T) {
	w := 10 * vtime.Microsecond
	b := NewRetryBudget(2, w)
	now := vtime.Time(0)
	b.Spend(now, 2)
	if b.Allow(now) {
		t.Fatal("granted after exhausting the window")
	}
	// The next window restores the full budget; several elapsed windows
	// roll forward without accumulating tokens.
	now = now.Add(vtime.Duration(3 * w))
	if !b.Allow(now) {
		t.Fatal("denied after refill")
	}
	b.Spend(now, 1)
	if !b.Allow(now) {
		t.Fatal("refill restored fewer tokens than the budget")
	}
}

func TestRetryBudgetDisabled(t *testing.T) {
	now := vtime.Time(0)
	var nilB *RetryBudget
	if !nilB.Allow(now) {
		t.Fatal("nil budget denied")
	}
	nilB.Spend(now, 10)
	if nilB.Exhausted() != 0 || nilB.Denied() != 0 {
		t.Fatal("nil budget counted activity")
	}
	for _, b := range []*RetryBudget{
		NewRetryBudget(0, 10*vtime.Microsecond),
		NewRetryBudget(4, 0),
	} {
		b.Spend(now, 100)
		if !b.Allow(now) {
			t.Fatal("disabled budget denied")
		}
		if b.Exhausted() != 0 {
			t.Fatal("disabled budget counted exhaustion")
		}
	}
}
