package tle_test

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
	"natle/internal/telemetry"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// flipInjector aborts every transaction on its first access while on,
// and injects nothing while off — the minimal hand-driven fault source
// for the degradation tests.
type flipInjector struct{ on bool }

func (f *flipInjector) TxStart(*sim.Ctx) int { // 1 = abort at first access
	if f.on {
		return 1
	}
	return 0
}
func (f *flipInjector) AbortHint(_ *sim.Ctx, _ telemetry.Code, hint bool) bool { return hint }
func (f *flipInjector) Caps(_ *sim.Ctx, w, r int) (int, int)                   { return w, r }
func (f *flipInjector) InvalDelay(vtime.Time, bool) vtime.Duration             { return 0 }
func (f *flipInjector) CSStall(*sim.Ctx) vtime.Duration                        { return 0 }

// TestBreakerTripsAndRecovers drives the full circuit-breaker cycle:
// under 100% injected aborts every critical section must still
// complete (via the fallback lock) within its bounded attempt budget,
// the breaker must trip and start skipping HTM entirely, and once the
// abort storm stops a recovery probe must close it and restore
// elision.
func TestBreakerTripsAndRecovers(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 1)
	sys := htm.NewSystem(e, 1<<18)
	inj := &flipInjector{on: true}
	sys.SetInjector(inj)

	e.Spawn(nil, func(c *sim.Ctx) {
		br := tle.BreakerConfig{
			Window:        16,
			TripRate:      0.9,
			ProbeAfter:    5 * vtime.Microsecond,
			ProbeAttempts: 2,
		}
		pol := tle.Policy{Attempts: 5, Breaker: &br}
		l := tle.New(sys, c, 0, pol)
		if got := l.Name(); got != "TLE-5-breaker" {
			t.Errorf("policy name %q, want TLE-5-breaker", got)
		}
		addr := sys.Alloc(c, 8)
		body := func(w *sim.Ctx) func() {
			return func() { sys.Write(w, addr, sys.Read(w, addr)+1) }
		}

		const stormOps = 40
		for i := 0; i < stormOps; i++ {
			l.Critical(c, body(c))
		}
		s := l.Stats
		// Progress under total HTM failure: every op completed, all via
		// the lock, each within the bounded attempt budget.
		if s.Ops != stormOps || s.Fallbacks != stormOps {
			t.Errorf("under 100%% aborts: ops=%d fallbacks=%d, want both %d",
				s.Ops, s.Fallbacks, stormOps)
		}
		if s.Attempts > stormOps*uint64(pol.Attempts) {
			t.Errorf("attempt bound violated: %d attempts for %d ops (max %d each)",
				s.Attempts, stormOps, pol.Attempts)
		}
		if s.BreakerTrips == 0 {
			t.Error("breaker never tripped under a 100% abort rate")
		}
		if s.BreakerSkips == 0 {
			t.Error("open breaker never skipped HTM")
		}
		if !l.BreakerOpen() {
			t.Error("breaker closed while the abort storm is still running")
		}
		// Once open, attempts stop: skipped sections burn zero attempts.
		if s.Attempts >= stormOps*uint64(pol.Attempts) {
			t.Errorf("breaker saved no attempts: %d", s.Attempts)
		}

		// Storm over: after the probe interval the next critical section
		// probes, commits, and closes the breaker.
		inj.on = false
		c.AdvanceIdle(br.ProbeAfter + vtime.Microsecond)
		c.Yield()
		for i := 0; i < 20; i++ {
			l.Critical(c, body(c))
		}
		s = l.Stats
		if s.BreakerProbes == 0 {
			t.Error("breaker never probed after the open interval")
		}
		if s.BreakerRecoveries == 0 {
			t.Error("breaker never recovered after the abort storm stopped")
		}
		if l.BreakerOpen() {
			t.Error("breaker still open after successful probe")
		}
		if s.Commits == 0 {
			t.Error("no commits after recovery; elision was not restored")
		}
		// The counter body ran exactly once per op regardless of path.
		if got := sys.Mem.Raw(addr); got != stormOps+20 {
			t.Errorf("critical-section body ran %d times, want %d", got, stormOps+20)
		}
	})
	e.Run()
}

// TestBreakerEmitsTelemetry checks the open/close transitions land in
// the recorder (counters and trace events).
func TestBreakerEmitsTelemetry(t *testing.T) {
	rec := telemetry.NewCollector(telemetry.Config{TraceCap: 1 << 12})
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 1)
	sys := htm.NewSystem(e, 1<<18)
	sys.SetRecorder(rec)
	inj := &flipInjector{on: true}
	sys.SetInjector(inj)

	e.Spawn(nil, func(c *sim.Ctx) {
		br := tle.BreakerConfig{Window: 8, TripRate: 0.9, ProbeAfter: 2 * vtime.Microsecond}
		l := tle.New(sys, c, 0, tle.Policy{Attempts: 4, Breaker: &br})
		addr := sys.Alloc(c, 8)
		for i := 0; i < 10; i++ {
			l.Critical(c, func() { sys.Write(c, addr, 1) })
		}
		inj.on = false
		c.AdvanceIdle(br.ProbeAfter + vtime.Microsecond)
		c.Yield()
		for i := 0; i < 5; i++ {
			l.Critical(c, func() { sys.Write(c, addr, 1) })
		}
	})
	e.Run()

	if rec.Count(telemetry.KindBreakerOpen) == 0 {
		t.Error("no breaker-open events recorded")
	}
	if rec.Count(telemetry.KindBreakerClose) == 0 {
		t.Error("no breaker-close events recorded")
	}
	sum := rec.Summary()
	if sum.BreakerOpens == 0 || sum.BreakerCloses == 0 {
		t.Errorf("summary missing breaker counts: opens=%d closes=%d",
			sum.BreakerOpens, sum.BreakerCloses)
	}
	var open, close bool
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case telemetry.KindBreakerOpen:
			open = true
		case telemetry.KindBreakerClose:
			close = true
		}
	}
	if !open || !close {
		t.Errorf("trace missing breaker events: open=%v close=%v", open, close)
	}
}

// TestWatchdogBoundsLockHeldLivelock: with CountLockHeld=false, a
// critical section whose transactional attempts keep aborting with the
// lock-held code never consumes its attempt budget — before the
// watchdog this was an unbounded livelock. The watchdog must bound the
// uncounted deferrals and force the fallback.
func TestWatchdogBoundsLockHeldLivelock(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 1)
	sys := htm.NewSystem(e, 1<<18)
	e.Spawn(nil, func(c *sim.Ctx) {
		l := tle.New(sys, c, 0, tle.Policy{Attempts: 20, MaxWaits: 8})
		ran := 0
		l.Critical(c, func() {
			if sys.InTx(c) {
				// Every transactional attempt reports the lock held; only
				// the fallback path ever completes the body.
				sys.Abort(c, htm.CodeLockHeld)
			}
			ran++
		})
		s := l.Stats
		if ran != 1 {
			t.Errorf("body ran %d times, want 1", ran)
		}
		if s.Starvations != 1 {
			t.Errorf("starvations=%d, want 1", s.Starvations)
		}
		if s.Fallbacks != 1 {
			t.Errorf("fallbacks=%d, want 1", s.Fallbacks)
		}
		// The deferral count is bounded by MaxWaits (+1 for the attempt
		// that crossed the bound).
		if s.Aborts[htm.CodeLockHeld] > 9 {
			t.Errorf("%d uncounted lock-held aborts; watchdog bound is 8", s.Aborts[htm.CodeLockHeld])
		}
	})
	e.Run()
}

// TestWatchdogDisabled: negative MaxWaits restores the legacy
// unbounded behaviour for CountLockHeld policies that rely on it; here
// the attempt budget still bounds the counted path.
func TestWatchdogDisabledCountsAttempts(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 1)
	sys := htm.NewSystem(e, 1<<18)
	e.Spawn(nil, func(c *sim.Ctx) {
		l := tle.New(sys, c, 0, tle.Policy{Attempts: 6, MaxWaits: -1, CountLockHeld: true})
		ran := 0
		l.Critical(c, func() {
			if sys.InTx(c) {
				sys.Abort(c, htm.CodeLockHeld)
			}
			ran++
		})
		s := l.Stats
		if ran != 1 || s.Fallbacks != 1 {
			t.Errorf("ran=%d fallbacks=%d, want 1/1", ran, s.Fallbacks)
		}
		if s.Starvations != 0 {
			t.Errorf("starvations=%d, want 0 (counted attempts, no watchdog)", s.Starvations)
		}
		if s.Attempts != 6 {
			t.Errorf("attempts=%d, want the full budget 6", s.Attempts)
		}
	})
	e.Run()
}
