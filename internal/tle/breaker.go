package tle

import "natle/internal/vtime"

// BreakerConfig configures the per-lock HTM circuit breaker. When the
// abort rate over a sliding window of attempts stays pathological the
// breaker opens: elision is abandoned and critical sections go straight
// to the fallback lock, which is both faster for the caller (no doomed
// attempts, no backoff) and kinder to the machine (no coherence traffic
// from transactions that cannot commit). After ProbeAfter of virtual
// time the breaker half-opens and lets one critical section probe with
// a few transactional attempts; a probe commit closes the breaker and
// restores full elision, a failed probe re-opens it for another
// ProbeAfter.
type BreakerConfig struct {
	// Window is the number of recent transactional attempts the abort
	// rate is measured over (default 64). The breaker never trips
	// before a full window has been observed.
	Window int
	// TripRate opens the breaker when aborts/attempts over the window
	// reaches it (default 0.95).
	TripRate float64
	// ProbeAfter is how long the breaker stays open before half-opening
	// to probe for recovery (default 50us of virtual time).
	ProbeAfter vtime.Duration
	// ProbeAttempts is the transactional attempt budget of a probing
	// critical section (default 2).
	ProbeAttempts int
}

// DefaultBreakerConfig returns the defaults documented on the fields.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:        64,
		TripRate:      0.95,
		ProbeAfter:    50 * vtime.Microsecond,
		ProbeAttempts: 2,
	}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.TripRate <= 0 {
		c.TripRate = d.TripRate
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = d.ProbeAfter
	}
	if c.ProbeAttempts <= 0 {
		c.ProbeAttempts = d.ProbeAttempts
	}
	return c
}

// breaker is the per-lock circuit-breaker state machine. It is driven
// under the simulator token (one call at a time), so plain fields
// suffice.
type breaker struct {
	cfg BreakerConfig

	// Sliding attempt window: ring[i] is 1 if attempt i aborted.
	ring   []uint8
	head   int
	filled bool
	aborts int // aborted attempts currently in the ring

	open     bool
	openedAt vtime.Time
	probing  bool // a probe critical section is in flight
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, ring: make([]uint8, cfg.Window)}
}

// admission is the breaker's verdict for one critical section.
type admission int

const (
	admitElide admission = iota // closed: full attempt budget
	admitProbe                  // half-open: ProbeAttempts budget
	admitSkip                   // open: straight to the fallback lock
)

// admit decides how the critical section starting at now may use HTM.
func (b *breaker) admit(now vtime.Time) admission {
	if !b.open {
		return admitElide
	}
	if !b.probing && now.Sub(b.openedAt) >= b.cfg.ProbeAfter {
		b.probing = true
		return admitProbe
	}
	return admitSkip
}

// record feeds one transactional attempt outcome into the window and
// reports whether the breaker tripped on this attempt.
func (b *breaker) record(now vtime.Time, aborted bool) (tripped bool) {
	b.aborts -= int(b.ring[b.head])
	if aborted {
		b.ring[b.head] = 1
		b.aborts++
	} else {
		b.ring[b.head] = 0
	}
	b.head++
	if b.head == len(b.ring) {
		b.head = 0
		b.filled = true
	}
	if b.open || !b.filled {
		return false
	}
	if float64(b.aborts) >= b.cfg.TripRate*float64(len(b.ring)) {
		b.trip(now)
		return true
	}
	return false
}

// trip opens the breaker and resets the window so a later close starts
// measuring afresh.
func (b *breaker) trip(now vtime.Time) {
	b.open = true
	b.openedAt = now
	b.probing = false
	b.reset()
}

// probeResult reports the outcome of a probing critical section:
// committed closes the breaker, anything else re-opens it for another
// ProbeAfter.
func (b *breaker) probeResult(now vtime.Time, committed bool) {
	b.probing = false
	if committed {
		b.open = false
		b.reset()
	} else {
		b.openedAt = now
	}
}

func (b *breaker) reset() {
	for i := range b.ring {
		b.ring[i] = 0
	}
	b.head, b.aborts, b.filled = 0, 0, false
}
