package tle

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/telemetry"
	"natle/internal/vtime"
)

// TestTelemetryMatchesLegacyStats hammers one htm.System from many
// simulated threads through two TLE locks and asserts that the
// telemetry collector reproduces the legacy Stats counters exactly:
// every started transaction is conserved as exactly one commit or one
// abort, per cause, per lock, per socket.
func TestTelemetryMatchesLegacyStats(t *testing.T) {
	const threads, iters = 36, 40
	const words = 12 // per-critical footprint, spread over several lines
	col := telemetry.NewCollector(telemetry.Config{TraceCap: 1 << 14})
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, threads, 11)
	s := htm.NewSystem(e, 1<<12)
	s.SetRecorder(col)

	var l1, l2 *Lock
	e.Spawn(nil, func(c *sim.Ctx) {
		l1 = New(s, c, 0, Policy{Attempts: 20})
		l2 = New(s, c, 0, Policy{Attempts: 2})
		arr1 := s.Alloc(c, 8*words)
		arr2 := s.Alloc(c, 8*words)
		for i := 0; i < threads; i++ {
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < iters; j++ {
					l, arr := l1, arr1
					if j%3 == 0 {
						l, arr = l2, arr2
					}
					l.Critical(w, func() {
						// Walk a multi-line footprint so transactions
						// overlap in virtual time and genuinely
						// conflict.
						for k := 0; k < words; k++ {
							a := arr + mem.Addr(8*((k*7+j)%words))
							s.Write(w, a, s.Read(w, a)+1)
						}
					})
				}
			})
		}
		c.WaitOthers(vtime.Microsecond)
	})
	e.Run()

	// Global counters must match the legacy htm.Stats exactly.
	if got, want := col.Starts(), s.Stats.Starts; got != want {
		t.Errorf("telemetry starts = %d, legacy %d", got, want)
	}
	if got, want := col.Commits(), s.Stats.Commits; got != want {
		t.Errorf("telemetry commits = %d, legacy %d", got, want)
	}
	for code := telemetry.Code(0); code < telemetry.NumCodes; code++ {
		if got, want := col.Aborts(code), s.Stats.Aborts[code]; got != want {
			t.Errorf("telemetry aborts[%v] = %d, legacy %d", code, got, want)
		}
	}
	if got, want := col.CommitDurTotal(), s.Stats.CommitDurTotal; got != want {
		t.Errorf("telemetry commit duration total = %v, legacy %v", got, want)
	}

	// Conservation: every started attempt ends in exactly one commit or
	// one abort.
	if col.Starts() != col.Commits()+col.TotalAborts() {
		t.Errorf("starts %d != commits %d + aborts %d",
			col.Starts(), col.Commits(), col.TotalAborts())
	}
	if s.Stats.Starts != s.Stats.Commits+s.Stats.TotalAborts() {
		t.Errorf("legacy starts %d != commits %d + aborts %d",
			s.Stats.Starts, s.Stats.Commits, s.Stats.TotalAborts())
	}
	if col.Fallbacks() != l1.Stats.Fallbacks+l2.Stats.Fallbacks {
		t.Errorf("telemetry fallbacks = %d, legacy %d + %d",
			col.Fallbacks(), l1.Stats.Fallbacks, l2.Stats.Fallbacks)
	}

	// Cache counters must match the legacy cache.Stats views.
	cs := s.Cache.Stats
	if got, want := col.RemoteCacheMisses(), cs.RemoteHits+cs.DRAMAccesses; got > want {
		// Remote misses are remote transfers plus remote-homed DRAM
		// fills; they can never exceed the sum of both legacy pools.
		t.Errorf("remote cache misses = %d > legacy bound %d", got, want)
	}
	if got, want := col.RemoteCacheInvals(), cs.RemoteInvals; got != want {
		t.Errorf("remote cache invals = %d, legacy %d", got, want)
	}

	// Per-lock attribution: each lock's cells (summed over sockets)
	// must reproduce that lock's own tle.Stats.
	for _, l := range []*Lock{l1, l2} {
		var sum telemetry.LockCell
		for _, ls := range col.Locks() {
			if ls.ID == l.TelemetryID() {
				sum = ls.Total()
			}
		}
		if sum.Starts != l.Stats.Attempts {
			t.Errorf("%s: telemetry starts = %d, tle attempts %d",
				l.Name(), sum.Starts, l.Stats.Attempts)
		}
		if sum.Commits != l.Stats.Commits {
			t.Errorf("%s: telemetry commits = %d, tle commits %d",
				l.Name(), sum.Commits, l.Stats.Commits)
		}
		if sum.Fallbacks != l.Stats.Fallbacks {
			t.Errorf("%s: telemetry fallbacks = %d, tle fallbacks %d",
				l.Name(), sum.Fallbacks, l.Stats.Fallbacks)
		}
		for code, n := range l.Stats.Aborts {
			if sum.Aborts[code] != n {
				t.Errorf("%s: telemetry aborts[%d] = %d, tle %d",
					l.Name(), code, sum.Aborts[code], n)
			}
		}
	}

	// The work must actually have contended: a quiet run would make the
	// equalities above vacuous.
	if col.TotalAborts() == 0 || col.Fallbacks() == 0 {
		t.Fatalf("workload did not contend (aborts=%d fallbacks=%d); raise threads/iters",
			col.TotalAborts(), col.Fallbacks())
	}
	// Every critical section completes exactly once: as a transactional
	// commit or as a fallback acquisition.
	if got, want := col.Commits()+col.Fallbacks(), uint64(threads*iters); got != want {
		t.Errorf("commits %d + fallbacks %d = %d, want %d criticals",
			col.Commits(), col.Fallbacks(), got, want)
	}
}
