package sets

import (
	"fmt"

	"natle/internal/arena"
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Leaf-oriented BST node layout: one cache line per node. A node is a
// leaf iff its left child is nil (internal nodes always have exactly
// two children).
const (
	lbKey   = 0
	lbLeft  = 1
	lbRight = 2
	lbWords = 3
)

func lbKeyOf[M arena.Mem](m M, n uint64) int64    { return int64(m.Load(n + lbKey)) }
func lbLeftOf[M arena.Mem](m M, n uint64) uint64  { return m.Load(n + lbLeft) }
func lbRightOf[M arena.Mem](m M, n uint64) uint64 { return m.Load(n + lbRight) }

func lbContains[M arena.Mem](m M, root uint64, key int64) bool {
	n := m.Load(root)
	if n == arena.Nil {
		return false
	}
	for {
		l := lbLeftOf(m, n)
		if l == arena.Nil {
			return lbKeyOf(m, n) == key
		}
		if key < lbKeyOf(m, n) {
			n = l
		} else {
			n = lbRightOf(m, n)
		}
	}
}

func lbSearchReplace[M arena.Mem](m M, root uint64, key int64) {
	n := m.Load(root)
	if n == arena.Nil {
		return
	}
	for {
		l := lbLeftOf(m, n)
		if l == arena.Nil {
			m.Store(n+lbKey, uint64(lbKeyOf(m, n)))
			return
		}
		if key < lbKeyOf(m, n) {
			n = l
		} else {
			n = lbRightOf(m, n)
		}
	}
}

func lbNewLeaf[M arena.Mem](m M, key int64) uint64 {
	n := m.Alloc(lbWords)
	m.Store(n+lbKey, uint64(key))
	return n
}

func lbInsert[M arena.Mem](m M, root uint64, key int64) bool {
	n := m.Load(root)
	if n == arena.Nil {
		leaf := lbNewLeaf(m, key)
		m.Store(root, leaf)
		return true
	}
	var p uint64 // parent internal node (nil while n is the root)
	var fromLeft bool
	for {
		l := lbLeftOf(m, n)
		if l == arena.Nil {
			break
		}
		p = n
		if key < lbKeyOf(m, n) {
			fromLeft, n = true, l
		} else {
			fromLeft, n = false, lbRightOf(m, n)
		}
	}
	lk := lbKeyOf(m, n)
	if lk == key {
		return false
	}
	// Replace leaf n with an internal router over {n, new leaf}.
	nl := lbNewLeaf(m, key)
	in := m.Alloc(lbWords)
	if key < lk {
		m.Store(in+lbKey, uint64(lk))
		m.Store(in+lbLeft, nl)
		m.Store(in+lbRight, n)
	} else {
		m.Store(in+lbKey, uint64(key))
		m.Store(in+lbLeft, n)
		m.Store(in+lbRight, nl)
	}
	switch {
	case p == arena.Nil:
		m.Store(root, in)
	case fromLeft:
		m.Store(p+lbLeft, in)
	default:
		m.Store(p+lbRight, in)
	}
	return true
}

func lbDelete[M arena.Mem](m M, root uint64, key int64) bool {
	n := m.Load(root)
	if n == arena.Nil {
		return false
	}
	var g, p uint64 // grandparent, parent
	var pFromLeft, nFromLeft bool
	for {
		l := lbLeftOf(m, n)
		if l == arena.Nil {
			break
		}
		g, pFromLeft = p, nFromLeft
		p = n
		if key < lbKeyOf(m, n) {
			nFromLeft, n = true, l
		} else {
			nFromLeft, n = false, lbRightOf(m, n)
		}
	}
	if lbKeyOf(m, n) != key {
		return false
	}
	if p == arena.Nil { // n was the root leaf
		m.Store(root, arena.Nil)
		return true
	}
	sibling := lbRightOf(m, p)
	if !nFromLeft {
		sibling = lbLeftOf(m, p)
	}
	switch {
	case g == arena.Nil:
		m.Store(root, sibling)
	case pFromLeft:
		m.Store(g+lbLeft, sibling)
	default:
		m.Store(g+lbRight, sibling)
	}
	return true
}

// lbKeys is the raw in-order walk of leaves (validation only).
func lbKeys[M arena.Mem](m M, root uint64) []int64 {
	var out []int64
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == arena.Nil {
			return
		}
		l := m.Load(n + lbLeft)
		if l == arena.Nil {
			out = append(out, int64(m.Load(n+lbKey)))
			return
		}
		walk(l)
		walk(m.Load(n + lbRight))
	}
	walk(m.Load(root))
	return out
}

// lbCheck validates: internal nodes have two children, left subtrees
// hold keys < router, right subtrees keys >= router (validation only).
func lbCheck[M arena.Mem](m M, root uint64) error {
	var check func(n uint64, lo, hi int64) error
	check = func(n uint64, lo, hi int64) error {
		if n == arena.Nil {
			return nil
		}
		k := int64(m.Load(n + lbKey))
		l := m.Load(n + lbLeft)
		r := m.Load(n + lbRight)
		if l == arena.Nil {
			if r != arena.Nil {
				return fmt.Errorf("leafbst: half-internal node %d", k)
			}
			if k < lo || k >= hi {
				return fmt.Errorf("leafbst: leaf %d outside [%d, %d)", k, lo, hi)
			}
			return nil
		}
		if r == arena.Nil {
			return fmt.Errorf("leafbst: internal node %d missing right child", k)
		}
		if k < lo || k > hi {
			return fmt.Errorf("leafbst: router %d outside [%d, %d]", k, lo, hi)
		}
		if err := check(l, lo, k); err != nil {
			return err
		}
		return check(r, k, hi)
	}
	return check(m.Load(root), -1<<62, 1<<62)
}

// LeafBST is an unbalanced leaf-oriented (external) binary search
// tree: keys live only in leaves and internal nodes route searches
// (key < node.key goes left, otherwise right). Updates replace a leaf
// or an internal node just above a leaf, so writes never touch the top
// of the tree — the structural property the paper predicts (and Fig 7
// confirms) makes it far less NUMA-sensitive than the AVL tree.
type LeafBST struct {
	sys  *htm.System
	root mem.Addr // word holding the root node's address
}

// NewLeafBST creates an empty leaf-oriented BST.
func NewLeafBST(sys *htm.System, c *sim.Ctx) *LeafBST {
	return &LeafBST{sys: sys, root: sys.AllocHome(c, 1, 0)}
}

// Name implements Set.
func (t *LeafBST) Name() string { return "leafbst" }

// Contains implements Set.
func (t *LeafBST) Contains(c *sim.Ctx, key int64) bool {
	return lbContains(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// SearchReplace implements Set.
func (t *LeafBST) SearchReplace(c *sim.Ctx, key int64) {
	lbSearchReplace(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Insert implements Set.
func (t *LeafBST) Insert(c *sim.Ctx, key int64) bool {
	return lbInsert(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Delete implements Set.
func (t *LeafBST) Delete(c *sim.Ctx, key int64) bool {
	return lbDelete(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Keys implements Set (raw in-order walk of leaves; validation only).
func (t *LeafBST) Keys() []int64 {
	return lbKeys(arena.SimRaw{Space: t.sys.Mem}, uint64(t.root))
}

// CheckInvariants implements Set: internal nodes have two children,
// left subtrees hold keys < router, right subtrees keys >= router.
func (t *LeafBST) CheckInvariants() error {
	return lbCheck(arena.SimRaw{Space: t.sys.Mem}, uint64(t.root))
}
