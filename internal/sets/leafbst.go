package sets

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Leaf-oriented BST node layout: one cache line per node. A node is a
// leaf iff its left child is nil (internal nodes always have exactly
// two children).
const (
	lbKey   = 0
	lbLeft  = 1
	lbRight = 2
	lbWords = 3
)

// LeafBST is an unbalanced leaf-oriented (external) binary search
// tree: keys live only in leaves and internal nodes route searches
// (key < node.key goes left, otherwise right). Updates replace a leaf
// or an internal node just above a leaf, so writes never touch the top
// of the tree — the structural property the paper predicts (and Fig 7
// confirms) makes it far less NUMA-sensitive than the AVL tree.
type LeafBST struct {
	sys  *htm.System
	root mem.Addr // word holding the root node's address
}

// NewLeafBST creates an empty leaf-oriented BST.
func NewLeafBST(sys *htm.System, c *sim.Ctx) *LeafBST {
	return &LeafBST{sys: sys, root: sys.AllocHome(c, 1, 0)}
}

// Name implements Set.
func (t *LeafBST) Name() string { return "leafbst" }

func (t *LeafBST) key(c *sim.Ctx, n mem.Addr) int64 {
	return int64(t.sys.Read(c, n+lbKey))
}
func (t *LeafBST) left(c *sim.Ctx, n mem.Addr) mem.Addr {
	return mem.Addr(t.sys.Read(c, n+lbLeft))
}
func (t *LeafBST) right(c *sim.Ctx, n mem.Addr) mem.Addr {
	return mem.Addr(t.sys.Read(c, n+lbRight))
}

// Contains implements Set.
func (t *LeafBST) Contains(c *sim.Ctx, key int64) bool {
	n := mem.Addr(t.sys.Read(c, t.root))
	if n == mem.Nil {
		return false
	}
	for {
		l := t.left(c, n)
		if l == mem.Nil {
			return t.key(c, n) == key
		}
		if key < t.key(c, n) {
			n = l
		} else {
			n = t.right(c, n)
		}
	}
}

// SearchReplace implements Set.
func (t *LeafBST) SearchReplace(c *sim.Ctx, key int64) {
	n := mem.Addr(t.sys.Read(c, t.root))
	if n == mem.Nil {
		return
	}
	for {
		l := t.left(c, n)
		if l == mem.Nil {
			t.sys.Write(c, n+lbKey, uint64(t.key(c, n)))
			return
		}
		if key < t.key(c, n) {
			n = l
		} else {
			n = t.right(c, n)
		}
	}
}

// Insert implements Set.
func (t *LeafBST) Insert(c *sim.Ctx, key int64) bool {
	n := mem.Addr(t.sys.Read(c, t.root))
	if n == mem.Nil {
		leaf := t.newLeaf(c, key)
		t.sys.Write(c, t.root, uint64(leaf))
		return true
	}
	var p mem.Addr // parent internal node (nil while n is the root)
	var fromLeft bool
	for {
		l := t.left(c, n)
		if l == mem.Nil {
			break
		}
		p = n
		if key < t.key(c, n) {
			fromLeft, n = true, l
		} else {
			fromLeft, n = false, t.right(c, n)
		}
	}
	lk := t.key(c, n)
	if lk == key {
		return false
	}
	// Replace leaf n with an internal router over {n, new leaf}.
	nl := t.newLeaf(c, key)
	in := t.sys.Alloc(c, lbWords)
	if key < lk {
		t.sys.Write(c, in+lbKey, uint64(lk))
		t.sys.Write(c, in+lbLeft, uint64(nl))
		t.sys.Write(c, in+lbRight, uint64(n))
	} else {
		t.sys.Write(c, in+lbKey, uint64(key))
		t.sys.Write(c, in+lbLeft, uint64(n))
		t.sys.Write(c, in+lbRight, uint64(nl))
	}
	switch {
	case p == mem.Nil:
		t.sys.Write(c, t.root, uint64(in))
	case fromLeft:
		t.sys.Write(c, p+lbLeft, uint64(in))
	default:
		t.sys.Write(c, p+lbRight, uint64(in))
	}
	return true
}

func (t *LeafBST) newLeaf(c *sim.Ctx, key int64) mem.Addr {
	n := t.sys.Alloc(c, lbWords)
	t.sys.Write(c, n+lbKey, uint64(key))
	return n
}

// Delete implements Set.
func (t *LeafBST) Delete(c *sim.Ctx, key int64) bool {
	n := mem.Addr(t.sys.Read(c, t.root))
	if n == mem.Nil {
		return false
	}
	var g, p mem.Addr // grandparent, parent
	var pFromLeft, nFromLeft bool
	for {
		l := t.left(c, n)
		if l == mem.Nil {
			break
		}
		g, pFromLeft = p, nFromLeft
		p = n
		if key < t.key(c, n) {
			nFromLeft, n = true, l
		} else {
			nFromLeft, n = false, t.right(c, n)
		}
	}
	if t.key(c, n) != key {
		return false
	}
	if p == mem.Nil { // n was the root leaf
		t.sys.Write(c, t.root, uint64(mem.Nil))
		return true
	}
	sibling := t.right(c, p)
	if !nFromLeft {
		sibling = t.left(c, p)
	}
	switch {
	case g == mem.Nil:
		t.sys.Write(c, t.root, uint64(sibling))
	case pFromLeft:
		t.sys.Write(c, g+lbLeft, uint64(sibling))
	default:
		t.sys.Write(c, g+lbRight, uint64(sibling))
	}
	return true
}

// Keys implements Set (raw in-order walk of leaves; validation only).
func (t *LeafBST) Keys() []int64 {
	raw := t.sys.Mem
	var out []int64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == mem.Nil {
			return
		}
		l := mem.Addr(raw.Raw(n + lbLeft))
		if l == mem.Nil {
			out = append(out, int64(raw.Raw(n+lbKey)))
			return
		}
		walk(l)
		walk(mem.Addr(raw.Raw(n + lbRight)))
	}
	walk(mem.Addr(raw.Raw(t.root)))
	return out
}

// CheckInvariants implements Set: internal nodes have two children,
// left subtrees hold keys < router, right subtrees keys >= router.
func (t *LeafBST) CheckInvariants() error {
	raw := t.sys.Mem
	var check func(n mem.Addr, lo, hi int64) error
	check = func(n mem.Addr, lo, hi int64) error {
		if n == mem.Nil {
			return nil
		}
		k := int64(raw.Raw(n + lbKey))
		l := mem.Addr(raw.Raw(n + lbLeft))
		r := mem.Addr(raw.Raw(n + lbRight))
		if l == mem.Nil {
			if r != mem.Nil {
				return fmt.Errorf("leafbst: half-internal node %d", k)
			}
			if k < lo || k >= hi {
				return fmt.Errorf("leafbst: leaf %d outside [%d, %d)", k, lo, hi)
			}
			return nil
		}
		if r == mem.Nil {
			return fmt.Errorf("leafbst: internal node %d missing right child", k)
		}
		if k < lo || k > hi {
			return fmt.Errorf("leafbst: router %d outside [%d, %d]", k, lo, hi)
		}
		if err := check(l, lo, k); err != nil {
			return err
		}
		return check(r, k, hi)
	}
	return check(mem.Addr(raw.Raw(t.root)), -1<<62, 1<<62)
}
