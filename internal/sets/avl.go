package sets

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// AVL node layout: one cache line per node.
const (
	avlKey    = 0 // int64
	avlLeft   = 1 // mem.Addr
	avlRight  = 2 // mem.Addr
	avlHeight = 3 // int64 (leaf = 1)
	avlWords  = 4
)

// AVL is a height-balanced binary search tree [Adelson-Velsky & Landis
// 1962]. Most updates touch only a few nodes near the leaves, but
// occasional rebalances rotate interior nodes — including the root —
// which is what makes the AVL tree the paper's prime example of a
// NUMA-sensitive structure.
type AVL struct {
	sys  *htm.System
	root mem.Addr // word holding the root node's address
}

// NewAVL creates an empty AVL tree with its root pointer on socket 0.
func NewAVL(sys *htm.System, c *sim.Ctx) *AVL {
	return &AVL{sys: sys, root: sys.AllocHome(c, 1, 0)}
}

// Name implements Set.
func (t *AVL) Name() string { return "avl" }

func (t *AVL) rd(c *sim.Ctx, a mem.Addr, f mem.Addr) uint64 {
	return t.sys.Read(c, a+f)
}
func (t *AVL) wr(c *sim.Ctx, a mem.Addr, f mem.Addr, v uint64) {
	t.sys.Write(c, a+f, v)
}
func (t *AVL) key(c *sim.Ctx, n mem.Addr) int64      { return int64(t.rd(c, n, avlKey)) }
func (t *AVL) left(c *sim.Ctx, n mem.Addr) mem.Addr  { return mem.Addr(t.rd(c, n, avlLeft)) }
func (t *AVL) right(c *sim.Ctx, n mem.Addr) mem.Addr { return mem.Addr(t.rd(c, n, avlRight)) }

func (t *AVL) height(c *sim.Ctx, n mem.Addr) int64 {
	if n == mem.Nil {
		return 0
	}
	return int64(t.rd(c, n, avlHeight))
}

// Contains implements Set.
func (t *AVL) Contains(c *sim.Ctx, key int64) bool {
	n := mem.Addr(t.sys.Read(c, t.root))
	for n != mem.Nil {
		k := t.key(c, n)
		switch {
		case key == k:
			return true
		case key < k:
			n = t.left(c, n)
		default:
			n = t.right(c, n)
		}
	}
	return false
}

// SearchReplace implements Set.
func (t *AVL) SearchReplace(c *sim.Ctx, key int64) {
	n := mem.Addr(t.sys.Read(c, t.root))
	last := mem.Nil
	for n != mem.Nil {
		last = n
		k := t.key(c, n)
		if key == k {
			break
		}
		if key < k {
			n = t.left(c, n)
		} else {
			n = t.right(c, n)
		}
	}
	if last != mem.Nil {
		t.wr(c, last, avlKey, uint64(t.key(c, last)))
	}
}

// Insert implements Set.
func (t *AVL) Insert(c *sim.Ctx, key int64) bool {
	var stack [64]mem.Addr
	depth := 0
	n := mem.Addr(t.sys.Read(c, t.root))
	for n != mem.Nil {
		stack[depth] = n
		depth++
		k := t.key(c, n)
		if key == k {
			return false
		}
		if key < k {
			n = t.left(c, n)
		} else {
			n = t.right(c, n)
		}
	}
	nn := t.sys.Alloc(c, avlWords)
	t.wr(c, nn, avlKey, uint64(key))
	t.wr(c, nn, avlHeight, 1)
	if depth == 0 {
		t.sys.Write(c, t.root, uint64(nn))
		return true
	}
	p := stack[depth-1]
	if key < t.key(c, p) {
		t.wr(c, p, avlLeft, uint64(nn))
	} else {
		t.wr(c, p, avlRight, uint64(nn))
	}
	t.rebalance(c, stack[:depth])
	return true
}

// Delete implements Set.
func (t *AVL) Delete(c *sim.Ctx, key int64) bool {
	var stack [64]mem.Addr
	depth := 0
	n := mem.Addr(t.sys.Read(c, t.root))
	for n != mem.Nil {
		stack[depth] = n
		depth++
		k := t.key(c, n)
		if key == k {
			break
		}
		if key < k {
			n = t.left(c, n)
		} else {
			n = t.right(c, n)
		}
	}
	if n == mem.Nil {
		return false
	}
	// If n has two children, copy in the successor's key and splice
	// out the successor instead (an interior write that may touch a
	// node high in the tree).
	if t.left(c, n) != mem.Nil && t.right(c, n) != mem.Nil {
		m := t.right(c, n)
		stack[depth] = m
		depth++
		for {
			l := t.left(c, m)
			if l == mem.Nil {
				break
			}
			m = l
			stack[depth] = m
			depth++
		}
		t.wr(c, n, avlKey, uint64(t.key(c, m)))
		n = m
	}
	// n now has at most one child; splice it out.
	repl := t.left(c, n)
	if repl == mem.Nil {
		repl = t.right(c, n)
	}
	depth-- // pop n
	if depth == 0 {
		t.sys.Write(c, t.root, uint64(repl))
		return true
	}
	p := stack[depth-1]
	if t.left(c, p) == n {
		t.wr(c, p, avlLeft, uint64(repl))
	} else {
		t.wr(c, p, avlRight, uint64(repl))
	}
	t.rebalance(c, stack[:depth])
	return true
}

// rebalance walks the access path bottom-up, refreshing heights and
// rotating where the balance factor exceeds one. It stops early when a
// node's height is unchanged and needs no rotation — the property that
// keeps most AVL updates near the leaves.
func (t *AVL) rebalance(c *sim.Ctx, stack []mem.Addr) {
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		lh := t.height(c, t.left(c, n))
		rh := t.height(c, t.right(c, n))
		bf := lh - rh
		if bf > 1 || bf < -1 {
			sub := t.rotate(c, n, bf)
			if i == 0 {
				t.sys.Write(c, t.root, uint64(sub))
			} else {
				p := stack[i-1]
				if t.left(c, p) == n {
					t.wr(c, p, avlLeft, uint64(sub))
				} else {
					t.wr(c, p, avlRight, uint64(sub))
				}
			}
			continue
		}
		nh := max64(lh, rh) + 1
		if int64(t.rd(c, n, avlHeight)) == nh {
			return // height unchanged: no ancestor can change
		}
		t.wr(c, n, avlHeight, uint64(nh))
	}
}

// rotate restores balance at n (bf is its balance factor) and returns
// the new subtree root with all heights fixed.
func (t *AVL) rotate(c *sim.Ctx, n mem.Addr, bf int64) mem.Addr {
	if bf > 1 {
		l := t.left(c, n)
		if t.height(c, t.left(c, l)) < t.height(c, t.right(c, l)) {
			t.wr(c, n, avlLeft, uint64(t.rotLeft(c, l)))
		}
		return t.rotRight(c, n)
	}
	r := t.right(c, n)
	if t.height(c, t.right(c, r)) < t.height(c, t.left(c, r)) {
		t.wr(c, n, avlRight, uint64(t.rotRight(c, r)))
	}
	return t.rotLeft(c, n)
}

func (t *AVL) fixHeight(c *sim.Ctx, n mem.Addr) {
	h := max64(t.height(c, t.left(c, n)), t.height(c, t.right(c, n))) + 1
	if int64(t.rd(c, n, avlHeight)) != h {
		t.wr(c, n, avlHeight, uint64(h))
	}
}

func (t *AVL) rotRight(c *sim.Ctx, n mem.Addr) mem.Addr {
	l := t.left(c, n)
	t.wr(c, n, avlLeft, uint64(t.right(c, l)))
	t.fixHeight(c, n)
	t.wr(c, l, avlRight, uint64(n))
	t.fixHeight(c, l)
	return l
}

func (t *AVL) rotLeft(c *sim.Ctx, n mem.Addr) mem.Addr {
	r := t.right(c, n)
	t.wr(c, n, avlRight, uint64(t.left(c, r)))
	t.fixHeight(c, n)
	t.wr(c, r, avlLeft, uint64(n))
	t.fixHeight(c, r)
	return r
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Keys implements Set (raw in-order walk; validation only).
func (t *AVL) Keys() []int64 {
	var out []int64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == mem.Nil {
			return
		}
		walk(mem.Addr(t.sys.Mem.Raw(n + avlLeft)))
		out = append(out, int64(t.sys.Mem.Raw(n+avlKey)))
		walk(mem.Addr(t.sys.Mem.Raw(n + avlRight)))
	}
	walk(mem.Addr(t.sys.Mem.Raw(t.root)))
	return out
}

// CheckInvariants implements Set: BST ordering, correct stored heights,
// and balance factors within [-1, 1] at every node.
func (t *AVL) CheckInvariants() error {
	raw := t.sys.Mem
	var check func(n mem.Addr, lo, hi int64) (int64, error)
	check = func(n mem.Addr, lo, hi int64) (int64, error) {
		if n == mem.Nil {
			return 0, nil
		}
		k := int64(raw.Raw(n + avlKey))
		if k < lo || k > hi {
			return 0, fmt.Errorf("avl: key %d outside (%d, %d)", k, lo, hi)
		}
		lh, err := check(mem.Addr(raw.Raw(n+avlLeft)), lo, k-1)
		if err != nil {
			return 0, err
		}
		rh, err := check(mem.Addr(raw.Raw(n+avlRight)), k+1, hi)
		if err != nil {
			return 0, err
		}
		h := max64(lh, rh) + 1
		if stored := int64(raw.Raw(n + avlHeight)); stored != h {
			return 0, fmt.Errorf("avl: node %d stored height %d, actual %d", k, stored, h)
		}
		if bf := lh - rh; bf > 1 || bf < -1 {
			return 0, fmt.Errorf("avl: node %d unbalanced (bf=%d)", k, bf)
		}
		return h, nil
	}
	_, err := check(mem.Addr(raw.Raw(t.root)), -1<<62, 1<<62)
	return err
}
