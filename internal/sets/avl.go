package sets

import (
	"fmt"

	"natle/internal/arena"
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// AVL node layout: one cache line per node.
const (
	avlKey    = 0 // int64
	avlLeft   = 1 // node address
	avlRight  = 2 // node address
	avlHeight = 3 // int64 (leaf = 1)
	avlWords  = 4
)

func avlKeyOf[M arena.Mem](m M, n uint64) int64   { return int64(m.Load(n + avlKey)) }
func avlLeftOf[M arena.Mem](m M, n uint64) uint64 { return m.Load(n + avlLeft) }
func avlRightOf[M arena.Mem](m M, n uint64) uint64 {
	return m.Load(n + avlRight)
}

func avlHeightOf[M arena.Mem](m M, n uint64) int64 {
	if n == arena.Nil {
		return 0
	}
	return int64(m.Load(n + avlHeight))
}

func avlContains[M arena.Mem](m M, root uint64, key int64) bool {
	n := m.Load(root)
	for n != arena.Nil {
		k := avlKeyOf(m, n)
		switch {
		case key == k:
			return true
		case key < k:
			n = avlLeftOf(m, n)
		default:
			n = avlRightOf(m, n)
		}
	}
	return false
}

func avlSearchReplace[M arena.Mem](m M, root uint64, key int64) {
	n := m.Load(root)
	last := arena.Nil
	for n != arena.Nil {
		last = n
		k := avlKeyOf(m, n)
		if key == k {
			break
		}
		if key < k {
			n = avlLeftOf(m, n)
		} else {
			n = avlRightOf(m, n)
		}
	}
	if last != arena.Nil {
		m.Store(last+avlKey, uint64(avlKeyOf(m, last)))
	}
}

func avlInsert[M arena.Mem](m M, root uint64, key int64) bool {
	var stack [64]uint64
	depth := 0
	n := m.Load(root)
	for n != arena.Nil {
		stack[depth] = n
		depth++
		k := avlKeyOf(m, n)
		if key == k {
			return false
		}
		if key < k {
			n = avlLeftOf(m, n)
		} else {
			n = avlRightOf(m, n)
		}
	}
	nn := m.Alloc(avlWords)
	m.Store(nn+avlKey, uint64(key))
	m.Store(nn+avlHeight, 1)
	if depth == 0 {
		m.Store(root, nn)
		return true
	}
	p := stack[depth-1]
	if key < avlKeyOf(m, p) {
		m.Store(p+avlLeft, nn)
	} else {
		m.Store(p+avlRight, nn)
	}
	avlRebalance(m, root, stack[:depth])
	return true
}

func avlDelete[M arena.Mem](m M, root uint64, key int64) bool {
	var stack [64]uint64
	depth := 0
	n := m.Load(root)
	for n != arena.Nil {
		stack[depth] = n
		depth++
		k := avlKeyOf(m, n)
		if key == k {
			break
		}
		if key < k {
			n = avlLeftOf(m, n)
		} else {
			n = avlRightOf(m, n)
		}
	}
	if n == arena.Nil {
		return false
	}
	// If n has two children, copy in the successor's key and splice
	// out the successor instead (an interior write that may touch a
	// node high in the tree).
	if avlLeftOf(m, n) != arena.Nil && avlRightOf(m, n) != arena.Nil {
		s := avlRightOf(m, n)
		stack[depth] = s
		depth++
		for {
			l := avlLeftOf(m, s)
			if l == arena.Nil {
				break
			}
			s = l
			stack[depth] = s
			depth++
		}
		m.Store(n+avlKey, uint64(avlKeyOf(m, s)))
		n = s
	}
	// n now has at most one child; splice it out.
	repl := avlLeftOf(m, n)
	if repl == arena.Nil {
		repl = avlRightOf(m, n)
	}
	depth-- // pop n
	if depth == 0 {
		m.Store(root, repl)
		return true
	}
	p := stack[depth-1]
	if avlLeftOf(m, p) == n {
		m.Store(p+avlLeft, repl)
	} else {
		m.Store(p+avlRight, repl)
	}
	avlRebalance(m, root, stack[:depth])
	return true
}

// avlRebalance walks the access path bottom-up, refreshing heights and
// rotating where the balance factor exceeds one. It stops early when a
// node's height is unchanged and needs no rotation — the property that
// keeps most AVL updates near the leaves.
func avlRebalance[M arena.Mem](m M, root uint64, stack []uint64) {
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		lh := avlHeightOf(m, avlLeftOf(m, n))
		rh := avlHeightOf(m, avlRightOf(m, n))
		bf := lh - rh
		if bf > 1 || bf < -1 {
			sub := avlRotate(m, n, bf)
			if i == 0 {
				m.Store(root, sub)
			} else {
				p := stack[i-1]
				if avlLeftOf(m, p) == n {
					m.Store(p+avlLeft, sub)
				} else {
					m.Store(p+avlRight, sub)
				}
			}
			continue
		}
		nh := max64(lh, rh) + 1
		if int64(m.Load(n+avlHeight)) == nh {
			return // height unchanged: no ancestor can change
		}
		m.Store(n+avlHeight, uint64(nh))
	}
}

// avlRotate restores balance at n (bf is its balance factor) and
// returns the new subtree root with all heights fixed.
func avlRotate[M arena.Mem](m M, n uint64, bf int64) uint64 {
	if bf > 1 {
		l := avlLeftOf(m, n)
		if avlHeightOf(m, avlLeftOf(m, l)) < avlHeightOf(m, avlRightOf(m, l)) {
			m.Store(n+avlLeft, avlRotLeft(m, l))
		}
		return avlRotRight(m, n)
	}
	r := avlRightOf(m, n)
	if avlHeightOf(m, avlRightOf(m, r)) < avlHeightOf(m, avlLeftOf(m, r)) {
		m.Store(n+avlRight, avlRotRight(m, r))
	}
	return avlRotLeft(m, n)
}

func avlFixHeight[M arena.Mem](m M, n uint64) {
	h := max64(avlHeightOf(m, avlLeftOf(m, n)), avlHeightOf(m, avlRightOf(m, n))) + 1
	if int64(m.Load(n+avlHeight)) != h {
		m.Store(n+avlHeight, uint64(h))
	}
}

func avlRotRight[M arena.Mem](m M, n uint64) uint64 {
	l := avlLeftOf(m, n)
	m.Store(n+avlLeft, avlRightOf(m, l))
	avlFixHeight(m, n)
	m.Store(l+avlRight, n)
	avlFixHeight(m, l)
	return l
}

func avlRotLeft[M arena.Mem](m M, n uint64) uint64 {
	r := avlRightOf(m, n)
	m.Store(n+avlRight, avlLeftOf(m, r))
	avlFixHeight(m, n)
	m.Store(r+avlLeft, n)
	avlFixHeight(m, r)
	return r
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// avlKeys is the raw in-order walk (validation only).
func avlKeys[M arena.Mem](m M, root uint64) []int64 {
	var out []int64
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == arena.Nil {
			return
		}
		walk(m.Load(n + avlLeft))
		out = append(out, int64(m.Load(n+avlKey)))
		walk(m.Load(n + avlRight))
	}
	walk(m.Load(root))
	return out
}

// avlCheck validates BST ordering, correct stored heights, and balance
// factors within [-1, 1] at every node (validation only).
func avlCheck[M arena.Mem](m M, root uint64) error {
	var check func(n uint64, lo, hi int64) (int64, error)
	check = func(n uint64, lo, hi int64) (int64, error) {
		if n == arena.Nil {
			return 0, nil
		}
		k := int64(m.Load(n + avlKey))
		if k < lo || k > hi {
			return 0, fmt.Errorf("avl: key %d outside (%d, %d)", k, lo, hi)
		}
		lh, err := check(m.Load(n+avlLeft), lo, k-1)
		if err != nil {
			return 0, err
		}
		rh, err := check(m.Load(n+avlRight), k+1, hi)
		if err != nil {
			return 0, err
		}
		h := max64(lh, rh) + 1
		if stored := int64(m.Load(n + avlHeight)); stored != h {
			return 0, fmt.Errorf("avl: node %d stored height %d, actual %d", k, stored, h)
		}
		if bf := lh - rh; bf > 1 || bf < -1 {
			return 0, fmt.Errorf("avl: node %d unbalanced (bf=%d)", k, bf)
		}
		return h, nil
	}
	_, err := check(m.Load(root), -1<<62, 1<<62)
	return err
}

// AVL is a height-balanced binary search tree [Adelson-Velsky & Landis
// 1962]. Most updates touch only a few nodes near the leaves, but
// occasional rebalances rotate interior nodes — including the root —
// which is what makes the AVL tree the paper's prime example of a
// NUMA-sensitive structure.
type AVL struct {
	sys  *htm.System
	root mem.Addr // word holding the root node's address
}

// NewAVL creates an empty AVL tree with its root pointer on socket 0.
func NewAVL(sys *htm.System, c *sim.Ctx) *AVL {
	return &AVL{sys: sys, root: sys.AllocHome(c, 1, 0)}
}

// Name implements Set.
func (t *AVL) Name() string { return "avl" }

// Contains implements Set.
func (t *AVL) Contains(c *sim.Ctx, key int64) bool {
	return avlContains(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// SearchReplace implements Set.
func (t *AVL) SearchReplace(c *sim.Ctx, key int64) {
	avlSearchReplace(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Insert implements Set.
func (t *AVL) Insert(c *sim.Ctx, key int64) bool {
	return avlInsert(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Delete implements Set.
func (t *AVL) Delete(c *sim.Ctx, key int64) bool {
	return avlDelete(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Keys implements Set (raw in-order walk; validation only).
func (t *AVL) Keys() []int64 {
	return avlKeys(arena.SimRaw{Space: t.sys.Mem}, uint64(t.root))
}

// CheckInvariants implements Set: BST ordering, correct stored heights,
// and balance factors within [-1, 1] at every node.
func (t *AVL) CheckInvariants() error {
	return avlCheck(arena.SimRaw{Space: t.sys.Mem}, uint64(t.root))
}
