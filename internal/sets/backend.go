package sets

import (
	"fmt"

	"natle/internal/arena"
	"natle/internal/backend"
)

// BackendSet runs the same structure cores the sim Set wrappers use,
// but over the backend.Ctx contract with nodes carved from an arena in
// backend words — so one set implementation executes on the simulator
// and on real goroutines alike. Operations must be called inside
// whatever critical section the workload's scheme provides, exactly
// like the sim sets.
type BackendSet struct {
	kind Kind
	root uint64 // root-pointer word (sentinel head node for skiplist)
	ar   *arena.Arena
}

// NewBackendSet builds an empty set of the given kind during world
// setup (c must be the setup context). Nodes will be allocated from ar;
// the root word (or skip-list head tower) comes straight from the
// world allocator.
func NewBackendSet(kind Kind, c backend.Ctx, ar *arena.Arena) (*BackendSet, error) {
	s := &BackendSet{kind: kind, ar: ar}
	switch kind {
	case KindAVL, KindBST, KindLeafBST:
		s.root = uint64(c.Alloc(1))
	case KindSkipList:
		head := uint64(c.Alloc(slNext + slMaxLevel))
		c.Store(int(head)+slLevel, slMaxLevel)
		s.root = head
	default:
		return nil, fmt.Errorf("sets: unknown kind %q", kind)
	}
	return s, nil
}

// Kind returns the structure kind.
func (s *BackendSet) Kind() Kind { return s.kind }

// Insert adds key inside the current critical section; it reports
// whether the key was absent.
func (s *BackendSet) Insert(c backend.Ctx, key int64) bool {
	m := arena.Bind(c, s.ar)
	switch s.kind {
	case KindAVL:
		return avlInsert(m, s.root, key)
	case KindBST:
		return bstInsert(m, s.root, key)
	case KindLeafBST:
		return lbInsert(m, s.root, key)
	default:
		return slInsert(m, s.root, key)
	}
}

// Delete removes key; it reports whether the key was present.
func (s *BackendSet) Delete(c backend.Ctx, key int64) bool {
	m := arena.Bind(c, s.ar)
	switch s.kind {
	case KindAVL:
		return avlDelete(m, s.root, key)
	case KindBST:
		return bstDelete(m, s.root, key)
	case KindLeafBST:
		return lbDelete(m, s.root, key)
	default:
		return slDelete(m, s.root, key)
	}
}

// Contains reports whether key is present.
func (s *BackendSet) Contains(c backend.Ctx, key int64) bool {
	m := arena.Bind(c, s.ar)
	switch s.kind {
	case KindAVL:
		return avlContains(m, s.root, key)
	case KindBST:
		return bstContains(m, s.root, key)
	case KindLeafBST:
		return lbContains(m, s.root, key)
	default:
		return slContains(m, s.root, key)
	}
}

// SearchReplace performs the paper's idempotent search-and-rewrite.
func (s *BackendSet) SearchReplace(c backend.Ctx, key int64) {
	m := arena.Bind(c, s.ar)
	switch s.kind {
	case KindAVL:
		avlSearchReplace(m, s.root, key)
	case KindBST:
		bstSearchReplace(m, s.root, key)
	case KindLeafBST:
		lbSearchReplace(m, s.root, key)
	default:
		slSearchReplace(m, s.root, key)
	}
}

// Keys returns the sorted contents read from the quiesced world
// (validation only; call after World.Run returns).
func (s *BackendSet) Keys(w backend.World) []int64 {
	m := arena.Peek{W: w}
	switch s.kind {
	case KindAVL:
		return avlKeys(m, s.root)
	case KindBST:
		return bstKeys(m, s.root)
	case KindLeafBST:
		return lbKeys(m, s.root)
	default:
		return slKeys(m, s.root)
	}
}

// CheckInvariants validates structural invariants from the quiesced
// world (validation only).
func (s *BackendSet) CheckInvariants(w backend.World) error {
	m := arena.Peek{W: w}
	switch s.kind {
	case KindAVL:
		return avlCheck(m, s.root)
	case KindBST:
		return bstCheck(m, s.root)
	case KindLeafBST:
		return lbCheck(m, s.root)
	default:
		return slCheck(m, s.root)
	}
}

// InsertWords returns the worst-case arena words one Insert of the
// given kind consumes (line-rounded node allocations: the leaf BST
// allocates a leaf plus a router, the skip-list a full tower). Memory
// estimators multiply this by the insert budget.
func InsertWords(kind Kind) int {
	switch kind {
	case KindAVL:
		return arena.RoundLine(avlWords)
	case KindBST:
		return arena.RoundLine(ibWords)
	case KindLeafBST:
		return 2 * arena.RoundLine(lbWords)
	case KindSkipList:
		return arena.RoundLine(slNext + slMaxLevel)
	}
	return 0
}

// Kinds lists the available set kinds in stable order.
func Kinds() []Kind {
	return []Kind{KindAVL, KindBST, KindLeafBST, KindSkipList}
}
