package sets

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
)

// runModelCheck executes a random operation sequence against both the
// simulated set and a Go map model, verifying result agreement,
// contents, and structural invariants.
func runModelCheck(t *testing.T, kind Kind, seed int64, ops int, keyRange int64) bool {
	t.Helper()
	ok := true
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, seed)
	s := htm.NewSystem(e, 1<<16)
	e.Spawn(nil, func(c *sim.Ctx) {
		set, err := New(kind, s, c)
		if err != nil {
			t.Error(err)
			ok = false
			return
		}
		model := map[int64]bool{}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < ops; i++ {
			key := rng.Int63n(keyRange)
			switch rng.Intn(4) {
			case 0, 1:
				want := !model[key]
				if got := set.Insert(c, key); got != want {
					t.Errorf("%s: Insert(%d) = %v, want %v (op %d)", kind, key, got, want, i)
					ok = false
					return
				}
				model[key] = true
			case 2:
				want := model[key]
				if got := set.Delete(c, key); got != want {
					t.Errorf("%s: Delete(%d) = %v, want %v (op %d)", kind, key, got, want, i)
					ok = false
					return
				}
				delete(model, key)
			case 3:
				want := model[key]
				if got := set.Contains(c, key); got != want {
					t.Errorf("%s: Contains(%d) = %v, want %v (op %d)", kind, key, got, want, i)
					ok = false
					return
				}
			}
			if i%64 == 0 {
				if err := set.CheckInvariants(); err != nil {
					t.Errorf("%s: invariant violated after op %d: %v", kind, i, err)
					ok = false
					return
				}
			}
		}
		if err := set.CheckInvariants(); err != nil {
			t.Errorf("%s: final invariant: %v", kind, err)
			ok = false
		}
		var want []int64
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := set.Keys()
		if len(got) != len(want) {
			t.Errorf("%s: %d keys, want %d", kind, len(got), len(want))
			ok = false
			return
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: keys[%d] = %d, want %d", kind, i, got[i], want[i])
				ok = false
				return
			}
		}
	})
	e.Run()
	return ok
}

func TestSetsAgainstModel(t *testing.T) {
	for _, kind := range []Kind{KindAVL, KindLeafBST, KindBST, KindSkipList} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			// A seeded generator keeps the property-test inputs (and
			// therefore the simulated schedules) identical run to run;
			// quick's default draws from the wall clock.
			cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(1))}
			f := func(seed int64) bool {
				return runModelCheck(t, kind, seed, 600, 64)
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSetsLargeKeyRange(t *testing.T) {
	for _, kind := range []Kind{KindAVL, KindLeafBST, KindBST, KindSkipList} {
		if !runModelCheck(t, kind, 99, 3000, 4096) {
			t.Errorf("%s failed large-range model check", kind)
		}
	}
}

func TestPrefillHalfFills(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 5)
	s := htm.NewSystem(e, 1<<16)
	e.Spawn(nil, func(c *sim.Ctx) {
		set := NewAVL(s, c)
		Prefill(set, c, 2048)
		if n := len(set.Keys()); n != 1024 {
			t.Errorf("prefill produced %d keys, want 1024", n)
		}
		if err := set.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
	e.Run()
}

func TestSearchReplacePreservesContents(t *testing.T) {
	for _, kind := range []Kind{KindAVL, KindLeafBST, KindBST, KindSkipList} {
		e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 7)
		s := htm.NewSystem(e, 1<<16)
		e.Spawn(nil, func(c *sim.Ctx) {
			set, _ := New(kind, s, c)
			for k := int64(0); k < 128; k += 2 {
				set.Insert(c, k)
			}
			before := set.Keys()
			for i := 0; i < 500; i++ {
				set.SearchReplace(c, int64(c.Intn(128)))
			}
			after := set.Keys()
			if len(before) != len(after) {
				t.Errorf("%s: SearchReplace changed size: %d -> %d", kind, len(before), len(after))
				return
			}
			for i := range before {
				if before[i] != after[i] {
					t.Errorf("%s: SearchReplace changed contents at %d", kind, i)
					return
				}
			}
			if err := set.CheckInvariants(); err != nil {
				t.Errorf("%s: %v", kind, err)
			}
		})
		e.Run()
	}
}

func TestAVLStaysLogarithmic(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 11)
	s := htm.NewSystem(e, 1<<20)
	e.Spawn(nil, func(c *sim.Ctx) {
		set := NewAVL(s, c)
		for k := int64(0); k < 4096; k++ { // adversarial sorted insert
			set.Insert(c, k)
		}
		if err := set.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Height is stored at the root; for n=4096, AVL height <= 1.44*log2(n) ~ 17.
		root := set.Keys()
		if len(root) != 4096 {
			t.Fatalf("size = %d, want 4096", len(root))
		}
	})
	e.Run()
}
