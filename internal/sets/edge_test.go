package sets

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
)

// withSet runs f on a fresh instance of the given kind.
func withSet(t *testing.T, kind Kind, f func(c *sim.Ctx, s Set)) {
	t.Helper()
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 23)
	sys := htm.NewSystem(e, 1<<16)
	e.Spawn(nil, func(c *sim.Ctx) {
		s, err := New(kind, sys, c)
		if err != nil {
			t.Fatal(err)
		}
		f(c, s)
	})
	e.Run()
}

func TestEmptySetOperations(t *testing.T) {
	for _, kind := range []Kind{KindAVL, KindLeafBST, KindBST, KindSkipList} {
		withSet(t, kind, func(c *sim.Ctx, s Set) {
			if s.Contains(c, 1) {
				t.Errorf("%s: empty set contains 1", kind)
			}
			if s.Delete(c, 1) {
				t.Errorf("%s: deleted from empty set", kind)
			}
			s.SearchReplace(c, 1) // must not panic on empty
			if got := len(s.Keys()); got != 0 {
				t.Errorf("%s: %d keys in empty set", kind, got)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Errorf("%s: %v", kind, err)
			}
		})
	}
}

func TestSingleElementLifecycle(t *testing.T) {
	for _, kind := range []Kind{KindAVL, KindLeafBST, KindBST, KindSkipList} {
		withSet(t, kind, func(c *sim.Ctx, s Set) {
			if !s.Insert(c, 7) || s.Insert(c, 7) {
				t.Errorf("%s: single insert semantics broken", kind)
			}
			if !s.Contains(c, 7) || s.Contains(c, 8) {
				t.Errorf("%s: contains wrong after one insert", kind)
			}
			if !s.Delete(c, 7) || s.Delete(c, 7) {
				t.Errorf("%s: single delete semantics broken", kind)
			}
			if s.Contains(c, 7) {
				t.Errorf("%s: key survives deletion", kind)
			}
		})
	}
}

func TestAdversarialInsertionOrders(t *testing.T) {
	const n = 512
	orders := map[string]func(i int) int64{
		"ascending":  func(i int) int64 { return int64(i) },
		"descending": func(i int) int64 { return int64(n - i) },
		"zigzag": func(i int) int64 {
			if i%2 == 0 {
				return int64(i / 2)
			}
			return int64(n - i/2)
		},
	}
	for _, kind := range []Kind{KindAVL, KindLeafBST, KindBST, KindSkipList} {
		for name, order := range orders {
			withSet(t, kind, func(c *sim.Ctx, s Set) {
				for i := 0; i < n; i++ {
					s.Insert(c, order(i))
				}
				if err := s.CheckInvariants(); err != nil {
					t.Errorf("%s/%s: %v", kind, name, err)
				}
				keys := s.Keys()
				if len(keys) != n {
					t.Errorf("%s/%s: %d keys, want %d", kind, name, len(keys), n)
				}
				// Drain in the same order.
				for i := 0; i < n; i++ {
					if !s.Delete(c, order(i)) {
						t.Errorf("%s/%s: lost key %d", kind, name, order(i))
						return
					}
				}
				if len(s.Keys()) != 0 {
					t.Errorf("%s/%s: keys remain after drain", kind, name)
				}
			})
		}
	}
}

func TestDeleteRootRepeatedly(t *testing.T) {
	// Deleting the current root repeatedly exercises the two-children
	// successor path of the internal trees at maximum depth.
	for _, kind := range []Kind{KindAVL, KindBST} {
		withSet(t, kind, func(c *sim.Ctx, s Set) {
			for i := int64(0); i < 128; i++ {
				s.Insert(c, i)
			}
			for len(s.Keys()) > 0 {
				root := s.Keys()[len(s.Keys())/2] // median ~ near the root
				if !s.Delete(c, root) {
					t.Fatalf("%s: failed to delete %d", kind, root)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
			}
		})
	}
}

func TestNegativeAndLargeKeys(t *testing.T) {
	keys := []int64{-1 << 40, -3, 0, 5, 1 << 40}
	for _, kind := range []Kind{KindAVL, KindLeafBST, KindBST, KindSkipList} {
		withSet(t, kind, func(c *sim.Ctx, s Set) {
			for _, k := range keys {
				if !s.Insert(c, k) {
					t.Errorf("%s: insert %d failed", kind, k)
				}
			}
			got := s.Keys()
			for i, k := range keys {
				if got[i] != k {
					t.Errorf("%s: keys[%d] = %d, want %d", kind, i, got[i], k)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Errorf("%s: %v", kind, err)
			}
		})
	}
}

func TestUnknownKindRejected(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 1)
	sys := htm.NewSystem(e, 1<<10)
	e.Spawn(nil, func(c *sim.Ctx) {
		if _, err := New("btree", sys, c); err == nil {
			t.Error("expected error for unknown set kind")
		}
	})
	e.Run()
}
