// Package sets implements the abstract-set data structures used by the
// paper's microbenchmarks — an AVL tree, an unbalanced leaf-oriented
// (external) BST, an unbalanced internal BST, and a skip-list — all
// storing their nodes in simulated memory so every access goes through
// the cache and HTM models.
//
// The implementations are sequential: in the benchmarks each operation
// runs inside a critical section protected by a single elidable lock,
// exactly as in the paper ("each implementation has a single lock that
// protects every operation"). Nodes are allocated with the
// HTM-friendly allocator (line-aligned, no false sharing).
package sets

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/sim"
)

// Set is the abstract set interface of the microbenchmarks.
type Set interface {
	// Insert adds key; it reports whether the key was absent.
	Insert(c *sim.Ctx, key int64) bool
	// Delete removes key; it reports whether the key was present.
	Delete(c *sim.Ctx, key int64) bool
	// Contains reports whether key is present.
	Contains(c *sim.Ctx, key int64) bool
	// SearchReplace performs the paper's Fig 4 operation: search for
	// key and store into the key field of the last node visited the
	// value that field already holds (a semantically idempotent write
	// that still generates coherence traffic).
	SearchReplace(c *sim.Ctx, key int64)
	// Name identifies the structure in benchmark output.
	Name() string
	// Keys returns the sorted contents read directly from simulated
	// memory (validation only; not a simulated operation).
	Keys() []int64
	// CheckInvariants validates structural invariants directly from
	// simulated memory (validation only).
	CheckInvariants() error
}

// Kind selects a set implementation by name.
type Kind string

// Available set kinds.
const (
	KindAVL      Kind = "avl"
	KindLeafBST  Kind = "leafbst"
	KindBST      Kind = "bst"
	KindSkipList Kind = "skiplist"
)

// New constructs a set of the given kind with its root structures homed
// on socket 0.
func New(kind Kind, sys *htm.System, c *sim.Ctx) (Set, error) {
	switch kind {
	case KindAVL:
		return NewAVL(sys, c), nil
	case KindLeafBST:
		return NewLeafBST(sys, c), nil
	case KindBST:
		return NewBST(sys, c), nil
	case KindSkipList:
		return NewSkipList(sys, c), nil
	}
	return nil, fmt.Errorf("sets: unknown kind %q", kind)
}

// Prefill inserts approximately half of the keys in [0, keyRange) into
// the set, deterministically from the context's RNG, using direct
// (unsynchronized) operations. Call it from a single driver thread
// before starting workers, as the paper's benchmarks do.
func Prefill(s Set, c *sim.Ctx, keyRange int64) {
	target := keyRange / 2
	var n int64
	for n < target {
		if s.Insert(c, int64(c.Rand64())%keyRange) {
			n++
		}
	}
}
