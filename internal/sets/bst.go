package sets

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Internal BST node layout: one cache line per node.
const (
	ibKey   = 0
	ibLeft  = 1
	ibRight = 2
	ibWords = 3
)

// BST is a classic unbalanced internal binary search tree. Unlike the
// AVL tree it never rotates; unlike the leaf-oriented BST, deleting a
// node with two children copies the successor's key into an interior
// node, so it sits between the two in NUMA sensitivity.
type BST struct {
	sys  *htm.System
	root mem.Addr
}

// NewBST creates an empty internal BST.
func NewBST(sys *htm.System, c *sim.Ctx) *BST {
	return &BST{sys: sys, root: sys.AllocHome(c, 1, 0)}
}

// Name implements Set.
func (t *BST) Name() string { return "bst" }

func (t *BST) key(c *sim.Ctx, n mem.Addr) int64 {
	return int64(t.sys.Read(c, n+ibKey))
}
func (t *BST) child(c *sim.Ctx, n mem.Addr, leftSide bool) mem.Addr {
	f := mem.Addr(ibRight)
	if leftSide {
		f = ibLeft
	}
	return mem.Addr(t.sys.Read(c, n+f))
}

// Contains implements Set.
func (t *BST) Contains(c *sim.Ctx, key int64) bool {
	n := mem.Addr(t.sys.Read(c, t.root))
	for n != mem.Nil {
		k := t.key(c, n)
		if k == key {
			return true
		}
		n = t.child(c, n, key < k)
	}
	return false
}

// SearchReplace implements Set.
func (t *BST) SearchReplace(c *sim.Ctx, key int64) {
	n := mem.Addr(t.sys.Read(c, t.root))
	last := mem.Nil
	for n != mem.Nil {
		last = n
		k := t.key(c, n)
		if k == key {
			break
		}
		n = t.child(c, n, key < k)
	}
	if last != mem.Nil {
		t.sys.Write(c, last+ibKey, uint64(t.key(c, last)))
	}
}

// Insert implements Set.
func (t *BST) Insert(c *sim.Ctx, key int64) bool {
	n := mem.Addr(t.sys.Read(c, t.root))
	if n == mem.Nil {
		t.sys.Write(c, t.root, uint64(t.newNode(c, key)))
		return true
	}
	for {
		k := t.key(c, n)
		if k == key {
			return false
		}
		next := t.child(c, n, key < k)
		if next == mem.Nil {
			f := mem.Addr(ibRight)
			if key < k {
				f = ibLeft
			}
			t.sys.Write(c, n+f, uint64(t.newNode(c, key)))
			return true
		}
		n = next
	}
}

func (t *BST) newNode(c *sim.Ctx, key int64) mem.Addr {
	n := t.sys.Alloc(c, ibWords)
	t.sys.Write(c, n+ibKey, uint64(key))
	return n
}

// Delete implements Set.
func (t *BST) Delete(c *sim.Ctx, key int64) bool {
	parent := mem.Nil
	parentLeft := false
	n := mem.Addr(t.sys.Read(c, t.root))
	for n != mem.Nil {
		k := t.key(c, n)
		if k == key {
			break
		}
		parent, parentLeft = n, key < k
		n = t.child(c, n, key < k)
	}
	if n == mem.Nil {
		return false
	}
	l, r := t.child(c, n, true), t.child(c, n, false)
	if l != mem.Nil && r != mem.Nil {
		// Two children: copy successor key into n, then splice out the
		// successor (leftmost node of the right subtree).
		sp, spLeft := n, false
		m := r
		for {
			ml := t.child(c, m, true)
			if ml == mem.Nil {
				break
			}
			sp, spLeft = m, true
			m = ml
		}
		t.sys.Write(c, n+ibKey, uint64(t.key(c, m)))
		t.splice(c, sp, spLeft, m)
		return true
	}
	t.splice(c, parent, parentLeft, n)
	return true
}

// splice removes node n (which has at most one child) from under
// parent (nil parent means n is the root).
func (t *BST) splice(c *sim.Ctx, parent mem.Addr, parentLeft bool, n mem.Addr) {
	repl := t.child(c, n, true)
	if repl == mem.Nil {
		repl = t.child(c, n, false)
	}
	switch {
	case parent == mem.Nil:
		t.sys.Write(c, t.root, uint64(repl))
	case parentLeft:
		t.sys.Write(c, parent+ibLeft, uint64(repl))
	default:
		t.sys.Write(c, parent+ibRight, uint64(repl))
	}
}

// Keys implements Set (raw in-order walk; validation only).
func (t *BST) Keys() []int64 {
	raw := t.sys.Mem
	var out []int64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == mem.Nil {
			return
		}
		walk(mem.Addr(raw.Raw(n + ibLeft)))
		out = append(out, int64(raw.Raw(n+ibKey)))
		walk(mem.Addr(raw.Raw(n + ibRight)))
	}
	walk(mem.Addr(raw.Raw(t.root)))
	return out
}

// CheckInvariants implements Set: BST ordering.
func (t *BST) CheckInvariants() error {
	raw := t.sys.Mem
	var check func(n mem.Addr, lo, hi int64) error
	check = func(n mem.Addr, lo, hi int64) error {
		if n == mem.Nil {
			return nil
		}
		k := int64(raw.Raw(n + ibKey))
		if k < lo || k > hi {
			return fmt.Errorf("bst: key %d outside (%d, %d)", k, lo, hi)
		}
		if err := check(mem.Addr(raw.Raw(n+ibLeft)), lo, k-1); err != nil {
			return err
		}
		return check(mem.Addr(raw.Raw(n+ibRight)), k+1, hi)
	}
	return check(mem.Addr(raw.Raw(t.root)), -1<<62, 1<<62)
}
