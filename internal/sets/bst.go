package sets

import (
	"fmt"

	"natle/internal/arena"
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Internal BST node layout: one cache line per node.
const (
	ibKey   = 0
	ibLeft  = 1
	ibRight = 2
	ibWords = 3
)

// The structure cores below are generic over arena.Mem, so the same
// word-by-word access sequence runs against the simulator (arena.Sim)
// and the native backend (arena.Backend). The address passed as `root`
// is always the root-pointer word, not the root node.

func bstKey[M arena.Mem](m M, n uint64) int64 {
	return int64(m.Load(n + ibKey))
}

func bstChild[M arena.Mem](m M, n uint64, leftSide bool) uint64 {
	f := uint64(ibRight)
	if leftSide {
		f = ibLeft
	}
	return m.Load(n + f)
}

func bstContains[M arena.Mem](m M, root uint64, key int64) bool {
	n := m.Load(root)
	for n != arena.Nil {
		k := bstKey(m, n)
		if k == key {
			return true
		}
		n = bstChild(m, n, key < k)
	}
	return false
}

func bstSearchReplace[M arena.Mem](m M, root uint64, key int64) {
	n := m.Load(root)
	last := arena.Nil
	for n != arena.Nil {
		last = n
		k := bstKey(m, n)
		if k == key {
			break
		}
		n = bstChild(m, n, key < k)
	}
	if last != arena.Nil {
		m.Store(last+ibKey, uint64(bstKey(m, last)))
	}
}

func bstNewNode[M arena.Mem](m M, key int64) uint64 {
	n := m.Alloc(ibWords)
	m.Store(n+ibKey, uint64(key))
	return n
}

func bstInsert[M arena.Mem](m M, root uint64, key int64) bool {
	n := m.Load(root)
	if n == arena.Nil {
		m.Store(root, bstNewNode(m, key))
		return true
	}
	for {
		k := bstKey(m, n)
		if k == key {
			return false
		}
		next := bstChild(m, n, key < k)
		if next == arena.Nil {
			f := uint64(ibRight)
			if key < k {
				f = ibLeft
			}
			m.Store(n+f, bstNewNode(m, key))
			return true
		}
		n = next
	}
}

func bstDelete[M arena.Mem](m M, root uint64, key int64) bool {
	parent := arena.Nil
	parentLeft := false
	n := m.Load(root)
	for n != arena.Nil {
		k := bstKey(m, n)
		if k == key {
			break
		}
		parent, parentLeft = n, key < k
		n = bstChild(m, n, key < k)
	}
	if n == arena.Nil {
		return false
	}
	l, r := bstChild(m, n, true), bstChild(m, n, false)
	if l != arena.Nil && r != arena.Nil {
		// Two children: copy successor key into n, then splice out the
		// successor (leftmost node of the right subtree).
		sp, spLeft := n, false
		s := r
		for {
			sl := bstChild(m, s, true)
			if sl == arena.Nil {
				break
			}
			sp, spLeft = s, true
			s = sl
		}
		m.Store(n+ibKey, uint64(bstKey(m, s)))
		bstSplice(m, root, sp, spLeft, s)
		return true
	}
	bstSplice(m, root, parent, parentLeft, n)
	return true
}

// bstSplice removes node n (which has at most one child) from under
// parent (nil parent means n is the root).
func bstSplice[M arena.Mem](m M, root, parent uint64, parentLeft bool, n uint64) {
	repl := bstChild(m, n, true)
	if repl == arena.Nil {
		repl = bstChild(m, n, false)
	}
	switch {
	case parent == arena.Nil:
		m.Store(root, repl)
	case parentLeft:
		m.Store(parent+ibLeft, repl)
	default:
		m.Store(parent+ibRight, repl)
	}
}

// bstKeys is the raw in-order walk (validation only; call with a
// read-only adapter over a quiesced world).
func bstKeys[M arena.Mem](m M, root uint64) []int64 {
	var out []int64
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == arena.Nil {
			return
		}
		walk(m.Load(n + ibLeft))
		out = append(out, int64(m.Load(n+ibKey)))
		walk(m.Load(n + ibRight))
	}
	walk(m.Load(root))
	return out
}

// bstCheck validates BST ordering (validation only).
func bstCheck[M arena.Mem](m M, root uint64) error {
	var check func(n uint64, lo, hi int64) error
	check = func(n uint64, lo, hi int64) error {
		if n == arena.Nil {
			return nil
		}
		k := int64(m.Load(n + ibKey))
		if k < lo || k > hi {
			return fmt.Errorf("bst: key %d outside (%d, %d)", k, lo, hi)
		}
		if err := check(m.Load(n+ibLeft), lo, k-1); err != nil {
			return err
		}
		return check(m.Load(n+ibRight), k+1, hi)
	}
	return check(m.Load(root), -1<<62, 1<<62)
}

// BST is a classic unbalanced internal binary search tree. Unlike the
// AVL tree it never rotates; unlike the leaf-oriented BST, deleting a
// node with two children copies the successor's key into an interior
// node, so it sits between the two in NUMA sensitivity.
type BST struct {
	sys  *htm.System
	root mem.Addr
}

// NewBST creates an empty internal BST.
func NewBST(sys *htm.System, c *sim.Ctx) *BST {
	return &BST{sys: sys, root: sys.AllocHome(c, 1, 0)}
}

// Name implements Set.
func (t *BST) Name() string { return "bst" }

// Contains implements Set.
func (t *BST) Contains(c *sim.Ctx, key int64) bool {
	return bstContains(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// SearchReplace implements Set.
func (t *BST) SearchReplace(c *sim.Ctx, key int64) {
	bstSearchReplace(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Insert implements Set.
func (t *BST) Insert(c *sim.Ctx, key int64) bool {
	return bstInsert(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Delete implements Set.
func (t *BST) Delete(c *sim.Ctx, key int64) bool {
	return bstDelete(arena.Sim{Sys: t.sys, C: c}, uint64(t.root), key)
}

// Keys implements Set (raw in-order walk; validation only).
func (t *BST) Keys() []int64 {
	return bstKeys(arena.SimRaw{Space: t.sys.Mem}, uint64(t.root))
}

// CheckInvariants implements Set: BST ordering.
func (t *BST) CheckInvariants() error {
	return bstCheck(arena.SimRaw{Space: t.sys.Mem}, uint64(t.root))
}
