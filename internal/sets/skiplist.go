package sets

import (
	"fmt"

	"natle/internal/arena"
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Skip-list node layout: [key, level, next_0 .. next_{level-1}];
// allocation is padded to whole cache lines by the allocator.
const (
	slKey   = 0
	slLevel = 1
	slNext  = 2 // first next pointer

	slMaxLevel = 16
)

// The skip-list cores take the sentinel head node's address directly
// (the head has a full-height tower), not a root-pointer word.

func slKeyOf[M arena.Mem](m M, n uint64) int64 { return int64(m.Load(n + slKey)) }
func slNextOf[M arena.Mem](m M, n uint64, lvl int) uint64 {
	return m.Load(n + slNext + uint64(lvl))
}
func slSetNext[M arena.Mem](m M, n uint64, lvl int, v uint64) {
	m.Store(n+slNext+uint64(lvl), v)
}

// slFindPreds fills update with the predecessor of key at every level
// and returns the bottom-level candidate node (the first node with
// key >= target, or nil).
func slFindPreds[M arena.Mem](m M, head uint64, key int64, update *[slMaxLevel]uint64) uint64 {
	x := head
	for i := slMaxLevel - 1; i >= 0; i-- {
		for {
			nx := slNextOf(m, x, i)
			if nx == arena.Nil || slKeyOf(m, nx) >= key {
				break
			}
			x = nx
		}
		update[i] = x
	}
	return slNextOf(m, update[0], 0)
}

func slContains[M arena.Mem](m M, head uint64, key int64) bool {
	x := head
	for i := slMaxLevel - 1; i >= 0; i-- {
		for {
			nx := slNextOf(m, x, i)
			if nx == arena.Nil || slKeyOf(m, nx) > key {
				break
			}
			if slKeyOf(m, nx) == key {
				return true
			}
			x = nx
		}
	}
	return false
}

func slSearchReplace[M arena.Mem](m M, head uint64, key int64) {
	var update [slMaxLevel]uint64
	cand := slFindPreds(m, head, key, &update)
	last := cand
	if last == arena.Nil {
		last = update[0]
	}
	if last == head {
		return
	}
	m.Store(last+slKey, uint64(slKeyOf(m, last)))
}

// slRandLevel draws a geometric tower height (p = 1/2) from the
// per-thread stream. The draws happen only after the candidate-absent
// check in slInsert, so present-key operations consume no random bits —
// the property that keeps cross-backend schedules aligned.
func slRandLevel[M arena.Mem](m M) int {
	lvl := 1
	for lvl < slMaxLevel && m.Rand64()&1 == 0 {
		lvl++
	}
	return lvl
}

func slInsert[M arena.Mem](m M, head uint64, key int64) bool {
	var update [slMaxLevel]uint64
	cand := slFindPreds(m, head, key, &update)
	if cand != arena.Nil && slKeyOf(m, cand) == key {
		return false
	}
	lvl := slRandLevel(m)
	n := m.Alloc(slNext + lvl)
	m.Store(n+slKey, uint64(key))
	m.Store(n+slLevel, uint64(lvl))
	for i := 0; i < lvl; i++ {
		slSetNext(m, n, i, slNextOf(m, update[i], i))
		slSetNext(m, update[i], i, n)
	}
	return true
}

func slDelete[M arena.Mem](m M, head uint64, key int64) bool {
	var update [slMaxLevel]uint64
	cand := slFindPreds(m, head, key, &update)
	if cand == arena.Nil || slKeyOf(m, cand) != key {
		return false
	}
	lvl := int(m.Load(cand + slLevel))
	for i := 0; i < lvl; i++ {
		if slNextOf(m, update[i], i) == cand {
			slSetNext(m, update[i], i, slNextOf(m, cand, i))
		}
	}
	return true
}

// slKeys is the raw bottom-level walk (validation only).
func slKeys[M arena.Mem](m M, head uint64) []int64 {
	var out []int64
	n := m.Load(head + slNext)
	for n != arena.Nil {
		out = append(out, int64(m.Load(n+slKey)))
		n = m.Load(n + slNext)
	}
	return out
}

// slCheck validates: each level is sorted and a subsequence of the
// level below (validation only).
func slCheck[M arena.Mem](m M, head uint64) error {
	inLevel0 := map[uint64]bool{}
	prev := int64(-1 << 62)
	for n := m.Load(head + slNext); n != arena.Nil; n = m.Load(n + slNext) {
		k := int64(m.Load(n + slKey))
		if k <= prev {
			return fmt.Errorf("skiplist: level 0 not strictly sorted at %d", k)
		}
		prev = k
		inLevel0[n] = true
	}
	for i := 1; i < slMaxLevel; i++ {
		prev = -1 << 62
		for n := m.Load(head + slNext + uint64(i)); n != arena.Nil; n = m.Load(n + slNext + uint64(i)) {
			if !inLevel0[n] {
				return fmt.Errorf("skiplist: level %d node missing from level 0", i)
			}
			if lvl := int(m.Load(n + slLevel)); lvl <= i {
				return fmt.Errorf("skiplist: node linked above its level (%d <= %d)", lvl, i)
			}
			k := int64(m.Load(n + slKey))
			if k <= prev {
				return fmt.Errorf("skiplist: level %d not sorted at %d", i, k)
			}
			prev = k
		}
	}
	return nil
}

// SkipList is a classic skip-list [Pugh 1990] with geometrically
// distributed tower heights (p = 1/2). Updates write the predecessor
// towers at every level of the affected node, so high towers touch
// widely shared nodes — its NUMA profile sits between the AVL tree and
// the leaf-oriented BST, matching the paper's Fig 13 observation.
type SkipList struct {
	sys  *htm.System
	head mem.Addr // sentinel node with a full-height tower
}

// NewSkipList creates an empty skip-list.
func NewSkipList(sys *htm.System, c *sim.Ctx) *SkipList {
	head := sys.AllocHome(c, slNext+slMaxLevel, 0)
	sys.Write(c, head+slLevel, slMaxLevel)
	return &SkipList{sys: sys, head: head}
}

// Name implements Set.
func (t *SkipList) Name() string { return "skiplist" }

// Contains implements Set.
func (t *SkipList) Contains(c *sim.Ctx, key int64) bool {
	return slContains(arena.Sim{Sys: t.sys, C: c}, uint64(t.head), key)
}

// SearchReplace implements Set.
func (t *SkipList) SearchReplace(c *sim.Ctx, key int64) {
	slSearchReplace(arena.Sim{Sys: t.sys, C: c}, uint64(t.head), key)
}

// Insert implements Set.
func (t *SkipList) Insert(c *sim.Ctx, key int64) bool {
	return slInsert(arena.Sim{Sys: t.sys, C: c}, uint64(t.head), key)
}

// Delete implements Set.
func (t *SkipList) Delete(c *sim.Ctx, key int64) bool {
	return slDelete(arena.Sim{Sys: t.sys, C: c}, uint64(t.head), key)
}

// Keys implements Set (raw bottom-level walk; validation only).
func (t *SkipList) Keys() []int64 {
	return slKeys(arena.SimRaw{Space: t.sys.Mem}, uint64(t.head))
}

// CheckInvariants implements Set: each level is sorted and a
// subsequence of the level below.
func (t *SkipList) CheckInvariants() error {
	return slCheck(arena.SimRaw{Space: t.sys.Mem}, uint64(t.head))
}
