package sets

import (
	"fmt"

	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Skip-list node layout: [key, level, next_0 .. next_{level-1}];
// allocation is padded to whole cache lines by the allocator.
const (
	slKey   = 0
	slLevel = 1
	slNext  = 2 // first next pointer

	slMaxLevel = 16
)

// SkipList is a classic skip-list [Pugh 1990] with geometrically
// distributed tower heights (p = 1/2). Updates write the predecessor
// towers at every level of the affected node, so high towers touch
// widely shared nodes — its NUMA profile sits between the AVL tree and
// the leaf-oriented BST, matching the paper's Fig 13 observation.
type SkipList struct {
	sys  *htm.System
	head mem.Addr // sentinel node with a full-height tower
}

// NewSkipList creates an empty skip-list.
func NewSkipList(sys *htm.System, c *sim.Ctx) *SkipList {
	head := sys.AllocHome(c, slNext+slMaxLevel, 0)
	sys.Write(c, head+slLevel, slMaxLevel)
	return &SkipList{sys: sys, head: head}
}

// Name implements Set.
func (t *SkipList) Name() string { return "skiplist" }

func (t *SkipList) key(c *sim.Ctx, n mem.Addr) int64 {
	return int64(t.sys.Read(c, n+slKey))
}
func (t *SkipList) next(c *sim.Ctx, n mem.Addr, lvl int) mem.Addr {
	return mem.Addr(t.sys.Read(c, n+slNext+mem.Addr(lvl)))
}
func (t *SkipList) setNext(c *sim.Ctx, n mem.Addr, lvl int, v mem.Addr) {
	t.sys.Write(c, n+slNext+mem.Addr(lvl), uint64(v))
}

// findPreds fills update with the predecessor of key at every level and
// returns the bottom-level candidate node (the first node with
// key >= target, or nil).
func (t *SkipList) findPreds(c *sim.Ctx, key int64, update *[slMaxLevel]mem.Addr) mem.Addr {
	x := t.head
	for i := slMaxLevel - 1; i >= 0; i-- {
		for {
			nx := t.next(c, x, i)
			if nx == mem.Nil || t.key(c, nx) >= key {
				break
			}
			x = nx
		}
		update[i] = x
	}
	return t.next(c, update[0], 0)
}

// Contains implements Set.
func (t *SkipList) Contains(c *sim.Ctx, key int64) bool {
	x := t.head
	for i := slMaxLevel - 1; i >= 0; i-- {
		for {
			nx := t.next(c, x, i)
			if nx == mem.Nil || t.key(c, nx) > key {
				break
			}
			if t.key(c, nx) == key {
				return true
			}
			x = nx
		}
	}
	return false
}

// SearchReplace implements Set.
func (t *SkipList) SearchReplace(c *sim.Ctx, key int64) {
	var update [slMaxLevel]mem.Addr
	cand := t.findPreds(c, key, &update)
	last := cand
	if last == mem.Nil {
		last = update[0]
	}
	if last == t.head {
		return
	}
	t.sys.Write(c, last+slKey, uint64(t.key(c, last)))
}

func (t *SkipList) randLevel(c *sim.Ctx) int {
	lvl := 1
	for lvl < slMaxLevel && c.Rand64()&1 == 0 {
		lvl++
	}
	return lvl
}

// Insert implements Set.
func (t *SkipList) Insert(c *sim.Ctx, key int64) bool {
	var update [slMaxLevel]mem.Addr
	cand := t.findPreds(c, key, &update)
	if cand != mem.Nil && t.key(c, cand) == key {
		return false
	}
	lvl := t.randLevel(c)
	n := t.sys.Alloc(c, slNext+lvl)
	t.sys.Write(c, n+slKey, uint64(key))
	t.sys.Write(c, n+slLevel, uint64(lvl))
	for i := 0; i < lvl; i++ {
		t.setNext(c, n, i, t.next(c, update[i], i))
		t.setNext(c, update[i], i, n)
	}
	return true
}

// Delete implements Set.
func (t *SkipList) Delete(c *sim.Ctx, key int64) bool {
	var update [slMaxLevel]mem.Addr
	cand := t.findPreds(c, key, &update)
	if cand == mem.Nil || t.key(c, cand) != key {
		return false
	}
	lvl := int(t.sys.Read(c, cand+slLevel))
	for i := 0; i < lvl; i++ {
		if t.next(c, update[i], i) == cand {
			t.setNext(c, update[i], i, t.next(c, cand, i))
		}
	}
	return true
}

// Keys implements Set (raw bottom-level walk; validation only).
func (t *SkipList) Keys() []int64 {
	raw := t.sys.Mem
	var out []int64
	n := mem.Addr(raw.Raw(t.head + slNext))
	for n != mem.Nil {
		out = append(out, int64(raw.Raw(n+slKey)))
		n = mem.Addr(raw.Raw(n + slNext))
	}
	return out
}

// CheckInvariants implements Set: each level is sorted and a
// subsequence of the level below.
func (t *SkipList) CheckInvariants() error {
	raw := t.sys.Mem
	inLevel0 := map[mem.Addr]bool{}
	prev := int64(-1 << 62)
	for n := mem.Addr(raw.Raw(t.head + slNext)); n != mem.Nil; n = mem.Addr(raw.Raw(n + slNext)) {
		k := int64(raw.Raw(n + slKey))
		if k <= prev {
			return fmt.Errorf("skiplist: level 0 not strictly sorted at %d", k)
		}
		prev = k
		inLevel0[n] = true
	}
	for i := 1; i < slMaxLevel; i++ {
		prev = -1 << 62
		for n := mem.Addr(raw.Raw(t.head + slNext + mem.Addr(i))); n != mem.Nil; n = mem.Addr(raw.Raw(n + slNext + mem.Addr(i))) {
			if !inLevel0[n] {
				return fmt.Errorf("skiplist: level %d node missing from level 0", i)
			}
			if lvl := int(raw.Raw(n + slLevel)); lvl <= i {
				return fmt.Errorf("skiplist: node linked above its level (%d <= %d)", lvl, i)
			}
			k := int64(raw.Raw(n + slKey))
			if k <= prev {
				return fmt.Errorf("skiplist: level %d not sorted at %d", i, k)
			}
			prev = k
		}
	}
	return nil
}
