// Package arena provides the backend-agnostic word-memory contract the
// structure layer (internal/sets, internal/simmap) is written against,
// plus a bump allocator that carves structure nodes out of backend
// words.
//
// The point of the indirection: the search trees and the hash map used
// to speak directly to the simulator (*htm.System / *sim.Ctx). To run
// the same structures on the native backend — real goroutines over a
// real []atomic.Uint64 — every access has to flow through a contract
// both worlds implement. Mem is that contract, and it is deliberately
// generic-shaped: the structure cores take a type parameter constrained
// to Mem, so each backend's adapter is monomorphized and the per-word
// loads and stores compile to direct calls, not interface dispatch.
//
// The Arena itself lives *inside* backend words: each allocation lane
// keeps its bump cursor in a backend word, read and written through the
// same Ctx.Load/Store every other access uses. That makes allocation
// transactional — an optimistic attempt that allocates a node and then
// aborts rolls its cursor back with the rest of its writes, so the
// retry re-allocates the same words and nothing leaks.
package arena

import (
	"fmt"

	"natle/internal/backend"
	"natle/internal/mem"
)

// Nil is the null address. Both backends reserve the low words of their
// spaces (the simulator burns line 0, the arena places its cursor block
// before its data region), so no valid node ever lands at 0.
const Nil uint64 = 0

// Mem is the word-memory contract the structure cores are generic over:
// word load/store, node allocation, and the per-thread deterministic
// RNG (the skiplist consumes random bits through the same stream the
// rest of the workload uses, which is what keeps cross-backend
// schedules comparable).
//
// Addresses are word indices into the backend's flat space. Load and
// Store are transactional when called inside a critical-section body;
// Alloc may be called inside a body too (the arena cursor is itself a
// backend word, so the bump write is covered by the same transaction).
type Mem interface {
	Load(a uint64) uint64
	Store(a, v uint64)
	Alloc(nWords int) uint64
	Rand64() uint64
}

// Arena is a per-thread-laned bump allocator over backend words.
//
// Layout, in backend address order:
//
//	[cursor block]  one word per lane, one cache line apart, so two
//	                threads bumping their cursors never conflict on a
//	                line (or, under the striped TLE, on a seq stripe
//	                that striping by line maps them to).
//	[data block]    lanes * laneWords words, lane-contiguous.
//
// Each lane's cursor holds the lane-relative offset of its next free
// word and is accessed through Ctx.Load/Store, so an aborted optimistic
// attempt rolls the bump back along with the node words it initialized.
// Allocations are padded to whole cache lines, mirroring the
// simulator's allocator, so nodes from one lane never share a line.
type Arena struct {
	lanes     int
	laneWords int
	cursors   int // backend address of the first cursor word
	data      int // backend address of lane 0's first data word
}

// New carves an arena out of the world during setup. lanes is typically
// threads+1 (lane 0 for the setup context, lane t+1 for thread t);
// laneWords is the per-lane capacity and is rounded up to whole lines.
func New(c backend.Ctx, lanes, laneWords int) *Arena {
	if lanes <= 0 || laneWords <= 0 {
		panic("arena: non-positive lane configuration")
	}
	laneWords = roundLine(laneWords)
	a := &Arena{lanes: lanes, laneWords: laneWords}
	a.cursors = c.Alloc(lanes * mem.WordsPerLine)
	a.data = c.Alloc(lanes * laneWords)
	return a
}

// Lanes returns the number of allocation lanes.
func (a *Arena) Lanes() int { return a.lanes }

// LaneWords returns the line-rounded per-lane capacity in words.
func (a *Arena) LaneWords() int { return a.laneWords }

// Alloc bumps the given lane's cursor by a line-rounded nWords and
// returns the backend address of the allocation. The cursor word is
// read and written through c, so inside a critical section the bump is
// transactional. Lane exhaustion panics: arenas are sized up front from
// the workload's op budget, so running out is a sizing bug, not a
// recoverable condition.
func (a *Arena) Alloc(c backend.Ctx, lane, nWords int) uint64 {
	if lane < 0 || lane >= a.lanes {
		panic(fmt.Sprintf("arena: lane %d out of range [0,%d)", lane, a.lanes))
	}
	if nWords <= 0 {
		panic("arena: Alloc with non-positive size")
	}
	n := uint64(roundLine(nWords))
	cur := a.cursors + lane*mem.WordsPerLine
	off := c.Load(cur)
	if off+n > uint64(a.laneWords) {
		panic(fmt.Sprintf("arena: lane %d exhausted (%d of %d words)", lane, off, a.laneWords))
	}
	c.Store(cur, off+n)
	return uint64(a.data+lane*a.laneWords) + off
}

// roundLine pads nWords up to a whole number of cache lines.
func roundLine(nWords int) int {
	return (nWords + mem.WordsPerLine - 1) / mem.WordsPerLine * mem.WordsPerLine
}

// RoundLine exposes the allocator's line rounding for memory-sizing
// estimators: a structure that allocates nodeWords per insert consumes
// RoundLine(nodeWords) arena words per insert.
func RoundLine(nWords int) int { return roundLine(nWords) }

// Backend adapts a backend.Ctx plus an Arena lane to the Mem contract.
// It is a small value (not a pointer) so the generic structure cores
// instantiate over it directly.
type Backend struct {
	C    backend.Ctx
	A    *Arena
	Lane int
}

// Bind returns the adapter for c's own lane: lane t+1 for thread t,
// lane 0 for the setup context (Thread() == -1).
func Bind(c backend.Ctx, a *Arena) Backend {
	return Backend{C: c, A: a, Lane: c.Thread() + 1}
}

// Load reads one backend word.
func (m Backend) Load(a uint64) uint64 { return m.C.Load(int(a)) }

// Store writes one backend word.
func (m Backend) Store(a, v uint64) { m.C.Store(int(a), v) }

// Alloc bumps the bound lane.
func (m Backend) Alloc(nWords int) uint64 { return m.A.Alloc(m.C, m.Lane, nWords) }

// Rand64 draws from the context's deterministic per-thread stream.
func (m Backend) Rand64() uint64 { return m.C.Rand64() }

// Peek adapts a quiesced backend.World to Mem for read-only validation
// walks (invariant checks, final-contents checksums). It must only be
// used after World.Run returns; Store, Alloc, and Rand64 panic.
type Peek struct {
	W backend.World
}

// Load reads one word without coherence or timing effects.
func (m Peek) Load(a uint64) uint64 { return m.W.Peek(int(a)) }

// Store panics: Peek is read-only.
func (m Peek) Store(a, v uint64) { panic("arena: Store through read-only Peek") }

// Alloc panics: Peek is read-only.
func (m Peek) Alloc(nWords int) uint64 { panic("arena: Alloc through read-only Peek") }

// Rand64 panics: validation walks must be deterministic and draw
// nothing from workload RNG streams.
func (m Peek) Rand64() uint64 { panic("arena: Rand64 through read-only Peek") }
