package arena

import (
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
)

// Sim adapts the simulator's HTM runtime to the Mem contract: loads and
// stores go through System.Read/Write (transactional inside an attempt,
// coherence-timed outside), and Alloc goes through the simulator's
// line-aligned allocator, homing lines on the calling thread's socket
// exactly as the structures' direct sys accesses used to.
type Sim struct {
	Sys *htm.System
	C   *sim.Ctx
}

// Load reads one simulated word.
func (m Sim) Load(a uint64) uint64 { return m.Sys.Read(m.C, mem.Addr(a)) }

// Store writes one simulated word.
func (m Sim) Store(a, v uint64) { m.Sys.Write(m.C, mem.Addr(a), v) }

// Alloc reserves line-aligned simulated words homed on the calling
// thread's socket.
func (m Sim) Alloc(nWords int) uint64 { return uint64(m.Sys.Alloc(m.C, nWords)) }

// Rand64 draws from the simulated thread's deterministic stream.
func (m Sim) Rand64() uint64 { return m.C.Rand64() }

// SimRaw adapts a simulated memory space to Mem for read-only
// validation walks outside any simulated thread (Keys, invariant
// checks). Store, Alloc, and Rand64 panic, as on Peek.
type SimRaw struct {
	Space *mem.Space
}

// Load reads one word with no timing or coherence effects.
func (m SimRaw) Load(a uint64) uint64 { return m.Space.Raw(mem.Addr(a)) }

// Store panics: SimRaw is read-only.
func (m SimRaw) Store(a, v uint64) { panic("arena: Store through read-only SimRaw") }

// Alloc panics: SimRaw is read-only.
func (m SimRaw) Alloc(nWords int) uint64 { panic("arena: Alloc through read-only SimRaw") }

// Rand64 panics: validation walks draw nothing from workload streams.
func (m SimRaw) Rand64() uint64 { panic("arena: Rand64 through read-only SimRaw") }
