// Package machine describes the simulated hardware: socket/core/
// hyperthread topology, cache and interconnect latencies, HTM buffer
// capacities, and thread-placement (pinning) policies.
//
// Two calibrated profiles are provided, mirroring the two systems in the
// paper: LargeX52 models the Oracle Server X5-2 (2 sockets x 18 cores x
// 2 hyperthreads, 72 hardware threads) and SmallI7 models the
// single-socket Core i7-4770 (4 cores x 2 hyperthreads).
package machine

import "natle/internal/vtime"

// Profile describes a simulated machine. Latency values are calibrated
// so that the *ratios* between cache levels and sockets match published
// measurements for the corresponding real systems; absolute throughput
// is simulator-defined.
type Profile struct {
	Name string

	// Topology.
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int

	// Memory-hierarchy latencies for a single word access.
	L1Hit      vtime.Duration // private-cache hit
	L3Hit      vtime.Duration // same-socket L3 / cache-to-cache transfer
	RemoteHit  vtime.Duration // cross-socket cache-to-cache transfer
	LocalDRAM  vtime.Duration // miss served from the home socket's memory
	RemoteDRAM vtime.Duration // miss served from the other socket's memory

	// RemoteInval is the extra cost a writer pays to invalidate copies
	// held on the other socket; SameSocketInval is the (much smaller)
	// cost of invalidating copies within the socket.
	RemoteInval     vtime.Duration
	SameSocketInval vtime.Duration

	// BaseOp approximates the non-memory instructions executed around
	// each simulated shared-memory access.
	BaseOp vtime.Duration

	// WorkIter is the cost of one iteration of the "external work"
	// function used by the microbenchmarks (a short arithmetic loop).
	WorkIter vtime.Duration

	// SiblingSlowdown multiplies all execution costs of a hardware
	// thread whose hyperthread sibling is actively running.
	SiblingSlowdown float64

	// HTM parameters.
	TxBeginCost  vtime.Duration // XBEGIN overhead
	TxCommitCost vtime.Duration // XEND overhead
	TxAbortCost  vtime.Duration // abort + rollback overhead
	TxWriteCap   int            // max write-set lines (L1-bound)
	TxReadCap    int            // max read-set lines (L2/L3 tracked)
	// TransientEvictProb is the per-line probability that adding a line
	// to a transaction's working set causes an unlucky transient
	// eviction (and hence a capacity abort with the retry hint clear)
	// while the hyperthread sibling is active. This reproduces the
	// paper's observation (Fig 2b) that transactions aborting "without
	// the hint bit" may nonetheless succeed when retried.
	TransientEvictProb float64

	// PrivateCacheSets is the number of entries in the direct-mapped
	// private-cache tag model used to decide L1 hits vs same-socket
	// L3 hits.
	PrivateCacheSets int

	// LineTransferQueue, when true, serializes transfers of the same
	// cache line: an access that misses the private cache queues
	// behind the line's in-progress transfer. This is the physically
	// accurate model for single-hot-line ping-pong; it is off by
	// default because the recorded figure calibration (EXPERIMENTS.md)
	// was done without it, and the paper's workloads spread traffic
	// over many lines where it matters little.
	LineTransferQueue bool

	// Thread management overheads (relevant for paraheap-k, which
	// re-creates its worker threads twice per iteration).
	SpawnOverhead vtime.Duration // creating an OS thread
	PinOverhead   vtime.Duration // pthread_setaffinity + migration
	MigrateCost   vtime.Duration // OS-initiated migration of a thread
}

// LargeX52 returns the profile for the paper's large machine: an Oracle
// Server X5-2 with two Xeon E5-2699 v3 processors (2 x 18 cores x 2
// hyperthreads at 2.3 GHz).
func LargeX52() *Profile {
	return &Profile{
		Name:           "X5-2 (2s x 18c x 2t)",
		Sockets:        2,
		CoresPerSocket: 18,
		ThreadsPerCore: 2,

		L1Hit:           1700 * vtime.Picosecond, // ~4 cycles @ 2.3 GHz
		L3Hit:           14 * vtime.Nanosecond,
		RemoteHit:       240 * vtime.Nanosecond,
		LocalDRAM:       85 * vtime.Nanosecond,
		RemoteDRAM:      260 * vtime.Nanosecond,
		RemoteInval:     90 * vtime.Nanosecond,
		SameSocketInval: 4 * vtime.Nanosecond,

		BaseOp:          900 * vtime.Picosecond,
		WorkIter:        2 * vtime.Nanosecond,
		SiblingSlowdown: 1.3,

		TxBeginCost:        14 * vtime.Nanosecond,
		TxCommitCost:       12 * vtime.Nanosecond,
		TxAbortCost:        40 * vtime.Nanosecond,
		TxWriteCap:         448,  // 32 KiB L1 / 64 B lines, minus victim room
		TxReadCap:          8192, // tracked in L2/L3
		TransientEvictProb: 0.0015,
		PrivateCacheSets:   4096, // 256 KiB private L2

		SpawnOverhead: 12 * vtime.Microsecond,
		PinOverhead:   25 * vtime.Microsecond,
		MigrateCost:   6 * vtime.Microsecond,
	}
}

// QuadSocket returns a synthetic four-socket profile (4 x 12 cores x 2
// hyperthreads, 96 hardware threads). The paper notes that the NATLE
// design extends "straightforwardly" to more sockets (one mode per
// socket plus an all-sockets mode); this profile exists to exercise
// that generalization. Latencies follow the large profile, with
// slightly higher remote costs for the larger interconnect.
func QuadSocket() *Profile {
	p := LargeX52()
	p.Name = "synthetic (4s x 12c x 2t)"
	p.Sockets = 4
	p.CoresPerSocket = 12
	p.RemoteHit = 260 * vtime.Nanosecond
	p.RemoteInval = 100 * vtime.Nanosecond
	p.RemoteDRAM = 290 * vtime.Nanosecond
	return p
}

// SmallI7 returns the profile for the paper's small machine: a
// single-socket Core i7-4770 (4 cores x 2 hyperthreads at 3.4 GHz).
func SmallI7() *Profile {
	p := LargeX52()
	p.Name = "i7-4770 (1s x 4c x 2t)"
	p.Sockets = 1
	p.CoresPerSocket = 4
	// 3.4 GHz vs 2.3 GHz: scale per-instruction costs down.
	p.L1Hit = 1200 * vtime.Picosecond
	p.L3Hit = 16 * vtime.Nanosecond
	p.LocalDRAM = 70 * vtime.Nanosecond
	p.BaseOp = 650 * vtime.Picosecond
	p.WorkIter = 1400 * vtime.Picosecond
	p.PrivateCacheSets = 4096
	return p
}

// Cores returns the total number of physical cores.
func (p *Profile) Cores() int { return p.Sockets * p.CoresPerSocket }

// HWThreads returns the total number of hardware threads.
func (p *Profile) HWThreads() int { return p.Cores() * p.ThreadsPerCore }

// SocketOfCore returns the socket that hosts core c.
func (p *Profile) SocketOfCore(c int) int { return c / p.CoresPerSocket }

// SocketMask returns a bitmask (over core indices) of the cores on
// socket s. Core indices must fit in 64 bits, which holds for all
// provided profiles.
func (p *Profile) SocketMask(s int) uint64 {
	var m uint64
	for c := s * p.CoresPerSocket; c < (s+1)*p.CoresPerSocket; c++ {
		m |= 1 << uint(c)
	}
	return m
}
