package machine

import "testing"

func TestTopology(t *testing.T) {
	p := LargeX52()
	if p.Cores() != 36 || p.HWThreads() != 72 {
		t.Errorf("large topology: %d cores / %d threads", p.Cores(), p.HWThreads())
	}
	if SocketOf := p.SocketOfCore(17); SocketOf != 0 {
		t.Errorf("core 17 on socket %d, want 0", SocketOf)
	}
	if s := p.SocketOfCore(18); s != 1 {
		t.Errorf("core 18 on socket %d, want 1", s)
	}
	sm := SmallI7()
	if sm.Sockets != 1 || sm.HWThreads() != 8 {
		t.Errorf("small topology: %d sockets / %d threads", sm.Sockets, sm.HWThreads())
	}
}

func TestSocketMaskPartition(t *testing.T) {
	p := LargeX52()
	m0, m1 := p.SocketMask(0), p.SocketMask(1)
	if m0&m1 != 0 {
		t.Error("socket masks overlap")
	}
	all := uint64(1)<<uint(p.Cores()) - 1
	if m0|m1 != all {
		t.Errorf("socket masks do not cover all cores: %x", m0|m1)
	}
}

func TestLatencyOrdering(t *testing.T) {
	for _, p := range []*Profile{LargeX52(), SmallI7()} {
		if !(p.L1Hit < p.L3Hit && p.L3Hit < p.LocalDRAM) {
			t.Errorf("%s: latency ladder broken", p.Name)
		}
		if p.Sockets > 1 && p.RemoteHit <= p.L3Hit {
			t.Errorf("%s: remote not slower than local", p.Name)
		}
	}
}

func TestAlternatingCoversBothSockets(t *testing.T) {
	p := LargeX52()
	alt := Alternating{}
	seen := map[int]bool{}
	for i := 0; i < 72; i++ {
		core := alt.Place(p, i, 72)
		if core < 0 || core >= p.Cores() {
			t.Fatalf("Place(%d) = %d out of range", i, core)
		}
		seen[p.SocketOfCore(core)] = true
	}
	if !seen[0] || !seen[1] {
		t.Error("alternating policy missed a socket")
	}
}

func TestFillSocketFirstLoadsAtMostTwoPerCore(t *testing.T) {
	p := LargeX52()
	fill := FillSocketFirst{}
	load := map[int]int{}
	for i := 0; i < 72; i++ {
		load[fill.Place(p, i, 72)]++
	}
	for core, n := range load {
		if n != p.ThreadsPerCore {
			t.Errorf("core %d has %d threads, want %d", core, n, p.ThreadsPerCore)
		}
	}
}

func TestSingleSocketStaysHome(t *testing.T) {
	p := LargeX52()
	pol := SingleSocket{Socket: 1}
	for i := 0; i < 36; i++ {
		if s := p.SocketOfCore(pol.Place(p, i, 36)); s != 1 {
			t.Fatalf("thread %d placed on socket %d", i, s)
		}
	}
}

func TestDynamicFlags(t *testing.T) {
	if (FillSocketFirst{}).Dynamic() || (Alternating{}).Dynamic() || (SingleSocket{}).Dynamic() {
		t.Error("static policies report dynamic")
	}
	if !(Unpinned{}).Dynamic() {
		t.Error("unpinned policy is not dynamic")
	}
}
