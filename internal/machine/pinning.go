package machine

// PinPolicy decides which core a software thread runs on. Placement is
// consulted when a thread is created; Dynamic reports whether the
// policy may later migrate threads (in which case the simulator's OS
// scheduler periodically rebalances them).
type PinPolicy interface {
	// Place returns the core for software thread i of n total threads.
	Place(p *Profile, i, n int) int
	// Dynamic reports whether threads may migrate after placement.
	Dynamic() bool
	// Name identifies the policy in output.
	Name() string
}

// FillSocketFirst is the paper's default pinning policy: the first
// CoresPerSocket threads go to distinct cores of socket 0, the next
// CoresPerSocket share those cores via hyperthreading, and the pattern
// repeats on socket 1. On the large machine, threads 0-35 therefore
// run on socket 0 and threads 36-71 on socket 1.
type FillSocketFirst struct{}

// Place implements PinPolicy.
func (FillSocketFirst) Place(p *Profile, i, n int) int {
	perSocket := p.CoresPerSocket * p.ThreadsPerCore
	socket := (i / perSocket) % p.Sockets
	within := i % perSocket
	core := within % p.CoresPerSocket // second pass reuses cores (hyperthreads)
	return socket*p.CoresPerSocket + core
}

// Dynamic implements PinPolicy.
func (FillSocketFirst) Dynamic() bool { return false }

// Name implements PinPolicy.
func (FillSocketFirst) Name() string { return "fill-socket-first" }

// Alternating pins even-numbered threads to socket 0 and odd-numbered
// threads to socket 1 (Fig 15, left).
type Alternating struct{}

// Place implements PinPolicy.
func (Alternating) Place(p *Profile, i, n int) int {
	socket := i % p.Sockets
	slot := i / p.Sockets // index within the socket's thread sequence
	core := slot % p.CoresPerSocket
	return socket*p.CoresPerSocket + core
}

// Dynamic implements PinPolicy.
func (Alternating) Dynamic() bool { return false }

// Name implements PinPolicy.
func (Alternating) Name() string { return "alternating" }

// Unpinned leaves placement to the simulated OS scheduler, which
// balances load across sockets (mirroring the observation in the paper
// that the Linux scheduler spreads threads evenly across sockets) and
// periodically migrates threads to the least-loaded core.
type Unpinned struct{}

// Place implements PinPolicy. Initial placement is least-loaded; the
// engine's scheduler handles subsequent migration.
func (Unpinned) Place(p *Profile, i, n int) int {
	// The engine overrides this with load-aware placement; the static
	// fallback spreads like the alternating policy.
	return Alternating{}.Place(p, i, n)
}

// Dynamic implements PinPolicy.
func (Unpinned) Dynamic() bool { return true }

// Name implements PinPolicy.
func (Unpinned) Name() string { return "unpinned" }

// SingleSocket pins all threads onto one socket, spreading across cores
// first and hyperthreads second (used by the Fig 6 delay experiment).
type SingleSocket struct{ Socket int }

// Place implements PinPolicy.
func (s SingleSocket) Place(p *Profile, i, n int) int {
	core := i % p.CoresPerSocket
	return s.Socket*p.CoresPerSocket + core
}

// Dynamic implements PinPolicy.
func (SingleSocket) Dynamic() bool { return false }

// Name implements PinPolicy.
func (SingleSocket) Name() string { return "single-socket" }
