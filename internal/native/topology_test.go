package native

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"natle/internal/backend"
)

// writeSysfsFixture builds a fake /sys/devices/system/cpu tree: four
// online CPUs on two sparsely-numbered packages, one offline CPU
// without a topology directory, and the non-CPU entries a real sysfs
// holds alongside the cpuN directories.
func writeSysfsFixture(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	// Deliberately sparse package ids (3 then 7) and out-of-order
	// creation: ReadTopology must densify by first appearance in
	// CPU-id order, not by package-id value.
	cpus := []struct{ cpu, pkg, core int }{
		{0, 3, 0}, {1, 3, 1}, {2, 7, 0}, {3, 7, 1},
	}
	for _, c := range cpus {
		dir := filepath.Join(root, "cpu"+itoa(c.cpu), "topology")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		write := func(name string, v int) {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(itoa(v)+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write("physical_package_id", c.pkg)
		write("core_id", c.core)
	}
	// Offline CPU: directory exists, topology does not.
	if err := os.MkdirAll(filepath.Join(root, "cpu4"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Non-CPU siblings that must be skipped, not parsed.
	for _, d := range []string{"cpufreq", "cpuidle"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(root, "online"), []byte("0-3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestReadTopologyFixture(t *testing.T) {
	topo, err := ReadTopology(writeSysfsFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Packages != 2 {
		t.Fatalf("packages = %d, want 2", topo.Packages)
	}
	if want := []int{0, 0, 1, 1}; !reflect.DeepEqual(topo.CPUPackage, want) {
		t.Fatalf("CPUPackage = %v, want %v (dense ordinals, first-appearance order)", topo.CPUPackage, want)
	}
	if want := []int{0, 1, 0, 1}; !reflect.DeepEqual(topo.CPUCore, want) {
		t.Fatalf("CPUCore = %v, want %v", topo.CPUCore, want)
	}
}

func TestReadTopologyMissingRoot(t *testing.T) {
	if _, err := ReadTopology(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("ReadTopology on a missing root succeeded; want error")
	}
}

func TestReadTopologyEmptyRoot(t *testing.T) {
	// A root with no parseable CPUs (only an offline one) must error so
	// NewWorld takes the fill-first fallback instead of zero groups.
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "cpu0"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTopology(root); err == nil {
		t.Fatal("ReadTopology with no topology files succeeded; want error")
	}
}

// TestWorldGroupWiring pins the Config→World plumbing: an explicit
// Sockets forces stripe mode, and the default either discovers sysfs
// (on Linux hosts that export it) or falls back to stripe — in both
// cases Groups/GroupSource/Socket stay mutually consistent.
func TestWorldGroupWiring(t *testing.T) {
	w := NewWorld(Config{Sockets: 3})
	if w.Groups() != 3 || w.GroupSource() != "stripe" {
		t.Fatalf("explicit sockets: groups=%d source=%q, want 3/stripe", w.Groups(), w.GroupSource())
	}

	w = NewWorld(Config{})
	switch w.GroupSource() {
	case "sysfs":
		if len(w.cpuGroup) == 0 || w.Groups() <= 0 {
			t.Fatalf("sysfs mode with groups=%d cpuGroup len=%d", w.Groups(), len(w.cpuGroup))
		}
	case "stripe":
		if w.Groups() != 2 {
			t.Fatalf("fallback stripe mode with groups=%d, want 2", w.Groups())
		}
	default:
		t.Fatalf("unknown group source %q", w.GroupSource())
	}
	// Whatever the mode, every worker's Socket() must be a valid group
	// ordinal.
	var bad atomic.Int32
	w.Run(5, func(c backend.Ctx) {}, func(c backend.Ctx) {
		if s := c.Socket(); s < 0 || s >= w.Groups() {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d workers saw Socket() outside [0,%d)", bad.Load(), w.Groups())
	}
}
