package native

import (
	"testing"

	"natle/internal/backend"
	"natle/internal/tle"
)

// runCounter increments a shared word ops times per thread under cs
// and returns the final value.
func runCounter(w *World, cs backend.CS, threads, ops int) uint64 {
	var addr int
	w.Run(threads, func(c backend.Ctx) {
		addr = c.Alloc(1)
	}, func(c backend.Ctx) {
		for j := 0; j < ops; j++ {
			cs.Critical(c, func() {
				c.Store(addr, c.Load(addr)+1)
			})
		}
	})
	return w.Peek(addr)
}

func TestSocketStriping(t *testing.T) {
	w := NewWorld(Config{Sockets: 2})
	got := make([]int, 4)
	w.Run(4, func(c backend.Ctx) {
		if c.Thread() != -1 || c.Socket() != 0 {
			t.Errorf("setup ctx: thread %d socket %d, want -1, 0", c.Thread(), c.Socket())
		}
	}, func(c backend.Ctx) {
		got[c.Thread()] = c.Socket()
	})
	want := []int{0, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("socket striping %v, want %v", got, want)
		}
	}
}

func TestAllocOverflowPanics(t *testing.T) {
	w := NewWorld(Config{Words: 8})
	defer func() {
		if recover() == nil {
			t.Fatalf("alloc past capacity did not panic")
		}
	}()
	w.Run(0, func(c backend.Ctx) { c.Alloc(9) }, nil)
}

// TestTLEValidationAbort injects one deterministic conflict: the body
// advances the sequence word between two loads (as a concurrent
// writer's commit would), which must abort exactly the first
// optimistic attempt and succeed on the second.
func TestTLEValidationAbort(t *testing.T) {
	w := NewWorld(Config{})
	lk := NewTLE(0, tle.Backoff{})
	poisoned := false
	w.Run(1, func(c backend.Ctx) { c.Alloc(2) }, func(c backend.Ctx) {
		lk.Critical(c, func() {
			c.Load(0)
			if !poisoned {
				poisoned = true
				lk.seq.Add(2) // a foreign writer's commit
			}
			c.Load(1)
		})
	})
	st := lk.st.tleStats()
	if st.Ops != 1 || st.Commits != 1 || st.TotalAborts() != 1 || st.Fallbacks != 0 {
		t.Fatalf("ops=%d commits=%d aborts=%d fallbacks=%d, want 1/1/1/0",
			st.Ops, st.Commits, st.TotalAborts(), st.Fallbacks)
	}
}

// TestTLEFallbackOnPersistentConflict poisons every optimistic
// attempt, exhausting the budget; the section must complete on the
// exclusive fallback (where the poison is harmless: no validation).
func TestTLEFallbackOnPersistentConflict(t *testing.T) {
	w := NewWorld(Config{})
	lk := NewTLE(3, tle.Backoff{})
	var addr int
	w.Run(1, func(c backend.Ctx) { addr = c.Alloc(1) }, func(c backend.Ctx) {
		nc := c.(*Thread)
		lk.Critical(c, func() {
			c.Load(addr)
			if nc.tx.active {
				lk.seq.Add(2)
			}
			c.Store(addr, c.Load(addr)+1)
		})
	})
	if got := w.Peek(addr); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
	st := lk.st.tleStats()
	if st.Fallbacks != 1 || st.TotalAborts() != 3 || st.Commits != 0 {
		t.Fatalf("fallbacks=%d aborts=%d commits=%d, want 1/3/0", st.Fallbacks, st.TotalAborts(), st.Commits)
	}
	if st.Ops != st.Commits+st.Fallbacks {
		t.Fatalf("conservation broken: ops=%d commits+fallbacks=%d", st.Ops, st.Commits+st.Fallbacks)
	}
}

// TestTLEWriterUpgradeExcludes: a committed writer's sequence bump
// must be visible as two increments (lock, unlock), keeping the word
// even and growing.
func TestTLEWriterUpgrade(t *testing.T) {
	w := NewWorld(Config{})
	lk := NewTLE(0, tle.Backoff{})
	var addr int
	w.Run(1, func(c backend.Ctx) { addr = c.Alloc(1) }, func(c backend.Ctx) {
		lk.Critical(c, func() { c.Store(addr, 7) })
	})
	if got := lk.seq.Load(); got != 2 {
		t.Fatalf("sequence after one write commit = %d, want 2", got)
	}
	if got := w.Peek(addr); got != 7 {
		t.Fatalf("word = %d, want 7", got)
	}
}

// TestTLEBodyPanicReleasesLock: a non-abort panic from an upgraded
// writer must release the sequence lock before propagating, or every
// later section wedges.
func TestTLEBodyPanicReleasesLock(t *testing.T) {
	w := NewWorld(Config{})
	lk := NewTLE(0, tle.Backoff{})
	var addr int
	w.Run(1, func(c backend.Ctx) { addr = c.Alloc(1) }, func(c backend.Ctx) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workload panic swallowed")
				}
			}()
			lk.Critical(c, func() {
				c.Store(addr, 1)
				panic("workload bug")
			})
		}()
		// The lock must still be usable.
		lk.Critical(c, func() { c.Store(addr, c.Load(addr)+1) })
	})
	if got := lk.seq.Load(); got%2 != 0 {
		t.Fatalf("sequence left odd (%d) after panic", got)
	}
	if got := w.Peek(addr); got != 2 {
		t.Fatalf("word = %d, want 2", got)
	}
}

// TestTLESoakContended is the short contended soak the CI race job
// runs: heavy true sharing across goroutines, where lost updates,
// torn validation, or a leaked sequence lock would show up as a wrong
// final count, a race report, or a hang.
func TestTLESoakContended(t *testing.T) {
	threads, ops := 8, 4000
	if testing.Short() {
		threads, ops = 4, 1000
	}
	w := NewWorld(Config{})
	lk := NewTLE(0, tle.Backoff{})
	if got, want := runCounter(w, lk, threads, ops), uint64(threads*ops); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	st := lk.st.tleStats()
	if st.Ops != uint64(threads*ops) {
		t.Fatalf("ops = %d, want %d", st.Ops, threads*ops)
	}
	if st.Commits+st.Fallbacks != st.Ops {
		t.Fatalf("conservation broken: ops=%d commits=%d fallbacks=%d", st.Ops, st.Commits, st.Fallbacks)
	}
}

// TestNATLESoakContended: same soak through the throttling layer, with
// a window small enough that real decisions fire. Progress (no
// deadlock between throttling and the op-count-bounded schedule) and
// conservation are the assertions; decision counts are host-dependent.
func TestNATLESoakContended(t *testing.T) {
	threads, ops := 8, 4000
	if testing.Short() {
		threads, ops = 4, 1000
	}
	w := NewWorld(Config{Sockets: 2})
	lk := NewNATLE(NewTLE(0, tle.Backoff{}), w.Sockets(), NATLEConfig{Window: 200_000, Wait: 5_000})
	if got, want := runCounter(w, lk, threads, ops), uint64(threads*ops); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	st := lk.Stats()
	if st.TLE.Commits+st.TLE.Fallbacks != st.TLE.Ops {
		t.Fatalf("conservation broken: ops=%d commits=%d fallbacks=%d",
			st.TLE.Ops, st.TLE.Commits, st.TLE.Fallbacks)
	}
	if int(st.Extra["natle_decisions"]) != len(st.Timeline) {
		t.Fatalf("decisions=%d but timeline has %d samples",
			st.Extra["natle_decisions"], len(st.Timeline))
	}
}

// TestMutexAndSpinConservation covers the two plain-lock baselines.
func TestMutexAndSpinConservation(t *testing.T) {
	w1 := NewWorld(Config{})
	m := NewMutex()
	if got := runCounter(w1, m, 4, 500); got != 2000 {
		t.Fatalf("mutex counter = %d, want 2000", got)
	}
	if got := m.Stats().Extra["acquires"]; got != 2000 {
		t.Fatalf("mutex acquires = %d, want 2000", got)
	}
	w2 := NewWorld(Config{})
	s := NewSpin()
	if got := runCounter(w2, s, 4, 500); got != 2000 {
		t.Fatalf("spin counter = %d, want 2000", got)
	}
	if got := s.Stats().Extra["acquires"]; got != 2000 {
		t.Fatalf("spin acquires = %d, want 2000", got)
	}
}
