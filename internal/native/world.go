package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"natle/internal/backend"
	"natle/internal/fault"
)

// Config sizes a native world.
type Config struct {
	// Words is the shared-memory capacity in 64-bit words (default
	// 1<<20). Alloc panics on overflow: the word array must never
	// reallocate while workers hold references into it.
	Words int
	// Seed feeds the per-thread deterministic RNGs, so the *operation
	// schedule* of a native trial is reproducible even though its
	// timing is not.
	Seed int64
	// Sockets, when positive, forces the thread-group count and
	// fill-first striping: thread i of n is in group i*Sockets/n,
	// mirroring the simulator's fill-socket-first pinning. When zero,
	// the world discovers the host's real topology from
	// /sys/devices/system/cpu/cpu*/topology (package + core ids) and
	// maps thread t to the package of CPU t%ncpu; if sysfs is absent
	// (non-Linux, stripped containers) it falls back to fill-first
	// striping over 2 groups.
	Sockets int
	// Fault, if non-nil and enabled, installs the native fault
	// adapter (see Fault): the chaos schedules stress real goroutines
	// exactly as they stress the simulator.
	Fault *fault.Profile
}

// World is the native execution backend: real goroutines over a real
// atomic word array on wall-clock time. It implements backend.World.
type World struct {
	mem      []atomic.Uint64
	next     int
	seed     int64
	sockets  int
	cpuGroup []int  // per-CPU dense package ordinal (sysfs mode only)
	groupSrc string // "sysfs" or "stripe"
	threads  int    // workers of the current Run (socket striping)
	epoch    time.Time
	inj      *Fault // nil unless Config.Fault armed one
}

// NewWorld builds a native world.
func NewWorld(cfg Config) *World {
	if cfg.Words <= 0 {
		cfg.Words = 1 << 20
	}
	w := &World{
		mem:   make([]atomic.Uint64, cfg.Words),
		seed:  cfg.Seed,
		epoch: time.Now(),
	}
	switch {
	case cfg.Sockets > 0:
		w.sockets, w.groupSrc = cfg.Sockets, "stripe"
	default:
		if topo, err := ReadTopology(sysCPURoot); err == nil && topo.Packages > 0 {
			w.sockets, w.cpuGroup, w.groupSrc = topo.Packages, topo.CPUPackage, "sysfs"
		} else {
			w.sockets, w.groupSrc = 2, "stripe"
		}
	}
	if cfg.Fault != nil && cfg.Fault.Enabled() {
		w.inj = NewFault(*cfg.Fault)
	}
	return w
}

// FaultStats reports the counters of the installed fault adapter
// (zero when no faults are armed).
func (w *World) FaultStats() fault.Stats { return w.inj.Stats() }

// Kind implements backend.World.
func (w *World) Kind() backend.Kind { return backend.Native }

// Peek implements backend.World.
func (w *World) Peek(a int) uint64 { return w.mem[a].Load() }

// Sockets returns the world's thread-group count (the native stand-in
// for socket placement).
func (w *World) Sockets() int { return w.sockets }

// Groups returns the thread-group count, alongside GroupSource, for
// BackendResult's optional topology probe.
func (w *World) Groups() int { return w.sockets }

// GroupSource reports how the thread groups were obtained: "sysfs" for
// real /sys/devices/system/cpu topology, "stripe" for fill-first
// striping (explicit Config.Sockets, or the fallback when sysfs is
// absent).
func (w *World) GroupSource() string { return w.groupSrc }

// now returns monotonic wall-clock nanoseconds since the world was
// built (time.Since uses the monotonic clock reading of the epoch).
func (w *World) now() int64 { return int64(time.Since(w.epoch)) }

// alloc reserves nWords zeroed words.
func (w *World) alloc(nWords int) int {
	if w.next+nWords > len(w.mem) {
		panic(fmt.Sprintf("native: out of memory (%d words allocated, %d requested, %d capacity)",
			w.next, nWords, len(w.mem)))
	}
	a := w.next
	w.next += nWords
	return a
}

// Run implements backend.World: setup runs alone on a setup context,
// then threads goroutines run body concurrently from a common start
// signal; Run returns after all of them finished.
func (w *World) Run(threads int, setup func(backend.Ctx), body func(backend.Ctx)) {
	w.threads = threads
	setup(w.ctx(-1))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		c := w.ctx(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			body(c)
		}()
	}
	close(start)
	wg.Wait()
}

// ctx builds the per-thread context for worker thread (or the setup
// context for thread -1).
func (w *World) ctx(thread int) *Thread {
	// splitmix64-style seeding: distinct, well-mixed streams per
	// (world seed, thread).
	s := uint64(w.seed)*0x9e3779b97f4a7c15 + uint64(thread+1)*0xbf58476d1ce4e5b9
	return &Thread{w: w, thread: thread, rng: s}
}

// Thread is the per-goroutine execution context; it implements
// backend.Ctx and carries the goroutine's speculative transaction
// state, so schemes need no thread-local lookup machinery.
type Thread struct {
	w      *World
	thread int
	rng    uint64
	tx     txn
	stx    stripedTxn
	sink   uint64 // Work/spin accumulator, defeats dead-code elimination
}

// txn is one optimistic native-tle attempt in flight on this thread.
type txn struct {
	active   bool
	writer   bool
	start    uint64
	seq      *atomic.Uint64
	spurious int // injected spurious-abort countdown (0 = unarmed)
	budget   int // injected access budget (0 = unlimited)
}

// abortSignal unwinds an optimistic attempt whose sequence validation
// failed (the native mirror of htm.AbortSignal).
type abortSignal struct{}

// Thread implements backend.Ctx.

// Thread returns the worker index (-1 for the setup context).
func (c *Thread) Thread() int { return c.thread }

// Socket returns the thread's group: the package of CPU thread%ncpu
// when the world discovered sysfs topology, fill-first striping
// otherwise.
func (c *Thread) Socket() int {
	if c.thread < 0 || c.w.sockets <= 1 {
		return 0
	}
	if g := c.w.cpuGroup; len(g) > 0 {
		return g[c.thread%len(g)]
	}
	if c.w.threads <= 0 {
		return 0
	}
	g := c.thread * c.w.sockets / c.w.threads
	if g >= c.w.sockets {
		g = c.w.sockets - 1
	}
	return g
}

// Rand64 steps the thread's splitmix64 RNG.
//
//natlevet:hotpath
func (c *Thread) Rand64() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a draw in [0, n).
//
//natlevet:hotpath
func (c *Thread) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(c.Rand64() % uint64(n))
}

// Now returns monotonic wall-clock nanoseconds since world
// construction.
func (c *Thread) Now() int64 { return c.w.now() }

// Work burns n iterations of external work.
//
//natlevet:hotpath
func (c *Thread) Work(n int) {
	for i := 0; i < n; i++ {
		c.sink = c.sink*6364136223846793005 + 1442695040888963407
	}
}

// Alloc reserves nWords zeroed shared words (setup context only; the
// allocator is not synchronized).
func (c *Thread) Alloc(nWords int) int { return c.w.alloc(nWords) }

// Load reads shared word a. Inside an optimistic attempt it validates
// the lock sequence after the read (seqlock discipline) and aborts
// the attempt on interference.
//
//natlevet:hotpath
func (c *Thread) Load(a int) uint64 {
	if c.stx.active {
		return c.stripedLoad(a)
	}
	v := c.w.mem[a].Load()
	if c.tx.active && !c.tx.writer {
		if c.tx.seq.Load() != c.tx.start {
			panic(abortSignal{})
		}
		if c.tx.spurious > 0 || c.tx.budget > 0 {
			c.txAccess()
		}
	}
	return v
}

// Store writes shared word a. The first store of an optimistic
// attempt upgrades it to writer by acquiring the sequence word with a
// CAS; failure to upgrade aborts the attempt.
//
//natlevet:hotpath
func (c *Thread) Store(a int, v uint64) {
	if c.stx.active {
		c.stripedStore(a, v)
		return
	}
	if c.tx.active && !c.tx.writer {
		if c.tx.spurious > 0 || c.tx.budget > 0 {
			c.txAccess()
		}
		if !c.tx.seq.CompareAndSwap(c.tx.start, c.tx.start+1) {
			panic(abortSignal{})
		}
		c.tx.writer = true
	}
	c.w.mem[a].Store(v)
}

// spinWait busy-waits for about ns wall-clock nanoseconds, yielding
// the processor periodically so oversubscribed hosts (more workers
// than cores) keep making progress.
//
//natlevet:hotpath
func (c *Thread) spinWait(ns int64) {
	if ns <= 0 {
		return
	}
	deadline := c.w.now() + ns
	for c.w.now() < deadline {
		c.sink++
		if c.sink&255 == 0 {
			runtime.Gosched()
		}
	}
}
