package native

import (
	"testing"

	"natle/internal/backend"
	"natle/internal/tle"
)

// Two addresses on different stripes (stripe = line index mod 8, lines
// of 8 words): word 0 is on stripe 0, word 8 on stripe 1.
const (
	stripedAddrA = 0 // stripe 0
	stripedAddrB = 8 // stripe 1
)

// TestStripedValidationAbort injects one deterministic cross-stripe
// conflict: the body advances stripe 0's sequence between a load from
// stripe 0 and a load from stripe 1. The full-footprint validation
// after the second load must abort exactly the first attempt.
func TestStripedValidationAbort(t *testing.T) {
	w := NewWorld(Config{})
	lk := NewTLEStriped(0, tle.Backoff{})
	poisoned := false
	w.Run(1, func(c backend.Ctx) { c.Alloc(16) }, func(c backend.Ctx) {
		lk.Critical(c, func() {
			c.Load(stripedAddrA)
			if !poisoned {
				poisoned = true
				lk.stripes[stripeOf(stripedAddrA)].seq.Add(2) // a foreign commit
			}
			c.Load(stripedAddrB)
		})
	})
	st := lk.st.tleStats()
	if st.Ops != 1 || st.Commits != 1 || st.TotalAborts() != 1 || st.Fallbacks != 0 {
		t.Fatalf("ops=%d commits=%d aborts=%d fallbacks=%d, want 1/1/1/0",
			st.Ops, st.Commits, st.TotalAborts(), st.Fallbacks)
	}
}

// TestStripedWriteRelease: a committed writer must leave only the
// stripes it wrote advanced by two, everything else untouched.
func TestStripedWriteRelease(t *testing.T) {
	w := NewWorld(Config{})
	lk := NewTLEStriped(0, tle.Backoff{})
	w.Run(1, func(c backend.Ctx) { c.Alloc(16) }, func(c backend.Ctx) {
		lk.Critical(c, func() { c.Store(stripedAddrB, 7) })
	})
	if got := lk.stripes[stripeOf(stripedAddrB)].seq.Load(); got != 2 {
		t.Fatalf("written stripe sequence = %d, want 2", got)
	}
	if got := lk.stripes[stripeOf(stripedAddrA)].seq.Load(); got != 0 {
		t.Fatalf("untouched stripe sequence = %d, want 0", got)
	}
	if got := w.Peek(stripedAddrB); got != 7 {
		t.Fatalf("word = %d, want 7", got)
	}
}

// TestStripedAbortRollsBack: an attempt that stored and then failed
// validation must undo its store before retrying (or falling back) —
// otherwise the increment below would be applied more than once.
func TestStripedAbortRollsBack(t *testing.T) {
	w := NewWorld(Config{})
	lk := NewTLEStriped(2, tle.Backoff{})
	var addr int
	w.Run(1, func(c backend.Ctx) {
		c.Alloc(16)
		addr = stripedAddrA
	}, func(c backend.Ctx) {
		nc := c.(*Thread)
		lk.Critical(c, func() {
			c.Load(stripedAddrB) // read footprint on stripe 1
			c.Store(addr, c.Load(addr)+1)
			if nc.stx.active {
				// Poison the read stripe; the next load's validation
				// aborts the attempt. The fallback path (stx inactive)
				// runs clean.
				lk.stripes[stripeOf(stripedAddrB)].seq.Add(2)
				c.Load(stripedAddrB)
			}
		})
	})
	if got := w.Peek(addr); got != 1 {
		t.Fatalf("counter = %d after aborted attempts, want 1 (rollback broken?)", got)
	}
	st := lk.st.tleStats()
	if st.Fallbacks != 1 || st.TotalAborts() != 2 || st.Commits != 0 {
		t.Fatalf("fallbacks=%d aborts=%d commits=%d, want 1/2/0",
			st.Fallbacks, st.TotalAborts(), st.Commits)
	}
	if st.Ops != st.Commits+st.Fallbacks {
		t.Fatalf("conservation broken: ops=%d commits+fallbacks=%d", st.Ops, st.Commits+st.Fallbacks)
	}
}

// TestStripedBodyPanicReleasesAndRollsBack: a non-abort panic must
// propagate, but with every stripe released and the attempt's writes
// rolled back, so quiesced memory is consistent and the lock reusable.
func TestStripedBodyPanicReleasesAndRollsBack(t *testing.T) {
	w := NewWorld(Config{})
	lk := NewTLEStriped(0, tle.Backoff{})
	var addr int
	w.Run(1, func(c backend.Ctx) {
		c.Alloc(16)
		addr = stripedAddrA
	}, func(c backend.Ctx) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workload panic swallowed")
				}
			}()
			lk.Critical(c, func() {
				c.Store(addr, 99)
				panic("workload bug")
			})
		}()
		// The lock must still be usable and the dirty write gone.
		lk.Critical(c, func() { c.Store(addr, c.Load(addr)+1) })
	})
	for i := range lk.stripes {
		if got := lk.stripes[i].seq.Load(); got%2 != 0 {
			t.Fatalf("stripe %d left odd (%d) after panic", i, got)
		}
	}
	if got := w.Peek(addr); got != 1 {
		t.Fatalf("word = %d, want 1 (panicked attempt's write must roll back)", got)
	}
}

// TestStripedUndoOverflowFallsBack: a body writing more words than the
// undo log holds must abort every optimistic attempt and complete on
// the all-stripes fallback, which needs no undo.
func TestStripedUndoOverflowFallsBack(t *testing.T) {
	w := NewWorld(Config{Words: 1 << 16})
	lk := NewTLEStriped(0, tle.Backoff{})
	var base int
	n := stripedUndoCap + 1
	w.Run(1, func(c backend.Ctx) { base = c.Alloc(n) }, func(c backend.Ctx) {
		lk.Critical(c, func() {
			for i := 0; i < n; i++ {
				c.Store(base+i, uint64(i)+1)
			}
		})
	})
	st := lk.st.tleStats()
	if st.Fallbacks != 1 || st.Commits != 0 {
		t.Fatalf("fallbacks=%d commits=%d, want 1/0", st.Fallbacks, st.Commits)
	}
	for i := 0; i < n; i++ {
		if got := w.Peek(base + i); got != uint64(i)+1 {
			t.Fatalf("word %d = %d, want %d", i, got, i+1)
		}
	}
}

// TestStripedSoakContended: the maximal-conflict counter soak (every
// operation hits one word, hence one stripe) — lost updates, torn
// rollback, or a leaked stripe show up as a wrong count, a race
// report, or a hang.
func TestStripedSoakContended(t *testing.T) {
	threads, ops := 8, 4000
	if testing.Short() {
		threads, ops = 4, 1000
	}
	w := NewWorld(Config{})
	lk := NewTLEStriped(0, tle.Backoff{})
	if got, want := runCounter(w, lk, threads, ops), uint64(threads*ops); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	st := lk.st.tleStats()
	if st.Ops != uint64(threads*ops) {
		t.Fatalf("ops = %d, want %d", st.Ops, threads*ops)
	}
	if st.Commits+st.Fallbacks != st.Ops {
		t.Fatalf("conservation broken: ops=%d commits=%d fallbacks=%d", st.Ops, st.Commits, st.Fallbacks)
	}
}

// TestStripedDisjointSoak: threads write disjoint stripes (thread t
// owns word 8t, stripe t) with an occasional shared-stripe read, so
// parallel elision, per-stripe acquisition, and cross-stripe
// validation all run hot together.
func TestStripedDisjointSoak(t *testing.T) {
	threads, ops := 8, 4000
	if testing.Short() {
		threads, ops = 4, 1000
	}
	w := NewWorld(Config{})
	lk := NewTLEStriped(0, tle.Backoff{})
	var base int
	w.Run(threads, func(c backend.Ctx) {
		base = c.Alloc(threads * 8)
	}, func(c backend.Ctx) {
		addr := base + c.Thread()*8
		other := base + ((c.Thread()+1)%threads)*8
		for j := 0; j < ops; j++ {
			lk.Critical(c, func() {
				if j%16 == 0 {
					c.Load(other)
				}
				c.Store(addr, c.Load(addr)+1)
			})
		}
	})
	for i := 0; i < threads; i++ {
		if got := w.Peek(base + i*8); got != uint64(ops) {
			t.Fatalf("thread %d counter = %d, want %d", i, got, ops)
		}
	}
	st := lk.st.tleStats()
	if st.Commits+st.Fallbacks != st.Ops {
		t.Fatalf("conservation broken: ops=%d commits=%d fallbacks=%d", st.Ops, st.Commits, st.Fallbacks)
	}
}
