package native

import (
	"natle/internal/backend"
	"natle/internal/scheme"
	"natle/internal/tle"
)

// resolveAttempts maps the shared scheme options onto the native retry
// budget: an explicit TLE policy wins, then the raw attempt knob, then
// the native default.
func resolveAttempts(opt scheme.Options) int {
	if opt.TLE.Attempts > 0 {
		return opt.TLE.Attempts
	}
	if opt.Attempts > 0 {
		return opt.Attempts
	}
	return DefaultAttempts
}

// groupsOf reads the thread-group count off a native world (the NATLE
// factory's stand-in for the socket count).
func groupsOf(w backend.World) int {
	if nw, ok := w.(*World); ok {
		return nw.Sockets()
	}
	return 1
}

func newTLEFor(opt scheme.Options) *TLE {
	return NewTLE(resolveAttempts(opt), opt.TLE.Backoff)
}

// The native-* schemes register here, from the native package's own
// init: binaries that never import internal/native (the deterministic
// figure pipeline) keep a registry with no native entries at zero
// cost, while htmbench -backend=native links this package and gets
// them.
func init() {
	scheme.Register(&scheme.Descriptor{
		Name:    "native-mutex",
		Summary: "sync.Mutex baseline, never elided (native)",
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Native: func(_ backend.World, _ backend.Ctx, _ scheme.Options) scheme.BackendInstance {
			return NewMutex()
		},
	})
	scheme.Register(&scheme.Descriptor{
		Name:    "native-spin",
		Summary: "test-and-test-and-set spinlock (native mirror of 'lock')",
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Native: func(_ backend.World, _ backend.Ctx, _ scheme.Options) scheme.BackendInstance {
			return NewSpin()
		},
	})
	scheme.Register(&scheme.Descriptor{
		Name:    "native-tle",
		Summary: "software lock elision via a sequence lock: optimistic validated reads, CAS writer upgrade, exclusive fallback (native mirror of 'tle')",
		Opt:     scheme.Options{TLE: tle.Policy{Attempts: DefaultAttempts}},
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Native: func(_ backend.World, _ backend.Ctx, opt scheme.Options) scheme.BackendInstance {
			return newTLEFor(opt)
		},
	})
	scheme.Register(&scheme.Descriptor{
		Name:    "native-tle-striped",
		Summary: "native-tle with the seqlock sharded per word-range: one sequence word per line stripe, per-stripe write acquisition with undo, so disjoint writers elide in parallel",
		Opt:     scheme.Options{TLE: tle.Policy{Attempts: DefaultAttempts}},
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Native: func(_ backend.World, _ backend.Ctx, opt scheme.Options) scheme.BackendInstance {
			return NewTLEStriped(resolveAttempts(opt), opt.TLE.Backoff)
		},
	})
	scheme.Register(&scheme.Descriptor{
		Name:    "native-natle",
		Summary: "native-tle plus per-lock group throttling from a wall-clock EWMA of commit throughput (native mirror of 'natle')",
		Opt:     scheme.Options{TLE: tle.Policy{Attempts: DefaultAttempts}},
		Mutex:   true,
		Robust:  true,
		Batch:   true,
		Native: func(w backend.World, _ backend.Ctx, opt scheme.Options) scheme.BackendInstance {
			return NewNATLE(newTLEFor(opt), groupsOf(w), NATLEConfig{})
		},
	})
}
