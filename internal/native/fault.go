package native

import (
	"math"
	"sync/atomic"

	"natle/internal/fault"
	"natle/internal/vtime"
)

// Fault is the native-world fault adapter: the same fault.Profile
// vocabulary the simulator's injector speaks (see internal/fault),
// reinterpreted against real goroutines on the wall clock so every
// named chaos schedule runs on both backends.
//
// The mapping, per profile knob:
//
//   - SpuriousAbortRate: a geometric per-access countdown armed at
//     each optimistic attempt; when it fires, the attempt unwinds via
//     the same abortSignal a seqlock validation failure uses. Native
//     attempts have no hardware to interrupt them, so this models
//     spurious validation failures. Upgraded writers publish their
//     stores directly and cannot roll back, so (exactly like real
//     TSX, which cannot abort a committed transaction) the countdown
//     only fires while the attempt is still abortable.
//   - SqueezeProb/SqueezeFactor/SqueezeLen: wall-clock capacity
//     squeeze windows during which every attempt gets a small access
//     budget (txAccessBudget / SqueezeFactor); exhausting it aborts
//     the attempt, forcing early fallback — the elision fast path
//     loses its capacity exactly as under sibling-HT pressure.
//   - InvalDelayProb/InvalDelayLen: a commit-path delay — the writer
//     spins for InvalDelayLen just before releasing the sequence
//     word, stretching the window during which concurrent readers
//     fail validation (the native analogue of a delayed cross-socket
//     invalidation).
//   - StallProb/StallLen: a spin-wait injected immediately after any
//     lock acquisition (TLE fallback, native-mutex, native-spin) —
//     preemption while holding the lock, the convoy trigger.
//   - LieOnCapacity/LieOnConflict are inert: native aborts carry no
//     hardware hint bit to lie about (Stats reports zero HintLies).
//
// Draws use the calling thread's seeded RNG, so the *decision
// schedule* is reproducible per (seed, thread) even though wall-clock
// interleaving is not. Counters are atomic; Stats reports them in the
// shared fault.Stats shape.
type Fault struct {
	hot faultHot

	// Cold configuration, read-only after NewFault; faultHot is a
	// multiple of 64 bytes, so these never share its lines.
	p         fault.Profile
	squeezeNs int64 // squeeze window length, wall ns
}

// faultCounters groups the injected-fault event counters. They are
// bumped only when a (rare) fault draw fires, by whichever thread drew
// it, so they may share lines with each other but with nothing hotter.
type faultCounters struct {
	spurious   atomic.Uint64
	squeezes   atomic.Uint64
	squeezedTx atomic.Uint64
	delays     atomic.Uint64
	stalls     atomic.Uint64
}

// faultHot is the concurrently-written core of Fault. squeezeUntil is
// polled by every optimistic attempt in txStart, so it gets a cache
// line to itself: a fault counter bump must not invalidate the line
// the elision fast path reads on every transaction.
//
//natlevet:percpu
type faultHot struct {
	squeezeUntil atomic.Int64 // wall-clock deadline of the open window
	_            [56]byte
	counters     faultCounters
	_            [24]byte
}

// txAccessBudget is the per-attempt access allowance outside squeeze
// windows — effectively unlimited for the repo's workloads, so only a
// squeeze's divided budget ever bites.
const txAccessBudget = 1 << 12

// NewFault builds the adapter for a profile (fault.New's defaults
// applied: SqueezeFactor 64, SqueezeLen 20µs, InvalDelayLen 300ns,
// StallLen 30µs; one virtual nanosecond reads as one wall nanosecond,
// the same convention the backoff reuse established).
func NewFault(p fault.Profile) *Fault {
	p = fault.New(p, 0).Profile()
	return &Fault{p: p, squeezeNs: int64(p.SqueezeLen / vtime.Nanosecond)}
}

// Stats reports the injected-fault counters.
func (f *Fault) Stats() fault.Stats {
	if f == nil {
		return fault.Stats{}
	}
	return fault.Stats{
		SpuriousAborts: f.hot.counters.spurious.Load(),
		Squeezes:       f.hot.counters.squeezes.Load(),
		SqueezedTx:     f.hot.counters.squeezedTx.Load(),
		InvalDelays:    f.hot.counters.delays.Load(),
		Stalls:         f.hot.counters.stalls.Load(),
	}
}

// randFloat is the thread-RNG uniform draw in [0, 1) used by the
// fault decision points.
//
//natlevet:hotpath
func (c *Thread) randFloat() float64 { return float64(c.Rand64()>>11) / (1 << 53) }

// txStart arms one optimistic attempt: it may open a squeeze window,
// and returns the spurious-abort countdown (0 = none) and the access
// budget (0 = unlimited) the attempt runs under.
//
//natlevet:hotpath
func (f *Fault) txStart(c *Thread) (countdown, budget int) {
	now := c.w.now()
	if f.p.SqueezeProb > 0 {
		until := f.hot.squeezeUntil.Load()
		if now >= until && c.randFloat() < f.p.SqueezeProb {
			if f.hot.squeezeUntil.CompareAndSwap(until, now+f.squeezeNs) {
				f.hot.counters.squeezes.Add(1)
			}
		}
		if now < f.hot.squeezeUntil.Load() {
			budget = txAccessBudget / f.p.SqueezeFactor
			if budget < 1 {
				budget = 1
			}
			f.hot.counters.squeezedTx.Add(1)
		}
	}
	if f.p.SpuriousAbortRate > 0 {
		// Geometric interarrival by inverse transform, the same draw
		// the simulator's injector makes (u kept away from 0 so Log
		// stays finite).
		u := c.randFloat()
		if u < 1e-12 {
			u = 1e-12
		}
		countdown = int(math.Ceil(math.Log(u) / math.Log(1-f.p.SpuriousAbortRate)))
		if countdown < 1 {
			countdown = 1
		}
	}
	return countdown, budget
}

// commitDelay spins the committing writer for the profile's
// invalidation delay, stretching the locked window concurrent readers
// must validate across.
//
//natlevet:hotpath
func (f *Fault) commitDelay(c *Thread) {
	if f.p.InvalDelayProb <= 0 || c.randFloat() >= f.p.InvalDelayProb {
		return
	}
	f.hot.counters.delays.Add(1)
	c.spinWait(int64(f.p.InvalDelayLen / vtime.Nanosecond))
}

// csStall spins the thread immediately after a lock acquisition with
// the profile's stall probability (preemption while holding the lock).
//
//natlevet:hotpath
func (f *Fault) csStall(c *Thread) {
	if f.p.StallProb <= 0 || c.randFloat() >= f.p.StallProb {
		return
	}
	f.hot.counters.stalls.Add(1)
	c.spinWait(int64(f.p.StallLen / vtime.Nanosecond))
}

// txAccess charges one transactional access against the attempt's
// spurious-abort countdown and access budget, aborting the attempt
// when either runs out. Called only while the attempt is active and
// not yet upgraded to writer, so SpuriousAborts counts aborts that
// actually fired (attempts short enough to outrun their countdown
// are not charged).
//
//natlevet:hotpath
func (c *Thread) txAccess() {
	if c.tx.spurious > 0 {
		c.tx.spurious--
		if c.tx.spurious == 0 {
			c.w.inj.hot.counters.spurious.Add(1)
			panic(abortSignal{})
		}
	}
	if c.tx.budget > 0 {
		c.tx.budget--
		if c.tx.budget == 0 {
			panic(abortSignal{})
		}
	}
}
