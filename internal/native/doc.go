// Package native is the real-execution backend: schemes run on real
// goroutines over real memory (a []atomic.Uint64 word array) with
// wall-clock time. Where the simulated backend *predicts* multi-socket
// HTM behaviour as a pure function of (profile, seed), this backend
// *proves* numbers on the host it runs on — at the price of being
// host- and load-dependent, which is why its measurements never feed
// the deterministic figure pipeline.
//
// The schemes are software best-effort transactions in the style of
// production Go optimistic concurrency control (see PAPERS.md, "OCC
// for Real-world Go Programs"):
//
//   - native-mutex: sync.Mutex, never elided (the plain-lock baseline);
//   - native-spin: test-and-test-and-set spinlock over an atomic word;
//   - native-tle: transactional-mutex-style lock elision — a per-lock
//     sequence word; read-only sections run optimistically and
//     validate the sequence on every load, the first store upgrades to
//     writer with a CAS on the sequence; aborted attempts retry under
//     the repo's capped full-jitter backoff and fall back to exclusive
//     sequence-lock acquisition when attempts run out;
//   - native-natle: native-tle plus per-lock throttling in the spirit
//     of the paper's NATLE, driven by a wall-clock EWMA of per-group
//     commit throughput instead of virtual-time profiling cycles.
//
// All shared accesses go through sync/atomic, so every scheme is
// race-detector clean; optimistic readers discard torn higher-level
// state through sequence validation, exactly like a seqlock.
//
// Wall-clock reads and real goroutines are the point of this package,
// so the natlevet determinism and txnsafe analyzers are waived for it
// wholesale by the directive below (simulated packages stay strict).
//
//natlevet:backend native
package native
