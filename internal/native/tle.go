package native

import (
	"sync/atomic"

	"natle/internal/backend"
	"natle/internal/scheme"
	"natle/internal/tle"
	"natle/internal/vtime"
)

// DefaultAttempts is the native-tle optimistic retry budget before
// the fallback lock. Software validation aborts are cheaper than a
// hardware abort storm, so the budget is smaller than the paper's
// TLE-20.
const DefaultAttempts = 8

// maxLockHeldWaits bounds how many lock-held deferrals one critical
// section absorbs before the starvation watchdog sends it to the
// fallback path (the native mirror of tle.Policy.MaxWaits).
const maxLockHeldWaits = 1 << 10

// TLE is the native best-effort transaction scheme: a per-lock
// sequence word in transactional-mutex style. Even sequence =
// unlocked; odd = a writer (upgraded optimist or fallback) holds it.
// Optimistic sections validate the sequence on every load and upgrade
// to writer on first store; the sequence only ever grows, so a reader
// that observes an unchanged sequence across its reads saw a
// consistent snapshot.
//
//natlevet:percpu
type TLE struct {
	// seq is polled on every transactional load by every optimistic
	// reader, so it owns a cache line: a counter bump must not
	// invalidate the word the whole read side validates against.
	seq atomic.Uint64
	_   [56]byte

	// st's counters are bumped by every thread on every attempt — true
	// sharing, which padding between them cannot fix; the block only
	// has to stay off seq's line.
	st stats
	_  [8]byte

	// Cold, read-only after NewTLE.
	attempts int
	backoff  tle.Backoff
	_        [40]byte
}

// stats is the native schemes' atomic counter block, snapshotted into
// the uniform scheme.Stats facade.
type stats struct {
	ops           atomic.Uint64 // critical sections executed
	attempts      atomic.Uint64 // optimistic attempts started
	commits       atomic.Uint64 // optimistic attempts that validated
	aborts        atomic.Uint64 // validation/upgrade failures
	lockHeldWaits atomic.Uint64 // attempts deferred on an odd sequence
	fallbacks     atomic.Uint64 // sections that took the fallback lock
	starvations   atomic.Uint64 // watchdog-forced fallbacks
}

// tleStats renders the counters in the shared tle.Stats shape:
// validation failures count as conflict aborts (index htm.Conflict),
// which is what they are — another thread's write interfered.
func (s *stats) tleStats() tle.Stats {
	t := tle.Stats{
		Ops:           s.ops.Load(),
		Attempts:      s.attempts.Load(),
		Commits:       s.commits.Load(),
		Fallbacks:     s.fallbacks.Load(),
		LockHeldWaits: s.lockHeldWaits.Load(),
		Starvations:   s.starvations.Load(),
	}
	t.Aborts[1] = s.aborts.Load()
	return t
}

// NewTLE builds a native-tle lock. attempts <= 0 selects
// DefaultAttempts; the zero backoff selects the repo-wide capped
// full-jitter defaults.
func NewTLE(attempts int, backoff tle.Backoff) *TLE {
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	return &TLE{attempts: attempts, backoff: backoff}
}

// Name implements backend.CS.
func (t *TLE) Name() string { return "native-tle" }

// Stats implements scheme.BackendInstance.
func (t *TLE) Stats() scheme.Stats { return scheme.Stats{TLE: t.st.tleStats()} }

// Critical implements backend.CS: optimistic attempts with capped
// full-jitter backoff, then the exclusive fallback.
//
//natlevet:hotpath
func (t *TLE) Critical(bc backend.Ctx, body func()) {
	c := bc.(*Thread)
	if c.tx.active || c.stx.active {
		// Flat nesting: the enclosing optimistic section is the
		// atomicity domain (the workloads never nest, but a body that
		// does must not corrupt the thread's single txn slot).
		body()
		return
	}
	t.st.ops.Add(1)
	waits := 0
	for attempt := 0; attempt < t.attempts; {
		s := t.seq.Load()
		if s&1 == 1 {
			// A writer holds the sequence lock. Defer without burning
			// an attempt (anti-lemming), bounded by the watchdog.
			t.st.lockHeldWaits.Add(1)
			waits++
			if waits > maxLockHeldWaits {
				t.st.starvations.Add(1)
				break
			}
			c.gap(attempt, t.backoff)
			continue
		}
		t.st.attempts.Add(1)
		if t.try(c, s, body) {
			t.st.commits.Add(1)
			return
		}
		t.st.aborts.Add(1)
		attempt++
		c.gap(attempt, t.backoff)
	}
	// Fallback: acquire the sequence word exclusively and run
	// pessimistically.
	t.st.fallbacks.Add(1)
	s := t.lockAcquire(c)
	if inj := c.w.inj; inj != nil {
		inj.csStall(c)
	}
	body()
	t.seq.Store(s + 2)
}

// try runs one optimistic attempt against sequence snapshot start.
// The attempt unwinds via an abortSignal panic from Thread.Load/Store
// on validation or upgrade failure. It is the seqlock read section:
// blocking on any lock between the snapshot and the validation would
// deadlock against a writer waiting for readers to drain.
//
//natlevet:hotpath
//natlevet:seqlock
func (t *TLE) try(c *Thread, start uint64, body func()) (ok bool) {
	c.tx = txn{active: true, start: start, seq: &t.seq}
	if inj := c.w.inj; inj != nil {
		c.tx.spurious, c.tx.budget = inj.txStart(c)
	}
	defer func() {
		writer := c.tx.writer
		c.tx = txn{}
		switch r := recover(); {
		case r == nil:
			if writer {
				// Writer commit: release the sequence lock, advancing
				// past every snapshot taken before our upgrade. An
				// injected commit delay stretches the held window first
				// (concurrent readers keep failing validation), the
				// native face of a delayed cross-socket invalidation.
				if inj := c.w.inj; inj != nil {
					inj.commitDelay(c)
				}
				t.seq.Store(start + 2)
				ok = true
			} else {
				// Read-only commit: every load validated individually
				// and the sequence never returns to an old value, so
				// one final check covers the full read window.
				ok = t.seq.Load() == start
			}
		default:
			if _, abort := r.(abortSignal); !abort {
				if writer {
					// A real panic (workload bug) must propagate, but
					// not while wedging every other thread on an
					// odd sequence.
					t.seq.Store(start + 2)
				}
				panic(r)
			}
			// Aborted attempt. Upgraded writers never abort (their
			// loads and stores are direct), so there is no lock to
			// release here.
		}
	}()
	body()
	return
}

// lockAcquire spins until it owns the sequence word (even -> odd) and
// returns the even value it acquired from.
//
//natlevet:hotpath
func (t *TLE) lockAcquire(c *Thread) uint64 {
	for i := 0; ; i++ {
		s := t.seq.Load()
		if s&1 == 0 && t.seq.CompareAndSwap(s, s+1) {
			return s
		}
		a := i
		if a > 6 {
			a = 6
		}
		c.gap(a, t.backoff)
	}
}

// gap spins for one capped full-jitter backoff draw. The shared
// tle.Backoff works in virtual-time units (picoseconds); one virtual
// nanosecond is re-interpreted as one wall-clock nanosecond here,
// preserving the bounds (75ns base, 2.4us cap) and the jitter shape.
//
//natlevet:hotpath
func (c *Thread) gap(attempt int, b tle.Backoff) {
	c.spinWait(int64(b.Gap(c, attempt)) / int64(vtime.Nanosecond))
}
